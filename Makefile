.PHONY: all check test bench clean

all:
	dune build

# the tier-1 gate: everything must compile and the test suite must pass
check:
	dune build && dune runtest

test:
	dune runtest

bench:
	dune exec bench/main.exe -- --quick --no-bechamel

bench-json:
	dune exec bench/main.exe -- --quick --json

clean:
	dune clean
