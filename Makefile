.PHONY: all check test fuzz fuzz-quick bench bench-json bench-quick bench-codecs perf-gate maybe-perf-gate server-bench ab-bench storm-bench paging-bench traces dict tune policy-check clean

all:
	dune build

# the tier-1 gate: everything must compile and the test suite must pass.
# fuzz-quick runs first as a fast fail-early pass over every decoder;
# maybe-perf-gate (opt-in via PERF_GATE=1) compares stage wall times
# against the committed baseline BEFORE bench-codecs overwrites it;
# bench-codecs proves every registered codec encodes+decodes and tracks
# the per-stage matrix; policy-check validates the committed serving
# policy against the registry and smoke-runs the tuner; the suite
# itself (one `dune runtest`) then includes the full 10k-iteration
# fuzz layer and the differential tests; ab-bench replays the committed
# flash-crowd trace under the tuned policy vs live scoring and gates
# the diff (deterministic, so it runs unconditionally); paging-bench
# runs the demand-paged execution sweep and holds its fault/stall/ratio
# ceilings (also deterministic — modelled cycles only)
check: fuzz-quick maybe-perf-gate bench-codecs policy-check ab-bench storm-bench paging-bench
	dune build && dune runtest

# off by default (timings on shared runners are noisy); opt in with
#   PERF_GATE=1 make check
maybe-perf-gate:
	@if [ "$(PERF_GATE)" = "1" ]; then $(MAKE) perf-gate; else \
	  echo "perf-gate: skipped (set PERF_GATE=1 to enable)"; fi

# regenerate the per-stage matrix and compare it against the committed
# BENCH_compressor.json: fails if any stage's wall time regressed >25%
# (beyond a 2 ms noise floor). The fresh run is kept next to the
# baseline for inspection; bench-codecs is what refreshes the baseline.
perf-gate:
	dune build bench/perf_gate.exe
	dune exec bench/main.exe -- --quick --codecs-json > BENCH_compressor.new.json
	dune exec bench/perf_gate.exe -- BENCH_compressor.json BENCH_compressor.new.json
	@rm -f BENCH_compressor.new.json
	$(MAKE) server-bench
	dune exec bench/perf_gate.exe -- --server BENCH_server.json

# drive the real daemon over loopback TCP with the seeded streaming-heavy
# mix and write the latency/QPS report to BENCH_server.json; the server
# half of perf-gate then checks the absolute floors (>= 1000 QPS, zero
# corruption, zero errors)
server-bench:
	dune build bin/mccload.exe
	dune exec bin/mccload.exe -- --self --quick --clients 16 --requests 8000 \
	  --stream-pct 70 --chunks 24 --json BENCH_server.json
	@cat BENCH_server.json

# A/B the tuned serving policy against live scoring over the committed
# flash-crowd trace (mccsim ab) and gate the diff: the tuned side may
# not regress bytes-on-wire (>1%) or overall p99 (>10% + 0.5 ms). The
# replay is fully deterministic (modelled latencies), so this runs in
# CI without a noise opt-out.
ab-bench:
	dune build bin/mccsim.exe bench/perf_gate.exe
	dune exec bin/mccsim.exe -- ab traces/flash_crowd.trace \
	  --a-policy POLICY.tune --json --out BENCH_ab.json
	dune exec bench/perf_gate.exe -- --ab BENCH_ab.json

# replay the committed update-storm trace with the update channel on
# and off (mccsim storm) and gate the savings: delta delivery must stay
# at or under 40% of full-redelivery bytes on the update ops, with zero
# client-side decode-verification failures. Deterministic, like ab-bench.
storm-bench:
	dune build bin/mccsim.exe bench/perf_gate.exe
	dune exec bin/mccsim.exe -- storm traces/update_storm.trace \
	  --json --out BENCH_storm.json
	dune exec bench/perf_gate.exe -- --storm BENCH_storm.json

# demand-paged execution sweep: run the profiled corpus under the pager
# in source order vs profile-guided hot layout across resident budgets
# (50/25/12% of the decompressed image), write the fault/stall/ratio
# matrix to BENCH_paging.json, and gate it — chunked bytes must be
# exactly invariant under reorder, the hot layout must strictly reduce
# total faults on every point, and the 25%-budget stall overhead stays
# under its pinned ceiling. Modelled cycles only: deterministic, so it
# runs unconditionally in `make check`.
paging-bench:
	dune build bench/main.exe bench/perf_gate.exe
	dune exec bench/main.exe -- --paging-json > BENCH_paging.json
	dune exec bench/perf_gate.exe -- --paging BENCH_paging.json

# regenerate the golden scenario trace corpus (only needed when the
# generators or the catalog change; the replays of these files are
# regression-checked by dune runtest)
traces:
	dune build bin/mccsim.exe
	for s in steady flash-crowd corruption-burst mixed-profiles paging; do \
	  dune exec bin/mccsim.exe -- record --scenario $$s --catalog quick \
	    --events 400 --seed 42 --out traces/$$(echo $$s | tr - _).trace; \
	  dune exec bin/mccsim.exe -- replay traces/$$(echo $$s | tr - _).trace \
	    > traces/$$(echo $$s | tr - _).report; \
	done
	dune exec bin/mccsim.exe -- record --scenario update-storm \
	  --catalog versioned --events 400 --seed 42 \
	  --out traces/update_storm.trace
	dune exec bin/mccsim.exe -- replay traces/update_storm.trace \
	  > traces/update_storm.report

# regenerate the committed corpus-trained shared dictionary
# (lib/codec/shared_dict_data.ml); the digest-pin test fails when the
# corpus and the committed bytes drift apart
dict:
	dune exec bin/mccdict.exe

test:
	dune runtest

# bounded-seed fuzz pass (~12s): 1500 mutations per untrusted-input
# decoder, same seeds every run
fuzz-quick:
	FUZZ_ITERS=1500 dune exec test/test_fuzz.exe

# full fuzz pass: FUZZ_ITERS mutations per decoder (default 10000)
fuzz:
	dune exec test/test_fuzz.exe

bench:
	dune exec bench/main.exe -- --quick --no-bechamel

bench-json:
	dune exec bench/main.exe -- --quick --json

# compressor-timing slice only: Dict.build in full-scan / incremental /
# parallel modes on the gcc-like point, tracked across PRs
bench-quick:
	dune exec bench/main.exe -- --quick --compressor-json > BENCH_compressor.json
	@cat BENCH_compressor.json

# per-stage codec matrix: bytes-in/bytes-out/wall time for every stage
# of every registered codec on the smallest and largest corpus points,
# written to BENCH_compressor.json for cross-PR tracking
bench-codecs:
	dune exec bench/main.exe -- --quick --codecs-json > BENCH_compressor.json
	@cat BENCH_compressor.json

# regenerate the committed serving-policy table: search the registry's
# (codec x mode) grid per corpus point against each client profile's
# modelled total delivery time and write the argmins to POLICY.tune
tune:
	dune exec bin/mcctune.exe -- -o POLICY.tune

# validate the committed table (parses, current version, references
# only registered whole-image codecs) and smoke-run the tuner on two
# corpus points so a search-path regression fails here, not in serving
policy-check:
	dune exec bin/mcctune.exe -- check POLICY.tune --smoke

clean:
	dune clean
