.PHONY: all check test bench bench-quick clean

all:
	dune build

# the tier-1 gate: everything must compile and the test suite must pass
check:
	dune build && dune runtest

test:
	dune runtest

bench:
	dune exec bench/main.exe -- --quick --no-bechamel

bench-json:
	dune exec bench/main.exe -- --quick --json

# compressor-timing slice only: Dict.build in full-scan / incremental /
# parallel modes on the gcc-like point, tracked across PRs
bench-quick:
	dune exec bench/main.exe -- --quick --compressor-json > BENCH_compressor.json
	@cat BENCH_compressor.json

clean:
	dune clean
