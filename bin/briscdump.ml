(* briscdump — inspect a BRISC container: dictionary entries in the
   paper's notation, Markov table shape, per-function code sizes.

     briscdump prog.brisc [--dict] [--funcs] [--markov]
   (no flags: print everything)
*)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let main file dict_only funcs_only markov_only =
  match Brisc.of_bytes (read_file file) with
  | Error e ->
    Printf.eprintf "briscdump: %s: %s\n" file
      (Support.Decode_error.to_string e);
    1
  | Ok img ->
  let all = not (dict_only || funcs_only || markov_only) in
  let entries = img.Brisc.Emit.entries in
  if all || dict_only then begin
    Printf.printf "dictionary: %d entries (%d base + %d learned)\n\n"
      (Array.length entries) img.Brisc.Emit.base_count
      (Array.length entries - img.Brisc.Emit.base_count);
    Array.iteri
      (fun i p ->
        let kind = if i < img.Brisc.Emit.base_count then "base" else "spec" in
        Printf.printf "%4d %-4s %2dB op+%-2dB  %s\n" i kind 1
          (Brisc.Pat.encoded_bytes p - 1)
          (Brisc.Pat.to_string p))
      entries;
    print_newline ()
  end;
  if all || markov_only then begin
    let m = img.Brisc.Emit.markov in
    Printf.printf "Markov contexts: %d (context 0 = block starts)\n"
      (Array.length m.Brisc.Markov.succ);
    Printf.printf "largest successor set: %d\n"
      (Brisc.Markov.max_successors m);
    let nonempty =
      Array.to_list m.Brisc.Markov.succ
      |> List.filter (fun a -> Array.length a > 0)
      |> List.length
    in
    Printf.printf "non-empty contexts: %d\n\n" nonempty
  end;
  if all || funcs_only then begin
    Printf.printf "%-24s %8s %8s\n" "function" "bytes" "labels";
    Array.iter
      (fun (f : Brisc.Emit.ifunc) ->
        Printf.printf "%-24s %8d %8d\n" f.Brisc.Emit.if_name
          (String.length f.Brisc.Emit.code)
          (Array.length f.Brisc.Emit.label_offsets))
      img.Brisc.Emit.ifuncs
  end;
  0

open Cmdliner

let file0 = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.brisc")
let dict = Arg.(value & flag & info [ "dict" ] ~doc:"Dictionary only.")
let funcs = Arg.(value & flag & info [ "funcs" ] ~doc:"Function sizes only.")
let markov = Arg.(value & flag & info [ "markov" ] ~doc:"Markov table shape only.")

let cmd =
  Cmd.v (Cmd.info "briscdump" ~doc:"Inspect a BRISC container")
    Term.(const main $ file0 $ dict $ funcs $ markov)

let () = exit (Cmd.eval' cmd)
