(* Shared helpers for the driver CLIs (briscc, wirec, briscrun, mccd).

   One place for file I/O, the codec-registry listing every tool offers
   behind [--list-codecs], and the man-page section describing it — so
   the four tools parse flags, print help, and exit the same way
   (cmdliner conventions: 0 success, 1 tool failure, 124 usage). *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* one row of the registry listing: name, tag, how it is served *)
let codec_rows () =
  List.map
    (fun (e : Codec.entry) ->
      let modes =
        List.map Scenario.Delivery.repr_name e.Codec.modes
        @ (if e.Codec.streamable then [ "streamed chunks" ] else [])
      in
      let served =
        match modes with [] -> "stage/bench only" | ms -> String.concat ", " ms
      in
      (Codec.name e.Codec.codec, Codec.tag e.Codec.codec, served))
    (Codec.all ())

let print_codecs () =
  Printf.printf "%-14s %-4s %s\n" "codec" "tag" "served as";
  List.iter
    (fun (name, tag, served) -> Printf.printf "%-14s %-4s %s\n" name tag served)
    (codec_rows ())

(* the same listing as a markdown table — the README representation
   table is generated from this (`mccd --list-codecs-md`) *)
let print_codecs_md () =
  print_string "| codec | tag | served as |\n|---|---|---|\n";
  List.iter
    (fun (name, tag, served) ->
      Printf.printf "| `%s` | `%s` | %s |\n" name tag served)
    (codec_rows ())

(* per-stage trace lines, the same shape mccd's stats report prints *)
let print_trace (trace : Codec.trace) =
  List.iter
    (fun (s : Codec.stage) ->
      Printf.printf "  stage %-12s %8d B in -> %8d B out  %.3fs\n"
        s.Codec.stage s.Codec.bytes_in s.Codec.bytes_out s.Codec.wall_s)
    trace

(* [--list-codecs] must work without the tool's positional arguments,
   so it is handled before cmdliner parsing. *)
let handle_list_codecs () =
  if Array.exists (( = ) "--list-codecs") Sys.argv then begin
    print_codecs ();
    exit 0
  end;
  if Array.exists (( = ) "--list-codecs-md") Sys.argv then begin
    print_codecs_md ();
    exit 0
  end

let man_codecs =
  [ `S "CODECS";
    `P
      "$(b,--list-codecs) prints the codec registry (name, tag, how each \
       is served) and exits; $(b,--list-codecs-md) prints it as a \
       markdown table. The registry is the single source of the \
       delivery server's representation menu." ]

(* Publish the corpus catalog the workload driver, the serve daemon and
   the self-hosted load generator all share. The flavors live in
   Sim.Catalog so recorded traces can name the key space they were cut
   against; generated programs get stable short names (gen24, gen40,
   ...) so scripts, logs and traces can refer to them. *)
let publish_catalog ?(quick = false) engine =
  Sim.Catalog.publish engine
    (if quick then Sim.Catalog.Quick else Sim.Catalog.Full)
