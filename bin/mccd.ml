(* mccd — the code-delivery server driver.

   Replays a request workload against [Server] and prints the stats
   report (including each codec's per-stage bytes/time matrix). Modes:

     dune exec bin/mccd.exe                       # synthetic workload
     dune exec bin/mccd.exe -- --requests 500 --budget 131072 --seed 7
     dune exec bin/mccd.exe -- --script reqs.txt  # scripted replay
     dune exec bin/mccd.exe -- --list-codecs      # the registry menu
     dune exec bin/mccd.exe -- serve --port 7070  # the network daemon

   Script lines (blank lines and #-comments ignored):

     fetch <program> <profile>     one whole-image request
     stream <program> [n]          chunked session: handshake, then the
                                   first n functions a real run touches
                                   (all of them if n is omitted)

   Programs are corpus names (wc, sieve, qsort, ..., gen24, gen40);
   profiles are modem-jit, lan-jit, embedded, datacenter. *)

let load_policy = function
  | None -> None
  | Some file -> (
    match Tune.Policy.load file with
    | Ok pol ->
      Printf.printf "mccd: loaded serving policy %s (%d picks)\n%!" file
        (List.length (Tune.Policy.picks pol));
      Some pol
    | Error e -> failwith (Printf.sprintf "mccd: policy %s: %s" file e))

let main requests seed budget drop faults quick script no_check domains policy =
  if domains > 0 then Support.Pool.set_shared_domains domains;
  let check = ref (not no_check) in
  let engine = Server.create ~budget_bytes:budget ?policy:(load_policy policy) () in
  Printf.printf "mccd: publishing the corpus (budget %s)...\n%!"
    (Support.Util.human_bytes budget);
  let t0 = Unix.gettimeofday () in
  let catalog = Cli.publish_catalog ~quick engine in
  Printf.printf "mccd: %d programs published in %.1fs\n\n%!"
    (List.length catalog)
    (Unix.gettimeofday () -. t0);

  let find_program name =
    match
      List.find_opt (fun e -> e.Server.Workload.name = name) catalog
    with
    | Some e -> e
    | None -> failwith ("mccd: unknown program " ^ name)
  in
  let find_profile name =
    match
      List.find_opt
        (fun p -> p.Server.Profile.name = name)
        Server.Workload.default_profiles
    with
    | Some p -> p
    | None -> failwith ("mccd: unknown profile " ^ name)
  in

  let rep, distinct_reprs =
    match script with
    | Some file ->
      let ic = open_in file in
      let reprs = Hashtbl.create 8 in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line <> "" && line.[0] <> '#' then
             match String.split_on_char ' ' line |> List.filter (( <> ) "") with
             | [ "fetch"; prog; prof ] ->
               let e = find_program prog in
               let resp =
                 Server.fetch engine e.Server.Workload.digest
                   (find_profile prof)
               in
               Hashtbl.replace reprs resp.Server.label ();
               Printf.printf "fetch %-10s %-12s -> %-14s %7d B %s\n" prog prof
                 resp.Server.label resp.Server.size
                 (if resp.Server.cache_hit then "(cache hit)" else "(compressed)")
             | "stream" :: prog :: rest ->
               let e = find_program prog in
               let wanted = e.Server.Workload.wanted in
               let n =
                 match rest with
                 | [ v ] -> min (int_of_string v) (List.length wanted)
                 | _ -> List.length wanted
               in
               let sess = Server.open_session engine e.Server.Workload.digest in
               List.iteri
                 (fun i name ->
                   if i < n then
                     match
                       Server.session_request engine sess
                         ~seq:(Server.Session.next_seq sess) name
                     with
                     | Ok payload ->
                       Printf.printf "chunk %-10s %-16s %7d B\n" prog name
                         (String.length payload)
                     | Error msg -> failwith ("mccd: " ^ msg))
                 wanted
             | _ -> failwith ("mccd: bad script line: " ^ line)
         done
       with End_of_file -> close_in ic);
      print_newline ();
      let rep = Server.report engine in
      Server.Stats.print rep;
      (* acceptance thresholds are calibrated for the synthetic
         workload; a hand-written script is free to do anything *)
      check := false;
      (rep, Hashtbl.fold (fun k () acc -> k :: acc) reprs [])
    | None ->
      if faults > 0 then begin
        (* pre-materialize artifacts and corrupt their cached bytes; the
           workload's fetches then exercise quarantine + degradation.
           The menu is registry-derived, so every servable codec
           (including wire+range) gets fault coverage. *)
        let rng = Support.Prng.create (Int64.of_int (seed lxor 0x5EED)) in
        let entries = Array.of_list catalog in
        let reprs =
          Array.of_list
            (List.filter
               (fun r -> r <> Server.Artifact.native)
               (Server.Artifact.all ()))
        in
        let store = Server.store engine in
        for i = 0 to faults - 1 do
          let e = entries.(i mod Array.length entries) in
          let repr = reprs.(i mod Array.length reprs) in
          let digest = e.Server.Workload.digest in
          ignore (Server.Store.materialize store digest repr);
          ignore
            (Server.Store.corrupt_cached store digest repr
               ~f:(Support.Fault.mutate rng))
        done;
        Printf.printf "mccd: injected %d cache faults (%s)\n%!" faults
          (String.concat ", "
             (List.map Server.Artifact.name (Array.to_list reprs)))
      end;
      let config =
        { Server.Workload.requests; seed = Int64.of_int seed; drop_pct = drop }
      in
      let summary = Server.Workload.run engine ~config catalog in
      Server.Workload.print_summary summary;
      (summary.Server.Workload.report, summary.Server.Workload.distinct_reprs)
  in

  if not !check then 0
  else begin
    let ok = ref true in
    let check_line cond msg =
      Printf.printf "  [%s] %s\n" (if cond then "ok" else "FAIL") msg;
      if not cond then ok := false
    in
    Printf.printf "\nacceptance:\n";
    check_line (rep.Server.Stats.cache_hit_rate > 0.0)
      (Printf.sprintf "cache hit rate %.1f%% > 0 after warm-up"
         (100.0 *. rep.Server.Stats.cache_hit_rate));
    check_line
      (List.length distinct_reprs >= 2)
      (Printf.sprintf "%d distinct representations selected (%s)"
         (List.length distinct_reprs)
         (String.concat ", " distinct_reprs));
    if faults > 0 then
      check_line
        (rep.Server.Stats.decode_failures >= 1)
        (Printf.sprintf
           "%d injected faults detected, quarantined and degraded (%d \
            degraded fetches)"
           rep.Server.Stats.decode_failures rep.Server.Stats.degraded_fetches);
    if rep.Server.Stats.sessions_opened > 0 then
      check_line
        (rep.Server.Stats.session_bytes < rep.Server.Stats.session_wire_equiv)
        (Printf.sprintf
           "chunked sessions shipped %s < %s whole-program wire equivalent"
           (Support.Util.human_bytes rep.Server.Stats.session_bytes)
           (Support.Util.human_bytes rep.Server.Stats.session_wire_equiv));
    if !ok then 0 else 1
  end

(* ---- serve: the network daemon ---- *)

let serve port domains queue_depth max_sessions budget quick policy =
  let engine =
    Server.create ~shards:(max 1 domains) ~budget_bytes:budget
      ?policy:(load_policy policy) ()
  in
  Printf.printf "mccd: publishing the corpus (budget %s)...\n%!"
    (Support.Util.human_bytes budget);
  let t0 = Unix.gettimeofday () in
  let catalog = Cli.publish_catalog ~quick engine in
  Printf.printf "mccd: %d programs published in %.1fs\n%!"
    (List.length catalog)
    (Unix.gettimeofday () -. t0);
  let rows =
    List.map
      (fun (e : Server.Workload.entry) ->
        {
          Net.Protocol.prog_name = e.Server.Workload.name;
          prog_digest = e.Server.Workload.digest;
          fn_count = e.Server.Workload.fn_count;
        })
      catalog
  in
  let cfg =
    { Net.Daemon.default_config with port; domains; queue_depth; max_sessions }
  in
  let daemon = Net.Daemon.create engine ~catalog:rows cfg in
  (* graceful drain on SIGINT/SIGTERM: stop accepting, let the workers
     finish in-flight requests and exit; [run] then returns *)
  let stop _ = Net.Daemon.request_stop daemon in
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  Printf.printf "mccd: serving on 127.0.0.1:%d (%d worker domains, %d conns \
                 each)\n%!"
    (Net.Daemon.port daemon) domains queue_depth;
  Net.Daemon.run daemon;
  let s = Net.Daemon.stats daemon in
  Printf.printf
    "mccd: drained. accepted %d, served %d frames, shed %d, bad frames %d\n"
    s.Net.Daemon.c_accepted s.Net.Daemon.c_served s.Net.Daemon.c_shed
    s.Net.Daemon.c_bad_frames;
  Server.Stats.print (Server.report engine);
  0

open Cmdliner

let requests =
  Arg.(value & opt int 120 & info [ "requests" ] ~docv:"N"
       ~doc:"Synthetic workload request count.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let budget =
  Arg.(value & opt int (256 * 1024) & info [ "budget" ] ~docv:"BYTES"
       ~doc:"Artifact-cache byte budget.")

let drop =
  Arg.(value & opt int 10 & info [ "drop" ] ~docv:"PCT"
       ~doc:"Percent of chunk responses dropped in flight (exercises resume).")

let faults =
  Arg.(value & opt int 0 & info [ "faults" ] ~docv:"N"
       ~doc:"Corrupt N cached artifacts before the workload (exercises \
             quarantine and degradation).")

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Small generated corpus (fast CI).")

let script =
  Arg.(value & opt (some file) None & info [ "script" ] ~docv:"FILE"
       ~doc:"Replay a request script instead of the synthetic workload.")

let no_check =
  Arg.(value & flag & info [ "no-check" ] ~doc:"Skip the acceptance checks.")

let domains =
  Arg.(value & opt int 0 & info [ "domains" ] ~docv:"N"
       ~doc:"Resize the shared pool the engine's store compresses with.")

let policy =
  Arg.(value & opt (some file) None & info [ "policy" ] ~docv:"FILE"
       ~doc:"Tuned serving-policy table (mcctune / make tune); fetch \
             consults it before live scoring.")

let run_term =
  Term.(
    const main $ requests $ seed $ budget $ drop $ faults $ quick $ script
    $ no_check $ domains $ policy)

let serve_cmd =
  let port =
    Arg.(value & opt int 0 & info [ "port" ] ~docv:"PORT"
         ~doc:"Listen port on loopback (0 picks an ephemeral port).")
  in
  let serve_domains =
    Arg.(value & opt int 4 & info [ "domains" ] ~docv:"N"
         ~doc:"Worker event-loop domains (the store is sharded to match).")
  in
  let queue_depth =
    Arg.(value & opt int 64 & info [ "queue-depth" ] ~docv:"N"
         ~doc:"Max live connections per worker; beyond that new \
               connections are shed with a typed Overloaded response.")
  in
  let max_sessions =
    Arg.(value & opt int 1024 & info [ "max-sessions" ] ~docv:"N"
         ~doc:"Bound on the resumable chunked-session table.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the concurrent network daemon over loopback TCP")
    Term.(
      const serve $ port $ serve_domains $ queue_depth $ max_sessions $ budget
      $ quick $ policy)

let cmd =
  Cmd.group
    (Cmd.info "mccd" ~doc:"Code-delivery server driver" ~man:Cli.man_codecs)
    ~default:run_term [ serve_cmd ]

let () =
  Cli.handle_list_codecs ();
  exit (Cmd.eval' cmd)
