(* wirec — wire-format compressor / decompressor (paper §3).

     wirec compress prog.c -o prog.wire [--stats] [--no-mtf] [--no-split]
     wirec decompress prog.wire          (prints the recovered IR)
*)

let do_compress file out stats no_mtf no_split =
  let ir = Cc.Lower.compile (Cli.read_file file) in
  let z = Wire.compress ~use_mtf:(not no_mtf) ~split_streams:(not no_split) ir in
  let out = match out with Some o -> o | None -> file ^ ".wire" in
  Cli.write_file out z;
  Printf.printf "%s -> %s (%d bytes)\n" file out (String.length z);
  if stats then begin
    let s = Wire.stats ir in
    Printf.printf "  statements: %d (%d distinct patterns)\n" s.Wire.pattern_count
      s.Wire.distinct_patterns;
    Printf.printf "  pattern stream %d B + novel table %d B\n"
      s.Wire.pattern_stream_bytes s.Wire.novel_table_bytes;
    List.iter
      (fun (cls, bytes) -> Printf.printf "  literal stream %-10s %6d B\n" cls bytes)
      s.Wire.literal_stream_bytes;
    Printf.printf "  bundle %d B -> deflated %d B\n" s.Wire.bundle_bytes
      s.Wire.wire_bytes
  end;
  0

let do_decompress file =
  match Wire.decompress (Cli.read_file file) with
  | Ok ir ->
    print_string (Ir.Printer.program_to_string ir);
    0
  | Error e ->
    Printf.eprintf "wirec: %s: %s\n" file (Support.Decode_error.to_string e);
    1

open Cmdliner

let file0 = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
let out = Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUT")
let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print stream statistics.")
let no_mtf = Arg.(value & flag & info [ "no-mtf" ] ~doc:"Skip move-to-front coding (ablation).")
let no_split = Arg.(value & flag & info [ "no-split" ] ~doc:"Pool all literal streams (ablation).")

let compress_cmd =
  Cmd.v (Cmd.info "compress" ~doc:"Compile MiniC and compress to the wire format")
    Term.(const do_compress $ file0 $ out $ stats $ no_mtf $ no_split)

let decompress_cmd =
  Cmd.v (Cmd.info "decompress" ~doc:"Decompress and print the recovered IR")
    Term.(const do_decompress $ file0)

let cmd =
  Cmd.group
    (Cmd.info "wirec" ~doc:"Wire-format code compressor (PLDI'97 section 3)"
       ~man:Cli.man_codecs)
    [ compress_cmd; decompress_cmd ]

let () =
  Cli.handle_list_codecs ();
  exit (Cmd.eval' cmd)
