(* briscrun — execute a BRISC container.

     briscrun prog.brisc            interpret the compressed code in place
     briscrun prog.brisc --jit      JIT to native and simulate
     briscrun prog.brisc --decompress   print the recovered OmniVM code
*)

let main file jit decompress input_file =
  match Brisc.of_bytes (Cli.read_file file) with
  | Error e ->
    Printf.eprintf "briscrun: %s: %s\n" file
      (Support.Decode_error.to_string e);
    1
  | Ok img ->
  let input =
    match input_file with None -> "" | Some f -> Cli.read_file f
  in
  if decompress then begin
    match Brisc.Decomp.decompress img with
    | Ok vp ->
      print_string (Vm.Isa.program_to_string vp);
      0
    | Error e ->
      Printf.eprintf "briscrun: %s: %s\n" file
        (Support.Decode_error.to_string e);
      1
  end
  else if jit then begin
    let np, produced = Brisc.Jit.compile_with_stats img in
    Printf.eprintf "jit: %d native bytes\n%!" produced;
    let r = Native.Sim.run ~input np in
    print_string r.Native.Sim.output;
    r.Native.Sim.exit_code land 255
  end
  else begin
    let r = Brisc.Interp.run ~input img in
    Printf.eprintf "interp: %d dispatches, %d VM instructions\n%!"
      r.Brisc.Interp.dispatches r.Brisc.Interp.vm_steps;
    print_string r.Brisc.Interp.output;
    r.Brisc.Interp.exit_code land 255
  end

open Cmdliner

let file0 = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.brisc")
let jit = Arg.(value & flag & info [ "jit" ] ~doc:"JIT to native code and simulate.")
let decompress = Arg.(value & flag & info [ "decompress" ] ~doc:"Print the recovered VM code.")
let input_file = Arg.(value & opt (some file) None & info [ "input" ] ~docv:"FILE")

let cmd =
  Cmd.v
    (Cmd.info "briscrun" ~doc:"Run BRISC code: in-place interpretation or JIT"
       ~man:Cli.man_codecs)
    Term.(const main $ file0 $ jit $ decompress $ input_file)

let () =
  Cli.handle_list_codecs ();
  exit (Cmd.eval' cmd)
