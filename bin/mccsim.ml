(* mccsim — trace-driven fleet simulator.

     dune exec bin/mccsim.exe -- record --scenario flash-crowd \
       --catalog quick --events 400 --seed 42 --out traces/flash_crowd.trace
     dune exec bin/mccsim.exe -- record --out workload.trace   # capture a live run
     dune exec bin/mccsim.exe -- replay traces/flash_crowd.trace --json
     dune exec bin/mccsim.exe -- ab traces/flash_crowd.trace \
       --a-policy POLICY.tune --json --out BENCH_ab.json

   [record --scenario] synthesizes a trace from a named generator;
   without a scenario it runs the synthetic workload against a live
   engine and captures what the observer hook sees. [replay] replays a
   trace deterministically (in-process, or --daemon for the loopback
   TCP path). [ab] replays the same trace under two engine
   configurations and reports the diff. *)

let fail fmt = Printf.ksprintf failwith fmt

let flavor_of name =
  match Sim.Catalog.flavor_of_name name with
  | Some f -> f
  | None ->
    fail "mccsim: unknown catalog flavor %s (mini|quick|full|versioned)" name

let load_policy = function
  | None -> None
  | Some file -> (
    match Tune.Policy.load file with
    | Ok pol -> Some pol
    | Error e -> fail "mccsim: policy %s: %s" file e)

let load_trace file =
  match Sim.Trace.load file with
  | Ok t -> t
  | Error e -> fail "mccsim: %s: %s" file (Support.Decode_error.to_string e)

let write_out out s =
  match out with
  | None -> print_string s
  | Some file ->
    let oc = open_out_bin file in
    output_string oc s;
    close_out oc;
    Printf.printf "mccsim: wrote %s (%d bytes)\n" file (String.length s)

(* ---- record ---- *)

let record scenario catalog seed events out =
  let flavor = flavor_of catalog in
  let trace =
    match scenario with
    | Some sname ->
      let spec =
        match Sim.Gen.find sname with
        | Some s -> s
        | None ->
          fail "mccsim: unknown scenario %s (have: %s)" sname
            (String.concat ", "
               (List.map (fun s -> s.Sim.Gen.sname) Sim.Gen.all))
      in
      (* the generator only needs the key space, but key names come
         from a published catalog, so cut one on a scratch engine *)
      let engine = Server.create () in
      let keys =
        List.map
          (fun (e : Server.Workload.entry) -> e.Server.Workload.name)
          (Sim.Catalog.publish engine flavor)
      in
      let t =
        spec.Sim.Gen.generate ~seed:(Int64.of_int seed) ~events ~keys
      in
      { t with Sim.Trace.catalog }
    | None ->
      let engine = Server.create () in
      let entries = Sim.Catalog.publish engine flavor in
      let config =
        { Server.Workload.default_config with
          requests = events;
          seed = Int64.of_int seed;
        }
      in
      let summary, t =
        Sim.Record.of_workload engine ~config ~catalog_name:catalog entries
      in
      Printf.printf "mccsim: captured %d workload requests\n"
        summary.Server.Workload.requests;
      t
  in
  Sim.Trace.save out trace;
  Printf.printf "mccsim: %s: %d events (%s over %s, seed %d)\n" out
    (List.length trace.Sim.Trace.events)
    trace.Sim.Trace.scenario trace.Sim.Trace.catalog seed;
  0

(* ---- replay ---- *)

let replay file policy budget domains daemon json log =
  if domains > 0 then Support.Pool.set_shared_domains domains;
  let trace = load_trace file in
  let config =
    { Sim.Replay.default_config with
      budget_bytes = budget;
      policy = load_policy policy;
    }
  in
  let r =
    if daemon then Sim.Replay.via_daemon ~config trace
    else Sim.Replay.run ~config trace
  in
  if log then print_string r.Sim.Replay.r_log;
  print_string
    (if json then Sim.Replay.to_json r ^ "\n" else Sim.Replay.render r);
  0

(* ---- ab ---- *)

let ab file a_policy b_policy a_budget b_budget json out =
  let trace = load_trace file in
  let side label policy budget =
    { Sim.Replay.label; budget_bytes = budget; policy = load_policy policy;
      pool = None; contexted = true }
  in
  let d =
    Sim.Ab.run
      ~a:(side "tuned" a_policy a_budget)
      ~b:(side "live" b_policy b_budget)
      trace
  in
  write_out out (if json then Sim.Ab.to_json d ^ "\n" else Sim.Ab.render d);
  if out <> None && json then print_string (Sim.Ab.render d);
  0

(* ---- storm ---- *)

(* Replay the same trace twice — update channel on (clients advertise
   held digests, unlocking shared-dictionary and delta serves) and off
   (every upgrade is a full redelivery) — and report the wire savings
   on the update ops. perf_gate --storm holds a floor on this report. *)
let storm file json out =
  let trace = load_trace file in
  let side label contexted =
    Sim.Replay.run
      ~config:{ Sim.Replay.default_config with label; contexted }
      trace
  in
  let d = side "delta" true in
  let f = side "full" false in
  let ub = d.Sim.Replay.r_update.Sim.Replay.bytes in
  let fb = f.Sim.Replay.r_update.Sim.Replay.bytes in
  let corrupt = d.Sim.Replay.r_update_corrupt + f.Sim.Replay.r_update_corrupt in
  let pct = if fb = 0 then 0. else float_of_int ub /. float_of_int fb *. 100. in
  let text =
    String.concat "\n"
      [
        Printf.sprintf "mcc-storm 1  scenario=%s catalog=%s seed=%Ld events=%d"
          d.Sim.Replay.r_scenario d.Sim.Replay.r_catalog d.Sim.Replay.r_seed
          d.Sim.Replay.r_events;
        Printf.sprintf "update ops           %d"
          d.Sim.Replay.r_update.Sim.Replay.ops;
        Printf.sprintf "update bytes (delta) %d" ub;
        Printf.sprintf "update bytes (full)  %d" fb;
        Printf.sprintf "delta vs full        %.1f%%" pct;
        Printf.sprintf "update corrupt       %d" corrupt;
        Printf.sprintf "total bytes (delta)  %d" d.Sim.Replay.r_bytes_on_wire;
        Printf.sprintf "total bytes (full)   %d" f.Sim.Replay.r_bytes_on_wire;
        "";
      ]
  in
  let json_s =
    String.concat "\n"
      [
        "{";
        "  \"format\": \"mcc-storm 1\",";
        Printf.sprintf "  \"scenario\": \"%s\"," d.Sim.Replay.r_scenario;
        Printf.sprintf "  \"delta\":\n%s," (Sim.Ab.indent (Sim.Replay.to_json d));
        Printf.sprintf "  \"full\":\n%s," (Sim.Ab.indent (Sim.Replay.to_json f));
        (* flat gate block: perf_gate --storm scans these by key, last
           occurrence wins, so they come after the nested reports *)
        Printf.sprintf
          "  \"gate\": {\"update_bytes\": %d, \"full_update_bytes\": %d, \
           \"storm_corrupt\": %d, \"update_ops\": %d}"
          ub fb corrupt d.Sim.Replay.r_update.Sim.Replay.ops;
        "}";
      ]
  in
  write_out out (if json then json_s ^ "\n" else text);
  if out <> None then print_string text;
  0

open Cmdliner

let catalog =
  Arg.(value & opt string "quick" & info [ "catalog" ] ~docv:"FLAVOR"
       ~doc:"Catalog flavor the trace runs against: mini, quick or full.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let budget_arg names doc =
  Arg.(value & opt int (256 * 1024) & info names ~docv:"BYTES" ~doc)

let record_cmd =
  let scenario =
    Arg.(value & opt (some string) None & info [ "scenario" ] ~docv:"NAME"
         ~doc:"Synthesize a named scenario (steady, flash-crowd, \
               corruption-burst, mixed-profiles, update-storm) instead of \
               capturing a live workload run.")
  in
  let events =
    Arg.(value & opt int 400 & info [ "events" ] ~docv:"N"
         ~doc:"Events to synthesize (or workload requests to capture).")
  in
  let out =
    Arg.(required & opt (some string) None & info [ "out" ] ~docv:"FILE"
         ~doc:"Trace file to write.")
  in
  Cmd.v
    (Cmd.info "record" ~doc:"Cut a trace: synthesize a scenario or capture \
                             a live workload run")
    Term.(const record $ scenario $ catalog $ seed $ events $ out)

let trace_file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE"
       ~doc:"Trace file (mccsim record).")

let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit JSON.")

let replay_cmd =
  let policy =
    Arg.(value & opt (some file) None & info [ "policy" ] ~docv:"FILE"
         ~doc:"Tuned serving-policy table for the replay engine.")
  in
  let domains =
    Arg.(value & opt int 0 & info [ "domains" ] ~docv:"N"
         ~doc:"Resize the shared compression pool (reports are identical \
               at any size — that is the contract this flag lets you \
               check).")
  in
  let daemon =
    Arg.(value & flag & info [ "daemon" ]
         ~doc:"Replay through a loopback TCP daemon instead of in-process \
               (same events and bytes; measured latencies).")
  in
  let log =
    Arg.(value & flag & info [ "log" ]
         ~doc:"Print the per-event log before the report (what served, \
               at what size, under which context).")
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Deterministically replay a trace")
    Term.(
      const replay $ trace_file $ policy
      $ budget_arg [ "budget" ] "Artifact-cache byte budget."
      $ domains $ daemon $ json $ log)

let ab_cmd =
  let a_policy =
    Arg.(value & opt (some file) None & info [ "a-policy" ] ~docv:"FILE"
         ~doc:"Side A's serving-policy table (typically POLICY.tune).")
  in
  let b_policy =
    Arg.(value & opt (some file) None & info [ "b-policy" ] ~docv:"FILE"
         ~doc:"Side B's serving-policy table (default: live scoring).")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE"
         ~doc:"Write the report there instead of stdout (with --json the \
               text rendering still goes to stdout).")
  in
  Cmd.v
    (Cmd.info "ab" ~doc:"Replay one trace under two engine configurations \
                         and diff them")
    Term.(
      const ab $ trace_file $ a_policy $ b_policy
      $ budget_arg [ "a-budget" ] "Side A's cache budget."
      $ budget_arg [ "b-budget" ] "Side B's cache budget."
      $ json $ out)

let storm_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE"
         ~doc:"Write the report there instead of stdout (with --json the \
               text rendering still goes to stdout).")
  in
  Cmd.v
    (Cmd.info "storm"
       ~doc:"Replay an update-storm trace with the update channel on and \
             off and report delta bytes-on-wire vs full redelivery")
    Term.(const storm $ trace_file $ json $ out)

let cmd =
  Cmd.group
    (Cmd.info "mccsim"
       ~doc:"Trace-driven fleet simulator: record, replay, A/B diff, \
             update-storm gate")
    [ record_cmd; replay_cmd; ab_cmd; storm_cmd ]

let () = exit (Cmd.eval' cmd)
