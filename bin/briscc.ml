(* briscc — BRISC compressor (paper §4).

     briscc prog.c -o prog.brisc [--k 20] [--ignore-w] [--stats]
     briscc prog.c --features no-imm     (section 5 de-tunings)
     briscc prog.c --domains 4           (parallel candidate scan)
     briscc prog.c --full-scan           (disable incremental passes)
*)

let main file out k ignore_w stats features_name domains full_scan =
  let features =
    match features_name with
    | "full" -> Vm.Isa.full_risc
    | "no-imm" -> Vm.Isa.minus_immediates
    | "no-disp" -> Vm.Isa.minus_reg_disp
    | "minimal" -> Vm.Isa.minimal
    | s ->
      Printf.eprintf "unknown feature set %S\n" s;
      exit 2
  in
  let ir = Cc.Lower.compile (Cli.read_file file) in
  let vp = Vm.Codegen.gen_program ~features ir in
  let pool =
    if domains > 1 then Some (Support.Pool.create ~domains) else None
  in
  let t0 = Unix.gettimeofday () in
  let img, rep = Brisc.measure ~k ~ignore_w ~full_scan ?pool vp in
  let t1 = Unix.gettimeofday () in
  (match pool with Some p -> Support.Pool.shutdown p | None -> ());
  let bytes = Brisc.to_bytes img in
  let t2 = Unix.gettimeofday () in
  let out = match out with Some o -> o | None -> file ^ ".brisc" in
  Cli.write_file out bytes;
  Printf.printf "%s -> %s: %d OmniVM bytes -> %d BRISC bytes (%.2fx)\n" file out
    rep.Brisc.original_bytes (String.length bytes)
    (float_of_int rep.Brisc.original_bytes /. float_of_int (String.length bytes));
  if stats then begin
    Printf.printf "  code %d B, dictionary+tables %d B\n" rep.Brisc.brisc_code
      rep.Brisc.brisc_dict;
    Printf.printf "  dictionary %d entries (%d base), %d candidates, %d passes\n"
      rep.Brisc.dict_entries rep.Brisc.base_entries rep.Brisc.candidates_tested
      rep.Brisc.passes;
    Printf.printf "  largest Markov successor set: %d\n"
      rep.Brisc.max_markov_successors;
    let b = rep.Brisc.build in
    Printf.printf
      "  compressor: scan %.3fs, rank %.3fs, rewrite %.3fs (%d items scanned, %d domain%s%s)\n"
      b.Brisc.scan_s b.Brisc.rank_s b.Brisc.rewrite_s b.Brisc.items_scanned
      b.Brisc.domains
      (if b.Brisc.domains = 1 then "" else "s")
      (if full_scan then ", full-scan" else "");
    (* the same stages the codec registry reports for "brisc" *)
    Cli.print_trace
      [ { Codec.stage = "dict+markov"; bytes_in = rep.Brisc.original_bytes;
          bytes_out = rep.Brisc.brisc_code; wall_s = t1 -. t0 };
        { Codec.stage = "container"; bytes_in = rep.Brisc.brisc_code;
          bytes_out = String.length bytes; wall_s = t2 -. t1 } ]
  end;
  0

open Cmdliner

let file0 = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.c")
let out = Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUT")
let k = Arg.(value & opt int 20 & info [ "k" ] ~doc:"Candidates accepted per pass.")
let ignore_w = Arg.(value & flag & info [ "ignore-w" ] ~doc:"Abundant-memory mode: B = P.")
let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print dictionary statistics.")
let features = Arg.(value & opt string "full" & info [ "features" ] ~docv:"SET")

let domains =
  Arg.(
    value & opt int 1
    & info [ "domains" ]
        ~doc:"Fan the candidate scan across N domains (same output bytes).")

let full_scan =
  Arg.(
    value & flag
    & info [ "full-scan" ]
        ~doc:
          "Rescan every item each pass instead of only dirty items (same \
           output bytes, original cost; for cross-checking).")

let cmd =
  Cmd.v
    (Cmd.info "briscc" ~doc:"BRISC code compressor (PLDI'97 section 4)"
       ~man:Cli.man_codecs)
    Term.(
      const main $ file0 $ out $ k $ ignore_w $ stats $ features $ domains
      $ full_scan)

let () =
  Cli.handle_list_codecs ();
  exit (Cmd.eval' cmd)
