(* mccload — closed/open-loop load generator for the mccd daemon.

     dune exec bin/mccload.exe -- --self --quick        # spin up a
         daemon in-process, hammer it, print the latency table
     dune exec bin/mccload.exe -- --connect 7070        # against a
         daemon already running (mccd serve --port 7070)
     dune exec bin/mccload.exe -- --self --json BENCH_server.json

   Closed loop by default (clients fire back-to-back, measuring max
   sustained QPS); --qps switches to open-loop arrivals where latency
   includes server-side queueing delay. Every response is verified
   through its codec's total decoder unless --no-verify. Exit status is
   1 when any response failed verification. *)

let main connect self clients requests qps seed stream_pct chunks domains
    server_domains budget quick json no_verify =
  let load_against port =
    let cfg =
      {
        Net.Load.default_config with
        port;
        clients;
        requests;
        qps;
        seed = Int64.of_int seed;
        stream_pct;
        chunks_per_session = chunks;
        domains;
        verify = not no_verify;
      }
    in
    let report = Net.Load.run cfg in
    Net.Load.print_human stdout report;
    (match json with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      Net.Load.print_json oc cfg report;
      close_out oc;
      Printf.printf "wrote %s\n" path);
    if report.Net.Load.corrupt > 0 then 1 else 0
  in
  match (connect, self) with
  | Some port, false -> load_against port
  | None, true ->
    (* self-hosted: daemon on an ephemeral port in a spawned domain,
       load from this one, graceful stop when the run is done *)
    let engine =
      Server.create ~shards:(max 1 server_domains) ~budget_bytes:budget ()
    in
    Printf.printf "mccload: publishing the corpus...\n%!";
    let catalog = Cli.publish_catalog ~quick engine in
    let rows =
      List.map
        (fun (e : Server.Workload.entry) ->
          {
            Net.Protocol.prog_name = e.Server.Workload.name;
            prog_digest = e.Server.Workload.digest;
            fn_count = e.Server.Workload.fn_count;
          })
        catalog
    in
    let cfg =
      { Net.Daemon.default_config with port = 0; domains = server_domains }
    in
    let daemon = Net.Daemon.create engine ~catalog:rows cfg in
    let runner = Domain.spawn (fun () -> Net.Daemon.run daemon) in
    Printf.printf "mccload: daemon on 127.0.0.1:%d (%d worker domains)\n%!"
      (Net.Daemon.port daemon) server_domains;
    let code = load_against (Net.Daemon.port daemon) in
    Net.Daemon.request_stop daemon;
    Domain.join runner;
    code
  | _ ->
    prerr_endline "mccload: pass exactly one of --connect PORT or --self";
    124

open Cmdliner

let connect =
  Arg.(value & opt (some int) None & info [ "connect" ] ~docv:"PORT"
       ~doc:"Drive a daemon already listening on loopback PORT.")

let self =
  Arg.(value & flag & info [ "self" ]
       ~doc:"Spin up a daemon in-process on an ephemeral port and drive it.")

let clients =
  Arg.(value & opt int 16 & info [ "clients" ] ~docv:"N"
       ~doc:"Concurrent client connections.")

let requests =
  Arg.(value & opt int 2000 & info [ "requests" ] ~docv:"N"
       ~doc:"Total requests across all clients.")

let qps =
  Arg.(value & opt float 0. & info [ "qps" ] ~docv:"RATE"
       ~doc:"Open-loop arrival rate; 0 (default) runs closed-loop.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let stream_pct =
  Arg.(value & opt int 25 & info [ "stream-pct" ] ~docv:"PCT"
       ~doc:"Percent of ops that open a chunked streaming session.")

let chunks =
  Arg.(value & opt int 6 & info [ "chunks" ] ~docv:"N"
       ~doc:"Chunks pulled per streaming session.")

let domains =
  Arg.(value & opt int 4 & info [ "domains" ] ~docv:"N"
       ~doc:"Domains the client threads are spread over.")

let server_domains =
  Arg.(value & opt int 4 & info [ "server-domains" ] ~docv:"N"
       ~doc:"Worker domains of the self-hosted daemon (--self only).")

let budget =
  Arg.(value & opt int (256 * 1024) & info [ "budget" ] ~docv:"BYTES"
       ~doc:"Artifact-cache budget of the self-hosted daemon (--self only).")

let quick =
  Arg.(value & flag & info [ "quick" ]
       ~doc:"Small generated corpus for the self-hosted daemon (fast CI).")

let json =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
       ~doc:"Also write the report as JSON to FILE.")

let no_verify =
  Arg.(value & flag & info [ "no-verify" ]
       ~doc:"Skip end-to-end decode verification of every response.")

let cmd =
  Cmd.v
    (Cmd.info "mccload" ~doc:"Load generator for the mccd network daemon")
    Term.(
      const main $ connect $ self $ clients $ requests $ qps $ seed
      $ stream_pct $ chunks $ domains $ server_domains $ budget $ quick $ json
      $ no_verify)

let () = exit (Cmd.eval' cmd)
