(* Tests for the network layer: protocol totality, the daemon end to
   end over real loopback sockets, session resume across reconnects,
   overload shedding, registry gating on the serve path, and graceful
   drain. *)

let prog src = Cc.Lower.compile src

let multi_fn_src =
  "int a(int x) { return x + 1; }\n\
   int b(int x) { return x * 2; }\n\
   int c(int x) { return x - 3; }\n\
   int main() { return a(1) + b(2) + c(3); }"

(* ---- protocol: encode/decode round trips ---- *)

(* encode_* emit the full frame (length prefix included); decode_*
   take the body after the prefix *)
let body_of frame = String.sub frame 4 (String.length frame - 4)

let roundtrip_req r =
  match Net.Protocol.decode_req (body_of (Net.Protocol.encode_req r)) with
  | Ok r' -> r' = r
  | Error _ -> false

let roundtrip_resp r =
  match Net.Protocol.decode_resp (body_of (Net.Protocol.encode_resp r)) with
  | Ok r' -> r' = r
  | Error _ -> false

let test_req_roundtrip () =
  List.iter
    (fun r -> Alcotest.(check bool) "request round-trips" true (roundtrip_req r))
    [
      Net.Protocol.Ping;
      Net.Protocol.List;
      Net.Protocol.Dict;
      Net.Protocol.Fetch
        { profile = "modem-jit"; digest = "abc123"; held = [] };
      Net.Protocol.Fetch
        { profile = "lan-jit"; digest = "abc123"; held = [ "d1"; "d2" ] };
      Net.Protocol.Open
        { codec = ""; digest = "abc123"; resume = ""; held = [] };
      Net.Protocol.Open
        { codec = "chunked-wire"; digest = "d"; resume = "s7";
          held = [ "sd-digest" ] };
      Net.Protocol.Chunk { token = "s0"; seq = 42; name = "main" };
    ]

let test_resp_roundtrip () =
  List.iter
    (fun r ->
      Alcotest.(check bool) "response round-trips" true (roundtrip_resp r))
    [
      Net.Protocol.Pong;
      Net.Protocol.Catalog [];
      Net.Protocol.Catalog
        [
          { Net.Protocol.prog_name = "wc"; prog_digest = "d1"; fn_count = 3 };
          { Net.Protocol.prog_name = "gen24"; prog_digest = "d2"; fn_count = 24 };
        ];
      Net.Protocol.Dict_data
        { lz = String.init 256 Char.chr; pats = "\x02ab\x00"; sd_digest = "sd" };
      Net.Protocol.Artifact
        { label = "wire+JIT"; codec = "wire"; cache_hit = true;
          degraded_from = ""; context = ""; body = String.init 256 Char.chr };
      Net.Protocol.Artifact
        { label = "delta+JIT"; codec = "delta"; cache_hit = false;
          degraded_from = "wire+JIT"; context = "base-digest"; body = "" };
      Net.Protocol.Index
        { token = "s3"; next_seq = 2; context = "";
          rows = [ ("main", 120); ("a", 33) ] };
      Net.Protocol.Index
        { token = "s4"; next_seq = 0; context = "sd-digest"; rows = [] };
      Net.Protocol.Chunk_data "\x00\xff payload";
      Net.Protocol.Err (Net.Protocol.Bad_session, "unknown token");
      Net.Protocol.Err (Net.Protocol.Server_error, "");
      Net.Protocol.Overloaded;
    ]

(* ---- protocol: hostile input is a typed error, never an exception ---- *)

let decode_fails ?kind body =
  match Net.Protocol.decode_req body with
  | Ok _ -> false
  | Error e -> (
    match kind with None -> true | Some k -> e.Support.Decode_error.kind = k)

let test_hostile_requests () =
  let good =
    body_of (Net.Protocol.encode_req
               (Net.Protocol.Fetch { profile = "p"; digest = "d"; held = [] }))
  in
  Alcotest.(check bool) "empty input" true
    (decode_fails ~kind:Support.Decode_error.Bad_magic "");
  Alcotest.(check bool) "wrong magic" true
    (decode_fails ~kind:Support.Decode_error.Bad_magic
       ("XXX" ^ String.sub good 3 (String.length good - 3)));
  Alcotest.(check bool) "truncated" true
    (decode_fails (String.sub good 0 (String.length good - 2)));
  (let corrupt = Bytes.of_string good in
   Bytes.set corrupt (String.length good - 1)
     (Char.chr (Char.code good.[String.length good - 1] lxor 1));
   Alcotest.(check bool) "flipped payload byte fails the CRC" true
     (decode_fails ~kind:Support.Decode_error.Checksum
        (Bytes.to_string corrupt)));
  Alcotest.(check bool) "trailing garbage" true
    (decode_fails ~kind:Support.Decode_error.Checksum (good ^ "junk"));
  (* unknown tag inside a correctly sealed frame *)
  Alcotest.(check bool) "unknown tag" true
    (decode_fails ~kind:Support.Decode_error.Bad_value
       (Support.Frame.seal ~magic:Net.Protocol.magic "Znonsense"));
  (* a length-prefixed string claiming more bytes than the frame has *)
  let b = Buffer.create 16 in
  Buffer.add_char b 'F';
  Support.Util.uleb128 b 1000;
  Buffer.add_string b "short";
  Alcotest.(check bool) "oversized string length" true
    (decode_fails (Support.Frame.seal ~magic:Net.Protocol.magic
                     (Buffer.contents b)));
  (* a held set claiming more digests than the cap is refused before
     any allocation *)
  let b = Buffer.create 16 in
  Buffer.add_char b 'F';
  Support.Frame.put_str b "p";
  Support.Frame.put_str b "d";
  Support.Util.uleb128 b (Net.Protocol.max_held + 1);
  Alcotest.(check bool) "held set over the cap" true
    (decode_fails ~kind:Support.Decode_error.Limit
       (Support.Frame.seal ~magic:Net.Protocol.magic (Buffer.contents b)));
  (* and the encoder refuses to build such a frame at all *)
  Alcotest.(check bool) "encoder refuses an oversized held set" true
    (match
       Net.Protocol.encode_req
         (Net.Protocol.Fetch
            {
              profile = "p";
              digest = "d";
              held = List.init (Net.Protocol.max_held + 1) string_of_int;
            })
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_hostile_responses () =
  let check name body =
    Alcotest.(check bool) name true
      (match Net.Protocol.decode_resp body with Ok _ -> false | Error _ -> true)
  in
  check "empty" "";
  check "unknown tag"
    (Support.Frame.seal ~magic:Net.Protocol.magic "qnonsense");
  check "error code out of domain"
    (Support.Frame.seal ~magic:Net.Protocol.magic "e\x63\x00");
  check "cache flag out of domain"
    (Support.Frame.seal ~magic:Net.Protocol.magic
       (let b = Buffer.create 16 in
        Buffer.add_char b 'a';
        Support.Frame.put_str b "l";
        Support.Frame.put_str b "wire";
        Buffer.add_char b '\x07';
        Support.Frame.put_str b "";
        Support.Frame.put_str b "x";
        Buffer.contents b));
  (* catalog count larger than the remaining frame *)
  check "oversized catalog count"
    (Support.Frame.seal ~magic:Net.Protocol.magic
       (let b = Buffer.create 8 in
        Buffer.add_char b 'l';
        Support.Util.uleb128 b 100000;
        Buffer.contents b))

(* ---- daemon end to end over real sockets ---- *)

type harness = {
  daemon : Net.Daemon.t;
  runner : unit Domain.t;
  digest : string;
  engine : Server.t;
}

let start ?(domains = 2) ?(queue_depth = 8) () =
  let engine = Server.create ~shards:domains () in
  let digest = Server.publish engine ~run_cycles:1_000_000 (prog multi_fn_src) in
  let catalog =
    [ { Net.Protocol.prog_name = "multi"; prog_digest = digest; fn_count = 4 } ]
  in
  let cfg =
    { Net.Daemon.default_config with port = 0; domains; queue_depth }
  in
  let daemon = Net.Daemon.create engine ~catalog cfg in
  let runner = Domain.spawn (fun () -> Net.Daemon.run daemon) in
  { daemon; runner; digest; engine }

let stop h =
  Net.Daemon.request_stop h.daemon;
  Domain.join h.runner

let rpc_ok c req =
  match Net.Client.rpc c req with
  | Ok resp -> resp
  | Error e -> Alcotest.fail (Support.Decode_error.to_string e)

let test_daemon_ping_list_fetch () =
  let h = start () in
  Fun.protect ~finally:(fun () -> stop h) @@ fun () ->
  let c = Net.Client.connect ~port:(Net.Daemon.port h.daemon) in
  Fun.protect ~finally:(fun () -> Net.Client.close c) @@ fun () ->
  (match rpc_ok c Net.Protocol.Ping with
  | Net.Protocol.Pong -> ()
  | _ -> Alcotest.fail "expected Pong");
  (match rpc_ok c Net.Protocol.List with
  | Net.Protocol.Catalog [ row ] ->
    Alcotest.(check string) "catalog digest" h.digest
      row.Net.Protocol.prog_digest
  | _ -> Alcotest.fail "expected one catalog row");
  (match
     rpc_ok c
       (Net.Protocol.Fetch
          { profile = "modem-jit"; digest = h.digest; held = [] })
   with
  | Net.Protocol.Artifact { codec; body; _ } ->
    (* round-trip corruption check: the served bytes must decode
       through the codec the response names *)
    let e = Codec.find_exn codec in
    (match Codec.decode e.Codec.codec body with
    | Ok _ -> ()
    | Error err ->
      Alcotest.fail ("served artifact does not decode: "
                     ^ Support.Decode_error.to_string err))
  | _ -> Alcotest.fail "expected Artifact");
  (match
     rpc_ok c
       (Net.Protocol.Fetch
          { profile = "modem-jit"; digest = "nope"; held = [] })
   with
  | Net.Protocol.Err (Net.Protocol.Unknown_name, _) -> ()
  | _ -> Alcotest.fail "unknown digest must be a typed error");
  match
    rpc_ok c
      (Net.Protocol.Fetch { profile = "never"; digest = h.digest; held = [] })
  with
  | Net.Protocol.Err (Net.Protocol.Unknown_name, _) -> ()
  | _ -> Alcotest.fail "unknown profile must be a typed error"

let open_session ?(held = []) c digest =
  match
    rpc_ok c (Net.Protocol.Open { codec = ""; digest; resume = ""; held })
  with
  | Net.Protocol.Index { token; next_seq; rows; _ } -> (token, next_seq, rows)
  | _ -> Alcotest.fail "expected Index"

let get_chunk c token seq name =
  match rpc_ok c (Net.Protocol.Chunk { token; seq; name }) with
  | Net.Protocol.Chunk_data payload -> payload
  | Net.Protocol.Err (_, m) -> Alcotest.fail ("chunk refused: " ^ m)
  | _ -> Alcotest.fail "expected Chunk_data"

let test_daemon_streaming_session () =
  let h = start () in
  Fun.protect ~finally:(fun () -> stop h) @@ fun () ->
  let c = Net.Client.connect ~port:(Net.Daemon.port h.daemon) in
  Fun.protect ~finally:(fun () -> Net.Client.close c) @@ fun () ->
  let token, next_seq, rows = open_session c h.digest in
  Alcotest.(check int) "fresh session starts at 0" 0 next_seq;
  Alcotest.(check bool) "index has rows" true (List.length rows >= 4);
  List.iteri
    (fun i (name, size) ->
      let payload = get_chunk c token i name in
      Alcotest.(check int) ("index size of " ^ name) size
        (String.length payload);
      (* every chunk is a complete, decodable single-function image *)
      match Wire.decompress payload with
      | Ok _ -> ()
      | Error e ->
        Alcotest.fail ("chunk does not decode: "
                       ^ Support.Decode_error.to_string e))
    rows;
  (* session-level refusals surface as typed wire errors *)
  (match rpc_ok c (Net.Protocol.Chunk { token; seq = 99; name = "main" }) with
  | Net.Protocol.Err (Net.Protocol.Bad_seq, _) -> ()
  | _ -> Alcotest.fail "bad seq must be a typed error");
  match
    rpc_ok c (Net.Protocol.Chunk { token = "s999"; seq = 0; name = "main" })
  with
  | Net.Protocol.Err (Net.Protocol.Bad_session, _) -> ()
  | _ -> Alcotest.fail "unknown token must be a typed error"

(* the tentpole resume scenario: kill the TCP connection mid-stream,
   reconnect, resume by token, and verify the replay table retransmits
   previously served seqs byte-for-byte *)
let test_daemon_resume_across_reconnect () =
  let h = start () in
  Fun.protect ~finally:(fun () -> stop h) @@ fun () ->
  let port = Net.Daemon.port h.daemon in
  let c1 = Net.Client.connect ~port in
  let token, _, rows = open_session c1 h.digest in
  let names = Array.of_list (List.map fst rows) in
  let p0 = get_chunk c1 token 0 names.(0) in
  let p1 = get_chunk c1 token 1 names.(1) in
  (* connection dies mid-stream (no goodbye) *)
  Net.Client.close c1;
  let c2 = Net.Client.connect ~port in
  Fun.protect ~finally:(fun () -> Net.Client.close c2) @@ fun () ->
  (match
     rpc_ok c2
       (Net.Protocol.Open
          { codec = ""; digest = h.digest; resume = token; held = [] })
   with
  | Net.Protocol.Index { token = t'; next_seq; _ } ->
    Alcotest.(check string) "same session" token t';
    Alcotest.(check int) "window preserved across reconnect" 2 next_seq
  | _ -> Alcotest.fail "expected Index on resume");
  (* replayed seqs come back byte-for-byte *)
  Alcotest.(check string) "seq 0 retransmitted byte-for-byte" p0
    (get_chunk c2 token 0 names.(0));
  Alcotest.(check string) "seq 1 retransmitted byte-for-byte" p1
    (get_chunk c2 token 1 names.(1));
  (* and the stream continues where it left off *)
  let p2 = get_chunk c2 token 2 names.(2) in
  Alcotest.(check bool) "stream continues" true (String.length p2 > 0);
  match
    rpc_ok c2
      (Net.Protocol.Open
         { codec = ""; digest = h.digest; resume = "s999"; held = [] })
  with
  | Net.Protocol.Err (Net.Protocol.Bad_session, _) -> ()
  | _ -> Alcotest.fail "bogus resume token must be a typed error"

(* ---- context negotiation over the wire ---- *)

(* Dict hands out the committed shared dictionary: its digest is what a
   holder advertises in [held], and the transportable byte forms
   rebuild a context with that exact digest *)
let test_daemon_dict () =
  let h = start () in
  Fun.protect ~finally:(fun () -> stop h) @@ fun () ->
  let c = Net.Client.connect ~port:(Net.Daemon.port h.daemon) in
  Fun.protect ~finally:(fun () -> Net.Client.close c) @@ fun () ->
  match rpc_ok c Net.Protocol.Dict with
  | Net.Protocol.Dict_data { lz; pats; sd_digest } ->
    Alcotest.(check string) "digest is the committed dictionary's"
      (Codec.Context.builtin_digest ()) sd_digest;
    Alcotest.(check string) "byte forms rebuild the same context" sd_digest
      (Codec.Context.digest (Codec.Context.shared ~lz ~pats_bytes:pats))
  | _ -> Alcotest.fail "expected Dict_data"

(* a client that fetched the dictionary and advertises its digest may
   be served a contexted representation; the response names the context
   it was encoded against, and the body decodes only under it *)
let test_daemon_fetch_with_held_dict () =
  let h = start () in
  Fun.protect ~finally:(fun () -> stop h) @@ fun () ->
  let c = Net.Client.connect ~port:(Net.Daemon.port h.daemon) in
  Fun.protect ~finally:(fun () -> Net.Client.close c) @@ fun () ->
  let sd =
    match rpc_ok c Net.Protocol.Dict with
    | Net.Protocol.Dict_data { sd_digest; _ } -> sd_digest
    | _ -> Alcotest.fail "expected Dict_data"
  in
  let fetch held =
    match
      rpc_ok c
        (Net.Protocol.Fetch { profile = "modem-jit"; digest = h.digest; held })
    with
    | Net.Protocol.Artifact { codec; context; body; _ } ->
      (codec, context, body)
    | _ -> Alcotest.fail "expected Artifact"
  in
  let base_codec, base_ctx, base_body = fetch [] in
  Alcotest.(check string) "no held set means a context-free serve" ""
    base_ctx;
  let codec, context, body = fetch [ sd ] in
  if context = "" then begin
    (* the engine may still prefer a context-free representation for
       this profile; the serve must then match the no-held serve *)
    Alcotest.(check string) "same codec as the context-free serve"
      base_codec codec;
    Alcotest.(check string) "same bytes as the context-free serve"
      base_body body
  end
  else begin
    Alcotest.(check string) "context names the advertised dictionary" sd
      context;
    let e = Codec.find_exn codec in
    (match Codec.decode ~ctx:(Codec.Context.builtin ()) e.Codec.codec body with
    | Ok _ -> ()
    | Error err ->
      Alcotest.fail
        ("contexted serve does not decode under its context: "
        ^ Support.Decode_error.to_string err));
    match Codec.decode e.Codec.codec body with
    | Error _ -> ()
    | Ok _ ->
      Alcotest.fail "contexted serve decoded without its context"
  end

(* the negotiated context survives a reconnect: a session opened with a
   held dictionary reports the same context on resume, the resume's own
   held set ignored *)
let test_daemon_session_context_across_reconnect () =
  let h = start () in
  Fun.protect ~finally:(fun () -> stop h) @@ fun () ->
  let port = Net.Daemon.port h.daemon in
  let sd = Codec.Context.builtin_digest () in
  let c1 = Net.Client.connect ~port in
  let token, ctx1 =
    match
      rpc_ok c1
        (Net.Protocol.Open
           { codec = ""; digest = h.digest; resume = ""; held = [ sd ] })
    with
    | Net.Protocol.Index { token; context; _ } -> (token, context)
    | _ -> Alcotest.fail "expected Index"
  in
  Alcotest.(check string) "session negotiated the dictionary" sd ctx1;
  Net.Client.close c1;
  let c2 = Net.Client.connect ~port in
  Fun.protect ~finally:(fun () -> Net.Client.close c2) @@ fun () ->
  (match
     rpc_ok c2
       (Net.Protocol.Open
          { codec = ""; digest = h.digest; resume = token; held = [] })
   with
  | Net.Protocol.Index { token = t'; context; _ } ->
    Alcotest.(check string) "same session" token t';
    Alcotest.(check string) "context survives the reconnect" sd context
  | _ -> Alcotest.fail "expected Index on resume");
  (* digests the server does not recognize negotiate nothing *)
  match
    rpc_ok c2
      (Net.Protocol.Open
         { codec = ""; digest = h.digest; resume = ""; held = [ "bogus" ] })
  with
  | Net.Protocol.Index { context; _ } ->
    Alcotest.(check string) "unknown held digests negotiate nothing" ""
      context
  | _ -> Alcotest.fail "expected Index"

(* overload: with every worker at queue_depth, a new connection gets the
   typed Overloaded frame, and existing connections keep working *)
let test_daemon_sheds_when_full () =
  let h = start ~domains:1 ~queue_depth:1 () in
  Fun.protect ~finally:(fun () -> stop h) @@ fun () ->
  let port = Net.Daemon.port h.daemon in
  let c1 = Net.Client.connect ~port in
  Fun.protect ~finally:(fun () -> Net.Client.close c1) @@ fun () ->
  (match rpc_ok c1 Net.Protocol.Ping with
  | Net.Protocol.Pong -> ()
  | _ -> Alcotest.fail "expected Pong");
  let c2 = Net.Client.connect ~port in
  (match Net.Client.rpc c2 Net.Protocol.Ping with
  | Ok Net.Protocol.Overloaded -> ()
  | Ok _ -> Alcotest.fail "expected Overloaded shed"
  | Error e -> Alcotest.fail (Support.Decode_error.to_string e));
  Net.Client.close c2;
  (* the resident connection is unaffected by the shed *)
  (match rpc_ok c1 Net.Protocol.Ping with
  | Net.Protocol.Pong -> ()
  | _ -> Alcotest.fail "expected Pong after shed");
  let s = Net.Daemon.stats h.daemon in
  Alcotest.(check bool) "shed counted" true (s.Net.Daemon.c_shed >= 1)

(* hostile bytes on the socket: typed error reply, then disconnect —
   the daemon survives *)
let test_daemon_rejects_bad_frames () =
  let h = start () in
  Fun.protect ~finally:(fun () -> stop h) @@ fun () ->
  let port = Net.Daemon.port h.daemon in
  let raw () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    fd
  in
  (* garbage with a plausible length prefix *)
  let fd = raw () in
  Unix.write_substring fd "\x00\x00\x00\x08AAAAAAAA" 0 12 |> ignore;
  (match Net.Protocol.read_frame fd with
  | Ok (Some body) -> (
    match Net.Protocol.decode_resp body with
    | Ok (Net.Protocol.Err (Net.Protocol.Bad_request, _)) -> ()
    | _ -> Alcotest.fail "expected Bad_request for garbage")
  | _ -> Alcotest.fail "expected an error frame");
  (match Net.Protocol.read_frame fd with
  | Ok None -> ()  (* server hung up after the typed error *)
  | _ -> Alcotest.fail "expected disconnect after bad frame");
  Unix.close fd;
  (* a length prefix over the request cap is refused before allocation *)
  let fd = raw () in
  Unix.write_substring fd "\x7f\xff\xff\xff" 0 4 |> ignore;
  (match Net.Protocol.read_frame fd with
  | Ok (Some body) -> (
    match Net.Protocol.decode_resp body with
    | Ok (Net.Protocol.Err (Net.Protocol.Bad_request, _)) -> ()
    | _ -> Alcotest.fail "expected Bad_request for oversized frame")
  | _ -> Alcotest.fail "expected an error frame");
  Unix.close fd;
  (* the daemon still serves *)
  let c = Net.Client.connect ~port in
  Fun.protect ~finally:(fun () -> Net.Client.close c) @@ fun () ->
  (match rpc_ok c Net.Protocol.Ping with
  | Net.Protocol.Pong -> ()
  | _ -> Alcotest.fail "expected Pong after hostile clients");
  let s = Net.Daemon.stats h.daemon in
  Alcotest.(check bool) "bad frames counted" true
    (s.Net.Daemon.c_bad_frames >= 2)

(* registry hygiene on the serve path: every registered codec's
   streamable flag decides whether a chunked session may open over it *)
let test_streamable_gating_per_registry_entry () =
  let engine = Server.create () in
  let digest = Server.publish engine ~run_cycles:1_000_000 (prog multi_fn_src) in
  List.iter
    (fun (e : Codec.entry) ->
      let name = Codec.name e.Codec.codec in
      match Server.open_session_for engine ~codec:name digest with
      | Ok _ ->
        Alcotest.(check bool) (name ^ " opened because streamable") true
          e.Codec.streamable
      | Error (`Not_streamable n) ->
        Alcotest.(check bool) (name ^ " refused because not streamable") false
          e.Codec.streamable;
        Alcotest.(check string) "refusal names the codec" name n
      | Error (`Unknown_codec _) ->
        Alcotest.fail (name ^ ": registered codec reported unknown"))
    (Codec.all ());
  match Server.open_session_for engine ~codec:"no-such-codec" digest with
  | Error (`Unknown_codec _) -> ()
  | _ -> Alcotest.fail "unknown codec must be a typed error"

(* the same gate at the wire level *)
let test_daemon_open_gating () =
  let h = start () in
  Fun.protect ~finally:(fun () -> stop h) @@ fun () ->
  let c = Net.Client.connect ~port:(Net.Daemon.port h.daemon) in
  Fun.protect ~finally:(fun () -> Net.Client.close c) @@ fun () ->
  (match
     rpc_ok c
       (Net.Protocol.Open
          { codec = "wire"; digest = h.digest; resume = ""; held = [] })
   with
  | Net.Protocol.Err (Net.Protocol.Not_streamable, _) -> ()
  | _ -> Alcotest.fail "non-streamable codec must be refused");
  match
    rpc_ok c
      (Net.Protocol.Open
         { codec = "no-such-codec"; digest = h.digest; resume = "";
           held = [] })
  with
  | Net.Protocol.Err (Net.Protocol.Unknown_name, _) -> ()
  | _ -> Alcotest.fail "unknown codec must be refused"

(* graceful drain: request_stop is exactly what the SIGINT/SIGTERM
   handlers call; the daemon must stop accepting and run must return *)
let test_daemon_drains_on_stop () =
  let h = start () in
  let port = Net.Daemon.port h.daemon in
  let c = Net.Client.connect ~port in
  (match rpc_ok c Net.Protocol.Ping with
  | Net.Protocol.Pong -> ()
  | _ -> Alcotest.fail "expected Pong");
  Net.Client.close c;
  stop h;  (* request_stop + join: run returned, workers drained *)
  (match Net.Client.connect ~port with
  | c ->
    (* a connect may still succeed briefly (TCP races a closing
       listener); the next rpc must observe the shutdown *)
    (match Net.Client.rpc c Net.Protocol.Ping with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "daemon answered after drain");
    Net.Client.close c
  | exception Unix.Unix_error _ -> ());
  let s = Net.Daemon.stats h.daemon in
  Alcotest.(check bool) "served before drain" true (s.Net.Daemon.c_served >= 1)

(* the load generator against a live daemon: every response verified,
   none corrupt *)
let test_load_generator_end_to_end () =
  let h = start () in
  Fun.protect ~finally:(fun () -> stop h) @@ fun () ->
  let cfg =
    {
      Net.Load.default_config with
      port = Net.Daemon.port h.daemon;
      clients = 4;
      requests = 150;
      domains = 2;
      stream_pct = 50;
    }
  in
  let r = Net.Load.run cfg in
  Alcotest.(check int) "all ops sent" 150 r.Net.Load.sent;
  Alcotest.(check int) "no errors" 0 r.Net.Load.errors;
  Alcotest.(check int) "no corruption" 0 r.Net.Load.corrupt;
  Alcotest.(check int) "all ok" 150 r.Net.Load.ok;
  Alcotest.(check bool) "latencies recorded" true
    (r.Net.Load.lat_all.Net.Load.count = 150)

(* the percentile math moved to Support.Quantile (and its property
   tests to test_support); Load re-exports it for its report types *)

let () =
  Alcotest.run "net"
    [
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Quick test_req_roundtrip;
          Alcotest.test_case "response round-trip" `Quick test_resp_roundtrip;
          Alcotest.test_case "hostile requests" `Quick test_hostile_requests;
          Alcotest.test_case "hostile responses" `Quick test_hostile_responses;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "ping, list, fetch" `Quick
            test_daemon_ping_list_fetch;
          Alcotest.test_case "streaming session" `Quick
            test_daemon_streaming_session;
          Alcotest.test_case "resume across reconnect" `Quick
            test_daemon_resume_across_reconnect;
          Alcotest.test_case "shared dictionary handout" `Quick
            test_daemon_dict;
          Alcotest.test_case "held dictionary unlocks contexted serves"
            `Quick test_daemon_fetch_with_held_dict;
          Alcotest.test_case "session context across reconnect" `Quick
            test_daemon_session_context_across_reconnect;
          Alcotest.test_case "sheds when full" `Quick
            test_daemon_sheds_when_full;
          Alcotest.test_case "rejects bad frames" `Quick
            test_daemon_rejects_bad_frames;
          Alcotest.test_case "drains on stop" `Quick
            test_daemon_drains_on_stop;
        ] );
      ( "gating",
        [
          Alcotest.test_case "streamable flag per registry entry" `Quick
            test_streamable_gating_per_registry_entry;
          Alcotest.test_case "gate at the wire level" `Quick
            test_daemon_open_gating;
        ] );
      ( "load",
        [
          Alcotest.test_case "generator end to end" `Quick
            test_load_generator_end_to_end;
        ] );
    ]
