(* The demand pager's eviction contract, checked against a naive
   reference oracle: strict LRU over a touch sequence is a pure
   function of that sequence, so the incremental pager and a
   from-scratch recency list must agree on the resident set and every
   counter after every single touch. Random budgets deliberately cross
   item boundaries, fall below a single item, or hold everything. *)

let qcheck = QCheck_alcotest.to_alcotest

(* ---- reference oracle: recency list, re-scanned on every touch ---- *)

type oracle = {
  mutable recency : int list;  (* most recent first *)
  costs : int array;
  stalls : int array;
  budget : int;
  ostats : Vm.Pager.stats;
}

let oracle_make ~budget costs stalls =
  {
    recency = [];
    costs;
    stalls;
    budget;
    ostats =
      {
        Vm.Pager.faults = 0;
        hits = 0;
        evictions = 0;
        stall_cycles = 0;
        loaded_bytes = 0;
        resident_bytes = 0;
        resident_hwm = 0;
      };
  }

let oracle_touch o i =
  let s = o.ostats in
  if List.mem i o.recency then begin
    s.Vm.Pager.hits <- s.Vm.Pager.hits + 1;
    o.recency <- i :: List.filter (fun j -> j <> i) o.recency
  end
  else begin
    s.Vm.Pager.faults <- s.Vm.Pager.faults + 1;
    s.Vm.Pager.stall_cycles <- s.Vm.Pager.stall_cycles + o.stalls.(i);
    s.Vm.Pager.loaded_bytes <- s.Vm.Pager.loaded_bytes + o.costs.(i);
    s.Vm.Pager.resident_bytes <- s.Vm.Pager.resident_bytes + o.costs.(i);
    o.recency <- i :: o.recency;
    (* evict least-recent victims, never the item just faulted in *)
    let rec evict () =
      if s.Vm.Pager.resident_bytes > o.budget then
        match List.rev o.recency with
        | v :: _ when v <> i ->
          o.recency <- List.filter (fun j -> j <> v) o.recency;
          s.Vm.Pager.resident_bytes <- s.Vm.Pager.resident_bytes - o.costs.(v);
          s.Vm.Pager.evictions <- s.Vm.Pager.evictions + 1;
          evict ()
        | _ -> ()  (* only the pinned faulting item remains *)
    in
    evict ()
  end;
  s.Vm.Pager.resident_hwm <-
    max s.Vm.Pager.resident_hwm s.Vm.Pager.resident_bytes

(* ---- generators ----

   Item costs in 1..80 against budgets in 1..200: budgets routinely
   cross item boundaries, sometimes hold a single item or less, and
   sometimes hold the whole set. Touch sequences are long enough to
   re-touch items long after their eviction. *)

let gen_case =
  QCheck.Gen.(
    let* n = int_range 1 12 in
    let* costs = array_size (return n) (int_range 1 80) in
    let* stalls = array_size (return n) (int_range 0 1000) in
    let* budget = int_range 1 200 in
    let* touches = list_size (int_range 1 120) (int_range 0 (n - 1)) in
    return (costs, stalls, budget, touches))

let print_case (costs, stalls, budget, touches) =
  Printf.sprintf "costs=[%s] stalls=[%s] budget=%d touches=[%s]"
    (String.concat ";" (Array.to_list (Array.map string_of_int costs)))
    (String.concat ";" (Array.to_list (Array.map string_of_int stalls)))
    budget
    (String.concat ";" (List.map string_of_int touches))

let arb_case = QCheck.make ~print:print_case gen_case

let check_agree (costs, stalls, budget, touches) =
  let n = Array.length costs in
  let pager =
    Vm.Pager.create ~budget_bytes:budget ~items:n (fun i ->
        { Vm.Pager.item = i; cost_bytes = costs.(i); stall_cycles = stalls.(i) })
  in
  let o = oracle_make ~budget costs stalls in
  List.for_all
    (fun i ->
      let v = Vm.Pager.get pager i in
      oracle_touch o i;
      let s = Vm.Pager.stats pager and os = o.ostats in
      v = i
      && Vm.Pager.resident_indices pager
         = List.sort compare o.recency
      && s.Vm.Pager.faults = os.Vm.Pager.faults
      && s.Vm.Pager.hits = os.Vm.Pager.hits
      && s.Vm.Pager.evictions = os.Vm.Pager.evictions
      && s.Vm.Pager.stall_cycles = os.Vm.Pager.stall_cycles
      && s.Vm.Pager.loaded_bytes = os.Vm.Pager.loaded_bytes
      && s.Vm.Pager.resident_bytes = os.Vm.Pager.resident_bytes
      && s.Vm.Pager.resident_hwm = os.Vm.Pager.resident_hwm)
    touches

let prop_matches_oracle =
  QCheck.Test.make ~name:"pager matches naive LRU oracle" ~count:500 arb_case
    check_agree

(* the resident set never exceeds the budget except while the only
   resident item is itself over budget (pinned during its fault) *)
let prop_budget_respected =
  QCheck.Test.make ~name:"resident set bounded by budget or a single item"
    ~count:500 arb_case (fun (costs, stalls, budget, touches) ->
      let n = Array.length costs in
      let pager =
        Vm.Pager.create ~budget_bytes:budget ~items:n (fun i ->
            {
              Vm.Pager.item = i;
              cost_bytes = costs.(i);
              stall_cycles = stalls.(i);
            })
      in
      List.for_all
        (fun i ->
          ignore (Vm.Pager.get pager i);
          let s = Vm.Pager.stats pager in
          s.Vm.Pager.resident_bytes <= budget
          || Vm.Pager.resident_indices pager = [ i ])
        touches)

(* ---- directed cases ---- *)

let mk ?(budget = 100) costs =
  Vm.Pager.create ~budget_bytes:budget ~items:(Array.length costs) (fun i ->
      { Vm.Pager.item = i; cost_bytes = costs.(i); stall_cycles = 10 })

let test_retouch_refaults () =
  (* budget holds two of the three items; touching 0,1,2 evicts 0, and
     re-touching 0 must fault again (and evict 1, the next victim) *)
  let p = mk ~budget:100 [| 50; 50; 50 |] in
  List.iter (fun i -> ignore (Vm.Pager.get p i)) [ 0; 1; 2; 0 ];
  let s = Vm.Pager.stats p in
  Alcotest.(check int) "faults" 4 s.Vm.Pager.faults;
  Alcotest.(check int) "hits" 0 s.Vm.Pager.hits;
  Alcotest.(check int) "evictions" 2 s.Vm.Pager.evictions;
  Alcotest.(check (list int)) "resident" [ 0; 2 ]
    (Vm.Pager.resident_indices p)

let test_item_larger_than_budget () =
  (* an item over the whole budget still runs: pinned during its fault,
     everything else evicted, the high-water mark records the overshoot *)
  let p = mk ~budget:60 [| 40; 200; 30 |] in
  ignore (Vm.Pager.get p 0);
  ignore (Vm.Pager.get p 1);
  let s = Vm.Pager.stats p in
  Alcotest.(check (list int)) "only the oversized item" [ 1 ]
    (Vm.Pager.resident_indices p);
  Alcotest.(check int) "hwm records the overshoot" 200
    s.Vm.Pager.resident_hwm;
  ignore (Vm.Pager.get p 2);
  Alcotest.(check (list int)) "oversized item evicted on next fault" [ 2 ]
    (Vm.Pager.resident_indices p)

let test_budget_below_every_item () =
  (* budget smaller than any single page: every touch of a new item
     faults, exactly one item stays resident *)
  let p = mk ~budget:10 [| 30; 30; 30 |] in
  List.iter (fun i -> ignore (Vm.Pager.get p i)) [ 0; 1; 2; 0; 1; 2 ];
  let s = Vm.Pager.stats p in
  Alcotest.(check int) "every touch faults" 6 s.Vm.Pager.faults;
  Alcotest.(check int) "one resident at a time" 30 s.Vm.Pager.resident_bytes;
  Alcotest.(check int) "hwm is one item" 30 s.Vm.Pager.resident_hwm

let test_raising_load_leaves_pager_consistent () =
  let attempts = ref 0 in
  let p =
    Vm.Pager.create ~budget_bytes:100 ~items:2 (fun i ->
        if i = 1 then begin
          incr attempts;
          failwith "load exploded"
        end
        else { Vm.Pager.item = i; cost_bytes = 10; stall_cycles = 5 })
  in
  ignore (Vm.Pager.get p 0);
  (match Vm.Pager.get p 1 with
  | _ -> Alcotest.fail "expected the load failure to propagate"
  | exception Failure _ -> ());
  let s = Vm.Pager.stats p in
  Alcotest.(check (list int)) "failed item not admitted" [ 0 ]
    (Vm.Pager.resident_indices p);
  Alcotest.(check int) "no stall charged for the failed load" 5
    s.Vm.Pager.stall_cycles;
  (* the pager still works, and the failed item retries its load *)
  (match Vm.Pager.get p 1 with
  | _ -> Alcotest.fail "expected the retried load to fail again"
  | exception Failure _ -> ());
  Alcotest.(check int) "load retried per fault" 2 !attempts;
  Alcotest.(check int) "item 0 still serviceable" 0 (Vm.Pager.get p 0)

let () =
  Alcotest.run "pager"
    [
      ( "lru-oracle",
        [
          qcheck prop_matches_oracle;
          qcheck prop_budget_respected;
        ] );
      ( "directed",
        [
          Alcotest.test_case "re-touch after evict refaults" `Quick
            test_retouch_refaults;
          Alcotest.test_case "item larger than budget pins" `Quick
            test_item_larger_than_budget;
          Alcotest.test_case "budget below every item" `Quick
            test_budget_below_every_item;
          Alcotest.test_case "raising load leaves pager consistent" `Quick
            test_raising_load_leaves_pager_consistent;
        ] );
    ]
