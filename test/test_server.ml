(* Tests for the code-delivery server: the byte-budgeted LRU artifact
   cache, the adaptive representation selector against the delivery
   model, the content-addressed store, and chunked-session resume. *)

let d = String.make 1

(* ---- cache: byte-budgeted LRU ---- *)

let test_cache_eviction_under_budget () =
  let c = Server.Cache.create ~budget_bytes:100 in
  Server.Cache.add c "a" (String.make 40 'a');
  Server.Cache.add c "b" (String.make 40 'b');
  (* touching "a" makes "b" the LRU entry *)
  Alcotest.(check bool) "a resident" true (Server.Cache.find c "a" <> None);
  Server.Cache.add c "c" (String.make 40 'c');
  Alcotest.(check bool) "b evicted" false (Server.Cache.mem c "b");
  Alcotest.(check bool) "a survives (recently used)" true (Server.Cache.mem c "a");
  Alcotest.(check bool) "c resident" true (Server.Cache.mem c "c");
  let st = Server.Cache.stats c in
  Alcotest.(check int) "one eviction" 1 st.Server.Cache.evictions;
  Alcotest.(check int) "resident bytes fit budget" 80
    st.Server.Cache.resident_bytes;
  Alcotest.(check int) "two resident" 2 st.Server.Cache.resident_count

let test_cache_counts_hits_and_misses () =
  let c = Server.Cache.create ~budget_bytes:100 in
  Server.Cache.add c "k" "v";
  Alcotest.(check (option string)) "hit" (Some "v") (Server.Cache.find c "k");
  Alcotest.(check (option string)) "miss" None (Server.Cache.find c "nope");
  let st = Server.Cache.stats c in
  Alcotest.(check int) "hits" 1 st.Server.Cache.hits;
  Alcotest.(check int) "misses" 1 st.Server.Cache.misses;
  Alcotest.(check (float 1e-9)) "hit rate" 0.5 (Server.Cache.hit_rate st)

let test_cache_oversized_value_not_cached () =
  let c = Server.Cache.create ~budget_bytes:16 in
  Server.Cache.add c "small" (String.make 8 's');
  (* a value bigger than the whole budget must not flush the cache *)
  Server.Cache.add c "huge" (String.make 64 'h');
  Alcotest.(check bool) "huge not cached" false (Server.Cache.mem c "huge");
  Alcotest.(check bool) "small untouched" true (Server.Cache.mem c "small")

let test_cache_replace_updates_bytes () =
  let c = Server.Cache.create ~budget_bytes:100 in
  Server.Cache.add c "k" (String.make 60 'x');
  Server.Cache.add c "k" (String.make 10 'y');
  let st = Server.Cache.stats c in
  Alcotest.(check int) "rebinding replaces, not adds" 10
    st.Server.Cache.resident_bytes;
  Alcotest.(check (option string)) "new value wins"
    (Some (String.make 10 'y'))
    (Server.Cache.find c "k")

let test_cache_lru_order_is_by_recency () =
  let c = Server.Cache.create ~budget_bytes:30 in
  List.iter (fun k -> Server.Cache.add c k (String.make 10 k.[0]))
    [ "a"; "b"; "c" ];
  (* recency now c > b > a; touch a, then overflow twice *)
  ignore (Server.Cache.find c "a");
  Server.Cache.add c "d" (String.make 10 'd');   (* evicts b *)
  Server.Cache.add c "e" (String.make 10 'e');   (* evicts c *)
  Alcotest.(check (list bool)) "survivors a/d/e, victims b/c"
    [ true; false; false; true; true ]
    (List.map (Server.Cache.mem c) [ "a"; "b"; "c"; "d"; "e" ])

(* ---- selector: profiles against the delivery model ---- *)

let sizes =
  { Scenario.Delivery.native_bytes = 70_000; gzip_bytes = 30_000;
    wire_bytes = 20_000; brisc_bytes = 45_000 }

let run_cycles = 50_000_000

let pick p = Scenario.Delivery.repr_name (fst (Server.Profile.select p sizes ~run_cycles))

let test_selector_matches_best_of () =
  (* on each hand-picked rate point the selector must agree with
     Delivery.best_of restricted to the profile's feasible set *)
  List.iter
    (fun (p : Server.Profile.t) ->
      let feas = Server.Profile.feasible p sizes in
      let want =
        fst
          (Scenario.Delivery.best_of feas sizes ~run_cycles
             ~link_bps:p.Server.Profile.link_bps)
      in
      Alcotest.(check string) p.Server.Profile.name
        (Scenario.Delivery.repr_name want)
        (pick p))
    [ Server.Profile.modem; Server.Profile.lan; Server.Profile.embedded;
      Server.Profile.datacenter ]

let test_selector_hand_picked_points () =
  (* the concrete choices at the stock rate card, derivable by hand
     from the linear model (transfer + prepare + run) *)
  Alcotest.(check string) "modem: densest form wins" "wire+JIT"
    (pick Server.Profile.modem);
  Alcotest.(check string) "datacenter: raw native, nothing to prepare"
    "native" (pick Server.Profile.datacenter);
  Alcotest.(check string) "embedded: interpretation is all that's feasible"
    "BRISC interp" (pick Server.Profile.embedded);
  (* a JIT client on a free link: BRISC's JIT-only preparation beats
     wire's decompress-then-JIT once transfer stops mattering *)
  let fast =
    Server.Profile.make "fast" ~link_bps:Scenario.Delivery.fast_lan_bps
  in
  Alcotest.(check string) "fast link, no native" "BRISC+JIT" (pick fast)

let test_feasibility_constraints () =
  let feas p = Server.Profile.feasible p sizes in
  Alcotest.(check bool) "embedded: only interp" true
    (feas Server.Profile.embedded = [ Scenario.Delivery.Brisc_interp ]);
  Alcotest.(check bool) "modem client can't take native" true
    (not (List.mem Scenario.Delivery.Raw_native (feas Server.Profile.modem)));
  Alcotest.(check bool) "datacenter can take native" true
    (List.mem Scenario.Delivery.Raw_native (feas Server.Profile.datacenter));
  (* never empty, even under an absurd memory budget *)
  let tiny = Server.Profile.make "tiny" ~link_bps:1e6 ~memory_bytes:1 in
  Alcotest.(check bool) "never empty" true (feas tiny <> [])

(* ---- store: content addressing, publish, eviction recovery ---- *)

let prog src = Cc.Lower.compile src

let multi_fn_src =
  "int a(int x) { return x + 1; }\n\
   int b(int x) { return x * 2; }\n\
   int c(int x) { return x - 3; }\n\
   int main() { return a(1) + b(2) + c(3); }"

let test_publish_idempotent () =
  let e = Server.create () in
  let ir = prog multi_fn_src in
  let d1 = Server.publish e ~run_cycles:1_000_000 ir in
  let d2 = Server.publish e ~run_cycles:1_000_000 ir in
  Alcotest.(check string) "same digest" d1 d2;
  Alcotest.(check int) "published once" 1 (List.length (Server.digests e));
  Alcotest.(check string) "digest is content-derived"
    (Server.Store.digest_of_program ir) d1

let test_distinct_programs_distinct_digests () =
  let e = Server.create () in
  let d1 = Server.publish e ~run_cycles:1 (prog "int main() { return 1; }") in
  let d2 = Server.publish e ~run_cycles:1 (prog "int main() { return 2; }") in
  Alcotest.(check bool) "different addresses" true (d1 <> d2)

let test_materialize_after_eviction () =
  (* a cache too small for everything: artifacts get evicted and must
     be recompressed on demand, byte-identical *)
  let e = Server.create ~budget_bytes:512 () in
  let ir = prog multi_fn_src in
  let dg = Server.publish e ~run_cycles:1_000_000 ir in
  let store = Server.store e in
  let first, _ = Server.Store.materialize store dg Server.Artifact.wire in
  (* churn the cache with the other representations *)
  List.iter
    (fun r -> ignore (Server.Store.materialize store dg r))
    (Server.Artifact.all ());
  let again, _ = Server.Store.materialize store dg Server.Artifact.wire in
  Alcotest.(check string) "recompression is deterministic" first again;
  Alcotest.(check bool) "artifact is a valid wire image" true
    (Ir.Tree.equal_program ir (Wire.decompress_exn again))

let test_fetch_unknown_digest () =
  let e = Server.create () in
  match Server.fetch e (d 'x') Server.Profile.modem with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown digest must raise Not_found"

let test_parallel_pool_equivalence () =
  (* a parallel compression pool must not change anything observable:
     same digest, same artifact bytes for every representation — both
     with a budget that holds the menu (publish fan-out) and with one
     that evicts (miss-path prefetch + sequential fallback) *)
  let ir = prog multi_fn_src in
  List.iter
    (fun budget_bytes ->
      let seq = Server.create ~budget_bytes () in
      let pool = Support.Pool.create ~domains:3 in
      let par = Server.create ~pool ~budget_bytes () in
      let d1 = Server.publish seq ~run_cycles:1_000_000 ir in
      let d2 = Server.publish par ~run_cycles:1_000_000 ir in
      Alcotest.(check string) "same digest" d1 d2;
      (* two rounds: the first parallel miss prefetches the whole menu,
         the second exercises the per-representation path *)
      for _ = 1 to 2 do
        List.iter
          (fun r ->
            let a, _ = Server.Store.materialize (Server.store seq) d1 r in
            let b, _ = Server.Store.materialize (Server.store par) d2 r in
            Alcotest.(check bool)
              (Printf.sprintf "%s identical (budget %d)" (Server.Artifact.name r)
                 budget_bytes)
              true (a = b))
          (Server.Artifact.all ())
      done;
      Support.Pool.shutdown pool)
    [ 256 * 1024; 512 ]

(* ---- chunked sessions: handshake, serving, resume ---- *)

let session_fixture () =
  let e = Server.create () in
  let ir = prog multi_fn_src in
  let dg = Server.publish e ~run_cycles:1_000_000 ir in
  (e, ir, dg, Server.open_session e dg)

let test_session_handshake () =
  let _, _, dg, s = session_fixture () in
  Alcotest.(check string) "session knows its digest" dg (Server.Session.digest s);
  let names = List.map fst (Server.Session.index s) in
  Alcotest.(check (list string)) "index lists every function"
    [ "a"; "b"; "c"; "main" ] (List.sort compare names);
  Alcotest.(check bool) "chunk sizes positive" true
    (List.for_all (fun (_, n) -> n > 0) (Server.Session.index s))

let test_session_chunks_are_wire_images () =
  let _, ir, _, s = session_fixture () in
  let seq = Server.Session.next_seq s in
  match Server.Session.request s ~seq "b" with
  | Error m -> Alcotest.fail m
  | Ok payload ->
    let p = Wire.decompress_exn payload in
    (match p.Ir.Tree.funcs with
    | [ f ] ->
      Alcotest.(check string) "the function asked for" "b" f.Ir.Tree.fname;
      let orig =
        List.find (fun (g : Ir.Tree.func) -> g.Ir.Tree.fname = "b")
          ir.Ir.Tree.funcs
      in
      Alcotest.(check bool) "materializes exactly" true (f = orig)
    | fs ->
      Alcotest.fail
        (Printf.sprintf "expected one function, got %d" (List.length fs)))

let test_session_resume_after_drop () =
  let _, _, _, s = session_fixture () in
  let seq0 = Server.Session.next_seq s in
  let p1 =
    match Server.Session.request s ~seq:seq0 "a" with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  (* the response was dropped in flight: the client repeats the same
     sequence number and must get the same bytes back *)
  (match Server.Session.request s ~seq:seq0 "a" with
  | Ok p -> Alcotest.(check string) "byte-for-byte retransmit" p1 p
  | Error m -> Alcotest.fail m);
  Alcotest.(check int) "retransmit doesn't advance the window" (seq0 + 1)
    (Server.Session.next_seq s);
  (* the session then continues normally *)
  (match Server.Session.request s ~seq:(seq0 + 1) "b" with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check int) "two distinct functions delivered" 2
    (Server.Session.delivered s)

let test_session_rejects_bad_requests () =
  let _, _, _, s = session_fixture () in
  let seq0 = Server.Session.next_seq s in
  ignore (Server.Session.request s ~seq:seq0 "a");
  let is_err = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "future seq rejected" true
    (is_err (Server.Session.request s ~seq:(seq0 + 5) "b"));
  Alcotest.(check bool) "stale retransmit must repeat the same name" true
    (is_err (Server.Session.request s ~seq:seq0 "b"));
  ignore (Server.Session.request s ~seq:(seq0 + 1) "b");
  (* answered sequence numbers stay replayable (late duplicates), but
     only as faithful repeats *)
  Alcotest.(check bool) "old seq with its original name retransmits" true
    (not (is_err (Server.Session.request s ~seq:seq0 "a")));
  Alcotest.(check bool) "old seq with a different name rejected" true
    (is_err (Server.Session.request s ~seq:seq0 "b"));
  Alcotest.(check bool) "unknown function rejected" true
    (is_err (Server.Session.request s ~seq:(Server.Session.next_seq s) "ghost"))

let test_session_late_duplicate_regression () =
  (* regression: a stale retry of an old request arriving after newer
     chunks were served must retransmit byte-for-byte and must not
     disturb the session offset (it used to be rejected once any newer
     request had been answered) *)
  let _, _, _, s = session_fixture () in
  let get seq name =
    match Server.Session.request s ~seq name with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  let p0 = get 0 "a" in
  let _ = get 1 "b" in
  let _ = get 2 "c" in
  Alcotest.(check string) "late duplicate of seq 0 retransmits" p0 (get 0 "a");
  Alcotest.(check int) "offset undisturbed" 3 (Server.Session.next_seq s);
  let _ = get 1 "b" in
  Alcotest.(check int) "offset still undisturbed" 3 (Server.Session.next_seq s);
  (* the session continues exactly where it was *)
  let _ = get 3 "main" in
  Alcotest.(check int) "four distinct functions delivered" 4
    (Server.Session.delivered s)

(* ---- fault injection: quarantine, degradation, healing ---- *)

let flip_middle b =
  let by = Bytes.of_string b in
  let i = Bytes.length by / 2 in
  Bytes.set by i (Char.chr (Char.code (Bytes.get by i) lxor 0x55));
  Bytes.to_string by

let test_fetch_degrades_on_corrupt_artifact () =
  let e = Server.create () in
  let ir = prog multi_fn_src in
  let dg = Server.publish e ~run_cycles:1_000_000 ir in
  let store = Server.store e in
  let first = Server.fetch e dg Server.Profile.modem in
  Alcotest.(check bool) "baseline fetch not degraded" true
    (first.Server.degraded_from = None);
  let victim = first.Server.artifact in
  Alcotest.(check bool) "victim artifact was resident" true
    (Server.Store.corrupt_cached store dg victim ~f:flip_middle);
  (* the poisoned bytes must never reach a client: the fetch quarantines
     them, records a typed failure, and serves the next-best repr *)
  let resp = Server.fetch e dg Server.Profile.modem in
  Alcotest.(check bool) "degraded response flagged" true
    (resp.Server.degraded_from <> None);
  Alcotest.(check bool) "a different artifact served" true
    (resp.Server.artifact <> victim);
  let r = Server.report e in
  Alcotest.(check int) "decode failure visible in stats" 1
    r.Server.Stats.decode_failures;
  Alcotest.(check int) "degraded fetch counted" 1
    r.Server.Stats.degraded_fetches;
  Alcotest.(check bool) "failure log names the digest" true
    (match r.Server.Stats.recent_failures with
    | [ f ] -> f.Server.Stats.fail_digest = dg && f.Server.Stats.fail_repr = victim
    | _ -> false);
  (* quarantine is self-healing: the next request rebuilds the artifact
     fresh from the published IR and serves the original choice again *)
  let healed = Server.fetch e dg Server.Profile.modem in
  Alcotest.(check bool) "healed back to the original artifact" true
    (healed.Server.artifact = victim && healed.Server.degraded_from = None)

let test_session_open_heals_corrupt_chunked () =
  let e = Server.create () in
  let ir = prog multi_fn_src in
  let dg = Server.publish e ~run_cycles:1_000_000 ir in
  let store = Server.store e in
  Alcotest.(check bool) "chunked artifact was resident" true
    (Server.Store.corrupt_cached store dg Server.Artifact.chunked_wire
       ~f:flip_middle);
  (* opening a session on the poisoned artifact quarantines it, rebuilds
     fresh, and serves normally *)
  let s = Server.open_session e dg in
  Alcotest.(check bool) "session serves a chunk" true
    (match Server.Session.request s ~seq:0 "a" with
    | Ok _ -> true
    | Error _ -> false);
  let r = Server.report e in
  Alcotest.(check int) "failure recorded" 1 r.Server.Stats.decode_failures

let test_fault_workload_survives () =
  (* inject faults into hot cached artifacts mid-workload: every request
     must still be answered (degraded or healed), with the damage
     visible in the stats *)
  let e = Server.create () in
  let catalog = Server.Workload.build_catalog ~generated:[] e in
  let store = Server.store e in
  let rng = Support.Prng.create 4242L in
  let digests = Server.digests e in
  let arts = Server.Artifact.all () in
  List.iteri
    (fun i dg ->
      let repr = List.nth arts (i mod List.length arts) in
      if repr <> Server.Artifact.native then
        ignore
          (Server.Store.corrupt_cached store dg repr
             ~f:(Support.Fault.mutate rng)))
    digests;
  let config = { Server.Workload.default_config with requests = 60 } in
  let s = Server.Workload.run e ~config catalog in
  Alcotest.(check bool) "workload completed every request" true
    (s.Server.Workload.requests = 60)

(* ---- wire+range: a registry-added representation, end to end ---- *)

let test_wire_range_adaptive_selection () =
  let e = Server.create () in
  let ir = prog multi_fn_src in
  let dg = Server.publish e ~run_cycles:1_000_000 ir in
  let m = Server.Store.meta (Server.store e) dg in
  (* the order-2 range coder beats deflate on this program, so the
     bandwidth-bound profile must pick a range-coded wire image; the
     -opt variant is never larger than wire+range, so it wins *)
  Alcotest.(check bool) "wire+range denser than wire" true
    (Server.Store.size_of m Server.Artifact.wire_range
    < Server.Store.size_of m Server.Artifact.wire);
  Alcotest.(check bool) "wire+range-opt never larger than wire+range" true
    (Server.Store.size_of m Server.Artifact.wire_range_opt
    <= Server.Store.size_of m Server.Artifact.wire_range);
  let resp = Server.fetch e dg Server.Profile.modem in
  Alcotest.(check bool) "modem served wire+range-opt" true
    (resp.Server.artifact = Server.Artifact.wire_range_opt);
  Alcotest.(check string) "labelled as range-coded JIT delivery"
    "wire+range-opt+JIT" resp.Server.label;
  Alcotest.(check bool) "not a degraded response" true
    (resp.Server.degraded_from = None);
  (* the served bytes are a self-describing image the stock total wire
     decoder expands — no client-side registry needed *)
  Alcotest.(check bool) "client decodes with the total wire decoder" true
    (Ir.Tree.equal_program ir (Wire.decompress_exn resp.Server.bytes));
  (* per-stage telemetry for the new codec lands in its stats bucket *)
  let r = Server.report e in
  let rr =
    List.find
      (fun rr -> rr.Server.Stats.repr = Server.Artifact.wire_range_opt)
      r.Server.Stats.by_repr
  in
  Alcotest.(check bool) "range-opt stage visible in stats" true
    (List.exists
       (fun (s : Server.Stats.stage_report) ->
         s.Server.Stats.stage_name = "range-opt")
       rr.Server.Stats.stages);
  Alcotest.(check bool) "every stage carries byte accounting" true
    (List.for_all
       (fun (s : Server.Stats.stage_report) ->
         s.Server.Stats.calls > 0 && s.Server.Stats.bytes_in > 0
         && s.Server.Stats.bytes_out > 0)
       rr.Server.Stats.stages)

let test_wire_range_degradation () =
  let e = Server.create () in
  let ir = prog multi_fn_src in
  let dg = Server.publish e ~run_cycles:1_000_000 ir in
  let store = Server.store e in
  Alcotest.(check bool) "wire+range-opt artifact resident" true
    (Server.Store.corrupt_cached store dg Server.Artifact.wire_range_opt
       ~f:flip_middle);
  (* the poisoned first choice is quarantined and the next-best repr
     answers, flagged with what it degraded from *)
  let resp = Server.fetch e dg Server.Profile.modem in
  Alcotest.(check (option string)) "degraded from the range-coded choice"
    (Some "wire+range-opt+JIT") resp.Server.degraded_from;
  Alcotest.(check bool) "fallback is a different artifact" true
    (resp.Server.artifact <> Server.Artifact.wire_range_opt);
  Alcotest.(check bool) "fallback bytes verify" true
    (String.length resp.Server.bytes > 0);
  let r = Server.report e in
  Alcotest.(check bool) "quarantine log names wire+range-opt" true
    (match r.Server.Stats.recent_failures with
    | f :: _ -> f.Server.Stats.fail_repr = Server.Artifact.wire_range_opt
    | [] -> false);
  (* self-healing: the next fetch rebuilds from the published IR and
     serves the range-coded image again *)
  let healed = Server.fetch e dg Server.Profile.modem in
  Alcotest.(check bool) "healed back to wire+range-opt" true
    (healed.Server.artifact = Server.Artifact.wire_range_opt
    && healed.Server.degraded_from = None)

(* ---- engine + workload: end to end ---- *)

let test_workload_end_to_end () =
  let e = Server.create ~budget_bytes:(256 * 1024) () in
  (* hand-written corpus only: enough programs for the Zipf mix without
     the expensive generated ones *)
  let catalog = Server.Workload.build_catalog ~generated:[] e in
  let config = { Server.Workload.default_config with requests = 80 } in
  let s = Server.Workload.run e ~config catalog in
  let r = s.Server.Workload.report in
  Alcotest.(check bool) "cache hits after warm-up" true
    (r.Server.Stats.cache_hit_rate > 0.0);
  Alcotest.(check bool) "at least two representations" true
    (List.length s.Server.Workload.distinct_reprs >= 2);
  Alcotest.(check bool) "accounting adds up" true
    (r.Server.Stats.requests
     >= s.Server.Workload.fetches + s.Server.Workload.chunk_requests);
  (* adaptive never loses to a feasibility-respecting fixed policy *)
  List.iter
    (fun b ->
      Alcotest.(check bool)
        ("adaptive <= all " ^ Scenario.Delivery.repr_name b.Server.Workload.fixed)
        true
        (s.Server.Workload.adaptive_s <= b.Server.Workload.modelled_s +. 1e-6))
    s.Server.Workload.baselines

let test_workload_deterministic () =
  let run_once () =
    let e = Server.create () in
    let catalog = Server.Workload.build_catalog ~generated:[] e in
    let config = { Server.Workload.default_config with requests = 40 } in
    let s = Server.Workload.run e ~config catalog in
    (s.Server.Workload.selections, s.Server.Workload.chunk_requests)
  in
  let a = run_once () and b = run_once () in
  Alcotest.(check bool) "same seed, same stream" true (a = b)

(* ---- concurrency: the daemon's shared-state contracts ---- *)

(* four domains hammering one Stats.t: every record lands exactly once
   and the recent-failures log stays hard-bounded *)
let test_stats_concurrent_recording () =
  let stats = Server.Stats.create () in
  let repr = Server.Artifact.wire in
  let err =
    { Support.Decode_error.decoder = "test"; kind = Support.Decode_error.Checksum;
      pos = 0; msg = "injected" }
  in
  let per_domain = 500 and domains = 4 in
  let pool = Support.Pool.create ~domains in
  ignore
    (Support.Pool.run_list pool
       (List.init domains (fun _ () ->
            for _ = 1 to per_domain do
              Server.Stats.record_request stats;
              Server.Stats.record_served stats repr 10;
              Server.Stats.record_chunk stats ~bytes:5 ~retransmit:false;
              Server.Stats.record_decode_failure stats ~digest:"d" repr err
            done)));
  Support.Pool.shutdown pool;
  let cache = Server.Cache.stats (Server.Cache.create ~budget_bytes:1) in
  let r = Server.Stats.report stats ~cache in
  let total = domains * per_domain in
  Alcotest.(check int) "requests" total r.Server.Stats.requests;
  Alcotest.(check int) "chunks" total r.Server.Stats.chunks_served;
  Alcotest.(check int) "decode failures" total r.Server.Stats.decode_failures;
  Alcotest.(check bool) "recent failures hard-capped" true
    (List.length r.Server.Stats.recent_failures <= 8);
  let wire =
    List.find
      (fun (rr : Server.Stats.repr_report) ->
        Server.Artifact.name rr.Server.Stats.repr = "wire")
      r.Server.Stats.by_repr
  in
  Alcotest.(check int) "responses" total wire.Server.Stats.responses;
  Alcotest.(check int) "bytes served" (total * 10)
    wire.Server.Stats.bytes_served

(* the acceptance scenario: 32 concurrent cold fetches of the same
   artifact compress exactly once (single-flight), and every caller
   gets byte-identical results *)
let test_single_flight_32_cold_fetches () =
  let e = Server.create ~shards:4 () in
  let dg = Server.publish e ~run_cycles:1_000_000 (prog multi_fn_src) in
  let store = Server.store e in
  let repr = Server.Artifact.wire in
  let compressions () =
    match
      List.find_opt
        (fun (rr : Server.Stats.repr_report) ->
          Server.Artifact.name rr.Server.Stats.repr = "wire")
        (Server.report e).Server.Stats.by_repr
    with
    | Some rr -> rr.Server.Stats.compressions
    | None -> 0
  in
  Server.Store.quarantine store dg repr;
  let before = compressions () in
  let pool = Support.Pool.create ~domains:4 in
  let results =
    Support.Pool.run_list pool
      (List.init 32 (fun _ () -> fst (Server.Store.materialize store dg repr)))
  in
  Support.Pool.shutdown pool;
  Alcotest.(check int) "32 cold fetches, one materialization" 1
    (compressions () - before);
  match results with
  | first :: rest ->
    List.iteri
      (fun i b ->
        Alcotest.(check bool)
          (Printf.sprintf "caller %d got identical bytes" (i + 1))
          true (String.equal b first))
      rest
  | [] -> Alcotest.fail "no results"

(* lock striping must not change what is served: a 4-shard store
   returns the same bytes as the serial 1-shard store *)
let test_sharded_store_equivalence () =
  let serve shards =
    let e = Server.create ~shards () in
    let dg = Server.publish e ~run_cycles:1_000_000 (prog multi_fn_src) in
    let r = Server.fetch e dg Server.Profile.modem in
    (r.Server.label, r.Server.bytes)
  in
  Alcotest.(check bool) "same label and bytes at any shard count" true
    (serve 1 = serve 4)

let () =
  Alcotest.run "server"
    [
      ( "cache",
        [
          Alcotest.test_case "eviction under byte budget" `Quick
            test_cache_eviction_under_budget;
          Alcotest.test_case "hit/miss counters" `Quick
            test_cache_counts_hits_and_misses;
          Alcotest.test_case "oversized value" `Quick
            test_cache_oversized_value_not_cached;
          Alcotest.test_case "rebinding replaces" `Quick
            test_cache_replace_updates_bytes;
          Alcotest.test_case "LRU order" `Quick test_cache_lru_order_is_by_recency;
        ] );
      ( "selector",
        [
          Alcotest.test_case "matches Delivery.best_of" `Quick
            test_selector_matches_best_of;
          Alcotest.test_case "hand-picked rate points" `Quick
            test_selector_hand_picked_points;
          Alcotest.test_case "feasibility constraints" `Quick
            test_feasibility_constraints;
        ] );
      ( "store",
        [
          Alcotest.test_case "publish idempotent" `Quick test_publish_idempotent;
          Alcotest.test_case "content addressing" `Quick
            test_distinct_programs_distinct_digests;
          Alcotest.test_case "rematerialize after eviction" `Quick
            test_materialize_after_eviction;
          Alcotest.test_case "unknown digest" `Quick test_fetch_unknown_digest;
          Alcotest.test_case "parallel pool equivalence" `Quick
            test_parallel_pool_equivalence;
        ] );
      ( "session",
        [
          Alcotest.test_case "handshake index" `Quick test_session_handshake;
          Alcotest.test_case "chunks are wire images" `Quick
            test_session_chunks_are_wire_images;
          Alcotest.test_case "resume after dropped response" `Quick
            test_session_resume_after_drop;
          Alcotest.test_case "bad requests rejected" `Quick
            test_session_rejects_bad_requests;
          Alcotest.test_case "late duplicate regression" `Quick
            test_session_late_duplicate_regression;
        ] );
      ( "faults",
        [
          Alcotest.test_case "fetch degrades then heals" `Quick
            test_fetch_degrades_on_corrupt_artifact;
          Alcotest.test_case "session open heals" `Quick
            test_session_open_heals_corrupt_chunked;
          Alcotest.test_case "workload survives injected faults" `Slow
            test_fault_workload_survives;
        ] );
      ( "wire+range",
        [
          Alcotest.test_case "adaptive selection serves it" `Quick
            test_wire_range_adaptive_selection;
          Alcotest.test_case "degrades and heals" `Quick
            test_wire_range_degradation;
        ] );
      ( "workload",
        [
          Alcotest.test_case "end to end" `Slow test_workload_end_to_end;
          Alcotest.test_case "deterministic" `Slow test_workload_deterministic;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "stats recording from 4 domains" `Quick
            test_stats_concurrent_recording;
          Alcotest.test_case "single-flight on 32 cold fetches" `Quick
            test_single_flight_32_cold_fetches;
          Alcotest.test_case "sharded store equivalence" `Quick
            test_sharded_store_equivalence;
        ] );
    ]
