(* Tests for BRISC: patterns, dictionary construction, Markov coding,
   container serialization, decompression and in-place interpretation. *)

let qcheck = QCheck_alcotest.to_alcotest

let compile src = Vm.Codegen.gen_program (Cc.Lower.compile src)

(* ---- Pat ---- *)

let sample_instrs =
  [ Vm.Isa.Ld (Vm.Isa.W, 0, 4, Vm.Isa.sp); Vm.Isa.Mov (2, 0);
    Vm.Isa.Alu (Vm.Isa.Add, 1, 2, 3); Vm.Isa.Alui (Vm.Isa.Add, 0, 1, 12);
    Vm.Isa.Li (5, -77); Vm.Isa.Enter 24; Vm.Isa.Spill (4, 16);
    Vm.Isa.Call "pepper"; Vm.Isa.Bri (Vm.Isa.Le, 4, 0, "L56"); Vm.Isa.Rjr ]

let test_base_pattern_matches_self () =
  List.iter
    (fun i ->
      let p = Brisc.Pat.base_pattern i in
      Alcotest.(check bool) (Vm.Isa.instr_to_string i) true
        (Brisc.Pat.matches p [ i ]))
    sample_instrs

let test_instantiate_inverse () =
  List.iter
    (fun i ->
      let p = Brisc.Pat.base_pattern i in
      let values = Brisc.Pat.wild_values p [ i ] in
      Alcotest.(check bool) "reconstructs" true
        (Brisc.Pat.instantiate p values = [ i ]))
    sample_instrs

let test_specialize_burns_field () =
  let i = Vm.Isa.Ld (Vm.Isa.W, 0, 4, Vm.Isa.sp) in
  let p = Brisc.Pat.base_pattern i in
  (* burn field 0 (the destination register) *)
  match Brisc.Pat.specialize p 0 (Vm.Encode.Freg 0) with
  | None -> Alcotest.fail "specialization must succeed"
  | Some sp ->
    Alcotest.(check int) "one fewer wild" (Brisc.Pat.wild_count p - 1)
      (Brisc.Pat.wild_count sp);
    Alcotest.(check bool) "still matches" true (Brisc.Pat.matches sp [ i ]);
    (* a different destination register no longer matches *)
    let other = Vm.Isa.Ld (Vm.Isa.W, 3, 4, Vm.Isa.sp) in
    Alcotest.(check bool) "rejects others" false (Brisc.Pat.matches sp [ other ])

let test_specialize_never_burns_labels () =
  let i = Vm.Isa.Bri (Vm.Isa.Le, 4, 0, "L56") in
  let p = Brisc.Pat.base_pattern i in
  (* slot order: reg, imm, label — burning the label slot must refuse *)
  Alcotest.(check bool) "label refused" true
    (Brisc.Pat.specialize p 2 (Vm.Encode.Flab "L56") = None)

let test_combine_rules () =
  let mov = Brisc.Pat.base_pattern (Vm.Isa.Mov (2, 0)) in
  let ld = Brisc.Pat.base_pattern (Vm.Isa.Ld (Vm.Isa.W, 0, 4, Vm.Isa.sp)) in
  let br = Brisc.Pat.base_pattern (Vm.Isa.Jmp "L") in
  let call = Brisc.Pat.base_pattern (Vm.Isa.Call "f") in
  Alcotest.(check bool) "ld;mov combines" true (Brisc.Pat.combine ld mov <> None);
  Alcotest.(check bool) "branch first refused" true (Brisc.Pat.combine br mov = None);
  Alcotest.(check bool) "call first refused" true (Brisc.Pat.combine call mov = None);
  Alcotest.(check bool) "call second ok" true (Brisc.Pat.combine mov call <> None)

let test_combine_saves_opcode_byte () =
  let a = Vm.Isa.Mov (2, 0) and b = Vm.Isa.Mov (3, 1) in
  let pa = Brisc.Pat.base_pattern a and pb = Brisc.Pat.base_pattern b in
  match Brisc.Pat.combine pa pb with
  | None -> Alcotest.fail "must combine"
  | Some pc ->
    (* two movs: 2 + 2 bytes separately; combined: 1 opcode + 2 operand
       bytes = 3 *)
    Alcotest.(check int) "separate" 4
      (Brisc.Pat.encoded_bytes pa + Brisc.Pat.encoded_bytes pb);
    Alcotest.(check int) "combined" 3 (Brisc.Pat.encoded_bytes pc);
    Alcotest.(check bool) "matches pair" true (Brisc.Pat.matches pc [ a; b ])

let test_specialization_monotone_bytes () =
  List.iter
    (fun i ->
      let p = Brisc.Pat.base_pattern i in
      let values = Brisc.Pat.wild_values p [ i ] in
      List.iteri
        (fun si v ->
          match Brisc.Pat.specialize p si v with
          | Some sp ->
            Alcotest.(check bool) "specialized never bigger" true
              (Brisc.Pat.encoded_bytes sp <= Brisc.Pat.encoded_bytes p)
          | None -> ())
        values)
    sample_instrs

let test_paper_enter_example () =
  (* §4.3's worked example prices the dictionary entry for
     [enter sp,*,*] at 2 bytes (shape byte + 2-bit field selector +
     4-bit value). Our entries also ship a 3-bit width spec per wild
     slot (slot widths are selectable here), so the same entry costs 3
     bytes — one more than the paper, and still dominated by W. *)
  let p = Brisc.Pat.base_pattern (Vm.Isa.Enter 24) in
  match Brisc.Pat.specialize p 0 (Vm.Encode.Freg Vm.Isa.sp) with
  | None -> Alcotest.fail "specialize"
  | Some sp ->
    Alcotest.(check int) "dict cost 3 bytes" 3 (Brisc.Pat.dict_entry_bytes sp);
    Alcotest.(check bool) "W exceeds dict cost" true
      (Brisc.Pat.native_bytes sp > Brisc.Pat.dict_entry_bytes sp)

let test_epi_macro () =
  let exit_rjr = [ Vm.Isa.Exit 24; Vm.Isa.Rjr ] in
  Alcotest.(check bool) "epi matches exit+rjr" true
    (Brisc.Pat.matches Brisc.Pat.epi exit_rjr);
  let values = Brisc.Pat.wild_values Brisc.Pat.epi exit_rjr in
  Alcotest.(check bool) "reconstructs" true
    (Brisc.Pat.instantiate Brisc.Pat.epi values = exit_rjr)

(* ---- Markov ---- *)

let test_markov_roundtrip () =
  let transitions = [ (0, 3); (0, 3); (0, 5); (4, 1); (4, 1); (4, 2); (6, 0) ] in
  let m = Brisc.Markov.build ~n_entries:6 transitions in
  let buf = Buffer.create 64 in
  Brisc.Markov.write buf m;
  let pos = ref 0 in
  let m' = Brisc.Markov.read (Buffer.contents buf) pos in
  Alcotest.(check bool) "tables equal" true (m = m')

let test_markov_code_decode () =
  let transitions = List.init 100 (fun i -> (0, i mod 7)) in
  let m = Brisc.Markov.build ~n_entries:7 transitions in
  for e = 0 to 6 do
    let bytes = Brisc.Markov.code_of m ~ctx:0 e in
    let q = ref bytes in
    let next () = match !q with b :: r -> q := r; b | [] -> Alcotest.fail "short" in
    Alcotest.(check int) "roundtrip" e (Brisc.Markov.entry_of m ~ctx:0 next)
  done

let test_markov_escape_codes () =
  (* a context with 300 successors exercises the 255-escape *)
  let transitions = List.init 300 (fun i -> (0, i)) in
  let m = Brisc.Markov.build ~n_entries:300 transitions in
  Alcotest.(check int) "max successors" 300 (Brisc.Markov.max_successors m);
  let check e =
    let bytes = Brisc.Markov.code_of m ~ctx:0 e in
    let q = ref bytes in
    let next () = match !q with b :: r -> q := r; b | [] -> Alcotest.fail "short" in
    Alcotest.(check int) "escape roundtrip" e (Brisc.Markov.entry_of m ~ctx:0 next)
  in
  check 0; check 254; check 255; check 299;
  Alcotest.(check bool) "escape uses 2 bytes" true
    (List.length (Brisc.Markov.code_of m ~ctx:0 299) = 2)

let test_markov_unreachable_entry () =
  let m = Brisc.Markov.build ~n_entries:4 [ (0, 1) ] in
  match Brisc.Markov.code_of m ~ctx:0 3 with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "unreachable entry must fail"

(* ---- dictionary construction ---- *)

let medium_vp =
  lazy (compile (Corpus.Gen.generate Corpus.Gen.medium).Corpus.Programs.source)

let test_dict_items_reconstruct_program () =
  let vp = compile Corpus.Programs.strlib.Corpus.Programs.source in
  let d = Brisc.Dict.build vp in
  List.iter2
    (fun (cf : Brisc.Dict.compiled_func) (f : Vm.Isa.vfunc) ->
      let decoded = ref [] in
      Array.iter
        (fun (it : Brisc.Dict.item) ->
          if it.Brisc.Dict.live then begin
            let p = d.Brisc.Dict.entries.(it.Brisc.Dict.pat) in
            Alcotest.(check bool) "pattern matches its instructions" true
              (Brisc.Pat.matches p it.Brisc.Dict.insts);
            decoded := List.rev_append it.Brisc.Dict.insts !decoded
          end)
        cf.Brisc.Dict.items;
      let orig =
        List.filter
          (fun i -> match i with Vm.Isa.Label _ -> false | _ -> true)
          f.Vm.Isa.code
      in
      Alcotest.(check bool) "exact instruction stream" true
        (List.rev !decoded = orig))
    d.Brisc.Dict.funcs vp.Vm.Isa.funcs

let test_dict_shrinks_code () =
  let vp = Lazy.force medium_vp in
  let d = Brisc.Dict.build vp in
  let orig = Vm.Encode.program_size vp in
  let comp = Brisc.Dict.compressed_code_bytes d + Brisc.Dict.dictionary_bytes d in
  Alcotest.(check bool) "smaller" true (comp < orig);
  Alcotest.(check bool) "substantially" true
    (float_of_int comp /. float_of_int orig < 0.75)

let test_dict_grows_with_input () =
  (* §4.3: bigger inputs yield bigger dictionaries (981 for lcc, 1232
     for gcc) *)
  let small = compile (Corpus.Gen.generate Corpus.Gen.small).Corpus.Programs.source in
  let ds = Brisc.Dict.build small in
  let dm = Brisc.Dict.build (Lazy.force medium_vp) in
  Alcotest.(check bool) "monotone dictionary growth" true
    (Array.length dm.Brisc.Dict.entries > Array.length ds.Brisc.Dict.entries);
  Alcotest.(check bool) "candidates tested grows" true
    (dm.Brisc.Dict.candidates_tested > ds.Brisc.Dict.candidates_tested)

let test_ignore_w_compresses_harder () =
  (* abundant-memory mode (B = P) accepts more candidates than B = P - W *)
  let vp = compile (Corpus.Gen.generate Corpus.Gen.small).Corpus.Programs.source in
  let normal = Brisc.Dict.build vp in
  let abundant = Brisc.Dict.build ~ignore_w:true vp in
  Alcotest.(check bool) "more entries" true
    (Array.length abundant.Brisc.Dict.entries
     >= Array.length normal.Brisc.Dict.entries);
  Alcotest.(check bool) "code not bigger" true
    (Brisc.Dict.compressed_code_bytes abundant
     <= Brisc.Dict.compressed_code_bytes normal)

let test_k_parameter () =
  let vp = compile (Corpus.Gen.generate Corpus.Gen.small).Corpus.Programs.source in
  let k5 = Brisc.Dict.build ~k:5 vp in
  let k40 = Brisc.Dict.build ~k:40 vp in
  (* both must converge to valid dictionaries *)
  Alcotest.(check bool) "k5 valid" true (Array.length k5.Brisc.Dict.entries > 0);
  Alcotest.(check bool) "k40 valid" true (Array.length k40.Brisc.Dict.entries > 0)

let test_build_modes_identical () =
  (* the full-scan (original) build is the reference; incremental
     candidate maintenance and the parallel scan at several pool sizes
     must reproduce it byte for byte on corpus programs *)
  let programs =
    [ ("strlib", compile Corpus.Programs.strlib.Corpus.Programs.source);
      ( "gen-small",
        compile (Corpus.Gen.generate Corpus.Gen.small).Corpus.Programs.source )
    ]
  in
  List.iter
    (fun (label, vp) ->
      let baseline = Brisc.Dict.build ~full_scan:true vp in
      let base_keys = Array.map Brisc.Pat.key baseline.Brisc.Dict.entries in
      let base_bytes = Brisc.to_bytes (Brisc.compress ~full_scan:true vp) in
      let check_mode mode (d : Brisc.Dict.t) bytes =
        let name = label ^ " " ^ mode in
        Alcotest.(check (array string))
          (name ^ ": same dictionary") base_keys
          (Array.map Brisc.Pat.key d.Brisc.Dict.entries);
        Alcotest.(check int)
          (name ^ ": same candidates tested")
          baseline.Brisc.Dict.candidates_tested d.Brisc.Dict.candidates_tested;
        Alcotest.(check int)
          (name ^ ": same compressed code size")
          (Brisc.Dict.compressed_code_bytes baseline)
          (Brisc.Dict.compressed_code_bytes d);
        Alcotest.(check bool)
          (name ^ ": byte-identical image") true (bytes = base_bytes)
      in
      check_mode "incremental" (Brisc.Dict.build vp)
        (Brisc.to_bytes (Brisc.compress vp));
      List.iter
        (fun domains ->
          let pool = Support.Pool.create ~domains in
          let d = Brisc.Dict.build ~pool vp in
          let bytes = Brisc.to_bytes (Brisc.compress ~pool vp) in
          Support.Pool.shutdown pool;
          check_mode (Printf.sprintf "parallel-%d" domains) d bytes)
        [ 1; 2; 4 ])
    programs

(* ---- container / decompression ---- *)

let test_image_roundtrip_bytes () =
  let vp = compile Corpus.Programs.qsort.Corpus.Programs.source in
  let img = Brisc.compress vp in
  let bytes = Brisc.to_bytes img in
  let img2 = Brisc.of_bytes_exn bytes in
  Alcotest.(check bool) "identical bytes" true (Brisc.to_bytes img2 = bytes)

let check_decompress_exact (e : Corpus.Programs.entry) () =
  let vp = compile e.Corpus.Programs.source in
  let img = Brisc.of_bytes_exn (Brisc.to_bytes (Brisc.compress vp)) in
  let dec = Brisc.Decomp.decompress_exn img in
  Alcotest.(check bool) "normalized equality" true
    (Brisc.Decomp.normalize_labels dec = Brisc.Decomp.normalize_labels vp)

let decompress_cases =
  List.map
    (fun (e : Corpus.Programs.entry) ->
      Alcotest.test_case e.Corpus.Programs.name `Quick (check_decompress_exact e))
    Corpus.Programs.all

let test_corrupt_container () =
  match Brisc.of_bytes "not a brisc container" with
  | Error e ->
    Alcotest.(check bool) "bad-magic kind" true
      (e.Support.Decode_error.kind = Support.Decode_error.Bad_magic)
  | Ok _ -> Alcotest.fail "bad magic must be rejected"

let test_apply_dictionary_salt () =
  (* §4.4: compress the salt example with a dictionary trained on a big
     program — the compressed form must still decode exactly *)
  let salt_src = {|
void pepper(int a, int b) { }
int salt(int j, int i) {
  if (j > 0) {
    pepper(i, j);
    j--;
  }
  return j;
}|} in
  let salt = compile salt_src in
  let big = Lazy.force medium_vp in
  let trained = Brisc.compress big in
  let img = Brisc.compress_with trained salt in
  let dec = Brisc.Decomp.decompress_exn img in
  Alcotest.(check bool) "decodes exactly" true
    (Brisc.Decomp.normalize_labels dec = Brisc.Decomp.normalize_labels salt);
  (* the trained dictionary beats salt's own base encoding, as in the
     paper's 60 -> 17 byte example (our factor is smaller because the
     whole function set is tiny) *)
  let own = Brisc.compress salt in
  Alcotest.(check bool) "trained code not bigger than own-dictionary code"
    true
    (Brisc.Emit.code_size img <= Brisc.Emit.code_size own)

(* ---- in-place interpretation ---- *)

let check_interp_equiv (e : Corpus.Programs.entry) () =
  let vp = compile e.Corpus.Programs.source in
  let img = Brisc.of_bytes_exn (Brisc.to_bytes (Brisc.compress vp)) in
  let r0 = Vm.Interp.run ~input:e.Corpus.Programs.input vp in
  let r1 = Brisc.Interp.run ~input:e.Corpus.Programs.input img in
  Alcotest.(check string) "output" r0.Vm.Interp.output r1.Brisc.Interp.output;
  Alcotest.(check int) "exit" r0.Vm.Interp.exit_code r1.Brisc.Interp.exit_code

let interp_cases =
  List.map
    (fun (e : Corpus.Programs.entry) ->
      Alcotest.test_case e.Corpus.Programs.name `Quick (check_interp_equiv e))
    Corpus.Programs.all

let test_interp_random_access () =
  (* heavy branching exercises label-offset random access *)
  check_interp_equiv Corpus.Programs.life ();
  check_interp_equiv Corpus.Programs.calc ()

let test_interp_trap () =
  let vp = compile "int main() { int z = 0; return 1 / z; }" in
  let img = Brisc.compress vp in
  match Brisc.Interp.run img with
  | exception Brisc.Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "trap must propagate"

let test_dispatches_less_than_steps () =
  let vp = Lazy.force medium_vp in
  let img = Brisc.compress vp in
  let r = Brisc.Interp.run img in
  Alcotest.(check bool) "opcode combination executed" true
    (r.Brisc.Interp.dispatches < r.Brisc.Interp.vm_steps)

(* ---- JIT ---- *)

let test_jit_equiv_and_output_size () =
  let e = Corpus.Programs.matmul in
  let vp = compile e.Corpus.Programs.source in
  let img = Brisc.compress vp in
  let np, produced = Brisc.Jit.compile_with_stats img in
  let direct = Native.Compile.compile_program vp in
  Alcotest.(check int) "same native bytes as direct compile"
    (Native.Mach.program_size direct) produced;
  let r0 = Native.Sim.run ~input:e.Corpus.Programs.input direct in
  let r1 = Native.Sim.run ~input:e.Corpus.Programs.input np in
  Alcotest.(check string) "output" r0.Native.Sim.output r1.Native.Sim.output

(* ---- qcheck properties over random instructions ---- *)

let gen_reg = QCheck.Gen.int_bound 15

let gen_instr : Vm.Isa.instr QCheck.Gen.t =
  let open QCheck.Gen in
  let w = oneofl [ Vm.Isa.B; Vm.Isa.H; Vm.Isa.W ] in
  let alu =
    oneofl
      [ Vm.Isa.Add; Vm.Isa.Sub; Vm.Isa.Mul; Vm.Isa.Div; Vm.Isa.Mod;
        Vm.Isa.And; Vm.Isa.Or; Vm.Isa.Xor; Vm.Isa.Shl; Vm.Isa.Shr ]
  in
  let rel =
    oneofl [ Vm.Isa.Eq; Vm.Isa.Ne; Vm.Isa.Lt; Vm.Isa.Le; Vm.Isa.Gt; Vm.Isa.Ge ]
  in
  let imm = int_range (-40000) 40000 in
  oneof
    [
      map3 (fun w rd (i, rs) -> Vm.Isa.Ld (w, rd, i, rs)) w gen_reg (pair imm gen_reg);
      map3 (fun w rd (i, rs) -> Vm.Isa.St (w, rd, i, rs)) w gen_reg (pair imm gen_reg);
      map2 (fun rd v -> Vm.Isa.Li (rd, v)) gen_reg imm;
      map2 (fun rd rs -> Vm.Isa.Mov (rd, rs)) gen_reg gen_reg;
      map3 (fun op rd (a, b) -> Vm.Isa.Alu (op, rd, a, b)) alu gen_reg (pair gen_reg gen_reg);
      map3 (fun op rd (a, v) -> Vm.Isa.Alui (op, rd, a, v)) alu gen_reg (pair gen_reg imm);
      map3 (fun r a b -> Vm.Isa.Br (r, a, b, "L1")) rel gen_reg gen_reg;
      map3 (fun r a v -> Vm.Isa.Bri (r, a, v, "L1")) rel gen_reg imm;
      map (fun k -> Vm.Isa.Enter (abs k mod 256)) imm;
      map2 (fun r k -> Vm.Isa.Spill (r, 4 * (abs k mod 64))) gen_reg imm;
      return (Vm.Isa.Call "f");
      return Vm.Isa.Rjr;
    ]

let arb_instr = QCheck.make ~print:Vm.Isa.instr_to_string gen_instr

let prop_base_pattern_roundtrip =
  QCheck.Test.make ~name:"base pattern matches and reconstructs" ~count:500
    arb_instr (fun i ->
      let p = Brisc.Pat.base_pattern i in
      Brisc.Pat.matches p [ i ]
      && Brisc.Pat.instantiate p (Brisc.Pat.wild_values p [ i ]) = [ i ])

let prop_specializations_monotone =
  QCheck.Test.make ~name:"all one-field specializations stay valid" ~count:500
    arb_instr (fun i ->
      let p = Brisc.Pat.base_pattern i in
      let values = Brisc.Pat.wild_values p [ i ] in
      List.for_all
        (fun (si, v) ->
          match Brisc.Pat.specialize p si v with
          | None -> true (* labels refuse *)
          | Some sp ->
            Brisc.Pat.matches sp [ i ]
            && Brisc.Pat.encoded_bytes sp <= Brisc.Pat.encoded_bytes p
            && Brisc.Pat.instantiate sp (Brisc.Pat.wild_values sp [ i ]) = [ i ])
        (List.mapi (fun si v -> (si, v)) values))

let prop_combined_pairs_roundtrip =
  QCheck.Test.make ~name:"combined pairs reconstruct both instructions"
    ~count:500
    QCheck.(pair arb_instr arb_instr)
    (fun (a, b) ->
      match
        Brisc.Pat.combine (Brisc.Pat.base_pattern a) (Brisc.Pat.base_pattern b)
      with
      | None -> true
      | Some p ->
        Brisc.Pat.matches p [ a; b ]
        && Brisc.Pat.instantiate p (Brisc.Pat.wild_values p [ a; b ]) = [ a; b ])

let prop_dict_serialization =
  (* random dictionaries of specialized/combined patterns survive the
     container's write_pat/read_pat (exercised through a tiny program) *)
  QCheck.Test.make ~name:"pattern encoded size bounded by base" ~count:500
    arb_instr (fun i ->
      let p = Brisc.Pat.base_pattern i in
      Brisc.Pat.encoded_bytes p >= 1
      && Brisc.Pat.dict_entry_bytes p >= 1
      && Brisc.Pat.native_bytes p >= 0)

let () =
  Alcotest.run "brisc"
    [
      ( "pat",
        [
          Alcotest.test_case "base matches self" `Quick test_base_pattern_matches_self;
          Alcotest.test_case "instantiate inverse" `Quick test_instantiate_inverse;
          Alcotest.test_case "specialize burns field" `Quick test_specialize_burns_field;
          Alcotest.test_case "labels never burned" `Quick test_specialize_never_burns_labels;
          Alcotest.test_case "combine rules" `Quick test_combine_rules;
          Alcotest.test_case "combine saves opcode" `Quick test_combine_saves_opcode_byte;
          Alcotest.test_case "specialization monotone" `Quick test_specialization_monotone_bytes;
          Alcotest.test_case "paper enter example" `Quick test_paper_enter_example;
          Alcotest.test_case "epi macro" `Quick test_epi_macro;
        ] );
      ( "markov",
        [
          Alcotest.test_case "serialization roundtrip" `Quick test_markov_roundtrip;
          Alcotest.test_case "code/decode" `Quick test_markov_code_decode;
          Alcotest.test_case "escape codes" `Quick test_markov_escape_codes;
          Alcotest.test_case "unreachable entry" `Quick test_markov_unreachable_entry;
        ] );
      ( "dict",
        [
          Alcotest.test_case "items reconstruct program" `Quick
            test_dict_items_reconstruct_program;
          Alcotest.test_case "shrinks code" `Slow test_dict_shrinks_code;
          Alcotest.test_case "dictionary grows with input" `Slow
            test_dict_grows_with_input;
          Alcotest.test_case "abundant memory mode" `Slow
            test_ignore_w_compresses_harder;
          Alcotest.test_case "k parameter" `Slow test_k_parameter;
          Alcotest.test_case "build modes byte-identical" `Slow
            test_build_modes_identical;
        ] );
      ("decompress", decompress_cases);
      ( "container",
        [
          Alcotest.test_case "byte roundtrip" `Quick test_image_roundtrip_bytes;
          Alcotest.test_case "corrupt container" `Quick test_corrupt_container;
          Alcotest.test_case "trained dictionary (salt)" `Slow
            test_apply_dictionary_salt;
        ] );
      ("interp", interp_cases);
      ( "interp_extra",
        [
          Alcotest.test_case "random access branching" `Quick
            test_interp_random_access;
          Alcotest.test_case "traps propagate" `Quick test_interp_trap;
          Alcotest.test_case "dispatches < steps" `Slow
            test_dispatches_less_than_steps;
        ] );
      ( "jit",
        [
          Alcotest.test_case "equivalence and size" `Quick
            test_jit_equiv_and_output_size;
        ] );
      ( "properties",
        [
          qcheck prop_base_pattern_roundtrip;
          qcheck prop_specializations_monotone;
          qcheck prop_combined_pairs_roundtrip;
          qcheck prop_dict_serialization;
        ] );
    ]
