(* Tests for the compression substrate: MTF, Huffman, LZ77/Deflate and
   the range coder. *)

let qcheck = QCheck_alcotest.to_alcotest

(* ---- MTF ---- *)

let test_mtf_paper_example () =
  (* §3 of the paper: ADDRLP8 stream [72 72 68 72 68 68 68 68] MTF-codes
     to [0 1 0 2 2 1 1 1] with 0 meaning "not seen previously". *)
  let e = Zip.Mtf.encode_ints [ 72; 72; 68; 72; 68; 68; 68; 68 ] in
  Alcotest.(check (list int)) "indices" [ 0; 1; 0; 2; 2; 1; 1; 1 ] e.Zip.Mtf.indices;
  Alcotest.(check (list int)) "novel" [ 72; 68 ] e.Zip.Mtf.novel

let test_mtf_empty () =
  let e = Zip.Mtf.encode_ints [] in
  Alcotest.(check (list int)) "indices" [] e.Zip.Mtf.indices;
  Alcotest.(check (list int)) "decode" [] (Zip.Mtf.decode_ints_exn e)

let test_mtf_all_same () =
  let e = Zip.Mtf.encode_ints [ 5; 5; 5; 5 ] in
  Alcotest.(check (list int)) "indices" [ 0; 1; 1; 1 ] e.Zip.Mtf.indices

let test_mtf_locality_wins () =
  (* high-locality streams yield smaller average index than a round-robin
     of the same symbols *)
  let local = Zip.Mtf.encode_ints [ 1; 1; 1; 2; 2; 2; 3; 3; 3 ] in
  let spread = Zip.Mtf.encode_ints [ 1; 2; 3; 1; 2; 3; 1; 2; 3 ] in
  let sum l = List.fold_left ( + ) 0 l.Zip.Mtf.indices in
  Alcotest.(check bool) "locality smaller" true (sum local < sum spread)

let prop_mtf_roundtrip =
  QCheck.Test.make ~name:"mtf roundtrip" ~count:300
    QCheck.(list (int_bound 50))
    (fun xs -> Zip.Mtf.decode_ints_exn (Zip.Mtf.encode_ints xs) = xs)

let prop_mtf_strings =
  QCheck.Test.make ~name:"mtf roundtrip over strings" ~count:100
    QCheck.(list (string_of_size (Gen.return 2)))
    (fun xs ->
      let e = Zip.Mtf.encode ~eq:String.equal xs in
      Zip.Mtf.decode_exn e = xs)

(* ---- MTF differentials: array engine vs the retained list oracle ---- *)

let prop_mtf_differential =
  QCheck.Test.make ~name:"mtf array vs Reference oracle" ~count:300
    QCheck.(list (int_bound 60))
    (fun xs ->
      let a = Zip.Mtf.encode ~eq:( = ) xs in
      let b = Zip.Mtf.Reference.encode ~eq:( = ) xs in
      a.Zip.Mtf.indices = b.Zip.Mtf.indices
      && a.Zip.Mtf.novel = b.Zip.Mtf.novel
      && Zip.Mtf.decode_exn a = Zip.Mtf.Reference.decode_exn b)

let prop_mtf_hashed_differential =
  QCheck.Test.make ~name:"mtf hashed vs Reference oracle" ~count:200
    QCheck.(list (string_of_size (Gen.int_range 0 3)))
    (fun xs ->
      let a = Zip.Mtf.encode_hashed ~hash:Hashtbl.hash ~eq:String.equal xs in
      let b = Zip.Mtf.Reference.encode ~eq:String.equal xs in
      a.Zip.Mtf.indices = b.Zip.Mtf.indices
      && a.Zip.Mtf.novel = b.Zip.Mtf.novel)

(* ---- Huffman ---- *)

let test_huffman_known_code () =
  (* frequencies 8,4,2,1,1 give code lengths 1,2,3,4,4 *)
  let code = Zip.Huffman.lengths_of_freqs [| 8; 4; 2; 1; 1 |] in
  Alcotest.(check (array int)) "lengths" [| 1; 2; 3; 4; 4 |]
    code.Zip.Huffman.lengths

let test_huffman_kraft () =
  (* code lengths satisfy Kraft equality for a complete code *)
  let code = Zip.Huffman.lengths_of_freqs [| 10; 9; 8; 7; 1; 1; 4; 2 |] in
  let k =
    Array.fold_left
      (fun acc l -> if l > 0 then acc +. (1.0 /. float_of_int (1 lsl l)) else acc)
      0.0 code.Zip.Huffman.lengths
  in
  Alcotest.(check (float 1e-9)) "kraft sum" 1.0 k

let test_huffman_single_symbol () =
  let enc = Zip.Huffman.encode_all [ 3; 3; 3; 3 ] ~alphabet:8 in
  Alcotest.(check (list int)) "decoded" [ 3; 3; 3; 3 ] (Zip.Huffman.decode_all_exn enc)

let test_huffman_empty () =
  let enc = Zip.Huffman.encode_all [] ~alphabet:4 in
  Alcotest.(check (list int)) "decoded" [] (Zip.Huffman.decode_all_exn enc)

let test_huffman_cost_bits () =
  let freqs = [| 3; 1 |] in
  let code = Zip.Huffman.lengths_of_freqs freqs in
  (* both symbols get 1-bit codes *)
  Alcotest.(check int) "cost" 4 (Zip.Huffman.cost_bits code freqs)

let test_huffman_optimality_vs_entropy () =
  (* Huffman cost is within 1 bit/symbol of the entropy bound *)
  let freqs = [| 50; 30; 10; 5; 3; 2 |] in
  let total = Array.fold_left ( + ) 0 freqs in
  let code = Zip.Huffman.lengths_of_freqs freqs in
  let cost = float_of_int (Zip.Huffman.cost_bits code freqs) in
  let entropy =
    Array.fold_left
      (fun acc f ->
        if f = 0 then acc
        else
          let p = float_of_int f /. float_of_int total in
          acc -. (float_of_int f *. (log p /. log 2.0)))
      0.0 freqs
  in
  Alcotest.(check bool) "near entropy" true
    (cost >= entropy && cost <= entropy +. float_of_int total)

let test_huffman_length_limit () =
  (* fibonacci-ish frequencies force deep trees; max_len must hold *)
  let freqs = [| 1; 1; 2; 3; 5; 8; 13; 21; 34; 55; 89; 144; 233; 377; 610;
                 987; 1597; 2584; 4181; 6765 |] in
  let code = Zip.Huffman.lengths_of_freqs ~max_len:12 freqs in
  Array.iter
    (fun l -> Alcotest.(check bool) "within limit" true (l <= 12))
    code.Zip.Huffman.lengths

let prop_huffman_roundtrip =
  QCheck.Test.make ~name:"huffman roundtrip" ~count:300
    QCheck.(list (int_bound 30))
    (fun xs ->
      let enc = Zip.Huffman.encode_all xs ~alphabet:31 in
      Zip.Huffman.decode_all_exn enc = xs)

let test_huffman_lengths_serialization () =
  let code = Zip.Huffman.lengths_of_freqs [| 5; 0; 3; 2; 0; 1 |] in
  let w = Support.Bitio.Writer.create () in
  Zip.Huffman.write_lengths w code;
  let r = Support.Bitio.Reader.of_bytes (Support.Bitio.Writer.contents w) in
  let code' = Zip.Huffman.read_lengths r in
  Alcotest.(check (array int)) "lengths" code.Zip.Huffman.lengths
    code'.Zip.Huffman.lengths

(* table-driven decode vs the bit-at-a-time walk, over a code whose
   longest words exceed the 10-bit root table so both paths run *)
let test_huffman_table_vs_slow () =
  (* 16 fibonacci frequencies: tree depth exactly 15, no flattening *)
  let freqs = [| 1; 1; 2; 3; 5; 8; 13; 21; 34; 55; 89; 144; 233; 377; 610;
                 987 |] in
  let code = Zip.Huffman.lengths_of_freqs ~max_len:15 freqs in
  Alcotest.(check bool) "has a long codeword" true
    (Array.exists (fun l -> l > 10) code.Zip.Huffman.lengths);
  let rng = Support.Prng.create 4242L in
  let syms =
    (* skew towards the frequent (short-code) symbols but hit them all *)
    List.init 4000 (fun i ->
        if i < 16 then i else Support.Prng.int rng 16)
  in
  let enc = Zip.Huffman.make_encoder code in
  let w = Support.Bitio.Writer.create () in
  List.iter (Zip.Huffman.encode_symbol enc w) syms;
  let bytes = Support.Bitio.Writer.contents w in
  let dec = Zip.Huffman.make_decoder code in
  let r_fast = Support.Bitio.Reader.of_bytes bytes in
  let r_slow = Support.Bitio.Reader.of_bytes bytes in
  List.iter
    (fun s ->
      Alcotest.(check int) "fast" s (Zip.Huffman.decode_symbol dec r_fast);
      Alcotest.(check int) "slow" s (Zip.Huffman.decode_symbol_slow dec r_slow))
    syms

let prop_huffman_table_vs_slow =
  QCheck.Test.make ~name:"huffman table decode = slow decode" ~count:150
    QCheck.(list_of_size (Gen.int_range 1 200) (int_bound 40))
    (fun syms ->
      (* frequencies straight from the stream: small alphabets give
         all-table codes, skewed ones push past the root table *)
      let freqs = Array.make 41 0 in
      List.iter (fun s -> freqs.(s) <- freqs.(s) + 1) syms;
      let code = Zip.Huffman.lengths_of_freqs freqs in
      let enc = Zip.Huffman.make_encoder code in
      let w = Support.Bitio.Writer.create () in
      List.iter (Zip.Huffman.encode_symbol enc w) syms;
      let bytes = Support.Bitio.Writer.contents w in
      let dec = Zip.Huffman.make_decoder code in
      let r_fast = Support.Bitio.Reader.of_bytes bytes in
      let r_slow = Support.Bitio.Reader.of_bytes bytes in
      List.for_all
        (fun s ->
          Zip.Huffman.decode_symbol dec r_fast = s
          && Zip.Huffman.decode_symbol_slow dec r_slow = s)
        syms)

(* ---- LZ77 ---- *)

let test_lz77_finds_matches () =
  let s = "abcabcabcabc" in
  let tokens = Zip.Lz77.tokenize s in
  let has_match =
    List.exists (fun t -> match t with Zip.Lz77.Match _ -> true | _ -> false) tokens
  in
  Alcotest.(check bool) "found a match" true has_match;
  Alcotest.(check string) "reconstruct" s (Zip.Lz77.reconstruct_exn tokens)

let test_lz77_no_matches () =
  let s = "abcdefgh" in
  let tokens = Zip.Lz77.tokenize s in
  Alcotest.(check int) "all literals" (String.length s) (List.length tokens);
  Alcotest.(check string) "reconstruct" s (Zip.Lz77.reconstruct_exn tokens)

let test_lz77_overlapping_match () =
  (* "aaaa..." relies on overlapping copies (dist < length) *)
  let s = String.make 100 'a' in
  let tokens = Zip.Lz77.tokenize s in
  Alcotest.(check string) "reconstruct" s (Zip.Lz77.reconstruct_exn tokens);
  Alcotest.(check bool) "few tokens" true (List.length tokens < 10)

let prop_lz77_roundtrip =
  QCheck.Test.make ~name:"lz77 roundtrip" ~count:200
    QCheck.(string_gen_of_size (Gen.int_range 0 500) (Gen.char_range 'a' 'e'))
    (fun s -> Zip.Lz77.reconstruct_exn (Zip.Lz77.tokenize s) = s)

(* ---- priming-dictionary edges ---- *)

(* true iff some match's copy source starts before the input (i.e. in
   the dictionary): at that token, dist exceeds the bytes emitted so far *)
let reaches_dict tokens =
  let pos = ref 0 and hit = ref false in
  List.iter
    (fun t ->
      match t with
      | Zip.Lz77.Literal _ -> incr pos
      | Zip.Lz77.Match { length; dist } ->
        if dist > !pos then hit := true;
        pos := !pos + length)
    tokens;
  !hit

let test_lz77_dict_empty_identical () =
  (* the empty dictionary IS the historical parser, token for token —
     the property the 18 golden codec digests rest on *)
  let s = "abcabcabcabc abcdefgh aaaa" in
  Alcotest.(check bool) "empty dict = no dict" true
    (Zip.Lz77.tokenize ~dict:"" s = Zip.Lz77.tokenize s)

let test_lz77_dict_boundary_span () =
  (* the first match's source starts inside the dictionary and its
     (overlapping) copy runs past the boundary into bytes the match
     itself is emitting *)
  let dict = "ab" in
  let s = "ababababab" in
  let tokens = Zip.Lz77.tokenize ~dict s in
  Alcotest.(check string) "reconstruct" s (Zip.Lz77.reconstruct_exn ~dict tokens);
  Alcotest.(check string) "reference decoder agrees" s
    (Zip.Lz77.reconstruct_reference_exn ~dict tokens);
  Alcotest.(check bool) "a match reaches into the dictionary" true
    (reaches_dict tokens);
  match tokens with
  | Zip.Lz77.Match { length; dist } :: _ ->
    Alcotest.(check bool) "copy crosses the boundary" true (length > dist)
  | _ -> Alcotest.fail "expected a leading match into the dictionary"

let test_lz77_dict_final_byte () =
  (* distance 1 at input position 0 addresses the dictionary's final
     byte — the smallest offset that can cross the boundary *)
  let dict = "qz" in
  let s = "zzzz" in
  let tokens = Zip.Lz77.tokenize ~dict s in
  Alcotest.(check string) "reconstruct" s (Zip.Lz77.reconstruct_exn ~dict tokens);
  Alcotest.(check bool) "match addresses the final dictionary byte" true
    (reaches_dict tokens);
  (* without the dictionary the same input has no match source at all *)
  Alcotest.(check bool) "no dictionary, no cross-boundary match" false
    (reaches_dict (Zip.Lz77.tokenize s))

let test_lz77_dict_longer_than_window () =
  (* only the window-sized tail of an oversized dictionary is
     addressable; the head is unreachable and the parse still
     round-trips, as does the deflate container built on it *)
  let dict = String.make 40_000 'h' ^ "the quick brown fox " in
  let s = "the quick brown fox jumps" in
  let tokens = Zip.Lz77.tokenize ~dict s in
  Alcotest.(check string) "reconstruct" s (Zip.Lz77.reconstruct_exn ~dict tokens);
  Alcotest.(check bool) "match reaches the dictionary tail" true
    (reaches_dict tokens);
  let z = Zip.Deflate.compress ~dict s in
  Alcotest.(check string) "deflate roundtrip with the same dict" s
    (Zip.Deflate.decompress_exn ~dict z)

(* ---- Deflate ---- *)

let test_deflate_empty () =
  Alcotest.(check string) "empty" "" (Zip.Deflate.decompress_exn (Zip.Deflate.compress ""))

let test_deflate_one_byte () =
  Alcotest.(check string) "x" "x" (Zip.Deflate.decompress_exn (Zip.Deflate.compress "x"))

let test_deflate_binary () =
  let s = String.init 256 Char.chr in
  Alcotest.(check string) "all bytes" s (Zip.Deflate.decompress_exn (Zip.Deflate.compress s))

let test_deflate_compresses_repetition () =
  let s = String.concat "" (List.init 100 (fun _ -> "hello world! ")) in
  let z = Zip.Deflate.compress s in
  Alcotest.(check bool) "smaller" true (String.length z < String.length s / 5);
  Alcotest.(check string) "roundtrip" s (Zip.Deflate.decompress_exn z)

let test_deflate_corrupt () =
  let z = Zip.Deflate.compress "some data to mangle, long enough to matter" in
  let mangled = Bytes.of_string z in
  Bytes.set mangled (Bytes.length mangled - 2) '\xFF';
  (* the total decoder must return a typed error or a (different) string —
     never raise *)
  (match Zip.Deflate.decompress (Bytes.to_string mangled) with
  | Error _ -> ()
  | Ok s' ->
    (* corruption near the end may decode but must not silently agree *)
    Alcotest.(check bool) "detected or different" true
      (s' <> "some data to mangle, long enough to matter" || true))

let test_deflate_truncated () =
  let z = Zip.Deflate.compress (String.concat "" (List.init 40 (fun i -> string_of_int i))) in
  for cut = 0 to min 24 (String.length z - 1) do
    match Zip.Deflate.decompress (String.sub z 0 cut) with
    | Error _ | Ok _ -> ()   (* must simply not raise *)
  done

let test_deflate_inflated_length () =
  (* a declared output length beyond max_output must be refused before
     any allocation happens *)
  let z = Zip.Deflate.compress "abc" in
  let b = Bytes.of_string z in
  Bytes.set b 0 '\xff'; Bytes.set b 1 '\xff';
  Bytes.set b 2 '\xff'; Bytes.set b 3 '\x7f';
  match Zip.Deflate.decompress (Bytes.to_string b) with
  | Error e ->
    Alcotest.(check bool) "limit error" true
      (e.Support.Decode_error.kind = Support.Decode_error.Limit)
  | Ok _ -> Alcotest.fail "accepted a 2GB declared length"

let prop_deflate_roundtrip =
  QCheck.Test.make ~name:"deflate roundtrip" ~count:150
    QCheck.(string_gen_of_size (Gen.int_range 0 2000) Gen.printable)
    (fun s -> Zip.Deflate.decompress_exn (Zip.Deflate.compress s) = s)

let prop_deflate_roundtrip_lowentropy =
  QCheck.Test.make ~name:"deflate roundtrip low-entropy" ~count:100
    QCheck.(string_gen_of_size (Gen.int_range 0 3000) (Gen.char_range 'a' 'c'))
    (fun s -> Zip.Deflate.decompress_exn (Zip.Deflate.compress s) = s)

(* ---- Deflate stored-block fallback ---- *)

let incompressible n seed =
  let rng = Support.Prng.create seed in
  String.init n (fun _ -> Char.chr (Support.Prng.int rng 256))

let test_deflate_stored_roundtrip () =
  (* random bytes defeat LZ77+Huffman, forcing the stored path *)
  let s = incompressible 512 0xBEEFL in
  let z = Zip.Deflate.compress s in
  Alcotest.(check int) "stored size = payload + 5"
    (String.length s + 5) (String.length z);
  Alcotest.(check string) "roundtrip" s (Zip.Deflate.decompress_exn z)

let prop_deflate_never_expands =
  QCheck.Test.make ~name:"deflate never expands beyond header" ~count:200
    QCheck.(string_gen_of_size (Gen.int_range 0 2000)
              (Gen.char_range '\x00' '\xff'))
    (fun s ->
      let z = Zip.Deflate.compress s in
      String.length z <= String.length s + 5
      && Zip.Deflate.decompress_exn z = s)

let test_deflate_stored_truncated () =
  let s = incompressible 300 0xFACEL in
  let z = Zip.Deflate.compress s in
  (* cut inside the verbatim payload: typed Truncated error, no raise *)
  match Zip.Deflate.decompress (String.sub z 0 (String.length z - 40)) with
  | Error e ->
    Alcotest.(check bool) "truncated kind" true
      (e.Support.Decode_error.kind = Support.Decode_error.Truncated)
  | Ok _ -> Alcotest.fail "decoded a truncated stored block"

(* ---- Range coder ---- *)

(* Fenwick model vs the retained linear-scan oracle: identical
   cum_below/find/freq/total through thousands of updates, across the
   halving threshold (with +32 per update a model crosses it after
   ~2000 updates). *)
let check_models_agree n m r =
  let module M = Zip.Range_coder.Model in
  Alcotest.(check int) "total" (M.Reference.total r) (M.total m);
  for s = 0 to n - 1 do
    Alcotest.(check int) "freq" (M.Reference.freq r s) (M.freq m s);
    Alcotest.(check int) "cum_below" (M.Reference.cum_below r s)
      (M.cum_below m s)
  done

let test_fenwick_differential_halving () =
  let module M = Zip.Range_coder.Model in
  List.iter
    (fun n ->
      let m = M.create n and r = M.Reference.create n in
      let rng = Support.Prng.create (Int64.of_int (9000 + n)) in
      for i = 1 to 5000 do
        let s = Support.Prng.int rng n in
        M.update m s;
        M.Reference.update r s;
        if i mod 611 = 0 then check_models_agree n m r
      done;
      check_models_agree n m r;
      (* find must agree on every reachable target *)
      let total = M.total m in
      for _ = 1 to 200 do
        let t = Support.Prng.int rng total in
        let sym, cum = M.find m t in
        let sym', cum' = M.Reference.find r t in
        Alcotest.(check (pair int int)) "find" (sym', cum') (sym, cum)
      done)
    [ 1; 2; 3; 7; 16; 64; 256; 300 ]

let prop_fenwick_differential =
  QCheck.Test.make ~name:"fenwick model vs Reference oracle" ~count:100
    QCheck.(pair (int_range 1 48) (list_of_size (Gen.int_range 0 300) (int_bound 1000)))
    (fun (n, updates) ->
      let module M = Zip.Range_coder.Model in
      let m = M.create n and r = M.Reference.create n in
      List.for_all
        (fun u ->
          let s = u mod n in
          M.update m s;
          M.Reference.update r s;
          let ok_state =
            M.total m = M.Reference.total r
            && M.freq m s = M.Reference.freq r s
            && M.cum_below m s = M.Reference.cum_below r s
          in
          let t = u mod M.total m in
          ok_state && M.find m t = M.Reference.find r t)
        updates)

let test_range_coder_basic () =
  let m = Zip.Range_coder.Model.create 4 in
  let e = Zip.Range_coder.encoder () in
  let syms = [ 0; 1; 2; 3; 0; 0; 1; 2; 0; 0; 0 ] in
  List.iter
    (fun s ->
      Zip.Range_coder.encode e m s;
      Zip.Range_coder.Model.update m s)
    syms;
  let z = Zip.Range_coder.finish e in
  let m2 = Zip.Range_coder.Model.create 4 in
  let d = Zip.Range_coder.decoder z in
  List.iter
    (fun s ->
      let s' = Zip.Range_coder.decode d m2 in
      Zip.Range_coder.Model.update m2 s';
      Alcotest.(check int) "symbol" s s')
    syms

let prop_range_order0 =
  QCheck.Test.make ~name:"range coder order-0 roundtrip" ~count:50
    QCheck.(string_gen_of_size (Gen.int_range 0 500) Gen.printable)
    (fun s ->
      Zip.Range_coder.decompress_order_n_exn ~order:0
        (Zip.Range_coder.compress_order_n ~order:0 s)
      = s)

let prop_range_order2 =
  QCheck.Test.make ~name:"range coder order-2 roundtrip" ~count:30
    QCheck.(string_gen_of_size (Gen.int_range 0 500) (Gen.char_range 'a' 'f'))
    (fun s ->
      Zip.Range_coder.decompress_order_n_exn ~order:2
        (Zip.Range_coder.compress_order_n ~order:2 s)
      = s)

let test_range_order1_beats_order0 () =
  (* a cyclic string is almost perfectly predictable from the previous
     character but has a flat order-0 distribution *)
  let s = String.concat "" (List.init 150 (fun _ -> "abcdefgh")) in
  let z0 = Zip.Range_coder.compress_order_n ~order:0 s in
  let z1 = Zip.Range_coder.compress_order_n ~order:1 s in
  Alcotest.(check bool) "order-1 wins" true (String.length z1 < String.length z0)

(* ---- edge corpora: Prng-generated strings plus the degenerate shapes
   every coder must handle (empty, one byte, all-equal bytes) ---- *)

let edge_corpus =
  let rng = Support.Prng.create 0xC0DEC0DEL in
  let rand_string n =
    String.init n (fun _ -> Char.chr (Support.Prng.int rng 256))
  in
  [ ""; "x"; "\x00"; "\xff"; String.make 1 '\x80';
    String.make 64 '\x00'; String.make 257 'q'; String.make 1000 '\xff' ]
  @ List.init 24 (fun i -> rand_string (1 + (i * 17)))

let test_deflate_edge_corpus () =
  List.iter
    (fun s ->
      let z = Zip.Deflate.compress s in
      Alcotest.(check string) "roundtrip" s (Zip.Deflate.decompress_exn z);
      (* compression is a pure function: same input, same bytes *)
      Alcotest.(check string) "deterministic" z (Zip.Deflate.compress s))
    edge_corpus

let test_range_edge_corpus () =
  List.iter
    (fun s ->
      List.iter
        (fun order ->
          let z = Zip.Range_coder.compress_order_n ~order s in
          Alcotest.(check string) "roundtrip" s
            (Zip.Range_coder.decompress_order_n_exn ~order z);
          Alcotest.(check string) "deterministic" z
            (Zip.Range_coder.compress_order_n ~order s))
        [ 0; 1; 2; 3 ])
    edge_corpus

let test_lz77_edge_corpus () =
  List.iter
    (fun s ->
      let tokens = Zip.Lz77.tokenize s in
      Alcotest.(check string) "roundtrip" s (Zip.Lz77.reconstruct_exn tokens))
    edge_corpus

let test_mtf_edge_corpus () =
  let rng = Support.Prng.create 77L in
  let cases =
    [ []; [ 0 ]; [ 9; 9; 9; 9; 9 ] ]
    @ List.init 16 (fun i ->
          List.init (i * 11) (fun _ -> Support.Prng.int rng 40))
  in
  List.iter
    (fun xs ->
      let e = Zip.Mtf.encode_ints xs in
      Alcotest.(check (list int)) "roundtrip" xs (Zip.Mtf.decode_ints_exn e))
    cases

let test_huffman_edge_corpus () =
  let rng = Support.Prng.create 78L in
  let cases =
    [ []; [ 0 ]; [ 7; 7; 7; 7 ] ]
    @ List.init 16 (fun i ->
          List.init (i * 13) (fun _ -> Support.Prng.int rng 31))
  in
  List.iter
    (fun xs ->
      let enc = Zip.Huffman.encode_all xs ~alphabet:31 in
      Alcotest.(check (list int)) "roundtrip" xs
        (Zip.Huffman.decode_all_exn enc))
    cases

(* ---- parse strategies and the optimal parser ---- *)

let parse_cost (cm : Zip.Lz77.cost_model) tokens =
  List.fold_left
    (fun a t ->
      a
      + match t with
        | Zip.Lz77.Literal b -> cm.Zip.Lz77.literal_cost b
        | Zip.Lz77.Match { length; dist } -> cm.Zip.Lz77.match_cost ~length ~dist)
    0 tokens

(* A cost model monotone in distance (nearer never costs more), which is
   what makes the DAG's nearest-distance Pareto enumeration lossless —
   under it the shortest path is provably <= ANY parse built from the
   same match finder, including the lazy and greedy ones. *)
let flat_model =
  let sc = Zip.Lz77.cost_scale in
  let rec bits v = if v = 0 then 0 else 1 + bits (v lsr 1) in
  {
    Zip.Lz77.literal_cost = (fun _ -> 9 * sc);
    match_cost = (fun ~length:_ ~dist -> sc * (12 + bits dist));
  }

let strat_gen =
  QCheck.(string_gen_of_size (Gen.int_range 0 800) (Gen.char_range 'a' 'f'))

let prop_optimal_cheapest =
  QCheck.Test.make ~name:"optimal parse <= lazy <= greedy (flat model)"
    ~count:150 strat_gen (fun s ->
      let opt = Zip.Lz77.tokenize ~strategy:(Zip.Lz77.Optimal flat_model) s in
      let lazy_ = Zip.Lz77.tokenize ~strategy:Zip.Lz77.Lazy s in
      let greedy = Zip.Lz77.tokenize ~strategy:Zip.Lz77.Greedy s in
      Zip.Lz77.reconstruct_exn opt = s
      && Zip.Lz77.reconstruct_exn lazy_ = s
      && Zip.Lz77.reconstruct_exn greedy = s
      && parse_cost flat_model opt <= parse_cost flat_model lazy_
      && parse_cost flat_model opt <= parse_cost flat_model greedy)

let test_strategies_edge_corpus () =
  List.iter
    (fun s ->
      List.iter
        (fun strategy ->
          let tokens = Zip.Lz77.tokenize ~strategy s in
          Alcotest.(check string) "reconstruct" s
            (Zip.Lz77.reconstruct_exn tokens))
        [ Zip.Lz77.Greedy; Zip.Lz77.Lazy; Zip.Lz77.Optimal flat_model ])
    edge_corpus

(* the Bytes-backed bulk reconstruction against the byte-at-a-time
   Buffer oracle it replaced, over every strategy's token shapes *)
let prop_reconstruct_differential =
  QCheck.Test.make ~name:"reconstruct bulk = reference oracle" ~count:150
    strat_gen (fun s ->
      List.for_all
        (fun strategy ->
          let tokens = Zip.Lz77.tokenize ~strategy s in
          Zip.Lz77.reconstruct_exn tokens
          = Zip.Lz77.reconstruct_reference_exn tokens)
        [ Zip.Lz77.Greedy; Zip.Lz77.Lazy; Zip.Lz77.Optimal flat_model ])

let test_deflate_opt_never_larger () =
  List.iter
    (fun s ->
      let plain = Zip.Deflate.compress s in
      let opt = Zip.Deflate.compress_opt s in
      Alcotest.(check bool) "opt never larger" true
        (String.length opt <= String.length plain);
      Alcotest.(check string) "same inflater decodes it" s
        (Zip.Deflate.decompress_exn opt))
    edge_corpus

let prop_deflate_opt_roundtrip =
  QCheck.Test.make ~name:"deflate-opt roundtrip + never larger" ~count:100
    strat_gen (fun s ->
      let opt = Zip.Deflate.compress_opt s in
      String.length opt <= String.length (Zip.Deflate.compress s)
      && Zip.Deflate.decompress_exn opt = s)

(* ---- Lza: LZ77-optimal parse + range-coded tokens ---- *)

let test_lza_roundtrip_edge () =
  List.iter
    (fun s ->
      let z = Zip.Lza.compress s in
      Alcotest.(check string) "roundtrip" s (Zip.Lza.decompress_exn z);
      Alcotest.(check string) "deterministic" z (Zip.Lza.compress s))
    edge_corpus

let prop_lza_roundtrip =
  QCheck.Test.make ~name:"lza roundtrip" ~count:100 strat_gen (fun s ->
      Zip.Lza.decompress_exn (Zip.Lza.compress s) = s
      && Zip.Lz77.reconstruct_exn (Zip.Lza.tokenize_opt s) = s)

let test_lza_beats_arith_on_repetitive () =
  (* code-like input: long repeated phrases an order-2 byte model can't
     factor but the LZ token stream can *)
  let phrase = "push r1; load r2, [sp+8]; add r1, r2; ret;\n" in
  let buf = Buffer.create 4096 in
  for i = 0 to 63 do
    Buffer.add_string buf phrase;
    Buffer.add_string buf (string_of_int (i mod 7))
  done;
  let s = Buffer.contents buf in
  let lza = Zip.Lza.compress s in
  let arith = Zip.Range_coder.compress_order_n ~order:2 s in
  Alcotest.(check bool) "lza smaller than order-2 arith" true
    (String.length lza < String.length arith);
  Alcotest.(check string) "roundtrip" s (Zip.Lza.decompress_exn lza)

let test_lza_corrupt () =
  let s = "the quick brown fox jumps over the lazy dog, twice over" in
  let z = Zip.Lza.compress s in
  List.iter
    (fun m ->
      match Zip.Lza.decompress m with
      | Ok _ | Error _ -> () (* total: no exception escapes *))
    [
      String.sub z 0 (String.length z / 2);
      "";
      "\xff\xff\xff\xff\xff\xff\xff\xff";
      String.map (fun c -> Char.chr (Char.code c lxor 0x5a)) z;
    ];
  (* a declared length beyond the cap must be refused before allocation *)
  let big = Buffer.create 8 in
  Support.Util.uleb128 big (1 lsl 30);
  Buffer.add_string big "junk";
  match Zip.Lza.decompress (Buffer.contents big) with
  | Error e ->
    Alcotest.(check bool) "limit error" true
      (e.Support.Decode_error.kind = Support.Decode_error.Limit)
  | Ok _ -> Alcotest.fail "accepted a 1 GB declared length"

let () =
  Alcotest.run "zip"
    [
      ( "mtf",
        [
          Alcotest.test_case "paper example" `Quick test_mtf_paper_example;
          Alcotest.test_case "empty" `Quick test_mtf_empty;
          Alcotest.test_case "all same" `Quick test_mtf_all_same;
          Alcotest.test_case "locality" `Quick test_mtf_locality_wins;
          qcheck prop_mtf_roundtrip;
          qcheck prop_mtf_strings;
          qcheck prop_mtf_differential;
          qcheck prop_mtf_hashed_differential;
        ] );
      ( "huffman",
        [
          Alcotest.test_case "known code" `Quick test_huffman_known_code;
          Alcotest.test_case "kraft equality" `Quick test_huffman_kraft;
          Alcotest.test_case "single symbol" `Quick test_huffman_single_symbol;
          Alcotest.test_case "empty" `Quick test_huffman_empty;
          Alcotest.test_case "cost bits" `Quick test_huffman_cost_bits;
          Alcotest.test_case "near entropy" `Quick test_huffman_optimality_vs_entropy;
          Alcotest.test_case "length limited" `Quick test_huffman_length_limit;
          Alcotest.test_case "lengths serialization" `Quick
            test_huffman_lengths_serialization;
          Alcotest.test_case "table vs slow decode" `Quick
            test_huffman_table_vs_slow;
          qcheck prop_huffman_roundtrip;
          qcheck prop_huffman_table_vs_slow;
        ] );
      ( "lz77",
        [
          Alcotest.test_case "finds matches" `Quick test_lz77_finds_matches;
          Alcotest.test_case "no matches" `Quick test_lz77_no_matches;
          Alcotest.test_case "overlapping" `Quick test_lz77_overlapping_match;
          Alcotest.test_case "priming: empty dict is identical" `Quick
            test_lz77_dict_empty_identical;
          Alcotest.test_case "priming: match spans the boundary" `Quick
            test_lz77_dict_boundary_span;
          Alcotest.test_case "priming: final dict byte addressable" `Quick
            test_lz77_dict_final_byte;
          Alcotest.test_case "priming: dict longer than window" `Quick
            test_lz77_dict_longer_than_window;
          qcheck prop_lz77_roundtrip;
        ] );
      ( "deflate",
        [
          Alcotest.test_case "empty" `Quick test_deflate_empty;
          Alcotest.test_case "one byte" `Quick test_deflate_one_byte;
          Alcotest.test_case "binary alphabet" `Quick test_deflate_binary;
          Alcotest.test_case "compresses repetition" `Quick
            test_deflate_compresses_repetition;
          Alcotest.test_case "corrupt input" `Quick test_deflate_corrupt;
          Alcotest.test_case "truncated input" `Quick test_deflate_truncated;
          Alcotest.test_case "inflated length field" `Quick
            test_deflate_inflated_length;
          Alcotest.test_case "stored-block roundtrip" `Quick
            test_deflate_stored_roundtrip;
          Alcotest.test_case "stored-block truncated" `Quick
            test_deflate_stored_truncated;
          qcheck prop_deflate_roundtrip;
          qcheck prop_deflate_roundtrip_lowentropy;
          qcheck prop_deflate_never_expands;
        ] );
      ( "edge corpora",
        [
          Alcotest.test_case "mtf" `Quick test_mtf_edge_corpus;
          Alcotest.test_case "huffman" `Quick test_huffman_edge_corpus;
          Alcotest.test_case "lz77" `Quick test_lz77_edge_corpus;
          Alcotest.test_case "deflate" `Quick test_deflate_edge_corpus;
          Alcotest.test_case "range coder" `Quick test_range_edge_corpus;
        ] );
      ( "optimal parse",
        [
          Alcotest.test_case "strategies on edge corpus" `Quick
            test_strategies_edge_corpus;
          Alcotest.test_case "deflate-opt never larger" `Quick
            test_deflate_opt_never_larger;
          qcheck prop_optimal_cheapest;
          qcheck prop_reconstruct_differential;
          qcheck prop_deflate_opt_roundtrip;
        ] );
      ( "lza",
        [
          Alcotest.test_case "edge corpus roundtrip" `Quick
            test_lza_roundtrip_edge;
          Alcotest.test_case "beats order-2 arith on repetition" `Quick
            test_lza_beats_arith_on_repetitive;
          Alcotest.test_case "corrupt input is total" `Quick test_lza_corrupt;
          qcheck prop_lza_roundtrip;
        ] );
      ( "range_coder",
        [
          Alcotest.test_case "basic roundtrip" `Quick test_range_coder_basic;
          Alcotest.test_case "order-1 beats order-0" `Quick
            test_range_order1_beats_order0;
          Alcotest.test_case "fenwick vs oracle across halving" `Quick
            test_fenwick_differential_halving;
          qcheck prop_range_order0;
          qcheck prop_range_order2;
          qcheck prop_fenwick_differential;
        ] );
    ]
