(* Tests for the VM layer: ISA validation, binary encoding, code
   generation, interpreter semantics and traps. *)

let qcheck = QCheck_alcotest.to_alcotest

let compile src = Vm.Codegen.gen_program (Cc.Lower.compile src)

(* ---- ISA / validation ---- *)

let test_reg_names () =
  Alcotest.(check string) "n0" "n0" (Vm.Isa.reg_name 0);
  Alcotest.(check string) "sp" "sp" (Vm.Isa.reg_name Vm.Isa.sp);
  Alcotest.(check string) "ra" "ra" (Vm.Isa.reg_name Vm.Isa.ra);
  Alcotest.(check int) "16 registers" 16 Vm.Isa.num_regs

let test_validate_catches_bad_reg () =
  let p =
    { Vm.Isa.globals = [];
      funcs = [ { Vm.Isa.name = "f"; code = [ Vm.Isa.Mov (99, 0); Vm.Isa.Rjr ] } ] }
  in
  Alcotest.(check bool) "bad register" true (Vm.Isa.validate p <> [])

let test_validate_catches_bad_label () =
  let p =
    { Vm.Isa.globals = [];
      funcs = [ { Vm.Isa.name = "f"; code = [ Vm.Isa.Jmp "nowhere"; Vm.Isa.Rjr ] } ] }
  in
  Alcotest.(check bool) "bad label" true (Vm.Isa.validate p <> [])

let test_validate_catches_unknown_call () =
  let p =
    { Vm.Isa.globals = [];
      funcs = [ { Vm.Isa.name = "f"; code = [ Vm.Isa.Call "ghost"; Vm.Isa.Rjr ] } ] }
  in
  Alcotest.(check bool) "unknown call" true (Vm.Isa.validate p <> [])

let test_validate_accepts_builtin_call () =
  let p =
    { Vm.Isa.globals = [];
      funcs = [ { Vm.Isa.name = "f"; code = [ Vm.Isa.Call "putchar"; Vm.Isa.Rjr ] } ] }
  in
  Alcotest.(check (list string)) "ok" [] (Vm.Isa.validate p)

let test_instr_printing () =
  Alcotest.(check string) "ld" "ld.iw n0,4(sp)"
    (Vm.Isa.instr_to_string (Vm.Isa.Ld (Vm.Isa.W, 0, 4, Vm.Isa.sp)));
  Alcotest.(check string) "enter" "enter sp,sp,24"
    (Vm.Isa.instr_to_string (Vm.Isa.Enter 24));
  Alcotest.(check string) "ble" "ble.i n4,0,$L56"
    (Vm.Isa.instr_to_string (Vm.Isa.Bri (Vm.Isa.Le, 4, 0, "L56")))

(* ---- field view (used by BRISC) ---- *)

let test_fields_rebuild_identity () =
  let instrs =
    [ Vm.Isa.Ld (Vm.Isa.W, 0, 4, Vm.Isa.sp); Vm.Isa.Mov (2, 0);
      Vm.Isa.Alu (Vm.Isa.Add, 1, 2, 3); Vm.Isa.Alui (Vm.Isa.Sub, 0, 1, -7);
      Vm.Isa.Br (Vm.Isa.Lt, 1, 2, "L"); Vm.Isa.Enter 24;
      Vm.Isa.Spill (4, 16); Vm.Isa.Call "f"; Vm.Isa.Rjr;
      Vm.Isa.La (3, "g"); Vm.Isa.Li (5, 100000) ]
  in
  List.iter
    (fun i ->
      let i' = Vm.Encode.rebuild i (Vm.Encode.fields i) in
      Alcotest.(check string) "identity" (Vm.Isa.instr_to_string i)
        (Vm.Isa.instr_to_string i'))
    instrs

let test_base_keys_distinct () =
  (* shapes that must not collide *)
  let keys =
    List.map Vm.Encode.base_key
      [ Vm.Isa.Ld (Vm.Isa.W, 0, 0, 0); Vm.Isa.Ld (Vm.Isa.B, 0, 0, 0);
        Vm.Isa.Alu (Vm.Isa.Add, 0, 0, 0); Vm.Isa.Alui (Vm.Isa.Add, 0, 0, 0);
        Vm.Isa.Br (Vm.Isa.Le, 0, 0, ""); Vm.Isa.Bri (Vm.Isa.Le, 0, 0, "") ]
  in
  Alcotest.(check int) "all distinct" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_paper_sizes () =
  (* the paper's example counts: ld.iw n0,4(sp) = 3 bytes, mov.i = 2,
     enter sp,sp,24 = 3 *)
  Alcotest.(check int) "ld.iw" 3
    (Vm.Encode.encoded_size (Vm.Isa.Ld (Vm.Isa.W, 0, 4, Vm.Isa.sp)));
  Alcotest.(check int) "mov.i" 2 (Vm.Encode.encoded_size (Vm.Isa.Mov (2, 0)));
  Alcotest.(check int) "enter" 3 (Vm.Encode.encoded_size (Vm.Isa.Enter 24));
  Alcotest.(check int) "spill" 3 (Vm.Encode.encoded_size (Vm.Isa.Spill (4, 16)));
  Alcotest.(check int) "rjr" 1 (Vm.Encode.encoded_size Vm.Isa.Rjr);
  Alcotest.(check int) "label free" 0 (Vm.Encode.encoded_size (Vm.Isa.Label "x"))

let test_shape_code_roundtrip () =
  for code = 0 to 60 do
    let t = Vm.Encode.template_of_code code in
    Alcotest.(check int) "roundtrip" code (Vm.Encode.shape_code t)
  done

(* ---- binary program image ---- *)

let test_encode_decode_program () =
  let vp = compile Corpus.Programs.qsort.Corpus.Programs.source in
  let img = Vm.Encode.encode_program vp in
  let vp' = Vm.Encode.decode_program_exn img in
  Alcotest.(check bool) "identical" true (vp = vp')

let test_encode_decode_with_globals () =
  let vp = compile "int t[3] = {9,8,7}; char *s = 0; int main() { return t[0]; }" in
  let vp' = Vm.Encode.decode_program_exn (Vm.Encode.encode_program vp) in
  Alcotest.(check bool) "identical" true (vp = vp')

(* ---- codegen shape ---- *)

let test_prologue_shape () =
  (* paper §4.4: enter, spills of callee-saved regs and ra, body, exit,
     rjr *)
  let vp = compile Corpus.Programs.queens.Corpus.Programs.source in
  let f = List.find (fun f -> f.Vm.Isa.name = "solve") vp.Vm.Isa.funcs in
  (match f.Vm.Isa.code with
  | Vm.Isa.Enter _ :: rest ->
    let has_ra_spill =
      List.exists
        (fun i -> match i with Vm.Isa.Spill (r, _) -> r = Vm.Isa.ra | _ -> false)
        rest
    in
    Alcotest.(check bool) "spills ra (makes calls)" true has_ra_spill
  | _ -> Alcotest.fail "function must start with enter");
  match List.rev f.Vm.Isa.code with
  | Vm.Isa.Rjr :: Vm.Isa.Exit _ :: _ -> ()
  | _ -> Alcotest.fail "function must end with exit; rjr"

let test_leaf_function_no_ra_spill () =
  let vp = compile "int leaf(int x) { return x * 2; } int main() { return leaf(21); }" in
  let f = List.find (fun f -> f.Vm.Isa.name = "leaf") vp.Vm.Isa.funcs in
  let spills_ra =
    List.exists
      (fun i -> match i with Vm.Isa.Spill (r, _) -> r = Vm.Isa.ra | _ -> false)
      f.Vm.Isa.code
  in
  Alcotest.(check bool) "no ra spill in leaf" false spills_ra

let test_features_affect_instruction_mix () =
  let src = Corpus.Programs.sieve.Corpus.Programs.source in
  let ir = Cc.Lower.compile src in
  let full = Vm.Codegen.gen_program ~features:Vm.Isa.full_risc ir in
  let noimm = Vm.Codegen.gen_program ~features:Vm.Isa.minus_immediates ir in
  let nodisp = Vm.Codegen.gen_program ~features:Vm.Isa.minus_reg_disp ir in
  let count pred p =
    List.fold_left
      (fun acc f -> acc + List.length (List.filter pred f.Vm.Isa.code))
      0 p.Vm.Isa.funcs
  in
  let is_alui i = match i with Vm.Isa.Alui _ | Vm.Isa.Bri _ -> true | _ -> false in
  let is_disp i = match i with Vm.Isa.Ld _ | Vm.Isa.St _ -> true | _ -> false in
  Alcotest.(check bool) "full uses imm forms" true (count is_alui full > 0);
  Alcotest.(check int) "minus-imm has none" 0 (count is_alui noimm);
  Alcotest.(check bool) "full uses displacement" true (count is_disp full > 0);
  Alcotest.(check int) "minus-disp has none" 0 (count is_disp nodisp);
  (* de-tuning makes programs longer (the §5 premise) *)
  Alcotest.(check bool) "noimm bigger" true
    (Vm.Encode.program_size noimm > Vm.Encode.program_size full);
  Alcotest.(check bool) "nodisp bigger" true
    (Vm.Encode.program_size nodisp > Vm.Encode.program_size full)

let all_feature_sets =
  [ Vm.Isa.full_risc; Vm.Isa.minus_immediates; Vm.Isa.minus_reg_disp;
    Vm.Isa.minimal ]

let test_detuned_equivalence () =
  List.iter
    (fun (e : Corpus.Programs.entry) ->
      let ir = Cc.Lower.compile e.Corpus.Programs.source in
      let reference =
        Vm.Interp.run ~input:e.Corpus.Programs.input (Vm.Codegen.gen_program ir)
      in
      List.iter
        (fun feats ->
          let vp = Vm.Codegen.gen_program ~features:feats ir in
          let r = Vm.Interp.run ~input:e.Corpus.Programs.input vp in
          Alcotest.(check string)
            (e.Corpus.Programs.name ^ " output under " ^ Vm.Isa.feature_set_name feats)
            reference.Vm.Interp.output r.Vm.Interp.output;
          Alcotest.(check int) "exit code" reference.Vm.Interp.exit_code
            r.Vm.Interp.exit_code)
        all_feature_sets)
    [ Corpus.Programs.wc; Corpus.Programs.sieve; Corpus.Programs.strlib;
      Corpus.Programs.calc ]

(* ---- assembler ---- *)

let test_asm_roundtrip_corpus () =
  List.iter
    (fun (e : Corpus.Programs.entry) ->
      let vp = compile e.Corpus.Programs.source in
      let text = Vm.Isa.program_to_string vp in
      let vp' = Vm.Asm.parse_program text in
      Alcotest.(check bool) (e.Corpus.Programs.name ^ " roundtrip") true (vp = vp'))
    [ Corpus.Programs.wc; Corpus.Programs.calc; Corpus.Programs.strlib ]

let test_asm_single_instrs () =
  List.iter
    (fun text ->
      let i = Vm.Asm.parse_instr text in
      Alcotest.(check string) "reprint" text (Vm.Isa.instr_to_string i))
    [ "ld.iw n0,4(sp)"; "st.ib n3,-1(n2)"; "ldx.ih n1,(n2)"; "li n5,-100000";
      "la n2,table"; "mov.i n2,n0"; "add.i n1,n2,n3"; "sub.i n0,n1,42";
      "ble.i n4,0,$L56"; "bge.i n1,n2,$top"; "jmp $out"; "call pepper";
      "callr n3"; "rjr ra"; "enter sp,sp,24"; "exit sp,sp,24";
      "spill.i n4,16(sp)"; "reload.i ra,20(sp)"; "sext.b n0,n1";
      "neg.i n1,n2"; "not.i n3,n3" ]

let test_asm_errors () =
  List.iter
    (fun text ->
      match Vm.Asm.parse_instr text with
      | exception Vm.Asm.Asm_error _ -> ()
      | _ -> Alcotest.fail ("should not parse: " ^ text))
    [ "ld.iw n99,4(sp)"; "frobnicate n0"; "mov.i n0"; "ble.i n4,0,L56";
      "spill.i n4,16(n2)" ]

let test_asm_program_with_globals () =
  let src =
    ".global counter 4
     .global table 4 = 1,2,3,4
     main:
    \  la n1,counter   # comment
    \  li n2,7
     $loop:
    \  sub.i n2,n2,1
    \  bgt.i n2,0,$loop
    \  stx.iw n2,(n1)
    \  mov.i n0,n2
    \  rjr ra
"
  in
  let vp = Vm.Asm.parse_program src in
  let r = Vm.Interp.run vp in
  Alcotest.(check int) "counts down to zero" 0 r.Vm.Interp.exit_code

(* ---- peephole optimizer ---- *)

let test_peephole_preserves_semantics () =
  List.iter
    (fun (e : Corpus.Programs.entry) ->
      let vp = compile e.Corpus.Programs.source in
      let opt = Vm.Peephole.optimize vp in
      Alcotest.(check (list string)) "stays valid" [] (Vm.Isa.validate opt);
      let r0 = Vm.Interp.run ~input:e.Corpus.Programs.input vp in
      let r1 = Vm.Interp.run ~input:e.Corpus.Programs.input opt in
      Alcotest.(check string) (e.Corpus.Programs.name ^ " output")
        r0.Vm.Interp.output r1.Vm.Interp.output;
      Alcotest.(check int) "exit" r0.Vm.Interp.exit_code r1.Vm.Interp.exit_code;
      Alcotest.(check bool) "not slower" true
        (r1.Vm.Interp.steps <= r0.Vm.Interp.steps))
    Corpus.Programs.all

let test_peephole_shrinks () =
  let vp = compile Corpus.Programs.calc.Corpus.Programs.source in
  let before, after = Vm.Peephole.stats vp in
  Alcotest.(check bool) "fewer instructions" true (after < before)

let test_peephole_rewrites () =
  let f ops = { Vm.Isa.name = "f"; code = ops } in
  let opt ops = (Vm.Peephole.optimize_func (f ops)).Vm.Isa.code in
  (* store-to-load forwarding *)
  Alcotest.(check bool) "st/ld forwards" true
    (opt [ Vm.Isa.St (Vm.Isa.W, 4, 8, Vm.Isa.sp); Vm.Isa.Ld (Vm.Isa.W, 5, 8, Vm.Isa.sp); Vm.Isa.Rjr ]
    = [ Vm.Isa.St (Vm.Isa.W, 4, 8, Vm.Isa.sp); Vm.Isa.Mov (5, 4); Vm.Isa.Rjr ]);
  (* self-move vanishes *)
  Alcotest.(check bool) "mov self" true
    (opt [ Vm.Isa.Mov (3, 3); Vm.Isa.Rjr ] = [ Vm.Isa.Rjr ]);
  (* add 0 vanishes when in place *)
  Alcotest.(check bool) "add 0" true
    (opt [ Vm.Isa.Alui (Vm.Isa.Add, 2, 2, 0); Vm.Isa.Rjr ] = [ Vm.Isa.Rjr ]);
  (* jump to next label vanishes *)
  Alcotest.(check bool) "jmp next" true
    (opt [ Vm.Isa.Jmp "x"; Vm.Isa.Label "x"; Vm.Isa.Rjr ]
    = [ Vm.Isa.Label "x"; Vm.Isa.Rjr ]);
  (* a branch in between blocks forwarding *)
  let guarded =
    [ Vm.Isa.St (Vm.Isa.W, 4, 8, Vm.Isa.sp); Vm.Isa.Label "x";
      Vm.Isa.Ld (Vm.Isa.W, 5, 8, Vm.Isa.sp); Vm.Isa.Rjr ]
  in
  Alcotest.(check bool) "label blocks forwarding" true (opt guarded = guarded)

(* ---- interpreter traps ---- *)

let test_trap_div_zero () =
  let vp = compile "int main() { int z = 0; return 5 / z; }" in
  match Vm.Interp.run vp with
  | exception Vm.Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "division by zero must trap"

let test_trap_fuel () =
  let vp = compile "int main() { while (1) { } return 0; }" in
  match Vm.Interp.run ~fuel:1000 vp with
  | exception Vm.Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "fuel must run out"

let test_trap_bad_memory () =
  let vp = compile "int main() { int *p = 0; return *p; }" in
  (* address 0 is below the data base but inside memory: a load succeeds
     and returns zero; a negative address must trap *)
  ignore (Vm.Interp.run vp);
  let vp2 = compile "int main() { int *p = 0; p = p - 10000000; return *p; }" in
  match Vm.Interp.run vp2 with
  | exception Vm.Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "out-of-range access must trap"

let test_trap_abort () =
  let vp = compile "int main() { abort(); return 0; }" in
  match Vm.Interp.run vp with
  | exception Vm.Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "abort must trap"

let test_missing_entry () =
  let vp = compile "int helper() { return 1; }" in
  match Vm.Interp.run vp with
  | exception Vm.Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "missing main must fail"

let test_on_call_trace () =
  let vp = compile {|
int leaf(int x) { return x; }
int main() { leaf(1); leaf(2); leaf(3); return 0; }|} in
  let calls = ref [] in
  ignore (Vm.Interp.run ~on_call:(fun i -> calls := i :: !calls) vp);
  (* entry (main) + three leaf calls *)
  Alcotest.(check int) "four events" 4 (List.length !calls)

(* ---- exec core properties ---- *)

let prop_alu_norm_range =
  QCheck.Test.make ~name:"alu results stay in 32-bit range" ~count:500
    QCheck.(triple (int_range 0 9) int int)
    (fun (opn, a, b) ->
      let op =
        [| Vm.Isa.Add; Vm.Isa.Sub; Vm.Isa.Mul; Vm.Isa.Div; Vm.Isa.Mod;
           Vm.Isa.And; Vm.Isa.Or; Vm.Isa.Xor; Vm.Isa.Shl; Vm.Isa.Shr |].(opn)
      in
      let a = Vm.Exec.norm a and b = Vm.Exec.norm b in
      match Vm.Exec.alu op a b with
      | v -> v >= -0x80000000 && v <= 0x7FFFFFFF
      | exception Vm.Exec.Trap _ -> b = 0)

let prop_mem_roundtrip =
  QCheck.Test.make ~name:"store/load roundtrip" ~count:300
    QCheck.(pair (int_range 0 1000) int)
    (fun (addr, v) ->
      let st = Vm.Exec.create ~mem_size:4096 () in
      let v = Vm.Exec.norm v in
      Vm.Exec.store st Vm.Isa.W addr v;
      Vm.Exec.load st Vm.Isa.W addr = v)

let prop_byte_load_sign_extends =
  QCheck.Test.make ~name:"byte loads sign-extend" ~count:300
    QCheck.(int_range 0 255)
    (fun b ->
      let st = Vm.Exec.create ~mem_size:64 () in
      Vm.Exec.store st Vm.Isa.B 0 b;
      let v = Vm.Exec.load st Vm.Isa.B 0 in
      if b < 128 then v = b else v = b - 256)

let () =
  Alcotest.run "vm"
    [
      ( "isa",
        [
          Alcotest.test_case "register names" `Quick test_reg_names;
          Alcotest.test_case "bad register" `Quick test_validate_catches_bad_reg;
          Alcotest.test_case "bad label" `Quick test_validate_catches_bad_label;
          Alcotest.test_case "unknown call" `Quick test_validate_catches_unknown_call;
          Alcotest.test_case "builtin call ok" `Quick test_validate_accepts_builtin_call;
          Alcotest.test_case "printing" `Quick test_instr_printing;
        ] );
      ( "encode",
        [
          Alcotest.test_case "fields/rebuild identity" `Quick
            test_fields_rebuild_identity;
          Alcotest.test_case "base keys distinct" `Quick test_base_keys_distinct;
          Alcotest.test_case "paper byte counts" `Quick test_paper_sizes;
          Alcotest.test_case "shape codes" `Quick test_shape_code_roundtrip;
          Alcotest.test_case "program roundtrip" `Quick test_encode_decode_program;
          Alcotest.test_case "globals roundtrip" `Quick
            test_encode_decode_with_globals;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "prologue/epilogue shape" `Quick test_prologue_shape;
          Alcotest.test_case "leaf omits ra spill" `Quick
            test_leaf_function_no_ra_spill;
          Alcotest.test_case "feature sets change mix" `Quick
            test_features_affect_instruction_mix;
          Alcotest.test_case "de-tuned equivalence" `Slow test_detuned_equivalence;
        ] );
      ( "asm",
        [
          Alcotest.test_case "corpus roundtrip" `Quick test_asm_roundtrip_corpus;
          Alcotest.test_case "single instructions" `Quick test_asm_single_instrs;
          Alcotest.test_case "errors" `Quick test_asm_errors;
          Alcotest.test_case "program with globals" `Quick
            test_asm_program_with_globals;
        ] );
      ( "peephole",
        [
          Alcotest.test_case "preserves semantics" `Quick
            test_peephole_preserves_semantics;
          Alcotest.test_case "shrinks code" `Quick test_peephole_shrinks;
          Alcotest.test_case "specific rewrites" `Quick test_peephole_rewrites;
        ] );
      ( "interp",
        [
          Alcotest.test_case "div by zero traps" `Quick test_trap_div_zero;
          Alcotest.test_case "fuel exhaustion" `Quick test_trap_fuel;
          Alcotest.test_case "bad memory traps" `Quick test_trap_bad_memory;
          Alcotest.test_case "abort traps" `Quick test_trap_abort;
          Alcotest.test_case "missing entry" `Quick test_missing_entry;
          Alcotest.test_case "call trace" `Quick test_on_call_trace;
        ] );
      ( "exec",
        [
          qcheck prop_alu_norm_range;
          qcheck prop_mem_roundtrip;
          qcheck prop_byte_load_sign_extends;
        ] );
    ]
