(* Differential testing: generated programs must behave identically —
   same output bytes, same exit code — under the three execution paths
   a delivered program can take:

     1. the OmniVM interpreter on the uncompressed VM program,
     2. the BRISC in-place interpreter, through a full container
        serialization round-trip (to_bytes / of_bytes), and
     3. the BRISC JIT compiled to native and run on the simulator.

   A disagreement shrinks to the smallest function count (same seed)
   that still disagrees and prints that program's IR, so the failing
   case is immediately reproducible. *)

type obs = { output : string; exit_code : int }

let obs_vm vp input =
  let r = Vm.Interp.run ~input vp in
  { output = r.Vm.Interp.output; exit_code = r.Vm.Interp.exit_code }

let obs_brisc vp input =
  let img = Brisc.of_bytes_exn (Brisc.to_bytes (Brisc.compress vp)) in
  let r = Brisc.Interp.run ~input img in
  { output = r.Brisc.Interp.output; exit_code = r.Brisc.Interp.exit_code }

let obs_jit vp input =
  let img = Brisc.of_bytes_exn (Brisc.to_bytes (Brisc.compress vp)) in
  let r = Native.Sim.run ~input (Brisc.Jit.compile img) in
  { output = r.Native.Sim.output; exit_code = r.Native.Sim.exit_code }

(* None = all engines agree; Some description otherwise *)
let disagreement (profile : Corpus.Gen.profile) =
  let e = Corpus.Gen.generate profile in
  let ir = Cc.Lower.compile e.Corpus.Programs.source in
  let vp = Vm.Codegen.gen_program ir in
  let input = e.Corpus.Programs.input in
  let a = obs_vm vp input in
  let check name b =
    if a.output <> b.output then
      Some
        (Printf.sprintf "%s output differs: vm=%S %s=%S" name a.output name
           b.output)
    else if a.exit_code <> b.exit_code then
      Some
        (Printf.sprintf "%s exit differs: vm=%d %s=%d" name a.exit_code name
           b.exit_code)
    else None
  in
  match check "brisc-interp" (obs_brisc vp input) with
  | Some _ as d -> d
  | None -> check "brisc-jit" (obs_jit vp input)

let shrink (profile : Corpus.Gen.profile) =
  (* smallest function count (same seed) that still disagrees *)
  let rec go n =
    if n > profile.Corpus.Gen.functions then (profile, None)
    else
      let p = { profile with Corpus.Gen.functions = n } in
      match disagreement p with
      | Some d -> (p, Some d)
      | None -> go (n + 1)
  in
  go 1

let report_failure profile msg =
  let small, small_msg = shrink profile in
  let e = Corpus.Gen.generate small in
  let ir = Cc.Lower.compile e.Corpus.Programs.source in
  Alcotest.fail
    (Printf.sprintf
       "engines disagree (seed %Ld, %d functions): %s\n\
        minimal reproduction: %d functions: %s\n\
        --- IR of minimal program ---\n\
        %s"
       profile.Corpus.Gen.seed profile.Corpus.Gen.functions msg
       small.Corpus.Gen.functions
       (Option.value ~default:msg small_msg)
       (Ir.Printer.program_to_string ir))

let check_profile (profile : Corpus.Gen.profile) () =
  match disagreement profile with
  | None -> ()
  | Some msg -> report_failure profile msg

let profiles =
  (* seeded sweep over program sizes, including the 16-bit-biased shape *)
  List.concat_map
    (fun seed ->
      List.map
        (fun (functions, bias16) -> { Corpus.Gen.functions; seed; bias16 })
        [ (3, false); (5, false); (8, true) ])
    [ 11L; 23L; 37L; 53L; 71L; 97L ]

(* ---- the same differential, after profile-guided reordering ----

   The hot layout permutes functions (affinity order from the dynamic
   call trace) and basic blocks; none of that may be observable. Every
   engine runs the reordered program and must reproduce the ORIGINAL
   source-order vm observation — so a reorder bug that breaks all three
   engines the same way still fails here. *)

let reordered_disagreement (profile : Corpus.Gen.profile) =
  let e = Corpus.Gen.generate profile in
  let ir = Cc.Lower.compile e.Corpus.Programs.source in
  let vp = Vm.Codegen.gen_program ir in
  let input = e.Corpus.Programs.input in
  let a = obs_vm vp input in
  let prof = Vm.Profile.collect ~input vp in
  let hot = Vm.Layout.affinity_heat ~trace:(Vm.Profile.call_trace prof) in
  let bhot = Vm.Profile.block_hot prof in
  let vp_hot = Vm.Layout.hot_layout ~hot ~bhot vp in
  let check name b =
    if a.output <> b.output then
      Some
        (Printf.sprintf "%s output differs after reorder: vm=%S %s=%S" name
           a.output name b.output)
    else if a.exit_code <> b.exit_code then
      Some
        (Printf.sprintf "%s exit differs after reorder: vm=%d %s=%d" name
           a.exit_code name b.exit_code)
    else None
  in
  match check "vm" (obs_vm vp_hot input) with
  | Some _ as d -> d
  | None -> (
    match check "brisc-interp" (obs_brisc vp_hot input) with
    | Some _ as d -> d
    | None -> check "brisc-jit" (obs_jit vp_hot input))

let check_reordered (profile : Corpus.Gen.profile) () =
  match reordered_disagreement profile with
  | None -> ()
  | Some msg ->
    Alcotest.fail
      (Printf.sprintf "reordered engines disagree (seed %Ld, %d functions): %s"
         profile.Corpus.Gen.seed profile.Corpus.Gen.functions msg)

(* larger shapes too: past 40 functions the generated driver leaves
   cold functions interleaved with live ones, so the affinity order is
   a genuinely different permutation from source order *)
let reorder_profiles =
  profiles
  @ List.map
      (fun (functions, seed) -> { Corpus.Gen.functions; seed; bias16 = false })
      [ (40, 7L); (80, 101L); (120, 0x1CCL) ]

(* The chunked container must not depend on how many domains compressed
   it: same reordered IR, byte-identical bytes at every pool size. This
   is what lets the paging bench's committed numbers reproduce anywhere. *)
let test_chunked_pool_identity () =
  let e = Corpus.Gen.generate { Corpus.Gen.functions = 80; seed = 101L; bias16 = false } in
  let ir = Cc.Lower.compile e.Corpus.Programs.source in
  let vp = Vm.Codegen.gen_program ir in
  let input = e.Corpus.Programs.input in
  let prof = Vm.Profile.collect ~input vp in
  let hot = Vm.Layout.affinity_heat ~trace:(Vm.Profile.call_trace prof) in
  let ir_hot = Vm.Layout.reorder_ir ~hot ir in
  let base = Wire.Chunked.to_bytes (Wire.Chunked.compress ir_hot) in
  List.iter
    (fun domains ->
      let pool = Support.Pool.create ~domains in
      let bytes = Wire.Chunked.to_bytes (Wire.Chunked.compress ~pool ir_hot) in
      Support.Pool.shutdown pool;
      Alcotest.(check string)
        (Printf.sprintf "chunked bytes identical at %d domains" domains)
        base bytes)
    [ 1; 2; 4 ]

let () =
  Alcotest.run "diff"
    [
      ( "vm vs brisc-interp vs brisc-jit",
        List.mapi
          (fun i p ->
            Alcotest.test_case
              (Printf.sprintf "case %02d: %d fns, seed %Ld%s" i
                 p.Corpus.Gen.functions p.Corpus.Gen.seed
                 (if p.Corpus.Gen.bias16 then ", bias16" else ""))
              `Quick (check_profile p))
          profiles );
      ( "hot layout preserves semantics",
        List.mapi
          (fun i p ->
            Alcotest.test_case
              (Printf.sprintf "reordered %02d: %d fns, seed %Ld%s" i
                 p.Corpus.Gen.functions p.Corpus.Gen.seed
                 (if p.Corpus.Gen.bias16 then ", bias16" else ""))
              `Quick (check_reordered p))
          reorder_profiles
        @ [
            Alcotest.test_case "chunked bytes invariant across pool sizes"
              `Quick test_chunked_pool_identity;
          ] );
    ]
