(* The autotuner: policy-table format round-trips, validation against
   the registry, the search itself, and — the point of the whole
   subsystem — the engine serving a tuned pick instead of re-deriving
   the live-scoring argmin per request. *)

let pick ?(predicted_ms = 1.0) profile digest codec =
  { Tune.Policy.profile; digest; codec; predicted_ms; pname = "t" }

(* ---- policy table format ---- *)

let test_policy_round_trip () =
  let p =
    List.fold_left Tune.Policy.add Tune.Policy.empty
      [ pick "modem-jit" "d1" "wire";
        pick "lan-jit" "d1" "brisc" ~predicted_ms:42.5;
        pick "modem-jit" "d2" "wire+range" ]
  in
  match Tune.Policy.of_string (Tune.Policy.to_string p) with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok p' ->
    Alcotest.(check int) "three picks survive" 3
      (List.length (Tune.Policy.picks p'));
    (match Tune.Policy.lookup p' ~profile:"lan-jit" ~digest:"d1" with
    | None -> Alcotest.fail "lan-jit/d1 lost in round-trip"
    | Some k ->
      Alcotest.(check string) "codec survives" "brisc" k.Tune.Policy.codec;
      Alcotest.(check (float 1e-6)) "predicted_ms survives" 42.5
        k.Tune.Policy.predicted_ms);
    Alcotest.(check bool) "unknown digest misses" true
      (Tune.Policy.lookup p' ~profile:"modem-jit" ~digest:"d9" = None)

let test_policy_add_replaces () =
  let p =
    List.fold_left Tune.Policy.add Tune.Policy.empty
      [ pick "modem-jit" "d1" "wire"; pick "modem-jit" "d1" "brisc" ]
  in
  Alcotest.(check int) "same key replaced, not duplicated" 1
    (List.length (Tune.Policy.picks p));
  match Tune.Policy.lookup p ~profile:"modem-jit" ~digest:"d1" with
  | Some k -> Alcotest.(check string) "latest add wins" "brisc" k.Tune.Policy.codec
  | None -> Alcotest.fail "replaced pick vanished"

let test_policy_rejects_malformed () =
  (match Tune.Policy.of_string "mcc-policy 99\n" with
  | Ok _ -> Alcotest.fail "accepted an unknown version"
  | Error e ->
    Alcotest.(check bool) "unknown version names the problem" true
      (String.length e > 0));
  (match Tune.Policy.of_string "not a policy at all" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ());
  match
    Tune.Policy.of_string "mcc-policy 1\npick onlythree fields\n"
  with
  | Ok _ -> Alcotest.fail "accepted a short record"
  | Error _ -> ()

let test_policy_validate_against_registry () =
  let good = Tune.Policy.add Tune.Policy.empty (pick "modem-jit" "d1" "wire") in
  (match Tune.Policy.validate good with
  | Ok () -> ()
  | Error e -> Alcotest.failf "registered codec rejected: %s" e);
  let bad =
    Tune.Policy.add Tune.Policy.empty (pick "modem-jit" "d1" "no-such-codec")
  in
  match Tune.Policy.validate bad with
  | Ok () -> Alcotest.fail "validate accepted an unregistered codec"
  | Error e ->
    let contains hay needle =
      let hn = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= hn && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "error names the codec" true
      (contains e "no-such-codec")

(* ---- the search ---- *)

let small_point () =
  let ir =
    Cc.Lower.compile
      "int main() { int i; int s; s = 0; for (i = 0; i < 9; i = i + 1) { s = \
       s + i; } return s; }"
  in
  { Tune.Search.pname = "tiny"; ir; run_cycles = 1_000_000 }

let test_search_emits_valid_picks () =
  let point = small_point () in
  let p = Tune.Search.tune [ point ] in
  let picks = Tune.Policy.picks p in
  (* one argmin per default client *)
  Alcotest.(check int) "one pick per client"
    (List.length Tune.Search.default_clients)
    (List.length picks);
  (match Tune.Policy.validate p with
  | Ok () -> ()
  | Error e -> Alcotest.failf "tuner emitted an invalid table: %s" e);
  let dg = Tune.Search.digest_of point.Tune.Search.ir in
  List.iter
    (fun (c : Tune.Search.client) ->
      match Tune.Policy.lookup p ~profile:c.Tune.Search.cname ~digest:dg with
      | None -> Alcotest.failf "no pick for %s" c.Tune.Search.cname
      | Some k ->
        Alcotest.(check bool)
          (c.Tune.Search.cname ^ " predicted_ms positive") true
          (k.Tune.Policy.predicted_ms > 0.0))
    Tune.Search.default_clients

(* ---- the engine serving the table ---- *)

let prog src = Cc.Lower.compile src

let fib_src =
  "int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); \
   } int main() { return fib(10); }"

(* A tuned entry that DIFFERS from the live-scoring argmin must win:
   live scoring serves modem with wire+range-opt (test_server pins
   this), so a table pinning plain "wire" proves fetch consulted the
   table rather than re-deriving the argmin. *)
let test_engine_serves_tuned_pick () =
  let e = Server.create () in
  let dg = Server.publish e ~run_cycles:120_000_000 (prog fib_src) in
  let live = Server.fetch e dg Server.Profile.modem in
  Alcotest.(check string) "live scoring picks wire+range-opt"
    "wire+range-opt+JIT" live.Server.label;
  let policy =
    Tune.Policy.add Tune.Policy.empty
      (pick Server.Profile.modem.Server.Profile.name dg "wire")
  in
  let e2 = Server.create ~policy () in
  let dg2 = Server.publish e2 ~run_cycles:120_000_000 (prog fib_src) in
  Alcotest.(check string) "same program, same digest" dg dg2;
  let resp = Server.fetch e2 dg2 Server.Profile.modem in
  Alcotest.(check string) "tuned table overrides live scoring" "wire+JIT"
    resp.Server.label;
  let r = Server.report e2 in
  Alcotest.(check int) "fetch counted as a policy hit" 1
    r.Server.Stats.policy_hits;
  (* the served bytes are still the real artifact, decode-verified *)
  Alcotest.(check bool) "served image non-empty" true
    (String.length resp.Server.bytes > 0)

(* a pick the profile cannot use (or that names a stale digest) must
   fall through to live scoring, not fail the fetch *)
let test_engine_policy_fallback () =
  (* stale digest: lookup misses *)
  let policy =
    Tune.Policy.add Tune.Policy.empty (pick "modem-jit" "stale" "wire")
  in
  let e = Server.create ~policy () in
  let dg = Server.publish e ~run_cycles:120_000_000 (prog fib_src) in
  let resp = Server.fetch e dg Server.Profile.modem in
  Alcotest.(check string) "stale pick falls back to live scoring"
    "wire+range-opt+JIT" resp.Server.label;
  Alcotest.(check int) "stale-digest fallback is not a policy hit" 0
    (Server.report e).Server.Stats.policy_hits;
  (* infeasible pick: native for a modem client that can't take it *)
  let policy2 =
    Tune.Policy.add Tune.Policy.empty
      (pick Server.Profile.modem.Server.Profile.name dg "native")
  in
  let e2 = Server.create ~policy:policy2 () in
  let dg2 = Server.publish e2 ~run_cycles:120_000_000 (prog fib_src) in
  let resp2 = Server.fetch e2 dg2 Server.Profile.modem in
  Alcotest.(check string) "infeasible pick falls back to live scoring"
    "wire+range-opt+JIT" resp2.Server.label;
  let r = Server.report e2 in
  Alcotest.(check int) "fallback is not a policy hit" 0
    r.Server.Stats.policy_hits

(* A tuned pick whose artifact turns out corrupt must degrade to the
   next-best live candidate — and, because the pick never actually
   served, count zero policy hits. The follow-up fetch proves the store
   healed the quarantined artifact and the pick works again. *)
let test_engine_policy_quarantined_pick () =
  let e = Server.create () in
  let dg = Server.publish e ~run_cycles:120_000_000 (prog fib_src) in
  let policy =
    Tune.Policy.add Tune.Policy.empty
      (pick Server.Profile.modem.Server.Profile.name dg "wire")
  in
  let e2 = Server.create ~policy () in
  let dg2 = Server.publish e2 ~run_cycles:120_000_000 (prog fib_src) in
  Alcotest.(check string) "same digest" dg dg2;
  let store = Server.store e2 in
  ignore (Server.Store.materialize store dg2 Server.Artifact.wire);
  let flip s =
    let b = Bytes.of_string s in
    let i = Bytes.length b / 2 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    Bytes.to_string b
  in
  Alcotest.(check bool) "wire artifact corrupted in cache" true
    (Server.Store.corrupt_cached store dg2 Server.Artifact.wire ~f:flip);
  let resp = Server.fetch e2 dg2 Server.Profile.modem in
  Alcotest.(check string) "degrades to the next-best live candidate"
    "wire+range-opt+JIT" resp.Server.label;
  Alcotest.(check (option string)) "degradation records the failed pick"
    (Some "wire+JIT") resp.Server.degraded_from;
  let r = Server.report e2 in
  Alcotest.(check int) "corruption detected" 1 r.Server.Stats.decode_failures;
  Alcotest.(check int) "quarantined pick is not a policy hit" 0
    r.Server.Stats.policy_hits;
  (* next fetch: the store rebuilds the quarantined artifact fresh, the
     pick verifies, and only now does the table score a hit *)
  let resp2 = Server.fetch e2 dg2 Server.Profile.modem in
  Alcotest.(check string) "healed pick serves again" "wire+JIT"
    resp2.Server.label;
  let r2 = Server.report e2 in
  Alcotest.(check int) "heal recorded" 1 r2.Server.Stats.quarantine_heals;
  Alcotest.(check int) "served pick is the first policy hit" 1
    r2.Server.Stats.policy_hits

let () =
  Alcotest.run "tune"
    [
      ( "policy",
        [
          Alcotest.test_case "format round-trip" `Quick test_policy_round_trip;
          Alcotest.test_case "add replaces same key" `Quick
            test_policy_add_replaces;
          Alcotest.test_case "rejects malformed input" `Quick
            test_policy_rejects_malformed;
          Alcotest.test_case "validate against registry" `Quick
            test_policy_validate_against_registry;
        ] );
      ( "search",
        [
          Alcotest.test_case "emits one valid pick per client" `Quick
            test_search_emits_valid_picks;
        ] );
      ( "engine",
        [
          Alcotest.test_case "serves a tuned pick over live scoring" `Quick
            test_engine_serves_tuned_pick;
          Alcotest.test_case "falls back on stale or infeasible pick" `Quick
            test_engine_policy_fallback;
          Alcotest.test_case "degrades past a quarantined pick" `Quick
            test_engine_policy_quarantined_pick;
        ] );
    ]
