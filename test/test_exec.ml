(* Cross-engine equivalence: for every corpus program, all four
   execution paths must produce identical output and exit codes:

     1. VM interpreter          (reference semantics)
     2. native simulator        (VM -> x86-like -> Sim)
     3. BRISC direct interpreter (compressed, interpreted in place)
     4. BRISC JIT               (compressed -> native -> Sim)

   This is the repo's strongest end-to-end check: it exercises the
   whole pipeline from C source to all execution engines. *)

type outcome = { out : string; code : int }

let engines (e : Corpus.Programs.entry) =
  let ir = Cc.Lower.compile e.Corpus.Programs.source in
  let vp = Vm.Codegen.gen_program ir in
  let input = e.Corpus.Programs.input in
  let r_vm = Vm.Interp.run ~input vp in
  let np = Native.Compile.compile_program vp in
  let r_sim = Native.Sim.run ~input np in
  let img = Brisc.of_bytes_exn (Brisc.to_bytes (Brisc.compress vp)) in
  let r_brisc = Brisc.Interp.run ~input img in
  let jit = Brisc.Jit.compile img in
  let r_jit = Native.Sim.run ~input jit in
  ( { out = r_vm.Vm.Interp.output; code = r_vm.Vm.Interp.exit_code },
    [
      ("native-sim", { out = r_sim.Native.Sim.output; code = r_sim.Native.Sim.exit_code });
      ("brisc-interp", { out = r_brisc.Brisc.Interp.output; code = r_brisc.Brisc.Interp.exit_code });
      ("brisc-jit", { out = r_jit.Native.Sim.output; code = r_jit.Native.Sim.exit_code });
    ] )

let check_entry (e : Corpus.Programs.entry) () =
  let reference, others = engines e in
  List.iter
    (fun (name, o) ->
      Alcotest.(check string) (name ^ " output") reference.out o.out;
      Alcotest.(check int) (name ^ " exit code") reference.code o.code)
    others

let corpus_cases =
  List.map
    (fun (e : Corpus.Programs.entry) ->
      Alcotest.test_case e.Corpus.Programs.name `Slow (check_entry e))
    Corpus.Programs.all

let generated_cases =
  [
    Alcotest.test_case "generated small" `Slow
      (check_entry (Corpus.Gen.generate Corpus.Gen.small));
  ]

(* known-output pins: engine agreement is necessary but not sufficient,
   so pin a few programs to their externally known answers *)
let known_outputs =
  [
    ("sieve", "168\n", 168);       (* primes <= 1000 *)
    ("queens", "92\n", 92);        (* 8-queens solutions *)
    ("wc", "3 13 63\n", 0);
    ("calc", "7\n5\n80\n", 92);    (* 7+5+80 = 92 *)
  ]

let check_known (name, expected_out, expected_code) () =
  match Corpus.Programs.find name with
  | None -> Alcotest.fail ("missing corpus entry " ^ name)
  | Some e ->
    let ir = Cc.Lower.compile e.Corpus.Programs.source in
    let vp = Vm.Codegen.gen_program ir in
    let r = Vm.Interp.run ~input:e.Corpus.Programs.input vp in
    Alcotest.(check string) "output" expected_out r.Vm.Interp.output;
    Alcotest.(check int) "exit" expected_code r.Vm.Interp.exit_code

let known_cases =
  List.map
    (fun ((name, _, _) as spec) ->
      Alcotest.test_case ("pinned " ^ name) `Quick (check_known spec))
    known_outputs

(* differential testing: random programs from the corpus generator,
   executed by every engine; any divergence is a bug in one of the seven
   components between source and result (frontend, codegen, encoders,
   compressor, decoders, interpreters, JIT) *)

let differential_seed seed () =
  let e =
    Corpus.Gen.generate { Corpus.Gen.functions = 30; seed; bias16 = Int64.to_int seed mod 2 = 0 }
  in
  let reference, others = engines e in
  List.iter
    (fun (name, o) ->
      Alcotest.(check string) (Printf.sprintf "%s output (seed %Ld)" name seed)
        reference.out o.out;
      Alcotest.(check int) "exit" reference.code o.code)
    others

let differential_cases =
  List.map
    (fun seed ->
      Alcotest.test_case (Printf.sprintf "random seed %Ld" seed) `Slow
        (differential_seed seed))
    [ 1L; 2L; 3L; 5L; 8L; 13L; 21L; 34L; 55L; 89L ]

(* peephole-optimized programs must also agree across all engines *)
let differential_optimized seed () =
  let e =
    Corpus.Gen.generate { Corpus.Gen.functions = 25; seed; bias16 = false }
  in
  let ir = Cc.Lower.compile e.Corpus.Programs.source in
  let vp = Vm.Peephole.optimize (Vm.Codegen.gen_program ir) in
  let r0 = Vm.Interp.run vp in
  let img = Brisc.of_bytes_exn (Brisc.to_bytes (Brisc.compress vp)) in
  let r1 = Brisc.Interp.run img in
  let r2 = Native.Sim.run (Brisc.Jit.compile img) in
  Alcotest.(check string) "brisc output" r0.Vm.Interp.output r1.Brisc.Interp.output;
  Alcotest.(check string) "jit output" r0.Vm.Interp.output r2.Native.Sim.output

let optimized_cases =
  List.map
    (fun seed ->
      Alcotest.test_case (Printf.sprintf "optimized seed %Ld" seed) `Slow
        (differential_optimized seed))
    [ 7L; 11L; 23L ]

(* cycle-model sanity: interpreters must be slower than native in the
   modelled sense the paper relies on *)
let test_interp_overhead () =
  let e = Corpus.Programs.queens in
  let ir = Cc.Lower.compile e.Corpus.Programs.source in
  let vp = Vm.Codegen.gen_program ir in
  let img = Brisc.compress vp in
  let r_vm = Vm.Interp.run vp in
  let r_brisc = Brisc.Interp.run img in
  (* the BRISC interpreter executes the same VM work through per-dispatch
     decoding; dispatches < vm steps because of combination *)
  Alcotest.(check bool) "combination shrinks dispatches" true
    (r_brisc.Brisc.Interp.dispatches <= r_brisc.Brisc.Interp.vm_steps);
  Alcotest.(check bool) "same vm work" true
    (abs (r_brisc.Brisc.Interp.vm_steps - r_vm.Vm.Interp.steps)
     (* label pseudo-instructions are counted by the VM interpreter only *)
     <= r_vm.Vm.Interp.steps / 2)

let () =
  Alcotest.run "exec"
    [
      ("corpus", corpus_cases);
      ("generated", generated_cases);
      ("differential", differential_cases);
      ("differential_optimized", optimized_cases);
      ("pinned", known_cases);
      ("overhead", [ Alcotest.test_case "dispatch counts" `Quick test_interp_overhead ]);
    ]
