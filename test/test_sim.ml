(* The fleet simulator: trace format totality and round-trips, the
   replay determinism contract (across runs, across pool sizes, across
   the in-process/daemon boundary), the committed golden scenario
   corpus, live-run capture, and A/B policy diffing. *)

let mini_keys = [ "wc"; "sieve"; "calc"; "crc" ]

let gen name ?(seed = 42L) ?(events = 80) () =
  let spec =
    match Sim.Gen.find name with
    | Some s -> s
    | None -> Alcotest.failf "no generator named %s" name
  in
  let t = spec.Sim.Gen.generate ~seed ~events ~keys:mini_keys in
  { t with Sim.Trace.catalog = "mini" }

(* ---- the trace format ---- *)

let test_trace_round_trip () =
  List.iter
    (fun (s : Sim.Gen.spec) ->
      let t = gen s.Sim.Gen.sname () in
      let text = Sim.Trace.to_string t in
      match Sim.Trace.of_string text with
      | Error e ->
        Alcotest.failf "%s: own output rejected: %s" s.Sim.Gen.sname
          (Support.Decode_error.to_string e)
      | Ok t2 ->
        Alcotest.(check string)
          (s.Sim.Gen.sname ^ " round-trips byte-identically")
          text (Sim.Trace.to_string t2);
        Alcotest.(check int) "event count survives"
          (List.length t.Sim.Trace.events)
          (List.length t2.Sim.Trace.events))
    Sim.Gen.all

let reject label text =
  match Sim.Trace.of_string text with
  | Ok _ -> Alcotest.failf "%s: accepted" label
  | Error e ->
    Alcotest.(check bool) (label ^ " error names the trace decoder") true
      (e.Support.Decode_error.decoder = "trace")

let test_trace_rejects_malformed () =
  reject "empty input" "";
  reject "wrong magic" "mcc-trace 9\n";
  reject "garbage header" "not a trace\n";
  let hdr = "mcc-trace 1\nmeta scenario s\nmeta catalog mini\nmeta seed 1\n" in
  reject "unknown record kind" (hdr ^ "xx 1 c0 embedded fetch wc\n");
  reject "short event row" (hdr ^ "ev 1 c0 embedded fetch\n");
  reject "unknown op" (hdr ^ "ev 1 c0 embedded teleport wc\n");
  reject "non-integer timestamp" (hdr ^ "ev soon c0 embedded fetch wc\n");
  reject "negative timestamp" (hdr ^ "ev -4 c0 embedded fetch wc\n");
  reject "decreasing timestamps"
    (hdr ^ "ev 9 c0 embedded fetch wc\nev 3 c0 embedded fetch wc\n");
  reject "unknown fault kind"
    (hdr ^ "ev 1 c0 embedded fetch wc fault melt 7\n");
  reject "short fault clause" (hdr ^ "ev 1 c0 embedded fetch wc fault\n");
  reject "meta after events"
    (hdr ^ "ev 1 c0 embedded fetch wc\nmeta seed 2\n");
  (* the reader's allocation cap is a typed Limit, not an OOM *)
  let many =
    hdr
    ^ String.concat ""
        (List.init 20 (fun i ->
             Printf.sprintf "ev %d c0 embedded fetch wc\n" i))
  in
  match Sim.Trace.of_string ~max_events:10 many with
  | Ok _ -> Alcotest.fail "event cap not enforced"
  | Error e ->
    Alcotest.(check bool) "cap is a Limit error" true
      (e.Support.Decode_error.kind = Support.Decode_error.Limit)

(* ---- replay determinism ---- *)

let test_replay_deterministic_across_runs () =
  let t = gen "steady" () in
  let r1 = Sim.Replay.run t in
  let r2 = Sim.Replay.run t in
  Alcotest.(check string) "event logs byte-identical" r1.Sim.Replay.r_log
    r2.Sim.Replay.r_log;
  Alcotest.(check int) "serve crc identical" r1.Sim.Replay.r_serve_crc
    r2.Sim.Replay.r_serve_crc;
  Alcotest.(check int) "bytes on wire identical" r1.Sim.Replay.r_bytes_on_wire
    r2.Sim.Replay.r_bytes_on_wire;
  (* the whole render — counters, latency percentiles, crcs — is pinned *)
  Alcotest.(check string) "full render identical" (Sim.Replay.render r1)
    (Sim.Replay.render r2);
  Alcotest.(check string) "json identical" (Sim.Replay.to_json r1)
    (Sim.Replay.to_json r2)

let test_replay_deterministic_across_pool_sizes () =
  let t = gen "steady" () in
  let with_pool domains f =
    let pool = Support.Pool.create ~domains in
    Fun.protect ~finally:(fun () -> Support.Pool.shutdown pool) (fun () -> f pool)
  in
  let r1 =
    with_pool 1 (fun pool ->
        Sim.Replay.run
          ~config:{ Sim.Replay.default_config with pool = Some pool } t)
  in
  let r4 =
    with_pool 4 (fun pool ->
        Sim.Replay.run
          ~config:{ Sim.Replay.default_config with pool = Some pool } t)
  in
  Alcotest.(check string) "render identical at 1 vs 4 domains"
    (Sim.Replay.render r1) (Sim.Replay.render r4);
  Alcotest.(check string) "event logs identical" r1.Sim.Replay.r_log
    r4.Sim.Replay.r_log

let test_replay_daemon_parity () =
  let t = gen "steady" ~events:60 () in
  let r = Sim.Replay.run t in
  let d = Sim.Replay.via_daemon t in
  (* latencies are measured on the daemon path, everything else —
     events, served payloads, engine counters — must match exactly *)
  Alcotest.(check string) "event logs identical" r.Sim.Replay.r_log
    d.Sim.Replay.r_log;
  Alcotest.(check int) "serve crc identical" r.Sim.Replay.r_serve_crc
    d.Sim.Replay.r_serve_crc;
  Alcotest.(check int) "bytes on wire identical" r.Sim.Replay.r_bytes_on_wire
    d.Sim.Replay.r_bytes_on_wire;
  Alcotest.(check int) "decode failures identical"
    r.Sim.Replay.r_decode_failures d.Sim.Replay.r_decode_failures;
  Alcotest.(check (float 1e-9)) "cache hit rate identical"
    r.Sim.Replay.r_cache_hit_rate d.Sim.Replay.r_cache_hit_rate

let test_replay_corruption_heals () =
  let t = gen "corruption-burst" ~events:120 () in
  let has_fault =
    List.exists
      (fun e -> e.Sim.Trace.fault <> None)
      t.Sim.Trace.events
  in
  Alcotest.(check bool) "scenario carries fault directives" true has_fault;
  let r = Sim.Replay.run t in
  Alcotest.(check bool) "faults were detected" true
    (r.Sim.Replay.r_decode_failures > 0);
  Alcotest.(check bool) "quarantined artifacts healed" true
    (r.Sim.Replay.r_quarantine_heals > 0);
  (* detection without service failure: every event still served *)
  Alcotest.(check int) "all events served"
    (List.length t.Sim.Trace.events)
    r.Sim.Replay.r_all.Sim.Replay.ops

(* ---- the committed golden corpus ---- *)

(* Replays of the committed traces must render byte-identically to the
   committed reports: any drift in the engine, the codecs, the catalog
   or the latency model shows up here as a diff, exactly like a golden
   digest. Regenerate with `make traces` when the change is intended. *)
let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* dune runtest sandboxes us in _build/default/test (the declared deps
   land in ../traces); a bare `dune exec test/test_sim.exe` runs from
   the repo root, where the corpus is ./traces *)
let golden_root = if Sys.file_exists "../traces" then "../traces" else "traces"

let test_golden name () =
  let base = golden_root ^ "/" ^ name in
  let trace =
    match Sim.Trace.load (base ^ ".trace") with
    | Ok t -> t
    | Error e ->
      Alcotest.failf "%s.trace: %s" name (Support.Decode_error.to_string e)
  in
  let want = read_file (base ^ ".report") in
  let got = Sim.Replay.render (Sim.Replay.run trace) in
  Alcotest.(check string) (name ^ " replay matches committed report") want got

(* ---- the update channel ---- *)

(* The storm gate's claim, in-suite: replaying the committed
   update-storm trace with held-digest advertisement on must cost at
   most 40% of the full-redelivery bytes on the update ops, with every
   serve decode-verified client-side — and the delta codec itself must
   be what's doing the saving, not just the shared dictionary. *)
let test_update_storm_channel () =
  let base = golden_root ^ "/update_storm" in
  let trace =
    match Sim.Trace.load (base ^ ".trace") with
    | Ok t -> t
    | Error e ->
      Alcotest.failf "update_storm.trace: %s" (Support.Decode_error.to_string e)
  in
  let delta =
    Sim.Replay.run
      ~config:{ Sim.Replay.default_config with label = "delta" }
      trace
  in
  let full =
    Sim.Replay.run
      ~config:
        { Sim.Replay.default_config with label = "full"; contexted = false }
      trace
  in
  Alcotest.(check bool) "trace carries update ops" true
    (delta.Sim.Replay.r_update.Sim.Replay.ops > 0);
  Alcotest.(check int) "both sides served the same update ops"
    delta.Sim.Replay.r_update.Sim.Replay.ops
    full.Sim.Replay.r_update.Sim.Replay.ops;
  Alcotest.(check int) "no corrupt update serves (delta side)" 0
    delta.Sim.Replay.r_update_corrupt;
  Alcotest.(check int) "no corrupt update serves (full side)" 0
    full.Sim.Replay.r_update_corrupt;
  let ub = delta.Sim.Replay.r_update.Sim.Replay.bytes in
  let fb = full.Sim.Replay.r_update.Sim.Replay.bytes in
  Alcotest.(check bool)
    (Printf.sprintf "update bytes %d <= 40%% of full redelivery %d" ub fb)
    true
    (float_of_int ub <= 0.40 *. float_of_int fb);
  let contains hay needle =
    let hn = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= hn && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "delta patches actually served" true
    (contains delta.Sim.Replay.r_log "delta+JIT");
  Alcotest.(check bool) "full side never serves a context" true
    (not (contains full.Sim.Replay.r_log "ctx=3")
    && not (contains full.Sim.Replay.r_log "delta+JIT"))

(* contexted serves ride the same single-flight cache as everything
   else, so the storm replay must hold the pool-size invariance the
   determinism contract promises *)
let test_update_storm_pool_invariant () =
  let base = golden_root ^ "/update_storm" in
  let trace =
    match Sim.Trace.load (base ^ ".trace") with
    | Ok t -> t
    | Error e ->
      Alcotest.failf "update_storm.trace: %s" (Support.Decode_error.to_string e)
  in
  let with_pool domains f =
    let pool = Support.Pool.create ~domains in
    Fun.protect ~finally:(fun () -> Support.Pool.shutdown pool) (fun () -> f pool)
  in
  let r1 =
    with_pool 1 (fun pool ->
        Sim.Replay.run
          ~config:{ Sim.Replay.default_config with pool = Some pool } trace)
  in
  let r4 =
    with_pool 4 (fun pool ->
        Sim.Replay.run
          ~config:{ Sim.Replay.default_config with pool = Some pool } trace)
  in
  Alcotest.(check string) "render identical at 1 vs 4 domains"
    (Sim.Replay.render r1) (Sim.Replay.render r4)

(* ---- capture ---- *)

let test_workload_capture_replays () =
  let engine = Server.create () in
  let entries = Sim.Catalog.publish engine Sim.Catalog.Mini in
  let config = { Server.Workload.default_config with requests = 60 } in
  let summary, trace =
    Sim.Record.of_workload engine ~config ~catalog_name:"mini" entries
  in
  Alcotest.(check bool) "workload ran" true
    (summary.Server.Workload.requests > 0);
  Alcotest.(check bool) "capture saw events" true
    (List.length trace.Sim.Trace.events > 0);
  Alcotest.(check string) "catalog recorded" "mini" trace.Sim.Trace.catalog;
  (* the captured trace survives its own format... *)
  (match Sim.Trace.of_string (Sim.Trace.to_string trace) with
  | Error e ->
    Alcotest.failf "captured trace rejected: %s"
      (Support.Decode_error.to_string e)
  | Ok t2 ->
    Alcotest.(check int) "events survive"
      (List.length trace.Sim.Trace.events)
      (List.length t2.Sim.Trace.events));
  (* ...and replays deterministically like any synthesized one *)
  let r1 = Sim.Replay.run trace in
  let r2 = Sim.Replay.run trace in
  Alcotest.(check string) "captured replay deterministic"
    (Sim.Replay.render r1) (Sim.Replay.render r2);
  Alcotest.(check bool) "captured replay served bytes" true
    (r1.Sim.Replay.r_bytes_on_wire > 0)

(* ---- A/B ---- *)

(* Tune a policy over the mini programs in-test (Search keys picks by
   the same IR digest Store.publish uses), then diff tuned vs live over
   one trace: the table must actually serve (policy hits), and holding
   the same picks live scoring derives, it must not cost bytes. *)
let test_ab_tuned_vs_live () =
  let points =
    List.map
      (fun n ->
        let p =
          match Corpus.Programs.find n with
          | Some p -> p
          | None -> Alcotest.failf "no corpus program %s" n
        in
        { Tune.Search.pname = n;
          ir = Cc.Lower.compile p.Corpus.Programs.source;
          run_cycles = 120_000_000 })
      mini_keys
  in
  let policy = Tune.Search.tune points in
  let t = gen "flash-crowd" ~events:120 () in
  let d =
    Sim.Ab.run
      ~a:{ Sim.Replay.default_config with label = "tuned"; policy = Some policy }
      ~b:{ Sim.Replay.default_config with label = "live" }
      t
  in
  Alcotest.(check bool) "same events hit both sides" true d.Sim.Ab.same_events;
  Alcotest.(check bool) "tuned side actually used the table" true
    (d.Sim.Ab.a.Sim.Replay.r_policy_hits > 0);
  Alcotest.(check int) "live side has no table" 0
    d.Sim.Ab.b.Sim.Replay.r_policy_hits;
  Alcotest.(check bool) "tuned side at byte parity or better" true
    (d.Sim.Ab.a.Sim.Replay.r_bytes_on_wire
    <= d.Sim.Ab.b.Sim.Replay.r_bytes_on_wire);
  (* the json report carries the flat gate block perf_gate --ab scans *)
  let json = Sim.Ab.to_json d in
  let contains needle =
    let hn = String.length json and nn = String.length needle in
    let rec go i = i + nn <= hn && (String.sub json i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json declares mcc-ab 1" true
    (contains "\"format\": \"mcc-ab 1\"");
  List.iter
    (fun k ->
      Alcotest.(check bool) ("json gate has " ^ k) true
        (contains ("\"" ^ k ^ "\":")))
    [ "a_bytes"; "b_bytes"; "a_p99_ms"; "b_p99_ms" ]

let () =
  Alcotest.run "sim"
    [
      ( "trace",
        [
          Alcotest.test_case "format round-trip" `Quick test_trace_round_trip;
          Alcotest.test_case "rejects malformed input" `Quick
            test_trace_rejects_malformed;
        ] );
      ( "replay",
        [
          Alcotest.test_case "deterministic across runs" `Quick
            test_replay_deterministic_across_runs;
          Alcotest.test_case "deterministic across pool sizes" `Quick
            test_replay_deterministic_across_pool_sizes;
          Alcotest.test_case "daemon path parity" `Quick
            test_replay_daemon_parity;
          Alcotest.test_case "corruption burst detects and heals" `Quick
            test_replay_corruption_heals;
        ] );
      ( "golden",
        [
          Alcotest.test_case "steady" `Quick (test_golden "steady");
          Alcotest.test_case "flash crowd" `Quick (test_golden "flash_crowd");
          Alcotest.test_case "corruption burst" `Quick
            (test_golden "corruption_burst");
          Alcotest.test_case "mixed profiles" `Quick
            (test_golden "mixed_profiles");
          Alcotest.test_case "update storm" `Quick
            (test_golden "update_storm");
          Alcotest.test_case "paging" `Quick (test_golden "paging");
        ] );
      ( "storm",
        [
          Alcotest.test_case "delta channel beats full redelivery" `Quick
            test_update_storm_channel;
          Alcotest.test_case "pool-size invariant" `Quick
            test_update_storm_pool_invariant;
        ] );
      ( "capture",
        [
          Alcotest.test_case "workload capture replays" `Quick
            test_workload_capture_replays;
        ] );
      ( "ab",
        [
          Alcotest.test_case "tuned vs live over one trace" `Quick
            test_ab_tuned_vs_live;
        ] );
    ]
