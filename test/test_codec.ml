(* The codec layer: golden-pinned byte identity for every registered
   representation, registry-driven round-trips, compose/trace sanity,
   and registry invariants.

   The golden digests below were computed from the pre-codec pipelines
   (Wire.compress, Brisc.to_bytes ∘ Brisc.compress, ...) at the commit
   that introduced lib/codec — they pin the refactor to the historical
   formats byte-for-byte. *)

let digest s = Digest.to_hex (Digest.string s)

type prog = { pname : string; ir : Ir.Tree.program; vp : Vm.Isa.vprogram;
              native : string }

let prog pname src =
  let ir = Cc.Lower.compile src in
  let vp = Vm.Codegen.gen_program ir in
  let native = Native.Mach.encode_program (Native.Compile.compile_program vp) in
  { pname; ir; vp; native }

let progs =
  lazy
    [ prog "wc" Corpus.Programs.wc.Corpus.Programs.source;
      prog "qsort" Corpus.Programs.qsort.Corpus.Programs.source;
      prog "calc" Corpus.Programs.calc.Corpus.Programs.source ]

let source_of p = Codec.Source.of_ir ~vm:p.vp ~native:p.native p.ir

(* the context each registry entry needs, mirroring how the server
   supplies it: shared-dictionary codecs get the committed builtin
   dictionary; the delta update channel gets another corpus program as
   the held base artifact *)
let base_prog_for p =
  match List.filter (fun q -> q.pname <> p.pname) (Lazy.force progs) with
  | q :: _ -> q
  | [] -> assert false

let ctx_for (e : Codec.entry) ~base =
  match e.Codec.needs with
  | `None -> None
  | `Shared_dict _ -> Some (Codec.Context.builtin ())
  | `Base _ ->
    Some (Codec.Context.base ~ir_text:(Ir.Printer.program_to_string base.ir))

let builtin_pats () =
  match Codec.Context.builtin () with
  | Codec.Context.Shared_dict s -> s.Codec.Context.pats
  | Codec.Context.Base _ -> assert false

(* (program, codec name, md5 of the encoded bytes)

   Re-pinned once: the deflate format gained a 1-bit block type after
   the 32-bit length header (stored-block fallback so compression never
   expands — see Zip.Deflate). That bit shifts every deflate stream, so
   the gzip+native, wire and chunked-wire digests changed in lock-step;
   native, wire+range and brisc contain no deflate stream and kept their
   original pins.

   Chunked-wire re-pinned again for WCH3: the container grew an explicit
   per-chunk (name, length) index ahead of a contiguous data region so
   the demand pager's random access is O(1) instead of a header scan
   (see Wire.Chunked). The chunk payloads themselves are byte-identical
   to WCH2's; only the framing moved, so the other digests held. *)
let golden =
  [ ("wc", "native", "3c413a67213331d484a919a0aae89001");
    ("wc", "gzip+native", "31686d15c0f7579b4805eb50bdcb0735");
    ("wc", "wire", "08edbda94475356f2cc79a10a35a2ab8");
    ("wc", "wire+range", "425dd7b3ae495f47768e33a140b2d068");
    ("wc", "chunked-wire", "d0d394d50ae0b98842dd4a42d46c9553");
    ("wc", "brisc", "03ef78bbb491e2b7d522a7139c26203b");
    ("qsort", "native", "7c649fc4d4403644a00339c3c073af31");
    ("qsort", "gzip+native", "020f8e68c17f230db866196e6cabe213");
    ("qsort", "wire", "dd7a7b2c1003262bd22495d8fef65c7f");
    ("qsort", "wire+range", "85411fb6a381dee016c2a7dcd6a97915");
    ("qsort", "chunked-wire", "b3500ae1f7933da5ddf11a3676c317a8");
    ("qsort", "brisc", "2fa334732af01718ea2d186a57aa06f5");
    ("calc", "native", "4c4bcc0fdadf5a775efec41b592a744d");
    ("calc", "gzip+native", "9cec19be4dac678e8bf223f51b6b25f9");
    ("calc", "wire", "b22f213721d50f8bb583365014e95a01");
    ("calc", "wire+range", "eba14c37c4fab7a8a4467e4e74f29735");
    ("calc", "chunked-wire", "7c292ed888435afc070e774df4c4f253");
    ("calc", "brisc", "864bcab5e9416b18f3802fe1d95b1755") ]

let test_golden_pins () =
  List.iter
    (fun (pn, cn, want) ->
      let p = List.find (fun p -> p.pname = pn) (Lazy.force progs) in
      let c = (Codec.find_exn cn).Codec.codec in
      let bytes, _ = Codec.encode c (source_of p) in
      Alcotest.(check string)
        (Printf.sprintf "%s/%s byte-identical to pre-codec pipeline" pn cn)
        want (digest bytes))
    golden

(* the canonical expansion each codec's decode is documented to return *)
let expected_expansion p (e : Codec.entry) encoded =
  match Codec.name e.Codec.codec with
  | "native" | "brisc" -> encoded
  | "gzip+native" | "deflate" | "deflate-opt" -> p.native
  | "wire" | "wire+range" | "wire+range-opt" | "chunked-wire" | "wire+shared"
  | "delta" ->
    Ir.Printer.program_to_string p.ir
  | "brisc+shared" ->
    Brisc.to_bytes (Brisc.compress_shared ~shared:(builtin_pats ()) p.vp)
  | other -> Alcotest.failf "no canonical expansion known for codec %s" other

let test_registry_round_trips () =
  List.iter
    (fun p ->
      let src = source_of p in
      let base = base_prog_for p in
      List.iter
        (fun (e : Codec.entry) ->
          let c = e.Codec.codec in
          let n = Codec.name c in
          let ctx = ctx_for e ~base in
          let bytes, etr = Codec.encode ?ctx c src in
          Alcotest.(check bool)
            (p.pname ^ "/" ^ n ^ " encode non-empty") true
            (String.length bytes > 0);
          Alcotest.(check bool)
            (p.pname ^ "/" ^ n ^ " encode trace non-empty") true (etr <> []);
          List.iter
            (fun (s : Codec.stage) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s stage %s sane" p.pname n s.Codec.stage)
                true
                (s.Codec.bytes_in >= 0 && s.Codec.bytes_out >= 0
                && s.Codec.wall_s >= 0.0))
            etr;
          (* the final stage's output footprint is the encoded image *)
          let last = List.nth etr (List.length etr - 1) in
          Alcotest.(check int)
            (p.pname ^ "/" ^ n ^ " trace ends at encoded size")
            (String.length bytes) last.Codec.bytes_out;
          match Codec.decode ?ctx c bytes with
          | Error err ->
            Alcotest.failf "%s/%s decode failed: %s" p.pname n
              (Support.Decode_error.to_string err)
          | Ok (out, dtr) ->
            Alcotest.(check bool)
              (p.pname ^ "/" ^ n ^ " decode trace non-empty") true (dtr <> []);
            Alcotest.(check string)
              (p.pname ^ "/" ^ n ^ " canonical expansion")
              (digest (expected_expansion p e bytes))
              (digest out))
        (Codec.all ()))
    (Lazy.force progs)

(* decode must reject obvious corruption with a typed error, never an
   exception (the fuzz suite hammers this; here a deterministic smoke) *)
let test_decode_totality () =
  let p = List.hd (Lazy.force progs) in
  let src = source_of p in
  List.iter
    (fun (e : Codec.entry) ->
      let c = e.Codec.codec in
      let n = Codec.name c in
      let ctx = ctx_for e ~base:(base_prog_for p) in
      let bytes, _ = Codec.encode ?ctx c src in
      let flipped =
        let b = Bytes.of_string bytes in
        Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
        Bytes.to_string b
      in
      let truncated = String.sub bytes 0 (String.length bytes / 2) in
      List.iter
        (fun m ->
          match Codec.decode ?ctx c m with
          | Ok _ | Error _ -> ())
        [ flipped; truncated; ""; "garbage input that is not a container" ];
      (* CRC/magic-framed formats must actually notice a flipped leading byte *)
      if
        List.mem n
          [ "wire"; "wire+range"; "chunked-wire"; "wire+shared";
            "brisc+shared"; "delta" ]
      then
        match Codec.decode ?ctx c flipped with
        | Error _ -> ()
        | Ok _ -> Alcotest.failf "%s accepted a corrupted leading byte" n)
    (Codec.all ())

let test_compose () =
  let z = Codec.deflate_codec in
  let c = Codec.compose ~name:"native|z" ~tag:"T" Codec.native_codec z in
  Alcotest.(check string) "composed name" "native|z" (Codec.name c);
  let p = List.hd (Lazy.force progs) in
  let bytes, tr = Codec.encode c (source_of p) in
  let _, tr_n = Codec.encode Codec.native_codec (source_of p) in
  let _, tr_z = Codec.encode_bytes z p.native in
  Alcotest.(check int) "trace concatenates in work order"
    (List.length tr_n + List.length tr_z)
    (List.length tr);
  (* identical pipeline to gzip+native, so identical bytes *)
  let g, _ = Codec.encode Codec.gzip_native_codec (source_of p) in
  Alcotest.(check string) "compose equals built-in gzip+native"
    (digest g) (digest bytes);
  match Codec.decode c bytes with
  | Error e -> Alcotest.failf "compose decode: %s" (Support.Decode_error.to_string e)
  | Ok (out, _) ->
    Alcotest.(check string) "compose decode inverts back then front"
      (digest p.native) (digest out)

(* the acceptance bar for the bit-optimal parse: across the whole named
   corpus, deflate-opt must never emit more bytes than deflate, and must
   be strictly smaller on at least 80% of the points — anything less
   means the cost model stopped paying for its encode time *)
let test_deflate_opt_ratio () =
  let points =
    List.map
      (fun (e : Corpus.Programs.entry) ->
        let ir = Cc.Lower.compile e.Corpus.Programs.source in
        let vp = Vm.Codegen.gen_program ir in
        let native =
          Native.Mach.encode_program (Native.Compile.compile_program vp)
        in
        (e.Corpus.Programs.name, native))
      Corpus.Programs.all
  in
  let strictly_smaller = ref 0 in
  List.iter
    (fun (name, native) ->
      let plain, _ = Codec.encode_bytes Codec.deflate_codec native in
      let opt, _ = Codec.encode_bytes Codec.deflate_opt_codec native in
      let lp = String.length plain and lo = String.length opt in
      Alcotest.(check bool)
        (Printf.sprintf "%s: deflate-opt (%d B) never larger than deflate (%d B)"
           name lo lp)
        true (lo <= lp);
      if lo < lp then incr strictly_smaller)
    points;
  let n = List.length points in
  Alcotest.(check bool)
    (Printf.sprintf "deflate-opt strictly smaller on %d/%d points (need 80%%)"
       !strictly_smaller n)
    true
    (float_of_int !strictly_smaller >= 0.8 *. float_of_int n)

(* the update channel end to end: a patch against a held base must
   decode to the exact bytes of the full wire serve, the all-unchanged
   patch must be tiny (pure 'C' ops), and a patch applied against the
   wrong — or no — base must fail with a typed error, never garbage *)
let test_delta_channel () =
  let v1 = List.hd (Lazy.force progs) in
  let v2 = base_prog_for v1 in
  let base_ctx =
    Codec.Context.base ~ir_text:(Ir.Printer.program_to_string v1.ir)
  in
  let c = Codec.delta_codec in
  (* disjoint programs: every function ships as a compressed 'N' op *)
  let patch, _ = Codec.encode ~ctx:base_ctx c (source_of v2) in
  (match Codec.decode ~ctx:base_ctx c patch with
  | Error e ->
    Alcotest.failf "delta decode: %s" (Support.Decode_error.to_string e)
  | Ok (out, _) ->
    Alcotest.(check string) "patch reconstructs the exact full serve"
      (digest (Ir.Printer.program_to_string v2.ir))
      (digest out));
  (* identical program: all 'C' ops, far below the full wire artifact *)
  let self_patch, _ = Codec.encode ~ctx:base_ctx c (source_of v1) in
  (match Codec.decode ~ctx:base_ctx c self_patch with
  | Error e ->
    Alcotest.failf "self-patch decode: %s" (Support.Decode_error.to_string e)
  | Ok (out, _) ->
    Alcotest.(check string) "self-patch reconstructs the base"
      (digest (Ir.Printer.program_to_string v1.ir))
      (digest out));
  let full, _ =
    Codec.encode (Codec.find_exn "wire").Codec.codec (source_of v1)
  in
  Alcotest.(check bool)
    (Printf.sprintf "all-unchanged patch (%d B) under half the full serve (%d B)"
       (String.length self_patch) (String.length full))
    true
    (String.length self_patch * 2 < String.length full);
  (* hostile application: wrong base, absent base *)
  let wrong_ctx =
    Codec.Context.base ~ir_text:(Ir.Printer.program_to_string v2.ir)
  in
  (match Codec.decode ~ctx:wrong_ctx c patch with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "patch applied against the wrong base");
  (match Codec.decode c patch with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "patch applied with no base at all");
  (* encode without a base is a programming error, not a silent default *)
  Alcotest.check_raises "delta encode requires a base"
    (Invalid_argument "delta: encode requires a base-artifact context")
    (fun () -> ignore (Codec.encode c (source_of v1)))

(* shared-dictionary streams are pinned to their dictionary: decoding
   under a different (or no) dictionary is a typed error *)
let test_shared_dict_mismatch () =
  let p = List.hd (Lazy.force progs) in
  let src = source_of p in
  (* a dictionary trained on a single program differs from the
     committed corpus dictionary in both the LZ window and the BRISC
     prefix, whatever the committed one currently is *)
  let other = Codec.Context.train [ p.ir ] in
  List.iter
    (fun name ->
      let c = (Codec.find_exn name).Codec.codec in
      let bytes, _ = Codec.encode c src in
      (match Codec.decode ~ctx:other c bytes with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s decoded under the wrong dictionary" name);
      match Codec.decode c bytes with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s decoded with no dictionary" name)
    [ "wire+shared"; "brisc+shared" ]

(* [make dict] commits the trained dictionary; this pin fails the suite
   whenever the corpus and the committed bytes drift apart *)
let test_dict_digest_pin () =
  let irs =
    List.map
      (fun (e : Corpus.Programs.entry) -> Cc.Lower.compile e.Corpus.Programs.source)
      Corpus.Programs.all
  in
  let trained = Codec.Context.train irs in
  Alcotest.(check string) "committed dictionary = trained dictionary"
    (Codec.Context.digest trained)
    (Codec.Context.builtin_digest ())

let test_registry_invariants () =
  let es = Codec.all () in
  let names = List.map (fun e -> Codec.name e.Codec.codec) es in
  let tags = List.map (fun e -> Codec.tag e.Codec.codec) es in
  Alcotest.(check int) "names unique"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  Alcotest.(check int) "tags unique"
    (List.length tags)
    (List.length (List.sort_uniq compare tags));
  (* every delivery mode is served by some registered artifact *)
  List.iter
    (fun mode ->
      Alcotest.(check bool)
        ("mode served: " ^ Scenario.Delivery.repr_name mode)
        true
        (List.exists (fun e -> List.mem mode e.Codec.modes) (Codec.artifacts ())))
    [ Scenario.Delivery.Raw_native; Scenario.Delivery.Gzipped_native;
      Scenario.Delivery.Wire_format; Scenario.Delivery.Brisc_jit;
      Scenario.Delivery.Brisc_interp ];
  (* a streamable codec is an artifact even with no whole-image modes *)
  Alcotest.(check bool) "chunked-wire is an artifact" true
    (List.exists
       (fun e -> Codec.name e.Codec.codec = "chunked-wire")
       (Codec.artifacts ()));
  (* exactly the demand-pageable executables carry the flag: the
     chunked container (random-access decompression) and BRISC
     (interpretable in place under a budget) *)
  Alcotest.(check (list string)) "pageable entries"
    [ "chunked-wire"; "brisc" ]
    (List.filter_map
       (fun e ->
         if e.Codec.pageable then Some (Codec.name e.Codec.codec) else None)
       es);
  (* lookups *)
  Alcotest.(check bool) "find wire" true (Codec.find "wire" <> None);
  Alcotest.(check bool) "find unknown" true (Codec.find "nope" = None);
  (match Codec.find_tag "r" with
  | Some e -> Alcotest.(check string) "tag r is wire+range" "wire+range"
                (Codec.name e.Codec.codec)
  | None -> Alcotest.fail "find_tag r");
  Alcotest.check_raises "duplicate name rejected"
    (Invalid_argument "Codec.register: duplicate name wire")
    (fun () -> Codec.register (Codec.find_exn "wire").Codec.codec)

let () =
  Alcotest.run "codec"
    [
      ( "codec",
        [
          Alcotest.test_case "golden byte-identity pins" `Quick test_golden_pins;
          Alcotest.test_case "registry round-trips" `Quick
            test_registry_round_trips;
          Alcotest.test_case "decode totality smoke" `Quick test_decode_totality;
          Alcotest.test_case "compose" `Quick test_compose;
          Alcotest.test_case "deflate-opt ratio floor over corpus" `Slow
            test_deflate_opt_ratio;
          Alcotest.test_case "delta update channel" `Quick test_delta_channel;
          Alcotest.test_case "shared-dict mismatch rejected" `Quick
            test_shared_dict_mismatch;
          Alcotest.test_case "shared dictionary digest pin" `Quick
            test_dict_digest_pin;
          Alcotest.test_case "registry invariants" `Quick
            test_registry_invariants;
        ] );
    ]
