(* Tests for the wire format (§3): exact round-trips, ablation variants,
   stream statistics, and the paper's qualitative size claims. *)

let compile src = Cc.Lower.compile src

let roundtrip ?use_mtf ?split_streams ir =
  let z = Wire.compress ?use_mtf ?split_streams ir in
  let ir' = Wire.decompress_exn z in
  Ir.Tree.equal_program ir ir'

let check_roundtrip name (e : Corpus.Programs.entry) () =
  ignore name;
  let ir = compile e.Corpus.Programs.source in
  Alcotest.(check bool) "default pipeline" true (roundtrip ir);
  Alcotest.(check bool) "without mtf" true (roundtrip ~use_mtf:false ir);
  Alcotest.(check bool) "without stream split" true
    (roundtrip ~split_streams:false ir)

let corpus_cases =
  List.map
    (fun (e : Corpus.Programs.entry) ->
      Alcotest.test_case e.Corpus.Programs.name `Quick
        (check_roundtrip e.Corpus.Programs.name e))
    Corpus.Programs.all

let test_empty_program () =
  let ir = { Ir.Tree.globals = []; funcs = [] } in
  Alcotest.(check bool) "empty" true (roundtrip ir)

let test_globals_only () =
  let ir = compile "int g = 5; char buf[100]; int t[2] = {1,2};" in
  Alcotest.(check bool) "globals only" true (roundtrip ir)

let test_void_function () =
  let ir = compile "void nop() { } int main() { nop(); return 0; }" in
  Alcotest.(check bool) "void fn" true (roundtrip ir)

let test_preserves_semantics () =
  (* decompressed program must run identically, not just be equal *)
  let e = Corpus.Programs.calc in
  let ir = compile e.Corpus.Programs.source in
  let ir' = Wire.decompress_exn (Wire.compress ir) in
  let run p = Vm.Interp.run ~input:e.Corpus.Programs.input (Vm.Codegen.gen_program p) in
  let a = run ir and b = run ir' in
  Alcotest.(check string) "same output" a.Vm.Interp.output b.Vm.Interp.output;
  Alcotest.(check int) "same exit" a.Vm.Interp.exit_code b.Vm.Interp.exit_code

let frame body =
  (* the CRC-32 header Wire.compress prepends (big-endian) *)
  let crc = Support.Util.crc32 body in
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 (Char.chr ((crc lsr 24) land 0xff));
  Bytes.set hdr 1 (Char.chr ((crc lsr 16) land 0xff));
  Bytes.set hdr 2 (Char.chr ((crc lsr 8) land 0xff));
  Bytes.set hdr 3 (Char.chr (crc land 0xff));
  Bytes.to_string hdr ^ body

let test_corrupt_magic () =
  let ir = compile "int main() { return 0; }" in
  let z = Wire.compress ir in
  (* a well-formed frame (valid CRC, valid deflate) around a corrupted
     bundle: the parser itself must still reject the bad magic. The
     image is [crc32][tag][deflate(bundle)]. *)
  let body = String.sub z 4 (String.length z - 4) in
  let bundle =
    Zip.Deflate.decompress_exn (String.sub body 1 (String.length body - 1))
  in
  let mangled = Bytes.of_string bundle in
  Bytes.set mangled 0 'X';
  let z' = frame ("D" ^ Zip.Deflate.compress (Bytes.to_string mangled)) in
  match Wire.decompress z' with
  | Error e ->
    Alcotest.(check bool) "bad-magic kind" true
      (e.Support.Decode_error.kind = Support.Decode_error.Bad_magic)
  | Ok _ -> Alcotest.fail "bad magic must be rejected"

let test_truncated_input () =
  let ir = compile "int main() { return 0; }" in
  let z = Wire.compress ir in
  let truncated = String.sub z 0 (String.length z / 2) in
  match Wire.decompress truncated with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated input must be rejected"

(* ---- corruption: the CRC frame must catch every single-byte error ---- *)

let flip s i =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code s.[i] lxor 0x41));
  Bytes.to_string b

let small_ir = lazy (compile Corpus.Programs.calc.Corpus.Programs.source)

let test_wire_flip_every_byte () =
  (* exhaustive, not sampled: CRC-32 detects any error burst <= 32 bits,
     so every possible single-byte flip must yield a typed error —
     never an exception, never a silent Ok *)
  let z = Wire.compress (Lazy.force small_ir) in
  for i = 0 to String.length z - 1 do
    match Wire.decompress (flip z i) with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "byte %d: corruption undetected" i)
  done

let test_wire_every_truncation () =
  let z = Wire.compress (Lazy.force small_ir) in
  for len = 0 to String.length z - 1 do
    match Wire.decompress (String.sub z 0 len) with
    | Error _ -> ()
    | Ok _ ->
      Alcotest.fail (Printf.sprintf "length %d: truncation undetected" len)
  done

let test_chunked_flip_every_byte () =
  let img = Wire.Chunked.to_bytes (Wire.Chunked.compress (Lazy.force small_ir)) in
  for i = 0 to String.length img - 1 do
    match Wire.Chunked.of_bytes (flip img i) with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "byte %d: corruption undetected" i)
  done

let test_chunked_every_truncation () =
  let img = Wire.Chunked.to_bytes (Wire.Chunked.compress (Lazy.force small_ir)) in
  for len = 0 to String.length img - 1 do
    match Wire.Chunked.of_bytes (String.sub img 0 len) with
    | Error _ -> ()
    | Ok _ ->
      Alcotest.fail (Printf.sprintf "length %d: truncation undetected" len)
  done

(* ---- statistics / size claims ---- *)

let medium_ir = lazy (compile (Corpus.Gen.generate Corpus.Gen.medium).Corpus.Programs.source)

let test_stats_consistency () =
  let ir = Lazy.force medium_ir in
  let s = Wire.stats ir in
  Alcotest.(check bool) "wire smaller than bundle" true
    (s.Wire.wire_bytes < s.Wire.bundle_bytes);
  Alcotest.(check bool) "has patterns" true (s.Wire.pattern_count > 1000);
  Alcotest.(check bool) "patterns repeat" true
    (s.Wire.distinct_patterns < s.Wire.pattern_count / 2);
  Alcotest.(check bool) "has literal streams" true
    (List.length s.Wire.literal_stream_bytes > 3)

let test_beats_gzip_on_medium () =
  (* the paper's table: wire beats gzipped conventional code except on
     the smallest input *)
  let ir = Lazy.force medium_ir in
  let vp = Vm.Codegen.gen_program ir in
  let sparc = Native.Sparc.encode_program vp in
  let gz = Zip.Deflate.compress sparc in
  let wire = Wire.compress ir in
  Alcotest.(check bool) "wire < gzip(sparc)" true
    (String.length wire < String.length gz);
  (* and the headline factor is substantial *)
  Alcotest.(check bool) "factor > 3" true
    (float_of_int (String.length sparc) /. float_of_int (String.length wire)
     > 3.0)

let test_mtf_effect_bounded () =
  (* On this corpus MTF before the final deflate is roughly neutral (the
     deflate stage already exploits the locality MTF would expose); the
     ablation bench reports the exact numbers. Here we only pin that it
     stays within 10% either way. *)
  let ir = Lazy.force medium_ir in
  let with_mtf = String.length (Wire.compress ir) in
  let without = String.length (Wire.compress ~use_mtf:false ir) in
  Alcotest.(check bool) "mtf within 10%" true
    (float_of_int with_mtf <= 1.10 *. float_of_int without
    && float_of_int without <= 1.10 *. float_of_int with_mtf)

let test_split_streams_help () =
  (* the paper's stream-separation insight must show: pooling all literal
     classes into one stream compresses worse *)
  let ir = Lazy.force medium_ir in
  let split = String.length (Wire.compress ir) in
  let pooled = String.length (Wire.compress ~split_streams:false ir) in
  Alcotest.(check bool) "splitting wins" true (split < pooled)

let test_arith_final_stage () =
  let ir = compile Corpus.Programs.qsort.Corpus.Programs.source in
  List.iter
    (fun order ->
      let z = Wire.compress ~final_stage:(Wire.Arith order) ir in
      Alcotest.(check bool)
        (Printf.sprintf "arith order-%d roundtrip" order)
        true
        (Ir.Tree.equal_program ir (Wire.decompress_exn z)))
    [ 0; 1; 2; 3 ]

let test_arith_competitive () =
  (* the design-space claim: a context-modelling arithmetic final stage
     is competitive with deflate on a large bundle *)
  let ir = Lazy.force medium_ir in
  let d = String.length (Wire.compress ir) in
  let a = String.length (Wire.compress ~final_stage:(Wire.Arith 2) ir) in
  Alcotest.(check bool) "within 15% of deflate" true
    (float_of_int a <= 1.15 *. float_of_int d)

let test_bad_order_rejected () =
  let ir = compile "int main() { return 0; }" in
  match Wire.compress ~final_stage:(Wire.Arith 9) ir with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "order 9 must be rejected"

(* ---- chunked (function-at-a-time) ---- *)

let test_chunked_roundtrip () =
  let ir = compile Corpus.Programs.calc.Corpus.Programs.source in
  let c =
    Wire.Chunked.of_bytes_exn
      (Wire.Chunked.to_bytes (Wire.Chunked.compress ir))
  in
  Alcotest.(check bool) "whole program" true
    (Ir.Tree.equal_program ir (Wire.Chunked.decompress_all c))

let test_chunked_single_function () =
  let ir = compile Corpus.Programs.qsort.Corpus.Programs.source in
  let c = Wire.Chunked.compress ir in
  let f = Wire.Chunked.decompress_function c "partition" in
  let orig = List.find (fun (g : Ir.Tree.func) -> g.Ir.Tree.fname = "partition") ir.Ir.Tree.funcs in
  Alcotest.(check bool) "one function materializes exactly" true (f = orig);
  Alcotest.(check bool) "unknown name" true
    (match Wire.Chunked.decompress_function c "ghost" with
    | exception Not_found -> true
    | _ -> false)

let test_chunked_tradeoff () =
  (* per-function chunks lose cross-function sharing: bigger than the
     monolithic wire image, smaller than uncompressed SPARC *)
  let ir = Lazy.force medium_ir in
  let mono = String.length (Wire.compress ir) in
  let chunked = Wire.Chunked.size (Wire.Chunked.compress ir) in
  let sparc = Native.Sparc.program_size (Vm.Codegen.gen_program ir) in
  Alcotest.(check bool) "chunked > monolithic" true (chunked > mono);
  Alcotest.(check bool) "chunked < sparc" true (chunked < sparc)

let test_chunked_names () =
  let ir = compile "int a() { return 1; } int b() { return 2; } int main() { return a() + b(); }" in
  let c = Wire.Chunked.compress ir in
  Alcotest.(check (list string)) "names" [ "a"; "b"; "main" ]
    (Wire.Chunked.function_names c);
  Alcotest.(check bool) "chunk sizes positive" true
    (List.for_all (fun n -> Wire.Chunked.chunk_size c n > 0)
       (Wire.Chunked.function_names c))

(* parallel stream encode must be a pure speedup: identical bytes to
   the sequential path, for both the flat bundle and the chunked
   container, across ablation variants *)
let test_pool_byte_identical () =
  let pool = Support.Pool.create ~domains:4 in
  List.iter
    (fun (e : Corpus.Programs.entry) ->
      let ir = compile e.Corpus.Programs.source in
      Alcotest.(check string) "wire" (Wire.compress ir)
        (Wire.compress ~pool ir);
      Alcotest.(check string) "wire no-mtf"
        (Wire.compress ~use_mtf:false ir)
        (Wire.compress ~use_mtf:false ~pool ir);
      Alcotest.(check string) "chunked"
        (Wire.Chunked.to_bytes (Wire.Chunked.compress ir))
        (Wire.Chunked.to_bytes (Wire.Chunked.compress ~pool ir)))
    Corpus.Programs.all;
  Support.Pool.shutdown pool

let test_deterministic () =
  let ir = compile Corpus.Programs.strlib.Corpus.Programs.source in
  Alcotest.(check bool) "same bytes" true (Wire.compress ir = Wire.compress ir)

let () =
  Alcotest.run "wire"
    [
      ("roundtrip", corpus_cases);
      ( "edge_cases",
        [
          Alcotest.test_case "empty program" `Quick test_empty_program;
          Alcotest.test_case "globals only" `Quick test_globals_only;
          Alcotest.test_case "void function" `Quick test_void_function;
          Alcotest.test_case "preserves semantics" `Quick test_preserves_semantics;
          Alcotest.test_case "corrupt magic" `Quick test_corrupt_magic;
          Alcotest.test_case "truncated" `Quick test_truncated_input;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "pool byte-identical" `Quick
            test_pool_byte_identical;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "wire: flip every byte" `Quick
            test_wire_flip_every_byte;
          Alcotest.test_case "wire: every truncation" `Quick
            test_wire_every_truncation;
          Alcotest.test_case "chunked: flip every byte" `Quick
            test_chunked_flip_every_byte;
          Alcotest.test_case "chunked: every truncation" `Quick
            test_chunked_every_truncation;
        ] );
      ( "sizes",
        [
          Alcotest.test_case "stats consistency" `Slow test_stats_consistency;
          Alcotest.test_case "beats gzip (medium)" `Slow test_beats_gzip_on_medium;
          Alcotest.test_case "mtf effect bounded" `Slow test_mtf_effect_bounded;
          Alcotest.test_case "stream split effect" `Slow test_split_streams_help;
          Alcotest.test_case "arith final stage" `Quick test_arith_final_stage;
          Alcotest.test_case "arith competitive" `Slow test_arith_competitive;
          Alcotest.test_case "bad arith order" `Quick test_bad_order_rejected;
        ] );
      ( "chunked",
        [
          Alcotest.test_case "roundtrip" `Quick test_chunked_roundtrip;
          Alcotest.test_case "single function" `Quick test_chunked_single_function;
          Alcotest.test_case "size trade-off" `Slow test_chunked_tradeoff;
          Alcotest.test_case "names and sizes" `Quick test_chunked_names;
        ] );
    ]
