(* Fuzz layer: seeded mutations through Support.Fault against every
   untrusted-input decoder. The single property under test is totality:
   whatever the mutation, a decoder must return [Ok] or a typed
   [Error] — an escaped exception (or an OOM-scale allocation, which
   the bounded-allocation checks turn into [Error]) fails the run.

   Iteration count per decoder comes from FUZZ_ITERS (default 10_000;
   `make fuzz-quick` runs a bounded pass with 1_500). *)

let iters =
  match Sys.getenv_opt "FUZZ_ITERS" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 10_000)
  | None -> 10_000

(* ---- seed corpus: valid artifacts to mutate ---- *)

let programs =
  [ "int main() { return 0; }";
    "int f(int x) { return x * 3 + 1; }\n\
     int main() { int i; int s; s = 0; for (i = 0; i < 9; i++) s = s + f(i);\n\
     print_int(s); return s; }";
    Corpus.Programs.calc.Corpus.Programs.source ]

let irs = List.map Cc.Lower.compile programs
let vps = List.map Vm.Codegen.gen_program irs

let texts =
  [ ""; "x"; String.make 400 'a';
    String.concat "" (List.map string_of_int (List.init 120 (fun i -> i * 7))) ]

(* run [decode] over [iters] mutants drawn from [seeds]; [decode] does
   its own result match and Ok-side checks, and must never raise *)
let fuzz name seed seeds decode () =
  let rng = Support.Prng.create seed in
  let seeds = Array.of_list seeds in
  for i = 1 to iters do
    let mutant = Support.Fault.mutate rng (Support.Prng.pick rng seeds) in
    try decode rng mutant
    with e ->
      Alcotest.fail
        (Printf.sprintf "%s: iteration %d: exception escaped: %s" name i
           (Printexc.to_string e))
  done

(* ---- zip stack ---- *)

let fuzz_huffman =
  let seeds =
    List.map
      (fun t ->
        Bytes.to_string
          (Zip.Huffman.encode_all
             (List.init (String.length t) (fun i -> Char.code t.[i] land 31))
             ~alphabet:32))
      texts
  in
  fuzz "huffman" 101L seeds (fun _ m ->
      match Zip.Huffman.decode_all (Bytes.of_string m) with
      | Ok _ | Error _ -> ())

(* seeds whose code pushes past the 10-bit root table (skewed,
   wide-alphabet frequencies force 11..15-bit words), so mutants drive
   both the table hit and the slow-path fallback of the table-driven
   decoder; surviving mutants must decode identically on both paths *)
let fuzz_huffman_decode_table =
  let skewed =
    let rng = Support.Prng.create 0x7AB1EL in
    List.init 3
      (fun k ->
        List.init (600 + (k * 200)) (fun i ->
            if i land 7 = 0 then Support.Prng.int rng 200
            else Support.Prng.int rng 4))
  in
  let seeds =
    List.map (fun syms -> Bytes.to_string (Zip.Huffman.encode_all syms ~alphabet:200)) skewed
  in
  fuzz "huffman decode-table" 114L seeds (fun _ m ->
      match Zip.Huffman.decode_all (Bytes.of_string m) with
      | Error _ -> ()
      | Ok syms ->
        (* accepted mutants re-encode and decode to the same stream *)
        let alphabet = List.fold_left max 0 syms + 1 in
        let z = Zip.Huffman.encode_all syms ~alphabet in
        assert (Zip.Huffman.decode_all_exn z = syms))

let fuzz_deflate =
  let seeds = List.map Zip.Deflate.compress texts in
  fuzz "deflate" 102L seeds (fun _ m ->
      match Zip.Deflate.decompress m with
      | Error _ -> ()
      | Ok s ->
        (* a mutant that still decodes must round-trip through our own
           compressor *)
        if String.length s < 1_000_000 then
          assert (Zip.Deflate.decompress_exn (Zip.Deflate.compress s) = s))

let fuzz_range order seed =
  let seeds = List.map (Zip.Range_coder.compress_order_n ~order) texts in
  fuzz
    (Printf.sprintf "range order-%d" order)
    seed seeds
    (fun _ m ->
      match Zip.Range_coder.decompress_order_n ~order m with
      | Ok _ | Error _ -> ())

(* ---- wire ---- *)

let fuzz_wire =
  let seeds = List.map Wire.compress irs in
  fuzz "wire" 104L seeds (fun _ m ->
      match Wire.decompress m with
      | Ok _ | Error _ -> ())

(* mutate the bundle *behind* the CRC frame and re-frame it validly, so
   the parser itself — not just the checksum — faces hostile input *)
let frame body =
  let crc = Support.Util.crc32 body in
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 (Char.chr ((crc lsr 24) land 0xff));
  Bytes.set hdr 1 (Char.chr ((crc lsr 16) land 0xff));
  Bytes.set hdr 2 (Char.chr ((crc lsr 8) land 0xff));
  Bytes.set hdr 3 (Char.chr (crc land 0xff));
  Bytes.to_string hdr ^ body

let fuzz_wire_bundle =
  let seeds =
    List.map
      (fun ir ->
        let z = Wire.compress ir in
        let body = String.sub z 4 (String.length z - 4) in
        Zip.Deflate.decompress_exn (String.sub body 1 (String.length body - 1)))
      irs
  in
  fuzz "wire inner bundle" 105L seeds (fun _ bundle ->
      let z = frame ("D" ^ Zip.Deflate.compress bundle) in
      match Wire.decompress z with
      | Ok _ | Error _ -> ())

let fuzz_chunked =
  let seeds =
    List.map (fun ir -> Wire.Chunked.to_bytes (Wire.Chunked.compress ir)) irs
  in
  fuzz "chunked" 106L seeds (fun _ m ->
      match Wire.Chunked.of_bytes m with
      | Error _ -> ()
      | Ok c ->
        (* container framing survived; each chunk is opaque payload the
           client expands with the total Wire decoder *)
        List.iter
          (fun n ->
            match Wire.decompress (Wire.Chunked.chunk c n) with
            | Ok _ | Error _ -> ())
          (Wire.Chunked.function_names c))

(* the chunked body behind its own CRC: mutate, recompute the checksum,
   reassemble — forcing the container parser past the integrity check *)
let frame_with ~magic body = magic ^ frame body

let fuzz_chunked_body =
  let seeds =
    List.map
      (fun ir ->
        let img = Wire.Chunked.to_bytes (Wire.Chunked.compress ir) in
        String.sub img 8 (String.length img - 8))
      irs
  in
  fuzz "chunked inner body" 107L seeds (fun _ body ->
      match Wire.Chunked.of_bytes (frame_with ~magic:"WCH3" body) with
      | Ok _ | Error _ -> ())

(* the WCH3 random-access index under mutation: any container the
   parser accepts must serve the whole O(1) access surface — names,
   sizes, chunk bytes, per-chunk decompression — without an exception
   escaping (corrupt chunk payloads surface as typed decode errors) *)
let fuzz_chunked_index =
  let seeds =
    List.map
      (fun ir ->
        let img = Wire.Chunked.to_bytes (Wire.Chunked.compress ir) in
        String.sub img 8 (String.length img - 8))
      irs
  in
  fuzz "chunked index" 115L seeds (fun _ body ->
      match Wire.Chunked.of_bytes (frame_with ~magic:"WCH3" body) with
      | Error _ -> ()
      | Ok c ->
        for i = 0 to Wire.Chunked.chunk_count c - 1 do
          let name = Wire.Chunked.name_at c i in
          (match Wire.Chunked.index_of c name with
          | Some j -> assert (Wire.Chunked.name_at c j = name)
          | None -> assert false);
          assert (
            String.length (Wire.Chunked.chunk_at c i)
            = Wire.Chunked.chunk_size_at c i);
          match Wire.Chunked.decompress_at c i with
          | _ -> ()
          | exception Support.Decode_error.Fail _ -> ()
        done)

(* demand-paged execution over corrupt chunks: the pager's fault path
   decompresses mid-run, so a hostile chunk must surface as
   [Error (Decode _)] (or a trap), never as an exception escaping the
   engine — the budget is kept below one page so eviction and re-fault
   paths run too *)
let fuzz_paged_exec =
  let seeds =
    List.map
      (fun ir ->
        let img = Wire.Chunked.to_bytes (Wire.Chunked.compress ir) in
        String.sub img 8 (String.length img - 8))
      irs
  in
  fuzz "paged exec" 116L seeds (fun _ body ->
      match Wire.Chunked.of_bytes (frame_with ~magic:"WCH3" body) with
      | Error _ -> ()
      | Ok c -> (
        let cfg =
          Scenario.Paged.config ~page_bytes:64 ~budget_bytes:48 ()
        in
        match Scenario.Paged.run_vm ~cfg ~fuel:20_000 c with
        | Ok _ | Error _ -> ()))

(* ---- brisc ---- *)

let fuzz_brisc_container =
  let seeds = List.map (fun vp -> Brisc.to_bytes (Brisc.compress vp)) vps in
  fuzz "brisc container" 108L seeds (fun _ m ->
      match Brisc.of_bytes m with
      | Error _ -> ()
      | Ok img -> (
        (* a surviving container must also decompress totally *)
        match Brisc.Decomp.decompress img with Ok _ | Error _ -> ()))

(* structured: corrupt one function's code stream inside an otherwise
   valid image — exercises the Markov walker and the fuel guard rather
   than the container parser *)
let fuzz_brisc_decomp =
  let images = List.map Brisc.compress vps in
  fuzz "brisc decomp" 109L [ "" ] (fun rng _ ->
      let img = Support.Prng.pick rng (Array.of_list images) in
      let n = Array.length img.Brisc.Emit.ifuncs in
      if n > 0 then begin
        let k = Support.Prng.int rng n in
        let ifuncs =
          Array.mapi
            (fun i (f : Brisc.Emit.ifunc) ->
              if i = k then
                { f with Brisc.Emit.code = Support.Fault.mutate rng f.Brisc.Emit.code }
              else f)
            img.Brisc.Emit.ifuncs
        in
        match Brisc.Decomp.decompress { img with Brisc.Emit.ifuncs } with
        | Ok _ | Error _ -> ()
      end)

(* ---- vm ---- *)

let fuzz_vm_encode =
  let seeds = List.map Vm.Encode.encode_program vps in
  fuzz "vm encode" 110L seeds (fun _ m ->
      match Vm.Encode.decode_program m with
      | Error _ -> ()
      | Ok vp ->
        (* anything the decoder accepts must re-encode canonically *)
        assert (Vm.Encode.decode_program_exn (Vm.Encode.encode_program vp) = vp))

(* ---- structured hostile inputs (no byte container to mutate) ---- *)

let fuzz_mtf_structured =
  fuzz "mtf structured" 111L [ "" ] (fun rng _ ->
      let len = Support.Prng.int rng 40 in
      let indices =
        List.init len (fun _ -> Support.Prng.int rng 50 - 3)  (* incl. negatives *)
      in
      let novel = List.init (Support.Prng.int rng 8) (fun i -> i) in
      match Zip.Mtf.decode_ints { Zip.Mtf.indices; novel } with
      | Ok _ | Error _ -> ())

(* ---- registry-driven: one mutation row per registered codec ----

   Seeds come from [Codec.encode] on the same programs, so the rows
   track the registry: registering a new representation adds its
   totality row here with no edits. Context-requiring codecs encode
   under the context the server would supply, and their mutants are
   additionally decoded under the wrong context and under none —
   a hostile patch against an absent or mismatched base must come back
   as a typed error, never an exception. *)

let codec_rows =
  let sources =
    lazy
      (List.map2 (fun ir vp -> Codec.Source.of_ir ~vm:vp ir) irs vps)
  in
  let ctx_of (e : Codec.entry) =
    match e.Codec.needs with
    | `None -> None
    | `Shared_dict _ -> Some (Codec.Context.builtin ())
    | `Base _ ->
      Some
        (Codec.Context.base
           ~ir_text:(Ir.Printer.program_to_string (List.hd irs)))
  in
  let wrong_ctx_of (e : Codec.entry) =
    match e.Codec.needs with
    | `None -> None
    | `Shared_dict _ ->
      Some (Codec.Context.shared ~lz:"not the committed dictionary" ~pats_bytes:"")
    | `Base _ ->
      Some
        (Codec.Context.base
           ~ir_text:(Ir.Printer.program_to_string (List.nth irs 1)))
  in
  List.mapi
    (fun i (e : Codec.entry) ->
      let c = e.Codec.codec in
      let name = "codec:" ^ Codec.name c in
      let run () =
        let ctx = ctx_of e and wrong = wrong_ctx_of e in
        let seeds =
          List.map (fun src -> fst (Codec.encode ?ctx c src)) (Lazy.force sources)
        in
        fuzz name (Int64.of_int (200 + i)) seeds
          (fun _ m ->
            (match Codec.decode ?ctx c m with Ok _ | Error _ -> ());
            if ctx <> None then begin
              (match Codec.decode c m with Ok _ | Error _ -> ());
              match Codec.decode ?ctx:wrong c m with Ok _ | Error _ -> ()
            end)
          ()
      in
      Alcotest.test_case name `Quick run)
    (Codec.all ())

(* ---- simulator trace format ---- *)

(* seeds: one valid rendered trace per scenario generator, so the
   mutations walk headers, meta lines, event rows and fault clauses *)
let fuzz_trace =
  let seeds =
    lazy
      (List.map
         (fun (s : Sim.Gen.spec) ->
           let t =
             s.Sim.Gen.generate ~seed:7L ~events:60
               ~keys:[ "wc"; "sieve"; "calc"; "crc" ]
           in
           Sim.Trace.to_string { t with Sim.Trace.catalog = "mini" })
         Sim.Gen.all)
  in
  fun () ->
    fuzz "trace" 131L (Lazy.force seeds)
      (fun _ m -> match Sim.Trace.of_string m with Ok _ | Error _ -> ())
      ()

let fuzz_lz77_structured =
  fuzz "lz77 structured" 112L [ "" ] (fun rng _ ->
      let len = Support.Prng.int rng 40 in
      let tokens =
        List.init len (fun _ ->
            if Support.Prng.bool rng then
              Zip.Lz77.Literal (Support.Prng.int rng 600 - 100)
            else
              Zip.Lz77.Match
                {
                  length = Support.Prng.int rng 1000 - 100;
                  dist = Support.Prng.int rng 100_000 - 1000;
                })
      in
      match Zip.Lz77.reconstruct tokens with Ok _ | Error _ -> ())

let () =
  Printf.printf "fuzz: %d iterations per decoder\n%!" iters;
  Alcotest.run "fuzz"
    [
      ( "totality",
        [
          Alcotest.test_case "huffman" `Quick fuzz_huffman;
          Alcotest.test_case "huffman decode-table" `Quick
            fuzz_huffman_decode_table;
          Alcotest.test_case "deflate" `Quick fuzz_deflate;
          Alcotest.test_case "range order-0" `Quick (fuzz_range 0 103L);
          Alcotest.test_case "range order-2" `Quick (fuzz_range 2 113L);
          Alcotest.test_case "wire" `Quick fuzz_wire;
          Alcotest.test_case "wire inner bundle" `Quick fuzz_wire_bundle;
          Alcotest.test_case "chunked" `Quick fuzz_chunked;
          Alcotest.test_case "chunked inner body" `Quick fuzz_chunked_body;
          Alcotest.test_case "chunked index" `Quick fuzz_chunked_index;
          Alcotest.test_case "paged exec" `Quick fuzz_paged_exec;
          Alcotest.test_case "brisc container" `Quick fuzz_brisc_container;
          Alcotest.test_case "brisc decomp" `Quick fuzz_brisc_decomp;
          Alcotest.test_case "vm encode" `Quick fuzz_vm_encode;
          Alcotest.test_case "mtf structured" `Quick fuzz_mtf_structured;
          Alcotest.test_case "lz77 structured" `Quick fuzz_lz77_structured;
          Alcotest.test_case "sim trace" `Quick fuzz_trace;
        ]
        @ codec_rows );
    ]
