(* Unit and property tests for the support library. *)

let qcheck = QCheck_alcotest.to_alcotest

(* ---- Bitio ---- *)

let test_bit_roundtrip () =
  let w = Support.Bitio.Writer.create () in
  let bits = [ 1; 0; 1; 1; 0; 0; 1; 0; 1; 1; 1 ] in
  List.iter (Support.Bitio.Writer.put_bit w) bits;
  let r = Support.Bitio.Reader.of_bytes (Support.Bitio.Writer.contents w) in
  List.iter
    (fun b -> Alcotest.(check int) "bit" b (Support.Bitio.Reader.get_bit r))
    bits

let test_bits_lsb () =
  let w = Support.Bitio.Writer.create () in
  Support.Bitio.Writer.put_bits w 0b1101 4;
  Support.Bitio.Writer.put_bits w 0xAB 8;
  Support.Bitio.Writer.put_bits w 0x3FFF 14;
  let r = Support.Bitio.Reader.of_bytes (Support.Bitio.Writer.contents w) in
  Alcotest.(check int) "4 bits" 0b1101 (Support.Bitio.Reader.get_bits r 4);
  Alcotest.(check int) "8 bits" 0xAB (Support.Bitio.Reader.get_bits r 8);
  Alcotest.(check int) "14 bits" 0x3FFF (Support.Bitio.Reader.get_bits r 14)

let test_bits_msb () =
  let w = Support.Bitio.Writer.create () in
  Support.Bitio.Writer.put_bits_msb w 0b101 3;
  Support.Bitio.Writer.put_bits_msb w 0b1100 4;
  let r = Support.Bitio.Reader.of_bytes (Support.Bitio.Writer.contents w) in
  Alcotest.(check int) "3 bits msb" 0b101 (Support.Bitio.Reader.get_bits_msb r 3);
  Alcotest.(check int) "4 bits msb" 0b1100 (Support.Bitio.Reader.get_bits_msb r 4)

let test_byte_align () =
  let w = Support.Bitio.Writer.create () in
  Support.Bitio.Writer.put_bits w 0b1 1;
  Support.Bitio.Writer.align_byte w;
  Support.Bitio.Writer.put_byte w 0xCD;
  let r = Support.Bitio.Reader.of_bytes (Support.Bitio.Writer.contents w) in
  Alcotest.(check int) "bit" 1 (Support.Bitio.Reader.get_bit r);
  Support.Bitio.Reader.align_byte r;
  Alcotest.(check int) "byte" 0xCD (Support.Bitio.Reader.get_byte r)

let test_bit_length () =
  let w = Support.Bitio.Writer.create () in
  Alcotest.(check int) "empty" 0 (Support.Bitio.Writer.bit_length w);
  Support.Bitio.Writer.put_bits w 7 3;
  Alcotest.(check int) "3" 3 (Support.Bitio.Writer.bit_length w);
  Support.Bitio.Writer.put_byte w 1;
  Alcotest.(check int) "11" 11 (Support.Bitio.Writer.bit_length w)

let test_seek () =
  let w = Support.Bitio.Writer.create () in
  Support.Bitio.Writer.put_bits w 0xDEAD 16;
  let r = Support.Bitio.Reader.of_bytes (Support.Bitio.Writer.contents w) in
  Support.Bitio.Reader.seek_bit r 8;
  Alcotest.(check int) "high byte" 0xDE (Support.Bitio.Reader.get_bits r 8);
  Support.Bitio.Reader.seek_bit r 0;
  Alcotest.(check int) "low byte" 0xAD (Support.Bitio.Reader.get_bits r 8)

let test_reader_exhaustion () =
  let r = Support.Bitio.Reader.of_string "" in
  Alcotest.check_raises "empty read" (Failure "Bitio.Reader: out of bits")
    (fun () -> ignore (Support.Bitio.Reader.get_bit r))

(* The overflow window of the pre-fix [put_bits]: with up to 7 pending
   bits in the accumulator, an all-ones field of n in {48..56} shifts
   past OCaml's 63-bit int unless the writer splits the field. Every
   (pending, n) combination must round-trip with no dropped high bits. *)
let test_put_bits_wide_window () =
  for pending = 0 to 7 do
    for n = 48 to 56 do
      let w = Support.Bitio.Writer.create () in
      if pending > 0 then
        Support.Bitio.Writer.put_bits w ((1 lsl pending) - 1) pending;
      let v = (1 lsl n) - 1 in
      Support.Bitio.Writer.put_bits w v n;
      (* a trailing sentinel proves the bit cursor also stayed exact *)
      Support.Bitio.Writer.put_bits w 0b10110 5;
      let r = Support.Bitio.Reader.of_bytes (Support.Bitio.Writer.contents w) in
      if pending > 0 then
        Alcotest.(check int)
          (Printf.sprintf "pending %d" pending)
          ((1 lsl pending) - 1)
          (Support.Bitio.Reader.get_bits r pending);
      Alcotest.(check int) (Printf.sprintf "wide %d+%d" pending n) v
        (Support.Bitio.Reader.get_bits r n);
      Alcotest.(check int) "sentinel" 0b10110 (Support.Bitio.Reader.get_bits r 5)
    done
  done

let prop_put_bits_wide =
  QCheck.Test.make ~name:"put_bits wide fields with pending bits" ~count:300
    QCheck.(triple (int_range 0 7) (int_range 48 56) (int_bound max_int))
    (fun (pending, n, v) ->
      let v = v land ((1 lsl n) - 1) in
      let w = Support.Bitio.Writer.create () in
      Support.Bitio.Writer.put_bits w 0x55 pending;
      Support.Bitio.Writer.put_bits w v n;
      let r = Support.Bitio.Reader.of_bytes (Support.Bitio.Writer.contents w) in
      ignore (Support.Bitio.Reader.get_bits r pending);
      Support.Bitio.Reader.get_bits r n = v)

(* peek_bits/advance_bits must agree with get_bits over the same
   stream, and zero-fill — not fail — when the probe runs past the
   end (the table-driven Huffman decoder probes a full index width
   regardless of how many bits remain). *)
let prop_peek_advance_consistency =
  QCheck.Test.make ~name:"peek_bits+advance_bits = get_bits" ~count:300
    QCheck.(small_list (pair (int_bound 0xFFFF) (int_range 1 16)))
    (fun fields ->
      let w = Support.Bitio.Writer.create () in
      List.iter
        (fun (v, n) -> Support.Bitio.Writer.put_bits w (v land ((1 lsl n) - 1)) n)
        fields;
      let bytes = Support.Bitio.Writer.contents w in
      let r1 = Support.Bitio.Reader.of_bytes bytes in
      let r2 = Support.Bitio.Reader.of_bytes bytes in
      List.for_all
        (fun (_, n) ->
          let peeked = Support.Bitio.Reader.peek_bits r1 n in
          Support.Bitio.Reader.advance_bits r1 n;
          peeked = Support.Bitio.Reader.get_bits r2 n)
        fields)

let test_peek_past_end () =
  let r = Support.Bitio.Reader.of_string "\xff" in
  (* 8 real bits (all ones) then zero fill *)
  Alcotest.(check int) "zero filled" 0xFF (Support.Bitio.Reader.peek_bits r 20);
  Support.Bitio.Reader.advance_bits r 8;
  Alcotest.(check int) "empty probe" 0 (Support.Bitio.Reader.peek_bits r 16);
  Alcotest.check_raises "advance past end"
    (Failure "Bitio.Reader: out of bits") (fun () ->
      Support.Bitio.Reader.advance_bits r 1)

let prop_bits_roundtrip =
  QCheck.Test.make ~name:"bitio roundtrip random fields" ~count:200
    QCheck.(small_list (pair (int_bound 0xFFFF) (int_range 1 16)))
    (fun fields ->
      let w = Support.Bitio.Writer.create () in
      List.iter
        (fun (v, n) -> Support.Bitio.Writer.put_bits w (v land ((1 lsl n) - 1)) n)
        fields;
      let r = Support.Bitio.Reader.of_bytes (Support.Bitio.Writer.contents w) in
      List.for_all
        (fun (v, n) ->
          Support.Bitio.Reader.get_bits r n = v land ((1 lsl n) - 1))
        fields)

(* ---- Heap ---- *)

let test_heap_order () =
  let h = Support.Heap.of_list ~cmp:compare [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
  Alcotest.(check (list int)) "descending" [ 9; 6; 5; 4; 3; 2; 1; 1 ]
    (Support.Heap.to_sorted_list h)

let test_heap_empty () =
  let h = Support.Heap.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Support.Heap.is_empty h);
  Alcotest.(check (option int)) "pop" None (Support.Heap.pop h);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty")
    (fun () -> ignore (Support.Heap.pop_exn h))

let test_heap_peek () =
  let h = Support.Heap.of_list ~cmp:compare [ 2; 7; 3 ] in
  Alcotest.(check (option int)) "peek max" (Some 7) (Support.Heap.peek h);
  Alcotest.(check int) "len" 3 (Support.Heap.length h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let h = Support.Heap.of_list ~cmp:compare xs in
      Support.Heap.to_sorted_list h = List.sort (fun a b -> compare b a) xs)

(* with duplicate priorities and a tie-breaking key in the comparison
   (the shape Dict.build's benefit heap uses), the pop sequence is the
   full sorted order, independent of insertion order *)
let prop_heap_duplicate_priorities =
  QCheck.Test.make ~name:"heap pop order with duplicate priorities" ~count:200
    QCheck.(list (pair (int_bound 4) (int_bound 50)))
    (fun xs ->
      let cmp (p1, k1) (p2, k2) =
        if (p1 : int) <> p2 then compare p1 p2 else compare (k2 : int) k1
      in
      let drained l = Support.Heap.to_sorted_list (Support.Heap.of_list ~cmp l) in
      let expected = List.sort (fun a b -> cmp b a) xs in
      drained xs = expected && drained (List.rev xs) = expected)

(* ---- Pool ---- *)

let test_pool_in_order () =
  let p = Support.Pool.create ~domains:4 in
  let r = Support.Pool.run_list p (List.init 50 (fun i () -> i * i)) in
  Support.Pool.shutdown p;
  Alcotest.(check (list int)) "results in input order"
    (List.init 50 (fun i -> i * i))
    r

let test_pool_nested () =
  (* a task that itself fans out on the same pool must not deadlock *)
  let p = Support.Pool.create ~domains:2 in
  let expected =
    List.init 4 (fun i ->
        List.fold_left ( + ) 0 (List.init 5 (fun j -> (i * 5) + j)))
  in
  let r =
    Support.Pool.run_list p
      (List.init 4 (fun i () ->
           List.fold_left ( + ) 0
             (Support.Pool.run_list p
                (List.init 5 (fun j () -> (i * 5) + j)))))
  in
  Support.Pool.shutdown p;
  Alcotest.(check (list int)) "nested sums" expected r

let test_pool_exception () =
  let p = Support.Pool.create ~domains:3 in
  Alcotest.check_raises "first error re-raised" (Failure "boom") (fun () ->
      ignore
        (Support.Pool.run_list p
           [ (fun () -> 1); (fun () -> failwith "boom"); (fun () -> 3) ]));
  Alcotest.(check (list int)) "pool survives a failing batch" [ 1; 2 ]
    (Support.Pool.run_list p [ (fun () -> 1); (fun () -> 2) ]);
  Support.Pool.shutdown p

let test_pool_sequential_degrade () =
  let p = Support.Pool.create ~domains:1 in
  Alcotest.(check int) "size floor" 1 (Support.Pool.size p);
  Alcotest.(check (list int)) "map" [ 0; 2; 4 ]
    (Support.Pool.map p (fun x -> 2 * x) [ 0; 1; 2 ]);
  Support.Pool.shutdown p;
  Alcotest.(check (list int)) "runs sequentially after shutdown" [ 5 ]
    (Support.Pool.run_list p [ (fun () -> 5) ])

(* the daemon's SIGINT/SIGTERM teardown path: shutdown must be
   idempotent, safe to race from several domains, and leave the pool
   usable (sequentially) for stragglers *)
let test_pool_shutdown_teardown () =
  let p = Support.Pool.create ~domains:3 in
  Alcotest.(check bool) "fresh pool not stopped" false
    (Support.Pool.is_stopped p);
  Alcotest.(check (list int)) "work completes" (List.init 16 (fun i -> i * 2))
    (Support.Pool.run_list p (List.init 16 (fun i () -> i * 2)));
  Support.Pool.shutdown p;
  Alcotest.(check bool) "stopped" true (Support.Pool.is_stopped p);
  Support.Pool.shutdown p;
  Alcotest.(check bool) "double shutdown is a no-op" true
    (Support.Pool.is_stopped p);
  let p2 = Support.Pool.create ~domains:3 in
  let shutters =
    List.init 3 (fun _ -> Domain.spawn (fun () -> Support.Pool.shutdown p2))
  in
  List.iter Domain.join shutters;
  Alcotest.(check bool) "concurrent shutdowns all settle" true
    (Support.Pool.is_stopped p2);
  Alcotest.(check (list int)) "late caller degrades to sequential" [ 9 ]
    (Support.Pool.run_list p2 [ (fun () -> 9) ])

(* ---- Prng ---- *)

let test_prng_deterministic () =
  let a = Support.Prng.create 42L and b = Support.Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Support.Prng.int a 1000)
      (Support.Prng.int b 1000)
  done

let test_prng_differs_by_seed () =
  let a = Support.Prng.create 1L and b = Support.Prng.create 2L in
  let xs = List.init 20 (fun _ -> Support.Prng.int a 1000000) in
  let ys = List.init 20 (fun _ -> Support.Prng.int b 1000000) in
  Alcotest.(check bool) "different" true (xs <> ys)

let prop_prng_bounds =
  QCheck.Test.make ~name:"prng int stays in bounds" ~count:500
    QCheck.(pair int (int_range 1 10000))
    (fun (seed, bound) ->
      let t = Support.Prng.create (Int64.of_int seed) in
      let v = Support.Prng.int t bound in
      v >= 0 && v < bound)

let test_prng_weighted () =
  let t = Support.Prng.create 7L in
  for _ = 1 to 100 do
    let v = Support.Prng.weighted t [ (1, "a"); (0, "b"); (3, "c") ] in
    Alcotest.(check bool) "never b" true (v <> "b")
  done

let test_prng_float_range () =
  let t = Support.Prng.create 9L in
  for _ = 1 to 200 do
    let f = Support.Prng.float t in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

(* ---- Util ---- *)

let test_zigzag_cases () =
  List.iter
    (fun (n, z) ->
      Alcotest.(check int) (Printf.sprintf "zigzag %d" n) z (Support.Util.zigzag n))
    [ (0, 0); (-1, 1); (1, 2); (-2, 3); (2, 4) ]

let prop_zigzag_roundtrip =
  QCheck.Test.make ~name:"zigzag roundtrip" ~count:500 QCheck.int (fun n ->
      let n = n asr 1 in
      Support.Util.unzigzag (Support.Util.zigzag n) = n)

let prop_uleb_roundtrip =
  QCheck.Test.make ~name:"uleb128 roundtrip" ~count:500
    QCheck.(int_bound max_int)
    (fun n ->
      let b = Buffer.create 8 in
      Support.Util.uleb128 b n;
      let pos = ref 0 in
      Support.Util.read_uleb128 (Buffer.contents b) pos = n)

let prop_sleb_roundtrip =
  QCheck.Test.make ~name:"sleb roundtrip" ~count:500 QCheck.int (fun n ->
      let n = n asr 1 in
      let b = Buffer.create 8 in
      Support.Util.sleb_of_int b n;
      let pos = ref 0 in
      Support.Util.read_sleb (Buffer.contents b) pos = n)

let test_chunks () =
  Alcotest.(check (list (list int))) "chunks 3" [ [ 1; 2; 3 ]; [ 4; 5 ] ]
    (Support.Util.chunks 3 [ 1; 2; 3; 4; 5 ]);
  Alcotest.(check (list (list int))) "chunks empty" [] (Support.Util.chunks 3 [])

let test_take_drop () =
  Alcotest.(check (list int)) "take" [ 1; 2 ] (Support.Util.take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "drop" [ 3 ] (Support.Util.drop 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "take over" [ 1 ] (Support.Util.take 5 [ 1 ])

let test_human_bytes () =
  Alcotest.(check string) "bytes" "512 B" (Support.Util.human_bytes 512);
  Alcotest.(check string) "kb" "2.0 KB" (Support.Util.human_bytes 2048)

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Support.Util.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "stddev" 1.0 (Support.Util.stddev [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Support.Util.mean [])

(* ---- Freq ---- *)

let test_freq_counts () =
  let f = Support.Freq.create () in
  List.iter (Support.Freq.add f) [ "a"; "b"; "a"; "a"; "c"; "b" ];
  Alcotest.(check int) "a" 3 (Support.Freq.count f "a");
  Alcotest.(check int) "total" 6 (Support.Freq.total f);
  Alcotest.(check int) "distinct" 3 (Support.Freq.distinct f);
  Alcotest.(check (list (pair string int)))
    "sorted" [ ("a", 3); ("b", 2); ("c", 1) ] (Support.Freq.to_list f)

let test_freq_entropy () =
  let f = Support.Freq.create () in
  Support.Freq.add_many f 0 8;
  Support.Freq.add_many f 1 8;
  Alcotest.(check (float 1e-9)) "1 bit" 1.0 (Support.Freq.entropy_bits f);
  let g = Support.Freq.create () in
  Support.Freq.add_many g 0 16;
  Alcotest.(check (float 1e-9)) "0 bits" 0.0 (Support.Freq.entropy_bits g)

(* ---- quantile ---- *)

(* An independent oracle for the floor-index quantile: sort the raw
   sample here (Quantile sorts its own copy) and take floor (p * (n-1)).
   Random samples of every size 1..60 must agree exactly — the
   estimator is deterministic, so the check is equality, not
   tolerance. *)
let quantile_oracle sample p =
  let a = Array.of_list sample in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then 0.0 else a.(min (n - 1) (int_of_float (p *. float_of_int (n - 1))))

let test_percentile_against_oracle () =
  let rng = Support.Prng.create 977L in
  for n = 1 to 60 do
    let sample =
      List.init n (fun _ -> float_of_int (Support.Prng.int rng 10_000) /. 7.0)
    in
    let b = Support.Quantile.bucket_of_ms sample in
    Alcotest.(check int) "count" n b.Support.Quantile.count;
    List.iter
      (fun (p, got, name) ->
        Alcotest.(check (float 0.0))
          (Printf.sprintf "%s of %d samples" name n)
          (quantile_oracle sample p) got)
      [ (0.50, b.Support.Quantile.p50_ms, "p50");
        (0.95, b.Support.Quantile.p95_ms, "p95");
        (0.99, b.Support.Quantile.p99_ms, "p99") ];
    let mx = List.fold_left max neg_infinity sample in
    Alcotest.(check (float 0.0)) "max" mx b.Support.Quantile.max_ms;
    (* percentiles are order statistics: always within [min, max] and
       monotone in p *)
    Alcotest.(check bool) "p50 <= p95 <= p99 <= max" true
      (b.Support.Quantile.p50_ms <= b.Support.Quantile.p95_ms
      && b.Support.Quantile.p95_ms <= b.Support.Quantile.p99_ms
      && b.Support.Quantile.p99_ms <= b.Support.Quantile.max_ms)
  done

let test_percentile_edge_cases () =
  (* empty: every field zero, no division by zero *)
  let e = Support.Quantile.bucket_of_ms [] in
  Alcotest.(check int) "empty count" 0 e.Support.Quantile.count;
  Alcotest.(check (float 0.0)) "empty p99" 0.0 e.Support.Quantile.p99_ms;
  Alcotest.(check (float 0.0)) "empty mean" 0.0 e.Support.Quantile.mean_ms;
  (* singleton: every percentile IS the sample *)
  let s = Support.Quantile.bucket_of_ms [ 3.5 ] in
  List.iter
    (fun v -> Alcotest.(check (float 0.0)) "singleton percentile" 3.5 v)
    [ s.Support.Quantile.p50_ms; s.Support.Quantile.p95_ms;
      s.Support.Quantile.p99_ms; s.Support.Quantile.max_ms;
      s.Support.Quantile.mean_ms ];
  (* two elements: floor-index puts p50 on the lower, p95/p99 stay on
     the lower too (floor (0.99 * 1) = 0) — max alone sees the upper *)
  let d = Support.Quantile.bucket_of_ms [ 9.0; 1.0 ] in
  Alcotest.(check (float 0.0)) "pair p50 = lower" 1.0 d.Support.Quantile.p50_ms;
  Alcotest.(check (float 0.0)) "pair p99 = lower (floor-index)" 1.0
    d.Support.Quantile.p99_ms;
  Alcotest.(check (float 0.0)) "pair max = upper" 9.0 d.Support.Quantile.max_ms;
  Alcotest.(check (float 1e-9)) "pair mean" 5.0 d.Support.Quantile.mean_ms;
  (* percentile itself clamps p = 1.0 to the last element *)
  Alcotest.(check (float 0.0)) "p=1.0 clamps to max" 7.0
    (Support.Quantile.percentile [| 2.0; 7.0 |] 1.0)

let () =
  Alcotest.run "support"
    [
      ( "bitio",
        [
          Alcotest.test_case "bit roundtrip" `Quick test_bit_roundtrip;
          Alcotest.test_case "lsb fields" `Quick test_bits_lsb;
          Alcotest.test_case "msb fields" `Quick test_bits_msb;
          Alcotest.test_case "byte alignment" `Quick test_byte_align;
          Alcotest.test_case "bit length" `Quick test_bit_length;
          Alcotest.test_case "seek" `Quick test_seek;
          Alcotest.test_case "exhaustion" `Quick test_reader_exhaustion;
          Alcotest.test_case "wide fields window" `Quick
            test_put_bits_wide_window;
          Alcotest.test_case "peek past end" `Quick test_peek_past_end;
          qcheck prop_bits_roundtrip;
          qcheck prop_put_bits_wide;
          qcheck prop_peek_advance_consistency;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_order;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "peek" `Quick test_heap_peek;
          qcheck prop_heap_sorts;
          qcheck prop_heap_duplicate_priorities;
        ] );
      ( "pool",
        [
          Alcotest.test_case "results in order" `Quick test_pool_in_order;
          Alcotest.test_case "nested fan-out" `Quick test_pool_nested;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "sequential degrade" `Quick
            test_pool_sequential_degrade;
          Alcotest.test_case "shutdown teardown" `Quick
            test_pool_shutdown_teardown;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed-sensitive" `Quick test_prng_differs_by_seed;
          Alcotest.test_case "weighted" `Quick test_prng_weighted;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          qcheck prop_prng_bounds;
        ] );
      ( "util",
        [
          Alcotest.test_case "zigzag cases" `Quick test_zigzag_cases;
          Alcotest.test_case "chunks" `Quick test_chunks;
          Alcotest.test_case "take/drop" `Quick test_take_drop;
          Alcotest.test_case "human bytes" `Quick test_human_bytes;
          Alcotest.test_case "mean/stddev" `Quick test_stats;
          qcheck prop_zigzag_roundtrip;
          qcheck prop_uleb_roundtrip;
          qcheck prop_sleb_roundtrip;
        ] );
      ( "freq",
        [
          Alcotest.test_case "counts" `Quick test_freq_counts;
          Alcotest.test_case "entropy" `Quick test_freq_entropy;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "percentiles vs quantile oracle" `Quick
            test_percentile_against_oracle;
          Alcotest.test_case "percentile edge cases" `Quick
            test_percentile_edge_cases;
        ] );
    ]
