(* Tests for the delivery-time model and the paging simulator. *)

(* ---- delivery ---- *)

let sizes =
  (* representative medium-program sizes, in bytes *)
  { Scenario.Delivery.native_bytes = 70_000; gzip_bytes = 30_000;
    wire_bytes = 20_000; brisc_bytes = 45_000 }

let run_cycles = 50_000_000 (* ~0.4s at the nominal clock *)

let test_components_sum () =
  let o =
    Scenario.Delivery.total_time sizes ~run_cycles
      ~link_bps:Scenario.Delivery.modem_bps Scenario.Delivery.Wire_format
  in
  Alcotest.(check (float 1e-9)) "total = transfer+prepare+run"
    (o.Scenario.Delivery.transfer_s +. o.Scenario.Delivery.prepare_s
    +. o.Scenario.Delivery.run_s)
    o.Scenario.Delivery.total_s

let test_modem_prefers_compression () =
  (* over a 28.8k modem, raw native must lose to every compressed form *)
  let at r =
    (Scenario.Delivery.total_time sizes ~run_cycles
       ~link_bps:Scenario.Delivery.modem_bps r).Scenario.Delivery.total_s
  in
  Alcotest.(check bool) "wire beats native" true
    (at Scenario.Delivery.Wire_format < at Scenario.Delivery.Raw_native);
  Alcotest.(check bool) "brisc beats native" true
    (at Scenario.Delivery.Brisc_jit < at Scenario.Delivery.Raw_native)

let test_paper_crossover () =
  (* the paper's claim: over a modem the wire format minimizes latency;
     on a LAN BRISC is a good choice (transfer no longer dominates) *)
  let best_at bps =
    fst (Scenario.Delivery.best sizes ~run_cycles ~link_bps:bps)
  in
  Alcotest.(check string) "modem -> wire" "wire+JIT"
    (Scenario.Delivery.repr_name (best_at Scenario.Delivery.modem_bps));
  let lan_best = best_at Scenario.Delivery.fast_lan_bps in
  Alcotest.(check bool) "fast LAN -> not wire" true
    (lan_best <> Scenario.Delivery.Wire_format)

let test_default_rates_crossover () =
  (* the §4.5 story pinned under the stock rate card, for the client
     population the server targets: a JIT-capable machine that cannot
     run the server's native code (so the native forms are off the
     menu, exactly what Profile.feasible computes for modem/lan).
     Over the modem, transfer dominates and the densest form — wire —
     wins; at 100 Mbit transfer is nearly free and wire's extra
     decompress-then-JIT preparation loses to BRISC's JIT-only cost. *)
  let candidates =
    [ Scenario.Delivery.Wire_format; Scenario.Delivery.Brisc_jit;
      Scenario.Delivery.Brisc_interp ]
  in
  let best bps =
    fst
      (Scenario.Delivery.best_of ~rates:Scenario.Delivery.default_rates
         candidates sizes ~run_cycles ~link_bps:bps)
  in
  Alcotest.(check string) "28.8k modem -> wire" "wire+JIT"
    (Scenario.Delivery.repr_name (best Scenario.Delivery.modem_bps));
  Alcotest.(check string) "fast LAN -> BRISC" "BRISC+JIT"
    (Scenario.Delivery.repr_name (best Scenario.Delivery.fast_lan_bps))

let test_best_of_edges () =
  let one =
    Scenario.Delivery.best_of [ Scenario.Delivery.Brisc_interp ] sizes
      ~run_cycles ~link_bps:Scenario.Delivery.lan_bps
  in
  Alcotest.(check string) "singleton candidate" "BRISC interp"
    (Scenario.Delivery.repr_name (fst one));
  (match
     Scenario.Delivery.best_of [] sizes ~run_cycles
       ~link_bps:Scenario.Delivery.lan_bps
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty candidate list must be rejected");
  (* best = best_of over all representations *)
  let a = Scenario.Delivery.best sizes ~run_cycles ~link_bps:Scenario.Delivery.modem_bps in
  let b =
    Scenario.Delivery.best_of Scenario.Delivery.all_reprs sizes ~run_cycles
      ~link_bps:Scenario.Delivery.modem_bps
  in
  Alcotest.(check string) "best is best_of all"
    (Scenario.Delivery.repr_name (fst a))
    (Scenario.Delivery.repr_name (fst b))

let test_transfer_monotone_in_bandwidth () =
  let t bps =
    (Scenario.Delivery.total_time sizes ~run_cycles ~link_bps:bps
       Scenario.Delivery.Gzipped_native).Scenario.Delivery.transfer_s
  in
  Alcotest.(check bool) "faster link, less transfer" true
    (t Scenario.Delivery.lan_bps < t Scenario.Delivery.modem_bps)

let test_interp_avoids_prepare () =
  let o =
    Scenario.Delivery.total_time sizes ~run_cycles
      ~link_bps:Scenario.Delivery.lan_bps Scenario.Delivery.Brisc_interp
  in
  Alcotest.(check (float 1e-9)) "no prepare" 0.0 o.Scenario.Delivery.prepare_s;
  let jit =
    Scenario.Delivery.total_time sizes ~run_cycles
      ~link_bps:Scenario.Delivery.lan_bps Scenario.Delivery.Brisc_jit
  in
  Alcotest.(check bool) "but slower run" true
    (o.Scenario.Delivery.run_s > jit.Scenario.Delivery.run_s)

let test_sweep_covers_all () =
  let rows =
    Scenario.Delivery.sweep sizes ~run_cycles
      ~link_bps_list:[ Scenario.Delivery.modem_bps; Scenario.Delivery.lan_bps ]
  in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun (_, outs) -> Alcotest.(check int) "five representations" 5 (List.length outs))
    rows

(* ---- paging layout ---- *)

let test_layout_small_functions_share () =
  let l = Scenario.Paging.layout_of_sizes ~page_bytes:4096 [| 100; 100; 100 |] in
  Alcotest.(check int) "one page" 1 l.Scenario.Paging.pages;
  Alcotest.(check (array int)) "same page" [| 0; 0; 0 |] l.Scenario.Paging.seg_page

let test_layout_big_function_spans () =
  let l = Scenario.Paging.layout_of_sizes ~page_bytes:4096 [| 10000; 100 |] in
  Alcotest.(check bool) "multiple pages" true (l.Scenario.Paging.pages >= 3);
  Alcotest.(check int) "first at 0" 0 l.Scenario.Paging.seg_page.(0)

let test_layout_fresh_page_when_full () =
  let l = Scenario.Paging.layout_of_sizes ~page_bytes:100 [| 80; 50 |] in
  Alcotest.(check int) "second on page 1" 1 l.Scenario.Paging.seg_page.(1)

(* ---- LRU simulation ---- *)

let two_page_layout = { Scenario.Paging.seg_page = [| 0; 1; 2 |]; pages = 3 }

let test_lru_hits_and_faults () =
  let cfg = Scenario.Paging.default_config ~resident_pages:2 in
  (* pages: 0 1 0 1 -> 2 faults then hits *)
  let r = Scenario.Paging.simulate cfg two_page_layout [ 0; 1; 0; 1 ] in
  Alcotest.(check int) "2 faults" 2 r.Scenario.Paging.faults;
  Alcotest.(check int) "4 refs" 4 r.Scenario.Paging.references

let test_lru_eviction_order () =
  let cfg = Scenario.Paging.default_config ~resident_pages:2 in
  (* 0 1 2 evicts 0 (LRU); touching 0 again faults *)
  let r = Scenario.Paging.simulate cfg two_page_layout [ 0; 1; 2; 0 ] in
  Alcotest.(check int) "4 faults" 4 r.Scenario.Paging.faults;
  (* 0 1 2 1 0: after 2, resident {2,1}; 1 hits; 0 faults *)
  let r2 = Scenario.Paging.simulate cfg two_page_layout [ 0; 1; 2; 1; 0 ] in
  Alcotest.(check int) "lru keeps recent" 4 r2.Scenario.Paging.faults

let test_working_set_counts_distinct () =
  let cfg = Scenario.Paging.default_config ~resident_pages:8 in
  let r = Scenario.Paging.simulate cfg two_page_layout [ 0; 0; 1; 1; 0 ] in
  Alcotest.(check int) "two pages touched" 2 r.Scenario.Paging.working_set_pages

let test_fault_time_includes_decompress () =
  let base = Scenario.Paging.default_config ~resident_pages:1 in
  let cfg = { base with Scenario.Paging.decompress_us_per_page = 1000.0 } in
  let r0 = Scenario.Paging.simulate base two_page_layout [ 0; 1; 0 ] in
  let r1 = Scenario.Paging.simulate cfg two_page_layout [ 0; 1; 0 ] in
  Alcotest.(check bool) "decompression adds cost" true
    (r1.Scenario.Paging.fault_time_s > r0.Scenario.Paging.fault_time_s)

(* ---- instruction cache ---- *)

let test_icache_basics () =
  let cfg = { Scenario.Icache.line_bytes = 16; lines = 2; miss_cycles = 10 } in
  (* two fetches in the same line: one miss *)
  let r = Scenario.Icache.simulate cfg [ (0, 4); (4, 4) ] in
  Alcotest.(check int) "one miss" 1 r.Scenario.Icache.misses;
  Alcotest.(check int) "cycles" 10 r.Scenario.Icache.miss_cycles_total;
  (* a fetch spanning two lines misses both *)
  let r2 = Scenario.Icache.simulate cfg [ (12, 8) ] in
  Alcotest.(check int) "spanning fetch" 2 r2.Scenario.Icache.misses;
  (* conflict: lines 0 and 2 share slot 0 in a 2-line cache *)
  let r3 = Scenario.Icache.simulate cfg [ (0, 4); (32, 4); (0, 4) ] in
  Alcotest.(check int) "conflict misses" 3 r3.Scenario.Icache.misses

let test_icache_denser_image_wins () =
  let e = Corpus.Programs.queens in
  let vp = Vm.Codegen.gen_program (Cc.Lower.compile e.Corpus.Programs.source) in
  let np = Native.Compile.compile_program vp in
  let img = Brisc.compress vp in
  let nt = Scenario.Icache.native_fetch_trace np () in
  let bt = Scenario.Icache.brisc_fetch_trace img () in
  let cfg = Scenario.Icache.default_config ~lines:8 in
  let rn = Scenario.Icache.simulate cfg nt in
  let rb = Scenario.Icache.simulate cfg bt in
  Alcotest.(check bool) "brisc image misses less under pressure" true
    (rb.Scenario.Icache.misses < rn.Scenario.Icache.misses)

(* ---- end-to-end: compressed code shrinks the working set ---- *)

let test_brisc_working_set_shrinks () =
  (* 40 functions: enough that the later ones call into the leaf pool,
     giving a paging trace with real locality structure *)
  let e =
    Corpus.Gen.generate
      { Corpus.Gen.functions = 40; seed = 77L; bias16 = false }
  in
  let vp = Vm.Codegen.gen_program (Cc.Lower.compile e.Corpus.Programs.source) in
  let trace = Scenario.Paging.trace_of_program vp in
  Alcotest.(check bool) "trace non-trivial" true (List.length trace > 10);
  let page_bytes = 512 (* small pages so the tiny corpus exercises paging *) in
  let native = Scenario.Paging.layout_of_sizes ~page_bytes
      (Scenario.Paging.func_sizes_native vp) in
  let img = Brisc.compress vp in
  let brisc = Scenario.Paging.layout_of_sizes ~page_bytes
      (Scenario.Paging.func_sizes_brisc img) in
  Alcotest.(check bool) "brisc image needs fewer pages" true
    (brisc.Scenario.Paging.pages <= native.Scenario.Paging.pages);
  let cfg = Scenario.Paging.default_config ~resident_pages:2 in
  let rn = Scenario.Paging.simulate cfg native trace in
  let rb = Scenario.Paging.simulate cfg brisc trace in
  Alcotest.(check bool) "fewer or equal faults" true
    (rb.Scenario.Paging.faults <= rn.Scenario.Paging.faults);
  Alcotest.(check bool) "smaller or equal working set" true
    (rb.Scenario.Paging.working_set_pages <= rn.Scenario.Paging.working_set_pages)

let test_trace_of_known_program () =
  let vp =
    Vm.Codegen.gen_program
      (Cc.Lower.compile
         "int leaf(int x) { return x; } int main() { leaf(1); leaf(2); return 0; }")
  in
  let trace = Scenario.Paging.trace_of_program vp in
  (* main entry + two calls *)
  Alcotest.(check int) "three references" 3 (List.length trace)

(* ---- demand-paged execution (Scenario.Paged) ---- *)

(* one shared corpus point: 40 functions gives a multi-page image with
   cold leaves, so budgets below 100% actually evict *)
let paged_fixture =
  lazy
    (let e =
       Corpus.Gen.generate { Corpus.Gen.functions = 40; seed = 77L; bias16 = false }
     in
     let ir = Cc.Lower.compile e.Corpus.Programs.source in
     let vp = Vm.Codegen.gen_program ir in
     let input = e.Corpus.Programs.input in
     let resident = Vm.Interp.run ~input vp in
     let img = Wire.Chunked.compress ir in
     (img, input, resident, Scenario.Paged.vm_image_bytes img))

let run_paged ?repeat ~budget_bytes () =
  let img, input, _, _ = Lazy.force paged_fixture in
  match
    Scenario.Paged.run_vm
      ~cfg:(Scenario.Paged.config ~budget_bytes ())
      ?repeat ~input img
  with
  | Ok r -> r
  | Error e -> Alcotest.fail (Scenario.Paged.error_to_string e)

let test_paged_equivalence_across_budgets () =
  let _, _, resident, total = Lazy.force paged_fixture in
  let faults_at =
    List.map (fun pct ->
        let r = run_paged ~budget_bytes:(max 1 (total * pct / 100)) () in
        Alcotest.(check string)
          (Printf.sprintf "output identical at %d%% budget" pct)
          resident.Vm.Interp.output r.Scenario.Paged.res.Vm.Interp.output;
        Alcotest.(check int)
          (Printf.sprintf "exit code identical at %d%% budget" pct)
          resident.Vm.Interp.exit_code
          r.Scenario.Paged.res.Vm.Interp.exit_code;
        Alcotest.(check int)
          (Printf.sprintf "step count identical at %d%% budget" pct)
          resident.Vm.Interp.steps r.Scenario.Paged.res.Vm.Interp.steps;
        r.Scenario.Paged.stats.Vm.Pager.faults)
      [ 100; 50; 25; 10 ]
  in
  (* tighter budgets can only fault more *)
  ignore
    (List.fold_left
       (fun prev f ->
         Alcotest.(check bool) "faults monotone as budget shrinks" true
           (f >= prev);
         f)
       0 faults_at)

let test_paged_budget_below_one_page () =
  (* a 1-byte budget is below every page's decompressed size: the pager
     pins the faulting page for the duration of the dispatch and evicts
     it next fault, so execution still completes with the same result *)
  let _, _, resident, _ = Lazy.force paged_fixture in
  let r = run_paged ~budget_bytes:1 () in
  Alcotest.(check string) "output identical under thrashing"
    resident.Vm.Interp.output r.Scenario.Paged.res.Vm.Interp.output;
  Alcotest.(check bool) "resident hwm bounded by one page's content" true
    (r.Scenario.Paged.stats.Vm.Pager.resident_hwm
    < (let _, _, _, total = Lazy.force paged_fixture in
       total))

let test_paged_session_repeat () =
  let _, _, resident, total = Lazy.force paged_fixture in
  let one = run_paged ~budget_bytes:total () in
  let three = run_paged ~repeat:3 ~budget_bytes:total () in
  Alcotest.(check string) "repeat result identical"
    resident.Vm.Interp.output three.Scenario.Paged.res.Vm.Interp.output;
  Alcotest.(check int) "steps sum across repeats"
    (3 * resident.Vm.Interp.steps)
    three.Scenario.Paged.total_steps;
  (* the code cache survives across repeats: at full budget the session
     pays only the compulsory faults of the first run *)
  Alcotest.(check int) "warm cache: no new faults on later repeats"
    one.Scenario.Paged.stats.Vm.Pager.faults
    three.Scenario.Paged.stats.Vm.Pager.faults

let test_paged_corrupt_chunk_is_typed () =
  (* corrupt one byte inside main's chunk, behind a re-sealed outer CRC:
     the fault that decompresses that chunk must surface Error (Decode _),
     not an exception mid-execution *)
  let img, input, _, _ = Lazy.force paged_fixture in
  let s = Wire.Chunked.to_bytes img in
  let body = String.sub s 8 (String.length s - 8) in
  let victim = Wire.Chunked.chunk img "main" in
  let at =
    (* locate the chunk's bytes inside the body *)
    let n = String.length body and vn = String.length victim in
    let rec find i =
      if i + vn > n then Alcotest.fail "main's chunk not found in body"
      else if String.sub body i vn = victim then i
      else find (i + 1)
    in
    find 0
  in
  let mid = at + (String.length victim / 2) in
  let body' =
    String.mapi
      (fun i c -> if i = mid then Char.chr (Char.code c lxor 0x40) else c)
      body
  in
  let img' = Wire.Chunked.of_bytes_exn (Support.Frame.seal ~magic:"WCH3" body') in
  match Scenario.Paged.run_vm ~input img' with
  | Error (Scenario.Paged.Decode _) -> ()
  | Error (Scenario.Paged.Trap m) ->
    Alcotest.fail ("expected Decode error, got Trap: " ^ m)
  | Ok _ -> Alcotest.fail "corrupt chunk executed successfully"

let () =
  Alcotest.run "scenario"
    [
      ( "delivery",
        [
          Alcotest.test_case "components sum" `Quick test_components_sum;
          Alcotest.test_case "modem prefers compression" `Quick
            test_modem_prefers_compression;
          Alcotest.test_case "paper crossover" `Quick test_paper_crossover;
          Alcotest.test_case "default-rates crossover" `Quick
            test_default_rates_crossover;
          Alcotest.test_case "best_of edges" `Quick test_best_of_edges;
          Alcotest.test_case "bandwidth monotone" `Quick
            test_transfer_monotone_in_bandwidth;
          Alcotest.test_case "interp skips prepare" `Quick test_interp_avoids_prepare;
          Alcotest.test_case "sweep shape" `Quick test_sweep_covers_all;
        ] );
      ( "layout",
        [
          Alcotest.test_case "small functions share" `Quick
            test_layout_small_functions_share;
          Alcotest.test_case "big function spans" `Quick test_layout_big_function_spans;
          Alcotest.test_case "fresh page when full" `Quick
            test_layout_fresh_page_when_full;
        ] );
      ( "lru",
        [
          Alcotest.test_case "hits and faults" `Quick test_lru_hits_and_faults;
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "working set" `Quick test_working_set_counts_distinct;
          Alcotest.test_case "decompress cost" `Quick test_fault_time_includes_decompress;
        ] );
      ( "icache",
        [
          Alcotest.test_case "mechanics" `Quick test_icache_basics;
          Alcotest.test_case "denser image wins" `Quick
            test_icache_denser_image_wins;
        ] );
      ( "end_to_end",
        [
          Alcotest.test_case "brisc shrinks working set" `Slow
            test_brisc_working_set_shrinks;
          Alcotest.test_case "trace of known program" `Quick
            test_trace_of_known_program;
        ] );
      ( "paged execution",
        [
          Alcotest.test_case "equivalent across budgets" `Quick
            test_paged_equivalence_across_budgets;
          Alcotest.test_case "budget below one page" `Quick
            test_paged_budget_below_one_page;
          Alcotest.test_case "session repeat warms the cache" `Quick
            test_paged_session_repeat;
          Alcotest.test_case "corrupt chunk surfaces typed error" `Quick
            test_paged_corrupt_chunk_is_typed;
        ] );
    ]
