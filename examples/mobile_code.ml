(* Mobile code delivery: the paper's headline scenario.

   A server compresses an application; clients on different links fetch
   and run it. The example plays both roles: it produces all four
   shippable representations of a medium-sized application, models total
   delivery time (transfer + prepare + run) across link speeds, and then
   actually performs the client side for the two portable forms —
   decompress+JIT for the wire format, direct JIT for BRISC — verifying
   they compute the same thing.

     dune exec examples/mobile_code.exe
*)

let () =
  print_endline "building the application (generated, lcc-scale)...";
  let entry = Corpus.Gen.generate Corpus.Gen.medium in
  let ir = Cc.Lower.compile entry.Corpus.Programs.source in
  let vp = Vm.Codegen.gen_program ir in
  let np = Native.Compile.compile_program vp in

  (* --- server side: produce every shippable form --- *)
  let native_img = Native.Mach.encode_program np in
  let gzip_img = Zip.Deflate.compress native_img in
  let wire_img = Wire.compress ir in
  print_endline "running the BRISC compressor (this is the slow part)...";
  let brisc = Brisc.compress vp in
  let brisc_img = Brisc.to_bytes brisc in
  Printf.printf "\nrepresentation sizes:\n";
  List.iter
    (fun (n, s) -> Printf.printf "  %-14s %s\n" n (Support.Util.human_bytes s))
    [ ("native", String.length native_img);
      ("gzipped", String.length gzip_img);
      ("wire", String.length wire_img);
      ("BRISC", String.length brisc_img) ];

  (* --- model: what should each client fetch? --- *)
  let sim = Native.Sim.run np in
  let sizes =
    { Scenario.Delivery.native_bytes = String.length native_img;
      gzip_bytes = String.length gzip_img;
      wire_bytes = String.length wire_img;
      brisc_bytes = String.length brisc_img }
  in
  let run_cycles = sim.Native.Sim.cycles * 1000 (* a sustained session *) in
  Printf.printf "\ntotal time to useful work, by link (portable forms):\n";
  Printf.printf "  %-14s %10s %10s %10s\n" "link" "wire+JIT" "BRISC+JIT" "BRISC int";
  List.iter
    (fun (name, bps) ->
      let t r =
        (Scenario.Delivery.total_time sizes ~run_cycles ~link_bps:bps r)
          .Scenario.Delivery.total_s
      in
      Printf.printf "  %-14s %9.2fs %9.2fs %9.2fs\n" name
        (t Scenario.Delivery.Wire_format)
        (t Scenario.Delivery.Brisc_jit)
        (t Scenario.Delivery.Brisc_interp))
    [ ("28.8k modem", Scenario.Delivery.modem_bps);
      ("T1", Scenario.Delivery.t1_bps);
      ("100M LAN", Scenario.Delivery.fast_lan_bps) ];

  (* --- client side, for real --- *)
  print_endline "\nclient A (modem): fetches the wire format, decompresses, JITs";
  let ir_back = Wire.decompress_exn wire_img in
  let vp_back = Vm.Codegen.gen_program ir_back in
  let np_a = Native.Compile.compile_program vp_back in
  let ra = Native.Sim.run np_a in

  print_endline "client B (LAN): fetches BRISC, JITs directly from the container";
  let img_b = Brisc.of_bytes_exn brisc_img in
  let np_b, produced = Brisc.Jit.compile_with_stats img_b in
  Printf.printf "  JIT produced %s of native code\n" (Support.Util.human_bytes produced);
  let rb = Native.Sim.run np_b in

  Printf.printf "\nboth clients computed: %S / %S (exit %d / %d) — equal: %b\n"
    (String.trim ra.Native.Sim.output) (String.trim rb.Native.Sim.output)
    ra.Native.Sim.exit_code rb.Native.Sim.exit_code
    (ra.Native.Sim.output = rb.Native.Sim.output
    && ra.Native.Sim.exit_code = rb.Native.Sim.exit_code)
