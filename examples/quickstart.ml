(* Quickstart: the whole pipeline on one small program.

   Compile MiniC to the lcc-style tree IR, generate OmniVM code,
   compress it both ways (wire format and BRISC), and run the program on
   every execution engine, checking they agree.

     dune exec examples/quickstart.exe
*)

let source =
  {|
int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}

int main() {
  print_int(fib(20));
  putchar('\n');
  return 0;
}
|}

let () =
  print_endline "== 1. compile MiniC to tree IR ==";
  let ir = Cc.Lower.compile source in
  print_string (Ir.Printer.program_to_string ir);

  print_endline "\n== 2. generate OmniVM code ==";
  let vp = Vm.Codegen.gen_program ir in
  print_string (Vm.Isa.program_to_string vp);
  let vm_bytes = Vm.Encode.program_size vp in
  Printf.printf "\nOmniVM binary size: %d bytes\n" vm_bytes;

  print_endline "\n== 3. wire format (ship over a slow link) ==";
  let wire = Wire.compress ir in
  Printf.printf "wire: %d bytes; decompressing reproduces the IR exactly: %b\n"
    (String.length wire)
    (Ir.Tree.equal_program ir (Wire.decompress_exn wire));

  print_endline "\n== 4. BRISC (interpretable in place) ==";
  let img = Brisc.compress vp in
  let bytes = Brisc.to_bytes img in
  Printf.printf "BRISC container: %d bytes (%d code + %d dictionary/tables)\n"
    (String.length bytes) (Brisc.Emit.code_size img)
    (String.length bytes - Brisc.Emit.code_size img);

  print_endline "\n== 5. run everywhere ==";
  let r_vm = Vm.Interp.run vp in
  Printf.printf "VM interpreter:     %s (exit %d, %d steps)\n"
    (String.trim r_vm.Vm.Interp.output) r_vm.Vm.Interp.exit_code
    r_vm.Vm.Interp.steps;
  let np = Native.Compile.compile_program vp in
  let r_nat = Native.Sim.run np in
  Printf.printf "native simulator:   %s (exit %d, %d cycles)\n"
    (String.trim r_nat.Native.Sim.output) r_nat.Native.Sim.exit_code
    r_nat.Native.Sim.cycles;
  (* a real client decodes defensively: corrupt bytes are a typed error *)
  let img2 =
    match Brisc.of_bytes bytes with
    | Ok img -> img
    | Error e -> failwith (Support.Decode_error.to_string e)
  in
  let r_brisc = Brisc.Interp.run img2 in
  Printf.printf "BRISC in place:     %s (exit %d, %d dispatches)\n"
    (String.trim r_brisc.Brisc.Interp.output) r_brisc.Brisc.Interp.exit_code
    r_brisc.Brisc.Interp.dispatches;
  let r_jit = Native.Sim.run (Brisc.Jit.compile img2) in
  Printf.printf "BRISC JIT + native: %s (exit %d)\n"
    (String.trim r_jit.Native.Sim.output) r_jit.Native.Sim.exit_code;
  assert (r_vm.Vm.Interp.output = r_nat.Native.Sim.output);
  assert (r_vm.Vm.Interp.output = r_brisc.Brisc.Interp.output);
  assert (r_vm.Vm.Interp.output = r_jit.Native.Sim.output);
  print_endline "\nall engines agree."
