(** Total-time delivery model (paper introduction and §4.5).

    The paper's system-wide argument: when code travels over a slow
    link, total time = transfer + client-side preparation + execution,
    so the best representation depends on the bottleneck — the wire
    format wins over a modem, BRISC wins on a LAN ("Over a modem, the
    tree compression algorithm given above will do better at minimizing
    the latency between when a program is requested and when the program
    begins performing useful work").

    Rates are parameters with measured defaults: the decompression and
    JIT rates default to the values measured on this host by the
    benchmark harness, and execution time comes from the native
    simulator's cycle model scaled by a nominal clock. *)

type rates = {
  decompress_mbps : float;  (** wire decompress rate, MB/s of output *)
  jit_mbps : float;         (** native code production rate, MB/s *)
  interp_slowdown : float;  (** interpreted time / native time *)
  clock_hz : float;         (** nominal CPU clock for cycle counts *)
}

val default_rates : rates

type representation =
  | Raw_native        (** ship native code, run it *)
  | Gzipped_native    (** ship gzip, decompress, run *)
  | Wire_format       (** ship wire code, decompress + JIT, run *)
  | Brisc_jit         (** ship BRISC, JIT, run *)
  | Brisc_interp      (** ship BRISC, interpret in place *)

val repr_name : representation -> string

type sizes = {
  native_bytes : int;
  gzip_bytes : int;
  wire_bytes : int;
  brisc_bytes : int;
}

type outcome = {
  transfer_s : float;
  prepare_s : float;    (** decompress and/or JIT *)
  run_s : float;
  total_s : float;
}

val total_time :
  ?rates:rates ->
  sizes ->
  run_cycles:int ->
  link_bps:float ->
  representation ->
  outcome

val total_time_for :
  ?rates:rates ->
  mode:representation ->
  artifact_bytes:int ->
  native_bytes:int ->
  run_cycles:int ->
  link_bps:float ->
  unit ->
  outcome
(** The same model for one concrete artifact: transfer its actual
    stored bytes, pay the mode's preparation and run costs.
    {!total_time} is this applied to the size card's canonical bytes
    per representation. *)

val bytes_for : sizes -> representation -> int
(** Which size-card field a representation ships. *)

val all_reprs : representation list

val best :
  ?rates:rates ->
  sizes ->
  run_cycles:int ->
  link_bps:float ->
  representation * outcome
(** The representation minimizing total time at this link speed. *)

val best_of :
  ?rates:rates ->
  representation list ->
  sizes ->
  run_cycles:int ->
  link_bps:float ->
  representation * outcome
(** {!best} restricted to a candidate list — the rate lookup the
    code-delivery server's adaptive selector uses, with candidates
    filtered by what the client can do (JIT, native compatibility,
    memory budget). @raise Invalid_argument on an empty list. *)

val sweep :
  ?rates:rates ->
  sizes ->
  run_cycles:int ->
  link_bps_list:float list ->
  (float * (representation * outcome) list) list
(** For each link speed, every representation's outcome (for the
    crossover table the bench prints). *)

val modem_bps : float
(** 28.8 kbaud, the paper's slow end. *)

val isdn_bps : float
val t1_bps : float

val lan_bps : float
(** 10 Mbit Ethernet. *)

val fast_lan_bps : float
(** 100 Mbit Ethernet. *)
