(* End-to-end demand-paged execution of compressed code.

   The chunked-wire container gives per-function random access; here it
   meets the VM: consecutive chunks are packed into pages by compressed
   size (the only size the loader knows without decompressing — it
   reads the WCH3 index, never the bodies), and the interpreter runs
   against a Vm.Pager that faults a page in on first touch of any of
   its functions, decompresses just those chunks, and evicts
   least-recently-used pages once the *decompressed* resident set
   exceeds a hard byte budget. This is the Ozturk-style
   memory-constrained client: compressed image in cheap storage, a
   small decompressed working set in RAM.

   Everything is modelled in cycles (1 VM step = 1 cycle, faults charge
   a fixed trap cost plus a per-compressed-byte decompression cost), so
   runs are deterministic and perf_gate --paging can hold ceilings on
   the numbers without a noise opt-out. Function order in the image
   decides which functions share a page — that is the lever
   Vm.Layout.reorder_ir turns to cut faults. *)

type config = {
  page_bytes : int;  (* compressed bytes packed per page *)
  budget_bytes : int;  (* decompressed resident-set budget *)
  fault_cycles : int;  (* fixed per-fault trap + index lookup cost *)
  decompress_cycles_per_byte : int;  (* stall per compressed byte expanded *)
}

let config ?(page_bytes = 1024) ?(fault_cycles = 2_000)
    ?(decompress_cycles_per_byte = 40) ~budget_bytes () =
  { page_bytes; budget_bytes; fault_cycles; decompress_cycles_per_byte }

type run = {
  res : Vm.Interp.result;  (* the last repeat's result *)
  stats : Vm.Pager.stats;
  pages : int;  (* load units in the image *)
  page_of : int array;  (* function index -> page *)
  total_steps : int;  (* across all repeats of the session *)
  overhead : float;  (* paged cycles / fully-resident cycles *)
  fault_time_s : float;  (* Paging cost model applied to the fault count *)
}

type error =
  | Decode of Support.Decode_error.t
  | Trap of string

let error_to_string = function
  | Decode e -> Support.Decode_error.to_string e
  | Trap m -> "trap: " ^ m

(* The wall-style cost of the faults under the existing Scenario.Paging
   model (a 10 ms fault plus per-page decompression), so the paged run
   plugs into the same delivery-time stories the other scenarios use. *)
let fault_time_s (paging : Paging.config) (stats : Vm.Pager.stats) =
  float_of_int stats.Vm.Pager.faults
  *. (paging.Paging.fault_cost_us +. paging.Paging.decompress_us_per_page)
  /. 1.0e6

let default_paging =
  { (Paging.default_config ~resident_pages:0) with
    Paging.decompress_us_per_page = 100.0 }

(* decompressed VM footprint of the whole image: what "fully resident"
   costs, and the denominator budget fractions are quoted against *)
let vm_image_bytes (t : Wire.Chunked.t) =
  let total = ref 0 in
  for i = 0 to Wire.Chunked.chunk_count t - 1 do
    let f = Wire.Chunked.decompress_at t i in
    let solo = { Ir.Tree.globals = []; funcs = [] } in
    total := !total + Vm.Encode.func_size (Vm.Codegen.gen_func solo f)
  done;
  !total

let run_vm ?(cfg = config ~budget_bytes:(64 * 1024) ())
    ?(paging = default_paging) ?(repeat = 1) ?mem_size ?input ?fuel ?entry
    (t : Wire.Chunked.t) : (run, error) result =
  let n = Wire.Chunked.chunk_count t in
  let names = Array.init n (Wire.Chunked.name_at t) in
  let compressed = Array.init n (Wire.Chunked.chunk_size_at t) in
  let layout = Paging.layout_of_sizes ~page_bytes:cfg.page_bytes compressed in
  let page_of = layout.Paging.seg_page in
  let npages = layout.Paging.pages in
  (* members of each page, in chunk order *)
  let members = Array.make npages [] in
  for i = n - 1 downto 0 do
    members.(page_of.(i)) <- i :: members.(page_of.(i))
  done;
  let ir_globals = { Ir.Tree.globals = (Wire.Chunked.globals t); funcs = [] } in
  let isa_globals =
    List.map
      (fun (g : Ir.Tree.global) -> (g.Ir.Tree.gname, g.Ir.Tree.gsize, g.Ir.Tree.ginit))
      (Wire.Chunked.globals t)
  in
  (* a page materializes as the prepared frames of its functions *)
  let load p =
    let frames =
      List.map
        (fun i ->
          let f = Wire.Chunked.decompress_at t i in
          let vf = Vm.Codegen.gen_func ir_globals f in
          (i, Vm.Encode.func_size vf, Vm.Interp.prepare_func vf))
        members.(p)
    in
    let cost = List.fold_left (fun a (_, sz, _) -> a + sz) 0 frames in
    let zbytes =
      List.fold_left (fun a i -> a + compressed.(i)) 0 members.(p)
    in
    {
      Vm.Pager.item = List.map (fun (i, _, fr) -> (i, fr)) frames;
      cost_bytes = cost;
      stall_cycles =
        cfg.fault_cycles + (cfg.decompress_cycles_per_byte * zbytes);
    }
  in
  let pager =
    Vm.Pager.create ~budget_bytes:cfg.budget_bytes ~items:npages load
  in
  let fetch i = List.assoc i (Vm.Pager.get pager page_of.(i)) in
  (* the fully-resident baseline is not free: it decompresses the whole
     image up front — one fault per page, whether touched or not. The
     overhead a budget costs is paged cycles over that baseline, so a
     demand-paged run that skips enough cold code can even come in
     under 1.0. *)
  let resident_stall =
    Array.fold_left
      (fun acc members ->
        let zbytes = List.fold_left (fun a i -> a + compressed.(i)) 0 members in
        acc + cfg.fault_cycles + (cfg.decompress_cycles_per_byte * zbytes))
      0 members
  in
  match
    (* a session: the program runs [repeat] times, the code cache
       surviving across runs (fresh memory and globals each time, so
       every repeat computes the same result) *)
    let res = ref None in
    for _ = 1 to repeat do
      res :=
        Some
          (Vm.Interp.run_code ?mem_size ?input ?fuel ?entry
             { Vm.Interp.names; globals = isa_globals; fetch })
    done;
    match !res with
    | Some r -> r
    | None -> invalid_arg "Paged.run_vm: repeat must be >= 1"
  with
  | res ->
    let stats = Vm.Pager.stats pager in
    let total_steps = max 1 (repeat * res.Vm.Interp.steps) in
    Ok
      {
        res;
        stats;
        pages = npages;
        page_of;
        total_steps;
        overhead =
          float_of_int (total_steps + stats.Vm.Pager.stall_cycles)
          /. float_of_int (total_steps + resident_stall);
        fault_time_s = fault_time_s paging stats;
      }
  | exception Support.Decode_error.Fail e -> Error (Decode e)
  | exception Vm.Interp.Runtime_error m -> Error (Trap m)
  | exception Vm.Codegen.Codegen_error m -> Error (Trap ("codegen: " ^ m))

(* ---- BRISC: interpretability-in-place under a budget ----

   BRISC's pitch is that the compressed form IS the executable form, so
   its paged story needs no decompression stall at all: residency is
   counted in compressed bytes, a fault is just the fixed page-in cost,
   and the budget an image fits in is ~2x smaller than the expanded
   VM form needs. The pager is touched per dispatch (in-place
   interpretation has no resident expanded frame to hold), so the
   executing function keeps itself hot. *)

type brisc_run = {
  bres : Brisc.Interp.result;
  bstats : Vm.Pager.stats;
  boverhead : float;  (* (vm_steps + stall) / vm_steps *)
}

let run_brisc ?(budget_bytes = 16 * 1024) ?(fault_cycles = 2_000) ?mem_size
    ?input ?fuel ?entry (img : Brisc.Emit.image) : (brisc_run, error) result =
  let sizes =
    Array.map
      (fun (f : Brisc.Emit.ifunc) -> String.length f.Brisc.Emit.code)
      img.Brisc.Emit.ifuncs
  in
  let items = max 1 (Array.length sizes) in
  let pager =
    Vm.Pager.create ~budget_bytes ~items (fun i ->
        {
          Vm.Pager.item = ();
          cost_bytes = max 1 sizes.(i);
          stall_cycles = fault_cycles;
        })
  in
  match
    Brisc.Interp.run ?mem_size ?input ?fuel ?entry
      ~on_dispatch:(fun fidx _ _ -> Vm.Pager.get pager fidx)
      img
  with
  | bres ->
    let bstats = Vm.Pager.stats pager in
    let steps = max 1 bres.Brisc.Interp.vm_steps in
    Ok
      {
        bres;
        bstats;
        boverhead =
          float_of_int (steps + bstats.Vm.Pager.stall_cycles)
          /. float_of_int steps;
      }
  | exception Support.Decode_error.Fail e -> Error (Decode e)
  | exception Brisc.Interp.Runtime_error m -> Error (Trap m)
