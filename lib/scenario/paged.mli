(** Demand-paged execution of compressed code, end to end.

    Binds the chunked-wire container's random-access index
    ({!Wire.Chunked}) to the VM's paged dispatch loop
    ({!Vm.Interp.run_code} over a {!Vm.Pager}): consecutive chunks pack
    into pages by compressed size, a fault decompresses just the
    faulting page's chunks, and LRU eviction holds the decompressed
    resident set under a hard byte budget. Fault counts, modelled
    decompression stall cycles and the resident high-water mark come
    back with the run — all deterministic (no wall clocks), so
    [perf_gate --paging] holds ceilings on them in CI.

    Function order in the image decides page sharing; that is the lever
    {!Vm.Layout.reorder_ir} turns to cut faults (measured in
    [BENCH_paging.json]). *)

type config = {
  page_bytes : int;      (** compressed bytes packed per page *)
  budget_bytes : int;    (** decompressed resident-set budget *)
  fault_cycles : int;    (** fixed per-fault trap cost *)
  decompress_cycles_per_byte : int;
      (** stall per compressed byte expanded on a fault *)
}

val config :
  ?page_bytes:int ->
  ?fault_cycles:int ->
  ?decompress_cycles_per_byte:int ->
  budget_bytes:int ->
  unit ->
  config
(** Defaults: 1 KiB pages, 2000-cycle faults, 40 cycles per compressed
    byte decompressed. *)

type run = {
  res : Vm.Interp.result;  (** the last repeat's result *)
  stats : Vm.Pager.stats;
  pages : int;           (** load units in the image *)
  page_of : int array;   (** function index -> page *)
  total_steps : int;     (** VM steps summed across all repeats *)
  overhead : float;
      (** paged cycles over the fully-resident baseline:
          [(steps + fault stalls) / (steps + whole-image upfront
          decompression)]. Fully resident is not free — it expands
          every page once at startup — so a paged run that skips
          enough cold code comes in under 1.0. *)
  fault_time_s : float;  (** the fault count under the
                             {!Paging.config} wall-time cost model *)
}

type error =
  | Decode of Support.Decode_error.t
      (** a chunk failed to decompress — surfaces mid-execution, typed *)
  | Trap of string  (** VM trap (bad program, fuel, codegen reject) *)

val error_to_string : error -> string

val fault_time_s : Paging.config -> Vm.Pager.stats -> float

val vm_image_bytes : Wire.Chunked.t -> int
(** Total decompressed VM footprint (sum of encoded function sizes) —
    what fully-resident costs, and the denominator budget fractions
    are quoted against. Decompresses every chunk; offline use.
    @raise Support.Decode_error.Fail on a corrupt chunk. *)

val run_vm :
  ?cfg:config ->
  ?paging:Paging.config ->
  ?repeat:int ->
  ?mem_size:int ->
  ?input:string ->
  ?fuel:int ->
  ?entry:string ->
  Wire.Chunked.t ->
  (run, error) result
(** Run a chunked image under demand paging. [repeat] (default 1)
    models a session: the program runs that many times with the code
    cache surviving across runs (memory and globals are fresh each
    time, so every repeat computes the same result) — re-reference is
    what makes capacity misses, and so layout, matter. Never raises on
    corrupt chunks or hostile programs: decompression failures surface
    as [Error (Decode _)] mid-execution, traps as [Error (Trap _)]. *)

(** {2 BRISC: interpretability-in-place under a budget}

    The compressed form is the executable form, so the paged BRISC run
    charges no decompression stall: residency counts compressed bytes,
    a fault is the fixed page-in cost, and the same working set fits a
    ~2x smaller budget than the expanded VM form needs. *)

type brisc_run = {
  bres : Brisc.Interp.result;
  bstats : Vm.Pager.stats;
  boverhead : float;  (** (vm_steps + stall) / vm_steps *)
}

val run_brisc :
  ?budget_bytes:int ->
  ?fault_cycles:int ->
  ?mem_size:int ->
  ?input:string ->
  ?fuel:int ->
  ?entry:string ->
  Brisc.Emit.image ->
  (brisc_run, error) result
