type rates = {
  decompress_mbps : float;
  jit_mbps : float;
  interp_slowdown : float;
  clock_hz : float;
}

(* Defaults in the spirit of the paper's 120 MHz Pentium setting; the
   bench harness overrides the first two with rates measured on the
   host. *)
let default_rates =
  { decompress_mbps = 8.0; jit_mbps = 2.5; interp_slowdown = 12.0;
    clock_hz = 120.0e6 }

type representation =
  | Raw_native
  | Gzipped_native
  | Wire_format
  | Brisc_jit
  | Brisc_interp

let repr_name = function
  | Raw_native -> "native"
  | Gzipped_native -> "gzip+native"
  | Wire_format -> "wire+JIT"
  | Brisc_jit -> "BRISC+JIT"
  | Brisc_interp -> "BRISC interp"

type sizes = {
  native_bytes : int;
  gzip_bytes : int;
  wire_bytes : int;
  brisc_bytes : int;
}

type outcome = {
  transfer_s : float;
  prepare_s : float;
  run_s : float;
  total_s : float;
}

let mb = 1048576.0

(* The cost model for one concrete artifact: transfer the artifact's own
   bytes, then pay the mode's preparation (decompress and/or JIT, scaled
   by the native image the client must materialize) and run cost. The
   registry-driven server calls this with each registered codec's actual
   stored size; {!total_time} below is the size-card view over the five
   canonical representations. *)
let total_time_for ?(rates = default_rates) ~mode ~artifact_bytes ~native_bytes
    ~run_cycles ~link_bps () =
  let native_mb = float_of_int native_bytes /. mb in
  let run_native = float_of_int run_cycles /. rates.clock_hz in
  let transfer_s = float_of_int artifact_bytes *. 8.0 /. link_bps in
  let prepare_s, run_s =
    match mode with
    | Raw_native -> (0.0, run_native)
    | Gzipped_native -> (native_mb /. rates.decompress_mbps, run_native)
    | Wire_format ->
      (* decompress the wire bundle, then JIT the whole program *)
      ( (native_mb /. rates.decompress_mbps) +. (native_mb /. rates.jit_mbps),
        run_native )
    | Brisc_jit -> (native_mb /. rates.jit_mbps, run_native)
    | Brisc_interp -> (0.0, run_native *. rates.interp_slowdown)
  in
  { transfer_s; prepare_s; run_s; total_s = transfer_s +. prepare_s +. run_s }

let bytes_for sizes = function
  | Raw_native -> sizes.native_bytes
  | Gzipped_native -> sizes.gzip_bytes
  | Wire_format -> sizes.wire_bytes
  | Brisc_jit | Brisc_interp -> sizes.brisc_bytes

let total_time ?rates sizes ~run_cycles ~link_bps repr =
  total_time_for ?rates ~mode:repr ~artifact_bytes:(bytes_for sizes repr)
    ~native_bytes:sizes.native_bytes ~run_cycles ~link_bps ()

let all_reprs = [ Raw_native; Gzipped_native; Wire_format; Brisc_jit; Brisc_interp ]

let best_of ?rates candidates sizes ~run_cycles ~link_bps =
  if candidates = [] then invalid_arg "Delivery.best_of: no candidates";
  let outcomes =
    List.map
      (fun r -> (r, total_time ?rates sizes ~run_cycles ~link_bps r))
      candidates
  in
  List.fold_left
    (fun (br, bo) (r, o) -> if o.total_s < bo.total_s then (r, o) else (br, bo))
    (List.hd outcomes) (List.tl outcomes)

let best ?rates sizes ~run_cycles ~link_bps =
  best_of ?rates all_reprs sizes ~run_cycles ~link_bps

let sweep ?rates sizes ~run_cycles ~link_bps_list =
  List.map
    (fun bps ->
      ( bps,
        List.map
          (fun r -> (r, total_time ?rates sizes ~run_cycles ~link_bps:bps r))
          all_reprs ))
    link_bps_list

let modem_bps = 28_800.0
let isdn_bps = 128_000.0
let t1_bps = 1_544_000.0
let lan_bps = 10_000_000.0
let fast_lan_bps = 100_000_000.0
