(* Recorder: turn an observer callback stream into a Trace.t.

   Both sources tell us the op, the profile and the program; neither
   carries wall-clock we could trust for replay (replay time is
   modelled), so timestamps are synthesized — a seeded 0..9 ms gap per
   event, preserving arrival order. *)

type collector = {
  rng : Support.Prng.t;
  mutable t_ms : int;
  mutable acc : Trace.event list;  (* newest first *)
}

let collector ?(seed = 1L) () =
  { rng = Support.Prng.create seed; t_ms = 0; acc = [] }

let push c ~client ~profile ~op ~key =
  c.t_ms <- c.t_ms + Support.Prng.int c.rng 10;
  c.acc <-
    { Trace.t_ms = c.t_ms; client; profile; op; key; fault = None } :: c.acc

let observe_workload c (o : Server.Workload.observation) =
  let entry_name (e : Server.Workload.entry) = e.Server.Workload.name in
  let pname (p : Server.Profile.t) = p.Server.Profile.name in
  match o with
  | Server.Workload.Obs_fetch (p, e) ->
    push c ~client:("w-" ^ pname p) ~profile:(pname p) ~op:Trace.Fetch
      ~key:(entry_name e)
  | Server.Workload.Obs_stream (p, e) ->
    push c ~client:("w-" ^ pname p) ~profile:(pname p) ~op:Trace.Stream
      ~key:(entry_name e)
  | Server.Workload.Obs_resume (p, e) ->
    push c ~client:("w-" ^ pname p) ~profile:(pname p) ~op:Trace.Resume
      ~key:(entry_name e)

let observe_load c ~digest_to_key (o : Net.Load.observation) =
  let client = Printf.sprintf "l%d" o.Net.Load.obs_client in
  let key = digest_to_key o.Net.Load.obs_digest in
  match o.Net.Load.obs_kind with
  | Net.Load.Fetch_op ->
    push c ~client ~profile:o.Net.Load.obs_profile ~op:Trace.Fetch ~key
  | Net.Load.Open_op | Net.Load.Chunk_op ->
    (* both are legs of a chunked session; the replayer re-derives
       handshake-vs-chunk from its own per-client session state *)
    push c ~client ~profile:"embedded" ~op:Trace.Stream ~key

let events c = List.rev c.acc

let trace c ~scenario ~catalog ~seed =
  { Trace.scenario; catalog; seed; events = events c }

let of_workload engine ?profiles ?config ~catalog_name catalog =
  let config =
    match config with Some c -> c | None -> Server.Workload.default_config
  in
  let c = collector ~seed:config.Server.Workload.seed () in
  let summary =
    Server.Workload.run engine ?profiles ~config
      ~observe:(observe_workload c) catalog
  in
  ( summary,
    trace c ~scenario:"workload" ~catalog:catalog_name
      ~seed:config.Server.Workload.seed )
