(* Trace replay: the simulator's deterministic core.

   Everything observable is derived from the trace and the engine's
   own deterministic behavior: the event log renders what was served
   (label, size, cache hit, degradation) but never wall-clock, and
   latency is modelled (delivery model for fetches, link transfer time
   for session legs), so a replay is byte-identical across runs and
   across pool sizes. The daemon path reuses the same per-event logic
   with RPCs in place of direct engine calls. *)

type opstats = { ops : int; bytes : int; lat : Support.Quantile.bucket }

type report = {
  r_label : string;
  r_scenario : string;
  r_catalog : string;
  r_seed : int64;
  r_events : int;
  r_bytes_on_wire : int;
  r_cache_hit_rate : float;
  r_degraded : int;
  r_decode_failures : int;
  r_quarantine_heals : int;
  r_policy_hits : int;
  r_fetch : opstats;
  r_stream : opstats;
  r_resume : opstats;
  r_update : opstats;
  r_update_corrupt : int;
  r_all : opstats;
  r_event_crc : int;
  r_serve_crc : int;
  r_log : string;
  r_stats : Server.Stats.report;
}

type config = {
  label : string;
  budget_bytes : int;
  policy : Tune.Policy.t option;
  pool : Support.Pool.t option;
  contexted : bool;
}

let default_config =
  { label = "replay"; budget_bytes = 256 * 1024; policy = None; pool = None;
    contexted = true }

(* ---- shared plumbing ---- *)

let find_profile name =
  match
    List.find_opt
      (fun (p : Server.Profile.t) -> p.Server.Profile.name = name)
      Server.Workload.default_profiles
  with
  | Some p -> p
  | None -> failwith ("Sim.Replay: unknown profile " ^ name)

let catalog_for (trace : Trace.t) engine =
  let flavor =
    match Catalog.flavor_of_name trace.Trace.catalog with
    | Some f -> f
    | None ->
      failwith ("Sim.Replay: unknown catalog flavor " ^ trace.Trace.catalog)
  in
  let entries = Catalog.publish engine flavor in
  let by_name = Hashtbl.create 32 in
  List.iter
    (fun (e : Server.Workload.entry) ->
      Hashtbl.replace by_name e.Server.Workload.name e)
    entries;
  (entries, by_name)

let entry_of by_name key : Server.Workload.entry =
  match Hashtbl.find_opt by_name key with
  | Some e -> e
  | None -> failwith ("Sim.Replay: trace key not in catalog: " ^ key)

(* chained CRC over served payloads: order-sensitive, O(total bytes) *)
let chain crc s = Support.Util.crc32 (Printf.sprintf "%08x:" crc ^ s)

(* what the handshake ships: the session index (same formula as
   Session.handshake_bytes, recomputed from the index rows so the
   daemon path can derive it from the Index frame alone) *)
let handshake_of_rows rows =
  List.fold_left (fun a (n, _) -> a + String.length n + 1 + 4) 8 rows

let render_rows rows =
  String.concat ";" (List.map (fun (n, sz) -> Printf.sprintf "%s:%d" n sz) rows)

(* modelled transfer time of [bytes] at the profile's link, in ms *)
let transfer_ms (p : Server.Profile.t) bytes =
  float_of_int (bytes * 8) /. p.Server.Profile.link_bps *. 1000.

(* ---- accumulation ---- *)

type acc = {
  log : Buffer.t;
  mutable serve_crc : int;
  mutable lat : (Trace.op * float) list;  (* newest first *)
  mutable bytes_by_op : (Trace.op * int) list;
  mutable upd_corrupt : int;
      (* update serves that failed client-side decode verification *)
}

let new_acc () =
  { log = Buffer.create 4096; serve_crc = 0; lat = []; bytes_by_op = [];
    upd_corrupt = 0 }

let logf acc fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string acc.log s;
      Buffer.add_char acc.log '\n')
    fmt

let served acc op ?(latency = 0.) payload =
  acc.serve_crc <- chain acc.serve_crc payload;
  acc.lat <- (op, latency) :: acc.lat;
  acc.bytes_by_op <- (op, String.length payload) :: acc.bytes_by_op

let opstats_of acc op =
  let lats =
    List.rev_map snd (List.filter (fun (o, _) -> o = op) acc.lat)
  in
  {
    ops = List.length lats;
    bytes =
      List.fold_left
        (fun a (o, n) -> if o = op then a + n else a)
        0 acc.bytes_by_op;
    lat = Support.Quantile.bucket_of_ms lats;
  }

let all_stats acc =
  {
    ops = List.length acc.lat;
    bytes = List.fold_left (fun a (_, n) -> a + n) 0 acc.bytes_by_op;
    lat = Support.Quantile.bucket_of_ms (List.rev_map snd acc.lat);
  }

let finish ~(config : config) ~(trace : Trace.t) ~before ~after acc =
  let d = Server.Stats.diff ~before after in
  {
    r_label = config.label;
    r_scenario = trace.Trace.scenario;
    r_catalog = trace.Trace.catalog;
    r_seed = trace.Trace.seed;
    r_events = List.length trace.Trace.events;
    r_bytes_on_wire = d.Server.Stats.total_bytes_served;
    r_cache_hit_rate = d.Server.Stats.cache_hit_rate;
    r_degraded = d.Server.Stats.degraded_fetches;
    r_decode_failures = d.Server.Stats.decode_failures;
    r_quarantine_heals = d.Server.Stats.quarantine_heals;
    r_policy_hits = d.Server.Stats.policy_hits;
    r_fetch = opstats_of acc Trace.Fetch;
    r_stream = opstats_of acc Trace.Stream;
    r_resume = opstats_of acc Trace.Resume;
    r_update = opstats_of acc Trace.Update;
    r_update_corrupt = acc.upd_corrupt;
    r_all = all_stats acc;
    r_event_crc = Support.Util.crc32 (Buffer.contents acc.log);
    r_serve_crc = acc.serve_crc;
    r_log = Buffer.contents acc.log;
    r_stats = d;
  }

(* ---- the update channel ---- *)

(* What an Update event advertises as held: the shared dictionary plus
   the key's old version, when this client fetched it earlier in the
   trace. [holds] maps "client:key" to the digest that client last
   received for the key. *)
let held_for ~(config : config) holds ev =
  if not config.contexted then []
  else
    Codec.Context.builtin_digest ()
    :: (match
          Hashtbl.find_opt holds
            (ev.Trace.client ^ ":" ^ Catalog.old_version_key ev.Trace.key)
        with
       | Some d -> [ d ]
       | None -> [])

(* Client-side decode verification of an update serve: a contexted body
   must decode under the context the response names, and a delta patch
   must expand to the exact printed IR a full wire serve decodes to —
   byte equality against the new version held by the store, not just
   "some successful decode". *)
let update_serve_ok store ~codec ~context ~digest body =
  if context = "" then true (* context-free: the engine decode-verified it *)
  else
    let e = Codec.find_exn codec in
    let ctx =
      if context = Codec.Context.builtin_digest () then Codec.Context.builtin ()
      else
        match Server.Store.find_meta store context with
        | Some bm ->
          Codec.Context.base
            ~ir_text:(Ir.Printer.program_to_string bm.Server.Store.ir)
        | None ->
          failwith ("Sim.Replay: served context digest unknown: " ^ context)
    in
    match Codec.decode ~ctx e.Codec.codec body with
    | Error _ -> false
    | Ok (expansion, _) ->
      codec <> "delta"
      || expansion
         = Ir.Printer.program_to_string
             (Server.Store.meta store digest).Server.Store.ir

(* ---- faults ---- *)

(* One directive corrupts ONE cached non-native artifact of the key —
   the repr picked and the mutation both drawn from the directive's own
   seed, so the damage is reproducible. Same fault model as
   [mccd --faults]: verify-before-serve catches it, the fetch degrades,
   and the store heals the quarantined artifact on its next request. *)
let apply_fault store digest (f : Trace.fault) =
  let rng = Support.Prng.create f.Trace.fseed in
  let reprs =
    Array.of_list
      (List.filter (fun r -> r <> Server.Artifact.native) (Server.Artifact.all ()))
  in
  let repr = reprs.(Support.Prng.int rng (Array.length reprs)) in
  if
    Server.Store.corrupt_cached store digest repr
      ~f:(fun s -> Support.Fault.apply rng f.Trace.fkind s)
  then 1
  else 0

(* ---- in-process replay ---- *)

type stream_state = {
  mutable pending : string list;
  mutable last : (int * string) option;  (* last served (seq, name) *)
  sess : Server.Session.t;
}

let run ?(config = default_config) (trace : Trace.t) =
  let engine =
    Server.create ?pool:config.pool ~budget_bytes:config.budget_bytes
      ?policy:config.policy ()
  in
  let _entries, by_name = catalog_for trace engine in
  let store = Server.store engine in
  let acc = new_acc () in
  let streams : (string, stream_state) Hashtbl.t = Hashtbl.create 16 in
  let holds : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let before = Server.report engine in
  let open_stream ev (e : Server.Workload.entry) profile =
    let sess = Server.open_session engine e.Server.Workload.digest in
    let rows = Server.Session.index sess in
    let hs = handshake_of_rows rows in
    let rendered = render_rows rows in
    logf acc "open %s %s %s rows=%d %dB" ev.Trace.client ev.Trace.profile
      ev.Trace.key (List.length rows) hs;
    acc.serve_crc <- chain acc.serve_crc rendered;
    acc.lat <- (Trace.Stream, transfer_ms profile hs) :: acc.lat;
    acc.bytes_by_op <- (Trace.Stream, hs) :: acc.bytes_by_op;
    Hashtbl.replace streams
      (ev.Trace.client ^ ":" ^ ev.Trace.key)
      { pending = e.Server.Workload.wanted; last = None; sess }
  in
  let request st name =
    let seq = Server.Session.next_seq st.sess in
    match Server.session_request engine st.sess ~seq name with
    | Ok payload -> (seq, payload)
    | Error msg -> failwith ("Sim.Replay: session error: " ^ msg)
  in
  let rec step ev =
    let e = entry_of by_name ev.Trace.key in
    let profile = find_profile ev.Trace.profile in
    let skey = ev.Trace.client ^ ":" ^ ev.Trace.key in
    match ev.Trace.op with
    | Trace.Fetch ->
      let resp = Server.fetch engine e.Server.Workload.digest profile in
      logf acc "fetch %s %s %s -> %s %dB hit=%d degraded=%s" ev.Trace.client
        ev.Trace.profile ev.Trace.key resp.Server.label resp.Server.size
        (if resp.Server.cache_hit then 1 else 0)
        (Option.value ~default:"-" resp.Server.degraded_from);
      Hashtbl.replace holds skey e.Server.Workload.digest;
      served acc Trace.Fetch
        ~latency:(resp.Server.outcome.Scenario.Delivery.total_s *. 1000.)
        resp.Server.bytes
    | Trace.Update ->
      let held = held_for ~config holds ev in
      let resp = Server.fetch ~held engine e.Server.Workload.digest profile in
      let context = Option.value ~default:"" resp.Server.context in
      if
        not
          (update_serve_ok store
             ~codec:(Server.Artifact.name resp.Server.artifact)
             ~context ~digest:e.Server.Workload.digest resp.Server.bytes)
      then acc.upd_corrupt <- acc.upd_corrupt + 1;
      logf acc "update %s %s %s -> %s %dB hit=%d ctx=%s" ev.Trace.client
        ev.Trace.profile ev.Trace.key resp.Server.label resp.Server.size
        (if resp.Server.cache_hit then 1 else 0)
        (if context = "" then "-" else context);
      Hashtbl.replace holds skey e.Server.Workload.digest;
      served acc Trace.Update
        ~latency:(resp.Server.outcome.Scenario.Delivery.total_s *. 1000.)
        resp.Server.bytes
    | Trace.Stream -> (
      match Hashtbl.find_opt streams skey with
      | None -> open_stream ev e profile
      | Some st -> (
        match st.pending with
        | [] ->
          (* session exhausted: the client starts over *)
          Hashtbl.remove streams skey;
          open_stream ev e profile
        | name :: rest ->
          let seq, payload = request st name in
          logf acc "chunk %s %s %s seq=%d %s %dB" ev.Trace.client
            ev.Trace.profile ev.Trace.key seq name (String.length payload);
          served acc Trace.Stream
            ~latency:(transfer_ms profile (String.length payload))
            payload;
          st.last <- Some (seq, name);
          st.pending <- rest))
    | Trace.Resume -> (
      match Hashtbl.find_opt streams skey with
      | Some ({ last = Some (seq, name); _ } as st) -> (
        (* dropped response: repeat the same seq, byte-for-byte *)
        match Server.session_request engine st.sess ~seq name with
        | Ok payload ->
          logf acc "resume %s %s %s seq=%d %s %dB" ev.Trace.client
            ev.Trace.profile ev.Trace.key seq name (String.length payload);
          served acc Trace.Resume
            ~latency:(transfer_ms profile (String.length payload))
            payload
        | Error msg -> failwith ("Sim.Replay: retransmit refused: " ^ msg))
      | _ ->
        (* nothing to resume yet: behaves as the stream leg it retries *)
        step { ev with Trace.op = Trace.Stream })
  in
  List.iter
    (fun ev ->
      (match ev.Trace.fault with
      | None -> ()
      | Some f ->
        let e = entry_of by_name ev.Trace.key in
        let hit = apply_fault store e.Server.Workload.digest f in
        logf acc "fault %s %s hit=%d"
          (Support.Fault.kind_name f.Trace.fkind)
          ev.Trace.key hit);
      step ev)
    trace.Trace.events;
  let after = Server.report engine in
  finish ~config ~trace ~before ~after acc

(* ---- replay through the daemon ---- *)

type daemon_stream = {
  mutable d_pending : string list;
  mutable d_last : (int * string) option;
  d_token : string;
  mutable d_next_seq : int;
}

let rpc client req =
  match Net.Client.rpc client req with
  | Ok resp -> resp
  | Error e ->
    failwith ("Sim.Replay: rpc failed: " ^ Support.Decode_error.to_string e)

let via_daemon ?(config = default_config) (trace : Trace.t) =
  let engine =
    Server.create ?pool:config.pool ~budget_bytes:config.budget_bytes
      ?policy:config.policy ()
  in
  let entries, by_name = catalog_for trace engine in
  let store = Server.store engine in
  let rows =
    List.map
      (fun (e : Server.Workload.entry) ->
        {
          Net.Protocol.prog_name = e.Server.Workload.name;
          prog_digest = e.Server.Workload.digest;
          fn_count = e.Server.Workload.fn_count;
        })
      entries
  in
  let daemon =
    Net.Daemon.create engine ~catalog:rows
      { Net.Daemon.default_config with domains = 1 }
  in
  let dom = Domain.spawn (fun () -> Net.Daemon.run daemon) in
  let acc = new_acc () in
  let streams : (string, daemon_stream) Hashtbl.t = Hashtbl.create 16 in
  let holds : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let before = Server.report engine in
  Fun.protect
    ~finally:(fun () ->
      Net.Daemon.request_stop daemon;
      Domain.join dom)
    (fun () ->
      let client = Net.Client.connect ~port:(Net.Daemon.port daemon) in
      Fun.protect
        ~finally:(fun () -> Net.Client.close client)
        (fun () ->
          let timed req =
            let t0 = Unix.gettimeofday () in
            let resp = rpc client req in
            (resp, (Unix.gettimeofday () -. t0) *. 1000.)
          in
          let open_stream ev (e : Server.Workload.entry) =
            match
              timed
                (Net.Protocol.Open
                   { codec = ""; digest = e.Server.Workload.digest; resume = ""; held = [] })
            with
            | Net.Protocol.Index { token; next_seq; rows; _ }, ms ->
              let hs = handshake_of_rows rows in
              logf acc "open %s %s %s rows=%d %dB" ev.Trace.client
                ev.Trace.profile ev.Trace.key (List.length rows) hs;
              acc.serve_crc <- chain acc.serve_crc (render_rows rows);
              acc.lat <- (Trace.Stream, ms) :: acc.lat;
              acc.bytes_by_op <- (Trace.Stream, hs) :: acc.bytes_by_op;
              Hashtbl.replace streams
                (ev.Trace.client ^ ":" ^ ev.Trace.key)
                {
                  d_pending = e.Server.Workload.wanted;
                  d_last = None;
                  d_token = token;
                  d_next_seq = next_seq;
                }
            | resp, _ ->
              failwith
                ("Sim.Replay: unexpected response to Open: "
                ^ match resp with
                  | Net.Protocol.Err (c, m) ->
                    Net.Protocol.err_code_name c ^ ": " ^ m
                  | _ -> "wrong frame kind")
          in
          let chunk_req st name seq =
            match
              timed
                (Net.Protocol.Chunk { token = st.d_token; seq; name })
            with
            | Net.Protocol.Chunk_data payload, ms -> (payload, ms)
            | Net.Protocol.Err (c, m), _ ->
              failwith
                ("Sim.Replay: chunk refused: " ^ Net.Protocol.err_code_name c
               ^ ": " ^ m)
            | _ -> failwith "Sim.Replay: unexpected response to Chunk"
          in
          let rec step ev =
            let e = entry_of by_name ev.Trace.key in
            let skey = ev.Trace.client ^ ":" ^ ev.Trace.key in
            match ev.Trace.op with
            | Trace.Fetch -> (
              match
                timed
                  (Net.Protocol.Fetch
                     {
                       profile = ev.Trace.profile;
                       digest = e.Server.Workload.digest;
                       held = [];
                     })
              with
              | Net.Protocol.Artifact { label; cache_hit; degraded_from; body; _ }, ms ->
                logf acc "fetch %s %s %s -> %s %dB hit=%d degraded=%s"
                  ev.Trace.client ev.Trace.profile ev.Trace.key label
                  (String.length body)
                  (if cache_hit then 1 else 0)
                  (if degraded_from = "" then "-" else degraded_from);
                Hashtbl.replace holds skey e.Server.Workload.digest;
                served acc Trace.Fetch ~latency:ms body
              | Net.Protocol.Err (c, m), _ ->
                failwith
                  ("Sim.Replay: fetch refused: " ^ Net.Protocol.err_code_name c
                 ^ ": " ^ m)
              | _ -> failwith "Sim.Replay: unexpected response to Fetch")
            | Trace.Update -> (
              match
                timed
                  (Net.Protocol.Fetch
                     {
                       profile = ev.Trace.profile;
                       digest = e.Server.Workload.digest;
                       held = held_for ~config holds ev;
                     })
              with
              | ( Net.Protocol.Artifact
                    { label; codec; cache_hit; context; body; _ },
                  ms ) ->
                if
                  not
                    (update_serve_ok store ~codec ~context
                       ~digest:e.Server.Workload.digest body)
                then acc.upd_corrupt <- acc.upd_corrupt + 1;
                logf acc "update %s %s %s -> %s %dB hit=%d ctx=%s"
                  ev.Trace.client ev.Trace.profile ev.Trace.key label
                  (String.length body)
                  (if cache_hit then 1 else 0)
                  (if context = "" then "-" else context);
                Hashtbl.replace holds skey e.Server.Workload.digest;
                served acc Trace.Update ~latency:ms body
              | Net.Protocol.Err (c, m), _ ->
                failwith
                  ("Sim.Replay: update refused: "
                 ^ Net.Protocol.err_code_name c ^ ": " ^ m)
              | _ -> failwith "Sim.Replay: unexpected response to Fetch")
            | Trace.Stream -> (
              match Hashtbl.find_opt streams skey with
              | None -> open_stream ev e
              | Some st -> (
                match st.d_pending with
                | [] ->
                  Hashtbl.remove streams skey;
                  open_stream ev e
                | name :: rest ->
                  let seq = st.d_next_seq in
                  let payload, ms = chunk_req st name seq in
                  logf acc "chunk %s %s %s seq=%d %s %dB" ev.Trace.client
                    ev.Trace.profile ev.Trace.key seq name
                    (String.length payload);
                  served acc Trace.Stream ~latency:ms payload;
                  st.d_next_seq <- seq + 1;
                  st.d_last <- Some (seq, name);
                  st.d_pending <- rest))
            | Trace.Resume -> (
              match Hashtbl.find_opt streams skey with
              | Some ({ d_last = Some (seq, name); _ } as st) ->
                let payload, ms = chunk_req st name seq in
                logf acc "resume %s %s %s seq=%d %s %dB" ev.Trace.client
                  ev.Trace.profile ev.Trace.key seq name
                  (String.length payload);
                served acc Trace.Resume ~latency:ms payload
              | _ -> step { ev with Trace.op = Trace.Stream })
          in
          List.iter
            (fun ev ->
              (match ev.Trace.fault with
              | None -> ()
              | Some f ->
                (* the daemon shares this engine, so the fault lands in
                   the same store the workers serve from; ops are
                   strictly sequential (one connection, one in flight),
                   so the injection is ordered exactly as in [run] *)
                let e = entry_of by_name ev.Trace.key in
                let hit = apply_fault store e.Server.Workload.digest f in
                logf acc "fault %s %s hit=%d"
                  (Support.Fault.kind_name f.Trace.fkind)
                  ev.Trace.key hit);
              step ev)
            trace.Trace.events));
  let after = Server.report engine in
  finish ~config ~trace ~before ~after acc

(* ---- rendering ---- *)

let render_opstats name (o : opstats) =
  Printf.sprintf
    "lat %-7s %5d ops %9dB  p50 %8.2f  p95 %8.2f  p99 %8.2f ms" name o.ops
    o.bytes o.lat.Support.Quantile.p50_ms o.lat.Support.Quantile.p95_ms o.lat.Support.Quantile.p99_ms

let render (r : report) =
  String.concat "\n"
    [
      "mcc-sim replay 1";
      Printf.sprintf "label            %s" r.r_label;
      Printf.sprintf "scenario         %s" r.r_scenario;
      Printf.sprintf "catalog          %s" r.r_catalog;
      Printf.sprintf "seed             %Ld" r.r_seed;
      Printf.sprintf "events           %d" r.r_events;
      Printf.sprintf "bytes on wire    %d" r.r_bytes_on_wire;
      Printf.sprintf "cache hit rate   %.4f" r.r_cache_hit_rate;
      Printf.sprintf "degraded         %d" r.r_degraded;
      Printf.sprintf "decode failures  %d" r.r_decode_failures;
      Printf.sprintf "quarantine heals %d" r.r_quarantine_heals;
      Printf.sprintf "policy hits      %d" r.r_policy_hits;
      render_opstats "fetch" r.r_fetch;
      render_opstats "stream" r.r_stream;
      render_opstats "resume" r.r_resume;
      render_opstats "update" r.r_update;
      Printf.sprintf "update corrupt   %d" r.r_update_corrupt;
      render_opstats "all" r.r_all;
      Printf.sprintf "event crc        %08x" r.r_event_crc;
      Printf.sprintf "serve crc        %08x" r.r_serve_crc;
      "";
    ]

let json_opstats (o : opstats) =
  Printf.sprintf
    "{\"ops\": %d, \"bytes\": %d, \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f}"
    o.ops o.bytes o.lat.Support.Quantile.p50_ms o.lat.Support.Quantile.p95_ms
    o.lat.Support.Quantile.p99_ms

let to_json (r : report) =
  String.concat "\n"
    [
      "{";
      Printf.sprintf "  \"label\": \"%s\"," r.r_label;
      Printf.sprintf "  \"scenario\": \"%s\"," r.r_scenario;
      Printf.sprintf "  \"catalog\": \"%s\"," r.r_catalog;
      Printf.sprintf "  \"seed\": %Ld," r.r_seed;
      Printf.sprintf "  \"events\": %d," r.r_events;
      Printf.sprintf "  \"bytes_on_wire\": %d," r.r_bytes_on_wire;
      Printf.sprintf "  \"cache_hit_rate\": %.4f," r.r_cache_hit_rate;
      Printf.sprintf "  \"degraded\": %d," r.r_degraded;
      Printf.sprintf "  \"decode_failures\": %d," r.r_decode_failures;
      Printf.sprintf "  \"quarantine_heals\": %d," r.r_quarantine_heals;
      Printf.sprintf "  \"policy_hits\": %d," r.r_policy_hits;
      Printf.sprintf "  \"fetch\": %s," (json_opstats r.r_fetch);
      Printf.sprintf "  \"stream\": %s," (json_opstats r.r_stream);
      Printf.sprintf "  \"resume\": %s," (json_opstats r.r_resume);
      Printf.sprintf "  \"update\": %s," (json_opstats r.r_update);
      Printf.sprintf "  \"update_corrupt\": %d," r.r_update_corrupt;
      Printf.sprintf "  \"all\": %s," (json_opstats r.r_all);
      Printf.sprintf "  \"event_crc\": \"%08x\"," r.r_event_crc;
      Printf.sprintf "  \"serve_crc\": \"%08x\"" r.r_serve_crc;
      "}";
    ]
