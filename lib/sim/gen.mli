(** Seeded scenario generators: the committed golden corpus comes from
    here. Each generator cuts a {!Trace.t} over a catalog's key list —
    deterministically, from a single {!Support.Prng} seed. *)

type spec = {
  sname : string;  (** CLI name, e.g. [flash-crowd] *)
  sdesc : string;
  generate : seed:int64 -> events:int -> keys:string list -> Trace.t;
      (** [keys] in popularity order (rank 0 is hottest). *)
}

val all : spec list
(** [steady], [flash-crowd], [corruption-burst], [mixed-profiles],
    [update-storm], [paging]. The update storm is cut against the
    [versioned] catalog flavor: old versions roll out to most of the
    fleet, then every event upgrades to the current version at once.
    [paging] models a memory-constrained fleet: each client cycles a
    small working set of programs (with cold-tail excursions), and
    every working set rotates mid-run. *)

val find : string -> spec option
