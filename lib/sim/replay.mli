(** Deterministic trace replay against a fresh engine.

    {!run} builds a {!Server.t} (budget/policy from the config),
    publishes the trace's catalog flavor, then drives every event in
    order: fetches through [Server.fetch], streams through chunked
    sessions (handshake on a client's first touch of a program, the
    next paged function afterwards), resumes as byte-for-byte
    retransmits of the last served chunk, and fault directives as
    seeded corruption of the key's cached artifacts.

    The determinism contract: one trace and one config produce a
    byte-identical event log (hence [event_crc]), identical served
    bytes ([serve_crc], [bytes_on_wire]) and identical engine counters
    — across runs {e and} across shared-pool domain counts. Latencies
    are modelled, not measured: a fetch costs its scored
    [Delivery.total_time], a handshake or chunk its transfer time at
    the client profile's link rate — so even the percentile lines are
    reproducible.

    {!via_daemon} replays the same trace through a real [Net.Daemon]
    over loopback TCP (one connection, one op in flight). Event log and
    served bytes match {!run} exactly; only the latency buckets differ
    (measured wall time instead of the model). *)

type opstats = {
  ops : int;
  bytes : int;           (** payload bytes this op class put on the wire *)
  lat : Support.Quantile.bucket; (** modelled ms ({!run}) or measured ms ({!via_daemon}) *)
}

type report = {
  r_label : string;
  r_scenario : string;
  r_catalog : string;
  r_seed : int64;
  r_events : int;
  r_bytes_on_wire : int;    (** diffed engine counter: replay phase only *)
  r_cache_hit_rate : float;
  r_degraded : int;
  r_decode_failures : int;
  r_quarantine_heals : int;
  r_policy_hits : int;
  r_fetch : opstats;
  r_stream : opstats;       (** handshakes and chunks *)
  r_resume : opstats;
  r_update : opstats;
      (** upgrade fetches (the delta update channel when the config
          advertises held digests, full redelivery when it doesn't) *)
  r_update_corrupt : int;
      (** update serves that failed client-side decode verification: a
          contexted body that does not decode under the context the
          response names, or a delta patch whose expansion differs
          from the exact bytes a full wire serve decodes to *)
  r_all : opstats;
  r_event_crc : int;        (** CRC-32 of the rendered event log *)
  r_serve_crc : int;        (** chained CRC-32 over every served payload *)
  r_log : string;           (** the event log itself, one line per action *)
  r_stats : Server.Stats.report;  (** the diffed snapshot the counters came from *)
}

type config = {
  label : string;                (** report tag, e.g. ["A"] *)
  budget_bytes : int;
  policy : Tune.Policy.t option;
  pool : Support.Pool.t option;
      (** compression pool handed to the engine (default: the shared
          pool). The determinism contract makes the report identical at
          any pool size — the knob exists so tests can prove it. *)
  contexted : bool;
      (** when true (the default), [Update] events advertise the shared
          dictionary and the key's previously fetched old version as
          held, unlocking the delta update channel; when false they are
          plain fetches — the full-redelivery baseline the storm gate
          measures against *)
}

val default_config : config
(** label ["replay"], the engine's default budget, no policy table,
    shared pool. *)

val run : ?config:config -> Trace.t -> report
(** @raise Failure on a trace that names an unknown catalog flavor,
    profile, or program key. *)

val via_daemon : ?config:config -> Trace.t -> report
(** Replay through a loopback [Net.Daemon] (spawned and drained
    internally, single worker domain). Latency buckets are measured,
    everything else matches {!run}. *)

val render : report -> string
(** Deterministic text report ({!run} reports only — latency lines are
    part of it). The golden scenario corpus pins these renders. *)

val to_json : report -> string
(** The same fields as {!render} as a JSON object. *)
