(** Named catalog flavors the simulator (and the drivers) publish.

    A trace records which flavor it was cut against, so replay can
    rebuild the same key space without shipping digests (content
    addresses change whenever the compiler does; program names don't). *)

type flavor =
  | Mini   (** four small corpus programs — unit-test sized *)
  | Quick  (** the whole hand-written corpus plus one generated program *)
  | Full   (** the corpus plus the 24- and 40-function generated programs *)
  | Versioned
      (** the mini programs under their current keys, plus an old
          version of each under [key@1] — the update channel's key
          space (see {!old_version_key}) *)

val flavor_name : flavor -> string
val flavor_of_name : string -> flavor option

val old_version_key : string -> string
(** [old_version_key k] is the catalog key of [k]'s previous version in
    the {!Versioned} flavor ([k ^ "@1"]). *)

val is_old_version : string -> bool

val publish : Server.t -> flavor -> Server.Workload.entry list
(** Publish the flavor's programs and return the catalog. Generated
    programs get their stable [genN] names, exactly as the mccd
    drivers publish them. *)
