(** The versioned fleet-trace format ([mcc-trace 1]).

    A trace is the replayable record of a fleet's request stream: per
    event a monotonic timestamp, the issuing client and its profile, the
    operation kind, the catalog key of the program it wants, and an
    optional fault directive (a {!Support.Fault} kind plus its PRNG
    seed) injected into the serving cache just before the event runs.

    Line-based text, like [POLICY.tune] ([mcc-policy 1]):

    {v
    mcc-trace 1
    meta scenario steady
    meta catalog quick
    meta seed 42
    ev 0 c0 modem-jit fetch wc
    ev 14 c3 embedded stream gen12
    ev 15 c1 lan-jit fetch sieve fault bit-flip 77331
    v}

    Blank lines and [#] comments are ignored. The reader is total:
    hostile bytes surface as typed {!Support.Decode_error} values
    (never exceptions), with the failing line number as the error
    position. *)

type op =
  | Fetch   (** whole-image request *)
  | Stream  (** chunked session: handshake on first touch, then chunks *)
  | Resume  (** retransmit of the last served chunk (dropped response) *)
  | Update
      (** upgrade fetch: the client asks for the key's current version
          while advertising what it already holds (the shared
          dictionary and, when it fetched one earlier in the trace, the
          key's old version) — the delta update channel's request *)

val op_name : op -> string
val op_of_name : string -> op option

type fault = {
  fkind : Support.Fault.kind;
  fseed : int64;  (** seeds the mutation PRNG, so the damage is reproducible *)
}

type event = {
  t_ms : int;          (** milliseconds since trace start; non-decreasing *)
  client : string;     (** stable client id, e.g. [c7] *)
  profile : string;    (** client profile name, e.g. [modem-jit] *)
  op : op;
  key : string;        (** catalog program name, e.g. [qsort] *)
  fault : fault option;
      (** applied to the key's cached artifacts before the op runs *)
}

type t = {
  scenario : string;   (** generator name, e.g. [steady] *)
  catalog : string;    (** catalog flavor the trace was cut against *)
  seed : int64;        (** generator seed, for provenance *)
  events : event list; (** in timestamp order *)
}

val to_string : t -> string

val default_max_events : int
(** Reader allocation cap (200k events). *)

val of_string : ?max_events:int -> string -> (t, Support.Decode_error.t) result
(** Total reader. Checks: the version header, meta syntax, field
    arity, timestamp monotonicity, known op and fault-kind names,
    integer fields in range, and the [max_events] cap. *)

val save : string -> t -> unit
val load : ?max_events:int -> string -> (t, Support.Decode_error.t) result
(** [load path] reads and parses; an unreadable file surfaces as a
    typed error, not an exception. *)

val fault_kind_of_name : string -> Support.Fault.kind option
