(* Catalog flavors: the key spaces traces are cut against.

   Mini keeps unit tests fast (four small programs publish in well
   under a second); Quick matches the drivers' --quick corpus; Full is
   the complete workload catalog. Generated programs are renamed to
   their stable genN names so trace keys survive regeneration. *)

type flavor = Mini | Quick | Full

let flavor_name = function Mini -> "mini" | Quick -> "quick" | Full -> "full"

let flavor_of_name = function
  | "mini" -> Some Mini
  | "quick" -> Some Quick
  | "full" -> Some Full
  | _ -> None

let mini_names = [ "wc"; "sieve"; "calc"; "crc" ]

let rename_generated (e : Server.Workload.entry) =
  if Corpus.Programs.find e.Server.Workload.name <> None then e
  else
    { e with
      Server.Workload.name =
        Printf.sprintf "gen%d" e.Server.Workload.fn_count }

let publish engine flavor =
  match flavor with
  | Mini ->
    List.map
      (fun n ->
        match Corpus.Programs.find n with
        | Some p -> Server.Workload.catalog_entry engine p
        | None -> failwith ("Sim.Catalog: unknown corpus program " ^ n))
      mini_names
  | Quick ->
    List.map rename_generated
      (Server.Workload.build_catalog
         ~generated:[ { Corpus.Gen.functions = 12; seed = 1017L; bias16 = false } ]
         engine)
  | Full ->
    List.map rename_generated (Server.Workload.build_catalog engine)
