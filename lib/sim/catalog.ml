(* Catalog flavors: the key spaces traces are cut against.

   Mini keeps unit tests fast (four small programs publish in well
   under a second); Quick matches the drivers' --quick corpus; Full is
   the complete workload catalog. Generated programs are renamed to
   their stable genN names so trace keys survive regeneration. *)

type flavor = Mini | Quick | Full | Versioned

let flavor_name = function
  | Mini -> "mini"
  | Quick -> "quick"
  | Full -> "full"
  | Versioned -> "versioned"

let flavor_of_name = function
  | "mini" -> Some Mini
  | "quick" -> Some Quick
  | "full" -> Some Full
  | "versioned" -> Some Versioned
  | _ -> None

let mini_names = [ "wc"; "sieve"; "calc"; "crc" ]

(* ---- versions ---- *)

(* The update-channel key space: each mini program under its current
   key, plus an "old version" under [key@1]. The old version is the
   same source with an extra (never-called) function, so the two IRs
   share every live function verbatim — exactly the near-identical
   pair a fleet sees across a release, and what makes a
   function-granular delta small. *)

let old_version_key k = k ^ "@1"

let is_old_version k =
  let n = String.length k in
  n >= 2 && String.sub k (n - 2) 2 = "@1"

let old_version_pad =
  "\nint upd_retired_helper(int a) { return a * 3 + 7; }\n"

let old_version_of (e : Corpus.Programs.entry) =
  {
    e with
    Corpus.Programs.name = old_version_key e.Corpus.Programs.name;
    source = e.Corpus.Programs.source ^ old_version_pad;
  }

let rename_generated (e : Server.Workload.entry) =
  if Corpus.Programs.find e.Server.Workload.name <> None then e
  else
    { e with
      Server.Workload.name =
        Printf.sprintf "gen%d" e.Server.Workload.fn_count }

let mini_prog n =
  match Corpus.Programs.find n with
  | Some p -> p
  | None -> failwith ("Sim.Catalog: unknown corpus program " ^ n)

let publish engine flavor =
  match flavor with
  | Mini ->
    List.map
      (fun n -> Server.Workload.catalog_entry engine (mini_prog n))
      mini_names
  | Versioned ->
    List.concat_map
      (fun n ->
        let p = mini_prog n in
        [
          Server.Workload.catalog_entry engine p;
          Server.Workload.catalog_entry engine (old_version_of p);
        ])
      mini_names
  | Quick ->
    List.map rename_generated
      (Server.Workload.build_catalog
         ~generated:[ { Corpus.Gen.functions = 12; seed = 1017L; bias16 = false } ]
         engine)
  | Full ->
    List.map rename_generated (Server.Workload.build_catalog engine)
