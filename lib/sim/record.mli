(** Capture a live run as a trace.

    A {!collector} accumulates events from either observer hook — the
    in-process synthetic workload ({!Server.Workload.run}'s [observe])
    or the TCP load generator ({!Net.Load.run}'s [observe]) — and cuts
    a {!Trace.t}. Timestamps are synthesized from a seeded PRNG (small
    gaps in arrival order), so a captured trace is deterministic for a
    deterministic source. *)

type collector

val collector : ?seed:int64 -> unit -> collector
(** [seed] (default 1) drives the synthesized inter-arrival gaps. *)

val observe_workload : collector -> Server.Workload.observation -> unit
(** Feed to [Server.Workload.run ~observe]. Client ids are derived from
    the profile name (the workload draws a profile per request, not a
    client). *)

val observe_load :
  collector -> digest_to_key:(string -> string) -> Net.Load.observation -> unit
(** Feed to [Net.Load.run ~observe]. [digest_to_key] maps a catalog
    digest back to its program name (trace keys are names). *)

val events : collector -> Trace.event list
(** Captured so far, in arrival order. *)

val trace :
  collector -> scenario:string -> catalog:string -> seed:int64 -> Trace.t

val of_workload :
  Server.t ->
  ?profiles:Server.Profile.t list ->
  ?config:Server.Workload.config ->
  catalog_name:string ->
  Server.Workload.entry list ->
  Server.Workload.summary * Trace.t
(** Run the synthetic workload and capture it in one step; the trace's
    scenario is ["workload"], its seed the workload's. *)
