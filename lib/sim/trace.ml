(* The versioned fleet-trace format: mcc-trace 1.

   Same shape as the policy table (mcc-policy 1): a version header, a
   few "meta" provenance lines, then one "ev" line per request. Text on
   purpose — traces are committed to the repo as golden scenarios, and
   a reviewer must be able to read a diff of one.

   The reader treats its input as untrusted (traces cross machines and
   are fuzzed like every other decoder): every failure is a typed
   Decode_error with the line number as position, never an exception. *)

type op = Fetch | Stream | Resume | Update

let op_name = function
  | Fetch -> "fetch"
  | Stream -> "stream"
  | Resume -> "resume"
  | Update -> "update"

let op_of_name = function
  | "fetch" -> Some Fetch
  | "stream" -> Some Stream
  | "resume" -> Some Resume
  | "update" -> Some Update
  | _ -> None

type fault = { fkind : Support.Fault.kind; fseed : int64 }

type event = {
  t_ms : int;
  client : string;
  profile : string;
  op : op;
  key : string;
  fault : fault option;
}

type t = {
  scenario : string;
  catalog : string;
  seed : int64;
  events : event list;
}

let fault_kind_of_name name =
  Array.find_opt
    (fun k -> Support.Fault.kind_name k = name)
    Support.Fault.kinds

(* ---- writer ---- *)

let to_string t =
  let b = Buffer.create (64 + (48 * List.length t.events)) in
  Buffer.add_string b "mcc-trace 1\n";
  Buffer.add_string b ("meta scenario " ^ t.scenario ^ "\n");
  Buffer.add_string b ("meta catalog " ^ t.catalog ^ "\n");
  Buffer.add_string b (Printf.sprintf "meta seed %Ld\n" t.seed);
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "ev %d %s %s %s %s" e.t_ms e.client e.profile
           (op_name e.op) e.key);
      (match e.fault with
      | None -> ()
      | Some f ->
        Buffer.add_string b
          (Printf.sprintf " fault %s %Ld" (Support.Fault.kind_name f.fkind)
             f.fseed));
      Buffer.add_char b '\n')
    t.events;
  Buffer.contents b

(* ---- total reader ---- *)

let default_max_events = 200_000

let fail ~pos kind msg = Support.Decode_error.fail ~decoder:"trace" ~kind ~pos msg

let of_string ?(max_events = default_max_events) s =
  Support.Decode_error.guard ~decoder:"trace" @@ fun () ->
  let lines = String.split_on_char '\n' s in
  let scenario = ref "" and catalog = ref "" and seed = ref 0L in
  let events = ref [] and n_events = ref 0 in
  let last_t = ref 0 in
  let saw_header = ref false in
  let token_must_be_simple ~pos what tok =
    if tok = "" then
      fail ~pos Support.Decode_error.Bad_value (what ^ " is empty")
  in
  let parse_int ~pos what tok =
    match int_of_string_opt tok with
    | Some v -> v
    | None ->
      fail ~pos Support.Decode_error.Bad_value
        (Printf.sprintf "%s %S is not an integer" what tok)
  in
  let parse_int64 ~pos what tok =
    match Int64.of_string_opt tok with
    | Some v -> v
    | None ->
      fail ~pos Support.Decode_error.Bad_value
        (Printf.sprintf "%s %S is not an integer" what tok)
  in
  List.iteri
    (fun i raw ->
      let pos = i + 1 in
      let line = String.trim raw in
      if line = "" || line.[0] = '#' then ()
      else if not !saw_header then begin
        if line <> "mcc-trace 1" then
          fail ~pos Support.Decode_error.Bad_magic
            (Printf.sprintf "expected \"mcc-trace 1\", got %S" line);
        saw_header := true
      end
      else
        match
          String.split_on_char ' ' line |> List.filter (( <> ) "")
        with
        | "meta" :: rest -> (
          if !events <> [] then
            fail ~pos Support.Decode_error.Inconsistent
              "meta line after the first event";
          match rest with
          | [ "scenario"; v ] -> scenario := v
          | [ "catalog"; v ] -> catalog := v
          | [ "seed"; v ] -> seed := parse_int64 ~pos "seed" v
          | key :: _ ->
            fail ~pos Support.Decode_error.Bad_value
              (Printf.sprintf "unknown or malformed meta %S" key)
          | [] ->
            fail ~pos Support.Decode_error.Bad_value "empty meta line")
        | "ev" :: rest ->
          let t_ms, client, profile, opname, key, fault_toks =
            match rest with
            | [ t; c; p; o; k ] -> (t, c, p, o, k, [])
            | [ t; c; p; o; k; "fault"; fk; fs ] -> (t, c, p, o, k, [ fk; fs ])
            | _ ->
              fail ~pos Support.Decode_error.Bad_value
                (Printf.sprintf "event has %d fields, want 5 or 8"
                   (List.length rest + 1))
          in
          let t_ms = parse_int ~pos "timestamp" t_ms in
          if t_ms < 0 then
            fail ~pos Support.Decode_error.Bad_value "negative timestamp";
          if t_ms < !last_t then
            fail ~pos Support.Decode_error.Inconsistent
              (Printf.sprintf "timestamp %d before predecessor %d" t_ms !last_t);
          last_t := t_ms;
          token_must_be_simple ~pos "client" client;
          token_must_be_simple ~pos "profile" profile;
          token_must_be_simple ~pos "key" key;
          let op =
            match op_of_name opname with
            | Some op -> op
            | None ->
              fail ~pos Support.Decode_error.Bad_value
                (Printf.sprintf "unknown op %S" opname)
          in
          let fault =
            match fault_toks with
            | [] -> None
            | [ fk; fs ] -> (
              match fault_kind_of_name fk with
              | None ->
                fail ~pos Support.Decode_error.Bad_value
                  (Printf.sprintf "unknown fault kind %S" fk)
              | Some fkind ->
                Some { fkind; fseed = parse_int64 ~pos "fault seed" fs })
            | _ -> assert false
          in
          incr n_events;
          if !n_events > max_events then
            fail ~pos Support.Decode_error.Limit
              (Printf.sprintf "more than %d events" max_events);
          events := { t_ms; client; profile; op; key; fault } :: !events
        | tok :: _ ->
          fail ~pos Support.Decode_error.Bad_value
            (Printf.sprintf "unknown record %S" tok)
        | [] -> ())
    lines;
  if not !saw_header then
    fail ~pos:1 Support.Decode_error.Truncated "missing mcc-trace header";
  {
    scenario = !scenario;
    catalog = !catalog;
    seed = !seed;
    events = List.rev !events;
  }

(* ---- files ---- *)

let save path t =
  let oc = open_out_bin path in
  output_string oc (to_string t);
  close_out oc

let load ?max_events path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_string ?max_events s
  | exception Sys_error msg ->
    Error
      {
        Support.Decode_error.decoder = "trace";
        kind = Support.Decode_error.Truncated;
        pos = 0;
        msg;
      }
