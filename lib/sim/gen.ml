(* Scenario generators for the golden trace corpus.

   Each generator is a pure function of (seed, events, keys): clients
   are synthetic ("c0".."cN"), each pinned to a profile; program
   popularity is the same Zipf flavour the live workload uses (weight
   1000/(rank+1) in key order); timestamps advance by seeded gaps, so
   every cut of a scenario is byte-identical for a given seed.

   Streaming ops go to clients whose profile prefers streaming
   (embedded): a Stream event is a handshake on first touch and the
   next chunk afterwards, and roughly a tenth of them are followed by a
   Resume — the retransmit path a dropped response forces. *)

type spec = {
  sname : string;
  sdesc : string;
  generate : seed:int64 -> events:int -> keys:string list -> Trace.t;
}

let profile_names =
  List.map
    (fun (p : Server.Profile.t) -> p.Server.Profile.name)
    Server.Workload.default_profiles

let is_streaming_profile name =
  List.exists
    (fun (p : Server.Profile.t) ->
      p.Server.Profile.name = name && p.Server.Profile.prefers_streaming)
    Server.Workload.default_profiles

(* List.init with a guaranteed left-to-right evaluation order — the
   PRNG is threaded through f, so the order IS the scenario *)
let tabulate n f =
  let rec go i = if i >= n then [] else let e = f i in e :: go (i + 1) in
  go 0

(* clients c0..c(n-1), profile assigned round-robin from [profiles] *)
let make_clients ~n profiles =
  let profs = Array.of_list profiles in
  Array.init n (fun i ->
      (Printf.sprintf "c%d" i, profs.(i mod Array.length profs)))

let zipf_pop keys =
  List.mapi (fun rank k -> (max 1 (1000 / (rank + 1)), k)) keys

(* tail-heavy popularity: old clients keep asking for the cold keys.
   Weights attach to reversed ranks; the assoc order itself is
   irrelevant to Prng.weighted. *)
let reverse_zipf_pop keys = zipf_pop (List.rev keys)

let event rng ~t ~client ~profile ~key ?fault () =
  let op =
    if is_streaming_profile profile then
      if Support.Prng.int rng 10 = 0 then Trace.Resume else Trace.Stream
    else Trace.Fetch
  in
  { Trace.t_ms = t; client; profile; op; key; fault }

let cut ~sname ~seed evs =
  { Trace.scenario = sname; catalog = ""; seed; events = evs }

(* ---- steady ---- *)

let steady_step rng clients pop t =
  let client, profile = Support.Prng.pick rng clients in
  let key = Support.Prng.weighted rng pop in
  event rng ~t ~client ~profile ~key ()

let gen_steady ~seed ~events ~keys =
  let rng = Support.Prng.create seed in
  let clients = make_clients ~n:12 profile_names in
  let pop = zipf_pop keys in
  let t = ref 0 in
  let evs =
    tabulate events (fun _ ->
        t := !t + Support.Prng.int rng 40;
        steady_step rng clients pop !t)
  in
  cut ~sname:"steady" ~seed evs

(* ---- flash crowd ---- *)

(* A calm fleet, then a thundering herd on the hottest program at
   near-zero gaps (a release announcement), then calm again. This is
   the trace the A/B gate runs: the policy table's picks get hammered
   where they matter most. *)
let gen_flash_crowd ~seed ~events ~keys =
  let rng = Support.Prng.create seed in
  let calm = make_clients ~n:12 profile_names in
  let crowd = make_clients ~n:24 [ "modem-jit"; "lan-jit" ] in
  let crowd =
    Array.map (fun (c, p) -> ("crowd-" ^ c, p)) crowd
  in
  let pop = zipf_pop keys in
  let hot = List.hd keys in
  let n1 = events * 3 / 10 and n2 = events / 2 in
  let t = ref 0 in
  let evs =
    tabulate events (fun i ->
        if i < n1 || i >= n1 + n2 then begin
          t := !t + Support.Prng.int rng 40;
          steady_step rng calm pop !t
        end
        else begin
          t := !t + Support.Prng.int rng 3;
          let client, profile = Support.Prng.pick rng crowd in
          event rng ~t:!t ~client ~profile ~key:hot ()
        end)
  in
  cut ~sname:"flash-crowd" ~seed evs

(* ---- corruption burst ---- *)

(* Steady traffic whose middle third carries fault directives: cached
   artifacts of the event's key are mutated just before the request, so
   verify-before-serve, quarantine, degradation and the eventual heals
   all fire — deterministically, because each fault carries its own
   mutation seed. *)
let gen_corruption_burst ~seed ~events ~keys =
  let rng = Support.Prng.create seed in
  let clients = make_clients ~n:12 profile_names in
  let pop = zipf_pop keys in
  let t = ref 0 in
  let kinds = Support.Fault.kinds in
  let evs =
    tabulate events (fun i ->
        t := !t + Support.Prng.int rng 40;
        let in_burst = i >= events / 3 && i < events * 2 / 3 in
        let fault =
          if in_burst && Support.Prng.int rng 4 = 0 then
            Some
              {
                Trace.fkind = kinds.(Support.Prng.int rng (Array.length kinds));
                fseed = Support.Prng.next64 rng;
              }
          else None
        in
        let client, profile = Support.Prng.pick rng clients in
        let key = Support.Prng.weighted rng pop in
        event rng ~t:!t ~client ~profile ~key ?fault ())
  in
  cut ~sname:"corruption-burst" ~seed evs

(* ---- mixed profiles ---- *)

(* Half the fleet is legacy (modem links, embedded pagers) pulling the
   catalog tail, half is modern (lan, datacenter) on the hot head —
   the heterogeneous mix where per-profile representation picks
   diverge the most. *)
let gen_mixed_profiles ~seed ~events ~keys =
  let rng = Support.Prng.create seed in
  let legacy = make_clients ~n:8 [ "modem-jit"; "embedded" ] in
  let legacy = Array.map (fun (c, p) -> ("old-" ^ c, p)) legacy in
  let modern = make_clients ~n:8 [ "lan-jit"; "datacenter" ] in
  let modern = Array.map (fun (c, p) -> ("new-" ^ c, p)) modern in
  let hot_pop = zipf_pop keys in
  let cold_pop = reverse_zipf_pop keys in
  let t = ref 0 in
  let evs =
    tabulate events (fun _ ->
        t := !t + Support.Prng.int rng 40;
        if Support.Prng.bool rng then
          let client, profile = Support.Prng.pick rng legacy in
          event rng ~t:!t ~client ~profile
            ~key:(Support.Prng.weighted rng cold_pop)
            ()
        else
          let client, profile = Support.Prng.pick rng modern in
          event rng ~t:!t ~client ~profile
            ~key:(Support.Prng.weighted rng hot_pop)
            ())
  in
  cut ~sname:"mixed-profiles" ~seed evs

(* ---- update storm ---- *)

(* A fleet on mixed old versions upgrading at once. Cut against the
   "versioned" catalog (keys [X] plus their old versions [X@1]).

   Phase 1 (rollout): each client fetches the old version of most
   programs — a seeded ~1-in-5 of the (client, program) pairs is
   skipped, so the fleet is genuinely mixed: some clients will have no
   base to patch against. Phase 2 (the storm): a release lands and
   every event is an Update on a current key at near-zero gaps — the
   thundering upgrade herd. Clients holding the old version advertise
   it (plus the shared dictionary) and can be served the delta update
   channel; the rest get full redelivery. *)
let gen_update_storm ~seed ~events ~keys =
  let rng = Support.Prng.create seed in
  (* the herd that matters for an update channel is the fleet behind
     real links: JIT clients on modem/lan (flash-crowd's crowd) —
     datacenter peers just re-pull natively and embedded pagers
     stream, so neither exercises the patch path *)
  let clients = make_clients ~n:16 [ "modem-jit"; "lan-jit" ] in
  let current = List.filter (fun k -> not (Catalog.is_old_version k)) keys in
  let t = ref 0 in
  let rollout =
    Array.to_list clients
    |> List.concat_map (fun (client, profile) ->
           List.filter_map
             (fun k ->
               if Support.Prng.int rng 5 = 0 then None
               else begin
                 t := !t + Support.Prng.int rng 40;
                 Some
                   {
                     Trace.t_ms = !t;
                     client;
                     profile;
                     op = Trace.Fetch;
                     key = Catalog.old_version_key k;
                     fault = None;
                   }
               end)
             current)
  in
  let pop = zipf_pop current in
  let storm =
    tabulate
      (max 0 (events - List.length rollout))
      (fun _ ->
        t := !t + Support.Prng.int rng 3;
        let client, profile = Support.Prng.pick rng clients in
        {
          Trace.t_ms = !t;
          client;
          profile;
          op = Trace.Update;
          key = Support.Prng.weighted rng pop;
          fault = None;
        })
  in
  cut ~sname:"update-storm" ~seed (rollout @ storm)

(* ---- paging ---- *)

(* A memory-constrained fleet: embedded pagers and modem JIT clients
   whose device RAM holds only a few programs, so each client cycles a
   small per-client working set — exactly the re-reference pattern a
   demand pager rewards — with seeded one-shot excursions into the
   catalog tail (the cold faults). Halfway through, every working set
   rotates to a different catalog window: the fleet-wide workload shift
   that forces full cache turnover. *)
let gen_paging ~seed ~events ~keys =
  let rng = Support.Prng.create seed in
  let clients = make_clients ~n:10 [ "embedded"; "modem-jit" ] in
  let karr = Array.of_list keys in
  let nk = Array.length karr in
  let wset_size = min 3 nk in
  (* client ci's resident window into the catalog during [phase] *)
  let wset phase ci =
    let base = ((ci * wset_size) + (phase * max 1 (nk / 2))) mod nk in
    Array.init wset_size (fun j -> karr.((base + j) mod nk))
  in
  let t = ref 0 in
  let evs =
    tabulate events (fun i ->
        t := !t + Support.Prng.int rng 25;
        let ci = Support.Prng.int rng (Array.length clients) in
        let client, profile = clients.(ci) in
        let phase = if i < events / 2 then 0 else 1 in
        let key =
          if Support.Prng.int rng 6 = 0 then
            karr.(Support.Prng.int rng nk)  (* cold-tail excursion *)
          else Support.Prng.pick rng (wset phase ci)
        in
        event rng ~t:!t ~client ~profile ~key ())
  in
  cut ~sname:"paging" ~seed evs

let all =
  [
    { sname = "steady"; sdesc = "steady-state Zipf mix over all profiles";
      generate = gen_steady };
    { sname = "flash-crowd";
      sdesc = "calm fleet, then a thundering herd on the hottest program";
      generate = gen_flash_crowd };
    { sname = "corruption-burst";
      sdesc = "steady mix whose middle third corrupts cached artifacts";
      generate = gen_corruption_burst };
    { sname = "mixed-profiles";
      sdesc = "legacy clients on the catalog tail vs modern on the head";
      generate = gen_mixed_profiles };
    { sname = "update-storm";
      sdesc =
        "fleet on mixed old versions upgrading at once (cut against the \
         versioned catalog)";
      generate = gen_update_storm };
    { sname = "paging";
      sdesc =
        "memory-constrained fleet cycling small working sets with cold-tail \
         excursions, rotating the sets mid-run";
      generate = gen_paging };
  ]

let find name = List.find_opt (fun s -> s.sname = name) all
