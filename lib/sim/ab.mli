(** A/B policy diffing: two engine configurations, one trace.

    Both sides replay the {e same} trace through {!Replay.run} (fresh
    engines, independent stores), so every divergence in the diff is
    attributable to the configuration delta — typically a tuned
    [POLICY.tune] table versus live scoring, or two cache budgets.

    The gate consumed by [perf_gate --ab] is the flat [gate] object in
    {!to_json}: side A's bytes-on-wire and overall p99 against side
    B's. *)

type diff = {
  a : Replay.report;
  b : Replay.report;
  d_bytes : int;          (** [a.bytes_on_wire - b.bytes_on_wire] *)
  d_bytes_pct : float;    (** signed, relative to B (0 when B is 0) *)
  d_p99_ms : float;       (** overall p99 delta, A minus B *)
  d_hit_rate : float;     (** cache hit-rate delta, A minus B *)
  same_events : bool;     (** event CRCs match — same requests hit both *)
}

val run :
  a:Replay.config -> b:Replay.config -> Trace.t -> diff
(** Replay under [a], then under [b], and diff. *)

val render : diff -> string
(** Side-by-side text report: one row per metric, columns A / B /
    delta, plus per-op-class latency lines. *)

val to_json : diff -> string
(** ["mcc-ab 1"]: both full reports under ["a"] / ["b"], the deltas,
    and the flat ["gate"] object ([a_bytes] / [b_bytes] / [a_p99_ms] /
    [b_p99_ms]) that [perf_gate --ab] scans without a JSON parser. *)

val indent : string -> string
(** Two-space indent of every non-empty line — for nesting a rendered
    report inside another JSON document. *)
