type diff = {
  a : Replay.report;
  b : Replay.report;
  d_bytes : int;
  d_bytes_pct : float;
  d_p99_ms : float;
  d_hit_rate : float;
  same_events : bool;
}

let run ~(a : Replay.config) ~(b : Replay.config) trace =
  let ra = Replay.run ~config:a trace in
  let rb = Replay.run ~config:b trace in
  let d_bytes = ra.Replay.r_bytes_on_wire - rb.Replay.r_bytes_on_wire in
  let d_bytes_pct =
    if rb.Replay.r_bytes_on_wire = 0 then 0.
    else float_of_int d_bytes /. float_of_int rb.Replay.r_bytes_on_wire *. 100.
  in
  {
    a = ra;
    b = rb;
    d_bytes;
    d_bytes_pct;
    d_p99_ms =
      ra.Replay.r_all.Replay.lat.Support.Quantile.p99_ms
      -. rb.Replay.r_all.Replay.lat.Support.Quantile.p99_ms;
    d_hit_rate = ra.Replay.r_cache_hit_rate -. rb.Replay.r_cache_hit_rate;
    same_events = ra.Replay.r_event_crc = rb.Replay.r_event_crc;
  }

let render (d : diff) =
  let a = d.a and b = d.b in
  let buf = Buffer.create 1024 in
  let row fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  row "mcc-ab 1  scenario=%s catalog=%s seed=%Ld events=%d" a.Replay.r_scenario
    a.Replay.r_catalog a.Replay.r_seed a.Replay.r_events;
  row "%-18s %14s %14s %14s" "" ("A:" ^ a.Replay.r_label)
    ("B:" ^ b.Replay.r_label) "delta (A-B)";
  row "%-18s %14d %14d %14d" "bytes on wire" a.Replay.r_bytes_on_wire
    b.Replay.r_bytes_on_wire d.d_bytes;
  row "%-18s %14s %14s %13.2f%%" "bytes delta" "" "" d.d_bytes_pct;
  row "%-18s %14.4f %14.4f %14.4f" "cache hit rate" a.Replay.r_cache_hit_rate
    b.Replay.r_cache_hit_rate d.d_hit_rate;
  row "%-18s %14d %14d %14d" "degraded" a.Replay.r_degraded b.Replay.r_degraded
    (a.Replay.r_degraded - b.Replay.r_degraded);
  row "%-18s %14d %14d %14d" "decode failures" a.Replay.r_decode_failures
    b.Replay.r_decode_failures
    (a.Replay.r_decode_failures - b.Replay.r_decode_failures);
  row "%-18s %14d %14d %14d" "quarantine heals" a.Replay.r_quarantine_heals
    b.Replay.r_quarantine_heals
    (a.Replay.r_quarantine_heals - b.Replay.r_quarantine_heals);
  row "%-18s %14d %14d %14d" "policy hits" a.Replay.r_policy_hits
    b.Replay.r_policy_hits
    (a.Replay.r_policy_hits - b.Replay.r_policy_hits);
  let lat name (oa : Replay.opstats) (ob : Replay.opstats) =
    row "%-18s %14.2f %14.2f %14.2f" (name ^ " p99 ms")
      oa.Replay.lat.Support.Quantile.p99_ms ob.Replay.lat.Support.Quantile.p99_ms
      (oa.Replay.lat.Support.Quantile.p99_ms -. ob.Replay.lat.Support.Quantile.p99_ms);
    row "%-18s %14.2f %14.2f %14.2f" (name ^ " p50 ms")
      oa.Replay.lat.Support.Quantile.p50_ms ob.Replay.lat.Support.Quantile.p50_ms
      (oa.Replay.lat.Support.Quantile.p50_ms -. ob.Replay.lat.Support.Quantile.p50_ms)
  in
  lat "fetch" a.Replay.r_fetch b.Replay.r_fetch;
  lat "stream" a.Replay.r_stream b.Replay.r_stream;
  lat "resume" a.Replay.r_resume b.Replay.r_resume;
  lat "all" a.Replay.r_all b.Replay.r_all;
  row "%-18s %14s" "same events"
    (if d.same_events then "yes" else "NO (configs changed the trace?)");
  Buffer.contents buf

let indent s =
  String.concat "\n"
    (List.map (fun l -> if l = "" then l else "  " ^ l)
       (String.split_on_char '\n' s))

let to_json (d : diff) =
  String.concat "\n"
    [
      "{";
      "  \"format\": \"mcc-ab 1\",";
      Printf.sprintf "  \"scenario\": \"%s\"," d.a.Replay.r_scenario;
      Printf.sprintf "  \"a\":\n%s," (indent (Replay.to_json d.a));
      Printf.sprintf "  \"b\":\n%s," (indent (Replay.to_json d.b));
      Printf.sprintf "  \"d_bytes\": %d," d.d_bytes;
      Printf.sprintf "  \"d_bytes_pct\": %.3f," d.d_bytes_pct;
      Printf.sprintf "  \"d_p99_ms\": %.3f," d.d_p99_ms;
      Printf.sprintf "  \"d_hit_rate\": %.4f," d.d_hit_rate;
      Printf.sprintf "  \"same_events\": %b," d.same_events;
      (* flat gate block: perf_gate --ab scans these by key, last
         occurrence wins, so they must come after the nested reports *)
      Printf.sprintf
        "  \"gate\": {\"a_bytes\": %d, \"b_bytes\": %d, \"a_p99_ms\": %.3f, \"b_p99_ms\": %.3f}"
        d.a.Replay.r_bytes_on_wire d.b.Replay.r_bytes_on_wire
        d.a.Replay.r_all.Replay.lat.Support.Quantile.p99_ms
        d.b.Replay.r_all.Replay.lat.Support.Quantile.p99_ms;
      "}";
    ]
