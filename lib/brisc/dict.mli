(** Greedy BRISC dictionary construction (§4.3).

    The compressor starts from the base instruction patterns the input
    uses (plus the [epi] macro), scans the program repeatedly generating
    candidate patterns by one-field operand specialization and adjacent
    opcode combination (taking the cross product of each side's
    augmented operand-specialized set), ranks candidates in a heap by

      B  =  P − W

    where [P] is the estimated program-size reduction minus the
    dictionary entry's own file cost and [W] is the decompressor
    working-set cost (average of the x86-like and PowerPC-like native
    template sizes), adds the [K] best per pass, and rewrites the
    program to use them. Construction stops after a pass that yields
    fewer than [K] candidates with positive benefit.

    In abundant-memory mode ([ignore_w]) the benefit is just [P], the
    variant the paper mentions for hosts where decompressor table space
    is free; the ablation bench measures the difference.

    The pass loop is incremental: the candidate table persists between
    passes and only {e dirty} items — those the previous rewrite changed
    or killed, plus each one's nearest live predecessor (its combination
    partner) — are rescanned, with their stale savings contributions
    retracted first. Rewrites go through a (head-opcode, arity) shape
    index instead of scanning every new entry. Neither changes the
    output: [~full_scan:true] forces the original rescan-everything
    behavior and builds a byte-identical dictionary (the corpus
    equivalence test asserts this), as does fanning the per-function
    scan across a domain pool ([?pool]). Ties in the benefit heap break
    lexicographically on {!Pat.key} so selection never depends on
    hash-table iteration order. *)

type item = {
  mutable pat : int;               (** dictionary index *)
  mutable insts : Vm.Isa.instr list;  (** original VM instructions (1..4) *)
  mutable live : bool;             (** false once merged into a neighbour *)
  block : int;                     (** basic-block id within the function *)
}

type compiled_func = {
  cf_name : string;
  items : item array;
  labels : (string * int) list;
      (** label name -> item index it precedes (item indices into
          [items]; dead items are skipped at emission) *)
}

(** Per-pass compressor telemetry. *)
type pass_stat = {
  ps_pass : int;
  ps_live_items : int;        (** live items after this pass's rewrite *)
  ps_items_scanned : int;     (** dirty items rescanned this pass *)
  ps_contributions : int;     (** candidate savings contributions recorded *)
  ps_candidate_table : int;   (** candidate table size after the scan *)
  ps_heap_size : int;         (** positive-benefit candidates ranked *)
  ps_selected : int;          (** entries adopted (< k ends the loop) *)
  ps_scan_s : float;          (** wall time: candidate generation + merge *)
  ps_rank_s : float;          (** wall time: heap build + top-k selection *)
  ps_rewrite_s : float;       (** wall time: indexed rewrite + dirty sweep *)
}

type t = {
  entries : Pat.pat array;         (** the dictionary; base entries first *)
  base_count : int;                (** how many are base patterns + epi *)
  funcs : compiled_func list;
  globals : (string * int * int list option) list;
  candidates_tested : int;         (** §4.3 reports 93,211 for gcc *)
  passes : int;
  pass_stats : pass_stat list;     (** oldest pass first *)
  scan_domains : int;              (** pool lanes the scan fanned across *)
}

val build :
  ?k:int ->
  ?ignore_w:bool ->
  ?max_passes:int ->
  ?full_scan:bool ->
  ?pool:Support.Pool.t ->
  Vm.Isa.vprogram ->
  t
(** Run the compressor on a VM program. [k] defaults to the paper's 20.
    [full_scan] (default false) disables incremental candidate
    maintenance and rescans every item each pass — same output, the
    original cost. [pool] fans the per-function candidate scan across
    the pool's domains; results are merged in deterministic (function,
    item) order, so the dictionary is byte-identical at any pool size. *)

val apply_dictionary : t -> Vm.Isa.vprogram -> t
(** Re-encode a different program with an already-built dictionary and
    no further candidate search (the paper applies the gcc dictionary to
    the salt/pepper example). Items that match no entry keep their base
    pattern (base entries for missing shapes are appended). *)

val compressed_code_bytes : t -> int
(** Operand+opcode bytes of all live items (excluding dictionary and
    header). *)

val dictionary_bytes : t -> int
(** File cost of the non-base dictionary entries. *)

val total_scan_s : t -> float
val total_rank_s : t -> float
val total_rewrite_s : t -> float
val total_items_scanned : t -> int

val item_bytes : t -> item -> int
val stats_to_string : t -> string
