(** The BRISC container: dictionary + Markov tables + byte-coded,
    block-addressable code.

    Per function the code is a flat byte string; every instruction
    starts on a byte boundary (opcode byte(s), then its wild operand
    values packed as a nibble stream padded to a byte). A label table
    maps each branch-target label to its byte offset, giving the random
    access to basic blocks that in-place interpretation requires.

    An instruction is coded in the block-start Markov context when it is
    at offset 0, at a label offset, or immediately after a call (so
    control can land there without knowing the linear predecessor);
    otherwise its context is the previous instruction's dictionary
    entry. *)

type ifunc = {
  if_name : string;
  label_offsets : int array;   (** label id -> byte offset *)
  code : string;
}

type image = {
  entries : Pat.pat array;
  base_count : int;
  markov : Markov.t;
  symbols : string array;
  globals : (string * int * int list option) list;
  ifuncs : ifunc array;
}

val of_dict : Dict.t -> image
(** Assign Markov codes and pack every function.
    @raise Failure if a function needs more than 256 labels or 65536
    code bytes (documented container limits). *)

val to_bytes : image -> string

val of_bytes : string -> (image, Support.Decode_error.t) result
(** Total inverse of {!to_bytes}: every count and symbol index is
    validated before allocation, and trailing bytes are rejected. *)

val of_bytes_exn : string -> image
(** As {!of_bytes} but raises {!Support.Decode_error.Fail}; for trusted
    inputs. *)

(** {2 Shared-dictionary container ("BRS2")}

    The same container minus the dictionary entries both sides already
    hold: the image's entry array must carry the pre-agreed shared set
    as a prefix, and only the entries past it travel, preceded by a
    4-byte CRC of the shared set's byte form so decoding against the
    wrong (or no) dictionary is a typed error. *)

val patterns_to_bytes : Pat.pat array -> string
(** Canonical byte form of a pattern set (count + per-entry encoding);
    the unit dictionaries are trained, shipped and CRC-pinned in. *)

val patterns_of_bytes :
  string -> (Pat.pat array, Support.Decode_error.t) result
(** Total inverse of {!patterns_to_bytes}. *)

val patterns_of_bytes_exn : string -> Pat.pat array

val to_bytes_shared : shared:Pat.pat array -> image -> string
(** @raise Invalid_argument if [shared] is not a prefix (by {!Pat.key})
    of the image's entries. *)

val of_bytes_shared_exn : shared:Pat.pat array -> string -> image
(** Total inverse of {!to_bytes_shared} given the same shared set; the
    returned image's entries are [shared] followed by the transmitted
    extras, so it decodes exactly like the full container's image.
    Raises {!Support.Decode_error.Fail} ([Inconsistent]) when the CRC
    shows the container was built against a different dictionary. *)

val code_size : image -> int
(** Bytes of instruction streams only. *)

val header_size : image -> int
(** Serialized size minus [code_size]: dictionary, Markov tables,
    symbols, label tables, globals. *)

val total_size : image -> int
(** [String.length (to_bytes image)]. *)

(** Decoded view of one instruction, shared by the decompressor, the
    direct interpreter and the JIT. *)
type decoded = {
  entry : int;                  (** dictionary index *)
  instrs : Vm.Isa.instr list;   (** concrete VM instructions *)
  next : int;                   (** byte offset after this instruction *)
}

val decode_at : image -> fidx:int -> ctx:int -> int -> decoded
(** Decode the instruction at a byte offset under a Markov context.
    Label operands come back as ["L<id>"] names; symbol operands as
    their names.
    @raise Support.Decode_error.Fail on a corrupt image (bad Markov
    code, out-of-range dictionary entry or symbol, truncated stream);
    callers decoding untrusted images run under
    {!Support.Decode_error.guard}. *)

val context_at : image -> fidx:int -> prev:int option -> int -> int
(** The Markov context in force at a byte offset: the block-start
    context at offset 0, label offsets and call-return points, else
    [ctx_of_entry prev]. [prev] is the previously decoded entry (None
    forces the block-start context, e.g. after a jump). *)
