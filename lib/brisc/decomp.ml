let decompress_exn (img : Emit.image) : Vm.Isa.vprogram =
  let funcs =
    Array.to_list
      (Array.mapi
         (fun fidx (f : Emit.ifunc) ->
           let len = String.length f.Emit.code in
           let out = ref [] in
           (* labels sorted by (offset, id) for stable insertion order *)
           let labels =
             Array.to_list (Array.mapi (fun id off -> (off, id)) f.Emit.label_offsets)
             |> List.sort compare
           in
           let pending = ref labels in
           let emit_labels_at off =
             let rec go () =
               match !pending with
               | (o, id) :: rest when o <= off ->
                 out := Vm.Isa.Label (Printf.sprintf "L%d" id) :: !out;
                 pending := rest;
                 go ()
               | _ -> ()
             in
             go ()
           in
           let pos = ref 0 in
           let prev = ref None in
           while !pos < len do
             emit_labels_at !pos;
             let ctx = Emit.context_at img ~fidx ~prev:!prev !pos in
             let d = Emit.decode_at img ~fidx ~ctx !pos in
             (* fuel: a decode that consumes no bytes can only come from
                a corrupt image and would loop here forever *)
             if d.Emit.next <= !pos then
               Support.Decode_error.fail ~decoder:"brisc-decomp"
                 ~kind:Support.Decode_error.Limit ~pos:!pos
                 (Printf.sprintf "no progress decoding %s at byte %d"
                    f.Emit.if_name !pos);
             List.iter (fun i -> out := i :: !out) d.Emit.instrs;
             prev := Some d.Emit.entry;
             pos := d.Emit.next
           done;
           emit_labels_at len;
           { Vm.Isa.name = f.Emit.if_name; code = List.rev !out })
         img.Emit.ifuncs)
  in
  { Vm.Isa.globals = img.Emit.globals; funcs }

let decompress img =
  Support.Decode_error.guard ~decoder:"brisc-decomp" (fun () ->
      decompress_exn img)

let normalize_labels (p : Vm.Isa.vprogram) : Vm.Isa.vprogram =
  let funcs =
    List.map
      (fun (f : Vm.Isa.vfunc) ->
        let mapping = Hashtbl.create 8 in
        let count = ref 0 in
        List.iter
          (fun i ->
            match i with
            | Vm.Isa.Label l ->
              if not (Hashtbl.mem mapping l) then begin
                Hashtbl.add mapping l (Printf.sprintf "L%d" !count);
                incr count
              end
            | _ -> ())
          f.Vm.Isa.code;
        let rename l =
          match Hashtbl.find_opt mapping l with
          | Some l' -> l'
          | None -> l
        in
        let code =
          List.map
            (fun (i : Vm.Isa.instr) ->
              match i with
              | Vm.Isa.Label l -> Vm.Isa.Label (rename l)
              | Vm.Isa.Br (r, a, b, l) -> Vm.Isa.Br (r, a, b, rename l)
              | Vm.Isa.Bri (r, a, v, l) -> Vm.Isa.Bri (r, a, v, rename l)
              | Vm.Isa.Jmp l -> Vm.Isa.Jmp (rename l)
              | i -> i)
            f.Vm.Isa.code
        in
        { f with Vm.Isa.code })
      p.Vm.Isa.funcs
  in
  { p with Vm.Isa.funcs }
