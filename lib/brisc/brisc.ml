module Pat = Pat
module Dict = Dict
module Markov = Markov
module Emit = Emit
module Decomp = Decomp
module Interp = Interp
module Jit = Jit

let compress ?k ?ignore_w ?full_scan ?pool vp =
  let d = Dict.build ?k ?ignore_w ?full_scan ?pool vp in
  Emit.of_dict d

let compress_with (img : Emit.image) vp =
  let t =
    {
      Dict.entries = img.Emit.entries;
      base_count = img.Emit.base_count;
      funcs = [];
      globals = [];
      candidates_tested = 0;
      passes = 0;
      pass_stats = [];
      scan_domains = 1;
    }
  in
  Emit.of_dict (Dict.apply_dictionary t vp)

let compress_shared ~(shared : Pat.pat array) vp =
  let t =
    {
      Dict.entries = shared;
      base_count = Array.length shared;
      funcs = [];
      globals = [];
      candidates_tested = 0;
      passes = 0;
      pass_stats = [];
      scan_domains = 1;
    }
  in
  Emit.of_dict (Dict.apply_dictionary t vp)

let to_bytes = Emit.to_bytes
let of_bytes = Emit.of_bytes
let of_bytes_exn = Emit.of_bytes_exn

type build_telemetry = {
  scan_s : float;
  rank_s : float;
  rewrite_s : float;
  items_scanned : int;
  domains : int;
  pass_stats : Dict.pass_stat list;
}

type report = {
  original_bytes : int;
  brisc_total : int;
  brisc_code : int;
  brisc_dict : int;
  dict_entries : int;
  base_entries : int;
  candidates_tested : int;
  passes : int;
  max_markov_successors : int;
  build : build_telemetry;
}

let measure ?k ?ignore_w ?full_scan ?pool vp =
  let d = Dict.build ?k ?ignore_w ?full_scan ?pool vp in
  let img = Emit.of_dict d in
  let total = Emit.total_size img in
  let code = Emit.code_size img in
  ( img,
    {
      original_bytes = Vm.Encode.program_size vp;
      brisc_total = total;
      brisc_code = code;
      brisc_dict = total - code;
      dict_entries = Array.length img.Emit.entries;
      base_entries = img.Emit.base_count;
      candidates_tested = d.Dict.candidates_tested;
      passes = d.Dict.passes;
      max_markov_successors = Markov.max_successors img.Emit.markov;
      build =
        {
          scan_s = Dict.total_scan_s d;
          rank_s = Dict.total_rank_s d;
          rewrite_s = Dict.total_rewrite_s d;
          items_scanned = Dict.total_items_scanned d;
          domains = d.Dict.scan_domains;
          pass_stats = d.Dict.pass_stats;
        };
    } )
