type ifunc = { if_name : string; label_offsets : int array; code : string }

type image = {
  entries : Pat.pat array;
  base_count : int;
  markov : Markov.t;
  symbols : string array;
  globals : (string * int * int list option) list;
  ifuncs : ifunc array;
}

let magic = "BRS1"

(* ---- nibble stream helpers ---- *)

type nibble_writer = { nbuf : Buffer.t; mutable pending : int; mutable have : bool }

let nw_create () = { nbuf = Buffer.create 64; pending = 0; have = false }

let nw_push w n =
  let n = n land 0xf in
  if w.have then begin
    Buffer.add_char w.nbuf (Char.chr ((w.pending lsl 4) lor n));
    w.have <- false
  end
  else begin
    w.pending <- n;
    w.have <- true
  end

let nw_value w v nibbles =
  for i = nibbles - 1 downto 0 do
    nw_push w ((v lsr (4 * i)) land 0xf)
  done

let nw_finish w =
  if w.have then begin
    Buffer.add_char w.nbuf (Char.chr (w.pending lsl 4));
    w.have <- false
  end;
  Buffer.contents w.nbuf

type nibble_reader = { src : string; mutable npos : int (* nibble index *) }

let nr_create src pos = { src; npos = pos * 2 }

let nr_next r =
  if r.npos / 2 >= String.length r.src then
    Support.Decode_error.fail ~decoder:"brisc"
      ~kind:Support.Decode_error.Truncated ~pos:(r.npos / 2)
      "nibble stream runs past end of input";
  let b = Char.code r.src.[r.npos / 2] in
  let n = if r.npos land 1 = 0 then b lsr 4 else b land 0xf in
  r.npos <- r.npos + 1;
  n

let nr_value r nibbles =
  let v = ref 0 in
  for _ = 1 to nibbles do
    v := (!v lsl 4) lor nr_next r
  done;
  !v

let nr_byte_pos r = (r.npos + 1) / 2

(* ---- field packing ---- *)

let sign_extend v bits =
  let m = 1 lsl (bits - 1) in
  if v land m <> 0 then v - (1 lsl bits) else v

let pack_field nw (w : Pat.slotw) (label_index : string -> int)
    (sym_index : string -> int) (f : Vm.Encode.field) =
  match (w, f) with
  | Pat.R4, Vm.Encode.Freg r -> nw_push nw r
  | Pat.I4x4, Vm.Encode.Fimm v -> nw_push nw (v / 4)
  | Pat.I8, Vm.Encode.Fimm v -> nw_value nw (v land 0xff) 2
  | Pat.I16, Vm.Encode.Fimm v -> nw_value nw (v land 0xffff) 4
  | Pat.I32, Vm.Encode.Fimm v -> nw_value nw (v land 0xFFFFFFFF) 8
  | Pat.LAB8, Vm.Encode.Flab l -> nw_value nw (label_index l) 2
  | Pat.LAB16, Vm.Encode.Flab l -> nw_value nw (label_index l) 4
  | Pat.SYM8, Vm.Encode.Fsym s -> nw_value nw (sym_index s) 2
  | Pat.SYM16, Vm.Encode.Fsym s -> nw_value nw (sym_index s) 4
  | _ -> failwith "Emit: field does not fit its slot width"

let unpack_field nr (w : Pat.slotw) : Vm.Encode.field =
  match w with
  | Pat.R4 -> Vm.Encode.Freg (nr_next nr)
  | Pat.I4x4 -> Vm.Encode.Fimm (4 * nr_next nr)
  | Pat.I8 -> Vm.Encode.Fimm (sign_extend (nr_value nr 2) 8)
  | Pat.I16 -> Vm.Encode.Fimm (sign_extend (nr_value nr 4) 16)
  | Pat.I32 -> Vm.Encode.Fimm (sign_extend (nr_value nr 8) 32)
  | Pat.LAB8 -> Vm.Encode.Flab (Printf.sprintf "LBL#%d" (nr_value nr 2))
  | Pat.LAB16 -> Vm.Encode.Flab (Printf.sprintf "LBL#%d" (nr_value nr 4))
  | Pat.SYM8 -> Vm.Encode.Fsym (Printf.sprintf "SYM#%d" (nr_value nr 2))
  | Pat.SYM16 -> Vm.Encode.Fsym (Printf.sprintf "SYM#%d" (nr_value nr 4))

let wild_widths (p : Pat.pat) =
  List.concat_map
    (fun (part : Pat.part) ->
      List.filter_map
        (fun s -> match s with Pat.Wild w -> Some w | Pat.Fixed _ -> None)
        part.Pat.slots)
    p.Pat.parts

let last_part_is_call (p : Pat.pat) =
  match List.rev p.Pat.parts with
  | last :: _ -> (
    match last.Pat.templ with
    | Vm.Isa.Call _ | Vm.Isa.Callr _ -> true
    | _ -> false)
  | [] -> false

(* ---- building the image from a dictionary ---- *)

let of_dict (d : Dict.t) : image =
  (* symbol table *)
  let syms = Hashtbl.create 64 in
  let sym_list = ref [] in
  let intern s =
    match Hashtbl.find_opt syms s with
    | Some i -> i
    | None ->
      let i = Hashtbl.length syms in
      Hashtbl.add syms s i;
      sym_list := s :: !sym_list;
      i
  in
  List.iter (fun (n, _, _) -> ignore (intern n)) d.Dict.globals;
  List.iter (fun cf -> ignore (intern cf.Dict.cf_name)) d.Dict.funcs;
  List.iter
    (fun cf ->
      Array.iter
        (fun (it : Dict.item) ->
          if it.Dict.live then
            List.iter
              (fun i ->
                List.iter
                  (fun f ->
                    match f with
                    | Vm.Encode.Fsym s -> ignore (intern s)
                    | _ -> ())
                  (Vm.Encode.fields i))
              it.Dict.insts)
        cf.Dict.items)
    d.Dict.funcs;
  let symbols = Array.of_list (List.rev !sym_list) in
  (* Pass A: collect Markov transitions; pass B: emit. The two passes
     walk items identically. *)
  let walk cf ~on_item =
    let n = Array.length cf.Dict.items in
    (* labels keyed by the item index they precede *)
    let labels_at = Hashtbl.create 8 in
    List.iteri
      (fun lid (_, idx) -> Hashtbl.add labels_at idx lid)
      cf.Dict.labels;
    let prev : int option ref = ref None in
    let prev_was_call = ref false in
    for i = 0 to n - 1 do
      let it = cf.Dict.items.(i) in
      if it.Dict.live then begin
        let labels_here = Hashtbl.find_all labels_at i in
        let ctx =
          if !prev = None || labels_here <> [] || !prev_was_call then
            Markov.bb_ctx
          else Markov.ctx_of_entry (Option.get !prev)
        in
        on_item ~item:it ~ctx ~labels_here;
        prev := Some it.Dict.pat;
        prev_was_call := last_part_is_call d.Dict.entries.(it.Dict.pat)
      end
      else begin
        (* labels on dead items attach to the next live one *)
        match Hashtbl.find_all labels_at i with
        | [] -> ()
        | ls ->
          while Hashtbl.mem labels_at i do
            Hashtbl.remove labels_at i
          done;
          let rec next_live j = if j >= n then j else if cf.Dict.items.(j).Dict.live then j else next_live (j + 1) in
          let j = next_live (i + 1) in
          List.iter (fun l -> Hashtbl.add labels_at j l) (List.rev ls)
      end
    done
  in
  let transitions = ref [] in
  List.iter
    (fun cf ->
      walk cf ~on_item:(fun ~item ~ctx ~labels_here ->
          ignore labels_here;
          transitions := (ctx, item.Dict.pat) :: !transitions))
    d.Dict.funcs;
  let markov =
    Markov.build ~n_entries:(Array.length d.Dict.entries) (List.rev !transitions)
  in
  (* pass B: emit code bytes per function *)
  let ifuncs =
    List.map
      (fun cf ->
        let nlabels = List.length cf.Dict.labels in
        if nlabels > 256 then
          failwith
            (Printf.sprintf "Emit: function %s has %d labels (max 256)"
               cf.Dict.cf_name nlabels);
        let label_ids = Hashtbl.create 8 in
        List.iteri (fun lid (name, _) -> Hashtbl.add label_ids name lid)
          cf.Dict.labels;
        let offsets = Array.make nlabels (-1) in
        let buf = Buffer.create 256 in
        walk cf ~on_item:(fun ~item ~ctx ~labels_here ->
            let off = Buffer.length buf in
            List.iter (fun lid -> offsets.(lid) <- off) labels_here;
            List.iter
              (fun b -> Buffer.add_char buf (Char.chr b))
              (Markov.code_of markov ~ctx item.Dict.pat);
            let p = d.Dict.entries.(item.Dict.pat) in
            let values = Pat.wild_values p item.Dict.insts in
            let widths = wild_widths p in
            let nw = nw_create () in
            List.iter2
              (fun w v ->
                pack_field nw w
                  (fun l ->
                    match Hashtbl.find_opt label_ids l with
                    | Some i -> i
                    | None -> failwith ("Emit: unknown label " ^ l))
                  (fun s -> Hashtbl.find syms s)
                  v)
              widths values;
            Buffer.add_string buf (nw_finish nw));
        (* labels at the very end of the function (none expected, but be
           safe): point past the last byte *)
        Array.iteri
          (fun i o -> if o < 0 then offsets.(i) <- Buffer.length buf)
          offsets;
        let code = Buffer.contents buf in
        if String.length code > 65535 then
          failwith
            (Printf.sprintf "Emit: function %s code exceeds 64 KB" cf.Dict.cf_name);
        { if_name = cf.Dict.cf_name; label_offsets = offsets; code })
      d.Dict.funcs
  in
  {
    entries = d.Dict.entries;
    base_count = d.Dict.base_count;
    markov;
    symbols;
    globals = d.Dict.globals;
    ifuncs = Array.of_list ifuncs;
  }

(* ---- serialization ---- *)

let slotw_code = function
  | Pat.R4 -> 0
  | Pat.I4x4 -> 1
  | Pat.I8 -> 2
  | Pat.I16 -> 3
  | Pat.I32 -> 4
  | Pat.LAB8 -> 5
  | Pat.LAB16 -> 6
  | Pat.SYM8 -> 7
  | Pat.SYM16 -> 8

let slotw_of_code = function
  | 0 -> Pat.R4
  | 1 -> Pat.I4x4
  | 2 -> Pat.I8
  | 3 -> Pat.I16
  | 4 -> Pat.I32
  | 5 -> Pat.LAB8
  | 6 -> Pat.LAB16
  | 7 -> Pat.SYM8
  | 8 -> Pat.SYM16
  | c ->
    Support.Decode_error.fail ~decoder:"brisc"
      ~kind:Support.Decode_error.Bad_value
      (Printf.sprintf "bad slot width code %d" c)

(* Dictionary entry serialization, compact (the entries dominate header
   size on small programs): per part a shape byte and a fixed/wild mask
   byte, then one nibble per field — the wild width code, or the burned
   register — and finally the byte-aligned payloads of burned immediates
   (sleb) and symbols (length-prefixed). *)

let write_pat buf (p : Pat.pat) =
  Support.Util.uleb128 buf (List.length p.Pat.parts);
  List.iter
    (fun (part : Pat.part) ->
      Buffer.add_char buf (Char.chr (Vm.Encode.shape_code part.Pat.templ));
      let mask = ref 0 in
      List.iteri
        (fun i slot ->
          match slot with Pat.Fixed _ -> mask := !mask lor (1 lsl i) | _ -> ())
        part.Pat.slots;
      Buffer.add_char buf (Char.chr !mask);
      let nw = nw_create () in
      List.iter
        (fun slot ->
          match slot with
          | Pat.Wild w -> nw_push nw (slotw_code w)
          | Pat.Fixed (Vm.Encode.Freg r) -> nw_push nw r
          | Pat.Fixed (Vm.Encode.Fimm _) | Pat.Fixed (Vm.Encode.Fsym _) -> ()
          | Pat.Fixed (Vm.Encode.Flab _) ->
            failwith "Emit: fixed label field in dictionary entry")
        part.Pat.slots;
      Buffer.add_string buf (nw_finish nw);
      List.iter
        (fun slot ->
          match slot with
          | Pat.Fixed (Vm.Encode.Fimm v) -> Support.Util.sleb_of_int buf v
          | Pat.Fixed (Vm.Encode.Fsym s) ->
            Support.Util.uleb128 buf (String.length s);
            Buffer.add_string buf s
          | _ -> ())
        part.Pat.slots)
    p.Pat.parts

let read_pat s pos : Pat.pat =
  let bfail kind msg =
    Support.Decode_error.fail ~decoder:"brisc" ~kind ~pos:!pos msg
  in
  let byte what =
    if !pos >= String.length s then
      bfail Support.Decode_error.Truncated ("truncated " ^ what);
    let b = Char.code s.[!pos] in
    incr pos;
    b
  in
  let nparts = Support.Util.read_uleb128 s pos in
  (* a part costs at least its shape and mask bytes *)
  if nparts < 0 || nparts * 2 > String.length s - !pos then
    bfail Support.Decode_error.Limit
      (Printf.sprintf "pattern part count %d exceeds remaining input" nparts);
  let parts =
    List.init nparts (fun _ ->
        let shape = byte "pattern shape" in
        let templ = Vm.Encode.template_of_code shape in
        let fields = Vm.Encode.fields templ in
        let mask = byte "pattern mask" in
        (* nibble section: one nibble per field that is wild or a fixed
           register; count them to find its byte length *)
        let takes_nibble i f =
          mask land (1 lsl i) = 0
          || match f with Vm.Encode.Freg _ -> true | _ -> false
        in
        let n_nibbles =
          List.fold_left ( + ) 0
            (List.mapi (fun i f -> if takes_nibble i f then 1 else 0) fields)
        in
        let nr = nr_create s !pos in
        (* read nibbles in field order explicitly (map order is not
           specified and nr_next is effectful) *)
        let nibble_slots =
          List.rev
            (snd
               (List.fold_left
                  (fun (i, acc) f ->
                    let v =
                      if takes_nibble i f then Some (i, f, nr_next nr) else None
                    in
                    (i + 1, v :: acc))
                  (0, []) fields))
        in
        pos := !pos + ((n_nibbles + 1) / 2);
        let slots =
          List.rev
            (snd
               (List.fold_left
                  (fun (i, acc) f ->
                    let fixed = mask land (1 lsl i) <> 0 in
                    let slot =
                      match (fixed, f) with
                      | false, _ -> (
                        match List.nth nibble_slots i with
                        | Some (_, _, n) -> Pat.Wild (slotw_of_code n)
                        | None -> bfail Support.Decode_error.Inconsistent "corrupt pattern")
                      | true, Vm.Encode.Freg _ -> (
                        match List.nth nibble_slots i with
                        | Some (_, _, n) -> Pat.Fixed (Vm.Encode.Freg n)
                        | None -> bfail Support.Decode_error.Inconsistent "corrupt pattern")
                      | true, Vm.Encode.Fimm _ ->
                        Pat.Fixed (Vm.Encode.Fimm (Support.Util.read_sleb s pos))
                      | true, Vm.Encode.Fsym _ ->
                        let n = Support.Util.read_uleb128 s pos in
                        if n < 0 || !pos + n > String.length s then
                          bfail Support.Decode_error.Truncated
                            "truncated symbol in dictionary entry";
                        let str = String.sub s !pos n in
                        pos := !pos + n;
                        Pat.Fixed (Vm.Encode.Fsym str)
                      | true, Vm.Encode.Flab _ ->
                        bfail Support.Decode_error.Bad_value
                          "fixed label in dictionary"
                    in
                    (i + 1, slot :: acc))
                  (0, []) fields))
        in
        { Pat.templ; slots })
  in
  { Pat.parts }

(* Standalone pattern-set serialization: the byte form of a shared
   dictionary extension (corpus-trained entries both sides pre-agree
   on). Reuses the container's per-entry encoding. *)

let patterns_to_bytes (pats : Pat.pat array) : string =
  let buf = Buffer.create 1024 in
  Support.Util.uleb128 buf (Array.length pats);
  Array.iter (write_pat buf) pats;
  Buffer.contents buf

let patterns_of_bytes_exn (s : string) : Pat.pat array =
  let pos = ref 0 in
  let n = Support.Util.read_uleb128 s pos in
  if n < 0 || n * 2 > String.length s then
    Support.Decode_error.fail ~decoder:"brisc"
      ~kind:Support.Decode_error.Limit ~pos:!pos
      (Printf.sprintf "pattern count %d exceeds remaining input" n);
  let pats = Array.init n (fun _ -> read_pat s pos) in
  if !pos <> String.length s then
    Support.Decode_error.fail ~decoder:"brisc"
      ~kind:Support.Decode_error.Inconsistent ~pos:!pos
      "trailing bytes after pattern set";
  pats

let patterns_of_bytes s =
  Support.Decode_error.guard ~decoder:"brisc" (fun () -> patterns_of_bytes_exn s)

let to_bytes (img : image) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Support.Util.uleb128 buf (Array.length img.symbols);
  Array.iter (fun s -> Support.Frame.put_str buf s) img.symbols;
  Support.Util.uleb128 buf (List.length img.globals);
  let sym_idx =
    let h = Hashtbl.create 64 in
    Array.iteri (fun i s -> Hashtbl.replace h s i) img.symbols;
    h
  in
  List.iter
    (fun (n, sz, init) ->
      Support.Util.uleb128 buf (Hashtbl.find sym_idx n);
      Support.Util.uleb128 buf sz;
      match init with
      | None -> Support.Util.uleb128 buf 0
      | Some bytes ->
        Support.Util.uleb128 buf (List.length bytes + 1);
        List.iter (fun b -> Buffer.add_char buf (Char.chr (b land 0xff))) bytes)
    img.globals;
  Support.Util.uleb128 buf (Array.length img.entries);
  Support.Util.uleb128 buf img.base_count;
  Array.iter (write_pat buf) img.entries;
  Markov.write buf img.markov;
  Support.Util.uleb128 buf (Array.length img.ifuncs);
  Array.iter
    (fun f ->
      Support.Util.uleb128 buf (Hashtbl.find sym_idx f.if_name);
      Support.Util.uleb128 buf (Array.length f.label_offsets);
      Array.iter (fun o -> Support.Util.uleb128 buf o) f.label_offsets;
      Support.Frame.put_str buf f.code)
    img.ifuncs;
  Buffer.contents buf

let of_bytes_exn (s : string) : image =
  let r = Support.Frame.reader ~decoder:"brisc" s in
  let pos = Support.Frame.cursor r in
  let fail kind msg = Support.Frame.fail r kind msg in
  (* every counted element costs at least one input byte; validate before
     any proportional allocation *)
  let check_count n what = Support.Frame.check_count r n what in
  let u () = Support.Frame.u r in
  let str () = Support.Frame.str ~what:"string" r in
  let byte () = Char.code (Support.Frame.byte r ()) in
  Support.Frame.expect_magic r magic;
  let nsym = u () in
  check_count nsym "symbol";
  let symbols = Array.init nsym (fun _ -> str ()) in
  let sym () =
    let i = u () in
    if i < 0 || i >= nsym then
      fail Support.Decode_error.Bad_value
        (Printf.sprintf "symbol index %d outside table of %d" i nsym);
    symbols.(i)
  in
  let nglob = u () in
  check_count nglob "global";
  let globals =
    List.init nglob (fun _ ->
        let n = sym () in
        let sz = u () in
        let initlen = u () in
        if initlen > 0 then check_count (initlen - 1) "global initializer";
        let init =
          if initlen = 0 then None
          else Some (List.init (initlen - 1) (fun _ -> byte ()))
        in
        (n, sz, init))
  in
  let nentries = u () in
  check_count nentries "dictionary entry";
  let base_count = u () in
  if base_count < 0 || base_count > nentries then
    fail Support.Decode_error.Inconsistent
      (Printf.sprintf "base count %d exceeds %d entries" base_count nentries);
  let entries = Array.init nentries (fun _ -> read_pat s pos) in
  let markov = Markov.read s pos in
  let nfuncs = u () in
  check_count nfuncs "function";
  let ifuncs =
    Array.init nfuncs (fun _ ->
        let if_name = sym () in
        let nlabels = u () in
        check_count nlabels "label";
        let label_offsets = Array.init nlabels (fun _ -> u ()) in
        let code = str () in
        { if_name; label_offsets; code })
  in
  Support.Frame.expect_end r "container";
  { entries; base_count; markov; symbols; globals; ifuncs }

let of_bytes s =
  Support.Decode_error.guard ~decoder:"brisc" (fun () -> of_bytes_exn s)

(* ---- shared-dictionary container ----

   "BRS2" is BRS1 minus the dictionary entries both sides already hold:
   the image's entry array must have the pre-agreed shared set as a
   prefix, and only the entries past it travel. A 4-byte CRC of the
   shared set's byte form pins the pairing, so decoding against a
   wrong or absent dictionary is a typed error, never garbage. *)

let shared_magic = "BRS2"

let crc4 s = Support.Frame.crc_be s

let to_bytes_shared ~(shared : Pat.pat array) (img : image) : string =
  let shared_count = Array.length shared in
  if Array.length img.entries < shared_count then
    invalid_arg "Emit.to_bytes_shared: image has fewer entries than shared set";
  Array.iteri
    (fun i p ->
      if Pat.key p <> Pat.key img.entries.(i) then
        invalid_arg "Emit.to_bytes_shared: shared set is not an entry prefix")
    shared;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf shared_magic;
  Buffer.add_string buf (crc4 (patterns_to_bytes shared));
  Support.Util.uleb128 buf shared_count;
  Support.Util.uleb128 buf (Array.length img.symbols);
  Array.iter (fun s -> Support.Frame.put_str buf s) img.symbols;
  Support.Util.uleb128 buf (List.length img.globals);
  let sym_idx =
    let h = Hashtbl.create 64 in
    Array.iteri (fun i s -> Hashtbl.replace h s i) img.symbols;
    h
  in
  List.iter
    (fun (n, sz, init) ->
      Support.Util.uleb128 buf (Hashtbl.find sym_idx n);
      Support.Util.uleb128 buf sz;
      match init with
      | None -> Support.Util.uleb128 buf 0
      | Some bytes ->
        Support.Util.uleb128 buf (List.length bytes + 1);
        List.iter (fun b -> Buffer.add_char buf (Char.chr (b land 0xff))) bytes)
    img.globals;
  Support.Util.uleb128 buf (Array.length img.entries);
  Support.Util.uleb128 buf img.base_count;
  Array.iteri (fun i p -> if i >= shared_count then write_pat buf p) img.entries;
  Markov.write buf img.markov;
  Support.Util.uleb128 buf (Array.length img.ifuncs);
  Array.iter
    (fun f ->
      Support.Util.uleb128 buf (Hashtbl.find sym_idx f.if_name);
      Support.Util.uleb128 buf (Array.length f.label_offsets);
      Array.iter (fun o -> Support.Util.uleb128 buf o) f.label_offsets;
      Support.Frame.put_str buf f.code)
    img.ifuncs;
  Buffer.contents buf

let of_bytes_shared_exn ~(shared : Pat.pat array) (s : string) : image =
  let r = Support.Frame.reader ~decoder:"brisc" s in
  let pos = Support.Frame.cursor r in
  let fail kind msg = Support.Frame.fail r kind msg in
  let check_count n what = Support.Frame.check_count r n what in
  let u () = Support.Frame.u r in
  let str () = Support.Frame.str ~what:"string" r in
  let byte () = Char.code (Support.Frame.byte r ()) in
  Support.Frame.expect_magic r shared_magic;
  let crc = Support.Frame.raw r ~what:"shared dictionary crc" 4 in
  if crc <> crc4 (patterns_to_bytes shared) then
    fail Support.Decode_error.Inconsistent
      "shared container was built against a different dictionary";
  let shared_count = u () in
  if shared_count <> Array.length shared then
    fail Support.Decode_error.Inconsistent
      (Printf.sprintf "shared count %d does not match dictionary of %d"
         shared_count (Array.length shared));
  let nsym = u () in
  check_count nsym "symbol";
  let symbols = Array.init nsym (fun _ -> str ()) in
  let sym () =
    let i = u () in
    if i < 0 || i >= nsym then
      fail Support.Decode_error.Bad_value
        (Printf.sprintf "symbol index %d outside table of %d" i nsym);
    symbols.(i)
  in
  let nglob = u () in
  check_count nglob "global";
  let globals =
    List.init nglob (fun _ ->
        let n = sym () in
        let sz = u () in
        let initlen = u () in
        if initlen > 0 then check_count (initlen - 1) "global initializer";
        let init =
          if initlen = 0 then None
          else Some (List.init (initlen - 1) (fun _ -> byte ()))
        in
        (n, sz, init))
  in
  let nentries = u () in
  if nentries < shared_count then
    fail Support.Decode_error.Inconsistent
      (Printf.sprintf "entry count %d below shared prefix of %d" nentries
         shared_count);
  check_count (nentries - shared_count) "dictionary entry";
  let base_count = u () in
  if base_count < 0 || base_count > nentries then
    fail Support.Decode_error.Inconsistent
      (Printf.sprintf "base count %d exceeds %d entries" base_count nentries);
  let extra = Array.init (nentries - shared_count) (fun _ -> read_pat s pos) in
  let entries = Array.append shared extra in
  let markov = Markov.read s pos in
  let nfuncs = u () in
  check_count nfuncs "function";
  let ifuncs =
    Array.init nfuncs (fun _ ->
        let if_name = sym () in
        let nlabels = u () in
        check_count nlabels "label";
        let label_offsets = Array.init nlabels (fun _ -> u ()) in
        let code = str () in
        { if_name; label_offsets; code })
  in
  Support.Frame.expect_end r "container";
  { entries; base_count; markov; symbols; globals; ifuncs }

let code_size img =
  Array.fold_left (fun a f -> a + String.length f.code) 0 img.ifuncs

let total_size img = String.length (to_bytes img)
let header_size img = total_size img - code_size img

(* ---- shared decode ---- *)

type decoded = { entry : int; instrs : Vm.Isa.instr list; next : int }

let resolve_name img f =
  match f with
  | Vm.Encode.Fsym s when String.length s > 4 && String.sub s 0 4 = "SYM#" ->
    let i = int_of_string (String.sub s 4 (String.length s - 4)) in
    if i < 0 || i >= Array.length img.symbols then
      Support.Decode_error.fail ~decoder:"brisc"
        ~kind:Support.Decode_error.Bad_value
        (Printf.sprintf "symbol operand %d outside table of %d" i
           (Array.length img.symbols));
    Vm.Encode.Fsym img.symbols.(i)
  | Vm.Encode.Flab l when String.length l > 4 && String.sub l 0 4 = "LBL#" ->
    Vm.Encode.Flab ("L" ^ String.sub l 4 (String.length l - 4))
  | f -> f

let decode_at img ~fidx ~ctx off =
  let f = img.ifuncs.(fidx) in
  let pos = ref off in
  let next_byte () =
    if !pos < 0 || !pos >= String.length f.code then
      Support.Decode_error.fail ~decoder:"brisc"
        ~kind:Support.Decode_error.Truncated ~pos:!pos
        "code stream runs past end of function";
    let b = Char.code f.code.[!pos] in
    incr pos;
    b
  in
  let entry = Markov.entry_of img.markov ~ctx next_byte in
  if entry < 0 || entry >= Array.length img.entries then
    Support.Decode_error.fail ~decoder:"brisc"
      ~kind:Support.Decode_error.Bad_value ~pos:off
      (Printf.sprintf "entry %d outside dictionary of %d" entry
         (Array.length img.entries));
  let p = img.entries.(entry) in
  let widths = wild_widths p in
  let nr = nr_create f.code !pos in
  let values = List.map (fun w -> resolve_name img (unpack_field nr w)) widths in
  let next = nr_byte_pos nr in
  let instrs = Pat.instantiate p values in
  { entry; instrs; next }

let context_at img ~fidx ~prev off =
  let f = img.ifuncs.(fidx) in
  if off = 0 then Markov.bb_ctx
  else if Array.exists (fun o -> o = off) f.label_offsets then Markov.bb_ctx
  else
    match prev with
    | None -> Markov.bb_ctx
    | Some e ->
      if last_part_is_call img.entries.(e) then Markov.bb_ctx
      else Markov.ctx_of_entry e
