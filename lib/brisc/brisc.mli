(** Facade over the BRISC pipeline: compress a VM program, then
    interpret it in place, JIT it, or decompress it.

    Typical flow (see [examples/quickstart.ml]):
    {[
      let vm    = Vm.Codegen.gen_program ir in
      let image = Brisc.compress vm in
      let bytes = Brisc.to_bytes image in           (* ship this *)
      let image =                                    (* client side *)
        match Brisc.of_bytes bytes with
        | Ok img -> img
        | Error e -> handle (Support.Decode_error.to_string e)
      in
      let r1    = Brisc.Interp.run image in         (* interpret in place *)
      let nat   = Brisc.Jit.compile image in        (* or JIT *)
      let r2    = Native.Sim.run nat in
    ]} *)

module Pat = Pat
module Dict = Dict
module Markov = Markov
module Emit = Emit
module Decomp = Decomp
module Interp = Interp
module Jit = Jit

val compress :
  ?k:int ->
  ?ignore_w:bool ->
  ?full_scan:bool ->
  ?pool:Support.Pool.t ->
  Vm.Isa.vprogram ->
  Emit.image
(** Full compression: dictionary construction ([k] best candidates per
    pass, default 20) + Markov coding + packing. [full_scan] and [pool]
    are passed to {!Dict.build}; neither changes the output bytes. *)

val compress_with : Emit.image -> Vm.Isa.vprogram -> Emit.image
(** Compress using an existing image's dictionary (no candidate search) —
    how the paper applies the gcc-trained dictionary to the salt
    example. The Markov tables are rebuilt for the new program. *)

val compress_shared : shared:Pat.pat array -> Vm.Isa.vprogram -> Emit.image
(** Compress against a corpus-trained shared dictionary (no candidate
    search): the resulting image's entries start with [shared] exactly —
    {!Dict.apply_dictionary} appends any base shapes the program needs
    past it — so {!Emit.to_bytes_shared} can omit the shared prefix
    from the wire form. [base_count] is set so only the appended
    entries count as transmitted dictionary bytes. *)

val to_bytes : Emit.image -> string

val of_bytes : string -> (Emit.image, Support.Decode_error.t) result
(** Total container decode; see {!Emit.of_bytes}. *)

val of_bytes_exn : string -> Emit.image
(** As {!of_bytes} but raises {!Support.Decode_error.Fail}; for trusted
    inputs. *)

(** Compressor-side timing and work counters, summed over passes (the
    per-pass breakdown is in [pass_stats]). *)
type build_telemetry = {
  scan_s : float;            (** candidate generation + merge *)
  rank_s : float;            (** heap build + top-k selection *)
  rewrite_s : float;         (** indexed rewrite + dirty sweep *)
  items_scanned : int;       (** dirty items rescanned, all passes *)
  domains : int;             (** pool lanes the scan fanned across *)
  pass_stats : Dict.pass_stat list;
}

type report = {
  original_bytes : int;      (** VM binary code bytes *)
  brisc_total : int;         (** full container *)
  brisc_code : int;          (** instruction streams only *)
  brisc_dict : int;          (** dictionary + tables + headers *)
  dict_entries : int;
  base_entries : int;
  candidates_tested : int;
  passes : int;
  max_markov_successors : int;
  build : build_telemetry;
}

val measure :
  ?k:int ->
  ?ignore_w:bool ->
  ?full_scan:bool ->
  ?pool:Support.Pool.t ->
  Vm.Isa.vprogram ->
  Emit.image * report
