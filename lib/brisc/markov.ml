type t = { succ : int array array }

let bb_ctx = 0
let ctx_of_entry e = e + 1

let build ~n_entries transitions =
  let counts = Array.init (n_entries + 1) (fun _ -> Hashtbl.create 8) in
  List.iter
    (fun (ctx, entry) ->
      let tbl = counts.(ctx) in
      match Hashtbl.find_opt tbl entry with
      | Some r -> incr r
      | None -> Hashtbl.add tbl entry (ref 1))
    transitions;
  (* Successor sets are kept sorted by entry id: every code costs one
     byte regardless of its value, so frequency ordering buys nothing,
     while a sorted set delta-encodes compactly in the container. *)
  let succ =
    Array.map
      (fun tbl ->
        Hashtbl.fold (fun e _ acc -> e :: acc) tbl []
        |> List.sort compare |> Array.of_list)
      counts
  in
  { succ }

let find_code t ~ctx entry =
  let arr = t.succ.(ctx) in
  let rec go i =
    if i >= Array.length arr then
      failwith
        (Printf.sprintf "Markov: entry %d not reachable from context %d" entry ctx)
    else if arr.(i) = entry then i
    else go (i + 1)
  in
  go 0

let code_of t ~ctx entry =
  let c = find_code t ~ctx entry in
  let rec bytes c = if c < 255 then [ c ] else 255 :: bytes (c - 255) in
  bytes c

let entry_of t ~ctx next_byte =
  let rec go acc =
    let b = next_byte () in
    if b = 255 then go (acc + 255) else acc + b
  in
  let code = go 0 in
  if ctx < 0 || ctx >= Array.length t.succ then
    Support.Decode_error.fail ~decoder:"brisc"
      ~kind:Support.Decode_error.Bad_value
      (Printf.sprintf "Markov context %d outside table of %d" ctx
         (Array.length t.succ));
  let arr = t.succ.(ctx) in
  if code >= Array.length arr then
    Support.Decode_error.fail ~decoder:"brisc"
      ~kind:Support.Decode_error.Bad_value
      (Printf.sprintf "bad Markov code %d in context %d (%d successors)" code
         ctx (Array.length arr));
  arr.(code)

let max_successors t =
  Array.fold_left (fun m arr -> max m (Array.length arr)) 0 t.succ

let write buf t =
  Support.Util.uleb128 buf (Array.length t.succ);
  Array.iter
    (fun arr ->
      Support.Util.uleb128 buf (Array.length arr);
      let prev = ref 0 in
      Array.iter
        (fun e ->
          Support.Util.uleb128 buf (e - !prev);
          prev := e)
        arr)
    t.succ

let read s pos =
  (* every context row and every successor costs at least one byte, so a
     count beyond the remaining input is corrupt — checked before the
     proportional Array.init *)
  let check_count n what =
    if n < 0 || n > String.length s - !pos then
      Support.Decode_error.fail ~decoder:"brisc"
        ~kind:Support.Decode_error.Limit ~pos:!pos
        (Printf.sprintf "Markov %s count %d exceeds remaining %d bytes" what n
           (String.length s - !pos))
  in
  let n = Support.Util.read_uleb128 s pos in
  check_count n "context";
  let succ =
    Array.init n (fun _ ->
        let k = Support.Util.read_uleb128 s pos in
        check_count k "successor";
        let prev = ref 0 in
        Array.init k (fun _ ->
            let e = !prev + Support.Util.read_uleb128 s pos in
            prev := e;
            e))
  in
  { succ }
