(** Linear BRISC decompression back to a VM program.

    Decoding walks each function's byte stream once, tracking the Markov
    context exactly as the emitter assigned it, expanding every
    dictionary entry to its concrete VM instructions, and re-inserting
    [Label] pseudo-instructions (named [L<id>] from the label table) at
    their byte offsets. The result is semantically identical to the
    program that was compressed; up to label renaming it is structurally
    identical, which the test suite checks via {!normalize_labels}. *)

val decompress :
  Emit.image -> (Vm.Isa.vprogram, Support.Decode_error.t) result
(** Total over arbitrary (possibly hand-corrupted) images: bad Markov
    codes, truncated streams and zero-progress decodes yield typed
    errors instead of raising or looping. *)

val decompress_exn : Emit.image -> Vm.Isa.vprogram
(** As {!decompress} but raises {!Support.Decode_error.Fail}; for
    trusted images. *)

val normalize_labels : Vm.Isa.vprogram -> Vm.Isa.vprogram
(** Rename every function's labels to [L0], [L1], ... in definition
    order, so programs can be compared across compression round trips. *)
