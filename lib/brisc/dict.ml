type item = {
  mutable pat : int;
  mutable insts : Vm.Isa.instr list;
  mutable live : bool;
  block : int;
}

type compiled_func = {
  cf_name : string;
  items : item array;
  labels : (string * int) list;
}

type pass_stat = {
  ps_pass : int;
  ps_live_items : int;
  ps_items_scanned : int;
  ps_contributions : int;
  ps_candidate_table : int;
  ps_heap_size : int;
  ps_selected : int;
  ps_scan_s : float;
  ps_rank_s : float;
  ps_rewrite_s : float;
}

type t = {
  entries : Pat.pat array;
  base_count : int;
  funcs : compiled_func list;
  globals : (string * int * int list option) list;
  candidates_tested : int;
  passes : int;
  pass_stats : pass_stat list;
  scan_domains : int;
}

let item_pat_bytes entries it = Pat.encoded_bytes entries.(it.pat)

(* ---- initial itemization ---- *)

type builder = {
  mutable entry_list : Pat.pat list;   (* reversed *)
  mutable entry_count : int;
  entry_of_key : (string, int) Hashtbl.t;
}

let add_entry b p =
  let k = Pat.key p in
  match Hashtbl.find_opt b.entry_of_key k with
  | Some i -> i
  | None ->
    let i = b.entry_count in
    b.entry_list <- p :: b.entry_list;
    b.entry_count <- i + 1;
    Hashtbl.add b.entry_of_key k i;
    i

let itemize_func b (f : Vm.Isa.vfunc) =
  let items = ref [] in
  let labels = ref [] in
  let idx = ref 0 in
  let block = ref 0 in
  List.iter
    (fun (i : Vm.Isa.instr) ->
      match i with
      | Vm.Isa.Label l ->
        (* labels start a new basic block *)
        incr block;
        labels := (l, !idx) :: !labels
      | _ ->
        let base = Pat.base_pattern i in
        let pid = add_entry b base in
        items := { pat = pid; insts = [ i ]; live = true; block = !block } :: !items;
        incr idx)
    f.Vm.Isa.code;
  { cf_name = f.Vm.Isa.name; items = Array.of_list (List.rev !items);
    labels = List.rev !labels }

(* ---- shape index ----

   Pat.matches can only succeed when the pattern's first part has the
   instruction sequence's head opcode and the part count equals the
   sequence length, so bucketing entries by (head opcode key, arity)
   turns the rewrite loops' scans over every candidate entry into O(1)
   bucket lookups. Buckets preserve the priority order of the input
   list, which is what makes the indexed rewrites pick the same entry
   the linear scans did. *)

let pat_head_key (p : Pat.pat) =
  Vm.Encode.base_key (List.hd p.Pat.parts).Pat.templ

let insts_head_key = function
  | [] -> invalid_arg "Dict.insts_head_key: empty"
  | (i : Vm.Isa.instr) :: _ -> Vm.Encode.base_key i

let index_by_shape (pats : (int * Pat.pat) list) =
  let tbl : (string * int, (int * Pat.pat) list) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (id, p) ->
      let k = (pat_head_key p, List.length p.Pat.parts) in
      let prev = try Hashtbl.find tbl k with Not_found -> [] in
      Hashtbl.replace tbl k ((id, p) :: prev))
    (List.rev pats);
  tbl

let index_find tbl head arity =
  try Hashtbl.find tbl (head, arity) with Not_found -> []

(* cheapest strictly-shrinking match in [bucket], first-listed winning
   ties — exactly the selection the old linear rewrite loops made *)
let best_match bucket insts cur =
  List.fold_left
    (fun best (id, p) ->
      if Pat.matches p insts then begin
        let bytes = Pat.encoded_bytes p in
        if
          bytes < cur
          && (match best with Some (_, bb) -> bytes < bb | None -> true)
        then Some (id, bytes)
        else best
      end
      else best)
    None bucket

(* ---- candidate generation ---- *)

type cand = {
  cpat : Pat.pat;
  overhead : int;          (* dict entry cost + W, fixed per pattern *)
  mutable savings : int;   (* sum of recorded per-item contributions *)
}

(* augmented operand-specialized set: the pattern itself plus its
   one-field specializations against this occurrence's field values *)
let augmented entries it =
  let p = entries.(it.pat) in
  let values = Pat.wild_values p it.insts in
  let specs =
    List.mapi (fun i v -> Pat.specialize p i v) values
    |> List.filter_map (fun x -> x)
  in
  p :: specs

let now () = Unix.gettimeofday ()

(* ---- main pass loop ----

   Candidate bookkeeping is incremental: the candidate table persists
   across passes and every item records the (key, savings)
   contributions it last generated, so a pass only rescans the dirty
   items — those the previous rewrite changed or killed, plus the
   nearest live predecessor of each (its combination partner) — and
   retracts their stale contributions before adding fresh ones. A
   full-scan pass (the [~full_scan:true] escape hatch, and pass 1 where
   everything starts dirty) is the degenerate case where the table is
   rebuilt from scratch; the corpus cross-check test asserts both modes
   build byte-identical dictionaries.

   The scan itself is read-only with respect to shared state, so dirty
   functions can be scanned by a Pool of domains; results are merged
   sequentially in (function, item) order, which keeps every domain
   count byte-identical to the sequential build. *)

let build ?(k = 20) ?(ignore_w = false) ?(max_passes = 40) ?(full_scan = false)
    ?pool (vp : Vm.Isa.vprogram) : t =
  let scan_domains =
    match pool with Some p -> Support.Pool.size p | None -> 1
  in
  let b =
    { entry_list = []; entry_count = 0; entry_of_key = Hashtbl.create 512 }
  in
  ignore (add_entry b Pat.epi);
  let funcs = List.map (itemize_func b) vp.Vm.Isa.funcs in
  let funcs_arr = Array.of_list funcs in
  let nfuncs = Array.length funcs_arr in
  let base_count = ref b.entry_count in
  (* the paper's compressor keeps a hash table of previously generated
     candidates; candidates_tested counts distinct candidates ever
     generated, as §4.3 reports (93,211 for gcc) *)
  let ever_generated : (string, unit) Hashtbl.t = Hashtbl.create 8192 in
  let candidates_tested = ref 0 in
  (* Candidates are keyed by their rendered form: OCaml's polymorphic
     hash samples only a bounded prefix of a deep structure, which
     collides badly on patterns; the string key hashes fully. *)
  let cands : (string, cand) Hashtbl.t = Hashtbl.create 4096 in
  let contribs =
    Array.map
      (fun cf -> Array.make (Array.length cf.items) ([] : (string * int) list))
      funcs_arr
  in
  let dirty = Array.map (fun cf -> Array.make (Array.length cf.items) true) funcs_arr in
  let stats = ref [] in
  let passes = ref 0 in
  let finished = ref false in
  while not !finished && !passes < max_passes do
    incr passes;
    let t0 = now () in
    if full_scan then begin
      Hashtbl.reset cands;
      Array.iteri
        (fun fi cf ->
          for i = 0 to Array.length cf.items - 1 do
            dirty.(fi).(i) <- true;
            contribs.(fi).(i) <- []
          done)
        funcs_arr
    end;
    let entries = Array.of_list (List.rev b.entry_list) in
    (* scan: specializations and combinations for the dirty items of one
       function; pure per function, hence safe to fan out over domains.
       A candidate's encoded size is pure slot arithmetic (specializing
       drops the burned slot's bits, combining sums both sides' bits),
       so savings are computed BEFORE building the pattern — candidates
       with nothing to save never allocate a pattern or render a key,
       which is most of them on a byte-quantized encoding. *)
    let scan_func fi =
      let cf = funcs_arr.(fi) in
      let dirt = dirty.(fi) in
      let n = Array.length cf.items in
      let rec next_live i =
        if i >= n then None
        else if cf.items.(i).live then Some i
        else next_live (i + 1)
      in
      let out = ref [] in
      for i = n - 1 downto 0 do
        if dirt.(i) then begin
          let it = cf.items.(i) in
          if not it.live then out := (i, []) :: !out
          else begin
            let acc = ref [] in
            let consider pat saved =
              let key = Pat.key pat in
              if not (Hashtbl.mem b.entry_of_key key) then
                acc := (key, pat, saved) :: !acc
            in
            let p = entries.(it.pat) in
            let p_bits = Pat.operand_bits p in
            let cur_bytes = 1 + ((p_bits + 7) / 8) in
            (* one-field specializations: burning wild slot [si] shrinks
               the operand bytes by its slot width (label slots refuse) *)
            let values = Pat.wild_values p it.insts in
            let widths =
              List.concat_map
                (fun (part : Pat.part) ->
                  List.filter_map
                    (function Pat.Wild w -> Some w | Pat.Fixed _ -> None)
                    part.Pat.slots)
                p.Pat.parts
            in
            List.iteri
              (fun si (v, w) ->
                let saved = cur_bytes - (1 + ((p_bits - Pat.slot_bits w + 7) / 8)) in
                if saved > 0 then
                  match Pat.specialize p si v with
                  | Some sp -> consider sp saved
                  | None -> ())
              (List.combine values widths);
            (* combination with the next live item in the same block *)
            (match next_live (i + 1) with
            | Some j when cf.items.(j).block = it.block ->
              let jt = cf.items.(j) in
              let q = entries.(jt.pat) in
              (* legality is per pattern-shape, identical across each
                 side's augmented set: hoist it out of the cross product *)
              let len_l = List.length p.Pat.parts in
              if
                len_l + List.length q.Pat.parts <= 4
                && Pat.combine p q <> None
              then begin
                let total = cur_bytes + 1 + ((Pat.operand_bits q + 7) / 8) in
                let with_bits ps =
                  List.map (fun x -> (x, Pat.operand_bits x)) ps
                in
                let lefts = with_bits (augmented entries it) in
                let rights = with_bits (augmented entries jt) in
                List.iter
                  (fun (lp, lbits) ->
                    List.iter
                      (fun (rp, rbits) ->
                        let saved = total - (1 + ((lbits + rbits + 7) / 8)) in
                        if saved > 0 then
                          match Pat.combine lp rp with
                          | Some cp -> consider cp saved
                          | None -> ())
                      rights)
                  lefts
              end
            | _ -> ());
            out := (i, List.rev !acc) :: !out
          end
        end
      done;
      !out
    in
    (* only functions holding a dirty item need scanning; later passes
       touch a shrinking fraction of the program, so this keeps the
       fan-out (and the sequential walk) proportional to actual work *)
    let dirty_fis = ref [] in
    for fi = nfuncs - 1 downto 0 do
      if Array.exists (fun d -> d) dirty.(fi) then dirty_fis := fi :: !dirty_fis
    done;
    let dirty_fis = !dirty_fis in
    let per_func =
      match pool with
      | Some p when Support.Pool.size p > 1 && List.length dirty_fis > 1 ->
        (* chunk the fan-out so each task amortizes scheduling and the
           domains see a handful of balanced batches, not one tiny task
           per function; chunks keep their order, so flattening restores
           the exact sequential (function, item) merge order *)
        let nchunks = 4 * Support.Pool.size p in
        let len = List.length dirty_fis in
        let chunk_sz = max 1 ((len + nchunks - 1) / nchunks) in
        let rec split acc cur k = function
          | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
          | fi :: rest ->
            if k = chunk_sz then split (List.rev cur :: acc) [ fi ] 1 rest
            else split acc (fi :: cur) (k + 1) rest
        in
        let chunks = split [] [] 0 dirty_fis in
        List.concat
          (Support.Pool.run_list p
             (List.map
                (fun chunk () ->
                  List.map (fun fi -> (fi, scan_func fi)) chunk)
                chunks))
      | _ -> List.map (fun fi -> (fi, scan_func fi)) dirty_fis
    in
    (* merge: retract each rescanned item's stale contributions, then
       add the fresh ones; sequential and in (function, item) order so
       every mode agrees byte for byte *)
    let items_scanned = ref 0 and contributions = ref 0 in
    List.iter
      (fun (fi, results) ->
        let ctr = contribs.(fi) in
        List.iter
          (fun (i, fresh) ->
            incr items_scanned;
            List.iter
              (fun (key, saved) ->
                match Hashtbl.find_opt cands key with
                | Some c ->
                  c.savings <- c.savings - saved;
                  if c.savings <= 0 then Hashtbl.remove cands key
                | None -> ())
              ctr.(i);
            List.iter
              (fun (key, pat, saved) ->
                incr contributions;
                match Hashtbl.find_opt cands key with
                | Some c -> c.savings <- c.savings + saved
                | None ->
                  if not (Hashtbl.mem ever_generated key) then begin
                    Hashtbl.add ever_generated key ();
                    incr candidates_tested
                  end;
                  let overhead =
                    Pat.dict_entry_bytes pat
                    + (if ignore_w then 0 else Pat.native_bytes pat)
                  in
                  Hashtbl.add cands key { cpat = pat; overhead; savings = saved })
              fresh;
            ctr.(i) <- List.map (fun (key, _, saved) -> (key, saved)) fresh;
            dirty.(fi).(i) <- false)
          results)
      per_func;
    let t_scan = now () in
    (* rank by benefit B = P - W; ties break on the candidate's
       canonical key so selection no longer depends on hash-table
       iteration order (smaller key wins the tie) *)
    let heap =
      Support.Heap.create
        ~cmp:(fun (b1, k1, _) (b2, k2, _) ->
          if (b1 : int) <> b2 then compare b1 b2
          else compare (k2 : string) k1)
    in
    Hashtbl.iter
      (fun key c ->
        let benefit = c.savings - c.overhead in
        if benefit > 0 then Support.Heap.push heap (benefit, key, c.cpat))
      cands;
    let heap_size = Support.Heap.length heap in
    let picked = ref [] in
    let rec take n =
      if n > 0 then
        match Support.Heap.pop heap with
        | Some (_, key, p) ->
          picked := (key, p) :: !picked;
          take (n - 1)
        | None -> ()
    in
    take k;
    let selected = List.rev !picked in
    let t_rank = now () in
    if List.length selected < k then finished := true;
    if selected <> [] then begin
      (* selected keys become dictionary entries; retire them from the
         candidate table (consider will refuse them from now on) *)
      List.iter (fun (key, _) -> Hashtbl.remove cands key) selected;
      let new_ids = List.map (fun (_, p) -> (add_entry b p, p)) selected in
      let entries = Array.of_list (List.rev b.entry_list) in
      let new_index = index_by_shape new_ids in
      (* rewrite, combinations first *)
      Array.iteri
        (fun fi cf ->
          let n = Array.length cf.items in
          let changed = Array.make n false in
          let rec next_live i =
            if i >= n then None
            else if cf.items.(i).live then Some i
            else next_live (i + 1)
          in
          (* opcode combination: at most one new pattern applies per pair
             per pass *)
          let i = ref 0 in
          while !i < n do
            let it = cf.items.(!i) in
            (if it.live then
               match next_live (!i + 1) with
               | Some j when cf.items.(j).block = it.block ->
                 let jt = cf.items.(j) in
                 let arity = List.length it.insts + List.length jt.insts in
                 (match index_find new_index (insts_head_key it.insts) arity with
                 | [] -> ()
                 | bucket ->
                   let joint = it.insts @ jt.insts in
                   let cur =
                     item_pat_bytes entries it + item_pat_bytes entries jt
                   in
                   (match best_match bucket joint cur with
                   | Some (id, _) ->
                     it.pat <- id;
                     it.insts <- joint;
                     jt.live <- false;
                     changed.(!i) <- true;
                     changed.(j) <- true
                   | None -> ()))
               | _ -> ());
            incr i
          done;
          (* operand specialization: switch items to cheaper new entries *)
          Array.iteri
            (fun i it ->
              if it.live then
                match
                  index_find new_index (insts_head_key it.insts)
                    (List.length it.insts)
                with
                | [] -> ()
                | bucket -> (
                  let cur = item_pat_bytes entries it in
                  match best_match bucket it.insts cur with
                  | Some (id, _) ->
                    it.pat <- id;
                    changed.(i) <- true
                  | None -> ()))
            cf.items;
          (* dirty for the next pass: a changed or killed item
             invalidates its own candidates and those of the nearest
             live item before it (whose combination partner it is) *)
          let last_live = ref (-1) in
          for i = 0 to n - 1 do
            if changed.(i) then begin
              dirty.(fi).(i) <- true;
              if !last_live >= 0 then dirty.(fi).(!last_live) <- true
            end;
            if cf.items.(i).live then last_live := i
          done)
        funcs_arr
    end;
    let t_rewrite = now () in
    let live_items =
      Array.fold_left
        (fun a cf ->
          Array.fold_left (fun a it -> if it.live then a + 1 else a) a cf.items)
        0 funcs_arr
    in
    stats :=
      {
        ps_pass = !passes;
        ps_live_items = live_items;
        ps_items_scanned = !items_scanned;
        ps_contributions = !contributions;
        ps_candidate_table = Hashtbl.length cands;
        ps_heap_size = heap_size;
        ps_selected = List.length selected;
        ps_scan_s = t_scan -. t0;
        ps_rank_s = t_rank -. t_scan;
        ps_rewrite_s = t_rewrite -. t_rank;
      }
      :: !stats
  done;
  {
    entries = Array.of_list (List.rev b.entry_list);
    base_count = !base_count;
    funcs;
    globals = vp.Vm.Isa.globals;
    candidates_tested = !candidates_tested;
    passes = !passes;
    pass_stats = List.rev !stats;
    scan_domains;
  }

(* ---- re-encoding with a fixed dictionary ---- *)

let apply_dictionary (t : t) (vp : Vm.Isa.vprogram) : t =
  let b =
    {
      entry_list = List.rev (Array.to_list t.entries);
      entry_count = Array.length t.entries;
      entry_of_key = Hashtbl.create 512;
    }
  in
  Array.iteri (fun i p -> Hashtbl.replace b.entry_of_key (Pat.key p) i) t.entries;
  let funcs = List.map (itemize_func b) vp.Vm.Isa.funcs in
  let entries = Array.of_list (List.rev b.entry_list) in
  (* greedy longest-match rewrite per function: try combined entries on
     adjacent runs (longest arity first, dictionary order within an
     arity), then the cheapest matching single entry — all through the
     shape index, so each item only looks at entries that could match *)
  let index =
    index_by_shape (Array.to_list (Array.mapi (fun i p -> (i, p)) entries))
  in
  let arities = [ 4; 3; 2 ] in
  List.iter
    (fun cf ->
      let n = Array.length cf.items in
      let rec next_live i =
        if i >= n then None else if cf.items.(i).live then Some i else next_live (i + 1)
      in
      let i = ref 0 in
      while !i < n do
        let it = cf.items.(!i) in
        (if it.live then begin
           (* try to merge a run starting here *)
           let rec run acc len i0 =
             if len = 0 then Some (List.rev acc)
             else
               match next_live i0 with
               | Some j when cf.items.(j).block = it.block ->
                 run (j :: acc) (len - 1) (j + 1)
               | _ -> None
           in
           let head = insts_head_key it.insts in
           let applied = ref false in
           List.iter
             (fun arity ->
               if not !applied then
                 match index_find index head arity with
                 | [] -> ()
                 | bucket -> (
                   match run [] (arity - 1) (!i + 1) with
                   | Some js ->
                     let members = !i :: js in
                     let joint =
                       List.concat_map (fun j -> cf.items.(j).insts) members
                     in
                     let cur =
                       List.fold_left
                         (fun a j -> a + item_pat_bytes entries cf.items.(j))
                         0 members
                     in
                     List.iter
                       (fun (id, p) ->
                         if
                           (not !applied)
                           && Pat.matches p joint
                           && Pat.encoded_bytes p < cur
                         then begin
                           it.pat <- id;
                           it.insts <- joint;
                           List.iter (fun j -> cf.items.(j).live <- false) js;
                           applied := true
                         end)
                       bucket
                   | None -> ()))
             arities
         end);
        incr i
      done;
      (* single-instruction specializations *)
      Array.iter
        (fun it ->
          if it.live && List.length it.insts = 1 then
            match index_find index (insts_head_key it.insts) 1 with
            | [] -> ()
            | bucket -> (
              let cur = item_pat_bytes entries it in
              match best_match bucket it.insts cur with
              | Some (id, _) -> it.pat <- id
              | None -> ()))
        cf.items)
    funcs;
  {
    entries = Array.of_list (List.rev b.entry_list);
    base_count = t.base_count;
    funcs;
    globals = vp.Vm.Isa.globals;
    candidates_tested = 0;
    passes = 0;
    pass_stats = [];
    scan_domains = 1;
  }

(* ---- sizes ---- *)

let item_bytes t it = Pat.encoded_bytes t.entries.(it.pat)

let compressed_code_bytes t =
  List.fold_left
    (fun acc cf ->
      Array.fold_left
        (fun a it -> if it.live then a + item_bytes t it else a)
        acc cf.items)
    0 t.funcs

let dictionary_bytes t =
  let total = ref 0 in
  Array.iteri
    (fun i p -> if i >= t.base_count then total := !total + Pat.dict_entry_bytes p)
    t.entries;
  !total

let total_scan_s t = List.fold_left (fun a s -> a +. s.ps_scan_s) 0.0 t.pass_stats
let total_rank_s t = List.fold_left (fun a s -> a +. s.ps_rank_s) 0.0 t.pass_stats

let total_rewrite_s t =
  List.fold_left (fun a s -> a +. s.ps_rewrite_s) 0.0 t.pass_stats

let total_items_scanned t =
  List.fold_left (fun a s -> a + s.ps_items_scanned) 0 t.pass_stats

let stats_to_string t =
  Printf.sprintf
    "dictionary: %d entries (%d base), %d candidates tested, %d passes, code %d B + dict %d B"
    (Array.length t.entries) t.base_count t.candidates_tested t.passes
    (compressed_code_bytes t) (dictionary_bytes t)
