(* LZ77 tokens under an adaptive range coder — the "-opt" end of the
   wire format's final-stage design space.

   The plain order-2 range stage ({!Range_coder.compress_order_n})
   models every byte in context but cannot exploit repeats longer than
   its context; deflate exploits repeats but charges whole-bit Huffman
   codewords. This stage combines them: a bit-optimal LZ77 parse
   (shortest path under estimated range-model costs, {!Lz77.Optimal})
   factors the input, then one adaptive range-coded stream carries the
   tokens — a literal/match flag, literals under the order-2 context
   model (same context hash as the order-N compressor, fed by every
   output byte including match copies, so contexts never desynchronize),
   and match length/distance classes under their own adaptive models
   with the RFC 1951 extra bits sent raw.

   The parse cannot know the adaptive models' exact future state, so
   edge costs are estimated: token-class frequencies from a seed parse
   turned into -log2 probabilities (in {!Lz77.cost_scale}ths of a bit),
   iterated once so the estimate tracks the parse it produced. *)

let order = 2

(* token stream alphabets *)
let flag_lit = 0
let flag_match = 1

let model_bank () =
  Array.init Range_coder.context_slots (fun _ -> Range_coder.Model.create 256)

(* ---- cost estimation for the optimal parse ---- *)

let log2 = log 2.0

(* -log2(f/total) in cost_scale-ths of a bit, floored at one sixteenth
   so no edge is ever free *)
let est_bits ~total f =
  max 1
    (int_of_float
       (Float.round
          (float_of_int Lz77.cost_scale *. log (float_of_int total /. float_of_int f)
          /. log2)))

let cost_model_of_tokens tokens =
  let lit_freq = Array.make 256 1 in
  let len_freq = Array.make (Array.length Deflate.length_base) 1 in
  let dist_freq = Array.make (Array.length Deflate.dist_base) 1 in
  let lits = ref 1 and matches = ref 1 in
  List.iter
    (fun t ->
      match t with
      | Lz77.Literal b ->
        incr lits;
        lit_freq.(b) <- lit_freq.(b) + 1
      | Lz77.Match { length; dist } ->
        incr matches;
        let lc = Deflate.length_class length in
        len_freq.(lc) <- len_freq.(lc) + 1;
        let dc = Deflate.dist_class dist in
        dist_freq.(dc) <- dist_freq.(dc) + 1)
    tokens;
  let flag_total = !lits + !matches in
  let lit_total = Array.fold_left ( + ) 0 lit_freq in
  let len_total = Array.fold_left ( + ) 0 len_freq in
  let dist_total = Array.fold_left ( + ) 0 dist_freq in
  let flag_lit_bits = est_bits ~total:flag_total !lits in
  let flag_match_bits = est_bits ~total:flag_total !matches in
  let sc = Lz77.cost_scale in
  {
    Lz77.literal_cost =
      (fun b -> flag_lit_bits + est_bits ~total:lit_total lit_freq.(b));
    match_cost =
      (fun ~length ~dist ->
        let lc = Deflate.length_class length in
        let dc = Deflate.dist_class dist in
        flag_match_bits
        + est_bits ~total:len_total len_freq.(lc)
        + (sc * Deflate.length_extra.(lc))
        + est_bits ~total:dist_total dist_freq.(dc)
        + (sc * Deflate.dist_extra.(dc)));
  }

let tokenize_opt ?(iterations = 2) s =
  let rec go tokens k =
    if k = 0 then tokens
    else
      go
        (Lz77.tokenize ~strategy:(Lz77.Optimal (cost_model_of_tokens tokens)) s)
        (k - 1)
  in
  go (Lz77.tokenize s) (max 1 iterations)

(* ---- encoding ---- *)

let push_history history b =
  for i = order - 1 downto 1 do
    history.(i) <- history.(i - 1)
  done;
  history.(0) <- b

(* extra bits ride on a frequency-1/1 model that is never updated:
   exactly one bit each, MSB first *)
let encode_raw_bits e ubit v bits =
  for k = bits - 1 downto 0 do
    Range_coder.encode e ubit ((v lsr k) land 1)
  done

let compress s =
  let tokens = tokenize_opt s in
  let flag = Range_coder.Model.create 2 in
  let lit = model_bank () in
  let len_m = Range_coder.Model.create (Array.length Deflate.length_base) in
  let dist_m = Range_coder.Model.create (Array.length Deflate.dist_base) in
  let ubit = Range_coder.Model.create 2 in
  let history = Array.make order 0 in
  let e = Range_coder.encoder () in
  let pos = ref 0 in
  List.iter
    (fun t ->
      match t with
      | Lz77.Literal b ->
        Range_coder.encode e flag flag_lit;
        Range_coder.Model.update flag flag_lit;
        let m = lit.(Range_coder.ctx_hash order history) in
        Range_coder.encode e m b;
        Range_coder.Model.update m b;
        push_history history b;
        incr pos
      | Lz77.Match { length; dist } ->
        Range_coder.encode e flag flag_match;
        Range_coder.Model.update flag flag_match;
        let lc = Deflate.length_class length in
        Range_coder.encode e len_m lc;
        Range_coder.Model.update len_m lc;
        encode_raw_bits e ubit
          (length - Deflate.length_base.(lc))
          Deflate.length_extra.(lc);
        let dc = Deflate.dist_class dist in
        Range_coder.encode e dist_m dc;
        Range_coder.Model.update dist_m dc;
        encode_raw_bits e ubit (dist - Deflate.dist_base.(dc))
          Deflate.dist_extra.(dc);
        (* the decoder's history advances over every copied byte; the
           encoder has them in the source *)
        for k = !pos to !pos + length - 1 do
          push_history history (Char.code s.[k])
        done;
        pos := !pos + length)
    tokens;
  let body = Range_coder.finish e in
  let hdr = Buffer.create 8 in
  Support.Util.uleb128 hdr (String.length s);
  Buffer.contents hdr ^ body

(* ---- decoding ---- *)

let default_max_output = 1 lsl 26

let decompress_exn ?(max_output = default_max_output) z =
  let pos = ref 0 in
  let fail kind msg =
    Support.Decode_error.fail ~decoder:"lza" ~kind ~pos:!pos msg
  in
  let n = Support.Util.read_uleb128 z pos in
  if n > max_output then
    fail Support.Decode_error.Limit
      (Printf.sprintf "declared length %d exceeds cap %d" n max_output);
  let flag = Range_coder.Model.create 2 in
  let lit = model_bank () in
  let len_m = Range_coder.Model.create (Array.length Deflate.length_base) in
  let dist_m = Range_coder.Model.create (Array.length Deflate.dist_base) in
  let ubit = Range_coder.Model.create 2 in
  let history = Array.make order 0 in
  let d = Range_coder.decoder (String.sub z !pos (String.length z - !pos)) in
  let raw_bits bits =
    let v = ref 0 in
    for _ = 1 to bits do
      v := (!v lsl 1) lor Range_coder.decode d ubit
    done;
    !v
  in
  (* adaptive coding can pack a symbol into under a bit, so [n] cannot
     be bounded by the input length; every loop below is bounded by [n]
     and every iteration writes at least one byte, so decode is total *)
  let buf = Bytes.create n in
  let out = ref 0 in
  while !out < n do
    let f = Range_coder.decode d flag in
    Range_coder.Model.update flag f;
    if f = flag_lit then begin
      let m = lit.(Range_coder.ctx_hash order history) in
      let b = Range_coder.decode d m in
      Range_coder.Model.update m b;
      Bytes.set buf !out (Char.chr b);
      push_history history b;
      incr out
    end
    else begin
      let lc = Range_coder.decode d len_m in
      Range_coder.Model.update len_m lc;
      let length = Deflate.length_base.(lc) + raw_bits Deflate.length_extra.(lc) in
      let dc = Range_coder.decode d dist_m in
      Range_coder.Model.update dist_m dc;
      let dist = Deflate.dist_base.(dc) + raw_bits Deflate.dist_extra.(dc) in
      if dist > !out then
        fail Support.Decode_error.Bad_value
          (Printf.sprintf "distance %d before start of output" dist);
      if length > n - !out then
        fail Support.Decode_error.Inconsistent
          (Printf.sprintf "match of %d bytes exceeds declared length" length);
      for _ = 1 to length do
        let b = Char.code (Bytes.get buf (!out - dist)) in
        Bytes.set buf !out (Char.chr b);
        push_history history b;
        incr out
      done
    end
  done;
  Bytes.unsafe_to_string buf

let decompress ?max_output z =
  Support.Decode_error.guard ~decoder:"lza" (fun () ->
      decompress_exn ?max_output z)
