(** Greedy-with-lazy-matching LZ77 over a sliding window.

    This is the string-matching stage of our gzip-equivalent: it factors
    the input into literals and (length, distance) references, which
    {!Deflate} then entropy-codes. Window and match limits follow
    DEFLATE's (32 KB window, match lengths 3..258). *)

type token =
  | Literal of int                       (** byte value 0..255 *)
  | Match of { length : int; dist : int } (** copy [length] bytes from [dist] back *)

val window_size : int
val min_match : int
val max_match : int

val tokenize : ?good_enough:int -> string -> token list
(** Factor the input. [good_enough] (default 64) stops hash-chain search
    early once a match at least that long is found, trading a little
    ratio for speed. *)

val reconstruct : token list -> (string, Support.Decode_error.t) result
(** Inverse: expand tokens back to the original string. Total: distances
    outside the window or before the start of output, and lengths beyond
    [max_match], yield [Error] with the token position. *)

val reconstruct_exn : token list -> string
(** As {!reconstruct} but raises {!Support.Decode_error.Fail}; for
    trusted token streams. *)
