(** LZ77 over a sliding window, with selectable parse strategies.

    This is the string-matching stage of our gzip-equivalent: it factors
    the input into literals and (length, distance) references, which
    {!Deflate} then entropy-codes. Window and match limits follow
    DEFLATE's (32 KB window, match lengths 3..258).

    Three parsers share one hash-chain match finder: [Greedy] takes the
    longest match everywhere, [Lazy] (the default, the historical
    behaviour) defers one position when the next match is longer, and
    [Optimal] solves the token DAG by shortest path under a
    caller-supplied codeword-cost model — the bit-optimal parsing of
    Ferragina, Nitto & Venturini, where the cheapest factorization
    depends on what the downstream entropy coder charges for each
    token, not on match length alone. *)

type token =
  | Literal of int                       (** byte value 0..255 *)
  | Match of { length : int; dist : int } (** copy [length] bytes from [dist] back *)

val window_size : int
val min_match : int
val max_match : int

type cost_model = {
  literal_cost : int -> int;
      (** cost of emitting this literal byte, in {!cost_scale}ths of a
          bit *)
  match_cost : length:int -> dist:int -> int;
      (** cost of emitting a (length, dist) reference, same unit *)
}

type strategy = Greedy | Lazy | Optimal of cost_model

val cost_scale : int
(** Edge weights are integers in [1/cost_scale] bits (= 16), so cost
    models can express fractional entropy estimates without floats in
    the relaxation loop. *)

val tokenize :
  ?good_enough:int -> ?strategy:strategy -> ?dict:string -> string -> token list
(** Factor the input. [good_enough] (default 64) stops hash-chain search
    early once a match at least that long is found, trading a little
    ratio for speed; under [Optimal] it bounds the per-position
    candidate enumeration the same way. [strategy] defaults to [Lazy],
    byte-identical to the historical parser (pinned by test).

    [dict] (default empty) is a priming dictionary in the style of
    zlib's [deflateSetDictionary]: the parser behaves as if those bytes
    had just been emitted, so matches may reach back into them and a
    distance larger than the current output position addresses the
    dictionary's tail. An empty dictionary is byte-identical to the
    historical parser; a dictionary longer than {!window_size} leaves
    its head unreachable. *)

val reconstruct :
  ?dict:string -> token list -> (string, Support.Decode_error.t) result
(** Inverse: expand tokens back to the original string (the dictionary,
    which both sides must agree on, is primed but not returned). Total:
    distances outside the window or before the start of the primed
    output, and lengths beyond [max_match], yield [Error] with the
    token position. *)

val reconstruct_exn : ?dict:string -> token list -> string
(** As {!reconstruct} but raises {!Support.Decode_error.Fail}; for
    trusted token streams. [Bytes]-backed: matches are bulk blits (an
    overlapping match is a periodic block fill), not per-byte appends. *)

val reconstruct_reference_exn : ?dict:string -> token list -> string
(** The original byte-at-a-time [Buffer] implementation, kept verbatim
    as the differential oracle for {!reconstruct_exn}. *)
