(** Bit-optimal LZ77 parse + adaptive range-coded token stream.

    The strongest final stage in the wire format's design space: the
    {!Lz77.Optimal} parser factors the input under estimated
    range-model bit costs, and the tokens travel in a single adaptive
    range-coded stream — literals under the same order-2 context model
    as {!Range_coder.compress_order_n} (the context history advances
    through match copies, so matched and literal bytes share
    statistics), match lengths and distances as their RFC 1951 classes
    ({!Deflate.length_class} / {!Deflate.dist_class}) under adaptive
    models, extra bits raw. Slower to encode than either parent;
    usually smaller than both. *)

val compress : string -> string
(** [decompress_exn (compress s) = s]. Header is the uncompressed
    length as ULEB128, then the range-coded token stream. *)

val tokenize_opt : ?iterations:int -> string -> Lz77.token list
(** The parse {!compress} uses: shortest-path under token-class
    entropy estimated from a seed (lazy) parse, iterated [iterations]
    (default 2) rounds. Exposed for the parse-quality property
    tests. *)

val cost_model_of_tokens : Lz77.token list -> Lz77.cost_model
(** Estimated range-coder cost of each token under the class
    frequencies of a seed parse: [-log2 p] in {!Lz77.cost_scale}ths of
    a bit (add-one smoothed, floored at 1), plus whole extra bits. *)

val decompress :
  ?max_output:int -> string -> (string, Support.Decode_error.t) result
(** Total inverse: corrupt input yields a typed [Error]; the declared
    output length is checked against [max_output] (default 64 MB)
    before allocation, and every decoded distance/length is validated
    against the output produced so far. *)

val decompress_exn : ?max_output:int -> string -> string
(** As {!decompress} but raises {!Support.Decode_error.Fail}; for
    trusted inputs. *)
