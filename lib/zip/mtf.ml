(* Move-to-front coding.

   Hot-path engineering (DESIGN.md §10): the table is a flat int array
   of dense symbol ids with the front at index 0. A lookup scans ints
   (cache-friendly, no closure calls); a move-to-front is one
   overlapping [Array.blit] — no allocation per symbol, unlike the
   original linked-list [List.filter] implementation, which is retained
   verbatim under {!Reference} as the differential-test oracle. Ids are
   assigned by first occurrence, so the id stream determines both the
   MTF indices and the novel-symbol order, and the outputs stay
   byte-identical to the list implementation. *)

type 'a encoded = { indices : int list; novel : 'a list }

let fail ~pos kind msg = Support.Decode_error.fail ~decoder:"mtf" ~kind ~pos msg

(* ---- the array engine over dense first-occurrence ids ---- *)

(* [encode_ids ids] MTF-codes a stream of dense ids: the k-th distinct
   value to appear must be k (first-occurrence numbering). Index 0 means
   "not seen previously"; index i >= 1 refers to the 1-based position in
   the current table. *)
let encode_ids (ids : int array) : int array =
  let n = Array.length ids in
  let out = Array.make n 0 in
  let table = ref (Array.make 64 0) in
  let tlen = ref 0 in
  for i = 0 to n - 1 do
    let id = Array.unsafe_get ids i in
    let t = !table in
    let p = ref 0 in
    while !p < !tlen && Array.unsafe_get t !p <> id do incr p done;
    if !p = !tlen then begin
      (* novel: grow if needed, then insert at the front *)
      let t =
        if !tlen = Array.length t then begin
          let nt = Array.make (2 * !tlen) 0 in
          Array.blit t 0 nt 0 !tlen;
          table := nt;
          nt
        end
        else t
      in
      Array.blit t 0 t 1 !tlen;
      Array.unsafe_set t 0 id;
      incr tlen
      (* out.(i) is already 0 *)
    end
    else begin
      Array.unsafe_set out i (!p + 1);
      Array.blit t 0 t 1 !p;
      Array.unsafe_set t 0 id
    end
  done;
  out

(* Inverse: rebuild the id stream. Total — a bad index or an index
   stream that introduces more novels than [max_novel] (when given)
   yields a typed error at the element position. *)
let decode_ids ?max_novel (indices : int array) : int array =
  let n = Array.length indices in
  let out = Array.make n 0 in
  let table = ref (Array.make 64 0) in
  let tlen = ref 0 in
  let next_id = ref 0 in
  for pos = 0 to n - 1 do
    let i = Array.unsafe_get indices pos in
    if i < 0 then
      fail ~pos Support.Decode_error.Bad_value
        (Printf.sprintf "negative index %d" i)
    else if i = 0 then begin
      (match max_novel with
      | Some m when !next_id >= m ->
        fail ~pos Support.Decode_error.Inconsistent "novel list exhausted"
      | _ -> ());
      let t =
        if !tlen = Array.length !table then begin
          let nt = Array.make (2 * !tlen) 0 in
          Array.blit !table 0 nt 0 !tlen;
          table := nt;
          nt
        end
        else !table
      in
      Array.blit t 0 t 1 !tlen;
      Array.unsafe_set t 0 !next_id;
      Array.unsafe_set out pos !next_id;
      incr next_id;
      incr tlen
    end
    else if i > !tlen then
      fail ~pos Support.Decode_error.Bad_value
        (Printf.sprintf "index %d exceeds table of %d" i !tlen)
    else begin
      let t = !table in
      let id = Array.unsafe_get t (i - 1) in
      Array.blit t 0 t 1 (i - 1);
      Array.unsafe_set t 0 id;
      Array.unsafe_set out pos id
    end
  done;
  out

(* ---- symbol interning ---- *)

(* Dense first-occurrence ids for an arbitrary symbol stream, resolved
   through user hash/eq ([hash] must agree with [eq]). Buckets are keyed
   by the hash value in a plain int-keyed Hashtbl; collisions fall back
   to [eq]. Returns the id stream plus the distinct symbols in id
   order — exactly the novel table the wire format transmits. *)
let intern ~hash ~eq xs =
  let buckets : (int, ('a * int) list) Hashtbl.t = Hashtbl.create 256 in
  let novel = ref [] in
  let count = ref 0 in
  let id_of x =
    let h = hash x in
    let bucket = try Hashtbl.find buckets h with Not_found -> [] in
    match List.find_opt (fun (y, _) -> eq x y) bucket with
    | Some (_, id) -> id
    | None ->
      let id = !count in
      incr count;
      Hashtbl.replace buckets h ((x, id) :: bucket);
      novel := x :: !novel;
      id
  in
  let ids = Array.of_list (List.map id_of xs) in
  (ids, List.rev !novel)

(* ---- public API ---- *)

let intern_hashed ~hash ~eq xs = intern ~hash ~eq xs

let encode_hashed ~hash ~eq xs =
  let ids, novel = intern ~hash ~eq xs in
  { indices = Array.to_list (encode_ids ids); novel }

(* The generic path cannot hash (an arbitrary [eq] admits no compatible
   hash), so it interns by linear scan over the distinct symbols — the
   same comparison count as the old list walk, minus its per-symbol
   allocations. *)
let encode ~eq xs =
  match xs with
  | [] -> { indices = []; novel = [] }
  | x0 :: _ ->
    let syms = ref (Array.make 16 x0) in
    let count = ref 0 in
    let id_of x =
      let s = !syms in
      let p = ref 0 in
      while !p < !count && not (eq x (Array.unsafe_get s !p)) do incr p done;
      if !p < !count then !p
      else begin
        let s =
          if !count = Array.length s then begin
            let ns = Array.make (2 * !count) x0 in
            Array.blit s 0 ns 0 !count;
            syms := ns;
            ns
          end
          else s
        in
        s.(!count) <- x;
        incr count;
        !count - 1
      end
    in
    let ids = Array.of_list (List.map id_of xs) in
    let novel = Array.to_list (Array.sub !syms 0 !count) in
    { indices = Array.to_list (encode_ids ids); novel }

let decode_exn { indices; novel } =
  let novel_arr = Array.of_list novel in
  let ids =
    decode_ids ~max_novel:(Array.length novel_arr) (Array.of_list indices)
  in
  Array.to_list (Array.map (fun id -> novel_arr.(id)) ids)

let decode e = Support.Decode_error.guard ~decoder:"mtf" (fun () -> decode_exn e)

let encode_ints xs =
  let ids, novel = intern ~hash:(fun x -> x) ~eq:Int.equal xs in
  { indices = Array.to_list (encode_ids ids); novel }

let decode_ints_exn e = decode_exn e
let decode_ints e = decode e

(* ---- the original list implementation, kept as the test oracle ---- *)

module Reference = struct
  let encode ~eq xs =
    (* The table is a list with the most recently used symbol first. *)
    let table = ref [] in
    let novel = ref [] in
    let index_of x =
      let rec go i = function
        | [] -> None
        | y :: rest -> if eq x y then Some i else go (i + 1) rest
      in
      go 1 !table
    in
    let emit x =
      match index_of x with
      | Some i ->
        (* move to front *)
        table := x :: List.filter (fun y -> not (eq x y)) !table;
        i
      | None ->
        novel := x :: !novel;
        table := x :: !table;
        0
    in
    let indices = List.map emit xs in
    { indices; novel = List.rev !novel }

  (* [pos] below is the element index of the offending MTF index, which is
     the most useful "position" for a symbol-stream decoder. *)
  let decode_exn { indices; novel } =
    let table = ref [] in
    let table_len = ref 0 in
    let pending = ref novel in
    let emit pos i =
      if i < 0 then
        fail ~pos Support.Decode_error.Bad_value
          (Printf.sprintf "negative index %d" i)
      else if i = 0 then begin
        match !pending with
        | [] ->
          fail ~pos Support.Decode_error.Inconsistent "novel list exhausted"
        | x :: rest ->
          pending := rest;
          table := x :: !table;
          incr table_len;
          x
      end
      else if i > !table_len then
        fail ~pos Support.Decode_error.Bad_value
          (Printf.sprintf "index %d exceeds table of %d" i !table_len)
      else begin
        let x = List.nth !table (i - 1) in
        table := x :: List.filteri (fun j _ -> j <> i - 1) !table;
        x
      end
    in
    List.mapi emit indices
end
