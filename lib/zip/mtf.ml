type 'a encoded = { indices : int list; novel : 'a list }

let encode ~eq xs =
  (* The table is a list with the most recently used symbol first. *)
  let table = ref [] in
  let novel = ref [] in
  let index_of x =
    let rec go i = function
      | [] -> None
      | y :: rest -> if eq x y then Some i else go (i + 1) rest
    in
    go 1 !table
  in
  let emit x =
    match index_of x with
    | Some i ->
      (* move to front *)
      table := x :: List.filter (fun y -> not (eq x y)) !table;
      i
    | None ->
      novel := x :: !novel;
      table := x :: !table;
      0
  in
  let indices = List.map emit xs in
  { indices; novel = List.rev !novel }

(* [pos] below is the element index of the offending MTF index, which is
   the most useful "position" for a symbol-stream decoder. *)
let decode_exn { indices; novel } =
  let fail ~pos kind msg =
    Support.Decode_error.fail ~decoder:"mtf" ~kind ~pos msg
  in
  let table = ref [] in
  let table_len = ref 0 in
  let pending = ref novel in
  let emit pos i =
    if i < 0 then
      fail ~pos Support.Decode_error.Bad_value
        (Printf.sprintf "negative index %d" i)
    else if i = 0 then begin
      match !pending with
      | [] -> fail ~pos Support.Decode_error.Inconsistent "novel list exhausted"
      | x :: rest ->
        pending := rest;
        table := x :: !table;
        incr table_len;
        x
    end
    else if i > !table_len then
      fail ~pos Support.Decode_error.Bad_value
        (Printf.sprintf "index %d exceeds table of %d" i !table_len)
    else begin
      let x = List.nth !table (i - 1) in
      table := x :: List.filteri (fun j _ -> j <> i - 1) !table;
      x
    end
  in
  List.mapi emit indices

let decode e = Support.Decode_error.guard ~decoder:"mtf" (fun () -> decode_exn e)

let encode_ints xs = encode ~eq:Int.equal xs
let decode_ints_exn e = decode_exn e
let decode_ints e = decode e
