(** Canonical Huffman coding over integer symbol alphabets [0, n).

    Code lengths are computed from symbol frequencies (optionally
    length-limited by frequency flattening), then canonical codes are
    assigned so that a decoder can be rebuilt from the lengths alone.
    Codes are written MSB-first, the standard canonical convention. *)

type code = { lengths : int array }
(** [lengths.(sym)] is the code length in bits; 0 means the symbol does
    not occur and has no code. *)

val lengths_of_freqs : ?max_len:int -> int array -> code
(** Package-merge-free construction: builds a Huffman tree over the
    non-zero-frequency symbols. If the resulting depth exceeds [max_len]
    (default 15), frequencies are repeatedly halved (rounding up) and the
    tree rebuilt, which bounds the depth with negligible size loss.
    A single-symbol alphabet gets a 1-bit code. *)

val canonical_codes : code -> int array
(** [codes.(sym)] is the canonical codeword (MSB-first) of length
    [lengths.(sym)]. Symbols with length 0 map to 0 and must not be
    encoded. *)

type encoder
type decoder

val make_encoder : code -> encoder
val make_decoder : code -> decoder

val encode_symbol : encoder -> Support.Bitio.Writer.t -> int -> unit
(** Single [put_bits] of the precomputed bit-reversed code (the bit
    stream is LSB-first within bytes, so this emits the canonical code
    MSB-first). @raise Invalid_argument if the symbol has no code. *)

val decode_symbol : decoder -> Support.Bitio.Reader.t -> int
(** Table-driven: peeks up to 10 bits and resolves codewords of that
    length or shorter in one lookup; longer codewords, near-end probes
    and corrupt input fall back to the canonical bit-at-a-time walk.
    @raise Support.Decode_error.Fail on a code not in the table or input
    ending mid-codeword; callers decoding untrusted bytes run under
    {!Support.Decode_error.guard}. *)

val decode_symbol_slow : decoder -> Support.Bitio.Reader.t -> int
(** The bit-at-a-time decode path on its own; the oracle for
    differential tests against the table-driven {!decode_symbol}. *)

val write_lengths : Support.Bitio.Writer.t -> code -> unit
(** Serialize the length table (alphabet size as a varint-ish field, then
    4 bits... actually 5 bits per length). Enough for the decoder to
    reconstruct the canonical code. *)

val read_lengths : Support.Bitio.Reader.t -> code

val cost_bits : code -> int array -> int
(** [cost_bits code freqs] is the total encoded size in bits of a stream
    with the given per-symbol frequencies. *)

val encode_all : int list -> alphabet:int -> Bytes.t
(** Convenience: frequency-count the input, build a code, serialize
    lengths + symbols into one self-contained byte string. *)

val encode_all_arr : int array -> alphabet:int -> Bytes.t
(** As {!encode_all} over an int array — byte-identical output, no
    intermediate list. The hot path for the wire format's streams. *)

val decode_all : Bytes.t -> (int list, Support.Decode_error.t) result
(** Total inverse of {!encode_all}: symbol counts and length tables are
    validated against the remaining input before any allocation. *)

val decode_all_exn : Bytes.t -> int list
(** As {!decode_all} but raises {!Support.Decode_error.Fail}; for
    trusted inputs. *)

val decode_all_arr_exn : Bytes.t -> int array
(** As {!decode_all_exn} into an int array. *)
