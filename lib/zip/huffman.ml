type code = { lengths : int array }

(* --- tree construction ------------------------------------------------ *)

type node =
  | Leaf of int                 (* symbol *)
  | Node of node * node

let build_tree freqs =
  (* min-heap on (freq, tiebreak, node); tiebreak keeps construction
     deterministic across runs. *)
  let cmp (f1, t1, _) (f2, t2, _) =
    if f1 <> f2 then compare f2 f1 else compare t2 t1
  in
  let h = Support.Heap.create ~cmp in
  let tie = ref 0 in
  Array.iteri
    (fun sym f ->
      if f > 0 then begin
        Support.Heap.push h (f, !tie, Leaf sym);
        incr tie
      end)
    freqs;
  if Support.Heap.is_empty h then None
  else begin
    while Support.Heap.length h > 1 do
      let f1, _, n1 = Support.Heap.pop_exn h in
      let f2, _, n2 = Support.Heap.pop_exn h in
      Support.Heap.push h (f1 + f2, !tie, Node (n1, n2));
      incr tie
    done;
    let _, _, root = Support.Heap.pop_exn h in
    Some root
  end

let rec fill_lengths lengths depth = function
  | Leaf sym -> lengths.(sym) <- max 1 depth
  | Node (l, r) ->
    fill_lengths lengths (depth + 1) l;
    fill_lengths lengths (depth + 1) r

let lengths_of_freqs ?(max_len = 15) freqs =
  let n = Array.length freqs in
  let rec attempt freqs =
    let lengths = Array.make n 0 in
    (match build_tree freqs with
    | None -> ()
    | Some root -> fill_lengths lengths 0 root);
    let deepest = Array.fold_left max 0 lengths in
    if deepest <= max_len then { lengths }
    else
      (* Flatten the distribution and retry; converges because all
         frequencies tend to 1, giving a balanced tree of depth
         ceil(log2 n) <= max_len for any realistic alphabet. *)
      attempt (Array.map (fun f -> if f = 0 then 0 else (f + 1) / 2) freqs)
  in
  attempt freqs

(* --- canonical code assignment ---------------------------------------- *)

let canonical_codes { lengths } =
  let n = Array.length lengths in
  let max_len = Array.fold_left max 0 lengths in
  let bl_count = Array.make (max_len + 1) 0 in
  Array.iter (fun l -> if l > 0 then bl_count.(l) <- bl_count.(l) + 1) lengths;
  let next_code = Array.make (max_len + 2) 0 in
  let code = ref 0 in
  for bits = 1 to max_len do
    code := (!code + bl_count.(bits - 1)) lsl 1;
    next_code.(bits) <- !code
  done;
  let codes = Array.make n 0 in
  for sym = 0 to n - 1 do
    let l = lengths.(sym) in
    if l > 0 then begin
      codes.(sym) <- next_code.(l);
      next_code.(l) <- next_code.(l) + 1
    end
  done;
  codes

(* --- encoder / decoder ------------------------------------------------- *)

(* [bit_reverse v n] reverses the low [n] bits of [v]. The bit stream is
   LSB-first within bytes (DEFLATE convention), so writing the reversed
   code LSB-first emits exactly the same bit sequence as writing the
   canonical code MSB-first — one [put_bits] call instead of a loop of
   [put_bit], and the key that lets the decoder index a flat table with
   an LSB-first peek. *)
let bit_reverse v n =
  let r = ref 0 in
  for i = 0 to n - 1 do
    r := (!r lsl 1) lor ((v lsr i) land 1)
  done;
  !r

type encoder = {
  enc_lengths : int array;
  enc_codes : int array;
  enc_rev : int array;          (* bit-reversed codes, for LSB-first emit *)
}

(* Root-table entries pack (symbol lsl 5) lor length; length >= 1 for
   any real codeword, so 0 marks "longer than the root or invalid" and
   routes to the bit-at-a-time fallback. *)
let root_bits_cap = 10

type decoder = {
  (* canonical decode tables indexed by length *)
  first_code : int array;       (* smallest code of each length *)
  first_index : int array;      (* index into sorted_syms of that code *)
  counts : int array;           (* number of codes of each length *)
  sorted_syms : int array;      (* symbols sorted by (length, code) *)
  dec_max_len : int;
  root_bits : int;              (* table index width, min(max_len, cap) *)
  root_table : int array;       (* 2^root_bits packed entries *)
}

let make_encoder c =
  let codes = canonical_codes c in
  let rev = Array.mapi (fun sym cd -> bit_reverse cd c.lengths.(sym)) codes in
  { enc_lengths = c.lengths; enc_codes = codes; enc_rev = rev }

let make_decoder ({ lengths } as c) =
  let max_len = Array.fold_left max 0 lengths in
  let counts = Array.make (max_len + 1) 0 in
  Array.iter (fun l -> if l > 0 then counts.(l) <- counts.(l) + 1) lengths;
  let codes = canonical_codes c in
  (* sort symbols by (length, code) *)
  let syms =
    Array.to_list lengths
    |> List.mapi (fun s l -> (s, l))
    |> List.filter (fun (_, l) -> l > 0)
    |> List.sort (fun (s1, l1) (s2, l2) ->
           if l1 <> l2 then compare l1 l2 else compare codes.(s1) codes.(s2))
    |> List.map fst
    |> Array.of_list
  in
  let first_code = Array.make (max_len + 1) 0 in
  let first_index = Array.make (max_len + 1) 0 in
  let idx = ref 0 in
  let code = ref 0 in
  for l = 1 to max_len do
    code := (!code + if l = 1 then 0 else counts.(l - 1)) lsl 1;
    (* recompute canonical first code of length l *)
    first_code.(l) <- !code;
    first_index.(l) <- !idx;
    idx := !idx + counts.(l)
  done;
  (* Flat lookup table over the next [root_bits] bits of the stream
     (LSB-first, as peeked). A codeword of length l <= root_bits owns
     every table slot whose low l bits are its reversed code; slots left
     at 0 (longer codewords, or bit patterns outside the code) fall back
     to the canonical bit-at-a-time walk. *)
  let root_bits = min max_len root_bits_cap in
  let root_table = Array.make (1 lsl root_bits) 0 in
  Array.iteri
    (fun sym l ->
      if l > 0 && l <= root_bits then begin
        let rev = bit_reverse codes.(sym) l in
        let fillers = 1 lsl (root_bits - l) in
        for j = 0 to fillers - 1 do
          root_table.(rev lor (j lsl l)) <- (sym lsl 5) lor l
        done
      end)
    lengths;
  { first_code; first_index; counts; sorted_syms = syms;
    dec_max_len = max_len; root_bits; root_table }

let encode_symbol e w sym =
  let l = e.enc_lengths.(sym) in
  if l = 0 then invalid_arg "Huffman.encode_symbol: symbol has no code";
  Support.Bitio.Writer.put_bits w e.enc_rev.(sym) l

let hfail r kind msg =
  Support.Decode_error.fail ~decoder:"huffman" ~kind
    ~pos:(Support.Bitio.Reader.bit_position r / 8)
    msg

(* Canonical bit-at-a-time decode: the fallback for codewords longer
   than the root table, near-end-of-stream probes, and corrupt input
   (where it owns the exact error positions and messages). *)
let decode_symbol_slow d r =
  let code = ref 0 in
  let len = ref 0 in
  let result = ref (-1) in
  while !result < 0 do
    if Support.Bitio.Reader.bits_remaining r = 0 then
      hfail r Support.Decode_error.Truncated "input ends mid-codeword";
    code := (!code lsl 1) lor Support.Bitio.Reader.get_bit r;
    incr len;
    if !len > d.dec_max_len then
      hfail r Support.Decode_error.Bad_value "no codeword of any valid length";
    let c = d.counts.(!len) in
    if c > 0 && !code - d.first_code.(!len) < c && !code >= d.first_code.(!len)
    then result := d.sorted_syms.(d.first_index.(!len) + (!code - d.first_code.(!len)))
  done;
  !result

let decode_symbol d r =
  (* Peek a full table index (zero-padded past end of input); the entry,
     when present, names the unique codeword that is a prefix of those
     bits. The prefix property makes the fallback safe: if the matched
     length overruns the real input, no shorter codeword could have
     matched either, so the slow path correctly reports truncation. *)
  let idx = Support.Bitio.Reader.peek_bits r d.root_bits in
  let entry = Array.unsafe_get d.root_table idx in
  if entry <> 0 then begin
    let l = entry land 31 in
    if l <= Support.Bitio.Reader.bits_remaining r then begin
      Support.Bitio.Reader.advance_bits r l;
      entry lsr 5
    end
    else decode_symbol_slow d r
  end
  else decode_symbol_slow d r

(* --- length-table serialization ---------------------------------------- *)

let write_lengths w { lengths } =
  let n = Array.length lengths in
  Support.Bitio.Writer.put_bits w n 16;
  Array.iter (fun l -> Support.Bitio.Writer.put_bits w l 5) lengths

let read_lengths r =
  let n = Support.Bitio.Reader.get_bits r 16 in
  if n * 5 > Support.Bitio.Reader.bits_remaining r then
    hfail r Support.Decode_error.Truncated
      (Printf.sprintf "length table of %d entries exceeds remaining input" n);
  let lengths = Array.init n (fun _ -> Support.Bitio.Reader.get_bits r 5) in
  { lengths }

let cost_bits { lengths } freqs =
  let total = ref 0 in
  Array.iteri
    (fun sym f -> if f > 0 then total := !total + (f * lengths.(sym)))
    freqs;
  !total

(* --- convenience whole-stream API -------------------------------------- *)

let encode_all_arr syms ~alphabet =
  let freqs = Array.make alphabet 0 in
  Array.iter (fun s -> freqs.(s) <- freqs.(s) + 1) syms;
  let code = lengths_of_freqs freqs in
  let w = Support.Bitio.Writer.create () in
  Support.Bitio.Writer.put_bits w (Array.length syms) 32;
  write_lengths w code;
  let e = make_encoder code in
  Array.iter (fun s -> encode_symbol e w s) syms;
  Support.Bitio.Writer.contents w

let encode_all syms ~alphabet = encode_all_arr (Array.of_list syms) ~alphabet

let decode_all_arr_exn bytes =
  let r = Support.Bitio.Reader.of_bytes bytes in
  if Support.Bitio.Reader.bits_remaining r < 32 then
    hfail r Support.Decode_error.Truncated "missing symbol count";
  let count = Support.Bitio.Reader.get_bits r 32 in
  let code = read_lengths r in
  (* every symbol costs at least one bit, so a count beyond the remaining
     bit budget is corrupt — reject before allocating the result *)
  if count > Support.Bitio.Reader.bits_remaining r then
    hfail r Support.Decode_error.Limit
      (Printf.sprintf "symbol count %d exceeds remaining input" count);
  if count = 0 then [||]
  else begin
    let d = make_decoder code in
    let out = Array.make count 0 in
    for i = 0 to count - 1 do
      out.(i) <- decode_symbol d r
    done;
    out
  end

let decode_all_exn bytes = Array.to_list (decode_all_arr_exn bytes)

let decode_all bytes =
  Support.Decode_error.guard ~decoder:"huffman" (fun () -> decode_all_exn bytes)
