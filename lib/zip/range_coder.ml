(* 32-bit range coder (Subbotin style) with byte-wise renormalization. *)

let top = 1 lsl 24
let bot = 1 lsl 16
let mask32 = 0xFFFFFFFF

module Model = struct
  type t = { freqs : int array; mutable total : int }

  let max_total = bot - 1

  let create n =
    if n <= 0 then invalid_arg "Range_coder.Model.create";
    { freqs = Array.make n 1; total = n }

  let halve m =
    m.total <- 0;
    Array.iteri
      (fun i f ->
        let f' = (f + 1) / 2 in
        m.freqs.(i) <- f';
        m.total <- m.total + f')
      m.freqs

  let update m sym =
    m.freqs.(sym) <- m.freqs.(sym) + 32;
    m.total <- m.total + 32;
    if m.total >= max_total then halve m

  let cum_below m sym =
    let c = ref 0 in
    for i = 0 to sym - 1 do c := !c + m.freqs.(i) done;
    !c

  let find m target =
    let c = ref 0 and i = ref 0 in
    while !c + m.freqs.(!i) <= target do
      c := !c + m.freqs.(!i);
      incr i
    done;
    (!i, !c)
end

type encoder = {
  mutable low : int;
  mutable range : int;
  buf : Buffer.t;
}

let encoder () = { low = 0; range = mask32; buf = Buffer.create 256 }

let enc_normalize e =
  while
    (e.low lxor (e.low + e.range)) < top
    || (e.range < bot
       &&
       (e.range <- -e.low land (bot - 1);
        true))
  do
    Buffer.add_char e.buf (Char.chr ((e.low lsr 24) land 0xff));
    e.low <- (e.low lsl 8) land mask32;
    e.range <- (e.range lsl 8) land mask32
  done

let encode e m sym =
  let cum = Model.cum_below m sym in
  let f = m.Model.freqs.(sym) in
  let r = e.range / m.Model.total in
  e.low <- (e.low + (r * cum)) land mask32;
  e.range <- r * f;
  enc_normalize e

let finish e =
  for _ = 1 to 4 do
    Buffer.add_char e.buf (Char.chr ((e.low lsr 24) land 0xff));
    e.low <- (e.low lsl 8) land mask32
  done;
  Buffer.contents e.buf

type decoder = {
  mutable dlow : int;
  mutable drange : int;
  mutable code : int;
  src : string;
  mutable pos : int;
}

let next_byte d =
  if d.pos < String.length d.src then begin
    let b = Char.code d.src.[d.pos] in
    d.pos <- d.pos + 1;
    b
  end
  else 0

let decoder s =
  let d = { dlow = 0; drange = mask32; code = 0; src = s; pos = 0 } in
  for _ = 1 to 4 do
    d.code <- ((d.code lsl 8) lor next_byte d) land mask32
  done;
  d

let dec_normalize d =
  while
    (d.dlow lxor (d.dlow + d.drange)) < top
    || (d.drange < bot
       &&
       (d.drange <- -d.dlow land (bot - 1);
        true))
  do
    d.code <- ((d.code lsl 8) lor next_byte d) land mask32;
    d.dlow <- (d.dlow lsl 8) land mask32;
    d.drange <- (d.drange lsl 8) land mask32
  done

let decode d m =
  let r = d.drange / m.Model.total in
  let target = min (m.Model.total - 1) ((d.code - d.dlow) land mask32 / r) in
  let sym, cum = Model.find m target in
  let f = m.Model.freqs.(sym) in
  d.dlow <- (d.dlow + (r * cum)) land mask32;
  d.drange <- r * f;
  dec_normalize d;
  sym

(* ---- order-N byte compressor ---- *)

let context_slots = 4096

let ctx_hash order history =
  if order = 0 then 0
  else begin
    let h = ref 0 in
    for i = 0 to order - 1 do
      h := (!h * 257) + history.(i)
    done;
    !h land (context_slots - 1)
  end

let compress_order_n ~order s =
  if order < 0 || order > 3 then invalid_arg "Range_coder.compress_order_n";
  let models = Array.init (if order = 0 then 1 else context_slots) (fun _ -> Model.create 256) in
  let history = Array.make (max order 1) 0 in
  let e = encoder () in
  String.iter
    (fun c ->
      let b = Char.code c in
      let m = models.(ctx_hash order history) in
      encode e m b;
      Model.update m b;
      if order > 0 then begin
        for i = order - 1 downto 1 do
          history.(i) <- history.(i - 1)
        done;
        history.(0) <- b
      end)
    s;
  let body = finish e in
  let hdr = Buffer.create 8 in
  Support.Util.uleb128 hdr (String.length s);
  Buffer.add_char hdr (Char.chr order);
  Buffer.contents hdr ^ body

let default_max_output = 1 lsl 26

let decompress_order_n_exn ?(max_output = default_max_output) ~order z =
  if order < 0 || order > 3 then invalid_arg "Range_coder.decompress_order_n";
  let pos = ref 0 in
  let fail kind msg =
    Support.Decode_error.fail ~decoder:"range" ~kind ~pos:!pos msg
  in
  let n = Support.Util.read_uleb128 z pos in
  if n > max_output then
    fail Support.Decode_error.Limit
      (Printf.sprintf "declared length %d exceeds cap %d" n max_output);
  if !pos >= String.length z then
    fail Support.Decode_error.Truncated "missing order byte";
  let stored_order = Char.code z.[!pos] in
  incr pos;
  if stored_order <> order then
    fail Support.Decode_error.Bad_value
      (Printf.sprintf "stored order %d, expected %d" stored_order order);
  let models = Array.init (if order = 0 then 1 else context_slots) (fun _ -> Model.create 256) in
  let history = Array.make (max order 1) 0 in
  let d = decoder (String.sub z !pos (String.length z - !pos)) in
  (* adaptive coding can pack a symbol into under a bit, so [n] cannot be
     bounded by the input length; grow towards it instead of trusting it *)
  let buf = Buffer.create (min n 65536) in
  for _ = 1 to n do
    let m = models.(ctx_hash order history) in
    let b = decode d m in
    Model.update m b;
    Buffer.add_char buf (Char.chr b);
    if order > 0 then begin
      for i = order - 1 downto 1 do
        history.(i) <- history.(i - 1)
      done;
      history.(0) <- b
    end
  done;
  Buffer.contents buf

let decompress_order_n ?max_output ~order z =
  Support.Decode_error.guard ~decoder:"range" (fun () ->
      decompress_order_n_exn ?max_output ~order z)
