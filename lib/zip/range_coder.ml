(* 32-bit range coder (Subbotin style) with byte-wise renormalization. *)

let top = 1 lsl 24
let bot = 1 lsl 16
let mask32 = 0xFFFFFFFF

(* The adaptive model is the coder's inner loop: [cum_below] on encode
   and [find] on decode run once per symbol. The naive per-symbol scan
   is O(alphabet); a Fenwick (binary-indexed) tree makes both O(log
   alphabet) while the model state — per-symbol frequencies and their
   total — evolves identically, so every emitted byte is unchanged
   (DESIGN.md §10). The scan implementation survives as
   [Model.Reference], the differential-test oracle.

   Storage is uint16 cells in [Bytes], not int arrays: every frequency
   and every Fenwick node is bounded by the total, which the halving
   rule keeps under [max_total] = 65535 at rest, so 16 bits always
   suffice. That shrinks a 256-symbol model from ~4 KB to ~1 KB — the
   order-2 compressor keeps 4096 context models live, and at int-array
   size their working set (~16 MB) turns every O(log n) probe into a
   cache miss, slower than the scan it replaced. At uint16 size the
   whole model bank (~4.4 MB) stays cache-resident and the tree wins on
   both counts (measured in DESIGN.md §10). *)
module Model = struct
  type t = {
    n : int;
    freqs : Bytes.t;  (* n uint16 cells, per-symbol frequency >= 1 *)
    tree : Bytes.t;   (* n+1 uint16 cells, 1-based Fenwick over freqs *)
    mutable total : int;
    start_bit : int;  (* first probe width for the descent, see create *)
  }

  let max_total = bot - 1

  (* 16-bit cell access; offsets are cell index * 2, in range by
     construction (hot-path indices are bounded by [n]). The compiler
     primitives load/store one unsigned 16-bit cell — native endian,
     which is fine for state that never leaves the process. *)
  external get16 : Bytes.t -> int -> int = "%caml_bytes_get16u"
  external set16 : Bytes.t -> int -> int -> unit = "%caml_bytes_set16u"

  (* rebuild [tree] from [freqs] in O(n); every cell of [tree] is
     overwritten (pass 1) before the in-place prefix propagation *)
  let rebuild m =
    for i = 1 to m.n do
      set16 m.tree (i * 2) (get16 m.freqs ((i - 1) * 2))
    done;
    for i = 1 to m.n - 1 do
      let j = i + (i land -i) in
      if j <= m.n then set16 m.tree (j * 2) (get16 m.tree (j * 2) + get16 m.tree (i * 2))
    done

  let create n =
    (* n > max_total would overflow the uint16 cells — and the coder
       itself, whose range division needs total < 2^16 *)
    if n <= 0 || n > max_total then invalid_arg "Range_coder.Model.create";
    let top_bit = ref 1 in
    while !top_bit * 2 <= n do top_bit := !top_bit * 2 done;
    (* For a power-of-two alphabet the root probe at [idx + n] reads
       tree node n = total, and total > target always, so that branch is
       never taken: start the descent one bit lower. *)
    let start_bit = if !top_bit = n then !top_bit lsr 1 else !top_bit in
    let m =
      { n; freqs = Bytes.make (n * 2) '\000';
        tree = Bytes.make ((n + 1) * 2) '\000';
        total = n; start_bit }
    in
    for i = 0 to n - 1 do set16 m.freqs (i * 2) 1 done;
    rebuild m;
    m

  (* Halve every frequency (the add-one-and-shift rule), with [extra]
     added to [esym]'s frequency first: the pre-halve frequency can
     transiently exceed 16 bits, so it lives in an immediate int here
     and is never stored un-halved. *)
  let halve_with m esym extra =
    let tot = ref 0 in
    for i = 0 to m.n - 1 do
      let f = get16 m.freqs (i * 2) + if i = esym then extra else 0 in
      let f' = (f + 1) / 2 in
      set16 m.freqs (i * 2) f';
      tot := !tot + f'
    done;
    m.total <- !tot;
    rebuild m

  (* The three per-symbol operations are the coder's inner loop across
     thousands of context models; they are written as tail recursions
     over immediate ints (no ref cells, so no per-symbol allocation). *)
  let update m sym =
    let nt = m.total + 32 in
    if nt < max_total then begin
      set16 m.freqs (sym * 2) (get16 m.freqs (sym * 2) + 32);
      let t = m.tree and n = m.n in
      let rec add i =
        if i <= n then begin
          set16 t (i * 2) (get16 t (i * 2) + 32);
          add (i + (i land -i))
        end
      in
      add (sym + 1);
      m.total <- nt
    end
    else
      (* the incremented total would cross the bound: skip the
         incremental tree touch-up and halve+rebuild directly, exactly
         what update-then-halve computed over int arrays *)
      halve_with m sym 32

  let cum_below m sym =
    let t = m.tree in
    let rec go i acc =
      if i > 0 then go (i - (i land -i)) (acc + get16 t (i * 2))
      else acc
    in
    go sym 0

  (* Largest [sym] with cumulative frequency <= [target]; since every
     frequency stays >= 1, prefix sums are strictly increasing and the
     top-down bit descent lands on exactly the symbol the linear scan
     finds, with its cumulative as a by-product. *)
  let find m target =
    let t = m.tree and n = m.n in
    let rec go idx cum bit =
      if bit = 0 then (idx, cum)
      else begin
        let nxt = idx + bit in
        if nxt <= n then begin
          let c = cum + get16 t (nxt * 2) in
          if c <= target then go nxt c (bit lsr 1) else go idx cum (bit lsr 1)
        end
        else go idx cum (bit lsr 1)
      end
    in
    go 0 0 m.start_bit

  let freq m sym = get16 m.freqs (sym * 2)
  let total m = m.total

  (* the original linear-scan model, kept as the test oracle *)
  module Reference = struct
    type t = { freqs : int array; mutable total : int }

    let create n =
      if n <= 0 then invalid_arg "Range_coder.Model.Reference.create";
      { freqs = Array.make n 1; total = n }

    let halve m =
      m.total <- 0;
      Array.iteri
        (fun i f ->
          let f' = (f + 1) / 2 in
          m.freqs.(i) <- f';
          m.total <- m.total + f')
        m.freqs

    let update m sym =
      m.freqs.(sym) <- m.freqs.(sym) + 32;
      m.total <- m.total + 32;
      if m.total >= max_total then halve m

    let cum_below m sym =
      let c = ref 0 in
      for i = 0 to sym - 1 do c := !c + m.freqs.(i) done;
      !c

    let find m target =
      let c = ref 0 and i = ref 0 in
      while !c + m.freqs.(!i) <= target do
        c := !c + m.freqs.(!i);
        incr i
      done;
      (!i, !c)

    let freq m sym = m.freqs.(sym)
    let total m = m.total
  end
end

type encoder = {
  mutable low : int;
  mutable range : int;
  buf : Buffer.t;
}

let encoder () = { low = 0; range = mask32; buf = Buffer.create 256 }

let enc_normalize e =
  while
    (e.low lxor (e.low + e.range)) < top
    || (e.range < bot
       &&
       (e.range <- -e.low land (bot - 1);
        true))
  do
    Buffer.add_char e.buf (Char.chr ((e.low lsr 24) land 0xff));
    e.low <- (e.low lsl 8) land mask32;
    e.range <- (e.range lsl 8) land mask32
  done

let encode e m sym =
  let cum = Model.cum_below m sym in
  let f = Model.freq m sym in
  let r = e.range / Model.total m in
  e.low <- (e.low + (r * cum)) land mask32;
  e.range <- r * f;
  enc_normalize e

let finish e =
  for _ = 1 to 4 do
    Buffer.add_char e.buf (Char.chr ((e.low lsr 24) land 0xff));
    e.low <- (e.low lsl 8) land mask32
  done;
  Buffer.contents e.buf

type decoder = {
  mutable dlow : int;
  mutable drange : int;
  mutable code : int;
  src : string;
  mutable pos : int;
}

let next_byte d =
  if d.pos < String.length d.src then begin
    let b = Char.code d.src.[d.pos] in
    d.pos <- d.pos + 1;
    b
  end
  else 0

let decoder s =
  let d = { dlow = 0; drange = mask32; code = 0; src = s; pos = 0 } in
  for _ = 1 to 4 do
    d.code <- ((d.code lsl 8) lor next_byte d) land mask32
  done;
  d

let dec_normalize d =
  while
    (d.dlow lxor (d.dlow + d.drange)) < top
    || (d.drange < bot
       &&
       (d.drange <- -d.dlow land (bot - 1);
        true))
  do
    d.code <- ((d.code lsl 8) lor next_byte d) land mask32;
    d.dlow <- (d.dlow lsl 8) land mask32;
    d.drange <- (d.drange lsl 8) land mask32
  done

let decode d m =
  let r = d.drange / Model.total m in
  let target = min (Model.total m - 1) ((d.code - d.dlow) land mask32 / r) in
  let sym, cum = Model.find m target in
  let f = Model.freq m sym in
  d.dlow <- (d.dlow + (r * cum)) land mask32;
  d.drange <- r * f;
  dec_normalize d;
  sym

(* ---- order-N byte compressor ---- *)

let context_slots = 4096

let ctx_hash order history =
  if order = 0 then 0
  else begin
    let h = ref 0 in
    for i = 0 to order - 1 do
      h := (!h * 257) + history.(i)
    done;
    !h land (context_slots - 1)
  end

let compress_order_n ~order s =
  if order < 0 || order > 3 then invalid_arg "Range_coder.compress_order_n";
  let models = Array.init (if order = 0 then 1 else context_slots) (fun _ -> Model.create 256) in
  let history = Array.make (max order 1) 0 in
  let e = encoder () in
  String.iter
    (fun c ->
      let b = Char.code c in
      let m = models.(ctx_hash order history) in
      encode e m b;
      Model.update m b;
      if order > 0 then begin
        for i = order - 1 downto 1 do
          history.(i) <- history.(i - 1)
        done;
        history.(0) <- b
      end)
    s;
  let body = finish e in
  let hdr = Buffer.create 8 in
  Support.Util.uleb128 hdr (String.length s);
  Buffer.add_char hdr (Char.chr order);
  Buffer.contents hdr ^ body

let default_max_output = 1 lsl 26

let decompress_order_n_exn ?(max_output = default_max_output) ~order z =
  if order < 0 || order > 3 then invalid_arg "Range_coder.decompress_order_n";
  let pos = ref 0 in
  let fail kind msg =
    Support.Decode_error.fail ~decoder:"range" ~kind ~pos:!pos msg
  in
  let n = Support.Util.read_uleb128 z pos in
  if n > max_output then
    fail Support.Decode_error.Limit
      (Printf.sprintf "declared length %d exceeds cap %d" n max_output);
  if !pos >= String.length z then
    fail Support.Decode_error.Truncated "missing order byte";
  let stored_order = Char.code z.[!pos] in
  incr pos;
  if stored_order <> order then
    fail Support.Decode_error.Bad_value
      (Printf.sprintf "stored order %d, expected %d" stored_order order);
  let models = Array.init (if order = 0 then 1 else context_slots) (fun _ -> Model.create 256) in
  let history = Array.make (max order 1) 0 in
  let d = decoder (String.sub z !pos (String.length z - !pos)) in
  (* adaptive coding can pack a symbol into under a bit, so [n] cannot be
     bounded by the input length; grow towards it instead of trusting it *)
  let buf = Buffer.create (min n 65536) in
  for _ = 1 to n do
    let m = models.(ctx_hash order history) in
    let b = decode d m in
    Model.update m b;
    Buffer.add_char buf (Char.chr b);
    if order > 0 then begin
      for i = order - 1 downto 1 do
        history.(i) <- history.(i - 1)
      done;
      history.(0) <- b
    end
  done;
  Buffer.contents buf

let decompress_order_n ?max_output ~order z =
  Support.Decode_error.guard ~decoder:"range" (fun () ->
      decompress_order_n_exn ?max_output ~order z)
