(** Our gzip stand-in: LZ77 + dynamic canonical-Huffman entropy coding.

    The format follows DEFLATE's structure — a literal/length alphabet
    (256 literals, end-of-block, 29 length classes with extra bits) and a
    30-class distance alphabet — in a single dynamic-Huffman block with a
    plain 5-bit length table header. It is not bit-compatible with RFC
    1951, but it is the same algorithm family, so compression ratios are
    representative of gzip's. Used both as the paper's "gzip" baseline and
    as the final stage of the wire format (§3 step 5). *)

val compress : ?dict:string -> string -> string
(** [encode_tokens ~source:s ~orig_len:(String.length s) (Lz77.tokenize s)].
    Output never exceeds input + 5 bytes: incompressible input falls back
    to a stored block (a 1-bit block type after the length header, then
    the bytes verbatim — RFC 1951 §3.2.4's escape hatch). [dict]
    (default empty, byte-identical to the historical output) primes the
    LZ77 window ({!Lz77.tokenize}'s [dict]); {!decompress} must then be
    given the same bytes. *)

val encode_tokens :
  ?source:string -> ?packed:bool -> orig_len:int -> Lz77.token list -> string
(** The entropy-coding half of {!compress}, split out so the codec layer
    can time the LZ77 and Huffman stages independently. [orig_len] is
    the uncompressed length recorded in the 32-bit header. When [source]
    (the uncompressed bytes, length [orig_len]) is given, the encoder
    emits a stored block instead whenever that is strictly smaller, so
    output is bounded by [orig_len + 5]. Without [source] the output is
    always a Huffman block. [packed] (default false) compresses the
    code-length tables RFC 1951 §3.2.7-style — trimmed, run-length
    encoded and Huffman coded, ~185 bytes down to ~60 per block —
    signalled by the top bit of the 16-bit table-count field, which no
    legacy stream can carry; {!decompress} reads both layouts. Plain
    {!compress} keeps the raw layout because its bytes are
    golden-pinned. *)

(** {2 Token class tables (RFC 1951 layout)}

    Shared with {!Lza}, the range-coded token stream: both formats
    bucket match lengths into 29 classes and distances into 30, with
    the class carrying the entropy-coded symbol and the extra bits
    riding uncoded. *)

val length_base : int array
val length_extra : int array
val dist_base : int array
val dist_extra : int array

val length_class : int -> int
(** Class of a match length in 3..258. @raise Invalid_argument outside. *)

val dist_class : int -> int
(** Class of a distance in 1..32768. @raise Invalid_argument outside. *)

val cost_model_of_tokens : Lz77.token list -> Lz77.cost_model
(** The actual codeword cost this format would charge, derived from a
    seed parse: Huffman lengths of the literal/length and distance
    codes built over the seed's token frequencies, plus extra bits
    (all scaled by {!Lz77.cost_scale}). Symbols the seed never used
    cost one bit more than the deepest code in use. *)

val tokenize_opt : ?iterations:int -> ?seed:Lz77.token list -> string ->
  Lz77.token list
(** Bit-optimal parse: cost the DAG edges from [seed] (default the
    lazy parse), solve by shortest path, and iterate [iterations]
    (default 2) rounds so the code lengths converge toward the chosen
    parse. *)

val compress_opt : string -> string
(** {!compress} with the bit-optimal parse. Encodes both the lazy and
    the optimal parse and keeps the smaller, so the output never
    exceeds {!compress}'s (and decodes with the same
    {!decompress}). *)

val decompress :
  ?max_output:int -> ?dict:string -> string ->
  (string, Support.Decode_error.t) result
(** [decompress (compress s) = Ok s]. Total: corrupt input yields a
    typed [Error]; the declared output length is checked against
    [max_output] (default 64 MB) before any proportional allocation.
    [dict] primes the window with the same bytes the compressor used; a
    stream compressed with a dictionary decoded without one (or with
    the wrong one) yields an [Error] or wrong bytes — callers seal the
    pairing with a dictionary digest (see [Wire]'s shared final
    stage). *)

val decompress_exn : ?max_output:int -> ?dict:string -> string -> string
(** As {!decompress} but raises {!Support.Decode_error.Fail}; for
    trusted inputs (e.g. bytes this process just compressed). *)

val compressed_size : string -> int
(** [String.length (compress s)] without keeping the output. *)
