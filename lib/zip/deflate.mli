(** Our gzip stand-in: LZ77 + dynamic canonical-Huffman entropy coding.

    The format follows DEFLATE's structure — a literal/length alphabet
    (256 literals, end-of-block, 29 length classes with extra bits) and a
    30-class distance alphabet — in a single dynamic-Huffman block with a
    plain 5-bit length table header. It is not bit-compatible with RFC
    1951, but it is the same algorithm family, so compression ratios are
    representative of gzip's. Used both as the paper's "gzip" baseline and
    as the final stage of the wire format (§3 step 5). *)

val compress : string -> string
(** [encode_tokens ~source:s ~orig_len:(String.length s) (Lz77.tokenize s)].
    Output never exceeds input + 5 bytes: incompressible input falls back
    to a stored block (a 1-bit block type after the length header, then
    the bytes verbatim — RFC 1951 §3.2.4's escape hatch). *)

val encode_tokens : ?source:string -> orig_len:int -> Lz77.token list -> string
(** The entropy-coding half of {!compress}, split out so the codec layer
    can time the LZ77 and Huffman stages independently. [orig_len] is
    the uncompressed length recorded in the 32-bit header. When [source]
    (the uncompressed bytes, length [orig_len]) is given, the encoder
    emits a stored block instead whenever that is strictly smaller, so
    output is bounded by [orig_len + 5]. Without [source] the output is
    always a Huffman block. *)

val decompress :
  ?max_output:int -> string -> (string, Support.Decode_error.t) result
(** [decompress (compress s) = Ok s]. Total: corrupt input yields a
    typed [Error]; the declared output length is checked against
    [max_output] (default 64 MB) before any proportional allocation. *)

val decompress_exn : ?max_output:int -> string -> string
(** As {!decompress} but raises {!Support.Decode_error.Fail}; for
    trusted inputs (e.g. bytes this process just compressed). *)

val compressed_size : string -> int
(** [String.length (compress s)] without keeping the output. *)
