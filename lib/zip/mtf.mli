(** Move-to-front coding over arbitrary symbol alphabets.

    The paper's wire format MTF-codes each literal stream before Huffman
    coding (§3 step 3). Following the paper, index 0 is reserved for
    "symbol not seen previously": the first occurrence of a symbol emits 0
    and the symbol itself is recovered from a side table of first
    occurrences, so no MTF table needs to be transmitted. *)

type 'a encoded = {
  indices : int list;   (** one per input symbol; 0 = first occurrence *)
  novel : 'a list;      (** symbols in order of first appearance *)
}

val encode : eq:('a -> 'a -> bool) -> 'a list -> 'a encoded
(** MTF indices for the input sequence. An index [i >= 1] refers to the
    symbol at (1-based) position [i] of the current table; 0 introduces
    the next element of [novel]. *)

val decode : 'a encoded -> ('a list, Support.Decode_error.t) result
(** Inverse of {!encode}: [decode (encode ~eq xs) = Ok xs] whenever [eq]
    is equality. Total: an out-of-range index or exhausted novel list
    yields [Error] with the element position of the defect. *)

val decode_exn : 'a encoded -> 'a list
(** As {!decode} but raises {!Support.Decode_error.Fail}; for trusted
    inputs. *)

val encode_ints : int list -> int encoded
val decode_ints : int encoded -> (int list, Support.Decode_error.t) result
val decode_ints_exn : int encoded -> int list
