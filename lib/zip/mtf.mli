(** Move-to-front coding over arbitrary symbol alphabets.

    The paper's wire format MTF-codes each literal stream before Huffman
    coding (§3 step 3). Following the paper, index 0 is reserved for
    "symbol not seen previously": the first occurrence of a symbol emits 0
    and the symbol itself is recovered from a side table of first
    occurrences, so no MTF table needs to be transmitted.

    The implementation is an array sliding table over dense
    first-occurrence ids (flat int scans and overlapping blits, no
    allocation per symbol); the original linked-list implementation is
    kept under {!Reference} as the oracle for differential tests. *)

type 'a encoded = {
  indices : int list;   (** one per input symbol; 0 = first occurrence *)
  novel : 'a list;      (** symbols in order of first appearance *)
}

val encode : eq:('a -> 'a -> bool) -> 'a list -> 'a encoded
(** MTF indices for the input sequence. An index [i >= 1] refers to the
    symbol at (1-based) position [i] of the current table; 0 introduces
    the next element of [novel]. *)

val encode_hashed :
  hash:('a -> int) -> eq:('a -> 'a -> bool) -> 'a list -> 'a encoded
(** As {!encode}, but resolves symbols through [hash] (which must agree
    with [eq]: equal symbols hash equal), replacing the per-symbol
    linear intern scan with a table lookup. Output is identical to
    {!encode} with the same [eq]. The hot path for the wire format's
    pattern and literal streams. *)

val decode : 'a encoded -> ('a list, Support.Decode_error.t) result
(** Inverse of {!encode}: [decode (encode ~eq xs) = Ok xs] whenever [eq]
    is equality. Total: an out-of-range index or exhausted novel list
    yields [Error] with the element position of the defect. *)

val decode_exn : 'a encoded -> 'a list
(** As {!decode} but raises {!Support.Decode_error.Fail}; for trusted
    inputs. *)

val encode_ints : int list -> int encoded
val decode_ints : int encoded -> (int list, Support.Decode_error.t) result
val decode_ints_exn : int encoded -> int list

(** {2 Dense-id fast path}

    Allocation-free array streams for callers that already intern their
    symbols (the wire format): ids are assigned by first occurrence, so
    the k-th distinct value to appear is k, and the novel table is the
    symbols in id order. *)

val intern_hashed :
  hash:('a -> int) -> eq:('a -> 'a -> bool) -> 'a list ->
  int array * 'a list
(** Dense first-occurrence ids for the input (the k-th distinct symbol
    to appear gets id k), plus the distinct symbols in id order —
    exactly the novel table of {!encode_hashed}. Callers that need the
    id stream itself (e.g. to choose between {!encode_ids} and an
    ablation indexing) start here. *)

val encode_ids : int array -> int array
(** MTF indices for a dense first-occurrence id stream. *)

val decode_ids : ?max_novel:int -> int array -> int array
(** Inverse of {!encode_ids}. With [max_novel], an index stream that
    introduces more than [max_novel] novel symbols is rejected ("novel
    list exhausted"), as is any out-of-range index.
    @raise Support.Decode_error.Fail on malformed input. *)

(** The original list-based implementation (O(n) [List.filter] per
    symbol), kept verbatim as the oracle for randomized differential
    tests. Not used on any production path. *)
module Reference : sig
  val encode : eq:('a -> 'a -> bool) -> 'a list -> 'a encoded
  val decode_exn : 'a encoded -> 'a list
end
