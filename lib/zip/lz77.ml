type token = Literal of int | Match of { length : int; dist : int }

let window_size = 32768
let min_match = 3
let max_match = 258

(* Hash chains over 3-byte prefixes, as in zlib. *)

let hash_bits = 15
let hash_size = 1 lsl hash_bits

let hash3 s i =
  let a = Char.code s.[i]
  and b = Char.code s.[i + 1]
  and c = Char.code s.[i + 2] in
  ((a lsl 10) lxor (b lsl 5) lxor c) land (hash_size - 1)

let max_chain = 128

(* ---- priming dictionary ----

   A shared dictionary primes the window exactly as zlib's
   deflateSetDictionary does: the parser behaves as if [dict] had just
   been emitted, so matches may reach back into it and distances beyond
   the current output position address dictionary bytes. We realise
   this by parsing the concatenation [dict ^ s] with the dictionary
   positions pre-inserted into the hash chains (candidates, never
   emitted) and the parse loop starting at [String.length dict] — which
   is byte-identical to the historical parser when the dictionary is
   empty, a property the 18 golden codec digests pin. A dictionary
   longer than the window simply leaves its head unreachable: the
   [i - c <= window_size] guard already enforces that. *)

(* ---- parse strategies ----

   Greedy takes the longest match at every position; Lazy (the default,
   and the historical behaviour) defers one step when the next position
   matches longer; Optimal solves the token DAG by shortest path under a
   caller-supplied codeword-cost model — Ferragina/Nitto/Venturini's
   observation that the cheapest parse depends on what the downstream
   entropy stage charges, not on match length alone. *)

type cost_model = {
  literal_cost : int -> int;
  match_cost : length:int -> dist:int -> int;
}

type strategy = Greedy | Lazy | Optimal of cost_model

let cost_scale = 16

let tokenize_chained ~lazy_match ~good_enough ~dict s0 =
  let dlen = String.length dict in
  let s = if dlen = 0 then s0 else dict ^ s0 in
  let n = String.length s in
  let head = Array.make hash_size (-1) in
  let prev = Array.make (max n 1) (-1) in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let match_len i j =
    (* length of common prefix of s[i..] and s[j..], capped *)
    let limit = min max_match (n - j) in
    let k = ref 0 in
    while !k < limit && s.[i + !k] = s.[j + !k] do incr k done;
    !k
  in
  let insert i =
    if i + min_match <= n then begin
      let h = hash3 s i in
      prev.(i) <- head.(h);
      head.(h) <- i
    end
  in
  let find_best i =
    if i + min_match > n then None
    else begin
      let h = hash3 s i in
      let best_len = ref 0 and best_pos = ref (-1) in
      let cand = ref head.(h) in
      let chain = ref 0 in
      while !cand >= 0 && !chain < max_chain && !best_len < good_enough do
        let c = !cand in
        if i - c <= window_size then begin
          let l = match_len c i in
          if l > !best_len then begin
            best_len := l;
            best_pos := c
          end
        end
        else cand := -1 (* out of window; chain is ordered so stop *)
        ;
        if !cand >= 0 then cand := prev.(c);
        incr chain
      done;
      if !best_len >= min_match then Some (!best_len, i - !best_pos) else None
    end
  in
  (* The lazy loop's one-step lookahead used to be recomputed when the
     parser advanced: [find_best (i+1)] ran once for the defer decision
     and again at the top of the next iteration. The two calls see the
     same chains — inserting [i] between them only touches the bucket
     [hash3 s i] — so the lookahead result is cached and reused unless
     position [i+1] hashes into that same bucket (byte runs), where the
     second search really can see [i] as a new candidate and must be
     redone. Byte-identical output, pinned by the codec golden digests
     and the token pins in test_zip. *)
  let cached_at = ref (-1) in
  let cached = ref None in
  let find_best_cached i =
    if !cached_at = i then !cached else find_best i
  in
  for k = 0 to dlen - 1 do insert k done;
  let i = ref dlen in
  while !i < n do
    (match find_best_cached !i with
    | Some (len, dist) ->
      (* lazy matching: prefer a longer match starting at i+1 *)
      let next_better =
        if lazy_match && !i + 1 + min_match <= n then begin
          let nb = find_best (!i + 1) in
          (* safe to reuse after [insert !i] only when i+1 lives in a
             different hash bucket than i *)
          if hash3 s !i <> hash3 s (!i + 1) then begin
            cached_at := !i + 1;
            cached := nb
          end
          else cached_at := -1;
          match nb with Some (len2, _) when len2 > len -> true | _ -> false
        end
        else false
      in
      if next_better then begin
        emit (Literal (Char.code s.[!i]));
        insert !i;
        incr i
      end
      else begin
        cached_at := -1;
        emit (Match { length = len; dist });
        for k = !i to min (n - 1) (!i + len - 1) do insert k done;
        i := !i + len
      end
    | None ->
      cached_at := -1;
      emit (Literal (Char.code s.[!i]));
      insert !i;
      incr i)
  done;
  List.rev !tokens

(* Shortest-path parse over the token DAG: node [j] is "the first [j]
   bytes are coded", a literal is an edge [j -> j+1], a match of length
   [l] an edge [j -> j+l], and every edge is weighted by the cost model
   (in {!cost_scale}ths of a bit). The graph is a DAG ordered by
   position, so one left-to-right relaxation sweep is exact.

   Candidate matches come from the same hash chains as the greedy
   parser, but per position we want every (length, minimal distance)
   pair, not the single longest match: walking the chain near-to-far,
   each candidate that extends the longest length seen so far
   contributes edges for exactly the lengths it newly covers, which
   assigns every length its nearest (= cheapest distance class)
   source. *)
let tokenize_optimal ~good_enough ~dict cm s0 =
  let dlen = String.length dict in
  let s = if dlen = 0 then s0 else dict ^ s0 in
  let n = String.length s in
  if n = dlen then []
  else begin
    let head = Array.make hash_size (-1) in
    let prev = Array.make n (-1) in
    let match_len i j =
      let limit = min max_match (n - j) in
      let k = ref 0 in
      while !k < limit && s.[i + !k] = s.[j + !k] do incr k done;
      !k
    in
    let inf = max_int / 2 in
    let cost = Array.make (n + 1) inf in
    (* edge into position j: step 1 = literal, >= min_match = match *)
    let from_len = Array.make (n + 1) 0 in
    let from_dist = Array.make (n + 1) 0 in
    for k = 0 to dlen - 1 do
      if k + min_match <= n then begin
        let h = hash3 s k in
        prev.(k) <- head.(h);
        head.(h) <- k
      end
    done;
    cost.(dlen) <- 0;
    for i = dlen to n - 1 do
      let ci = cost.(i) in
      (* every position is reachable by literals, so ci < inf *)
      let lc = ci + cm.literal_cost (Char.code s.[i]) in
      if lc < cost.(i + 1) then begin
        cost.(i + 1) <- lc;
        from_len.(i + 1) <- 1;
        from_dist.(i + 1) <- 0
      end;
      if i + min_match <= n then begin
        let h = hash3 s i in
        let covered = ref (min_match - 1) in
        let cand = ref head.(h) in
        let chain = ref 0 in
        while !cand >= 0 && !chain < max_chain && !covered < good_enough do
          let c = !cand in
          if i - c <= window_size then begin
            let l = match_len c i in
            if l > !covered then begin
              let d = i - c in
              for k = !covered + 1 to l do
                if k >= min_match then begin
                  let mc = ci + cm.match_cost ~length:k ~dist:d in
                  if mc < cost.(i + k) then begin
                    cost.(i + k) <- mc;
                    from_len.(i + k) <- k;
                    from_dist.(i + k) <- d
                  end
                end
              done;
              covered := l
            end
          end
          else cand := -1
          ;
          if !cand >= 0 then cand := prev.(c);
          incr chain
        done;
        prev.(i) <- head.(h);
        head.(h) <- i
      end
    done;
    let rec walk j acc =
      if j = dlen then acc
      else if from_len.(j) = 1 then
        walk (j - 1) (Literal (Char.code s.[j - 1]) :: acc)
      else
        walk
          (j - from_len.(j))
          (Match { length = from_len.(j); dist = from_dist.(j) } :: acc)
    in
    walk n []
  end

let tokenize ?(good_enough = 64) ?(strategy = Lazy) ?(dict = "") s =
  match strategy with
  | Greedy -> tokenize_chained ~lazy_match:false ~good_enough ~dict s
  | Lazy -> tokenize_chained ~lazy_match:true ~good_enough ~dict s
  | Optimal cm -> tokenize_optimal ~good_enough ~dict cm s

(* ---- reconstruction ---- *)

let fail ~pos msg =
  Support.Decode_error.fail ~decoder:"lz77"
    ~kind:Support.Decode_error.Bad_value ~pos msg

let check_token ~pos ~written t =
  match t with
  | Literal b ->
    if b < 0 || b > 255 then
      fail ~pos (Printf.sprintf "literal %d out of byte range" b);
    written + 1
  | Match { length; dist } ->
    if dist < 1 || dist > window_size then
      fail ~pos (Printf.sprintf "distance %d out of window" dist);
    if length < 0 || length > max_match then
      fail ~pos (Printf.sprintf "match length %d out of range" length);
    if written - dist < 0 then
      fail ~pos (Printf.sprintf "distance %d before start of output" dist);
    written + length

(* Two passes over the token list: validate and size, then fill a
   [Bytes] buffer with bulk copies. A match whose distance covers its
   length is one non-overlapping blit; an overlapping match (dist <
   length) is a periodic fill — copy one period, double the block while
   it fits, then one tail blit — every chunk a multiple of the period so
   the pattern stays aligned. The byte-at-a-time [Buffer] version
   survives as {!reconstruct_reference_exn}, the differential oracle. *)
let reconstruct_exn ?(dict = "") tokens =
  let dlen = String.length dict in
  (* [written] counts the primed dictionary bytes, so a distance may
     legally reach back into the dictionary *)
  let total =
    List.fold_left
      (fun (pos, written) t -> (pos + 1, check_token ~pos ~written t))
      (0, dlen) tokens
    |> snd
  in
  let buf = Bytes.create total in
  Bytes.blit_string dict 0 buf 0 dlen;
  let out = ref dlen in
  List.iter
    (fun t ->
      match t with
      | Literal b ->
        Bytes.unsafe_set buf !out (Char.unsafe_chr b);
        incr out
      | Match { length; dist } ->
        let pos = !out in
        let start = pos - dist in
        if dist >= length then Bytes.blit buf start buf pos length
        else begin
          Bytes.blit buf start buf pos dist;
          let avail = ref dist in
          while !avail * 2 <= length do
            Bytes.blit buf pos buf (pos + !avail) !avail;
            avail := !avail * 2
          done;
          if !avail < length then
            Bytes.blit buf pos buf (pos + !avail) (length - !avail)
        end;
        out := pos + length)
    tokens;
  if dlen = 0 then Bytes.unsafe_to_string buf
  else Bytes.sub_string buf dlen (total - dlen)

let reconstruct_reference_exn ?(dict = "") tokens =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf dict;
  List.iteri
    (fun pos t ->
      ignore (check_token ~pos ~written:(Buffer.length buf) t);
      match t with
      | Literal b -> Buffer.add_char buf (Char.chr b)
      | Match { length; dist } ->
        let start = Buffer.length buf - dist in
        for k = 0 to length - 1 do
          Buffer.add_char buf (Buffer.nth buf (start + k))
        done)
    tokens;
  let dlen = String.length dict in
  Buffer.sub buf dlen (Buffer.length buf - dlen)

let reconstruct ?dict tokens =
  Support.Decode_error.guard ~decoder:"lz77" (fun () ->
      reconstruct_exn ?dict tokens)
