type token = Literal of int | Match of { length : int; dist : int }

let window_size = 32768
let min_match = 3
let max_match = 258

(* Hash chains over 3-byte prefixes, as in zlib. *)

let hash_bits = 15
let hash_size = 1 lsl hash_bits

let hash3 s i =
  let a = Char.code s.[i]
  and b = Char.code s.[i + 1]
  and c = Char.code s.[i + 2] in
  ((a lsl 10) lxor (b lsl 5) lxor c) land (hash_size - 1)

let max_chain = 128

let tokenize ?(good_enough = 64) s =
  let n = String.length s in
  let head = Array.make hash_size (-1) in
  let prev = Array.make (max n 1) (-1) in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let match_len i j =
    (* length of common prefix of s[i..] and s[j..], capped *)
    let limit = min max_match (n - j) in
    let k = ref 0 in
    while !k < limit && s.[i + !k] = s.[j + !k] do incr k done;
    !k
  in
  let insert i =
    if i + min_match <= n then begin
      let h = hash3 s i in
      prev.(i) <- head.(h);
      head.(h) <- i
    end
  in
  let find_best i =
    if i + min_match > n then None
    else begin
      let h = hash3 s i in
      let best_len = ref 0 and best_pos = ref (-1) in
      let cand = ref head.(h) in
      let chain = ref 0 in
      while !cand >= 0 && !chain < max_chain && !best_len < good_enough do
        let c = !cand in
        if i - c <= window_size then begin
          let l = match_len c i in
          if l > !best_len then begin
            best_len := l;
            best_pos := c
          end
        end
        else cand := -1 (* out of window; chain is ordered so stop *)
        ;
        if !cand >= 0 then cand := prev.(c);
        incr chain
      done;
      if !best_len >= min_match then Some (!best_len, i - !best_pos) else None
    end
  in
  let i = ref 0 in
  while !i < n do
    (match find_best !i with
    | Some (len, dist) ->
      (* lazy matching: prefer a longer match starting at i+1 *)
      let next_better =
        if !i + 1 + min_match <= n then
          match find_best (!i + 1) with
          | Some (len2, _) when len2 > len -> true
          | _ -> false
        else false
      in
      if next_better then begin
        emit (Literal (Char.code s.[!i]));
        insert !i;
        incr i
      end
      else begin
        emit (Match { length = len; dist });
        for k = !i to min (n - 1) (!i + len - 1) do insert k done;
        i := !i + len
      end
    | None ->
      emit (Literal (Char.code s.[!i]));
      insert !i;
      incr i)
  done;
  List.rev !tokens

let reconstruct_exn tokens =
  let fail ~pos msg =
    Support.Decode_error.fail ~decoder:"lz77"
      ~kind:Support.Decode_error.Bad_value ~pos msg
  in
  let buf = Buffer.create 1024 in
  List.iteri
    (fun pos t ->
      match t with
      | Literal b ->
        if b < 0 || b > 255 then
          fail ~pos (Printf.sprintf "literal %d out of byte range" b);
        Buffer.add_char buf (Char.chr b)
      | Match { length; dist } ->
        if dist < 1 || dist > window_size then
          fail ~pos (Printf.sprintf "distance %d out of window" dist);
        if length < 0 || length > max_match then
          fail ~pos (Printf.sprintf "match length %d out of range" length);
        let start = Buffer.length buf - dist in
        if start < 0 then
          fail ~pos (Printf.sprintf "distance %d before start of output" dist);
        for k = 0 to length - 1 do
          Buffer.add_char buf (Buffer.nth buf (start + k))
        done)
    tokens;
  Buffer.contents buf

let reconstruct tokens =
  Support.Decode_error.guard ~decoder:"lz77" (fun () -> reconstruct_exn tokens)
