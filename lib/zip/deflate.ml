(* Length and distance class tables, as in RFC 1951. *)

let length_base =
  [| 3; 4; 5; 6; 7; 8; 9; 10; 11; 13; 15; 17; 19; 23; 27; 31; 35; 43; 51; 59;
     67; 83; 99; 115; 131; 163; 195; 227; 258 |]

let length_extra =
  [| 0; 0; 0; 0; 0; 0; 0; 0; 1; 1; 1; 1; 2; 2; 2; 2; 3; 3; 3; 3; 4; 4; 4; 4;
     5; 5; 5; 5; 0 |]

let dist_base =
  [| 1; 2; 3; 4; 5; 7; 9; 13; 17; 25; 33; 49; 65; 97; 129; 193; 257; 385; 513;
     769; 1025; 1537; 2049; 3073; 4097; 6145; 8193; 12289; 16385; 24577 |]

let dist_extra =
  [| 0; 0; 0; 0; 1; 1; 2; 2; 3; 3; 4; 4; 5; 5; 6; 6; 7; 7; 8; 8; 9; 9; 10; 10;
     11; 11; 12; 12; 13; 13 |]

let eob = 256
let litlen_alphabet = 286
let dist_alphabet = 30

let length_class len =
  let rec go i =
    if i = Array.length length_base - 1 then i
    else if len < length_base.(i + 1) then i
    else go (i + 1)
  in
  if len < 3 || len > 258 then invalid_arg "Deflate.length_class";
  go 0

let dist_class d =
  let rec go i =
    if i = Array.length dist_base - 1 then i
    else if d < dist_base.(i + 1) then i
    else go (i + 1)
  in
  if d < 1 || d > 32768 then invalid_arg "Deflate.dist_class";
  go 0

(* A 1-bit block type follows the 32-bit length header: 0 = dynamic
   Huffman (the original layout after that bit), 1 = stored. A stored
   block byte-aligns and copies the input verbatim, so output is capped
   at orig_len + 5 bytes and compression can never expand pathological
   input (RFC 1951's escape hatch, §3.2.4). The encoder picks stored
   only when the caller supplies [source] and it is strictly smaller. *)
let stored_overhead = 5

let encode_stored ~orig_len source =
  let w = Support.Bitio.Writer.create ~capacity:(orig_len + 8) () in
  Support.Bitio.Writer.put_bits w orig_len 32;
  Support.Bitio.Writer.put_bit w 1;
  Support.Bitio.Writer.align_byte w;
  Support.Bitio.Writer.put_string w source;
  Bytes.to_string (Support.Bitio.Writer.contents w)

let encode_tokens ?source ~orig_len tokens =
  (* frequency counts *)
  let lit_freq = Array.make litlen_alphabet 0 in
  let dist_freq = Array.make dist_alphabet 0 in
  List.iter
    (fun t ->
      match t with
      | Lz77.Literal b -> lit_freq.(b) <- lit_freq.(b) + 1
      | Lz77.Match { length; dist } ->
        let lc = 257 + length_class length in
        lit_freq.(lc) <- lit_freq.(lc) + 1;
        let dc = dist_class dist in
        dist_freq.(dc) <- dist_freq.(dc) + 1)
    tokens;
  lit_freq.(eob) <- 1;
  let lit_code = Huffman.lengths_of_freqs lit_freq in
  let dist_code = Huffman.lengths_of_freqs dist_freq in
  let w = Support.Bitio.Writer.create ~capacity:(orig_len / 2) () in
  Support.Bitio.Writer.put_bits w orig_len 32;
  Support.Bitio.Writer.put_bit w 0;
  Huffman.write_lengths w lit_code;
  Huffman.write_lengths w dist_code;
  let le = Huffman.make_encoder lit_code in
  let de = Huffman.make_encoder dist_code in
  List.iter
    (fun t ->
      match t with
      | Lz77.Literal b -> Huffman.encode_symbol le w b
      | Lz77.Match { length; dist } ->
        let lc = length_class length in
        Huffman.encode_symbol le w (257 + lc);
        Support.Bitio.Writer.put_bits w (length - length_base.(lc))
          length_extra.(lc);
        let dc = dist_class dist in
        Huffman.encode_symbol de w dc;
        Support.Bitio.Writer.put_bits w (dist - dist_base.(dc)) dist_extra.(dc))
    tokens;
  Huffman.encode_symbol le w eob;
  let huff = Bytes.to_string (Support.Bitio.Writer.contents w) in
  match source with
  | Some s ->
    if String.length s <> orig_len then
      invalid_arg "Deflate.encode_tokens: source length <> orig_len";
    if orig_len + stored_overhead < String.length huff then
      encode_stored ~orig_len s
    else huff
  | None -> huff

let compress s =
  encode_tokens ~source:s ~orig_len:(String.length s) (Lz77.tokenize s)

let default_max_output = 1 lsl 26

let decompress_exn ?(max_output = default_max_output) z =
  let r = Support.Bitio.Reader.of_string z in
  let fail kind msg =
    Support.Decode_error.fail ~decoder:"deflate" ~kind
      ~pos:(Support.Bitio.Reader.bit_position r / 8)
      msg
  in
  if Support.Bitio.Reader.bits_remaining r < 32 then
    fail Support.Decode_error.Truncated "missing length header";
  let orig_len = Support.Bitio.Reader.get_bits r 32 in
  if orig_len > max_output then
    fail Support.Decode_error.Limit
      (Printf.sprintf "declared length %d exceeds cap %d" orig_len max_output);
  if Support.Bitio.Reader.bits_remaining r < 1 then
    fail Support.Decode_error.Truncated "missing block-type bit";
  let block_type = Support.Bitio.Reader.get_bit r in
  if block_type = 1 then begin
    Support.Bitio.Reader.align_byte r;
    if Support.Bitio.Reader.bits_remaining r < orig_len * 8 then
      fail Support.Decode_error.Truncated
        (Printf.sprintf "stored block of %d bytes exceeds remaining input"
           orig_len);
    Support.Bitio.Reader.get_string r orig_len
  end
  else begin
  let lit_code = Huffman.read_lengths r in
  let dist_code = Huffman.read_lengths r in
  let ld = Huffman.make_decoder lit_code in
  let dd =
    (* a stream with no matches has an empty distance code *)
    if Array.exists (fun l -> l > 0) dist_code.Huffman.lengths then
      Some (Huffman.make_decoder dist_code)
    else None
  in
  (* grow towards orig_len rather than trusting it up front *)
  let buf = Buffer.create (min orig_len 65536) in
  let finished = ref false in
  while not !finished do
    let sym = Huffman.decode_symbol ld r in
    if sym = eob then finished := true
    else if sym < 256 then Buffer.add_char buf (Char.chr sym)
    else begin
      let lc = sym - 257 in
      if lc >= Array.length length_base then
        fail Support.Decode_error.Bad_value
          (Printf.sprintf "length symbol %d out of range" sym);
      let length =
        length_base.(lc) + Support.Bitio.Reader.get_bits r length_extra.(lc)
      in
      let dd =
        match dd with
        | Some d -> d
        | None ->
          fail Support.Decode_error.Inconsistent
            "match with empty distance code"
      in
      let dc = Huffman.decode_symbol dd r in
      if dc >= Array.length dist_base then
        fail Support.Decode_error.Bad_value
          (Printf.sprintf "distance class %d out of range" dc);
      let dist =
        dist_base.(dc) + Support.Bitio.Reader.get_bits r dist_extra.(dc)
      in
      let start = Buffer.length buf - dist in
      if start < 0 then
        fail Support.Decode_error.Bad_value "distance before start of output";
      for k = 0 to length - 1 do
        Buffer.add_char buf (Buffer.nth buf (start + k))
      done
    end;
    if Buffer.length buf > orig_len then
      fail Support.Decode_error.Inconsistent "output exceeds declared length"
  done;
  let out = Buffer.contents buf in
  if String.length out <> orig_len then
    fail Support.Decode_error.Inconsistent "output shorter than declared length";
  out
  end

let decompress ?max_output z =
  Support.Decode_error.guard ~decoder:"deflate" (fun () ->
      decompress_exn ?max_output z)

let compressed_size s = String.length (compress s)
