(* Length and distance class tables, as in RFC 1951. *)

let length_base =
  [| 3; 4; 5; 6; 7; 8; 9; 10; 11; 13; 15; 17; 19; 23; 27; 31; 35; 43; 51; 59;
     67; 83; 99; 115; 131; 163; 195; 227; 258 |]

let length_extra =
  [| 0; 0; 0; 0; 0; 0; 0; 0; 1; 1; 1; 1; 2; 2; 2; 2; 3; 3; 3; 3; 4; 4; 4; 4;
     5; 5; 5; 5; 0 |]

let dist_base =
  [| 1; 2; 3; 4; 5; 7; 9; 13; 17; 25; 33; 49; 65; 97; 129; 193; 257; 385; 513;
     769; 1025; 1537; 2049; 3073; 4097; 6145; 8193; 12289; 16385; 24577 |]

let dist_extra =
  [| 0; 0; 0; 0; 1; 1; 2; 2; 3; 3; 4; 4; 5; 5; 6; 6; 7; 7; 8; 8; 9; 9; 10; 10;
     11; 11; 12; 12; 13; 13 |]

let eob = 256
let litlen_alphabet = 286
let dist_alphabet = 30

let length_class len =
  let rec go i =
    if i = Array.length length_base - 1 then i
    else if len < length_base.(i + 1) then i
    else go (i + 1)
  in
  if len < 3 || len > 258 then invalid_arg "Deflate.length_class";
  go 0

let dist_class d =
  let rec go i =
    if i = Array.length dist_base - 1 then i
    else if d < dist_base.(i + 1) then i
    else go (i + 1)
  in
  if d < 1 || d > 32768 then invalid_arg "Deflate.dist_class";
  go 0

(* A 1-bit block type follows the 32-bit length header: 0 = dynamic
   Huffman (the original layout after that bit), 1 = stored. A stored
   block byte-aligns and copies the input verbatim, so output is capped
   at orig_len + 5 bytes and compression can never expand pathological
   input (RFC 1951's escape hatch, §3.2.4). The encoder picks stored
   only when the caller supplies [source] and it is strictly smaller. *)
let stored_overhead = 5

let encode_stored ~orig_len source =
  let w = Support.Bitio.Writer.create ~capacity:(orig_len + 8) () in
  Support.Bitio.Writer.put_bits w orig_len 32;
  Support.Bitio.Writer.put_bit w 1;
  Support.Bitio.Writer.align_byte w;
  Support.Bitio.Writer.put_string w source;
  Bytes.to_string (Support.Bitio.Writer.contents w)

(* ---- packed code-length header ----

   The raw header spends 16 bits of count plus 5 bits per symbol on
   each code-length table — ~185 bytes per block, which on the smallest
   corpus points exceeds the entire entropy-coded body and pushes the
   encoder into the stored-block fallback. RFC 1951 §3.2.7 solves this
   by compressing the code lengths themselves: trim trailing zeros,
   run-length-encode the lit+dist length sequence into a 19-symbol
   alphabet (0-15 literal, 16 = repeat previous 3-6 times, 17/18 = zero
   runs), and Huffman-code that. We do the same, minus the HCLEN
   permutation-trim (the 19 code-length-code lengths are sent flat at
   4 bits each — 9.5 bytes, not worth the extra machinery).

   The packed form is signalled in-band: the top bit of the 16-bit
   lit-table count. Legacy streams always carry a count <= 286, so the
   flag bit is never set in them and plain [compress] output — which is
   golden-pinned byte-for-byte — keeps the raw layout; only the
   bit-optimal path opts in, and one decoder reads both. *)

let packed_flag = 0x8000

let trim_code (code : Huffman.code) =
  let lengths = code.Huffman.lengths in
  let n = ref (Array.length lengths) in
  while !n > 0 && lengths.(!n - 1) = 0 do decr n done;
  { Huffman.lengths = Array.sub lengths 0 !n }

(* the RFC's transmission order for code-length-code lengths; kept for
   familiarity even though we always send all 19 *)
let clc_order =
  [| 16; 17; 18; 0; 8; 7; 9; 6; 10; 5; 11; 4; 12; 3; 13; 2; 14; 1; 15 |]

(* (symbol, extra-bits value, extra-bits width) per RFC 1951 §3.2.7 *)
let rle_lengths lengths =
  let out = ref [] in
  let emit sym extra bits = out := (sym, extra, bits) :: !out in
  let n = Array.length lengths in
  let i = ref 0 in
  while !i < n do
    let v = lengths.(!i) in
    let j = ref !i in
    while !j < n && lengths.(!j) = v do incr j done;
    let run = !j - !i in
    if v = 0 then begin
      let r = ref run in
      while !r >= 11 do
        let take = min !r 138 in
        emit 18 (take - 11) 7;
        r := !r - take
      done;
      if !r >= 3 then begin
        emit 17 (!r - 3) 3;
        r := 0
      end;
      while !r > 0 do emit 0 0 0; decr r done
    end
    else begin
      emit v 0 0;
      let r = ref (run - 1) in
      while !r >= 3 do
        let take = min !r 6 in
        emit 16 (take - 3) 2;
        r := !r - take
      done;
      while !r > 0 do emit v 0 0; decr r done
    end;
    i := !j
  done;
  List.rev !out

let write_packed_codes w (lit : Huffman.code) (dist : Huffman.code) =
  let nlit = Array.length lit.Huffman.lengths in
  let ndist = Array.length dist.Huffman.lengths in
  Support.Bitio.Writer.put_bits w (packed_flag lor nlit) 16;
  Support.Bitio.Writer.put_bits w ndist 5;
  let toks =
    rle_lengths (Array.append lit.Huffman.lengths dist.Huffman.lengths)
  in
  let freq = Array.make 19 0 in
  List.iter (fun (s, _, _) -> freq.(s) <- freq.(s) + 1) toks;
  let clc = Huffman.lengths_of_freqs freq in
  Array.iter
    (fun s -> Support.Bitio.Writer.put_bits w clc.Huffman.lengths.(s) 4)
    clc_order;
  let e = Huffman.make_encoder clc in
  List.iter
    (fun (s, extra, bits) ->
      Huffman.encode_symbol e w s;
      if bits > 0 then Support.Bitio.Writer.put_bits w extra bits)
    toks

let encode_tokens ?source ?(packed = false) ~orig_len tokens =
  (* frequency counts *)
  let lit_freq = Array.make litlen_alphabet 0 in
  let dist_freq = Array.make dist_alphabet 0 in
  List.iter
    (fun t ->
      match t with
      | Lz77.Literal b -> lit_freq.(b) <- lit_freq.(b) + 1
      | Lz77.Match { length; dist } ->
        let lc = 257 + length_class length in
        lit_freq.(lc) <- lit_freq.(lc) + 1;
        let dc = dist_class dist in
        dist_freq.(dc) <- dist_freq.(dc) + 1)
    tokens;
  lit_freq.(eob) <- 1;
  let lit_code = Huffman.lengths_of_freqs lit_freq in
  let dist_code = Huffman.lengths_of_freqs dist_freq in
  let lit_code = if packed then trim_code lit_code else lit_code in
  let dist_code = if packed then trim_code dist_code else dist_code in
  let w = Support.Bitio.Writer.create ~capacity:(orig_len / 2) () in
  Support.Bitio.Writer.put_bits w orig_len 32;
  Support.Bitio.Writer.put_bit w 0;
  if packed then write_packed_codes w lit_code dist_code
  else begin
    Huffman.write_lengths w lit_code;
    Huffman.write_lengths w dist_code
  end;
  let le = Huffman.make_encoder lit_code in
  let de = Huffman.make_encoder dist_code in
  List.iter
    (fun t ->
      match t with
      | Lz77.Literal b -> Huffman.encode_symbol le w b
      | Lz77.Match { length; dist } ->
        let lc = length_class length in
        Huffman.encode_symbol le w (257 + lc);
        Support.Bitio.Writer.put_bits w (length - length_base.(lc))
          length_extra.(lc);
        let dc = dist_class dist in
        Huffman.encode_symbol de w dc;
        Support.Bitio.Writer.put_bits w (dist - dist_base.(dc)) dist_extra.(dc))
    tokens;
  Huffman.encode_symbol le w eob;
  let huff = Bytes.to_string (Support.Bitio.Writer.contents w) in
  match source with
  | Some s ->
    if String.length s <> orig_len then
      invalid_arg "Deflate.encode_tokens: source length <> orig_len";
    if orig_len + stored_overhead < String.length huff then
      encode_stored ~orig_len s
    else huff
  | None -> huff

let compress ?(dict = "") s =
  encode_tokens ~source:s ~orig_len:(String.length s) (Lz77.tokenize ~dict s)

(* ---- bit-optimal parsing ----

   The DAG parser in {!Lz77} needs the actual downstream codeword
   costs: what this block format charges is the Huffman length of the
   literal/length symbol plus extra bits, and the Huffman length of the
   distance class plus extra bits. Those lengths depend on the token
   frequencies, which depend on the parse — so we iterate: cost the
   edges from the previous parse's code, re-solve, and repeat. Two
   rounds recover almost all of the gain (the fixed point moves little
   after that). *)

(* A symbol the seed parse never used still needs a price so the DAG
   can introduce it: charge one bit more than the deepest code in use,
   as if it had been a rare leaf. *)
let symbol_cost (code : Huffman.code) =
  let deepest = Array.fold_left max 0 code.Huffman.lengths in
  let fallback = min 15 (deepest + 1) in
  fun sym ->
    let l = code.Huffman.lengths.(sym) in
    if l > 0 then l else fallback

let cost_model_of_tokens tokens =
  let lit_freq = Array.make litlen_alphabet 0 in
  let dist_freq = Array.make dist_alphabet 0 in
  List.iter
    (fun t ->
      match t with
      | Lz77.Literal b -> lit_freq.(b) <- lit_freq.(b) + 1
      | Lz77.Match { length; dist } ->
        let lc = 257 + length_class length in
        lit_freq.(lc) <- lit_freq.(lc) + 1;
        let dc = dist_class dist in
        dist_freq.(dc) <- dist_freq.(dc) + 1)
    tokens;
  lit_freq.(eob) <- 1;
  let lit_cost = symbol_cost (Huffman.lengths_of_freqs lit_freq) in
  let dist_cost = symbol_cost (Huffman.lengths_of_freqs dist_freq) in
  let sc = Lz77.cost_scale in
  {
    Lz77.literal_cost = (fun b -> sc * lit_cost b);
    match_cost =
      (fun ~length ~dist ->
        let lc = length_class length in
        let dc = dist_class dist in
        sc
        * (lit_cost (257 + lc) + length_extra.(lc) + dist_cost dc
         + dist_extra.(dc)));
  }

let tokenize_opt ?(iterations = 2) ?seed s =
  let seed = match seed with Some t -> t | None -> Lz77.tokenize s in
  let rec go tokens k =
    if k = 0 then tokens
    else
      go
        (Lz77.tokenize ~strategy:(Lz77.Optimal (cost_model_of_tokens tokens)) s)
        (k - 1)
  in
  go seed (max 1 iterations)

(* The optimal parse minimizes bits under an estimated code, but the
   emitted block rebuilds its Huffman code from the chosen tokens, so
   the estimate can occasionally lose to the lazy parse it started
   from; encoding both and keeping the smaller makes [compress_opt]
   never worse than [compress] (and the stored-block fallback inside
   [encode_tokens] still bounds it by input + 5 bytes). *)
let compress_opt s =
  let orig_len = String.length s in
  let seed = Lz77.tokenize s in
  let opt = tokenize_opt ~seed s in
  let a = encode_tokens ~source:s ~packed:true ~orig_len seed in
  let b = encode_tokens ~source:s ~packed:true ~orig_len opt in
  if String.length b < String.length a then b else a

let default_max_output = 1 lsl 26

let decompress_exn ?(max_output = default_max_output) ?(dict = "") z =
  let dlen = String.length dict in
  let r = Support.Bitio.Reader.of_string z in
  let fail kind msg =
    Support.Decode_error.fail ~decoder:"deflate" ~kind
      ~pos:(Support.Bitio.Reader.bit_position r / 8)
      msg
  in
  if Support.Bitio.Reader.bits_remaining r < 32 then
    fail Support.Decode_error.Truncated "missing length header";
  let orig_len = Support.Bitio.Reader.get_bits r 32 in
  if orig_len > max_output then
    fail Support.Decode_error.Limit
      (Printf.sprintf "declared length %d exceeds cap %d" orig_len max_output);
  if Support.Bitio.Reader.bits_remaining r < 1 then
    fail Support.Decode_error.Truncated "missing block-type bit";
  let block_type = Support.Bitio.Reader.get_bit r in
  if block_type = 1 then begin
    Support.Bitio.Reader.align_byte r;
    if Support.Bitio.Reader.bits_remaining r < orig_len * 8 then
      fail Support.Decode_error.Truncated
        (Printf.sprintf "stored block of %d bytes exceeds remaining input"
           orig_len);
    Support.Bitio.Reader.get_string r orig_len
  end
  else begin
  if Support.Bitio.Reader.bits_remaining r < 16 then
    fail Support.Decode_error.Truncated "missing code-length tables";
  let first = Support.Bitio.Reader.get_bits r 16 in
  let lit_code, dist_code =
    if first land packed_flag = 0 then begin
      (* raw layout: [first] is the lit-table size, 5 bits per entry,
         then the dist table in {!Huffman.read_lengths}' own framing *)
      if first * 5 > Support.Bitio.Reader.bits_remaining r then
        fail Support.Decode_error.Truncated
          (Printf.sprintf "length table of %d entries exceeds remaining input"
             first);
      let lit =
        { Huffman.lengths =
            Array.init first (fun _ -> Support.Bitio.Reader.get_bits r 5) }
      in
      (lit, Huffman.read_lengths r)
    end
    else begin
      let nlit = first land lnot packed_flag in
      if nlit > litlen_alphabet then
        fail Support.Decode_error.Bad_value
          (Printf.sprintf "packed lit table of %d entries" nlit);
      if Support.Bitio.Reader.bits_remaining r < 5 + (19 * 4) then
        fail Support.Decode_error.Truncated "missing packed code-length code";
      let ndist = Support.Bitio.Reader.get_bits r 5 in
      if ndist > dist_alphabet then
        fail Support.Decode_error.Bad_value
          (Printf.sprintf "packed dist table of %d entries" ndist);
      let cl = Array.make 19 0 in
      Array.iter
        (fun s -> cl.(s) <- Support.Bitio.Reader.get_bits r 4)
        clc_order;
      let cd = Huffman.make_decoder { Huffman.lengths = cl } in
      let total = nlit + ndist in
      let seq = Array.make (max total 1) 0 in
      let i = ref 0 in
      while !i < total do
        let s = Huffman.decode_symbol cd r in
        if s <= 15 then begin
          seq.(!i) <- s;
          incr i
        end
        else if s = 16 then begin
          if !i = 0 then
            fail Support.Decode_error.Bad_value
              "length repeat with no previous length";
          let cnt = 3 + Support.Bitio.Reader.get_bits r 2 in
          if !i + cnt > total then
            fail Support.Decode_error.Inconsistent
              "length run overflows the tables";
          let v = seq.(!i - 1) in
          for _ = 1 to cnt do
            seq.(!i) <- v;
            incr i
          done
        end
        else begin
          let cnt =
            if s = 17 then 3 + Support.Bitio.Reader.get_bits r 3
            else 11 + Support.Bitio.Reader.get_bits r 7
          in
          if !i + cnt > total then
            fail Support.Decode_error.Inconsistent
              "zero run overflows the tables";
          i := !i + cnt (* seq is zero-initialized *)
        end
      done;
      ({ Huffman.lengths = Array.sub seq 0 nlit },
       { Huffman.lengths = Array.sub seq nlit ndist })
    end
  in
  let ld = Huffman.make_decoder lit_code in
  let dd =
    (* a stream with no matches has an empty distance code *)
    if Array.exists (fun l -> l > 0) dist_code.Huffman.lengths then
      Some (Huffman.make_decoder dist_code)
    else None
  in
  (* grow towards orig_len rather than trusting it up front; the primed
     dictionary sits below position 0 of the logical output, so the
     distance floor naturally extends back into it *)
  let buf = Buffer.create (min (dlen + orig_len) 65536) in
  Buffer.add_string buf dict;
  let finished = ref false in
  while not !finished do
    let sym = Huffman.decode_symbol ld r in
    if sym = eob then finished := true
    else if sym < 256 then Buffer.add_char buf (Char.chr sym)
    else begin
      let lc = sym - 257 in
      if lc >= Array.length length_base then
        fail Support.Decode_error.Bad_value
          (Printf.sprintf "length symbol %d out of range" sym);
      let length =
        length_base.(lc) + Support.Bitio.Reader.get_bits r length_extra.(lc)
      in
      let dd =
        match dd with
        | Some d -> d
        | None ->
          fail Support.Decode_error.Inconsistent
            "match with empty distance code"
      in
      let dc = Huffman.decode_symbol dd r in
      if dc >= Array.length dist_base then
        fail Support.Decode_error.Bad_value
          (Printf.sprintf "distance class %d out of range" dc);
      let dist =
        dist_base.(dc) + Support.Bitio.Reader.get_bits r dist_extra.(dc)
      in
      let start = Buffer.length buf - dist in
      if start < 0 then
        fail Support.Decode_error.Bad_value "distance before start of output";
      for k = 0 to length - 1 do
        Buffer.add_char buf (Buffer.nth buf (start + k))
      done
    end;
    if Buffer.length buf - dlen > orig_len then
      fail Support.Decode_error.Inconsistent "output exceeds declared length"
  done;
  if Buffer.length buf - dlen <> orig_len then
    fail Support.Decode_error.Inconsistent "output shorter than declared length";
  Buffer.sub buf dlen orig_len
  end

let decompress ?max_output ?dict z =
  Support.Decode_error.guard ~decoder:"deflate" (fun () ->
      decompress_exn ?max_output ?dict z)

let compressed_size s = String.length (compress s)
