(** Binary-renormalizing range coder with adaptive frequency models.

    The paper's design-space section (§2) contrasts byte codes with
    arithmetic codes, which "compress better by coding for sequences
    longer than individual symbols, but complicate direct interpretation".
    This module provides that end of the design space so the wire-format
    ablation benches can measure the gap. *)

module Model : sig
  type t
  (** Adaptive frequency model over a fixed alphabet, with add-one
      initialization and periodic halving to stay within the coder's
      total-frequency bound. *)

  val create : int -> t
  (** [create n] models symbols in [0, n). *)

  val update : t -> int -> unit

  val cum_below : t -> int -> int
  (** Cumulative frequency of all symbols below the argument; O(log n)
      via a Fenwick tree over the frequency array. *)

  val find : t -> int -> int * int
  (** [find m target] is the symbol whose cumulative interval contains
      [target], paired with its cumulative base; O(log n). *)

  val freq : t -> int -> int
  val total : t -> int

  (** The original linear-scan model, kept verbatim as the oracle for
      randomized differential tests. Not used on any production path. *)
  module Reference : sig
    type t

    val create : int -> t
    val update : t -> int -> unit
    val cum_below : t -> int -> int
    val find : t -> int -> int * int
    val freq : t -> int -> int
    val total : t -> int
  end
end

val context_slots : int
(** Context-model bank size of the order-N compressor (4096). *)

val ctx_hash : int -> int array -> int
(** [ctx_hash order history] maps the previous [order] bytes
    ([history.(0)] most recent) to a slot in [0, context_slots);
    order 0 maps to slot 0. Shared with {!Lza} so its literal contexts
    match the order-N compressor's. *)

type encoder

val encoder : unit -> encoder
val encode : encoder -> Model.t -> int -> unit
(** Encode a symbol under the model's current statistics; the caller is
    responsible for calling [Model.update] afterwards (so encoder and
    decoder stay in lock-step). *)

val finish : encoder -> string

type decoder

val decoder : string -> decoder
val decode : decoder -> Model.t -> int

val compress_order_n : order:int -> string -> string
(** Whole-string convenience: order-[order] context-mixed byte model
    (contexts hash the previous [order] bytes), adaptive. *)

val decompress_order_n :
  ?max_output:int -> order:int -> string -> (string, Support.Decode_error.t) result
(** Total inverse of {!compress_order_n}: the declared output length is
    checked against [max_output] (default 64 MB) before any proportional
    allocation, and header defects yield typed errors.
    @raise Invalid_argument if [order] itself (a caller parameter, not
    input data) is outside [0, 3]. *)

val decompress_order_n_exn : ?max_output:int -> order:int -> string -> string
(** As {!decompress_order_n} but raises {!Support.Decode_error.Fail};
    for trusted inputs. *)
