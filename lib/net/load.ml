(* Closed- and open-loop load generator for the mccd daemon.

   N clients share one op counter. In closed-loop mode (qps = 0) each
   client fires its next request the moment the previous response
   lands, so the measured rate is the server's max sustained
   throughput. In open-loop mode op [i] is *scheduled* at
   [t0 + i / qps] and latency is measured from the scheduled instant,
   not the send instant — queueing delay the server causes shows up in
   the percentiles instead of silently stretching the run
   (closed-loop generators hide overload; open-loop ones expose it).

   The workload mirrors [Server.Workload]: Zipf-ish program popularity
   (weight 1000/(rank+1) in catalog order), a profile drawn per fetch,
   and a configurable slice of streaming clients that open a chunked
   session and page functions in. Everything is seeded [Support.Prng],
   so a run is reproducible.

   Every response is verified end-to-end when [verify] is set: whole
   artifacts go through their named codec's total decoder, chunk
   payloads through [Wire.decompress]. A response that fails to decode
   counts as [corrupt] — the bench gate requires that count to be
   zero. *)

type config = {
  port : int;
  clients : int;
  requests : int;            (* total ops across all clients *)
  qps : float;               (* 0. = closed loop *)
  seed : int64;
  stream_pct : int;          (* % of non-session ops that open a session *)
  chunks_per_session : int;
  domains : int;             (* client threads are spread over domains *)
  profiles : string list;    (* profile names Fetch draws from *)
  verify : bool;
}

let default_config =
  {
    port = 0;
    clients = 16;
    requests = 2000;
    qps = 0.;
    seed = 42L;
    stream_pct = 25;
    chunks_per_session = 6;
    domains = 4;
    profiles = [ "modem-jit"; "lan-jit"; "embedded"; "datacenter" ];
    verify = true;
  }

(* quantile math lives in Support.Quantile (the simulator and benches
   use it without a net dependency); re-exported here for the report
   types and historical callers *)
type bucket = Support.Quantile.bucket = {
  count : int;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

let empty_bucket = Support.Quantile.empty_bucket
let percentile = Support.Quantile.percentile
let bucket_of_ms = Support.Quantile.bucket_of_ms

type report = {
  sent : int;
  ok : int;
  errors : int;          (* typed Err responses + transport failures *)
  shed : int;            (* Overloaded responses *)
  corrupt : int;         (* responses that failed verification *)
  bytes : int;           (* artifact and chunk payload bytes received *)
  wall_s : float;
  achieved_qps : float;
  lat_all : bucket;
  lat_fetch : bucket;
  lat_open : bucket;
  lat_chunk : bucket;
  error_samples : string list;
}

(* ---- per-client state ---- *)

type op_kind = Fetch_op | Open_op | Chunk_op

(* One op as the generator decided it, before the wire: enough for a
   trace recorder to reconstruct the request stream. Callbacks are
   serialized under an internal mutex (clients run on many threads). *)
type observation = {
  obs_client : int;           (* client index, 0.. *)
  obs_kind : op_kind;
  obs_digest : string;
  obs_profile : string;       (* "" for open/chunk ops *)
}

type session_state = {
  token : string;
  sdigest : string;           (* program the session streams *)
  names : string array;       (* the session's index *)
  mutable seq : int;
  mutable left : int;         (* chunks still to pull in this session *)
}

type client_acc = {
  mutable c_sent : int;
  mutable c_ok : int;
  mutable c_errors : int;
  mutable c_shed : int;
  mutable c_corrupt : int;
  mutable c_bytes : int;
  mutable c_samples : string list;
  mutable lat : (op_kind * float) list;  (* latency in ms *)
}

let new_acc () =
  { c_sent = 0; c_ok = 0; c_errors = 0; c_shed = 0; c_corrupt = 0;
    c_bytes = 0; c_samples = []; lat = [] }

let verify_artifact ~codec body =
  match Codec.find codec with
  | None -> false
  | Some e -> (
    match Codec.decode e.Codec.codec body with Ok _ -> true | Error _ -> false)

let verify_chunk payload =
  match Wire.decompress payload with Ok _ -> true | Error _ -> false

let zipf_weights catalog =
  List.mapi (fun rank row -> (1000 / (rank + 1), row)) catalog

let run ?observe (cfg : config) =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let obs_mu = Mutex.create () in
  let observed o =
    match observe with
    | None -> ()
    | Some f ->
      Mutex.lock obs_mu;
      (try f o with e -> Mutex.unlock obs_mu; raise e);
      Mutex.unlock obs_mu
  in
  (* one bootstrap connection pulls the catalog all clients share *)
  let catalog =
    let c = Client.connect ~port:cfg.port in
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        match Client.rpc c Protocol.List with
        | Ok (Protocol.Catalog rows) -> rows
        | Ok _ -> failwith "Load.run: unexpected response to List"
        | Error e ->
          failwith ("Load.run: catalog fetch failed: "
                    ^ Support.Decode_error.to_string e))
  in
  if catalog = [] then failwith "Load.run: server catalog is empty";
  let weights = zipf_weights catalog in
  let profiles = Array.of_list cfg.profiles in
  let ops = Atomic.make 0 in
  let accs = Array.init cfg.clients (fun _ -> new_acc ()) in
  let t0 = Unix.gettimeofday () in

  let run_client idx =
    let acc = accs.(idx) in
    let prng = Support.Prng.create (Int64.add cfg.seed (Int64.of_int idx)) in
    let conn = ref (Some (Client.connect ~port:cfg.port)) in
    let session = ref None in
    let reconnect () =
      (match !conn with Some c -> Client.close c | None -> ());
      conn :=
        (try Some (Client.connect ~port:cfg.port)
         with Unix.Unix_error _ -> None)
    in
    let record kind ms = acc.lat <- (kind, ms) :: acc.lat in
    let sample msg =
      if List.length acc.c_samples < 4 then
        acc.c_samples <- msg :: acc.c_samples
    in
    let finished = ref false in
    while not !finished do
      let i = Atomic.fetch_and_add ops 1 in
      if i >= cfg.requests then finished := true
      else begin
        (* open loop: wait for the op's scheduled arrival; latency is
           measured from that instant so queueing delay counts *)
        let scheduled =
          if cfg.qps > 0. then begin
            let s = t0 +. (float_of_int i /. cfg.qps) in
            let now = Unix.gettimeofday () in
            if s > now then Unix.sleepf (s -. now);
            s
          end
          else Unix.gettimeofday ()
        in
        (if !conn = None then reconnect ());
        match !conn with
        | None ->
          acc.c_sent <- acc.c_sent + 1;
          acc.c_errors <- acc.c_errors + 1;
          sample "connect refused"
        | Some c ->
          let kind, req, digest, prof =
            match !session with
            | Some s when s.left > 0 && Array.length s.names > 0 ->
              let name = s.names.(Support.Prng.int prng (Array.length s.names)) in
              (Chunk_op,
               Protocol.Chunk { token = s.token; seq = s.seq; name },
               s.sdigest, "")
            | _ ->
              let row = Support.Prng.weighted prng weights in
              if Support.Prng.int prng 100 < cfg.stream_pct then
                (Open_op,
                 Protocol.Open
                   { codec = ""; digest = row.Protocol.prog_digest;
                     resume = ""; held = [] },
                 row.Protocol.prog_digest, "")
              else
                let profile =
                  profiles.(Support.Prng.int prng (Array.length profiles))
                in
                (Fetch_op,
                 Protocol.Fetch
                   { profile; digest = row.Protocol.prog_digest; held = [] },
                 row.Protocol.prog_digest, profile)
          in
          observed
            { obs_client = idx; obs_kind = kind; obs_digest = digest;
              obs_profile = prof };
          acc.c_sent <- acc.c_sent + 1;
          (match Client.rpc c req with
          | Error e ->
            acc.c_errors <- acc.c_errors + 1;
            sample (Support.Decode_error.to_string e);
            session := None;
            reconnect ()
          | Ok resp -> (
            let ms = (Unix.gettimeofday () -. scheduled) *. 1000. in
            record kind ms;
            match resp with
            | Protocol.Overloaded ->
              acc.c_shed <- acc.c_shed + 1;
              session := None;
              reconnect ()
            | Protocol.Err (code, msg) ->
              acc.c_errors <- acc.c_errors + 1;
              sample (Protocol.err_code_name code ^ ": " ^ msg);
              if code = Protocol.Bad_session || code = Protocol.Bad_seq then
                session := None
            | Protocol.Artifact { codec; body; _ } ->
              acc.c_ok <- acc.c_ok + 1;
              acc.c_bytes <- acc.c_bytes + String.length body;
              if cfg.verify && not (verify_artifact ~codec body) then
                acc.c_corrupt <- acc.c_corrupt + 1
            | Protocol.Index { token; next_seq; rows; _ } ->
              acc.c_ok <- acc.c_ok + 1;
              session :=
                Some
                  {
                    token;
                    sdigest = digest;
                    names = Array.of_list (List.map fst rows);
                    seq = next_seq;
                    left = cfg.chunks_per_session;
                  }
            | Protocol.Chunk_data payload ->
              acc.c_ok <- acc.c_ok + 1;
              acc.c_bytes <- acc.c_bytes + String.length payload;
              (match !session with
              | Some s ->
                s.seq <- s.seq + 1;
                s.left <- s.left - 1;
                if s.left <= 0 then session := None
              | None -> ());
              if cfg.verify && not (verify_chunk payload) then
                acc.c_corrupt <- acc.c_corrupt + 1
            | Protocol.Pong | Protocol.Catalog _ | Protocol.Dict_data _ ->
              acc.c_ok <- acc.c_ok + 1))
      end
    done;
    match !conn with Some c -> Client.close c | None -> ()
  in

  (* Spread the clients over domains, each domain running its share as
     systhreads: blocked IO releases the domain, so a domain drives
     many connections, and the domains give true parallelism. *)
  let n_domains = max 1 (min cfg.domains cfg.clients) in
  let group d =
    (* client indices d, d + n_domains, d + 2*n_domains, ... *)
    let rec ids i = if i >= cfg.clients then [] else i :: ids (i + n_domains) in
    ids d
  in
  let pool = Support.Pool.create ~domains:n_domains in
  Fun.protect
    ~finally:(fun () -> Support.Pool.shutdown pool)
    (fun () ->
      ignore
        (Support.Pool.run_list pool
           (List.init n_domains (fun d () ->
                let threads =
                  List.map (fun i -> Thread.create run_client i) (group d)
                in
                List.iter Thread.join threads))));
  let wall_s = Unix.gettimeofday () -. t0 in

  (* ---- merge ---- *)
  let bucket kind =
    bucket_of_ms
      (Array.to_list accs
      |> List.concat_map (fun a ->
             List.filter_map
               (fun (k, v) ->
                 if kind = None || kind = Some k then Some v else None)
               a.lat))
  in
  let sum f = Array.fold_left (fun a c -> a + f c) 0 accs in
  let ok = sum (fun a -> a.c_ok) in
  {
    sent = sum (fun a -> a.c_sent);
    ok;
    errors = sum (fun a -> a.c_errors);
    shed = sum (fun a -> a.c_shed);
    corrupt = sum (fun a -> a.c_corrupt);
    bytes = sum (fun a -> a.c_bytes);
    wall_s;
    achieved_qps = (if wall_s > 0. then float_of_int ok /. wall_s else 0.);
    lat_all = bucket None;
    lat_fetch = bucket (Some Fetch_op);
    lat_open = bucket (Some Open_op);
    lat_chunk = bucket (Some Chunk_op);
    error_samples =
      List.concat_map (fun a -> List.rev a.c_samples) (Array.to_list accs);
  }

(* ---- reporting ---- *)

let print_bucket oc label b =
  if b.count > 0 then
    Printf.fprintf oc
      "  %-6s %6d ops   p50 %7.2f ms   p95 %7.2f ms   p99 %7.2f ms   max %7.2f ms\n"
      label b.count b.p50_ms b.p95_ms b.p99_ms b.max_ms

let print_human oc (r : report) =
  Printf.fprintf oc
    "%d ops in %.2f s  (%.0f QPS)   ok %d  errors %d  shed %d  corrupt %d   %.1f MiB received\n"
    r.sent r.wall_s r.achieved_qps r.ok r.errors r.shed r.corrupt
    (float_of_int r.bytes /. 1048576.);
  print_bucket oc "all" r.lat_all;
  print_bucket oc "fetch" r.lat_fetch;
  print_bucket oc "open" r.lat_open;
  print_bucket oc "chunk" r.lat_chunk;
  List.iteri
    (fun i msg -> if i < 4 then Printf.fprintf oc "  error: %s\n" msg)
    r.error_samples

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_bucket b =
  Printf.sprintf
    "{\"count\": %d, \"mean_ms\": %.3f, \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, \"max_ms\": %.3f}"
    b.count b.mean_ms b.p50_ms b.p95_ms b.p99_ms b.max_ms

let print_json oc (cfg : config) (r : report) =
  Printf.fprintf oc "{\n";
  Printf.fprintf oc
    "  \"config\": {\"clients\": %d, \"requests\": %d, \"qps\": %.1f, \"stream_pct\": %d, \"domains\": %d, \"seed\": %Ld},\n"
    cfg.clients cfg.requests cfg.qps cfg.stream_pct cfg.domains cfg.seed;
  Printf.fprintf oc "  \"sent\": %d,\n" r.sent;
  Printf.fprintf oc "  \"ok\": %d,\n" r.ok;
  Printf.fprintf oc "  \"errors\": %d,\n" r.errors;
  Printf.fprintf oc "  \"shed\": %d,\n" r.shed;
  Printf.fprintf oc "  \"corrupt\": %d,\n" r.corrupt;
  Printf.fprintf oc "  \"bytes\": %d,\n" r.bytes;
  Printf.fprintf oc "  \"wall_s\": %.3f,\n" r.wall_s;
  Printf.fprintf oc "  \"qps\": %.1f,\n" r.achieved_qps;
  Printf.fprintf oc "  \"latency_ms\": {\n";
  Printf.fprintf oc "    \"all\": %s,\n" (json_bucket r.lat_all);
  Printf.fprintf oc "    \"fetch\": %s,\n" (json_bucket r.lat_fetch);
  Printf.fprintf oc "    \"open\": %s,\n" (json_bucket r.lat_open);
  Printf.fprintf oc "    \"chunk\": %s\n" (json_bucket r.lat_chunk);
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"error_samples\": [%s]\n"
    (String.concat ", "
       (List.filteri (fun i _ -> i < 4) r.error_samples
       |> List.map (fun s -> "\"" ^ json_escape s ^ "\"")));
  Printf.fprintf oc "}\n"
