(* The mccd wire protocol: length-prefixed, CRC-sealed frames.

   Layout of one frame, both directions:

     u32be length | "MN1" | crc32be(payload) | payload

   The 4-byte length covers everything after itself (magic + CRC +
   payload) and is bounded before any allocation; the magic/CRC seal
   and the payload reader are the shared [Support.Frame] machinery, so
   request parsing inherits the totality guarantees of every other
   untrusted-input decoder in the tree: truncation, bad magic, CRC
   damage, oversized counts and trailing garbage all surface as typed
   [Support.Decode_error] values, never exceptions.

   The payload is a one-byte tag plus ULEB128/length-prefixed fields.
   Request tags are uppercase, response tags lowercase. *)

let magic = "MN1"

(* Responses carry whole compressed artifacts; requests never should.
   Both bounds are checked before allocating the frame body. *)
let max_frame = 64 * 1024 * 1024
let max_request_frame = 1024 * 1024

(* A held set is a negotiation, not a payload: a client advertising
   thousands of digests is hostile, and the engine would score a
   candidate per held base anyway. Checked before allocation. *)
let max_held = 64

type req =
  | Ping
  | List
      (** the published catalog: what a load generator can ask for *)
  | Dict
      (** the server's shared dictionary, so the client can hold it *)
  | Fetch of { profile : string; digest : string; held : string list }
      (** one whole-image request as the named client profile; [held]
          advertises digests the client already holds (the shared
          dictionary and/or previously fetched programs), unlocking
          contexted representations *)
  | Open of {
      codec : string;
      digest : string;
      resume : string;
      held : string list;
    }
      (** open a chunked session ([codec] names a registered streamable
          codec; [""] means chunked-wire). A non-empty [resume] token
          re-attaches to an existing session after a dropped
          connection instead of opening a new one; the session keeps
          the held set it was opened with ([held] on a resume is
          ignored — the negotiated context survives the reconnect). *)
  | Chunk of { token : string; seq : int; name : string }
      (** one function chunk of an open session *)

type catalog_row = { prog_name : string; prog_digest : string; fn_count : int }

type err_code =
  | Bad_request     (** the request frame did not decode *)
  | Unknown_name    (** digest, profile or codec the server has never seen *)
  | Not_streamable  (** the named codec is not registered streamable *)
  | Bad_session     (** unknown or expired session token *)
  | Bad_seq         (** session-level refusal (bad seq / unknown function) *)
  | Busy            (** session table full; retry later *)
  | Server_error    (** the engine failed internally *)

let err_code_byte = function
  | Bad_request -> 0
  | Unknown_name -> 1
  | Not_streamable -> 2
  | Bad_session -> 3
  | Bad_seq -> 4
  | Busy -> 5
  | Server_error -> 6

let err_code_of_byte = function
  | 0 -> Some Bad_request
  | 1 -> Some Unknown_name
  | 2 -> Some Not_streamable
  | 3 -> Some Bad_session
  | 4 -> Some Bad_seq
  | 5 -> Some Busy
  | 6 -> Some Server_error
  | _ -> None

let err_code_name = function
  | Bad_request -> "bad-request"
  | Unknown_name -> "unknown-name"
  | Not_streamable -> "not-streamable"
  | Bad_session -> "bad-session"
  | Bad_seq -> "bad-seq"
  | Busy -> "busy"
  | Server_error -> "server-error"

type resp =
  | Pong
  | Catalog of catalog_row list
  | Dict_data of {
      lz : string;             (** LZ77 priming window bytes *)
      pats : string;           (** BRISC shared-entry prefix, byte form *)
      sd_digest : string;      (** what [Fetch.held] should advertise *)
    }
  | Artifact of {
      label : string;          (** engine's (artifact, mode) label *)
      codec : string;          (** registry name — names the verifier *)
      cache_hit : bool;
      degraded_from : string;  (** [""] when the first choice served *)
      context : string;        (** digest of the held context the body
                                   was encoded against; [""] when
                                   context-free *)
      body : string;           (** the compressed artifact image *)
    }
  | Index of {
      token : string;          (** session token; resume with this *)
      next_seq : int;          (** where the session's window stands *)
      context : string;        (** the session's negotiated dictionary
                                   digest ([""] when none); identical
                                   after a resume *)
      rows : (string * int) list;  (** function name, chunk bytes *)
    }
  | Chunk_data of string
      (** one complete single-function wire image *)
  | Err of err_code * string
  | Overloaded
      (** typed shed: the daemon refused the connection under load *)

(* ---- encoding ---- *)

let frame_of_payload payload =
  let body = Support.Frame.seal ~magic payload in
  let n = String.length body in
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set hdr 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set hdr 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set hdr 3 (Char.chr (n land 0xff));
  Bytes.to_string hdr ^ body

let put_held b held =
  if List.length held > max_held then
    invalid_arg
      (Printf.sprintf "Net.Protocol: held set exceeds %d digests" max_held);
  Support.Util.uleb128 b (List.length held);
  List.iter (Support.Frame.put_str b) held

let encode_req (r : req) =
  let b = Buffer.create 64 in
  (match r with
  | Ping -> Buffer.add_char b 'P'
  | List -> Buffer.add_char b 'L'
  | Dict -> Buffer.add_char b 'D'
  | Fetch { profile; digest; held } ->
    Buffer.add_char b 'F';
    Support.Frame.put_str b profile;
    Support.Frame.put_str b digest;
    put_held b held
  | Open { codec; digest; resume; held } ->
    Buffer.add_char b 'O';
    Support.Frame.put_str b codec;
    Support.Frame.put_str b digest;
    Support.Frame.put_str b resume;
    put_held b held
  | Chunk { token; seq; name } ->
    Buffer.add_char b 'C';
    Support.Frame.put_str b token;
    Support.Util.uleb128 b seq;
    Support.Frame.put_str b name);
  frame_of_payload (Buffer.contents b)

let encode_resp (r : resp) =
  let b = Buffer.create 256 in
  (match r with
  | Pong -> Buffer.add_char b 'p'
  | Catalog rows ->
    Buffer.add_char b 'l';
    Support.Util.uleb128 b (List.length rows);
    List.iter
      (fun row ->
        Support.Frame.put_str b row.prog_name;
        Support.Frame.put_str b row.prog_digest;
        Support.Util.uleb128 b row.fn_count)
      rows
  | Dict_data { lz; pats; sd_digest } ->
    Buffer.add_char b 'd';
    Support.Frame.put_str b lz;
    Support.Frame.put_str b pats;
    Support.Frame.put_str b sd_digest
  | Artifact { label; codec; cache_hit; degraded_from; context; body } ->
    Buffer.add_char b 'a';
    Support.Frame.put_str b label;
    Support.Frame.put_str b codec;
    Buffer.add_char b (if cache_hit then '\001' else '\000');
    Support.Frame.put_str b degraded_from;
    Support.Frame.put_str b context;
    Support.Frame.put_str b body
  | Index { token; next_seq; context; rows } ->
    Buffer.add_char b 'i';
    Support.Frame.put_str b token;
    Support.Util.uleb128 b next_seq;
    Support.Frame.put_str b context;
    Support.Util.uleb128 b (List.length rows);
    List.iter
      (fun (name, size) ->
        Support.Frame.put_str b name;
        Support.Util.uleb128 b size)
      rows
  | Chunk_data payload ->
    Buffer.add_char b 'c';
    Support.Frame.put_str b payload
  | Err (code, msg) ->
    Buffer.add_char b 'e';
    Buffer.add_char b (Char.chr (err_code_byte code));
    Support.Frame.put_str b msg
  | Overloaded -> Buffer.add_char b 'v');
  frame_of_payload (Buffer.contents b)

(* ---- decoding (total) ---- *)

(* [body] is the frame after the length prefix: magic + CRC + payload. *)

let reader ~decoder body =
  let off = Support.Frame.verify ~decoder ~magic body in
  Support.Frame.reader ~decoder ~pos:off body

(* total held-set reader: count bounded by [max_held] before any
   allocation, each digest an ordinary length-prefixed string *)
let read_held r =
  let n = Support.Frame.u r in
  if n > max_held then
    Support.Frame.fail r Support.Decode_error.Limit
      (Printf.sprintf "held set claims %d digests (cap %d)" n max_held);
  Support.Frame.check_count r n "held digest";
  List.init n (fun _ -> Support.Frame.str ~what:"held digest" r)

let decode_req body : (req, Support.Decode_error.t) result =
  Support.Decode_error.guard ~decoder:"net-req" @@ fun () ->
  let r = reader ~decoder:"net-req" body in
  let tag = Support.Frame.byte r ~what:"request tag" () in
  let req =
    match tag with
    | 'P' -> Ping
    | 'L' -> List
    | 'D' -> Dict
    | 'F' ->
      let profile = Support.Frame.str ~what:"profile" r in
      let digest = Support.Frame.str ~what:"digest" r in
      let held = read_held r in
      Fetch { profile; digest; held }
    | 'O' ->
      let codec = Support.Frame.str ~what:"codec" r in
      let digest = Support.Frame.str ~what:"digest" r in
      let resume = Support.Frame.str ~what:"resume token" r in
      let held = read_held r in
      Open { codec; digest; resume; held }
    | 'C' ->
      let token = Support.Frame.str ~what:"session token" r in
      let seq = Support.Frame.u r in
      let name = Support.Frame.str ~what:"function name" r in
      Chunk { token; seq; name }
    | c ->
      Support.Frame.fail r Support.Decode_error.Bad_value
        (Printf.sprintf "unknown request tag %C" c)
  in
  Support.Frame.expect_end r "request";
  req

let decode_resp body : (resp, Support.Decode_error.t) result =
  Support.Decode_error.guard ~decoder:"net-resp" @@ fun () ->
  let r = reader ~decoder:"net-resp" body in
  let tag = Support.Frame.byte r ~what:"response tag" () in
  let resp =
    match tag with
    | 'p' -> Pong
    | 'l' ->
      let n = Support.Frame.u r in
      Support.Frame.check_count r n "catalog row";
      Catalog
        (List.init n (fun _ ->
             let prog_name = Support.Frame.str ~what:"program name" r in
             let prog_digest = Support.Frame.str ~what:"digest" r in
             let fn_count = Support.Frame.u r in
             { prog_name; prog_digest; fn_count }))
    | 'd' ->
      let lz = Support.Frame.str ~what:"dictionary lz bytes" r in
      let pats = Support.Frame.str ~what:"dictionary patterns" r in
      let sd_digest = Support.Frame.str ~what:"dictionary digest" r in
      Dict_data { lz; pats; sd_digest }
    | 'a' ->
      let label = Support.Frame.str ~what:"label" r in
      let codec = Support.Frame.str ~what:"codec" r in
      let hit = Support.Frame.byte r ~what:"cache flag" () in
      if hit <> '\000' && hit <> '\001' then
        Support.Frame.fail r Support.Decode_error.Bad_value
          "cache flag out of domain";
      let degraded_from = Support.Frame.str ~what:"degraded-from" r in
      let context = Support.Frame.str ~what:"context digest" r in
      let body = Support.Frame.str ~what:"artifact body" r in
      Artifact
        { label; codec; cache_hit = hit = '\001'; degraded_from; context;
          body }
    | 'i' ->
      let token = Support.Frame.str ~what:"session token" r in
      let next_seq = Support.Frame.u r in
      let context = Support.Frame.str ~what:"context digest" r in
      let n = Support.Frame.u r in
      Support.Frame.check_count r n "index row";
      Index
        {
          token;
          next_seq;
          context;
          rows =
            List.init n (fun _ ->
                let name = Support.Frame.str ~what:"function name" r in
                let size = Support.Frame.u r in
                (name, size));
        }
    | 'c' -> Chunk_data (Support.Frame.str ~what:"chunk payload" r)
    | 'e' ->
      let code = Support.Frame.byte r ~what:"error code" () in
      let msg = Support.Frame.str ~what:"error message" r in
      (match err_code_of_byte (Char.code code) with
      | Some c -> Err (c, msg)
      | None ->
        Support.Frame.fail r Support.Decode_error.Bad_value
          "error code out of domain")
    | 'v' -> Overloaded
    | c ->
      Support.Frame.fail r Support.Decode_error.Bad_value
        (Printf.sprintf "unknown response tag %C" c)
  in
  Support.Frame.expect_end r "response";
  resp

(* ---- blocking IO helpers (client side and tests) ---- *)

let really_write fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let write_frame fd frame = really_write fd frame

(* [Ok None] is a clean EOF before any byte of the next frame; EOF in
   the middle of a frame is a typed [Truncated] error. *)
let read_frame ?(max = max_frame) fd :
    (string option, Support.Decode_error.t) result =
  let buf = Bytes.create 4 in
  let rec fill off len started =
    if len = 0 then Ok ()
    else
      match Unix.read fd buf off len with
      | 0 ->
        if started then
          Error
            {
              Support.Decode_error.decoder = "net-frame";
              kind = Support.Decode_error.Truncated;
              pos = off;
              msg = "connection closed mid-frame";
            }
        else Ok ()
      | n -> fill (off + n) (len - n) true
  in
  match Unix.read fd buf 0 1 with
  | 0 -> Ok None  (* clean EOF between frames *)
  | _ -> (
    match fill 1 3 true with
    | Error e -> Error e
    | Ok () ->
      let n =
        (Char.code (Bytes.get buf 0) lsl 24)
        lor (Char.code (Bytes.get buf 1) lsl 16)
        lor (Char.code (Bytes.get buf 2) lsl 8)
        lor Char.code (Bytes.get buf 3)
      in
      if n <= 0 || n > max then
        Error
          {
            Support.Decode_error.decoder = "net-frame";
            kind = Support.Decode_error.Limit;
            pos = 0;
            msg = Printf.sprintf "frame length %d exceeds cap %d" n max;
          }
      else begin
        let body = Bytes.create n in
        let rec fill_body off len =
          if len = 0 then Ok (Some (Bytes.to_string body))
          else
            match Unix.read fd body off len with
            | 0 ->
              Error
                {
                  Support.Decode_error.decoder = "net-frame";
                  kind = Support.Decode_error.Truncated;
                  pos = 4 + off;
                  msg = "connection closed mid-frame";
                }
            | k -> fill_body (off + k) (len - k)
        in
        fill_body 0 n
      end)
