(* The mccd network daemon: a TCP accept loop feeding N worker event
   loops, all running as thunks on one [Support.Pool] of OCaml 5
   domains ([Pool.run_list] makes the calling domain the accept lane).

   Concurrency layout:

   - the accept loop owns the listening socket. Each accepted
     connection is routed to the least-loaded worker (per-worker live
     connection count, an [Atomic]); when every worker is at
     [queue_depth] the daemon sheds: it answers the connection with the
     typed [Overloaded] frame and closes it, so clients distinguish
     "server full, retry" from failure. That bound is the backpressure
     contract — memory per worker is [queue_depth] connections' input
     buffers, never the open-ended accept backlog.

   - each worker runs a [select]-based event loop over its connections
     plus a self-pipe the accept loop writes to when handing over a new
     socket. Request frames are reassembled incrementally per
     connection (a growing buffer + the 4-byte big-endian length
     prefix) and parsed only through [Protocol.decode_req], i.e. the
     shared total-decoder machinery: a hostile frame costs a typed
     error reply and the connection, never the daemon.

   - shared state is the engine (sharded store, single-flight
     materialization, mutexed stats) and the session table below; both
     are safe to hit from every worker domain concurrently.

   Sessions live in a daemon-level table keyed by token, not in the
   connection, so a client whose TCP connection dies mid-stream can
   reconnect — possibly landing on a different worker domain — and
   [Open] with its resume token to pick up exactly where it left off
   (the [Session] replay table retransmits dropped chunks
   byte-for-byte). Each session carries its own mutex: two connections
   presenting the same token serialize rather than race.

   Shutdown: [request_stop] (safe to call from a signal handler) flips
   an atomic flag; the accept loop stops accepting and closes the
   listening socket, workers finish in-flight requests, close their
   connections and drain, and [run] returns. *)

type config = {
  port : int;            (* 0 = ephemeral; see [port] after [create] *)
  domains : int;         (* worker event loops *)
  queue_depth : int;     (* max live connections per worker *)
  max_sessions : int;    (* bound on the resumable-session table *)
  profiles : Server.Profile.t list;  (* what [Fetch] may name *)
}

let default_config =
  {
    port = 0;
    domains = 4;
    queue_depth = 64;
    max_sessions = 1024;
    profiles = [ Server.Profile.modem; Server.Profile.lan; Server.Profile.embedded;
                 Server.Profile.datacenter ];
  }

type counters = {
  accepted : int Atomic.t;
  served : int Atomic.t;        (* response frames written *)
  shed : int Atomic.t;          (* connections refused with Overloaded *)
  bad_frames : int Atomic.t;    (* undecodable / oversized requests *)
  closed : int Atomic.t;
}

type stats = {
  c_accepted : int;
  c_served : int;
  c_shed : int;
  c_bad_frames : int;
  c_closed : int;
  c_sessions : int;
}

(* [held] is the digest set the session was opened with — the
   negotiated context. It lives in the session record, not the
   connection, so a client that reconnects and resumes keeps it. *)
type tracked = { sess : Server.Session.t; sm : Mutex.t; held : string list }

type worker = {
  live : int Atomic.t;
  wmu : Mutex.t;
  incoming : Unix.file_descr Queue.t;
  notify_r : Unix.file_descr;
  notify_w : Unix.file_descr;
}

type t = {
  engine : Server.t;
  catalog : Protocol.catalog_row list;
  cfg : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  stop : bool Atomic.t;
  workers : worker array;
  counters : counters;
  sess_mu : Mutex.t;
  sessions : (string, tracked) Hashtbl.t;
  token_ctr : int Atomic.t;
}

let create engine ~catalog cfg =
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, cfg.port));
  Unix.listen listen_fd 128;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  let worker () =
    let notify_r, notify_w = Unix.pipe () in
    Unix.set_nonblock notify_r;
    {
      live = Atomic.make 0;
      wmu = Mutex.create ();
      incoming = Queue.create ();
      notify_r;
      notify_w;
    }
  in
  {
    engine;
    catalog;
    cfg;
    listen_fd;
    bound_port;
    stop = Atomic.make false;
    workers = Array.init (max 1 cfg.domains) (fun _ -> worker ());
    counters =
      {
        accepted = Atomic.make 0;
        served = Atomic.make 0;
        shed = Atomic.make 0;
        bad_frames = Atomic.make 0;
        closed = Atomic.make 0;
      };
    sess_mu = Mutex.create ();
    sessions = Hashtbl.create 64;
    token_ctr = Atomic.make 0;
  }

let port t = t.bound_port

let stats t =
  Mutex.lock t.sess_mu;
  let sessions = Hashtbl.length t.sessions in
  Mutex.unlock t.sess_mu;
  {
    c_accepted = Atomic.get t.counters.accepted;
    c_served = Atomic.get t.counters.served;
    c_shed = Atomic.get t.counters.shed;
    c_bad_frames = Atomic.get t.counters.bad_frames;
    c_closed = Atomic.get t.counters.closed;
    c_sessions = sessions;
  }

(* Atomic.set from a signal handler is safe: OCaml runs handlers at
   safepoints on the main domain, and the loops poll the flag on every
   select timeout. *)
let request_stop t = Atomic.set t.stop true

(* ---- request dispatch (runs on a worker domain) ---- *)

let with_lock mu f =
  Mutex.lock mu;
  match f () with
  | v -> Mutex.unlock mu; v
  | exception e -> Mutex.unlock mu; raise e

let find_profile t name =
  List.find_opt (fun p -> p.Server.Profile.name = name) t.cfg.profiles

let fresh_token t =
  Printf.sprintf "s%d" (Atomic.fetch_and_add t.token_ctr 1)

(* the session's negotiated dictionary digest: what of its held set
   names the shared dictionary this server actually serves *)
let session_context held =
  let d = Codec.Context.builtin_digest () in
  if List.mem d held then d else ""

let index_resp token tr =
  Protocol.Index
    { token; next_seq = Server.Session.next_seq tr.sess;
      context = session_context tr.held; rows = Server.Session.index tr.sess }

let handle_open t ~codec ~digest ~resume ~held =
  if resume <> "" then
    (* reconnect: re-attach to the surviving session; the reply's
       [next_seq] tells the client where the window stands, the replay
       table answers any seq it never saw the response to, and the
       session's negotiated context (its original held set) survives —
       the [held] field of a resume is ignored *)
    match
      with_lock t.sess_mu (fun () -> Hashtbl.find_opt t.sessions resume)
    with
    | None -> Protocol.Err (Protocol.Bad_session, "unknown resume token")
    | Some tr -> with_lock tr.sm (fun () -> index_resp resume tr)
  else
    let codec = if codec = "" then "chunked-wire" else codec in
    let full =
      with_lock t.sess_mu (fun () ->
          Hashtbl.length t.sessions >= t.cfg.max_sessions)
    in
    if full then Protocol.Err (Protocol.Busy, "session table full")
    else
      match Server.open_session_for t.engine ~codec digest with
      | Error (`Unknown_codec c) ->
        Protocol.Err (Protocol.Unknown_name, "unknown codec " ^ c)
      | Error (`Not_streamable c) ->
        Protocol.Err
          (Protocol.Not_streamable, "codec " ^ c ^ " is not streamable")
      | Ok sess ->
        let token = fresh_token t in
        let tr = { sess; sm = Mutex.create (); held } in
        with_lock t.sess_mu (fun () -> Hashtbl.replace t.sessions token tr);
        index_resp token tr
      | exception Not_found ->
        Protocol.Err (Protocol.Unknown_name, "unknown digest " ^ digest)
      | exception Support.Decode_error.Fail e ->
        Protocol.Err (Protocol.Server_error, Support.Decode_error.to_string e)
      | exception Failure msg -> Protocol.Err (Protocol.Server_error, msg)

let handle_chunk t ~token ~seq ~name =
  match with_lock t.sess_mu (fun () -> Hashtbl.find_opt t.sessions token) with
  | None -> Protocol.Err (Protocol.Bad_session, "unknown session token")
  | Some tr -> (
    match
      with_lock tr.sm (fun () ->
          Server.session_request t.engine tr.sess ~seq name)
    with
    | Ok payload -> Protocol.Chunk_data payload
    | Error msg -> Protocol.Err (Protocol.Bad_seq, msg))

let handle_fetch t ~profile ~digest ~held =
  match find_profile t profile with
  | None -> Protocol.Err (Protocol.Unknown_name, "unknown profile " ^ profile)
  | Some p -> (
    match Server.fetch ~held t.engine digest p with
    | r ->
      Protocol.Artifact
        {
          label = r.Server.label;
          codec = Server.Artifact.name r.Server.artifact;
          cache_hit = r.Server.cache_hit;
          degraded_from =
            (match r.Server.degraded_from with None -> "" | Some l -> l);
          context =
            (match r.Server.context with None -> "" | Some d -> d);
          body = r.Server.bytes;
        }
    | exception Not_found ->
      Protocol.Err (Protocol.Unknown_name, "unknown digest " ^ digest)
    | exception Support.Decode_error.Fail e ->
      Protocol.Err (Protocol.Server_error, Support.Decode_error.to_string e)
    | exception Failure msg -> Protocol.Err (Protocol.Server_error, msg))

let handle_dict () =
  match Codec.Context.builtin () with
  | Codec.Context.Shared_dict s ->
    Protocol.Dict_data
      { lz = s.Codec.Context.lz; pats = s.Codec.Context.pats_bytes;
        sd_digest = s.Codec.Context.sd_digest }
  | Codec.Context.Base _ -> Protocol.Err (Protocol.Server_error, "no dictionary")

let respond t (req : Protocol.req) =
  match req with
  | Protocol.Ping -> Protocol.Pong
  | Protocol.List -> Protocol.Catalog t.catalog
  | Protocol.Dict -> handle_dict ()
  | Protocol.Fetch { profile; digest; held } ->
    handle_fetch t ~profile ~digest ~held
  | Protocol.Open { codec; digest; resume; held } ->
    handle_open t ~codec ~digest ~resume ~held
  | Protocol.Chunk { token; seq; name } -> handle_chunk t ~token ~seq ~name

(* ---- per-connection input reassembly ---- *)

type conn = {
  fd : Unix.file_descr;
  mutable buf : Bytes.t;
  mutable used : int;
}

let new_conn fd = { fd; buf = Bytes.create 4096; used = 0 }

let ensure_capacity c need =
  if Bytes.length c.buf < need then begin
    let buf = Bytes.create (max need (2 * Bytes.length c.buf)) in
    Bytes.blit c.buf 0 buf 0 c.used;
    c.buf <- buf
  end

exception Drop_conn

let write_resp t c resp =
  (match Protocol.write_frame c.fd (Protocol.encode_resp resp) with
  | () -> ()
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
    raise Drop_conn);
  Atomic.incr t.counters.served

(* Pull every complete frame out of the connection buffer. Raises
   [Drop_conn] on protocol violations (oversized or undecodable frames)
   after answering with a typed error when the socket still accepts
   one. *)
let drain_frames t c =
  let scan = ref 0 in
  (try
     let continue = ref true in
     while !continue do
       if c.used - !scan < 4 then continue := false
       else begin
         let b i = Char.code (Bytes.get c.buf (!scan + i)) in
         let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
         if len <= 0 || len > Protocol.max_request_frame then begin
           Atomic.incr t.counters.bad_frames;
           (try
              write_resp t c
                (Protocol.Err (Protocol.Bad_request, "oversized frame"))
            with Drop_conn -> ());
           raise Drop_conn
         end;
         if c.used - !scan < 4 + len then continue := false
         else begin
           let body = Bytes.sub_string c.buf (!scan + 4) len in
           scan := !scan + 4 + len;
           match Protocol.decode_req body with
           | Error e ->
             Atomic.incr t.counters.bad_frames;
             (try
                write_resp t c
                  (Protocol.Err
                     (Protocol.Bad_request, Support.Decode_error.to_string e))
              with Drop_conn -> ());
             raise Drop_conn
           | Ok req ->
             let resp =
               try respond t req
               with e ->
                 Protocol.Err (Protocol.Server_error, Printexc.to_string e)
             in
             write_resp t c resp
         end
       end
     done
   with e ->
     (* compact before propagating so a rescue isn't possible anyway —
        the conn is dropped — but keep the buffer consistent *)
     if !scan > 0 then begin
       Bytes.blit c.buf !scan c.buf 0 (c.used - !scan);
       c.used <- c.used - !scan
     end;
     raise e);
  if !scan > 0 then begin
    Bytes.blit c.buf !scan c.buf 0 (c.used - !scan);
    c.used <- c.used - !scan
  end

(* ---- worker event loop ---- *)

let drain_pipe fd =
  let junk = Bytes.create 64 in
  let rec go () =
    match Unix.read fd junk 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error (Unix.EAGAIN, _, _) -> ()
  in
  go ()

let worker_loop t w () =
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let close_conn c =
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    Hashtbl.remove conns c.fd;
    Atomic.decr w.live;
    Atomic.incr t.counters.closed
  in
  let adopt_incoming () =
    let fds =
      with_lock w.wmu (fun () ->
          let fds = Queue.fold (fun acc fd -> fd :: acc) [] w.incoming in
          Queue.clear w.incoming;
          fds)
    in
    List.iter (fun fd -> Hashtbl.replace conns fd (new_conn fd)) fds
  in
  let stopping () = Atomic.get t.stop in
  let finished = ref false in
  while not !finished do
    adopt_incoming ();
    if stopping () then begin
      (* graceful drain: everything already buffered was answered by the
         last drain_frames pass; close what remains and exit *)
      Hashtbl.fold (fun _ c acc -> c :: acc) conns []
      |> List.iter close_conn;
      finished := true
    end
    else begin
      let watched =
        w.notify_r :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []
      in
      match Unix.select watched [] [] 0.25 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, _, _ ->
        List.iter
          (fun fd ->
            if fd = w.notify_r then drain_pipe w.notify_r
            else
              match Hashtbl.find_opt conns fd with
              | None -> ()
              | Some c -> (
                ensure_capacity c (c.used + 4096);
                match
                  Unix.read c.fd c.buf c.used (Bytes.length c.buf - c.used)
                with
                | 0 -> close_conn c
                | exception
                    Unix.Unix_error
                      ( ( Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF
                        | Unix.ENOTCONN ),
                        _,
                        _ ) ->
                  close_conn c
                | n -> (
                  c.used <- c.used + n;
                  try drain_frames t c with
                  | Drop_conn -> close_conn c
                  | Unix.Unix_error _ -> close_conn c)))
          readable
    end
  done

(* ---- accept loop ---- *)

let accept_loop t () =
  let n_workers = Array.length t.workers in
  let least_loaded () =
    let best = ref 0 and best_live = ref max_int in
    for i = 0 to n_workers - 1 do
      let live = Atomic.get t.workers.(i).live in
      if live < !best_live then begin
        best := i;
        best_live := live
      end
    done;
    (!best, !best_live)
  in
  let finished = ref false in
  while not !finished do
    if Atomic.get t.stop then finished := true
    else
      match Unix.select [ t.listen_fd ] [] [] 0.25 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept t.listen_fd with
        | exception Unix.Unix_error _ -> ()
        | fd, _ ->
          Atomic.incr t.counters.accepted;
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          let idx, live = least_loaded () in
          if live >= t.cfg.queue_depth then begin
            (* every worker is at its bound: typed shed, not a silent
               RST and not an unbounded queue *)
            Atomic.incr t.counters.shed;
            (try Protocol.write_frame fd (Protocol.encode_resp Protocol.Overloaded)
             with Unix.Unix_error _ -> ());
            try Unix.close fd with Unix.Unix_error _ -> ()
          end
          else begin
            let w = t.workers.(idx) in
            Atomic.incr w.live;
            with_lock w.wmu (fun () -> Queue.add fd w.incoming);
            try ignore (Unix.write_substring w.notify_w "x" 0 1)
            with Unix.Unix_error _ -> ()
          end)
  done;
  try Unix.close t.listen_fd with Unix.Unix_error _ -> ()

let run t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let pool = Support.Pool.create ~domains:(Array.length t.workers + 1) in
  let loops =
    accept_loop t
    :: Array.to_list (Array.map (fun w -> worker_loop t w) t.workers)
  in
  Fun.protect
    ~finally:(fun () ->
      Support.Pool.shutdown pool;
      Array.iter
        (fun w ->
          (try Unix.close w.notify_r with Unix.Unix_error _ -> ());
          try Unix.close w.notify_w with Unix.Unix_error _ -> ())
        t.workers)
    (fun () -> ignore (Support.Pool.run_list pool loops))
