(** Closed- and open-loop load generator for the mccd daemon.

    Closed loop ([qps = 0.]): every client fires back-to-back, so the
    achieved rate is the server's max sustained throughput. Open loop
    ([qps > 0.]): op [i] is scheduled at [t0 + i/qps] and latency is
    measured from the scheduled instant, so server-side queueing delay
    shows up in the percentiles instead of stretching the run.

    With [verify] set, every artifact response is run through its named
    codec's total decoder and every chunk through [Wire.decompress];
    failures count as [corrupt] (the bench gate requires zero). *)

type config = {
  port : int;
  clients : int;
  requests : int;            (** total ops across all clients *)
  qps : float;               (** 0. = closed loop *)
  seed : int64;
  stream_pct : int;          (** % of ops that open a chunked session *)
  chunks_per_session : int;
  domains : int;             (** client threads are spread over domains *)
  profiles : string list;    (** profile names [Fetch] draws from *)
  verify : bool;
}

val default_config : config
(** 16 clients, 2000 requests, closed loop, 25% streaming, verify on. *)

type bucket = {
  count : int;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

type report = {
  sent : int;
  ok : int;
  errors : int;
  shed : int;            (** [Overloaded] responses *)
  corrupt : int;         (** responses that failed verification *)
  bytes : int;
  wall_s : float;
  achieved_qps : float;
  lat_all : bucket;
  lat_fetch : bucket;
  lat_open : bucket;
  lat_chunk : bucket;
  error_samples : string list;
}

val run : config -> report
(** Drive a daemon already listening on [config.port]. The workload is
    seeded and reproducible: Zipf-weighted program popularity over the
    server's catalog, per-fetch profile draw, [stream_pct]% streaming
    sessions paging [chunks_per_session] chunks each.
    @raise Failure when the catalog cannot be fetched or is empty. *)

val print_human : out_channel -> report -> unit
val print_json : out_channel -> config -> report -> unit
