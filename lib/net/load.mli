(** Closed- and open-loop load generator for the mccd daemon.

    Closed loop ([qps = 0.]): every client fires back-to-back, so the
    achieved rate is the server's max sustained throughput. Open loop
    ([qps > 0.]): op [i] is scheduled at [t0 + i/qps] and latency is
    measured from the scheduled instant, so server-side queueing delay
    shows up in the percentiles instead of stretching the run.

    With [verify] set, every artifact response is run through its named
    codec's total decoder and every chunk through [Wire.decompress];
    failures count as [corrupt] (the bench gate requires zero). *)

type config = {
  port : int;
  clients : int;
  requests : int;            (** total ops across all clients *)
  qps : float;               (** 0. = closed loop *)
  seed : int64;
  stream_pct : int;          (** % of ops that open a chunked session *)
  chunks_per_session : int;
  domains : int;             (** client threads are spread over domains *)
  profiles : string list;    (** profile names [Fetch] draws from *)
  verify : bool;
}

val default_config : config
(** 16 clients, 2000 requests, closed loop, 25% streaming, verify on. *)

type bucket = Support.Quantile.bucket = {
  count : int;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}
(** Re-export of {!Support.Quantile.bucket}, where the quantile math
    now lives (the simulator and benches use it without depending on
    the TCP layer). *)

val empty_bucket : bucket
val percentile : float array -> float -> float
val bucket_of_ms : float list -> bucket

type report = {
  sent : int;
  ok : int;
  errors : int;
  shed : int;            (** [Overloaded] responses *)
  corrupt : int;         (** responses that failed verification *)
  bytes : int;
  wall_s : float;
  achieved_qps : float;
  lat_all : bucket;
  lat_fetch : bucket;
  lat_open : bucket;
  lat_chunk : bucket;
  error_samples : string list;
}

type op_kind = Fetch_op | Open_op | Chunk_op

type observation = {
  obs_client : int;           (** client index, 0.. *)
  obs_kind : op_kind;
  obs_digest : string;
  obs_profile : string;       (** [""] for open/chunk ops *)
}
(** One op as the generator decided it, before the wire — enough for a
    trace recorder to reconstruct the request stream. *)

val run : ?observe:(observation -> unit) -> config -> report
(** Drive a daemon already listening on [config.port]. The workload is
    seeded and reproducible: Zipf-weighted program popularity over the
    server's catalog, per-fetch profile draw, [stream_pct]% streaming
    sessions paging [chunks_per_session] chunks each. [observe] sees
    every op as it is issued; calls are serialized under an internal
    mutex (clients run on many threads).
    @raise Failure when the catalog cannot be fetched or is empty. *)

val print_human : out_channel -> report -> unit
val print_json : out_channel -> config -> report -> unit
