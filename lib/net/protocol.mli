(** The mccd wire protocol: 4-byte big-endian length prefix, then a
    {!Support.Frame}-sealed body ([magic ^ crc32 ^ payload]). Requests
    and responses are decoded exclusively through the shared total
    decoder machinery — hostile bytes surface as typed
    {!Support.Decode_error} values, never exceptions. *)

val magic : string

val max_frame : int
(** Response frame cap (64 MiB) — responses carry whole artifacts. *)

val max_request_frame : int
(** Request frame cap (1 MiB) — checked before allocation; a client
    that claims a bigger request is refused and disconnected. *)

val max_held : int
(** Cap (64) on the held-digest set a request may advertise — checked
    before allocation, and {!encode_req} refuses to build a frame over
    it. *)

type req =
  | Ping
  | List  (** the published catalog *)
  | Dict  (** the server's shared dictionary, so the client can hold it *)
  | Fetch of { profile : string; digest : string; held : string list }
      (** [held] advertises digests the client already holds (the
          shared dictionary and/or previously fetched programs),
          unlocking contexted representations; at most {!max_held} *)
  | Open of {
      codec : string;
      digest : string;
      resume : string;
      held : string list;
    }
      (** [codec = ""] means chunked-wire; non-empty [resume]
          re-attaches to an existing session after a reconnect, keeping
          the held set the session was opened with ([held] on a resume
          is ignored) *)
  | Chunk of { token : string; seq : int; name : string }

type catalog_row = { prog_name : string; prog_digest : string; fn_count : int }

type err_code =
  | Bad_request
  | Unknown_name
  | Not_streamable
  | Bad_session
  | Bad_seq
  | Busy
  | Server_error

val err_code_name : err_code -> string

type resp =
  | Pong
  | Catalog of catalog_row list
  | Dict_data of { lz : string; pats : string; sd_digest : string }
      (** the shared dictionary's transportable byte forms plus the
          digest a holder should advertise in [Fetch.held] *)
  | Artifact of {
      label : string;
      codec : string;
      cache_hit : bool;
      degraded_from : string;  (** [""] when the first choice served *)
      context : string;
          (** digest of the held context the body was encoded against;
              [""] for context-free representations *)
      body : string;
    }
  | Index of {
      token : string;
      next_seq : int;
      context : string;
          (** the session's negotiated dictionary digest ([""] when
              none); identical after a resume *)
      rows : (string * int) list;
    }
  | Chunk_data of string
  | Err of err_code * string
  | Overloaded  (** typed shed under overload *)

val encode_req : req -> string
(** The full on-wire frame, length prefix included. *)

val encode_resp : resp -> string

val decode_req : string -> (req, Support.Decode_error.t) result
(** Decode a frame body (everything after the length prefix). Total:
    magic, CRC, field bounds and trailing bytes all checked. *)

val decode_resp : string -> (resp, Support.Decode_error.t) result

(** {2 Blocking IO helpers} *)

val write_frame : Unix.file_descr -> string -> unit
(** Write a complete encoded frame, looping over short writes. *)

val read_frame :
  ?max:int ->
  Unix.file_descr ->
  (string option, Support.Decode_error.t) result
(** Read one length-prefixed frame body. [Ok None] is a clean EOF
    between frames; EOF mid-frame is a [Truncated] error and a length
    above [max] a [Limit] error (refused before allocation). *)
