(** The mccd network daemon: a TCP accept loop plus N worker event
    loops over one {!Support.Pool} of OCaml 5 domains, serving the
    {!Protocol} over loopback TCP against a shared {!Server.t}.

    Backpressure and shedding: each worker owns at most [queue_depth]
    live connections; when every worker is full, new connections are
    answered with the typed [Overloaded] frame and closed. Sessions
    live in a daemon-level table keyed by resume token, so a client
    can reconnect after a dropped connection — possibly onto a
    different worker domain — and resume its chunked stream
    byte-for-byte. *)

type config = {
  port : int;           (** 0 = ephemeral; read back with {!port} *)
  domains : int;        (** worker event loops *)
  queue_depth : int;    (** max live connections per worker *)
  max_sessions : int;   (** bound on the resumable-session table *)
  profiles : Server.Profile.t list;  (** what [Fetch] requests may name *)
}

val default_config : config
(** Port 0, 4 workers, 64 connections per worker, 1024 sessions, the
    four stock profiles. *)

type t

val create : Server.t -> catalog:Protocol.catalog_row list -> config -> t
(** Bind and listen on loopback. The engine should be created with
    [~shards] matching the worker count — every worker domain hits it
    concurrently. *)

val port : t -> int
(** The bound port (meaningful when the config asked for port 0). *)

val run : t -> unit
(** Serve until {!request_stop}. Blocks the calling domain (it becomes
    the accept lane of the pool); returns after the accept loop closed
    the listening socket and every worker drained and exited. Ignores
    SIGPIPE for the whole process. *)

val request_stop : t -> unit
(** Flip the stop flag; safe to call from a signal handler or another
    domain. The loops notice within their 250 ms select timeout. *)

type stats = {
  c_accepted : int;
  c_served : int;      (** response frames written *)
  c_shed : int;        (** connections refused with [Overloaded] *)
  c_bad_frames : int;  (** oversized or undecodable request frames *)
  c_closed : int;
  c_sessions : int;    (** live entries in the session table *)
}

val stats : t -> stats
