(* Minimal blocking client for the mccd protocol: one connection, one
   request in flight. The load generator runs many of these. *)

type t = { fd : Unix.file_descr }

let connect ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
   with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  { fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let closed_error msg =
  {
    Support.Decode_error.decoder = "net-client";
    kind = Support.Decode_error.Truncated;
    pos = 0;
    msg;
  }

let rpc t (req : Protocol.req) : (Protocol.resp, Support.Decode_error.t) result
    =
  match Protocol.write_frame t.fd (Protocol.encode_req req) with
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
    Error (closed_error "connection closed on write")
  | () -> (
    match Protocol.read_frame t.fd with
    | Error e -> Error e
    | Ok None -> Error (closed_error "connection closed before response")
    | Ok (Some body) -> Protocol.decode_resp body)
