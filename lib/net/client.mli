(** Minimal blocking mccd client: one loopback TCP connection, one
    request in flight. Responses are decoded through the shared total
    decoder — a lying server yields a typed error, not an exception. *)

type t

val connect : port:int -> t
(** Connect to a daemon on loopback. @raise Unix.Unix_error on refusal. *)

val close : t -> unit

val rpc : t -> Protocol.req -> (Protocol.resp, Support.Decode_error.t) result
(** Send one request and block for its response. A connection closed
    by the server (including an [Overloaded] shed followed by close)
    surfaces the shed frame first, then [Truncated] errors. *)
