(* Each function becomes its own single-function Wire program sharing no
   state with its neighbours; globals live in the header chunk. Chunks
   are deflated independently so any one can be expanded alone. *)

type t = {
  globals : Ir.Tree.global list;
  chunks : (string * string) list;  (* function name -> compressed chunk *)
}

let compress (p : Ir.Tree.program) : t =
  let chunks =
    List.map
      (fun (f : Ir.Tree.func) ->
        let solo = { Ir.Tree.globals = []; funcs = [ f ] } in
        (f.Ir.Tree.fname, Wire_format.compress solo))
      p.Ir.Tree.funcs
  in
  { globals = p.Ir.Tree.globals; chunks }

let function_names t = List.map fst t.chunks

let chunk t name =
  match List.assoc_opt name t.chunks with
  | Some c -> c
  | None -> raise Not_found

let chunk_size t name = String.length (chunk t name)

let decompress_function t name =
  match List.assoc_opt name t.chunks with
  | None -> raise Not_found
  | Some chunk -> (
    match (Wire_format.decompress_exn chunk).Ir.Tree.funcs with
    | [ f ] ->
      f
    | _ ->
      Support.Decode_error.fail ~decoder:"chunked"
        ~kind:Support.Decode_error.Inconsistent
        "chunk does not hold exactly one function")

let decompress_all t =
  {
    Ir.Tree.globals = t.globals;
    funcs = List.map (fun (n, _) -> decompress_function t n) t.chunks;
  }

(* ---- serialization ---- *)

let magic = "WCH2"

let to_bytes t =
  let buf = Buffer.create 4096 in
  Support.Util.uleb128 buf (List.length t.globals);
  List.iter
    (fun (g : Ir.Tree.global) ->
      Support.Util.uleb128 buf (String.length g.Ir.Tree.gname);
      Buffer.add_string buf g.Ir.Tree.gname;
      Support.Util.uleb128 buf g.Ir.Tree.gsize;
      match g.Ir.Tree.ginit with
      | None -> Support.Util.uleb128 buf 0
      | Some bytes ->
        Support.Util.uleb128 buf (List.length bytes + 1);
        List.iter (fun b -> Buffer.add_char buf (Char.chr (b land 0xff))) bytes)
    t.globals;
  Support.Util.uleb128 buf (List.length t.chunks);
  List.iter
    (fun (name, chunk) ->
      Support.Util.uleb128 buf (String.length name);
      Buffer.add_string buf name;
      Support.Util.uleb128 buf (String.length chunk);
      Buffer.add_string buf chunk)
    t.chunks;
  (* magic, then a CRC-32 of the body so any corruption or truncation is
     rejected in [of_bytes] before parsing *)
  let body = Buffer.contents buf in
  let crc = Support.Util.crc32 body in
  let hdr = Buffer.create 8 in
  Buffer.add_string hdr magic;
  Buffer.add_char hdr (Char.chr ((crc lsr 24) land 0xff));
  Buffer.add_char hdr (Char.chr ((crc lsr 16) land 0xff));
  Buffer.add_char hdr (Char.chr ((crc lsr 8) land 0xff));
  Buffer.add_char hdr (Char.chr (crc land 0xff));
  Buffer.contents hdr ^ body

let of_bytes_exn s =
  let pos = ref 0 in
  let fail kind msg =
    Support.Decode_error.fail ~decoder:"chunked" ~kind ~pos:!pos msg
  in
  let remaining () = String.length s - !pos in
  let check_count n what =
    if n < 0 || n > remaining () then
      fail Support.Decode_error.Limit
        (Printf.sprintf "%s count %d exceeds remaining %d bytes" what n
           (remaining ()))
  in
  if String.length s < 8 || String.sub s 0 4 <> magic then
    fail Support.Decode_error.Bad_magic "bad magic";
  let stored =
    (Char.code s.[4] lsl 24)
    lor (Char.code s.[5] lsl 16)
    lor (Char.code s.[6] lsl 8)
    lor Char.code s.[7]
  in
  if Support.Util.crc32 ~pos:8 s <> stored then
    fail Support.Decode_error.Checksum "checksum mismatch (corrupt image)";
  pos := 8;
  let u () = Support.Util.read_uleb128 s pos in
  let str () =
    let n = u () in
    if n < 0 || !pos + n > String.length s then
      fail Support.Decode_error.Truncated "truncated string";
    let r = String.sub s !pos n in
    pos := !pos + n;
    r
  in
  let byte () =
    if !pos >= String.length s then
      fail Support.Decode_error.Truncated "truncated global initializer";
    let b = Char.code s.[!pos] in
    incr pos;
    b
  in
  let nglob = u () in
  check_count nglob "global";
  let globals =
    List.init nglob (fun _ ->
        let gname = str () in
        let gsize = u () in
        let initlen = u () in
        if initlen > 0 then check_count (initlen - 1) "global initializer";
        let ginit =
          if initlen = 0 then None
          else Some (List.init (initlen - 1) (fun _ -> byte ()))
        in
        { Ir.Tree.gname; gsize; ginit })
  in
  let nchunks = u () in
  check_count nchunks "chunk";
  let chunks =
    List.init nchunks (fun _ ->
        let name = str () in
        let chunk = str () in
        (name, chunk))
  in
  if !pos <> String.length s then
    fail Support.Decode_error.Inconsistent "trailing bytes after last chunk";
  { globals; chunks }

let of_bytes s =
  Support.Decode_error.guard ~decoder:"chunked" (fun () -> of_bytes_exn s)

let size t = String.length (to_bytes t)
