(* Each function becomes its own single-function Wire program sharing no
   state with its neighbours; globals live in the header chunk. Chunks
   are deflated independently so any one can be expanded alone. *)

type t = {
  globals : Ir.Tree.global list;
  chunks : (string * string) list;  (* function name -> compressed chunk *)
}

let compress ?pool (p : Ir.Tree.program) : t =
  (* chunks are independent whole pipelines — the natural fan-out unit;
     each solo compress stays sequential inside (a one-function program
     has too few streams to split further). Results join in function
     order, so parallel and sequential runs are byte-identical. *)
  let chunk_of (f : Ir.Tree.func) =
    let solo = { Ir.Tree.globals = []; funcs = [ f ] } in
    (f.Ir.Tree.fname, Wire_format.compress solo)
  in
  let chunks =
    match pool with
    | Some pool when List.length p.Ir.Tree.funcs > 1 ->
      Support.Pool.map pool chunk_of p.Ir.Tree.funcs
    | _ -> List.map chunk_of p.Ir.Tree.funcs
  in
  { globals = p.Ir.Tree.globals; chunks }

let function_names t = List.map fst t.chunks

let chunk t name =
  match List.assoc_opt name t.chunks with
  | Some c -> c
  | None -> raise Not_found

let chunk_size t name = String.length (chunk t name)

let decompress_function t name =
  match List.assoc_opt name t.chunks with
  | None -> raise Not_found
  | Some chunk -> (
    match (Wire_format.decompress_exn chunk).Ir.Tree.funcs with
    | [ f ] ->
      f
    | _ ->
      Support.Decode_error.fail ~decoder:"chunked"
        ~kind:Support.Decode_error.Inconsistent
        "chunk does not hold exactly one function")

let decompress_all t =
  {
    Ir.Tree.globals = t.globals;
    funcs = List.map (fun (n, _) -> decompress_function t n) t.chunks;
  }

(* ---- serialization ---- *)

let magic = "WCH2"

let to_bytes t =
  let buf = Buffer.create 4096 in
  Support.Util.uleb128 buf (List.length t.globals);
  List.iter
    (fun (g : Ir.Tree.global) ->
      Support.Frame.put_str buf g.Ir.Tree.gname;
      Support.Util.uleb128 buf g.Ir.Tree.gsize;
      match g.Ir.Tree.ginit with
      | None -> Support.Util.uleb128 buf 0
      | Some bytes ->
        Support.Util.uleb128 buf (List.length bytes + 1);
        List.iter (fun b -> Buffer.add_char buf (Char.chr (b land 0xff))) bytes)
    t.globals;
  Support.Util.uleb128 buf (List.length t.chunks);
  List.iter
    (fun (name, chunk) ->
      Support.Frame.put_str buf name;
      Support.Frame.put_str buf chunk)
    t.chunks;
  (* magic, then a CRC-32 of the body so any corruption or truncation is
     rejected in [of_bytes] before parsing *)
  Support.Frame.seal ~magic (Buffer.contents buf)

let of_bytes_exn s =
  let off = Support.Frame.verify ~decoder:"chunked" ~magic s in
  let r = Support.Frame.reader ~decoder:"chunked" ~pos:off s in
  let u () = Support.Frame.u r in
  let str () = Support.Frame.str ~what:"string" r in
  let check_count n what = Support.Frame.check_count r n what in
  let nglob = u () in
  check_count nglob "global";
  let globals =
    List.init nglob (fun _ ->
        let gname = str () in
        let gsize = u () in
        let initlen = u () in
        if initlen > 0 then check_count (initlen - 1) "global initializer";
        let ginit =
          if initlen = 0 then None
          else
            Some
              (List.init (initlen - 1) (fun _ ->
                   Char.code (Support.Frame.byte r ~what:"global initializer" ())))
        in
        { Ir.Tree.gname; gsize; ginit })
  in
  let nchunks = u () in
  check_count nchunks "chunk";
  let chunks =
    List.init nchunks (fun _ ->
        let name = str () in
        let chunk = str () in
        (name, chunk))
  in
  Support.Frame.expect_end r "last chunk";
  { globals; chunks }

let of_bytes s =
  Support.Decode_error.guard ~decoder:"chunked" (fun () -> of_bytes_exn s)

let size t = String.length (to_bytes t)
