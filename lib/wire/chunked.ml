(* Each function becomes its own single-function Wire program sharing no
   state with its neighbours; globals live in the header chunk. Chunks
   are deflated independently so any one can be expanded alone.

   Since WCH3 the container carries an explicit per-chunk index — the
   header lists (name, length) pairs and the chunk bodies follow as one
   contiguous data region — so locating chunk [i] is array arithmetic
   over precomputed offsets, not a scan over length-prefixed records.
   That is the random-access path the demand pager leans on: a fault
   touches exactly the faulting function's bytes. *)

type t = {
  globals : Ir.Tree.global list;
  names : string array;      (* chunk i's function name *)
  offsets : int array;       (* chunk i's start within [data] *)
  lengths : int array;       (* chunk i's byte length *)
  data : string;             (* all chunk bodies, concatenated in order *)
  by_name : (string, int) Hashtbl.t;
}

let make globals pairs =
  let n = List.length pairs in
  let names = Array.make n "" in
  let offsets = Array.make n 0 in
  let lengths = Array.make n 0 in
  let by_name = Hashtbl.create (2 * n) in
  let buf = Buffer.create 4096 in
  List.iteri
    (fun i (name, chunk) ->
      names.(i) <- name;
      offsets.(i) <- Buffer.length buf;
      lengths.(i) <- String.length chunk;
      if not (Hashtbl.mem by_name name) then Hashtbl.add by_name name i;
      Buffer.add_string buf chunk)
    pairs;
  { globals; names; offsets; lengths; data = Buffer.contents buf; by_name }

let compress ?pool (p : Ir.Tree.program) : t =
  (* chunks are independent whole pipelines — the natural fan-out unit;
     each solo compress stays sequential inside (a one-function program
     has too few streams to split further). Results join in function
     order, so parallel and sequential runs are byte-identical. *)
  let chunk_of (f : Ir.Tree.func) =
    let solo = { Ir.Tree.globals = []; funcs = [ f ] } in
    (f.Ir.Tree.fname, Wire_format.compress solo)
  in
  let chunks =
    match pool with
    | Some pool when List.length p.Ir.Tree.funcs > 1 ->
      Support.Pool.map pool chunk_of p.Ir.Tree.funcs
    | _ -> List.map chunk_of p.Ir.Tree.funcs
  in
  make p.Ir.Tree.globals chunks

(* ---- random access ---- *)

let globals t = t.globals

let chunk_count t = Array.length t.names
let name_at t i = t.names.(i)
let function_names t = Array.to_list t.names
let index_of t name = Hashtbl.find_opt t.by_name name
let chunk_size_at t i = t.lengths.(i)
let chunk_at t i = String.sub t.data t.offsets.(i) t.lengths.(i)

let chunk t name =
  match index_of t name with
  | Some i -> chunk_at t i
  | None -> raise Not_found

let chunk_size t name =
  match index_of t name with
  | Some i -> t.lengths.(i)
  | None -> raise Not_found

let decompress_at t i =
  match (Wire_format.decompress_exn (chunk_at t i)).Ir.Tree.funcs with
  | [ f ] -> f
  | _ ->
    Support.Decode_error.fail ~decoder:"chunked"
      ~kind:Support.Decode_error.Inconsistent
      "chunk does not hold exactly one function"

let decompress_function t name =
  match index_of t name with
  | Some i -> decompress_at t i
  | None -> raise Not_found

let decompress_all t =
  {
    Ir.Tree.globals = t.globals;
    funcs = List.init (chunk_count t) (decompress_at t);
  }

(* ---- serialization ---- *)

(* WCH3: WCH2 plus the explicit chunk index. The header ends with
   (name, length) rows; bodies follow back-to-back, so a reader knows
   every chunk's offset after parsing the fixed-size-per-entry index
   and never walks the data region to find a function. *)
let magic = "WCH3"

let to_bytes t =
  let buf = Buffer.create (String.length t.data + 4096) in
  Support.Util.uleb128 buf (List.length t.globals);
  List.iter
    (fun (g : Ir.Tree.global) ->
      Support.Frame.put_str buf g.Ir.Tree.gname;
      Support.Util.uleb128 buf g.Ir.Tree.gsize;
      match g.Ir.Tree.ginit with
      | None -> Support.Util.uleb128 buf 0
      | Some bytes ->
        Support.Util.uleb128 buf (List.length bytes + 1);
        List.iter (fun b -> Buffer.add_char buf (Char.chr (b land 0xff))) bytes)
    t.globals;
  Support.Util.uleb128 buf (chunk_count t);
  Array.iteri
    (fun i name ->
      Support.Frame.put_str buf name;
      Support.Util.uleb128 buf t.lengths.(i))
    t.names;
  Buffer.add_string buf t.data;
  (* magic, then a CRC-32 of the body so any corruption or truncation is
     rejected in [of_bytes] before parsing *)
  Support.Frame.seal ~magic (Buffer.contents buf)

let of_bytes_exn s =
  let off = Support.Frame.verify ~decoder:"chunked" ~magic s in
  let r = Support.Frame.reader ~decoder:"chunked" ~pos:off s in
  let u () = Support.Frame.u r in
  let str () = Support.Frame.str ~what:"string" r in
  let check_count n what = Support.Frame.check_count r n what in
  let nglob = u () in
  check_count nglob "global";
  let globals =
    List.init nglob (fun _ ->
        let gname = str () in
        let gsize = u () in
        let initlen = u () in
        if initlen > 0 then check_count (initlen - 1) "global initializer";
        let ginit =
          if initlen = 0 then None
          else
            Some
              (List.init (initlen - 1) (fun _ ->
                   Char.code (Support.Frame.byte r ~what:"global initializer" ())))
        in
        { Ir.Tree.gname; gsize; ginit })
  in
  let nchunks = u () in
  check_count nchunks "chunk";
  let names = Array.make nchunks "" in
  let lengths = Array.make nchunks 0 in
  let offsets = Array.make nchunks 0 in
  let total = ref 0 in
  for i = 0 to nchunks - 1 do
    names.(i) <- str ();
    let len = u () in
    (* each indexed length must still fit the input; the running total
       is rechecked so a sum overflowing across entries cannot pass *)
    check_count len "chunk body";
    offsets.(i) <- !total;
    lengths.(i) <- len;
    total := !total + len;
    check_count !total "chunk data"
  done;
  let data = Support.Frame.raw r ~what:"chunk data" !total in
  Support.Frame.expect_end r "chunk data";
  let by_name = Hashtbl.create (2 * nchunks) in
  Array.iteri
    (fun i name -> if not (Hashtbl.mem by_name name) then Hashtbl.add by_name name i)
    names;
  { globals; names; offsets; lengths; data; by_name }

let of_bytes s =
  Support.Decode_error.guard ~decoder:"chunked" (fun () -> of_bytes_exn s)

let size t = String.length (to_bytes t)
