(** The paper's wire format (§3), end to end:

    1. compile the program into trees (done upstream by [Cc]);
    2. patternize: replace every literal with a wildcard, producing one
       stream of statement patterns and one stream of literal values per
       operator class;
    3. move-to-front code each stream in isolation (index 0 = first
       occurrence; the novel symbols travel in first-occurrence tables,
       so no MTF table is transmitted);
    4. Huffman-code the MTF indices;
    5. concatenate everything and deflate ("gzip") the bundle.

    [decompress] inverts the pipeline exactly: the reconstructed program
    is structurally equal to the input, which the test suite checks on
    the whole corpus. *)

type final_stage =
  | Deflate          (** the paper's gzip stage (default) *)
  | Arith of int     (** order-N adaptive range coder, N in 0..3 — the
                         §2 design-space alternative: better ratios on
                         some inputs, but strictly sequential decode *)
  | Lz_arith         (** bit-optimal LZ77 parse + range-coded tokens
                         ({!Zip.Lza}): the ratio-maximal corner of the
                         design space, slowest to encode *)
  | Shared_deflate of string
      (** deflate whose LZ77 window is primed with a pre-agreed shared
          dictionary (the carried bytes). Only a 4-byte CRC of the
          dictionary travels on the wire (tag ['S']); decode must be
          given the same bytes or it fails with a typed error. *)

val compress :
  ?pool:Support.Pool.t ->
  ?use_mtf:bool ->
  ?split_streams:bool ->
  ?final_stage:final_stage ->
  Ir.Tree.program ->
  string
(** [use_mtf:false] (ablation) Huffman-codes first-occurrence indices
    without move-to-front. [split_streams:false] (ablation) pools all
    literal classes into one stream. Defaults are the paper's pipeline.
    The chosen [final_stage] is recorded in the output, so
    {!decompress} needs no flags. With [pool], the independent streams
    are entropy-coded in parallel; output is byte-identical either
    way. *)

val decompress :
  ?dict:string -> string -> (Ir.Tree.program, Support.Decode_error.t) result
(** Total inverse of {!compress}. Corrupt input or flag mismatch (the
    bundle records which ablation switches produced it) yields a typed
    [Error]; the CRC frame is checked before the bundle is parsed, and
    every count field is validated against the remaining input before
    allocation. [dict] is required (same bytes) iff the stream was
    produced with [Shared_deflate]; an absent or wrong dictionary is a
    typed [Error]. *)

val decompress_exn : ?dict:string -> string -> Ir.Tree.program
(** As {!decompress} but raises {!Support.Decode_error.Fail}; for
    trusted inputs (e.g. bytes this process just compressed). *)

(** {2 Staged pipeline}

    The same transform split at its stage boundaries, so the codec
    layer can time and size each stage independently. Composing them —
    [seal (apply_final_stage st (bundle_of_patternized (patternize p)))]
    — produces exactly the bytes of {!compress}. *)

type patternized
(** Stage-1 output: statement shapes plus per-class literal streams
    (§3 step 2), before any entropy coding. *)

val patternize :
  ?use_mtf:bool -> ?split_streams:bool -> Ir.Tree.program -> patternized

val symbols : patternized -> int
(** Symbols (patterns + literals) the stage emitted; the stage's output
    size for the trace, since nothing is byte-serialized yet. *)

val bundle_of_patternized : ?pool:Support.Pool.t -> patternized -> string
(** Stage 2: MTF + Huffman each stream and serialize the bundle
    (magic, flags, globals, headers, streams). The streams are
    independent: with [pool] they are coded concurrently and joined in
    wire order, so the bytes never depend on scheduling. *)

val apply_final_stage : final_stage -> string -> string
(** Stage 3: entropy-code the bundle, prefixed with the stage tag
    ([D], [A<order>], [L] or [S]) so decode needs no flags beyond the
    out-of-band dictionary the [S] tag's CRC pins. *)

val unwrap_final_stage_exn : ?dict:string -> string -> string
(** Inverse of {!apply_final_stage} on the body behind the CRC seal.
    [dict] is consulted only by the ['S'] stage, which fails with a
    typed error when it is absent or its CRC does not match. *)

val program_of_bundle_exn : string -> Ir.Tree.program
(** Inverse of {!bundle_of_patternized}∘{!patternize}. *)

type stats = {
  wire_bytes : int;           (** final compressed size *)
  bundle_bytes : int;         (** before the final deflate stage *)
  pattern_count : int;        (** statements in the program *)
  distinct_patterns : int;
  pattern_stream_bytes : int; (** Huffman-coded pattern indices *)
  novel_table_bytes : int;    (** first-occurrence pattern encodings *)
  literal_stream_bytes : (string * int) list;
      (** per literal class: Huffman-coded MTF indices + novel values *)
}

val stats : Ir.Tree.program -> stats
(** Compresses and reports where the bytes went. *)
