let magic = "WIR1"

type final_stage =
  | Deflate
  | Arith of int
  | Lz_arith
  | Shared_deflate of string
      (* deflate primed with a pre-agreed dictionary; the bytes are the
         context, only a crc of them travels on the wire *)

let wfail r kind msg = Support.Frame.fail r kind msg

let ty_code = function
  | Ir.Op.I -> 0
  | Ir.Op.C -> 1
  | Ir.Op.S -> 2
  | Ir.Op.P -> 3
  | Ir.Op.V -> 4

let ty_of_code r = function
  | 0 -> Ir.Op.I
  | 1 -> Ir.Op.C
  | 2 -> Ir.Op.S
  | 3 -> Ir.Op.P
  | 4 -> Ir.Op.V
  | c -> wfail r Support.Decode_error.Bad_value (Printf.sprintf "bad type code %d" c)

(* Literal-class key used when streams are split; a single shared key
   otherwise. *)
let class_key ~split cls =
  if split then Ir.Op.lit_class_name cls else "ALL"

(* ---- stage 1: patternize ----

   Split every statement into a shape (spat) and its literal operands,
   the operands fanning out into per-class streams (§3 step 2). The
   result carries everything the bundle writer needs, so the two stages
   can be timed and sized independently by the codec layer. *)

type patternized = {
  prog : Ir.Tree.program;
  use_mtf : bool;
  split : bool;
  pattern_seq : Ir.Pattern.spat list;           (* statement order *)
  lit_streams : (string * Ir.Pattern.lit list) list;  (* first-use order *)
  symbols : int;  (* patterns + literals: the stage's output "bytes" *)
}

type streams = {
  mutable pattern_seq : Ir.Pattern.spat list;  (* reversed *)
  lit_seqs : (string, Ir.Pattern.lit list ref) Hashtbl.t;  (* reversed *)
  mutable lit_keys : string list;  (* in first-use order, reversed *)
}

let push_lit st key v =
  (match Hashtbl.find_opt st.lit_seqs key with
  | Some r -> r := v :: !r
  | None ->
    Hashtbl.add st.lit_seqs key (ref [ v ]);
    st.lit_keys <- key :: st.lit_keys)

let patternize ?(use_mtf = true) ?(split_streams = true)
    (p : Ir.Tree.program) : patternized =
  let st =
    { pattern_seq = []; lit_seqs = Hashtbl.create 16; lit_keys = [] }
  in
  List.iter
    (fun f ->
      List.iter
        (fun s ->
          let sp, lits = Ir.Pattern.of_stmt s in
          st.pattern_seq <- sp :: st.pattern_seq;
          List.iter
            (fun (cls, v) -> push_lit st (class_key ~split:split_streams cls) v)
            lits)
        f.Ir.Tree.body)
    p.Ir.Tree.funcs;
  let pattern_seq = List.rev st.pattern_seq in
  let lit_streams =
    List.rev_map
      (fun key -> (key, List.rev !(Hashtbl.find st.lit_seqs key)))
      st.lit_keys
  in
  let symbols =
    List.fold_left
      (fun a (_, l) -> a + List.length l)
      (List.length pattern_seq) lit_streams
  in
  { prog = p; use_mtf; split = split_streams; pattern_seq; lit_streams;
    symbols }

let symbols pz = pz.symbols

(* ---- stage 2: MTF + Huffman into the bundle ---- *)

(* Stream indices from the dense first-occurrence ids ([Mtf.intern_hashed]):
   MTF-coded normally, or — the ablation — the plain first-occurrence
   position (id + 1; 0 still introduces the next novel symbol). Ids are
   numbered by first occurrence, so "seen before" is exactly
   [id < distinct-so-far]. *)
let indices_of_ids ~use_mtf ids =
  if use_mtf then Zip.Mtf.encode_ids ids
  else begin
    let n = Array.length ids in
    let out = Array.make n 0 in
    let seen = ref 0 in
    for i = 0 to n - 1 do
      let id = ids.(i) in
      if id < !seen then out.(i) <- id + 1 else incr seen
    done;
    out
  end

let inverse_mtf_or_first ~use_mtf (e : 'a Zip.Mtf.encoded) =
  if use_mtf then Zip.Mtf.decode_exn e
  else begin
    let fail ~pos msg =
      Support.Decode_error.fail ~decoder:"wire"
        ~kind:Support.Decode_error.Bad_value ~pos msg
    in
    let table = ref [||] in
    let pending = ref e.Zip.Mtf.novel in
    List.mapi
      (fun pos i ->
        if i = 0 then begin
          match !pending with
          | [] -> fail ~pos "novel list exhausted"
          | x :: rest ->
            pending := rest;
            table := Array.append !table [| x |];
            x
        end
        else if i < 0 || i > Array.length !table then
          fail ~pos (Printf.sprintf "index %d exceeds table of %d" i
                       (Array.length !table))
        else !table.(i - 1))
      e.Zip.Mtf.indices
  end

let encode_indices buf indices =
  let alphabet = Array.fold_left max 0 indices + 1 in
  let bytes = Zip.Huffman.encode_all_arr indices ~alphabet in
  Support.Frame.put_bytes buf bytes

let decode_indices r =
  let raw = Support.Frame.str ~what:"bundle" r in
  Zip.Huffman.decode_all_exn (Bytes.of_string raw)

(* Each stream (the pattern stream, each literal stream) is encoded
   into its own byte segment by a pure function of [pz] alone, so the
   segments can be produced on a domain pool; concatenating them in the
   fixed wire order keeps the output byte-identical to a sequential
   run. *)
let pattern_segment (pz : patternized) : string =
  let use_mtf = pz.use_mtf in
  let buf = Buffer.create 1024 in
  let ids, novel =
    Zip.Mtf.intern_hashed ~hash:Ir.Pattern.hash ~eq:Ir.Pattern.equal
      pz.pattern_seq
  in
  encode_indices buf (indices_of_ids ~use_mtf ids);
  Support.Util.uleb128 buf (List.length novel);
  List.iter
    (fun sp -> Support.Frame.put_str buf (Ir.Pattern.encode sp))
    novel;
  Buffer.contents buf

let lit_segment ~use_mtf (key, seq) : string =
  let buf = Buffer.create 256 in
  Support.Frame.put_str buf key;
  let ids, novel = Zip.Mtf.intern_hashed ~hash:Hashtbl.hash ~eq:( = ) seq in
  encode_indices buf (indices_of_ids ~use_mtf ids);
  Support.Util.uleb128 buf (List.length novel);
  List.iter
    (fun lit ->
      match lit with
      | Ir.Pattern.Lint v ->
        Buffer.add_char buf '\000';
        Support.Util.sleb_of_int buf v
      | Ir.Pattern.Lsym s ->
        Buffer.add_char buf '\001';
        Support.Frame.put_str buf s)
    novel;
  Buffer.contents buf

let bundle_of_patternized ?pool (pz : patternized) : string =
  let p = pz.prog in
  let use_mtf = pz.use_mtf in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_char buf (if use_mtf then '\001' else '\000');
  Buffer.add_char buf (if pz.split then '\001' else '\000');
  (* globals *)
  Support.Util.uleb128 buf (List.length p.Ir.Tree.globals);
  List.iter
    (fun g ->
      Support.Frame.put_str buf g.Ir.Tree.gname;
      Support.Util.uleb128 buf g.Ir.Tree.gsize;
      match g.Ir.Tree.ginit with
      | None -> Support.Util.uleb128 buf 0
      | Some bytes ->
        Support.Util.uleb128 buf (List.length bytes + 1);
        List.iter (fun b -> Buffer.add_char buf (Char.chr (b land 0xff))) bytes)
    p.Ir.Tree.globals;
  (* function headers *)
  Support.Util.uleb128 buf (List.length p.Ir.Tree.funcs);
  List.iter
    (fun f ->
      Support.Frame.put_str buf f.Ir.Tree.fname;
      Support.Util.uleb128 buf (List.length f.Ir.Tree.formals);
      List.iter
        (fun (n, ty) ->
          Support.Frame.put_str buf n;
          Buffer.add_char buf (Char.chr (ty_code ty)))
        f.Ir.Tree.formals;
      Support.Util.uleb128 buf f.Ir.Tree.frame_size;
      Support.Util.uleb128 buf (List.length f.Ir.Tree.body))
    p.Ir.Tree.funcs;
  (* pattern stream, then literal streams in first-use order; the
     segments are independent, so fan them out when a pool is given
     and join in input order (byte-identical either way) *)
  let jobs =
    (fun () -> pattern_segment pz)
    :: List.map (fun s () -> lit_segment ~use_mtf s) pz.lit_streams
  in
  let segments =
    match pool with
    | Some pool when List.length jobs > 1 -> Support.Pool.run_list pool jobs
    | _ -> List.map (fun f -> f ()) jobs
  in
  (match segments with
  | pat :: lits ->
    Buffer.add_string buf pat;
    Support.Util.uleb128 buf (List.length pz.lit_streams);
    List.iter (Buffer.add_string buf) lits
  | [] -> assert false);
  Buffer.contents buf

(* ---- stage 3: the final entropy stage, tagged ---- *)

let dict_crc_be dict =
  let c = Support.Util.crc32 dict in
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((c lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((c lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((c lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (c land 0xff));
  Bytes.to_string b

let apply_final_stage stage bundle =
  match stage with
  | Deflate -> "D" ^ Zip.Deflate.compress bundle
  | Arith order ->
    if order < 0 || order > 3 then invalid_arg "Wire.compress: bad order";
    Printf.sprintf "A%d" order
    ^ Zip.Range_coder.compress_order_n ~order bundle
  | Lz_arith -> "L" ^ Zip.Lza.compress bundle
  | Shared_deflate dict ->
    (* seal the dictionary pairing in-band: 4 crc bytes after the tag,
       so decoding against the wrong/absent dictionary is a typed
       error, never silent garbage *)
    "S" ^ dict_crc_be dict ^ Zip.Deflate.compress ~dict bundle

(* body (everything behind the CRC seal) -> bundle. [dict] is the
   pre-agreed priming dictionary for the ['S'] stage; the other stages
   ignore it. *)
let unwrap_final_stage_exn ?dict body =
  let fail0 kind msg =
    Support.Decode_error.fail ~decoder:"wire" ~kind ~pos:0 msg
  in
  if String.length body < 1 then
    fail0 Support.Decode_error.Truncated "missing final-stage tag";
  match body.[0] with
  | 'D' -> Zip.Deflate.decompress_exn (String.sub body 1 (String.length body - 1))
  | 'A' ->
    if String.length body < 2 then
      fail0 Support.Decode_error.Truncated "truncated header";
    let order = Char.code body.[1] - Char.code '0' in
    if order < 0 || order > 3 then
      fail0 Support.Decode_error.Bad_value "bad arith order";
    Zip.Range_coder.decompress_order_n_exn ~order
      (String.sub body 2 (String.length body - 2))
  | 'L' -> Zip.Lza.decompress_exn (String.sub body 1 (String.length body - 1))
  | 'S' -> (
    if String.length body < 5 then
      fail0 Support.Decode_error.Truncated "truncated shared-stage header";
    (* [None] means no dictionary was supplied; [Some ""] is a real
       (empty) dictionary and must still pass the CRC pairing check *)
    match dict with
    | None ->
      fail0 Support.Decode_error.Bad_value
        "shared final stage requires a dictionary context"
    | Some dict ->
      if String.sub body 1 4 <> dict_crc_be dict then
        fail0 Support.Decode_error.Inconsistent
          "shared-stage dictionary crc mismatch";
      Zip.Deflate.decompress_exn ~dict
        (String.sub body 5 (String.length body - 5)))
  | _ -> fail0 Support.Decode_error.Bad_value "unknown final stage"

(* ---- the whole pipeline ---- *)

let compress ?pool ?use_mtf ?split_streams ?(final_stage = Deflate)
    (p : Ir.Tree.program) =
  let pz = patternize ?use_mtf ?split_streams p in
  let bundle = bundle_of_patternized ?pool pz in
  (* integrity frame: 4-byte big-endian CRC-32 of the body, so a
     damaged or truncated image is rejected before any parsing *)
  Support.Frame.seal (apply_final_stage final_stage bundle)

(* ---- decompression ---- *)

let program_of_bundle_exn bundle : Ir.Tree.program =
  let r = Support.Frame.reader ~decoder:"wire" bundle in
  Support.Frame.expect_magic r magic;
  let use_mtf = Support.Frame.raw r ~what:"bundle" 1 = "\001" in
  let split_streams = Support.Frame.raw r ~what:"bundle" 1 = "\001" in
  let get_uleb () = Support.Frame.u r in
  let get_str () = Support.Frame.str ~what:"bundle" r in
  let get_byte () = Support.Frame.byte r ~what:"bundle" () in
  let check_count n what = Support.Frame.check_count r n what in
  (* globals *)
  let nglob = get_uleb () in
  check_count nglob "global";
  let globals =
    List.init nglob (fun _ ->
        let gname = get_str () in
        let gsize = get_uleb () in
        let initlen = get_uleb () in
        if initlen > 0 then check_count (initlen - 1) "global initializer";
        let ginit =
          if initlen = 0 then None
          else
            Some (List.init (initlen - 1) (fun _ -> Char.code (get_byte ())))
        in
        { Ir.Tree.gname; gsize; ginit })
  in
  (* function headers *)
  let nfun = get_uleb () in
  check_count nfun "function";
  let headers =
    List.init nfun (fun _ ->
        let fname = get_str () in
        let nformals = get_uleb () in
        check_count nformals "formal";
        let formals =
          List.init nformals (fun _ ->
              let n = get_str () in
              let ty = ty_of_code r (Char.code (get_byte ())) in
              (n, ty))
        in
        let frame_size = get_uleb () in
        let nstmts = get_uleb () in
        (fname, formals, frame_size, nstmts))
  in
  (* pattern stream *)
  let pat_indices = decode_indices r in
  let n_novel = get_uleb () in
  check_count n_novel "novel pattern";
  let novel_pats =
    List.init n_novel (fun _ ->
        let s = get_str () in
        let pos = ref 0 in
        let sp = Ir.Pattern.decode s pos in
        if !pos <> String.length s then
          wfail r Support.Decode_error.Inconsistent "trailing pattern bytes";
        sp)
  in
  let pattern_seq =
    inverse_mtf_or_first ~use_mtf
      { Zip.Mtf.indices = pat_indices; novel = novel_pats }
  in
  (* literal streams *)
  let nstreams = get_uleb () in
  check_count nstreams "literal stream";
  let lit_streams : (string, Ir.Pattern.lit list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  for _ = 1 to nstreams do
    let key = get_str () in
    let indices = decode_indices r in
    let n_novel = get_uleb () in
    check_count n_novel "novel literal";
    let novel =
      List.init n_novel (fun _ ->
          match get_byte () with
          | '\000' -> Ir.Pattern.Lint (Support.Frame.sleb r)
          | '\001' -> Ir.Pattern.Lsym (get_str ())
          | _ -> wfail r Support.Decode_error.Bad_value "bad literal tag")
    in
    let seq = inverse_mtf_or_first ~use_mtf { Zip.Mtf.indices; novel } in
    Hashtbl.add lit_streams key (ref seq)
  done;
  let next_lit cls =
    let key = class_key ~split:split_streams cls in
    match Hashtbl.find_opt lit_streams key with
    | Some lr -> (
      match !lr with
      | [] ->
        wfail r Support.Decode_error.Inconsistent
          ("literal stream exhausted: " ^ key)
      | v :: rest ->
        lr := rest;
        v)
    | None ->
      wfail r Support.Decode_error.Inconsistent
        ("missing literal stream: " ^ key)
  in
  (* reassemble functions *)
  let remaining_patterns = ref pattern_seq in
  let take_pattern () =
    match !remaining_patterns with
    | [] -> wfail r Support.Decode_error.Inconsistent "pattern stream exhausted"
    | sp :: rest ->
      remaining_patterns := rest;
      sp
  in
  let funcs =
    List.map
      (fun (fname, formals, frame_size, nstmts) ->
        let body =
          List.init nstmts (fun _ ->
              let sp = take_pattern () in
              let slots = Ir.Pattern.lit_slots sp in
              let lits = List.map (fun cls -> (cls, next_lit cls)) slots in
              Ir.Pattern.to_stmt sp lits)
        in
        { Ir.Tree.fname; formals; frame_size; body })
      headers
  in
  if !remaining_patterns <> [] then
    wfail r Support.Decode_error.Inconsistent "leftover patterns";
  { Ir.Tree.globals; funcs }

let decompress_exn ?dict z =
  let off = Support.Frame.verify ~decoder:"wire" z in
  let body = String.sub z off (String.length z - off) in
  program_of_bundle_exn (unwrap_final_stage_exn ?dict body)

let decompress ?dict z =
  Support.Decode_error.guard ~decoder:"wire" (fun () -> decompress_exn ?dict z)

(* ---- stats ---- *)

type stats = {
  wire_bytes : int;
  bundle_bytes : int;
  pattern_count : int;
  distinct_patterns : int;
  pattern_stream_bytes : int;
  novel_table_bytes : int;
  literal_stream_bytes : (string * int) list;
}

let stats (p : Ir.Tree.program) =
  (* replicate the pipeline, measuring as we go *)
  let pz = patternize p in
  let enc = Zip.Mtf.encode ~eq:Ir.Pattern.equal pz.pattern_seq in
  let pat_stream =
    Zip.Huffman.encode_all enc.Zip.Mtf.indices
      ~alphabet:(List.fold_left max 0 enc.Zip.Mtf.indices + 1)
  in
  let novel_bytes =
    List.fold_left
      (fun a sp -> a + String.length (Ir.Pattern.encode sp) + 1)
      0 enc.Zip.Mtf.novel
  in
  let lit_bytes =
    List.map
      (fun (key, seq) ->
        let enc = Zip.Mtf.encode ~eq:( = ) seq in
        let stream =
          Zip.Huffman.encode_all enc.Zip.Mtf.indices
            ~alphabet:(List.fold_left max 0 enc.Zip.Mtf.indices + 1)
        in
        let novel =
          List.fold_left
            (fun a lit ->
              a
              + match lit with
                | Ir.Pattern.Lint v ->
                  let b = Buffer.create 8 in
                  Support.Util.sleb_of_int b v;
                  1 + Buffer.length b
                | Ir.Pattern.Lsym s -> 2 + String.length s)
            0 enc.Zip.Mtf.novel
        in
        (key, Bytes.length stream + novel))
      pz.lit_streams
  in
  let bundle = bundle_of_patternized pz in
  let z = Support.Frame.seal (apply_final_stage Deflate bundle) in
  {
    wire_bytes = String.length z;
    bundle_bytes = String.length bundle;
    pattern_count = List.length pz.pattern_seq;
    distinct_patterns = List.length enc.Zip.Mtf.novel;
    pattern_stream_bytes = Bytes.length pat_stream;
    novel_table_bytes = novel_bytes;
    literal_stream_bytes = lit_bytes;
  }
