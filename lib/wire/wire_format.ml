let magic = "WIR1"

type final_stage = Deflate | Arith of int


(* ---- bundle writer helpers ---- *)

let put_str buf s =
  Support.Util.uleb128 buf (String.length s);
  Buffer.add_string buf s

let put_bytes buf (b : Bytes.t) =
  Support.Util.uleb128 buf (Bytes.length b);
  Buffer.add_bytes buf b

type reader = { src : string; pos : int ref }

let wfail r kind msg =
  Support.Decode_error.fail ~decoder:"wire" ~kind ~pos:!(r.pos) msg

let get_uleb r = Support.Util.read_uleb128 r.src r.pos
let get_sleb r = Support.Util.read_sleb r.src r.pos
let remaining r = String.length r.src - !(r.pos)

(* Validate a count field before allocating anything proportional to it:
   every element costs at least one input byte in this format. *)
let check_count r n what =
  if n < 0 || n > remaining r then
    wfail r Support.Decode_error.Limit
      (Printf.sprintf "%s count %d exceeds remaining %d bytes" what n
         (remaining r))

let get_raw r n =
  if n < 0 || !(r.pos) + n > String.length r.src then
    wfail r Support.Decode_error.Truncated "truncated bundle";
  let s = String.sub r.src !(r.pos) n in
  r.pos := !(r.pos) + n;
  s

let get_str r =
  let n = get_uleb r in
  get_raw r n

let get_byte r =
  if !(r.pos) >= String.length r.src then
    wfail r Support.Decode_error.Truncated "truncated bundle";
  let c = r.src.[!(r.pos)] in
  incr r.pos;
  c

let ty_code = function
  | Ir.Op.I -> 0
  | Ir.Op.C -> 1
  | Ir.Op.S -> 2
  | Ir.Op.P -> 3
  | Ir.Op.V -> 4

let ty_of_code r = function
  | 0 -> Ir.Op.I
  | 1 -> Ir.Op.C
  | 2 -> Ir.Op.S
  | 3 -> Ir.Op.P
  | 4 -> Ir.Op.V
  | c -> wfail r Support.Decode_error.Bad_value (Printf.sprintf "bad type code %d" c)

(* Literal-class key used when streams are split; a single shared key
   otherwise. *)
let class_key ~split cls =
  if split then Ir.Op.lit_class_name cls else "ALL"

(* ---- compression ---- *)

type streams = {
  mutable pattern_seq : Ir.Pattern.spat list;  (* reversed *)
  lit_seqs : (string, Ir.Pattern.lit list ref) Hashtbl.t;  (* reversed *)
  mutable lit_keys : string list;  (* in first-use order, reversed *)
}

let push_lit st key v =
  (match Hashtbl.find_opt st.lit_seqs key with
  | Some r -> r := v :: !r
  | None ->
    Hashtbl.add st.lit_seqs key (ref [ v ]);
    st.lit_keys <- key :: st.lit_keys)

let mtf_or_first ~use_mtf ~eq xs =
  if use_mtf then Zip.Mtf.encode ~eq xs
  else begin
    (* ablation: index symbols by first-occurrence order, no move-to-front;
       index 0 still means "novel" *)
    let table = ref [] in
    let novel = ref [] in
    let indices =
      List.map
        (fun x ->
          let rec find i = function
            | [] -> None
            | y :: rest -> if eq x y then Some i else find (i + 1) rest
          in
          match find 1 (List.rev !table) with
          | Some i -> i
          | None ->
            table := x :: !table;
            novel := x :: !novel;
            0)
        xs
    in
    { Zip.Mtf.indices; novel = List.rev !novel }
  end

let inverse_mtf_or_first ~use_mtf (e : 'a Zip.Mtf.encoded) =
  if use_mtf then Zip.Mtf.decode_exn e
  else begin
    let fail ~pos msg =
      Support.Decode_error.fail ~decoder:"wire"
        ~kind:Support.Decode_error.Bad_value ~pos msg
    in
    let table = ref [||] in
    let pending = ref e.Zip.Mtf.novel in
    List.mapi
      (fun pos i ->
        if i = 0 then begin
          match !pending with
          | [] -> fail ~pos "novel list exhausted"
          | x :: rest ->
            pending := rest;
            table := Array.append !table [| x |];
            x
        end
        else if i < 0 || i > Array.length !table then
          fail ~pos (Printf.sprintf "index %d exceeds table of %d" i
                       (Array.length !table))
        else !table.(i - 1))
      e.Zip.Mtf.indices
  end

let encode_indices buf indices =
  let alphabet = List.fold_left max 0 indices + 1 in
  let bytes = Zip.Huffman.encode_all indices ~alphabet in
  put_bytes buf bytes

let decode_indices r =
  let n = get_uleb r in
  let raw = get_raw r n in
  Zip.Huffman.decode_all_exn (Bytes.of_string raw)

let compress ?(use_mtf = true) ?(split_streams = true)
    ?(final_stage = Deflate) (p : Ir.Tree.program) =
  let st =
    { pattern_seq = []; lit_seqs = Hashtbl.create 16; lit_keys = [] }
  in
  (* patternize every statement of every function, in order *)
  let func_pats =
    List.map
      (fun f ->
        List.map
          (fun s ->
            let sp, lits = Ir.Pattern.of_stmt s in
            st.pattern_seq <- sp :: st.pattern_seq;
            List.iter
              (fun (cls, v) -> push_lit st (class_key ~split:split_streams cls) v)
              lits;
            sp)
          f.Ir.Tree.body)
      p.Ir.Tree.funcs
  in
  ignore func_pats;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_char buf (if use_mtf then '\001' else '\000');
  Buffer.add_char buf (if split_streams then '\001' else '\000');
  (* globals *)
  Support.Util.uleb128 buf (List.length p.Ir.Tree.globals);
  List.iter
    (fun g ->
      put_str buf g.Ir.Tree.gname;
      Support.Util.uleb128 buf g.Ir.Tree.gsize;
      match g.Ir.Tree.ginit with
      | None -> Support.Util.uleb128 buf 0
      | Some bytes ->
        Support.Util.uleb128 buf (List.length bytes + 1);
        List.iter (fun b -> Buffer.add_char buf (Char.chr (b land 0xff))) bytes)
    p.Ir.Tree.globals;
  (* function headers *)
  Support.Util.uleb128 buf (List.length p.Ir.Tree.funcs);
  List.iter
    (fun f ->
      put_str buf f.Ir.Tree.fname;
      Support.Util.uleb128 buf (List.length f.Ir.Tree.formals);
      List.iter
        (fun (n, ty) ->
          put_str buf n;
          Buffer.add_char buf (Char.chr (ty_code ty)))
        f.Ir.Tree.formals;
      Support.Util.uleb128 buf f.Ir.Tree.frame_size;
      Support.Util.uleb128 buf (List.length f.Ir.Tree.body))
    p.Ir.Tree.funcs;
  (* pattern stream *)
  let pattern_seq = List.rev st.pattern_seq in
  let enc = mtf_or_first ~use_mtf ~eq:Ir.Pattern.equal pattern_seq in
  encode_indices buf enc.Zip.Mtf.indices;
  Support.Util.uleb128 buf (List.length enc.Zip.Mtf.novel);
  List.iter
    (fun sp -> put_str buf (Ir.Pattern.encode sp))
    enc.Zip.Mtf.novel;
  (* literal streams, in first-use order *)
  let keys = List.rev st.lit_keys in
  Support.Util.uleb128 buf (List.length keys);
  List.iter
    (fun key ->
      put_str buf key;
      let seq = List.rev !(Hashtbl.find st.lit_seqs key) in
      let enc = mtf_or_first ~use_mtf ~eq:( = ) seq in
      encode_indices buf enc.Zip.Mtf.indices;
      Support.Util.uleb128 buf (List.length enc.Zip.Mtf.novel);
      List.iter
        (fun lit ->
          match lit with
          | Ir.Pattern.Lint v ->
            Buffer.add_char buf '\000';
            Support.Util.sleb_of_int buf v
          | Ir.Pattern.Lsym s ->
            Buffer.add_char buf '\001';
            put_str buf s)
        enc.Zip.Mtf.novel)
    keys;
  let body =
    match final_stage with
    | Deflate -> "D" ^ Zip.Deflate.compress (Buffer.contents buf)
    | Arith order ->
      if order < 0 || order > 3 then invalid_arg "Wire.compress: bad order";
      Printf.sprintf "A%d" order
      ^ Zip.Range_coder.compress_order_n ~order (Buffer.contents buf)
  in
  (* integrity frame: 4-byte big-endian CRC-32 of the body, so a
     damaged or truncated image is rejected before any parsing *)
  let crc = Support.Util.crc32 body in
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 (Char.chr ((crc lsr 24) land 0xff));
  Bytes.set hdr 1 (Char.chr ((crc lsr 16) land 0xff));
  Bytes.set hdr 2 (Char.chr ((crc lsr 8) land 0xff));
  Bytes.set hdr 3 (Char.chr (crc land 0xff));
  Bytes.to_string hdr ^ body

(* ---- decompression ---- *)

let check_crc ~decoder z =
  let fail kind msg = Support.Decode_error.fail ~decoder ~kind ~pos:0 msg in
  if String.length z < 5 then
    fail Support.Decode_error.Truncated "truncated input";
  let stored =
    (Char.code z.[0] lsl 24)
    lor (Char.code z.[1] lsl 16)
    lor (Char.code z.[2] lsl 8)
    lor Char.code z.[3]
  in
  if Support.Util.crc32 ~pos:4 z <> stored then
    fail Support.Decode_error.Checksum "checksum mismatch (corrupt image)"

let decompress_exn z =
  check_crc ~decoder:"wire" z;
  let fail0 kind msg =
    Support.Decode_error.fail ~decoder:"wire" ~kind ~pos:4 msg
  in
  let bundle =
    match z.[4] with
    | 'D' -> Zip.Deflate.decompress_exn (String.sub z 5 (String.length z - 5))
    | 'A' ->
      if String.length z < 6 then
        fail0 Support.Decode_error.Truncated "truncated header";
      let order = Char.code z.[5] - Char.code '0' in
      if order < 0 || order > 3 then
        fail0 Support.Decode_error.Bad_value "bad arith order";
      Zip.Range_coder.decompress_order_n_exn ~order
        (String.sub z 6 (String.length z - 6))
    | _ -> fail0 Support.Decode_error.Bad_value "unknown final stage"
  in
  let r = { src = bundle; pos = ref 0 } in
  if get_raw r 4 <> magic then
    wfail r Support.Decode_error.Bad_magic "bad magic";
  let use_mtf = get_raw r 1 = "\001" in
  let split_streams = get_raw r 1 = "\001" in
  (* globals *)
  let nglob = get_uleb r in
  check_count r nglob "global";
  let globals =
    List.init nglob (fun _ ->
        let gname = get_str r in
        let gsize = get_uleb r in
        let initlen = get_uleb r in
        if initlen > 0 then check_count r (initlen - 1) "global initializer";
        let ginit =
          if initlen = 0 then None
          else
            Some (List.init (initlen - 1) (fun _ -> Char.code (get_byte r)))
        in
        { Ir.Tree.gname; gsize; ginit })
  in
  (* function headers *)
  let nfun = get_uleb r in
  check_count r nfun "function";
  let headers =
    List.init nfun (fun _ ->
        let fname = get_str r in
        let nformals = get_uleb r in
        check_count r nformals "formal";
        let formals =
          List.init nformals (fun _ ->
              let n = get_str r in
              let ty = ty_of_code r (Char.code (get_byte r)) in
              (n, ty))
        in
        let frame_size = get_uleb r in
        let nstmts = get_uleb r in
        (fname, formals, frame_size, nstmts))
  in
  (* pattern stream *)
  let pat_indices = decode_indices r in
  let n_novel = get_uleb r in
  check_count r n_novel "novel pattern";
  let novel_pats =
    List.init n_novel (fun _ ->
        let s = get_str r in
        let pos = ref 0 in
        let sp = Ir.Pattern.decode s pos in
        if !pos <> String.length s then
          wfail r Support.Decode_error.Inconsistent "trailing pattern bytes";
        sp)
  in
  let pattern_seq =
    inverse_mtf_or_first ~use_mtf
      { Zip.Mtf.indices = pat_indices; novel = novel_pats }
  in
  (* literal streams *)
  let nstreams = get_uleb r in
  check_count r nstreams "literal stream";
  let lit_streams : (string, Ir.Pattern.lit list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  for _ = 1 to nstreams do
    let key = get_str r in
    let indices = decode_indices r in
    let n_novel = get_uleb r in
    check_count r n_novel "novel literal";
    let novel =
      List.init n_novel (fun _ ->
          match get_byte r with
          | '\000' -> Ir.Pattern.Lint (get_sleb r)
          | '\001' -> Ir.Pattern.Lsym (get_str r)
          | _ -> wfail r Support.Decode_error.Bad_value "bad literal tag")
    in
    let seq = inverse_mtf_or_first ~use_mtf { Zip.Mtf.indices; novel } in
    Hashtbl.add lit_streams key (ref seq)
  done;
  let next_lit cls =
    let key = class_key ~split:split_streams cls in
    match Hashtbl.find_opt lit_streams key with
    | Some lr -> (
      match !lr with
      | [] ->
        wfail r Support.Decode_error.Inconsistent
          ("literal stream exhausted: " ^ key)
      | v :: rest ->
        lr := rest;
        v)
    | None ->
      wfail r Support.Decode_error.Inconsistent
        ("missing literal stream: " ^ key)
  in
  (* reassemble functions *)
  let remaining_patterns = ref pattern_seq in
  let take_pattern () =
    match !remaining_patterns with
    | [] -> wfail r Support.Decode_error.Inconsistent "pattern stream exhausted"
    | sp :: rest ->
      remaining_patterns := rest;
      sp
  in
  let funcs =
    List.map
      (fun (fname, formals, frame_size, nstmts) ->
        let body =
          List.init nstmts (fun _ ->
              let sp = take_pattern () in
              let slots = Ir.Pattern.lit_slots sp in
              let lits = List.map (fun cls -> (cls, next_lit cls)) slots in
              Ir.Pattern.to_stmt sp lits)
        in
        { Ir.Tree.fname; formals; frame_size; body })
      headers
  in
  if !remaining_patterns <> [] then
    wfail r Support.Decode_error.Inconsistent "leftover patterns";
  { Ir.Tree.globals; funcs }

let decompress z =
  Support.Decode_error.guard ~decoder:"wire" (fun () -> decompress_exn z)

(* ---- stats ---- *)

type stats = {
  wire_bytes : int;
  bundle_bytes : int;
  pattern_count : int;
  distinct_patterns : int;
  pattern_stream_bytes : int;
  novel_table_bytes : int;
  literal_stream_bytes : (string * int) list;
}

let stats (p : Ir.Tree.program) =
  (* replicate the pipeline, measuring as we go *)
  let pattern_seq = ref [] in
  let lit_seqs : (string, Ir.Pattern.lit list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let keys = ref [] in
  List.iter
    (fun f ->
      List.iter
        (fun s ->
          let sp, lits = Ir.Pattern.of_stmt s in
          pattern_seq := sp :: !pattern_seq;
          List.iter
            (fun (cls, v) ->
              let key = Ir.Op.lit_class_name cls in
              match Hashtbl.find_opt lit_seqs key with
              | Some r -> r := v :: !r
              | None ->
                Hashtbl.add lit_seqs key (ref [ v ]);
                keys := key :: !keys)
            lits)
        f.Ir.Tree.body)
    p.Ir.Tree.funcs;
  let pattern_seq = List.rev !pattern_seq in
  let enc = Zip.Mtf.encode ~eq:Ir.Pattern.equal pattern_seq in
  let pat_stream =
    Zip.Huffman.encode_all enc.Zip.Mtf.indices
      ~alphabet:(List.fold_left max 0 enc.Zip.Mtf.indices + 1)
  in
  let novel_bytes =
    List.fold_left
      (fun a sp -> a + String.length (Ir.Pattern.encode sp) + 1)
      0 enc.Zip.Mtf.novel
  in
  let lit_bytes =
    List.rev_map
      (fun key ->
        let seq = List.rev !(Hashtbl.find lit_seqs key) in
        let enc = Zip.Mtf.encode ~eq:( = ) seq in
        let stream =
          Zip.Huffman.encode_all enc.Zip.Mtf.indices
            ~alphabet:(List.fold_left max 0 enc.Zip.Mtf.indices + 1)
        in
        let novel =
          List.fold_left
            (fun a lit ->
              a
              + match lit with
                | Ir.Pattern.Lint v ->
                  let b = Buffer.create 8 in
                  Support.Util.sleb_of_int b v;
                  1 + Buffer.length b
                | Ir.Pattern.Lsym s -> 2 + String.length s)
            0 enc.Zip.Mtf.novel
        in
        (key, Bytes.length stream + novel))
      !keys
  in
  let z = compress p in
  (* skip the 4-byte CRC frame and the final-stage tag; our own output,
     so the unwrapping decode is safe *)
  let bundle =
    Zip.Deflate.decompress_exn (String.sub z 5 (String.length z - 5))
  in
  {
    wire_bytes = String.length z;
    bundle_bytes = String.length bundle;
    pattern_count = List.length pattern_seq;
    distinct_patterns = List.length enc.Zip.Mtf.novel;
    pattern_stream_bytes = Bytes.length pat_stream;
    novel_table_bytes = novel_bytes;
    literal_stream_bytes = lit_bytes;
  }
