(** Function-at-a-time wire compression.

    The paper notes that arithmetic/LZ wire codes "must be expanded
    before interpretation, though we have used them successfully by
    decompressing a function at a time". This module provides that
    granularity: each function is compressed as an independent chunk
    behind an index, so a pager or lazy loader can materialize one
    function's IR without touching the rest of the image — the
    paging-from-compressed-storage scenario of the introduction.

    The trade-off against {!Wire.compress} is measured by the bench:
    per-chunk compression loses cross-function redundancy (each chunk
    carries its own Huffman tables), so the image is larger; what it
    buys is O(function) decompression instead of O(program). *)

type t

val compress : ?pool:Support.Pool.t -> Ir.Tree.program -> t
(** With [pool], functions are compressed into their chunks in
    parallel (chunks are independent single-function images); results
    join in function order, so the output never depends on
    scheduling. *)

val to_bytes : t -> string

val of_bytes : string -> (t, Support.Decode_error.t) result
(** Total inverse of {!to_bytes}: the CRC frame is checked before
    parsing and every count field is validated against the remaining
    input before allocation. *)

val of_bytes_exn : string -> t
(** As {!of_bytes} but raises {!Support.Decode_error.Fail}; for trusted
    inputs. *)

val size : t -> int
(** Serialized size in bytes. *)

val function_names : t -> string list

val globals : t -> Ir.Tree.global list
(** The header's globals — available without touching any chunk, so a
    pager can lay out the data segment before decompressing anything. *)

(** {2 Random access}

    The WCH3 container carries an explicit per-chunk (name, length)
    index ahead of a contiguous data region, so these are O(1) array
    lookups — the pager's fault path touches only the faulting
    function's bytes. *)

val chunk_count : t -> int

val name_at : t -> int -> string
(** Function name of chunk [i] (serialization order). *)

val index_of : t -> string -> int option
(** Chunk index of a function name (hashed; first wins on duplicates). *)

val chunk_at : t -> int -> string
(** Chunk [i]'s compressed bytes, O(1) via the offset index. *)

val chunk_size_at : t -> int -> int

val decompress_at : t -> int -> Ir.Tree.func
(** Materialize chunk [i] alone.
    @raise Support.Decode_error.Fail if the chunk bytes are corrupt. *)

val chunk : t -> string -> string
(** One function's compressed chunk, exactly as serialized — itself a
    complete single-function {!Wire_format} image, so a client can
    expand it with {!Wire_format.decompress}. The code-delivery
    server's streaming sessions ship these one per request.
    @raise Not_found for unknown names. *)

val chunk_size : t -> string -> int
(** Compressed bytes of one function's chunk.
    @raise Not_found for unknown names. *)

val decompress_function : t -> string -> Ir.Tree.func
(** Materialize a single function, decompressing only its chunk.
    @raise Not_found for unknown names.
    @raise Support.Decode_error.Fail if the chunk itself is corrupt
    (cannot happen for a [t] built by {!compress} or accepted by
    {!of_bytes}, whose CRC covers every chunk). *)

val decompress_all : t -> Ir.Tree.program
(** Reassemble the whole program; equals the input of {!compress}. *)
