(** The autotuner's serving-policy table.

    A versioned, line-based text format ([mcc-policy 1]) mapping
    (client profile, program digest) to the registered codec that
    minimized modelled total delivery time when [mcctune] last ran.
    The engine consults it before live scoring ({!Server.Engine}
    accepts one at creation); [make tune] regenerates it, and [make
    check] validates the committed table against the registry. *)

val version : int

type pick = {
  profile : string;       (** client profile name, e.g. ["modem-jit"] *)
  digest : string;        (** program digest, as {!Server.Store} keys it *)
  codec : string;         (** registered codec name to serve *)
  predicted_ms : float;   (** modelled total delivery time at tune time *)
  pname : string;         (** human label of the corpus point (review aid) *)
}

type t

val empty : t
val picks : t -> pick list

val add : t -> pick -> t
(** Replaces any existing pick for the same (profile, digest). *)

val lookup : t -> profile:string -> digest:string -> pick option

val to_string : t -> string
val of_string : string -> (t, string) result
(** Inverse of {!to_string}; rejects unknown versions and malformed
    records with a line-numbered message. Does not {!validate}. *)

val validate : t -> (unit, string) result
(** Every pick must name a registered codec with delivery modes. *)

val save : string -> t -> unit
val load : string -> (t, string) result
(** {!of_string} + {!validate} on a file. *)
