(* The serving-policy table: the autotuner's output, a versioned
   line-based text file mapping (client profile, program digest) to the
   registered codec that minimized modelled total delivery time on this
   host. The engine consults it before live scoring, so retuning is an
   offline job (`make tune`) whose result is reviewable in a diff.

   Format, one record per line, space-separated:

     mcc-policy 1
     pick <profile> <digest> <codec> <predicted_ms> <pname>

   [pname] is a human label for review; lookups key on (profile,
   digest) only. Blank lines and [#] comments are ignored. *)

let version = 1

type pick = {
  profile : string;
  digest : string;
  codec : string;
  predicted_ms : float;
  pname : string;
}

type t = { picks : pick list }

let empty = { picks = [] }
let picks t = t.picks

let add t p =
  {
    picks =
      List.filter
        (fun q -> not (q.profile = p.profile && q.digest = p.digest))
        t.picks
      @ [ p ];
  }

let lookup t ~profile ~digest =
  List.find_opt (fun p -> p.profile = profile && p.digest = digest) t.picks

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "mcc-policy %d\n" version);
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "pick %s %s %s %.3f %s\n" p.profile p.digest p.codec
           p.predicted_ms p.pname))
    t.picks;
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let lines =
    List.filteri
      (fun _ l -> String.trim l <> "" && not (String.length l > 0 && l.[0] = '#'))
      lines
  in
  match lines with
  | [] -> Error "empty policy"
  | header :: rest -> (
    match String.split_on_char ' ' (String.trim header) with
    | [ "mcc-policy"; v ] when int_of_string_opt v = Some version ->
      let rec go acc i = function
        | [] -> Ok { picks = List.rev acc }
        | line :: rest -> (
          match String.split_on_char ' ' (String.trim line) with
          | [ "pick"; profile; digest; codec; ms; pname ] -> (
            match float_of_string_opt ms with
            | Some predicted_ms when predicted_ms >= 0.0 ->
              go
                ({ profile; digest; codec; predicted_ms; pname } :: acc)
                (i + 1) rest
            | _ -> Error (Printf.sprintf "line %d: bad predicted_ms %S" i ms))
          | "pick" :: _ -> Error (Printf.sprintf "line %d: malformed pick" i)
          | w :: _ -> Error (Printf.sprintf "line %d: unknown record %S" i w)
          | [] -> go acc (i + 1) rest)
      in
      go [] 2 rest
    | [ "mcc-policy"; v ] -> Error ("unsupported policy version " ^ v)
    | _ -> Error "missing mcc-policy header")

(* The table is only trustworthy if every pick still names a codec the
   registry serves whole-image; a rename or removal must fail loudly at
   load/check time, not at request time. *)
let validate t =
  let rec go = function
    | [] -> Ok ()
    | p :: rest -> (
      match Codec.find p.codec with
      | None -> Error (Printf.sprintf "pick %s/%s: unknown codec %s" p.profile p.pname p.codec)
      | Some e when e.Codec.modes = [] ->
        Error
          (Printf.sprintf "pick %s/%s: codec %s has no delivery modes"
             p.profile p.pname p.codec)
      | Some _ -> go rest)
  in
  go t.picks

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load path =
  match
    In_channel.with_open_bin path (fun ic -> In_channel.input_all ic)
  with
  | s -> Result.bind (of_string s) (fun t -> Result.map (fun () -> t) (validate t))
  | exception Sys_error e -> Error e
