(** The cost-model autotuner.

    Searches the codec registry's grid (every registered front codec ×
    entropy stage × parse strategy is a distinct codec, and each codec
    offers its delivery modes) against each client profile's modelled
    total delivery time, per corpus point, and emits the argmins as a
    {!Policy} table. Runs offline ([mcctune] / [make tune]); the live
    engine then serves table lookups instead of re-deriving the same
    argmin per request. *)

type client = {
  cname : string;
  link_bps : float;
  can_jit : bool;
  accepts_native : bool;
  memory_bytes : int option;  (** resident-code budget; [None] = ample *)
}
(** What the tuner assumes about a client — mirrors [Server.Profile]
    (replicated so the dependency arrow stays server → tune). *)

val client :
  ?can_jit:bool -> ?accepts_native:bool -> ?memory_bytes:int ->
  string -> link_bps:float -> client

val default_clients : client list
(** The driver population: modem-jit, lan-jit, embedded, datacenter. *)

type point = { pname : string; ir : Ir.Tree.program; run_cycles : int }

val digest_of : Ir.Tree.program -> string
(** The program key the policy table uses — MD5 hex of the printed IR,
    matching [Server.Store.publish]. *)

val mode_feasible :
  client ->
  mode:Scenario.Delivery.representation ->
  artifact_bytes:int -> native_bytes:int -> bool

val tune :
  ?rates:Scenario.Delivery.rates ->
  ?min_session_cycles:int ->
  ?clients:client list ->
  point list ->
  Policy.t
(** Encode every registered whole-image codec per point (sizes are
    measured, not estimated), score every feasible (codec, mode) per
    client with {!Scenario.Delivery.total_time_for}, keep the argmin
    (registry order breaks ties, as the live selector does). *)
