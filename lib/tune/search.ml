(* The autotuner's search: per corpus point, exercise the registry's
   whole grid — every registered front codec, entropy stage and parse
   strategy is a distinct (codec, mode) candidate — size each artifact
   by actually encoding it, and score each candidate for each client
   profile with the same total-time model the live selector uses
   ([Scenario.Delivery.total_time_for]). The argmin per (client, point)
   becomes a policy pick.

   This module deliberately does not depend on [lib/server] (the server
   depends on it): the client record and feasibility rule mirror
   [Server.Profile], and the digest mirrors [Server.Store]'s program
   key (MD5 of the printed IR), so the emitted table keys line up with
   a live engine's. *)

type client = {
  cname : string;
  link_bps : float;
  can_jit : bool;
  accepts_native : bool;
  memory_bytes : int option;
}

let client ?(can_jit = true) ?(accepts_native = false) ?memory_bytes cname
    ~link_bps =
  { cname; link_bps; can_jit; accepts_native; memory_bytes }

(* the driver's default population, mirroring [Server.Profile] *)
let default_clients =
  [
    client "modem-jit" ~link_bps:Scenario.Delivery.modem_bps;
    client "lan-jit" ~link_bps:Scenario.Delivery.lan_bps;
    client "embedded" ~link_bps:Scenario.Delivery.isdn_bps ~can_jit:false
      ~memory_bytes:(32 * 1024);
    client "datacenter" ~link_bps:Scenario.Delivery.fast_lan_bps
      ~accepts_native:true;
  ]

(* [Server.Profile.mode_feasible], replicated to keep the dependency
   arrow pointing server -> tune *)
let mode_feasible c ~mode ~artifact_bytes ~native_bytes =
  let fits resident =
    match c.memory_bytes with None -> true | Some m -> resident <= m
  in
  match (mode : Scenario.Delivery.representation) with
  | Scenario.Delivery.Raw_native | Scenario.Delivery.Gzipped_native ->
    c.accepts_native && fits native_bytes
  | Scenario.Delivery.Wire_format | Scenario.Delivery.Brisc_jit ->
    c.can_jit && fits native_bytes
  | Scenario.Delivery.Brisc_interp -> fits artifact_bytes

type point = { pname : string; ir : Ir.Tree.program; run_cycles : int }

let digest_of ir = Digest.to_hex (Digest.string (Ir.Printer.program_to_string ir))

(* one nominal CPU-second at the paper's clock, as the engine floors it *)
let default_min_session_cycles = 120_000_000

let tune ?(rates = Scenario.Delivery.default_rates)
    ?(min_session_cycles = default_min_session_cycles) ?(clients = default_clients)
    points =
  List.fold_left
    (fun pol pt ->
      let src = Codec.Source.of_ir pt.ir in
      let native_bytes = String.length (Codec.Source.native src) in
      let digest = digest_of pt.ir in
      let run_cycles = max pt.run_cycles min_session_cycles in
      (* size the whole menu once per point; encodes are deterministic,
         so these match what a live store materializes. Shared-dict
         codecs are sized against the committed dictionary (what the
         server encodes with); the delta update channel has no fixed
         artifact to size — its base is per-request — so it stays out
         of the offline grid. *)
      let sized =
        List.filter_map
          (fun (e : Codec.entry) ->
            if e.Codec.modes = [] then None
            else
              match e.Codec.needs with
              | `Base _ -> None
              | `None | `Shared_dict _ ->
                let bytes, _ = Codec.encode e.Codec.codec src in
                Some (e, String.length bytes))
          (Codec.all ())
      in
      List.fold_left
        (fun pol c ->
          let scored =
            List.concat_map
              (fun ((e : Codec.entry), artifact_bytes) ->
                List.filter_map
                  (fun mode ->
                    if mode_feasible c ~mode ~artifact_bytes ~native_bytes then
                      Some
                        ( Codec.name e.Codec.codec,
                          Scenario.Delivery.total_time_for ~rates ~mode
                            ~artifact_bytes ~native_bytes ~run_cycles
                            ~link_bps:c.link_bps () )
                    else None)
                  e.Codec.modes)
              sized
          in
          match scored with
          | [] -> pol (* nothing feasible: the live engine's last-resort
                         interpreter path handles this client *)
          | hd :: tl ->
            (* strict-min fold: ties keep the earlier (registry-order)
               candidate, exactly as the live selector does *)
            let codec, o =
              List.fold_left
                (fun (bn, bo) (n, o) ->
                  if o.Scenario.Delivery.total_s < bo.Scenario.Delivery.total_s
                  then (n, o)
                  else (bn, bo))
                hd tl
            in
            Policy.add pol
              {
                Policy.profile = c.cname;
                digest;
                codec;
                predicted_ms = o.Scenario.Delivery.total_s *. 1000.0;
                pname = pt.pname;
              })
        pol clients)
    Policy.empty points
