(* The composable codec layer.

   Every representation the tree can produce — the paper's wire format,
   the BRISC container, deflated native images — is a [Codec.t]: a
   named encode/decode pair whose encode emits a per-stage trace
   (bytes-in / bytes-out / wall time per pipeline stage) and whose
   decode is TOTAL, returning a typed [Decode_error.t] on hostile
   input. [compose] chains a structural front codec with byte-to-byte
   back stages, concatenating their traces; the registry makes the
   set of representations an open, one-registration-per-format list
   that the delivery server, the benches, and the fuzz harness all
   derive their menus from. *)

type stage = {
  stage : string;
  bytes_in : int;
  bytes_out : int;
  wall_s : float;
}

type trace = stage list

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let st name bytes_in bytes_out wall_s = { stage = name; bytes_in; bytes_out; wall_s }

(* ---- sources ---- *)

module Source = struct
  (* The views of one program a codec may consume, all lazy so a codec
     forces only what its pipeline needs (the wire family reads the IR,
     BRISC the VM program, the native family the machine image), and
     shared so sibling codecs reuse the forced value. *)
  type t = {
    ir : Ir.Tree.program Lazy.t;
    vm : Vm.Isa.vprogram Lazy.t;
    native : string Lazy.t;
    payload : string Lazy.t;  (* the byte view: native image, or raw bytes *)
    pool : Support.Pool.t option;
  }

  let of_ir ?pool ?vm:vm_prog ?native:native_img (p : Ir.Tree.program) =
    let ir = Lazy.from_val p in
    let vm =
      match vm_prog with
      | Some v -> Lazy.from_val v
      | None -> lazy (Vm.Codegen.gen_program p)
    in
    let native =
      match native_img with
      | Some img -> Lazy.from_val img
      | None ->
        lazy
          (Native.Mach.encode_program
             (Native.Compile.compile_program (Lazy.force vm)))
    in
    { ir; vm; native; payload = native; pool }

  (* As [of_ir], but the native view is an arbitrary suspension — e.g.
     a cache-aware fetch — forced only by codecs that need it. *)
  let of_ir_lazy ?pool ?vm:vm_prog ~native (p : Ir.Tree.program) =
    let vm =
      match vm_prog with
      | Some v -> Lazy.from_val v
      | None -> lazy (Vm.Codegen.gen_program p)
    in
    { ir = Lazy.from_val p; vm; native; payload = native; pool }

  let of_bytes ?pool s =
    let no what = invalid_arg ("Codec.Source: byte source has no " ^ what) in
    { ir = lazy (no "IR"); vm = lazy (no "VM program"); native = lazy s;
      payload = lazy s; pool }

  let ir t = Lazy.force t.ir
  let vm t = Lazy.force t.vm
  let native t = Lazy.force t.native
  let payload t = Lazy.force t.payload
  let pool t = t.pool
end

(* ---- contexts ---- *)

module Context = struct
  (* Out-of-band state a context-aware codec encodes against: either
     the corpus-trained shared dictionary (an LZ77 priming window for
     the wire family's shared final stage plus a frozen BRISC entry
     prefix), or a base artifact the client already holds, which the
     delta codec serves a structural patch against. The digest is the
     negotiation currency: clients advertise digests of what they
     hold, and the server only picks a contexted representation when
     the digests line up. *)
  type shared = {
    sd_digest : string;              (* MD5 hex of lz ^ pats_bytes *)
    lz : string;                     (* LZ77 priming window *)
    pats : Brisc.Pat.pat array;      (* frozen BRISC entry prefix *)
    pats_bytes : string;             (* canonical byte form of [pats] *)
  }

  type base = {
    base_digest : string;            (* MD5 hex of the printed base IR *)
    ir_text : string;
  }

  type t = Shared_dict of shared | Base of base

  let digest = function
    | Shared_dict { sd_digest; _ } -> sd_digest
    | Base { base_digest; _ } -> base_digest

  let shared ~lz ~pats_bytes =
    let pats =
      if pats_bytes = "" then [||]
      else Brisc.Emit.patterns_of_bytes_exn pats_bytes
    in
    let sd_digest = Digest.to_hex (Digest.string (lz ^ pats_bytes)) in
    Shared_dict { sd_digest; lz; pats; pats_bytes }

  let base ~ir_text =
    Base { base_digest = Digest.to_hex (Digest.string ir_text); ir_text }

  let builtin_v = lazy (shared ~lz:Shared_dict_data.lz ~pats_bytes:Shared_dict_data.pats)
  let builtin () = Lazy.force builtin_v
  let builtin_digest () = digest (builtin ())

  let lz_window = 32768
  let pats_cap = 96

  (* Corpus training. The LZ priming dictionary is the tail of the
     concatenated wire bundles (matches address recent bytes, so the
     tail is the valuable part — same rationale as zlib's
     deflateSetDictionary). The shared BRISC prefix is the union of
     the per-program learned dictionaries, ranked by how many corpus
     programs discovered each pattern (ties broken by the pattern's
     canonical key, so training is order-independent). *)
  let train (irs : Ir.Tree.program list) =
    let cat =
      String.concat ""
        (List.map
           (fun ir -> Wire.bundle_of_patternized (Wire.patternize ir))
           irs)
    in
    let lz =
      let n = String.length cat in
      if n > lz_window then String.sub cat (n - lz_window) lz_window else cat
    in
    let counts : (string, Brisc.Pat.pat * int) Hashtbl.t = Hashtbl.create 512 in
    List.iter
      (fun ir ->
        let d = Brisc.Dict.build (Vm.Codegen.gen_program ir) in
        Array.iter
          (fun p ->
            let k = Brisc.Pat.key p in
            match Hashtbl.find_opt counts k with
            | Some (p0, c) -> Hashtbl.replace counts k (p0, c + 1)
            | None -> Hashtbl.replace counts k (p, 1))
          d.Brisc.Dict.entries)
      irs;
    let ranked =
      Hashtbl.fold (fun k (p, c) acc -> (k, p, c) :: acc) counts []
      |> List.sort (fun (k1, _, c1) (k2, _, c2) ->
             if c1 <> c2 then compare c2 c1 else compare k1 k2)
    in
    let pats =
      ranked
      |> List.filteri (fun i _ -> i < pats_cap)
      |> List.map (fun (_, p, _) -> p)
      |> Array.of_list
    in
    shared ~lz ~pats_bytes:(Brisc.Emit.patterns_to_bytes pats)

  (* Accessors for the codec bodies below; decode paths never default,
     so an absent or mismatched context is a typed error. *)
  let require_shared ~decoder = function
    | Some (Shared_dict s) -> s
    | Some (Base _) | None ->
      Support.Decode_error.fail ~decoder ~kind:Support.Decode_error.Bad_value
        "this representation requires the shared dictionary context"

  let require_base ~decoder = function
    | Some (Base b) -> b
    | Some (Shared_dict _) | None ->
      Support.Decode_error.fail ~decoder ~kind:Support.Decode_error.Bad_value
        "this representation requires a base-artifact context"
end

(* ---- codecs ---- *)

type t = {
  name : string;
  tag : string;
  encode : ctx:Context.t option -> Source.t -> string * trace;
  decode :
    ctx:Context.t option ->
    string ->
    (string * trace, Support.Decode_error.t) result;
}

let name c = c.name
let tag c = c.tag
let encode ?ctx c src = c.encode ~ctx src
let encode_bytes ?ctx c s = c.encode ~ctx (Source.of_bytes s)
let decode ?ctx c s = c.decode ~ctx s

let make ~name ~tag ~encode ~decode =
  {
    name;
    tag;
    encode = (fun ~ctx:_ src -> encode src);
    decode = (fun ~ctx:_ s -> decode s);
  }

let make_ctx ~name ~tag ~encode ~decode = { name; tag; encode; decode }

(* Shared-dict encoders are trusted server-side and fall back to the
   committed corpus dictionary; decode never defaults (the client must
   actually hold the bytes). *)
let shared_or_builtin = function
  | Some c -> c
  | None -> Context.builtin ()

(* [compose front back]: encode runs [front] on the source, then pipes
   its bytes through [back] (which must be a pure byte codec — its
   encode may only read the payload view); decode inverts [back] first,
   then [front]. The context reaches both halves; traces concatenate in
   the order the work happened. *)
let compose ?name:n ?tag:tg front back =
  let name = match n with Some s -> s | None -> front.name ^ "|" ^ back.name in
  let tag = match tg with Some s -> s | None -> front.tag ^ back.tag in
  {
    name;
    tag;
    encode =
      (fun ~ctx src ->
        let b1, t1 = front.encode ~ctx src in
        let b2, t2 =
          back.encode ~ctx (Source.of_bytes ?pool:src.Source.pool b1)
        in
        (b2, t1 @ t2));
    decode =
      (fun ~ctx s ->
        Result.bind (back.decode ~ctx s) (fun (b1, t2) ->
            Result.map (fun (b0, t1) -> (b0, t2 @ t1)) (front.decode ~ctx b1)));
  }

(* ---- the built-in pipeline stages ---- *)

(* LZ77 token stream footprint: a literal costs ~1 byte, a match ~3
   (length class + distance class + extra bits) before entropy coding.
   Only used for the trace; the real sizing happens in the Huffman
   stage. *)
let token_bytes tokens =
  List.fold_left
    (fun a t -> a + match t with Zip.Lz77.Literal _ -> 1 | Zip.Lz77.Match _ -> 3)
    0 tokens

let native_codec =
  make ~name:"native" ~tag:"n"
    ~encode:(fun src ->
      let img, dt = timed (fun () -> Source.native src) in
      let n = String.length img in
      (img, [ st "emit" n n dt ]))
    ~decode:(fun s ->
      (* raw machine images carry no framing to check *)
      Ok (s, [ st "identity" (String.length s) (String.length s) 0.0 ]))

let deflate_codec =
  make ~name:"deflate" ~tag:"z"
    ~encode:(fun src ->
      let s = Source.payload src in
      let tokens, dt1 = timed (fun () -> Zip.Lz77.tokenize s) in
      let tb = token_bytes tokens in
      let z, dt2 =
        timed (fun () ->
            Zip.Deflate.encode_tokens ~source:s ~orig_len:(String.length s)
              tokens)
      in
      (z, [ st "lz77" (String.length s) tb dt1;
            st "huffman" tb (String.length z) dt2 ]))
    ~decode:(fun z ->
      Support.Decode_error.guard ~decoder:"deflate" (fun () ->
          let s, dt = timed (fun () -> Zip.Deflate.decompress_exn z) in
          (s, [ st "inflate" (String.length z) (String.length s) dt ])))

let gzip_native_codec = compose ~name:"gzip+native" ~tag:"g" native_codec deflate_codec

let printed ir = Ir.Printer.program_to_string ir

let wire_bundle_codec =
  make ~name:"wire-bundle" ~tag:"W"
    ~encode:(fun src ->
      let ir = Source.ir src in
      let in0 = String.length (printed ir) in
      let pz, dt1 = timed (fun () -> Wire.patternize ir) in
      let sy = Wire.symbols pz in
      let bundle, dt2 =
        timed (fun () ->
            Wire.bundle_of_patternized ?pool:(Source.pool src) pz)
      in
      (bundle,
       [ st "patternize" in0 sy dt1;
         st "mtf+huffman" sy (String.length bundle) dt2 ]))
    ~decode:(fun bundle ->
      Support.Decode_error.guard ~decoder:"wire" (fun () ->
          let p, dt = timed (fun () -> Wire.program_of_bundle_exn bundle) in
          let txt = printed p in
          (txt, [ st "unbundle" (String.length bundle) (String.length txt) dt ])))

(* The final entropy stage of the wire pipeline, tagged into the stream
   ([D] / [A<order>] / [L] / [S]) so decode is self-describing: any
   final codec decodes any tag. This is the ONLY place the tag is
   dispatched on; every final-stage codec below is one
   [final_stage_codec] call sharing it. The [S] stage is the only one
   that consults the context — its LZ77 window is primed with the
   shared dictionary, and decoding without it (or with the wrong one,
   caught by the in-stream CRC) is a typed error. *)
let final_decode ~ctx body =
  Support.Decode_error.guard ~decoder:"wire" (fun () ->
      let shared = String.length body > 0 && body.[0] = 'S' in
      let name =
        if String.length body = 0 then "inflate"
        else
          match body.[0] with
          | 'A' -> "range-decode"
          | 'L' -> "lza-decode"
          | 'S' -> "shared-inflate"
          | _ -> "inflate"
      in
      let dict =
        if shared then
          Some (Context.require_shared ~decoder:"wire" ctx).Context.lz
        else None
      in
      let bundle, dt = timed (fun () -> Wire.unwrap_final_stage_exn ?dict body) in
      (bundle, [ st name (String.length body) (String.length bundle) dt ]))

(* One final-stage codec: a context-fed stage transform on the bundle
   plus the shared tag-dispatching decode. *)
let final_stage_codec ~name ~tag ~label stage_of =
  make_ctx ~name ~tag
    ~encode:(fun ~ctx src ->
      let bundle = Source.payload src in
      let z, dt = timed (fun () -> stage_of ~ctx bundle) in
      (z, [ st label (String.length bundle) (String.length z) dt ]))
    ~decode:final_decode

let final_deflate_codec =
  make_ctx ~name:"final-deflate" ~tag:"D"
    ~encode:(fun ~ctx:_ src ->
      (* kept long-hand (not via [final_stage_codec]) for its two-stage
         lz77/huffman trace *)
      let bundle = Source.payload src in
      let tokens, dt1 = timed (fun () -> Zip.Lz77.tokenize bundle) in
      let tb = token_bytes tokens in
      let z, dt2 =
        timed (fun () ->
            "D"
            ^ Zip.Deflate.encode_tokens ~source:bundle
                ~orig_len:(String.length bundle) tokens)
      in
      (z, [ st "lz77" (String.length bundle) tb dt1;
            st "huffman" tb (String.length z) dt2 ]))
    ~decode:final_decode

let final_range_codec ~order =
  final_stage_codec
    ~name:(Printf.sprintf "final-range%d" order)
    ~tag:"A"
    ~label:(Printf.sprintf "range-%d" order)
    (fun ~ctx:_ bundle -> Wire.apply_final_stage (Wire.Arith order) bundle)

(* The ratio-maximal final stage: try the order-2 range coder and the
   LZ+range token stream ({!Zip.Lza}) and keep the smaller, so this
   codec's output never exceeds wire+range's. The tag byte inside the
   body records which one won; [final_decode] dispatches on it. *)
let final_range_opt_codec =
  final_stage_codec ~name:"final-range-opt" ~tag:"L" ~label:"range-opt"
    (fun ~ctx:_ bundle ->
      let a = Wire.apply_final_stage (Wire.Arith 2) bundle in
      let b = Wire.apply_final_stage Wire.Lz_arith bundle in
      if String.length b < String.length a then b else a)

(* Deflate with the shared-dictionary-primed window. The encoder
   defaults to the committed corpus dictionary; decode requires the
   context. *)
let final_shared_codec =
  final_stage_codec ~name:"final-shared" ~tag:"S" ~label:"shared-deflate"
    (fun ~ctx bundle ->
      match shared_or_builtin ctx with
      | Context.Shared_dict { lz; _ } ->
        Wire.apply_final_stage (Wire.Shared_deflate lz) bundle
      | Context.Base _ ->
        invalid_arg "final-shared: encode requires a shared-dictionary context")

let crc_codec =
  make ~name:"crc32" ~tag:"+"
    ~encode:(fun src ->
      let body = Source.payload src in
      let sealed, dt = timed (fun () -> Support.Frame.seal body) in
      (sealed, [ st "crc32" (String.length body) (String.length sealed) dt ]))
    ~decode:(fun s ->
      Support.Decode_error.guard ~decoder:"wire" (fun () ->
          let off, dt = timed (fun () -> Support.Frame.verify ~decoder:"wire" s) in
          let body = String.sub s off (String.length s - off) in
          (body, [ st "crc32" (String.length s) (String.length body) dt ])))

let wire_codec =
  compose ~name:"wire" ~tag:"w"
    (compose wire_bundle_codec final_deflate_codec)
    crc_codec

let wire_range_codec =
  compose ~name:"wire+range" ~tag:"r"
    (compose wire_bundle_codec (final_range_codec ~order:2))
    crc_codec

let wire_range_opt_codec =
  compose ~name:"wire+range-opt" ~tag:"R"
    (compose wire_bundle_codec final_range_opt_codec)
    crc_codec

(* The context-aware wire pipeline: identical to [wire] except the
   final deflate's window is primed with the shared dictionary, so the
   bytes a client that holds the dictionary must download shrink while
   the decoded program is byte-identical. One compose — the shared
   stage is just another tagged final stage. *)
let wire_shared_codec =
  compose ~name:"wire+shared" ~tag:"s"
    (compose wire_bundle_codec final_shared_codec)
    crc_codec

(* Bit-optimal parse under the block's own Huffman costs; both the
   lazy and the optimal parse are encoded and the smaller kept, so the
   output never exceeds [deflate]'s and decodes with the same
   inflater. *)
let deflate_opt_codec =
  make ~name:"deflate-opt" ~tag:"Z"
    ~encode:(fun src ->
      let s = Source.payload src in
      let orig_len = String.length s in
      let (seed, opt), dt1 =
        timed (fun () ->
            let seed = Zip.Lz77.tokenize s in
            (seed, Zip.Deflate.tokenize_opt ~seed s))
      in
      let tb = token_bytes opt in
      let z, dt2 =
        timed (fun () ->
            let a =
              Zip.Deflate.encode_tokens ~source:s ~packed:true ~orig_len seed
            in
            let b =
              Zip.Deflate.encode_tokens ~source:s ~packed:true ~orig_len opt
            in
            if String.length b < String.length a then b else a)
      in
      (z,
       [ st "lz77-opt" orig_len tb dt1;
         st "huffman" tb (String.length z) dt2 ]))
    ~decode:(fun z ->
      Support.Decode_error.guard ~decoder:"deflate" (fun () ->
          let s, dt = timed (fun () -> Zip.Deflate.decompress_exn z) in
          (s, [ st "inflate" (String.length z) (String.length s) dt ])))

let chunked_codec =
  make ~name:"chunked-wire" ~tag:"c"
    ~encode:(fun src ->
      let ir = Source.ir src in
      let in0 = String.length (printed ir) in
      let img, dt1 =
        timed (fun () -> Wire.Chunked.compress ?pool:(Source.pool src) ir)
      in
      let chunk_sum =
        List.fold_left
          (fun a n -> a + Wire.Chunked.chunk_size img n)
          0
          (Wire.Chunked.function_names img)
      in
      let bytes, dt2 = timed (fun () -> Wire.Chunked.to_bytes img) in
      (bytes,
       [ st "chunk+wire" in0 chunk_sum dt1;
         st "frame" chunk_sum (String.length bytes) dt2 ]))
    ~decode:(fun s ->
      Support.Decode_error.guard ~decoder:"chunked" (fun () ->
          let img, dt1 = timed (fun () -> Wire.Chunked.of_bytes_exn s) in
          let p, dt2 = timed (fun () -> Wire.Chunked.decompress_all img) in
          let txt = printed p in
          let chunk_sum =
            List.fold_left
              (fun a n -> a + Wire.Chunked.chunk_size img n)
              0
              (Wire.Chunked.function_names img)
          in
          (txt,
           [ st "unframe" (String.length s) chunk_sum dt1;
             st "unchunk" chunk_sum (String.length txt) dt2 ])))

let brisc_codec =
  make ~name:"brisc" ~tag:"b"
    ~encode:(fun src ->
      let vm = Source.vm src in
      let vm_bytes = Vm.Encode.program_size vm in
      let image, dt1 =
        timed (fun () -> Brisc.compress ?pool:(Source.pool src) vm)
      in
      let code_bytes =
        Array.fold_left
          (fun a f -> a + String.length f.Brisc.Emit.code)
          0 image.Brisc.Emit.ifuncs
      in
      let bytes, dt2 = timed (fun () -> Brisc.to_bytes image) in
      (bytes,
       [ st "dict+markov" vm_bytes code_bytes dt1;
         st "container" code_bytes (String.length bytes) dt2 ]))
    ~decode:(fun s ->
      Support.Decode_error.guard ~decoder:"brisc" (fun () ->
          let img, dt = timed (fun () -> Brisc.of_bytes_exn s) in
          (* canonical form: the re-serialized container, which
             round-trips byte-for-byte for well-formed input *)
          let out = Brisc.to_bytes img in
          (out, [ st "parse" (String.length s) (String.length out) dt ])))

(* The BRISC container against the frozen corpus-trained entry prefix:
   only the entries the program needs beyond the shared set travel
   (BRS2). Decode reconstitutes the full image and returns the same
   canonical form as [brisc] — the re-serialized full container. *)
let brisc_shared_codec =
  make_ctx ~name:"brisc+shared" ~tag:"B"
    ~encode:(fun ~ctx src ->
      let shared =
        match shared_or_builtin ctx with
        | Context.Shared_dict { Context.pats; _ } -> pats
        | Context.Base _ ->
          invalid_arg "brisc+shared: encode requires a shared-dictionary context"
      in
      let vm = Source.vm src in
      let vm_bytes = Vm.Encode.program_size vm in
      let image, dt1 = timed (fun () -> Brisc.compress_shared ~shared vm) in
      let code_bytes =
        Array.fold_left
          (fun a f -> a + String.length f.Brisc.Emit.code)
          0 image.Brisc.Emit.ifuncs
      in
      let bytes, dt2 =
        timed (fun () -> Brisc.Emit.to_bytes_shared ~shared image)
      in
      (bytes,
       [ st "dict-apply" vm_bytes code_bytes dt1;
         st "container" code_bytes (String.length bytes) dt2 ]))
    ~decode:(fun ~ctx s ->
      Support.Decode_error.guard ~decoder:"brisc" (fun () ->
          let shared = (Context.require_shared ~decoder:"brisc" ctx).Context.pats in
          let img, dt =
            timed (fun () -> Brisc.Emit.of_bytes_shared_exn ~shared s)
          in
          let out = Brisc.to_bytes img in
          (out, [ st "parse" (String.length s) (String.length out) dt ])))

(* ---- the delta "update channel" ---- *)

(* A function-granular structural diff of the printed IR against a base
   program the client already holds (v2 served as a patch against held
   v1). The patch carries the base digest plus, per v2 function, either
   a reference into the base (index + CRC of the referenced text) or
   the new function body, deflated. Decode requires the base context,
   verifies digest / index / CRC, and re-parses the reconstructed text
   so its output is exactly the canonical printed IR a full wire-family
   serve would decode to. *)

let delta_magic = "DLT1"

let globals_text (p : Ir.Tree.program) =
  (* the printer's own rendering of the globals section: print the
     program minus its functions and strip the trailing newline *)
  let s = printed { p with Ir.Tree.funcs = [] } in
  String.sub s 0 (max 0 (String.length s - 1))

let delta_encode ~ctx src =
  let b =
    match ctx with
    | Some (Context.Base b) -> b
    | _ -> invalid_arg "delta: encode requires a base-artifact context"
  in
  let v2 = Source.ir src in
  let (base_funcs, v2_texts), dt1 =
    timed (fun () ->
        let base = Ir.Parse_ir.program_of_string b.Context.ir_text in
        let tbl = Hashtbl.create 64 in
        List.iteri
          (fun i f ->
            let txt = Ir.Printer.func_to_string f in
            if not (Hashtbl.mem tbl txt) then Hashtbl.add tbl txt i)
          base.Ir.Tree.funcs;
        ((base, tbl), List.map Ir.Printer.func_to_string v2.Ir.Tree.funcs))
  in
  let base, base_index = base_funcs in
  let base_texts = Array.of_list (List.map Ir.Printer.func_to_string base.Ir.Tree.funcs) in
  let patch, dt2 =
    timed (fun () ->
        let buf = Buffer.create 1024 in
        Buffer.add_string buf delta_magic;
        Support.Frame.put_str buf b.Context.base_digest;
        Support.Frame.put_str buf (Zip.Deflate.compress (globals_text v2));
        Support.Util.uleb128 buf (List.length v2_texts);
        List.iter
          (fun txt ->
            match Hashtbl.find_opt base_index txt with
            | Some i ->
              Buffer.add_char buf 'C';
              Support.Util.uleb128 buf i;
              Support.Util.uleb128 buf (Support.Util.crc32 base_texts.(i))
            | None ->
              Buffer.add_char buf 'N';
              Support.Frame.put_str buf (Zip.Deflate.compress txt))
          v2_texts;
        Buffer.contents buf)
  in
  let src_bytes = String.length (printed v2) in
  (patch,
   [ st "diff" src_bytes (List.length v2_texts) dt1;
     st "patch" (List.length v2_texts) (String.length patch) dt2 ])

let delta_decode ~ctx s =
  Support.Decode_error.guard ~decoder:"delta" (fun () ->
      let b = Context.require_base ~decoder:"delta" ctx in
      let out, dt =
        timed (fun () ->
            let r = Support.Frame.reader ~decoder:"delta" s in
            Support.Frame.expect_magic r delta_magic;
            let base_digest = Support.Frame.str ~what:"base digest" r in
            if base_digest <> b.Context.base_digest then
              Support.Frame.fail r Support.Decode_error.Inconsistent
                "patch was built against a different base artifact";
            let base = Ir.Parse_ir.program_of_string b.Context.ir_text in
            let base_texts =
              Array.of_list
                (List.map Ir.Printer.func_to_string base.Ir.Tree.funcs)
            in
            let gz = Support.Frame.str ~what:"globals" r in
            let globals = Zip.Deflate.decompress_exn gz in
            let nfuncs = Support.Frame.u r in
            Support.Frame.check_count r nfuncs "function";
            let funcs =
              List.init nfuncs (fun _ ->
                  match Support.Frame.byte r ~what:"patch op" () with
                  | 'C' ->
                    let i = Support.Frame.u r in
                    if i < 0 || i >= Array.length base_texts then
                      Support.Frame.fail r Support.Decode_error.Bad_value
                        (Printf.sprintf "base function index %d outside %d" i
                           (Array.length base_texts));
                    let crc = Support.Frame.u r in
                    if crc <> Support.Util.crc32 base_texts.(i) then
                      Support.Frame.fail r Support.Decode_error.Inconsistent
                        (Printf.sprintf "base function %d does not match patch CRC" i);
                    base_texts.(i)
                  | 'N' ->
                    Zip.Deflate.decompress_exn
                      (Support.Frame.str ~what:"function body" r)
                  | c ->
                    Support.Frame.fail r Support.Decode_error.Bad_value
                      (Printf.sprintf "unknown patch op %C" c))
            in
            Support.Frame.expect_end r "patch";
            let pieces = (if globals = "" then [] else [ globals ]) @ funcs in
            let text = String.concat "\n" pieces ^ "\n" in
            (* re-parse + re-print: rejects ill-formed patched text and
               guarantees the output is the canonical printed IR, byte
               for byte what a full wire serve decodes to *)
            printed (Ir.Parse_ir.program_of_string text))
      in
      (out, [ st "apply" (String.length s) (String.length out) dt ]))

let delta_codec =
  make_ctx ~name:"delta" ~tag:"d" ~encode:delta_encode ~decode:delta_decode

(* ---- registry ---- *)

type needs = [ `None | `Shared_dict of string | `Base of string ]

type entry = {
  codec : t;
  modes : Scenario.Delivery.representation list;
      (* whole-image delivery modes this codec can serve; [] for
         stage/streaming-only codecs *)
  streamable : bool;  (* served function-at-a-time over a session *)
  pageable : bool;
      (* executable under a demand pager: either random-access
         chunk decompression (Scenario.Paged.run_vm) or
         interpretable-in-place under a residency budget (run_brisc) *)
  needs : needs;
      (* context the client must hold (by digest) before this
         representation may be served to it. [`Base ""] marks the
         per-request update channel: the digest is whatever prior
         artifact the client advertises, not a fixed one. *)
}

let entries : entry list ref = ref []

let register ?(modes = []) ?(streamable = false) ?(pageable = false)
    ?(needs = `None) codec =
  List.iter
    (fun e ->
      if e.codec.name = codec.name then
        invalid_arg ("Codec.register: duplicate name " ^ codec.name);
      if e.codec.tag = codec.tag then
        invalid_arg ("Codec.register: duplicate tag " ^ codec.tag))
    !entries;
  entries := !entries @ [ { codec; modes; streamable; pageable; needs } ]

let all () = !entries

(* artifact = something the delivery server stores and serves, whether
   whole-image (modes) or streamed (streamable). Per-request contexted
   representations (`Base) are not storable artifacts — the server
   derives them on demand against the base the client holds. *)
let artifacts () =
  List.filter
    (fun e ->
      (e.modes <> [] || e.streamable)
      && match e.needs with `Base _ -> false | _ -> true)
    !entries

let find name = List.find_opt (fun e -> e.codec.name = name) !entries

let find_exn name =
  match find name with
  | Some e -> e
  | None -> invalid_arg ("Codec.find_exn: unknown codec " ^ name)

let find_tag tag = List.find_opt (fun e -> e.codec.tag = tag) !entries

(* Registration order is the serving tie-break order: with equal
   modeled total time the earlier registration wins, which preserves
   the pre-registry selector's preferences. *)
let () =
  register ~modes:[ Scenario.Delivery.Raw_native ] native_codec;
  register ~modes:[ Scenario.Delivery.Gzipped_native ] gzip_native_codec;
  register ~modes:[ Scenario.Delivery.Wire_format ] wire_codec;
  register ~modes:[ Scenario.Delivery.Wire_format ] wire_range_codec;
  register ~streamable:true ~pageable:true chunked_codec;
  register
    ~modes:[ Scenario.Delivery.Brisc_jit; Scenario.Delivery.Brisc_interp ]
    ~pageable:true brisc_codec;
  register deflate_codec;
  (* the -opt pair rides at the end so existing entries keep winning
     score ties (the fold keeps the earlier entry on equal totals) *)
  register ~modes:[ Scenario.Delivery.Gzipped_native ] deflate_opt_codec;
  register ~modes:[ Scenario.Delivery.Wire_format ] wire_range_opt_codec;
  (* contexted representations ride last for the same reason; they are
     only ever served to clients that advertise the matching digest *)
  register
    ~modes:[ Scenario.Delivery.Wire_format ]
    ~needs:(`Shared_dict (Context.builtin_digest ()))
    wire_shared_codec;
  register
    ~modes:[ Scenario.Delivery.Brisc_jit; Scenario.Delivery.Brisc_interp ]
    ~needs:(`Shared_dict (Context.builtin_digest ()))
    brisc_shared_codec;
  register ~modes:[ Scenario.Delivery.Wire_format ] ~needs:(`Base "") delta_codec
