(* The composable codec layer.

   Every representation the tree can produce — the paper's wire format,
   the BRISC container, deflated native images — is a [Codec.t]: a
   named encode/decode pair whose encode emits a per-stage trace
   (bytes-in / bytes-out / wall time per pipeline stage) and whose
   decode is TOTAL, returning a typed [Decode_error.t] on hostile
   input. [compose] chains a structural front codec with byte-to-byte
   back stages, concatenating their traces; the registry makes the
   set of representations an open, one-registration-per-format list
   that the delivery server, the benches, and the fuzz harness all
   derive their menus from. *)

type stage = {
  stage : string;
  bytes_in : int;
  bytes_out : int;
  wall_s : float;
}

type trace = stage list

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let st name bytes_in bytes_out wall_s = { stage = name; bytes_in; bytes_out; wall_s }

(* ---- sources ---- *)

module Source = struct
  (* The views of one program a codec may consume, all lazy so a codec
     forces only what its pipeline needs (the wire family reads the IR,
     BRISC the VM program, the native family the machine image), and
     shared so sibling codecs reuse the forced value. *)
  type t = {
    ir : Ir.Tree.program Lazy.t;
    vm : Vm.Isa.vprogram Lazy.t;
    native : string Lazy.t;
    payload : string Lazy.t;  (* the byte view: native image, or raw bytes *)
    pool : Support.Pool.t option;
  }

  let of_ir ?pool ?vm:vm_prog ?native:native_img (p : Ir.Tree.program) =
    let ir = Lazy.from_val p in
    let vm =
      match vm_prog with
      | Some v -> Lazy.from_val v
      | None -> lazy (Vm.Codegen.gen_program p)
    in
    let native =
      match native_img with
      | Some img -> Lazy.from_val img
      | None ->
        lazy
          (Native.Mach.encode_program
             (Native.Compile.compile_program (Lazy.force vm)))
    in
    { ir; vm; native; payload = native; pool }

  (* As [of_ir], but the native view is an arbitrary suspension — e.g.
     a cache-aware fetch — forced only by codecs that need it. *)
  let of_ir_lazy ?pool ?vm:vm_prog ~native (p : Ir.Tree.program) =
    let vm =
      match vm_prog with
      | Some v -> Lazy.from_val v
      | None -> lazy (Vm.Codegen.gen_program p)
    in
    { ir = Lazy.from_val p; vm; native; payload = native; pool }

  let of_bytes ?pool s =
    let no what = invalid_arg ("Codec.Source: byte source has no " ^ what) in
    { ir = lazy (no "IR"); vm = lazy (no "VM program"); native = lazy s;
      payload = lazy s; pool }

  let ir t = Lazy.force t.ir
  let vm t = Lazy.force t.vm
  let native t = Lazy.force t.native
  let payload t = Lazy.force t.payload
  let pool t = t.pool
end

(* ---- codecs ---- *)

type t = {
  name : string;
  tag : string;
  encode : Source.t -> string * trace;
  decode : string -> (string * trace, Support.Decode_error.t) result;
}

let name c = c.name
let tag c = c.tag
let encode c src = c.encode src
let encode_bytes c s = c.encode (Source.of_bytes s)
let decode c s = c.decode s

let make ~name ~tag ~encode ~decode = { name; tag; encode; decode }

(* [compose front back]: encode runs [front] on the source, then pipes
   its bytes through [back] (which must be a pure byte codec — its
   encode may only read the payload view); decode inverts [back] first,
   then [front]. Traces concatenate in the order the work happened. *)
let compose ?name:n ?tag:tg front back =
  let name = match n with Some s -> s | None -> front.name ^ "|" ^ back.name in
  let tag = match tg with Some s -> s | None -> front.tag ^ back.tag in
  {
    name;
    tag;
    encode =
      (fun src ->
        let b1, t1 = front.encode src in
        let b2, t2 = back.encode (Source.of_bytes ?pool:src.Source.pool b1) in
        (b2, t1 @ t2));
    decode =
      (fun s ->
        Result.bind (back.decode s) (fun (b1, t2) ->
            Result.map (fun (b0, t1) -> (b0, t2 @ t1)) (front.decode b1)));
  }

(* ---- the built-in pipeline stages ---- *)

(* LZ77 token stream footprint: a literal costs ~1 byte, a match ~3
   (length class + distance class + extra bits) before entropy coding.
   Only used for the trace; the real sizing happens in the Huffman
   stage. *)
let token_bytes tokens =
  List.fold_left
    (fun a t -> a + match t with Zip.Lz77.Literal _ -> 1 | Zip.Lz77.Match _ -> 3)
    0 tokens

let native_codec =
  make ~name:"native" ~tag:"n"
    ~encode:(fun src ->
      let img, dt = timed (fun () -> Source.native src) in
      let n = String.length img in
      (img, [ st "emit" n n dt ]))
    ~decode:(fun s ->
      (* raw machine images carry no framing to check *)
      Ok (s, [ st "identity" (String.length s) (String.length s) 0.0 ]))

let deflate_codec =
  make ~name:"deflate" ~tag:"z"
    ~encode:(fun src ->
      let s = Source.payload src in
      let tokens, dt1 = timed (fun () -> Zip.Lz77.tokenize s) in
      let tb = token_bytes tokens in
      let z, dt2 =
        timed (fun () ->
            Zip.Deflate.encode_tokens ~source:s ~orig_len:(String.length s)
              tokens)
      in
      (z, [ st "lz77" (String.length s) tb dt1;
            st "huffman" tb (String.length z) dt2 ]))
    ~decode:(fun z ->
      Support.Decode_error.guard ~decoder:"deflate" (fun () ->
          let s, dt = timed (fun () -> Zip.Deflate.decompress_exn z) in
          (s, [ st "inflate" (String.length z) (String.length s) dt ])))

let gzip_native_codec = compose ~name:"gzip+native" ~tag:"g" native_codec deflate_codec

let printed ir = Ir.Printer.program_to_string ir

let wire_bundle_codec =
  make ~name:"wire-bundle" ~tag:"W"
    ~encode:(fun src ->
      let ir = Source.ir src in
      let in0 = String.length (printed ir) in
      let pz, dt1 = timed (fun () -> Wire.patternize ir) in
      let sy = Wire.symbols pz in
      let bundle, dt2 =
        timed (fun () ->
            Wire.bundle_of_patternized ?pool:(Source.pool src) pz)
      in
      (bundle,
       [ st "patternize" in0 sy dt1;
         st "mtf+huffman" sy (String.length bundle) dt2 ]))
    ~decode:(fun bundle ->
      Support.Decode_error.guard ~decoder:"wire" (fun () ->
          let p, dt = timed (fun () -> Wire.program_of_bundle_exn bundle) in
          let txt = printed p in
          (txt, [ st "unbundle" (String.length bundle) (String.length txt) dt ])))

(* The final entropy stage of the wire pipeline, tagged into the stream
   ([D] / [A<order>] / [L]) so decode is self-describing: any final
   codec decodes any tag. *)
let final_decode body =
  Support.Decode_error.guard ~decoder:"wire" (fun () ->
      let name =
        if String.length body = 0 then "inflate"
        else
          match body.[0] with
          | 'A' -> "range-decode"
          | 'L' -> "lza-decode"
          | _ -> "inflate"
      in
      let bundle, dt = timed (fun () -> Wire.unwrap_final_stage_exn body) in
      (bundle, [ st name (String.length body) (String.length bundle) dt ]))

let final_deflate_codec =
  make ~name:"final-deflate" ~tag:"D"
    ~encode:(fun src ->
      let bundle = Source.payload src in
      let tokens, dt1 = timed (fun () -> Zip.Lz77.tokenize bundle) in
      let tb = token_bytes tokens in
      let z, dt2 =
        timed (fun () ->
            "D"
            ^ Zip.Deflate.encode_tokens ~source:bundle
                ~orig_len:(String.length bundle) tokens)
      in
      (z, [ st "lz77" (String.length bundle) tb dt1;
            st "huffman" tb (String.length z) dt2 ]))
    ~decode:final_decode

let final_range_codec ~order =
  make ~name:(Printf.sprintf "final-range%d" order) ~tag:"A"
    ~encode:(fun src ->
      let bundle = Source.payload src in
      let z, dt =
        timed (fun () -> Wire.apply_final_stage (Wire.Arith order) bundle)
      in
      (z, [ st (Printf.sprintf "range-%d" order) (String.length bundle)
              (String.length z) dt ]))
    ~decode:final_decode

(* The ratio-maximal final stage: try the order-2 range coder and the
   LZ+range token stream ({!Zip.Lza}) and keep the smaller, so this
   codec's output never exceeds wire+range's. The tag byte inside the
   body records which one won; [final_decode] dispatches on it. *)
let final_range_opt_codec =
  make ~name:"final-range-opt" ~tag:"L"
    ~encode:(fun src ->
      let bundle = Source.payload src in
      let z, dt =
        timed (fun () ->
            let a = Wire.apply_final_stage (Wire.Arith 2) bundle in
            let b = Wire.apply_final_stage Wire.Lz_arith bundle in
            if String.length b < String.length a then b else a)
      in
      (z, [ st "range-opt" (String.length bundle) (String.length z) dt ]))
    ~decode:final_decode

let crc_codec =
  make ~name:"crc32" ~tag:"+"
    ~encode:(fun src ->
      let body = Source.payload src in
      let sealed, dt = timed (fun () -> Support.Frame.seal body) in
      (sealed, [ st "crc32" (String.length body) (String.length sealed) dt ]))
    ~decode:(fun s ->
      Support.Decode_error.guard ~decoder:"wire" (fun () ->
          let off, dt = timed (fun () -> Support.Frame.verify ~decoder:"wire" s) in
          let body = String.sub s off (String.length s - off) in
          (body, [ st "crc32" (String.length s) (String.length body) dt ])))

let wire_codec =
  compose ~name:"wire" ~tag:"w"
    (compose wire_bundle_codec final_deflate_codec)
    crc_codec

let wire_range_codec =
  compose ~name:"wire+range" ~tag:"r"
    (compose wire_bundle_codec (final_range_codec ~order:2))
    crc_codec

let wire_range_opt_codec =
  compose ~name:"wire+range-opt" ~tag:"R"
    (compose wire_bundle_codec final_range_opt_codec)
    crc_codec

(* Bit-optimal parse under the block's own Huffman costs; both the
   lazy and the optimal parse are encoded and the smaller kept, so the
   output never exceeds [deflate]'s and decodes with the same
   inflater. *)
let deflate_opt_codec =
  make ~name:"deflate-opt" ~tag:"Z"
    ~encode:(fun src ->
      let s = Source.payload src in
      let orig_len = String.length s in
      let (seed, opt), dt1 =
        timed (fun () ->
            let seed = Zip.Lz77.tokenize s in
            (seed, Zip.Deflate.tokenize_opt ~seed s))
      in
      let tb = token_bytes opt in
      let z, dt2 =
        timed (fun () ->
            let a =
              Zip.Deflate.encode_tokens ~source:s ~packed:true ~orig_len seed
            in
            let b =
              Zip.Deflate.encode_tokens ~source:s ~packed:true ~orig_len opt
            in
            if String.length b < String.length a then b else a)
      in
      (z,
       [ st "lz77-opt" orig_len tb dt1;
         st "huffman" tb (String.length z) dt2 ]))
    ~decode:(fun z ->
      Support.Decode_error.guard ~decoder:"deflate" (fun () ->
          let s, dt = timed (fun () -> Zip.Deflate.decompress_exn z) in
          (s, [ st "inflate" (String.length z) (String.length s) dt ])))

let chunked_codec =
  make ~name:"chunked-wire" ~tag:"c"
    ~encode:(fun src ->
      let ir = Source.ir src in
      let in0 = String.length (printed ir) in
      let img, dt1 =
        timed (fun () -> Wire.Chunked.compress ?pool:(Source.pool src) ir)
      in
      let chunk_sum =
        List.fold_left
          (fun a n -> a + Wire.Chunked.chunk_size img n)
          0
          (Wire.Chunked.function_names img)
      in
      let bytes, dt2 = timed (fun () -> Wire.Chunked.to_bytes img) in
      (bytes,
       [ st "chunk+wire" in0 chunk_sum dt1;
         st "frame" chunk_sum (String.length bytes) dt2 ]))
    ~decode:(fun s ->
      Support.Decode_error.guard ~decoder:"chunked" (fun () ->
          let img, dt1 = timed (fun () -> Wire.Chunked.of_bytes_exn s) in
          let p, dt2 = timed (fun () -> Wire.Chunked.decompress_all img) in
          let txt = printed p in
          let chunk_sum =
            List.fold_left
              (fun a n -> a + Wire.Chunked.chunk_size img n)
              0
              (Wire.Chunked.function_names img)
          in
          (txt,
           [ st "unframe" (String.length s) chunk_sum dt1;
             st "unchunk" chunk_sum (String.length txt) dt2 ])))

let brisc_codec =
  make ~name:"brisc" ~tag:"b"
    ~encode:(fun src ->
      let vm = Source.vm src in
      let vm_bytes = Vm.Encode.program_size vm in
      let image, dt1 =
        timed (fun () -> Brisc.compress ?pool:(Source.pool src) vm)
      in
      let code_bytes =
        Array.fold_left
          (fun a f -> a + String.length f.Brisc.Emit.code)
          0 image.Brisc.Emit.ifuncs
      in
      let bytes, dt2 = timed (fun () -> Brisc.to_bytes image) in
      (bytes,
       [ st "dict+markov" vm_bytes code_bytes dt1;
         st "container" code_bytes (String.length bytes) dt2 ]))
    ~decode:(fun s ->
      Support.Decode_error.guard ~decoder:"brisc" (fun () ->
          let img, dt = timed (fun () -> Brisc.of_bytes_exn s) in
          (* canonical form: the re-serialized container, which
             round-trips byte-for-byte for well-formed input *)
          let out = Brisc.to_bytes img in
          (out, [ st "parse" (String.length s) (String.length out) dt ])))

(* ---- registry ---- *)

type entry = {
  codec : t;
  modes : Scenario.Delivery.representation list;
      (* whole-image delivery modes this codec can serve; [] for
         stage/streaming-only codecs *)
  streamable : bool;  (* served function-at-a-time over a session *)
}

let entries : entry list ref = ref []

let register ?(modes = []) ?(streamable = false) codec =
  List.iter
    (fun e ->
      if e.codec.name = codec.name then
        invalid_arg ("Codec.register: duplicate name " ^ codec.name);
      if e.codec.tag = codec.tag then
        invalid_arg ("Codec.register: duplicate tag " ^ codec.tag))
    !entries;
  entries := !entries @ [ { codec; modes; streamable } ]

let all () = !entries

(* artifact = something the delivery server stores and serves, whether
   whole-image (modes) or streamed (streamable) *)
let artifacts () = List.filter (fun e -> e.modes <> [] || e.streamable) !entries

let find name = List.find_opt (fun e -> e.codec.name = name) !entries

let find_exn name =
  match find name with
  | Some e -> e
  | None -> invalid_arg ("Codec.find_exn: unknown codec " ^ name)

let find_tag tag = List.find_opt (fun e -> e.codec.tag = tag) !entries

(* Registration order is the serving tie-break order: with equal
   modeled total time the earlier registration wins, which preserves
   the pre-registry selector's preferences. *)
let () =
  register ~modes:[ Scenario.Delivery.Raw_native ] native_codec;
  register ~modes:[ Scenario.Delivery.Gzipped_native ] gzip_native_codec;
  register ~modes:[ Scenario.Delivery.Wire_format ] wire_codec;
  register ~modes:[ Scenario.Delivery.Wire_format ] wire_range_codec;
  register ~streamable:true chunked_codec;
  register
    ~modes:[ Scenario.Delivery.Brisc_jit; Scenario.Delivery.Brisc_interp ]
    brisc_codec;
  register deflate_codec;
  (* the -opt pair rides at the end so existing entries keep winning
     score ties (the fold keeps the earlier entry on equal totals) *)
  register ~modes:[ Scenario.Delivery.Gzipped_native ] deflate_opt_codec;
  register ~modes:[ Scenario.Delivery.Wire_format ] wire_range_opt_codec
