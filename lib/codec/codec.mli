(** The composable codec layer: every representation in the tree as a
    named encode/decode pair with a per-stage trace, plus a registry
    the delivery server, benches, and fuzz harness derive their
    representation menus from. Adding a representation is one
    {!register} call. *)

type stage = {
  stage : string;      (** pipeline stage name, e.g. ["mtf+huffman"] *)
  bytes_in : int;      (** stage input footprint (bytes, or symbols for
                           the patternize stage, whose output is not yet
                           serialized) *)
  bytes_out : int;
  wall_s : float;
}

type trace = stage list
(** Stages in the order the work happened. *)

(** The views of one program a codec may consume — IR, VM program,
    native image, raw payload bytes — all lazy and shared, so a codec
    forces only what its pipeline needs and sibling codecs reuse it. *)
module Source : sig
  type t

  val of_ir :
    ?pool:Support.Pool.t -> ?vm:Vm.Isa.vprogram -> ?native:string ->
    Ir.Tree.program -> t
  (** A program source. [vm]/[native] short-circuit those views when the
      caller already has them (prefilled views are also safe to share
      across parallel encoders); [pool] parallelizes BRISC dictionary
      construction. *)

  val of_ir_lazy :
    ?pool:Support.Pool.t -> ?vm:Vm.Isa.vprogram -> native:string Lazy.t ->
    Ir.Tree.program -> t
  (** As {!of_ir}, but the native view is an arbitrary suspension (e.g.
      a cache-aware fetch), forced only by codecs that need it. *)

  val of_bytes : ?pool:Support.Pool.t -> string -> t
  (** A raw byte source, for pure byte codecs; forcing its IR or VM
      view raises [Invalid_argument]. *)

  val ir : t -> Ir.Tree.program
  val vm : t -> Vm.Isa.vprogram
  val native : t -> string
  val payload : t -> string
  val pool : t -> Support.Pool.t option
end

type t
(** A codec: name, one-letter artifact tag, tracing encode, and a
    TOTAL decode — hostile input yields a typed error, never an
    exception. Decode returns the codec's canonical expansion (the
    inflated image for byte codecs, the printed IR for the wire family,
    the re-serialized container for BRISC). *)

val name : t -> string
val tag : t -> string

val encode : t -> Source.t -> string * trace
val encode_bytes : t -> string -> string * trace
(** [encode] on {!Source.of_bytes}; only for pure byte codecs. *)

val decode : t -> string -> (string * trace, Support.Decode_error.t) result

val make :
  name:string ->
  tag:string ->
  encode:(Source.t -> string * trace) ->
  decode:(string -> (string * trace, Support.Decode_error.t) result) ->
  t

val compose : ?name:string -> ?tag:string -> t -> t -> t
(** [compose front back] pipes [front]'s encoded bytes through [back]
    (a pure byte codec); decode inverts [back] then [front]; traces
    concatenate in work order. *)

(** {2 Built-in codecs}

    All byte-identical to the historical formats (pinned by tests). *)

val native_codec : t

val deflate_codec : t
(** lz77 ∘ huffman over the payload. *)

val gzip_native_codec : t
(** native ∘ deflate. *)

val wire_codec : t
(** patternize ∘ mtf+huffman ∘ deflate ∘ crc32. *)

val wire_range_codec : t
(** wire with an order-2 range coder final stage. *)

val deflate_opt_codec : t
(** {!deflate_codec} with the bit-optimal LZ77 parse
    ({!Zip.Deflate.tokenize_opt}); never larger, same inflater. *)

val wire_range_opt_codec : t
(** wire with the ratio-maximal final stage: the smaller of the
    order-2 range coder and the bit-optimal LZ + range-coded token
    stream ({!Zip.Lza}); never larger than {!wire_range_codec}, and
    the self-describing stage tag means either decodes both. *)

val chunked_codec : t
(** Function-at-a-time wire container. *)

val brisc_codec : t
(** §4 byte-coded compressed executable. *)

(** {2 Registry} *)

type entry = {
  codec : t;
  modes : Scenario.Delivery.representation list;
      (** whole-image delivery modes this codec can serve; [[]] for
          stage or streaming-only codecs *)
  streamable : bool;
      (** served function-at-a-time over a chunked session *)
}

val register : ?modes:Scenario.Delivery.representation list ->
  ?streamable:bool -> t -> unit
(** Add a codec to the registry. Names and tags must be unique.
    Registration order is the serving tie-break order. *)

val all : unit -> entry list
(** Every registered codec, in registration order. *)

val artifacts : unit -> entry list
(** The entries the delivery server stores and serves (whole-image
    modes or streamable). *)

val find : string -> entry option
val find_exn : string -> entry
val find_tag : string -> entry option
