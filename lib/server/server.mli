(** The code-delivery server (ROADMAP: serve compressed code at scale).

    Sits on top of the compressors the paper built: a content-addressed
    artifact store compresses each published program once per
    representation and serves it many times through a byte-budgeted LRU
    {!Cache}; an adaptive selector picks, per request, the total-time-
    minimizing representation the client {!Profile} can use (the
    paper's modem/LAN crossover applied online via
    {!Scenario.Delivery.best_of}); paging clients stream one
    {!Wire.Chunked} function chunk per request over a resumable
    {!Session}; and {!Stats.report} snapshots cache behaviour, bytes
    served per representation and compression-time histograms.

    [Server] itself is the engine: [create], [publish], [fetch],
    [open_session], [report]. See [bin/mccd.ml] for the driver. *)

module Artifact = Artifact
module Cache = Cache
module Stats = Stats
module Profile = Profile
module Store = Store
module Session = Session
module Workload = Workload

include module type of Engine
