(** The code-delivery engine: content-addressed artifact store + LRU
    cache behind a per-request adaptive representation selector, plus
    streaming chunked sessions. *)

type t

val create :
  ?pool:Support.Pool.t ->
  ?shards:int ->
  ?budget_bytes:int ->
  ?rates:Scenario.Delivery.rates ->
  ?min_session_cycles:int ->
  ?policy:Tune.Policy.t ->
  unit ->
  t
(** [policy] is a tuned serving table ([mcctune] / [make tune]):
    {!fetch} consults it before live scoring, and falls back to live
    scoring whenever the lookup misses or its pick is infeasible or
    quarantined for the request at hand.
    [budget_bytes] bounds the artifact cache (default 256 KiB).
    [rates] parameterize the delivery-time model. [min_session_cycles]
    (default 120M — one nominal CPU-second) floors a program's modelled
    execution so preparation cost amortizes over a believable session,
    as in the bench's Table 2. [pool] (default {!Support.Pool.shared})
    parallelizes compression on multi-core hosts — see {!Store.create};
    served bytes and counters are identical at any pool size.
    [shards] (default 1) lock-stripes the artifact cache for the
    multi-domain daemon — see {!Store.create}; every engine operation
    is domain-safe, and materialization is single-flight. *)

val publish : t -> ?run_cycles:int -> ?input:string -> Ir.Tree.program -> string
(** See {!Store.publish}. *)

val digests : t -> string list
val sizes_of : t -> string -> Scenario.Delivery.sizes
val store : t -> Store.t

type response = {
  digest : string;
  chosen : Scenario.Delivery.representation;  (** the delivery mode picked *)
  artifact : Artifact.repr;                   (** the artifact serving it *)
  label : string;
      (** human-readable (artifact, mode) pair, e.g. ["wire+range+JIT"] *)
  bytes : string;
  size : int;
  cache_hit : bool;
  outcome : Scenario.Delivery.outcome;        (** modelled client timing *)
  degraded_from : string option;
      (** the selector's original choice (its {!label}), when its
          artifact failed verification and this response fell back to
          the next-best candidate *)
  context : string option;
      (** digest of the held context this serve was encoded against
          (the shared dictionary, or the delta base artifact); [None]
          for context-free representations. The client must decode
          with the matching context. *)
}

val select :
  t -> string -> Profile.t ->
  Scenario.Delivery.representation * Scenario.Delivery.outcome
(** The selector alone (no bytes served) — what {!fetch} will choose. *)

val outcome_for :
  t -> string -> Profile.t -> Scenario.Delivery.representation ->
  Scenario.Delivery.outcome
(** Modelled client timing of one {e fixed} representation for this
    profile — what a one-size-fits-all server would cost, which the
    bench compares against the adaptive selector. *)

val fetch : ?held:string list -> t -> string -> Profile.t -> response
(** One whole-image request: enumerate the registry's (artifact, mode)
    candidates the profile can use, pick the total-time minimizer over
    each artifact's actual stored size, materialize it (cache-first),
    run it through its codec's total decoder, account. An artifact that
    fails verification is quarantined (recorded in {!Stats}, rebuilt
    fresh by the store on its next request) and the fetch degrades to
    the best remaining candidate — see [degraded_from] in the
    {!response}.

    [held] (default empty) is the set of digests the client advertises
    already holding: the shared dictionary's digest unlocks the
    shared-dictionary codecs, and the digest of a previously fetched
    program unlocks the delta update channel against that base. Each
    unlocked representation competes on its actual patch/artifact
    bytes; the contexted serve is verified by decoding against the
    same context the client will use, and a failing one is
    quarantined per context. @raise Not_found for unknown digests. *)

val open_session : t -> string -> Session.t
(** Start a streaming chunked session for a paging client. *)

val open_session_for :
  t -> codec:string -> string ->
  (Session.t, [ `Unknown_codec of string | `Not_streamable of string ]) result
(** As {!open_session}, but over a client-named codec. The registry's
    [streamable] flag is honored: a codec that is not registered
    streamable is refused with a typed error instead of opening a
    session it cannot serve. [`Unknown_codec] covers names the registry
    has never seen.
    @raise Not_found for unknown digests. *)

val session_request :
  t -> Session.t -> seq:int -> string -> (string, string) result
(** {!Session.request} with engine-level request accounting — every
    chunk request (including a resume retry) is a request. *)

val report : t -> Stats.report
