(** PRNG-driven synthetic workload over the corpus: Zipf-flavoured
    program popularity, per-request client profiles, streaming clients
    that fetch exactly the functions a real run touches (with dropped
    responses to exercise resume). Deterministic for a given seed. *)

type entry = {
  name : string;
  digest : string;
  fn_count : int;
  wanted : string list;
      (** functions a real run references, in first-reference order *)
}

val catalog_entry : Engine.t -> Corpus.Programs.entry -> entry
(** Publish one corpus program and derive its entry: digest, function
    count, and the functions a real run touches (the paging trace). *)

val build_catalog : ?generated:Corpus.Gen.profile list -> Engine.t -> entry list
(** Publish every hand-written corpus program plus [generated]
    many-function programs (default: a 24- and a 40-function program —
    the partial-call workloads where chunked delivery pays). *)

val default_generated : Corpus.Gen.profile list

type config = { requests : int; seed : int64; drop_pct : int }

val default_config : config
(** 120 requests, seed 42, 10% of chunk responses dropped. *)

val default_profiles : Profile.t list
(** modem, lan, embedded (streaming), datacenter. *)

type baseline = {
  fixed : Scenario.Delivery.representation;
  modelled_s : float;  (** summed client delivery time over all fetches *)
  wire_bytes : int;    (** summed bytes that repr would have shipped *)
}

type summary = {
  requests : int;
  fetches : int;
  chunk_requests : int;
  sessions_completed : int;
  selections : ((string * string) * int) list;
      (** (profile, representation) -> count over the fetch path *)
  distinct_reprs : string list;
  adaptive_s : float;          (** modelled time of the adaptive choices *)
  adaptive_fetch_bytes : int;  (** bytes actually shipped by fetches *)
  baselines : baseline list;
      (** one-size-fits-all counterfactuals over the same request
          stream: all wire, all BRISC+JIT, all gzip+native. When the
          fixed representation is infeasible for a client (no JIT,
          wrong ISA) the policy falls back to that client's adaptive
          choice, as a real server would have to. *)
  report : Stats.report;
}

type observation =
  | Obs_fetch of Profile.t * entry
  | Obs_stream of Profile.t * entry
  | Obs_resume of Profile.t * entry
      (** What one workload step did, as seen from the outside — enough
          for a trace recorder to reconstruct the request. Streams cover
          handshakes and ordinary chunk requests; resumes are the
          retransmit paths (dropped response, late duplicate). *)

val run :
  Engine.t -> ?profiles:Profile.t list -> ?config:config ->
  ?observe:(observation -> unit) -> entry list -> summary
(** [observe] (default: ignore) sees every request as it is issued, in
    issue order. *)

val print_summary : summary -> unit
