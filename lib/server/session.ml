(* Streaming chunked-delivery session.

   Protocol, one function chunk per request:

   - handshake: the client opens a session on a digest and receives the
     index — every function name with its compressed chunk size (plus
     the globals, which ride along with the handshake);
   - requests: the client asks for (seq, name); the server answers with
     the function's chunk, a complete single-function wire image the
     client expands with [Wire.decompress];
   - resume: requests carry a sequence number. A client that never saw
     the answer to seq N just asks for N again and the server
     retransmits the saved response byte-for-byte; only an answered
     request advances the window. Anything other than the last or the
     next sequence number is rejected.

   A paging client therefore materializes exactly the functions it
   calls: the bytes on the wire are the handshake plus the chunks
   actually requested, which the stats layer compares against shipping
   the monolithic wire image. *)

type t = {
  digest : string;
  image : Wire.Chunked.t;
  stats : Stats.t;
  mutable next_seq : int;
  mutable last : (int * string * string) option;  (* seq, name, payload *)
  delivered : (string, unit) Hashtbl.t;
}

(* What the handshake costs on the wire: each index row is a
   length-prefixed name plus a uleb-ish size field; the globals of the
   chunked image travel with it. *)
let handshake_bytes image =
  let row name =
    String.length name + 1 + 4 (* length prefix + chunk size field *)
  in
  List.fold_left (fun a n -> a + row n) 8 (Wire.Chunked.function_names image)

let open_ store stats digest =
  let m = Store.meta store digest in
  let bytes, _hit = Store.materialize store digest Artifact.Chunked_wire in
  let image = Wire.Chunked.of_bytes bytes in
  let hs = handshake_bytes image in
  Stats.record_session_opened stats ~handshake_bytes:hs
    ~wire_equiv_bytes:m.Store.sizes.Scenario.Delivery.wire_bytes;
  {
    digest;
    image;
    stats;
    next_seq = 0;
    last = None;
    delivered = Hashtbl.create 16;
  }

let digest t = t.digest

let index t =
  List.map
    (fun n -> (n, Wire.Chunked.chunk_size t.image n))
    (Wire.Chunked.function_names t.image)

let delivered t = Hashtbl.length t.delivered
let next_seq t = t.next_seq

let request t ~seq name =
  match t.last with
  | Some (s, n, payload) when seq = s ->
    if n <> name then
      Error
        (Printf.sprintf "retransmit of seq %d must repeat %S, got %S" seq n
           name)
    else begin
      (* the previous response was lost in flight; resend it verbatim *)
      Stats.record_chunk t.stats ~bytes:(String.length payload)
        ~retransmit:true;
      Ok payload
    end
  | _ ->
    if seq <> t.next_seq then
      Error
        (Printf.sprintf "bad sequence number %d (expected %d)" seq t.next_seq)
    else begin
      match Wire.Chunked.chunk t.image name with
      | exception Not_found ->
        Error (Printf.sprintf "no function %S in %s" name t.digest)
      | payload ->
        Stats.record_chunk t.stats ~bytes:(String.length payload)
          ~retransmit:false;
        Hashtbl.replace t.delivered name ();
        t.last <- Some (seq, name, payload);
        t.next_seq <- seq + 1;
        Ok payload
    end
