(* Streaming chunked-delivery session.

   Protocol, one function chunk per request:

   - handshake: the client opens a session on a digest and receives the
     index — every function name with its compressed chunk size (plus
     the globals, which ride along with the handshake);
   - requests: the client asks for (seq, name); the server answers with
     the function's chunk, a complete single-function wire image the
     client expands with [Wire.decompress];
   - resume: requests carry a sequence number. A client that never saw
     the answer to seq N just asks for N again and the server
     retransmits the saved response byte-for-byte; only a new answered
     request advances the window. Retransmits are accepted for ANY
     previously answered sequence number, not just the last one — a
     client draining a reorder buffer may repeat an old request after
     newer ones succeeded, and that must not disturb the session's
     offset. A request that is neither a faithful repeat nor the next
     sequence number is rejected.

   A paging client therefore materializes exactly the functions it
   calls: the bytes on the wire are the handshake plus the chunks
   actually requested, which the stats layer compares against shipping
   the monolithic wire image. *)

type t = {
  digest : string;
  image : Wire.Chunked.t;
  stats : Stats.t;
  mutable next_seq : int;
  served : (int, string * string) Hashtbl.t;  (* seq -> name, payload *)
  delivered : (string, unit) Hashtbl.t;
}

(* What the handshake costs on the wire: each index row is a
   length-prefixed name plus a uleb-ish size field; the globals of the
   chunked image travel with it. *)
let handshake_bytes image =
  let row name =
    String.length name + 1 + 4 (* length prefix + chunk size field *)
  in
  List.fold_left (fun a n -> a + row n) 8 (Wire.Chunked.function_names image)

(* Verify the chunked artifact before trusting it with a session. A
   corrupt cached image is quarantined and rebuilt fresh from the
   published IR — one retry heals cache-level damage; a second failure
   means the source itself can't produce a sane image, so it escapes as
   the typed decode error. *)
let chunked_image store stats digest artifact =
  let decode () =
    let bytes, _hit = Store.materialize store digest artifact in
    Wire.Chunked.of_bytes bytes
  in
  match decode () with
  | Ok image -> image
  | Error e ->
    Stats.record_decode_failure stats ~digest artifact e;
    Store.quarantine store digest artifact;
    (match decode () with
    | Ok image -> image
    | Error e -> raise (Support.Decode_error.Fail e))

let open_artifact store stats digest artifact =
  (* the registry's streamable flag is the contract: a codec that is
     not registered streamable has no function-at-a-time container, so
     a chunked session over it must be refused, not attempted *)
  if not (Artifact.streamable artifact) then
    invalid_arg
      (Printf.sprintf "Session.open_artifact: codec %S is not streamable"
         (Artifact.name artifact));
  let m = Store.meta store digest in
  let image = chunked_image store stats digest artifact in
  let hs = handshake_bytes image in
  Stats.record_session_opened stats ~handshake_bytes:hs
    ~wire_equiv_bytes:m.Store.sizes.Scenario.Delivery.wire_bytes;
  {
    digest;
    image;
    stats;
    next_seq = 0;
    served = Hashtbl.create 16;
    delivered = Hashtbl.create 16;
  }

let open_ store stats digest =
  open_artifact store stats digest Artifact.chunked_wire

let digest t = t.digest

let index t =
  List.map
    (fun n -> (n, Wire.Chunked.chunk_size t.image n))
    (Wire.Chunked.function_names t.image)

let delivered t = Hashtbl.length t.delivered
let next_seq t = t.next_seq

let request t ~seq name =
  match Hashtbl.find_opt t.served seq with
  | Some (n, payload) ->
    if n <> name then
      Error
        (Printf.sprintf "retransmit of seq %d must repeat %S, got %S" seq n
           name)
    else begin
      (* a response was lost in flight (possibly several requests ago);
         resend it verbatim without touching the session offset *)
      Stats.record_chunk t.stats ~bytes:(String.length payload)
        ~retransmit:true;
      Ok payload
    end
  | None ->
    if seq <> t.next_seq then
      Error
        (Printf.sprintf "bad sequence number %d (expected %d)" seq t.next_seq)
    else begin
      match Wire.Chunked.chunk t.image name with
      | exception Not_found ->
        Error (Printf.sprintf "no function %S in %s" name t.digest)
      | payload ->
        Stats.record_chunk t.stats ~bytes:(String.length payload)
          ~retransmit:false;
        Hashtbl.replace t.delivered name ();
        Hashtbl.replace t.served seq (name, payload);
        t.next_seq <- seq + 1;
        Ok payload
    end
