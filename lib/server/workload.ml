(* PRNG-driven synthetic workload: a population of clients spanning the
   paper's delivery crossover hammering the server over the corpus.

   Program popularity is Zipf-flavoured (a few hot programs take most
   requests — what makes the artifact cache pay), the client profile is
   drawn per request, and streaming clients fetch exactly the functions
   a real run of the program touches (the paging trace), one chunk per
   request, with a configurable fraction of responses dropped in flight
   to exercise resume. *)

type entry = {
  name : string;
  digest : string;
  fn_count : int;
  wanted : string list;
      (* functions a real run references, in first-reference order *)
}

let dedup_keep_order xs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let catalog_entry engine (e : Corpus.Programs.entry) =
  let ir = Cc.Lower.compile e.Corpus.Programs.source in
  let input = e.Corpus.Programs.input in
  let digest = Engine.publish engine ~input ir in
  let vp = Vm.Codegen.gen_program ir in
  let names =
    Array.of_list (List.map (fun f -> f.Vm.Isa.name) vp.Vm.Isa.funcs)
  in
  let wanted =
    match Scenario.Paging.trace_of_program ~input vp with
    | exception _ -> Array.to_list names
    | trace -> dedup_keep_order (List.map (fun i -> names.(i)) trace)
  in
  {
    name = e.Corpus.Programs.name;
    digest;
    fn_count = Array.length names;
    wanted;
  }

(* Many-function generated programs whose drivers call a sample of the
   pool — the partial-call workloads where chunked delivery pays. *)
let default_generated =
  [ { Corpus.Gen.functions = 24; seed = 1017L; bias16 = false };
    { Corpus.Gen.functions = 40; seed = 2029L; bias16 = false } ]

let build_catalog ?(generated = default_generated) engine =
  List.map (catalog_entry engine) Corpus.Programs.all
  @ List.map
      (fun prof -> catalog_entry engine (Corpus.Gen.generate prof))
      generated

type config = { requests : int; seed : int64; drop_pct : int }

let default_config = { requests = 120; seed = 42L; drop_pct = 10 }

let default_profiles =
  [ Profile.modem; Profile.lan; Profile.embedded; Profile.datacenter ]

type baseline = {
  fixed : Scenario.Delivery.representation;
  modelled_s : float;   (* summed client delivery time over all fetches *)
  wire_bytes : int;     (* summed bytes that repr would have shipped *)
}

type summary = {
  requests : int;
  fetches : int;
  chunk_requests : int;
  sessions_completed : int;
  selections : ((string * string) * int) list;
      (* (profile, representation) -> count, fetch path only *)
  distinct_reprs : string list;
  adaptive_s : float;         (* summed modelled time of the chosen reprs *)
  adaptive_fetch_bytes : int; (* summed bytes actually shipped by fetches *)
  baselines : baseline list;  (* one-size-fits-all counterfactuals *)
  report : Stats.report;
}

type session_state = {
  sess : Session.t;
  mutable pending : string list;
  mutable history : (int * string) list;  (* answered (seq, name), newest first *)
}

(* What one workload step did, as seen from the outside: enough for a
   trace recorder to reconstruct the request without reaching into the
   engine. Streams cover handshakes and ordinary chunk requests;
   resumes are the retransmit paths (dropped response, late duplicate). *)
type observation =
  | Obs_fetch of Profile.t * entry
  | Obs_stream of Profile.t * entry
  | Obs_resume of Profile.t * entry

let run engine ?(profiles = default_profiles) ?(config = default_config)
    ?(observe = fun (_ : observation) -> ()) catalog =
  if catalog = [] then invalid_arg "Workload.run: empty catalog";
  let rng = Support.Prng.create config.seed in
  (* Zipf-flavoured popularity: weight ~ 1/(rank+1) *)
  let pop = List.mapi (fun i e -> (max 1 (1000 / (i + 1)), e)) catalog in
  let profile_arr = Array.of_list profiles in
  let sessions : (string, session_state) Hashtbl.t = Hashtbl.create 8 in
  let tally : (string * string, int) Hashtbl.t = Hashtbl.create 16 in
  let fetches = ref 0 in
  let chunk_requests = ref 0 in
  let completed = ref 0 in
  let adaptive_s = ref 0.0 in
  let adaptive_bytes = ref 0 in
  let baseline_reprs =
    [ Scenario.Delivery.Wire_format; Scenario.Delivery.Brisc_jit;
      Scenario.Delivery.Gzipped_native ]
  in
  let baseline_s = Array.make (List.length baseline_reprs) 0.0 in
  let baseline_bytes = Array.make (List.length baseline_reprs) 0 in
  for _ = 1 to config.requests do
    let profile = Support.Prng.pick rng profile_arr in
    let e = Support.Prng.weighted rng pop in
    if profile.Profile.prefers_streaming && e.fn_count > 1 then begin
      let key = profile.Profile.name ^ ":" ^ e.digest in
      match Hashtbl.find_opt sessions key with
      | None ->
        (* this request is the handshake; chunks flow on later requests *)
        observe (Obs_stream (profile, e));
        let sess = Engine.open_session engine e.digest in
        Hashtbl.add sessions key { sess; pending = e.wanted; history = [] }
      | Some st -> (
        match st.pending with
        | [] ->
          Hashtbl.remove sessions key;
          incr completed
        | name :: rest ->
          let seq = Session.next_seq st.sess in
          let serve () =
            incr chunk_requests;
            match Engine.session_request engine st.sess ~seq name with
            | Ok payload -> payload
            | Error msg -> failwith ("Workload: session error: " ^ msg)
          in
          observe (Obs_stream (profile, e));
          let _payload = serve () in
          st.history <- (seq, name) :: st.history;
          (* response dropped in flight: the client repeats the same
             sequence number and the server retransmits *)
          if Support.Prng.int rng 100 < config.drop_pct then begin
            observe (Obs_resume (profile, e));
            ignore (serve ())
          end;
          (* late duplicate: a stale retry of an older, already-answered
             request arrives after newer chunks — the server must
             retransmit it without disturbing the session offset *)
          (match st.history with
          | _ :: (old_seq, old_name) :: _
            when Support.Prng.int rng 100 < config.drop_pct ->
            observe (Obs_resume (profile, e));
            incr chunk_requests;
            (match
               Engine.session_request engine st.sess ~seq:old_seq old_name
             with
            | Ok _ -> ()
            | Error msg ->
              failwith ("Workload: late-duplicate rejected: " ^ msg))
          | _ -> ());
          st.pending <- rest;
          if rest = [] then begin
            Hashtbl.remove sessions key;
            incr completed
          end)
    end
    else begin
      incr fetches;
      observe (Obs_fetch (profile, e));
      let resp = Engine.fetch engine e.digest profile in
      let key = (profile.Profile.name, resp.Engine.label) in
      Hashtbl.replace tally key
        (1 + Option.value ~default:0 (Hashtbl.find_opt tally key));
      adaptive_s :=
        !adaptive_s +. resp.Engine.outcome.Scenario.Delivery.total_s;
      adaptive_bytes := !adaptive_bytes + resp.Engine.size;
      (* what a one-size-fits-all server would have cost this client;
         it still can't ship a representation the client can't run, so
         infeasible policies fall back to the client's adaptive choice *)
      let sizes = Engine.sizes_of engine e.digest in
      let feasible = Profile.feasible profile sizes in
      let repr_bytes = function
        | Scenario.Delivery.Raw_native -> sizes.Scenario.Delivery.native_bytes
        | Scenario.Delivery.Gzipped_native ->
          sizes.Scenario.Delivery.gzip_bytes
        | Scenario.Delivery.Wire_format -> sizes.Scenario.Delivery.wire_bytes
        | Scenario.Delivery.Brisc_jit | Scenario.Delivery.Brisc_interp ->
          sizes.Scenario.Delivery.brisc_bytes
      in
      List.iteri
        (fun i fixed ->
          let eff = if List.mem fixed feasible then fixed else resp.Engine.chosen in
          let o = Engine.outcome_for engine e.digest profile eff in
          baseline_s.(i) <- baseline_s.(i) +. o.Scenario.Delivery.total_s;
          baseline_bytes.(i) <- baseline_bytes.(i) + repr_bytes eff)
        baseline_reprs
    end
  done;
  let selections =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally [])
  in
  let distinct_reprs =
    dedup_keep_order (List.map (fun ((_, r), _) -> r) selections)
  in
  {
    requests = config.requests;
    fetches = !fetches;
    chunk_requests = !chunk_requests;
    sessions_completed = !completed;
    selections;
    distinct_reprs;
    adaptive_s = !adaptive_s;
    adaptive_fetch_bytes = !adaptive_bytes;
    baselines =
      List.mapi
        (fun i fixed ->
          { fixed; modelled_s = baseline_s.(i); wire_bytes = baseline_bytes.(i) })
        baseline_reprs;
    report = Engine.report engine;
  }

let print_summary (s : summary) =
  Printf.printf
    "workload: %d requests (%d fetches, %d chunk requests, %d sessions completed)\n"
    s.requests s.fetches s.chunk_requests s.sessions_completed;
  Printf.printf "selections by (profile, representation):\n";
  List.iter
    (fun ((p, r), n) -> Printf.printf "  %-12s %-14s %5d\n" p r n)
    s.selections;
  Printf.printf "distinct representations selected: %s\n"
    (String.concat ", " s.distinct_reprs);
  Printf.printf
    "adaptive vs one-size-fits-all (modelled client seconds / fetch bytes):\n";
  Printf.printf "  %-16s %10.1fs %12s\n" "adaptive" s.adaptive_s
    (Support.Util.human_bytes s.adaptive_fetch_bytes);
  List.iter
    (fun b ->
      Printf.printf "  %-16s %10.1fs %12s\n"
        ("all " ^ Scenario.Delivery.repr_name b.fixed)
        b.modelled_s
        (Support.Util.human_bytes b.wire_bytes))
    s.baselines;
  Stats.print s.report
