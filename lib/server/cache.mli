(** Byte-budgeted LRU cache for compressed artifacts.

    The artifact store compresses a program once and serves it many
    times; this cache bounds how many compressed images stay resident.
    All operations are O(1) (hashtable + intrusive recency list). *)

type t

val create : budget_bytes:int -> t

val find : t -> string -> string option
(** Lookup; a hit refreshes the entry's recency. Counts hits/misses. *)

val add : t -> string -> string -> unit
(** Insert (replacing any previous binding), then evict
    least-recently-used entries until the resident bytes fit the
    budget. A value larger than the whole budget is not cached at all
    rather than flushing every other entry. *)

val mem : t -> string -> bool
(** Presence test without touching recency or counters. *)

val remove : t -> string -> unit
(** Drop an entry (no-op when absent). Used to quarantine artifacts
    that failed verification; not counted as an eviction. *)

val peek : t -> string -> string option
(** Lookup without touching recency or hit/miss counters — for fault
    injection and inspection, so instrumentation stays invisible to the
    cache statistics. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  resident_bytes : int;
  resident_count : int;
  budget_bytes : int;
}

val stats : t -> stats
val hit_rate : stats -> float
(** hits / (hits + misses); 0 when no lookups happened. *)
