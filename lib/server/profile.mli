(** Client profiles and the adaptive representation selector. *)

type t = {
  name : string;
  link_bps : float;
  can_jit : bool;            (** can run the wire/BRISC JIT *)
  accepts_native : bool;     (** matches the server's native target *)
  memory_bytes : int option; (** resident-code budget; [None] = ample *)
  prefers_streaming : bool;
      (** paging client: materialize functions lazily over a chunked
          session instead of fetching the whole image *)
}

val make :
  ?can_jit:bool ->
  ?accepts_native:bool ->
  ?memory_bytes:int ->
  ?prefers_streaming:bool ->
  string ->
  link_bps:float ->
  t
(** Defaults: JIT-capable, not native-compatible, ample memory, no
    streaming. *)

val modem : t
(** 28.8k link, JIT-capable — the wire format's home turf. *)

val lan : t
(** 10 Mbit link, JIT-capable — where BRISC wins. *)

val embedded : t
(** ISDN link, no JIT, 32 KB code budget, pages functions in lazily
    over a chunked session. *)

val datacenter : t
(** 100 Mbit link, native-compatible — raw native code territory. *)

val feasible : t -> Scenario.Delivery.sizes -> Scenario.Delivery.representation list
(** The delivery representations this client can actually use, given
    the program's size card. Never empty: in-place interpretation is
    the last resort. *)

val mode_feasible :
  t -> mode:Scenario.Delivery.representation -> artifact_bytes:int ->
  native_bytes:int -> bool
(** Per-mode gating for one concrete artifact, mirroring {!feasible}'s
    group rules. Used by the registry-driven engine, which enumerates
    (codec, mode) candidates instead of the closed size card. *)

val select :
  ?rates:Scenario.Delivery.rates ->
  t ->
  Scenario.Delivery.sizes ->
  run_cycles:int ->
  Scenario.Delivery.representation * Scenario.Delivery.outcome
(** Total-time-minimizing feasible representation at this client's link
    speed, via {!Scenario.Delivery.best_of}. *)
