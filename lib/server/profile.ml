(* Client profiles and the adaptive representation selector.

   A profile is what the server knows about a client: its link speed,
   whether it can JIT, whether our native images even run there, and
   its memory budget. The selector filters the delivery-model
   representations down to what the client can use, then asks
   [Scenario.Delivery.best_of] which of those minimizes total time
   (transfer + prepare + run) at the client's link speed — the paper's
   modem/LAN crossover, applied per request. *)

type t = {
  name : string;
  link_bps : float;
  can_jit : bool;          (* client can run the wire/BRISC JIT *)
  accepts_native : bool;   (* client matches our native target *)
  memory_bytes : int option;  (* resident-code budget; None = ample *)
  prefers_streaming : bool;
      (* paging client: materialize functions lazily over a chunked
         session instead of fetching the whole image *)
}

let make ?(can_jit = true) ?(accepts_native = false) ?memory_bytes
    ?(prefers_streaming = false) name ~link_bps =
  { name; link_bps; can_jit; accepts_native; memory_bytes; prefers_streaming }

(* The driver's default population, spanning the paper's crossover. *)
let modem = make "modem-jit" ~link_bps:Scenario.Delivery.modem_bps
let lan = make "lan-jit" ~link_bps:Scenario.Delivery.lan_bps

let embedded =
  make "embedded" ~link_bps:Scenario.Delivery.isdn_bps ~can_jit:false
    ~memory_bytes:(32 * 1024) ~prefers_streaming:true

let datacenter =
  make "datacenter" ~link_bps:Scenario.Delivery.fast_lan_bps
    ~accepts_native:true

(* Per-mode gating for one concrete artifact, mirroring [feasible]'s
   group rules: whole-image modes that materialize native code are
   bounded by the native image's resident size; in-place interpretation
   only by the artifact itself. *)
let mode_feasible p ~mode ~artifact_bytes ~native_bytes =
  let fits resident =
    match p.memory_bytes with None -> true | Some m -> resident <= m
  in
  match (mode : Scenario.Delivery.representation) with
  | Scenario.Delivery.Raw_native | Scenario.Delivery.Gzipped_native ->
    p.accepts_native && fits native_bytes
  | Scenario.Delivery.Wire_format | Scenario.Delivery.Brisc_jit ->
    p.can_jit && fits native_bytes
  | Scenario.Delivery.Brisc_interp -> fits artifact_bytes

let feasible p (sizes : Scenario.Delivery.sizes) =
  let fits resident =
    match p.memory_bytes with None -> true | Some m -> resident <= m
  in
  (* resident cost: anything that materializes native code holds the
     native image; in-place interpretation holds only the BRISC bytes *)
  let native_ok = fits sizes.Scenario.Delivery.native_bytes in
  let cands =
    (if p.accepts_native && native_ok then
       [ Scenario.Delivery.Raw_native; Scenario.Delivery.Gzipped_native ]
     else [])
    @ (if p.can_jit && native_ok then
         [ Scenario.Delivery.Wire_format; Scenario.Delivery.Brisc_jit ]
       else [])
    @
    if fits sizes.Scenario.Delivery.brisc_bytes then
      [ Scenario.Delivery.Brisc_interp ]
    else []
  in
  (* in-place interpretation is the representation of last resort: it
     needs no preparation memory beyond the image itself *)
  if cands = [] then [ Scenario.Delivery.Brisc_interp ] else cands

let select ?rates p sizes ~run_cycles =
  Scenario.Delivery.best_of ?rates (feasible p sizes) sizes ~run_cycles
    ~link_bps:p.link_bps
