(* Server observability: every counter the driver's report prints.

   Mutable counters live in [t]; [report] takes an immutable snapshot
   (folding in the cache's own counters) so callers can diff two
   snapshots across a workload phase.

   The network daemon records from several domains at once, so every
   mutation and the snapshot itself run under one mutex. The critical
   sections are a handful of integer bumps (and one bounded list
   splice), far cheaper than the compression/decode work around them,
   so a single lock never shows up next to the request path it
   accounts. *)

(* log10 buckets for compression wall-clock: <1ms, <10ms, <100ms, <1s, >=1s *)
let histo_buckets = 5

let bucket_of_seconds s =
  if s < 0.001 then 0
  else if s < 0.01 then 1
  else if s < 0.1 then 2
  else if s < 1.0 then 3
  else 4

let bucket_label = function
  | 0 -> "<1ms"
  | 1 -> "1-10ms"
  | 2 -> "10-100ms"
  | 3 -> "0.1-1s"
  | _ -> ">=1s"

(* accumulated totals for one pipeline stage of one codec *)
type stage_acc = {
  mutable stage_calls : int;
  mutable stage_bytes_in : int;
  mutable stage_bytes_out : int;
  mutable stage_wall_s : float;
}

type repr_counters = {
  mutable responses : int;
  mutable bytes_served : int;
  mutable compressions : int;
  mutable compress_s : float;
  mutable compress_max_s : float;
  histogram : int array;  (* compression times, log buckets *)
  stage_accs : (string, stage_acc) Hashtbl.t;
  mutable stage_names : string list;  (* pipeline order, reversed *)
}

let fresh_counters () =
  {
    responses = 0;
    bytes_served = 0;
    compressions = 0;
    compress_s = 0.0;
    compress_max_s = 0.0;
    histogram = Array.make histo_buckets 0;
    stage_accs = Hashtbl.create 8;
    stage_names = [];
  }

(* one quarantined artifact: which digest/representation failed
   verification, and the typed decode error that condemned it *)
type failure = {
  fail_digest : string;
  fail_repr : Artifact.repr;
  fail_kind : string;     (* Decode_error.kind_name *)
  fail_msg : string;      (* Decode_error.to_string *)
}

let max_recent_failures = 8

type t = {
  mu : Mutex.t;  (* guards every mutable field below; domain-safe *)
  per_repr : (Artifact.repr, repr_counters) Hashtbl.t;
  mutable requests : int;
  mutable publishes : int;
  mutable sessions_opened : int;
  mutable chunks_served : int;
  mutable retransmits : int;
  mutable session_bytes : int;       (* handshake + chunk bytes on the wire *)
  mutable session_wire_equiv : int;  (* monolithic wire bytes the same
                                        requests would have shipped *)
  mutable decode_failures : int;
  failures_by_kind : (string, int) Hashtbl.t;
  mutable degraded_fetches : int;    (* fetches served by a lower-ranked
                                        repr after the chosen one failed *)
  mutable policy_hits : int;         (* fetches answered by the tuned
                                        serving-policy table *)
  mutable quarantine_heals : int;    (* quarantined artifacts rebuilt
                                        fresh and served again *)
  mutable recent_failures : failure list;  (* newest first, bounded *)
}

let create () =
  {
    mu = Mutex.create ();
    per_repr = Hashtbl.create 8;
    requests = 0;
    publishes = 0;
    sessions_opened = 0;
    chunks_served = 0;
    retransmits = 0;
    session_bytes = 0;
    session_wire_equiv = 0;
    decode_failures = 0;
    failures_by_kind = Hashtbl.create 8;
    degraded_fetches = 0;
    policy_hits = 0;
    quarantine_heals = 0;
    recent_failures = [];
  }

let locked t f =
  Mutex.lock t.mu;
  match f () with
  | v ->
    Mutex.unlock t.mu;
    v
  | exception e ->
    Mutex.unlock t.mu;
    raise e

let counters t repr =
  match Hashtbl.find_opt t.per_repr repr with
  | Some c -> c
  | None ->
    let c = fresh_counters () in
    Hashtbl.add t.per_repr repr c;
    c

let record_request t = locked t (fun () -> t.requests <- t.requests + 1)
let record_publish t = locked t (fun () -> t.publishes <- t.publishes + 1)

let record_served t repr bytes =
  locked t (fun () ->
      let c = counters t repr in
      c.responses <- c.responses + 1;
      c.bytes_served <- c.bytes_served + bytes)

let record_compress t repr ?(trace = []) seconds =
  locked t @@ fun () ->
  let c = counters t repr in
  c.compressions <- c.compressions + 1;
  c.compress_s <- c.compress_s +. seconds;
  if seconds > c.compress_max_s then c.compress_max_s <- seconds;
  let b = bucket_of_seconds seconds in
  c.histogram.(b) <- c.histogram.(b) + 1;
  List.iter
    (fun (s : Codec.stage) ->
      let acc =
        match Hashtbl.find_opt c.stage_accs s.Codec.stage with
        | Some a -> a
        | None ->
          let a =
            { stage_calls = 0; stage_bytes_in = 0; stage_bytes_out = 0;
              stage_wall_s = 0.0 }
          in
          Hashtbl.add c.stage_accs s.Codec.stage a;
          c.stage_names <- s.Codec.stage :: c.stage_names;
          a
      in
      acc.stage_calls <- acc.stage_calls + 1;
      acc.stage_bytes_in <- acc.stage_bytes_in + s.Codec.bytes_in;
      acc.stage_bytes_out <- acc.stage_bytes_out + s.Codec.bytes_out;
      acc.stage_wall_s <- acc.stage_wall_s +. s.Codec.wall_s)
    trace

let record_session_opened t ~handshake_bytes ~wire_equiv_bytes =
  locked t (fun () ->
      t.sessions_opened <- t.sessions_opened + 1;
      t.session_bytes <- t.session_bytes + handshake_bytes;
      t.session_wire_equiv <- t.session_wire_equiv + wire_equiv_bytes)

let record_chunk t ~bytes ~retransmit =
  locked t (fun () ->
      if retransmit then t.retransmits <- t.retransmits + 1
      else t.chunks_served <- t.chunks_served + 1;
      t.session_bytes <- t.session_bytes + bytes)

let record_decode_failure t ~digest repr (e : Support.Decode_error.t) =
  locked t @@ fun () ->
  t.decode_failures <- t.decode_failures + 1;
  let kind = Support.Decode_error.kind_name e.Support.Decode_error.kind in
  Hashtbl.replace t.failures_by_kind kind
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.failures_by_kind kind));
  let f =
    {
      fail_digest = digest;
      fail_repr = repr;
      fail_kind = kind;
      fail_msg = Support.Decode_error.to_string e;
    }
  in
  (* hard cap: the list can never exceed [max_recent_failures] no
     matter how many domains are recording — the trim runs under the
     same lock as the cons *)
  let keep =
    if List.length t.recent_failures >= max_recent_failures then
      List.filteri (fun i _ -> i < max_recent_failures - 1) t.recent_failures
    else t.recent_failures
  in
  t.recent_failures <- f :: keep

let record_degraded t =
  locked t (fun () -> t.degraded_fetches <- t.degraded_fetches + 1)

let record_policy_hit t =
  locked t (fun () -> t.policy_hits <- t.policy_hits + 1)

let record_quarantine_heal t =
  locked t (fun () -> t.quarantine_heals <- t.quarantine_heals + 1)

(* ---- snapshot ---- *)

(* one pipeline stage's accumulated totals in a snapshot *)
type stage_report = {
  stage_name : string;
  calls : int;
  bytes_in : int;
  bytes_out : int;
  wall_s : float;
}

type repr_report = {
  repr : Artifact.repr;
  responses : int;
  bytes_served : int;
  compressions : int;
  compress_total_s : float;
  compress_max_s : float;
  compress_histogram : (string * int) list;
  stages : stage_report list;  (* pipeline order *)
}

type report = {
  requests : int;
  publishes : int;
  cache : Cache.stats;
  cache_hit_rate : float;
  by_repr : repr_report list;
  total_bytes_served : int;
  sessions_opened : int;
  chunks_served : int;
  retransmits : int;
  session_bytes : int;
  session_wire_equiv : int;
  decode_failures : int;
  failures_by_kind : (string * int) list;
  degraded_fetches : int;
  policy_hits : int;
  quarantine_heals : int;
  recent_failures : failure list;
}

let report t ~cache:cs =
  locked t @@ fun () ->
  let by_repr =
    List.filter_map
      (fun repr ->
        match Hashtbl.find_opt t.per_repr repr with
        | None -> None
        | Some c ->
          Some
            {
              repr;
              responses = c.responses;
              bytes_served = c.bytes_served;
              compressions = c.compressions;
              compress_total_s = c.compress_s;
              compress_max_s = c.compress_max_s;
              compress_histogram =
                List.filter
                  (fun (_, n) -> n > 0)
                  (List.init histo_buckets (fun i ->
                       (bucket_label i, c.histogram.(i))));
              stages =
                List.rev_map
                  (fun name ->
                    let a = Hashtbl.find c.stage_accs name in
                    {
                      stage_name = name;
                      calls = a.stage_calls;
                      bytes_in = a.stage_bytes_in;
                      bytes_out = a.stage_bytes_out;
                      wall_s = a.stage_wall_s;
                    })
                  c.stage_names;
            })
      (Artifact.all ())
  in
  {
    requests = t.requests;
    publishes = t.publishes;
    cache = cs;
    cache_hit_rate = Cache.hit_rate cs;
    by_repr;
    total_bytes_served =
      List.fold_left (fun a r -> a + r.bytes_served) t.session_bytes by_repr;
    sessions_opened = t.sessions_opened;
    chunks_served = t.chunks_served;
    retransmits = t.retransmits;
    session_bytes = t.session_bytes;
    session_wire_equiv = t.session_wire_equiv;
    decode_failures = t.decode_failures;
    failures_by_kind =
      List.sort compare
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.failures_by_kind []);
    degraded_fetches = t.degraded_fetches;
    policy_hits = t.policy_hits;
    quarantine_heals = t.quarantine_heals;
    recent_failures = t.recent_failures;
  }

(* ---- snapshot difference ---- *)

(* counter-wise [after - before]: what one workload phase did on its
   own. Reprs are matched by tag; a repr absent from [before]
   contributes its [after] totals unchanged. Derived rates are
   recomputed from the differenced counters; the recent-failures log
   (a bounded window, not a counter) is taken from [after]. *)
let diff ~(before : report) (after : report) =
  let d_stage (b : stage_report option) (a : stage_report) =
    match b with
    | None -> a
    | Some b ->
      {
        a with
        calls = a.calls - b.calls;
        bytes_in = a.bytes_in - b.bytes_in;
        bytes_out = a.bytes_out - b.bytes_out;
        wall_s = a.wall_s -. b.wall_s;
      }
  in
  let d_repr (a : repr_report) =
    match List.find_opt (fun r -> r.repr = a.repr) before.by_repr with
    | None -> a
    | Some b ->
      {
        a with
        responses = a.responses - b.responses;
        bytes_served = a.bytes_served - b.bytes_served;
        compressions = a.compressions - b.compressions;
        compress_total_s = a.compress_total_s -. b.compress_total_s;
        compress_histogram =
          List.filter
            (fun (_, n) -> n > 0)
            (List.map
               (fun (l, n) ->
                 match List.assoc_opt l b.compress_histogram with
                 | Some m -> (l, n - m)
                 | None -> (l, n))
               a.compress_histogram);
        stages =
          List.map
            (fun (s : stage_report) ->
              d_stage
                (List.find_opt
                   (fun (x : stage_report) -> x.stage_name = s.stage_name)
                   b.stages)
                s)
            a.stages;
      }
  in
  let by_repr =
    List.filter
      (fun (r : repr_report) ->
        r.responses > 0 || r.bytes_served > 0 || r.compressions > 0)
      (List.map d_repr after.by_repr)
  in
  let cache =
    {
      after.cache with
      Cache.hits = after.cache.Cache.hits - before.cache.Cache.hits;
      misses = after.cache.Cache.misses - before.cache.Cache.misses;
      evictions = after.cache.Cache.evictions - before.cache.Cache.evictions;
    }
  in
  {
    requests = after.requests - before.requests;
    publishes = after.publishes - before.publishes;
    cache;
    cache_hit_rate = Cache.hit_rate cache;
    by_repr;
    total_bytes_served = after.total_bytes_served - before.total_bytes_served;
    sessions_opened = after.sessions_opened - before.sessions_opened;
    chunks_served = after.chunks_served - before.chunks_served;
    retransmits = after.retransmits - before.retransmits;
    session_bytes = after.session_bytes - before.session_bytes;
    session_wire_equiv = after.session_wire_equiv - before.session_wire_equiv;
    decode_failures = after.decode_failures - before.decode_failures;
    failures_by_kind =
      List.filter
        (fun (_, n) -> n > 0)
        (List.map
           (fun (k, n) ->
             match List.assoc_opt k before.failures_by_kind with
             | Some m -> (k, n - m)
             | None -> (k, n))
           after.failures_by_kind);
    degraded_fetches = after.degraded_fetches - before.degraded_fetches;
    policy_hits = after.policy_hits - before.policy_hits;
    quarantine_heals = after.quarantine_heals - before.quarantine_heals;
    recent_failures = after.recent_failures;
  }

let print (r : report) =
  Printf.printf "requests            %d (programs published: %d)\n" r.requests
    r.publishes;
  Printf.printf "cache               %d hits / %d misses (%.1f%% hit rate), %d evictions\n"
    r.cache.Cache.hits r.cache.Cache.misses (100.0 *. r.cache_hit_rate)
    r.cache.Cache.evictions;
  Printf.printf "cache residency     %s of %s budget in %d artifacts\n"
    (Support.Util.human_bytes r.cache.Cache.resident_bytes)
    (Support.Util.human_bytes r.cache.Cache.budget_bytes)
    r.cache.Cache.resident_count;
  Printf.printf "bytes on the wire   %s total\n"
    (Support.Util.human_bytes r.total_bytes_served);
  List.iter
    (fun rr ->
      Printf.printf "  %-14s %6d responses  %10s served  %3d compressions (%.3fs total, %.3fs max)\n"
        (Artifact.name rr.repr) rr.responses
        (Support.Util.human_bytes rr.bytes_served)
        rr.compressions rr.compress_total_s rr.compress_max_s;
      (match rr.compress_histogram with
      | [] -> ()
      | h ->
        Printf.printf "  %-14s %s\n" ""
          (String.concat "  "
             (List.map (fun (l, n) -> Printf.sprintf "%s:%d" l n) h)));
      List.iter
        (fun s ->
          Printf.printf
            "    stage %-12s %3d calls  %10s in -> %10s out  %.3fs\n"
            s.stage_name s.calls
            (Support.Util.human_bytes s.bytes_in)
            (Support.Util.human_bytes s.bytes_out)
            s.wall_s)
        rr.stages)
    r.by_repr;
  if r.policy_hits > 0 then
    Printf.printf "tuned policy        %d fetches served by table lookup\n"
      r.policy_hits;
  if r.decode_failures > 0 then begin
    Printf.printf
      "artifact faults     %d decode failures quarantined, %d fetches degraded\n"
      r.decode_failures r.degraded_fetches;
    if r.quarantine_heals > 0 then
      Printf.printf "  healed            %d quarantined artifacts rebuilt fresh\n"
        r.quarantine_heals;
    Printf.printf "  by kind           %s\n"
      (String.concat "  "
         (List.map (fun (k, n) -> Printf.sprintf "%s:%d" k n)
            r.failures_by_kind));
    List.iter
      (fun f ->
        Printf.printf "  %-14s %s %s\n"
          (Artifact.name f.fail_repr)
          (String.sub f.fail_digest 0 (min 8 (String.length f.fail_digest)))
          f.fail_msg)
      r.recent_failures
  end;
  if r.sessions_opened > 0 then begin
    Printf.printf
      "chunked sessions    %d opened, %d chunks served, %d retransmits\n"
      r.sessions_opened r.chunks_served r.retransmits;
    Printf.printf
      "  streamed %s vs %s as whole wire images (%.1f%% of full)\n"
      (Support.Util.human_bytes r.session_bytes)
      (Support.Util.human_bytes r.session_wire_equiv)
      (100.0
      *. Support.Util.ratio r.session_bytes r.session_wire_equiv)
  end
