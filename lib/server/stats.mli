(** Server observability: cache behaviour, bytes served per
    representation, compression-time histograms, chunked-session
    traffic. The engine records into a mutable {!t}; {!report} takes the
    immutable snapshot the driver and bench print. *)

type t

val create : unit -> t

(** {2 Recording (used by the engine, store and sessions)} *)

val record_request : t -> unit
val record_publish : t -> unit
val record_served : t -> Artifact.repr -> int -> unit
val record_compress : t -> Artifact.repr -> float -> unit
val record_session_opened : t -> handshake_bytes:int -> wire_equiv_bytes:int -> unit
val record_chunk : t -> bytes:int -> retransmit:bool -> unit

(** {2 Snapshot} *)

type repr_report = {
  repr : Artifact.repr;
  responses : int;
  bytes_served : int;
  compressions : int;
  compress_total_s : float;
  compress_max_s : float;
  compress_histogram : (string * int) list;
      (** wall-clock buckets ("<1ms", "1-10ms", ...) with non-zero counts *)
}

type report = {
  requests : int;
  publishes : int;
  cache : Cache.stats;
  cache_hit_rate : float;
  by_repr : repr_report list;
  total_bytes_served : int;  (** full-image responses + session traffic *)
  sessions_opened : int;
  chunks_served : int;
  retransmits : int;
  session_bytes : int;       (** handshakes + chunks, including retransmits *)
  session_wire_equiv : int;
      (** what the same programs would have cost as monolithic wire images *)
}

val report : t -> cache:Cache.t -> report
val print : report -> unit
