(** Server observability: cache behaviour, bytes served per
    representation, compression-time histograms, chunked-session
    traffic. The engine records into a mutable {!t}; {!report} takes the
    immutable snapshot the driver and bench print. All recording and
    the snapshot are domain-safe (one internal mutex), so the network
    daemon's workers share a single [t]. *)

type t

val create : unit -> t

(** {2 Recording (used by the engine, store and sessions)} *)

val record_request : t -> unit
val record_publish : t -> unit
val record_served : t -> Artifact.repr -> int -> unit
val record_compress : t -> Artifact.repr -> ?trace:Codec.trace -> float -> unit
(** One compression of [repr]: wall-clock histogram plus, when the
    codec reported a per-stage trace, accumulation into that repr's
    stage matrix (bytes-in / bytes-out / time per pipeline stage). *)

val record_session_opened : t -> handshake_bytes:int -> wire_equiv_bytes:int -> unit
val record_chunk : t -> bytes:int -> retransmit:bool -> unit

val record_decode_failure :
  t -> digest:string -> Artifact.repr -> Support.Decode_error.t -> unit
(** An artifact failed verification and was quarantined: count it, bucket
    it by error kind, and keep it in the bounded recent-failures log. *)

val record_degraded : t -> unit
val record_policy_hit : t -> unit
(** A fetch was served by a lower-ranked representation because the
    selector's first choice failed verification. *)

val record_quarantine_heal : t -> unit
(** A previously quarantined (digest, repr) was rebuilt from source and
    is servable again. *)

(** {2 Snapshot} *)

type stage_report = {
  stage_name : string;
  calls : int;
  bytes_in : int;
  bytes_out : int;
  wall_s : float;
}
(** Accumulated totals for one pipeline stage of one codec. *)

type repr_report = {
  repr : Artifact.repr;
  responses : int;
  bytes_served : int;
  compressions : int;
  compress_total_s : float;
  compress_max_s : float;
  compress_histogram : (string * int) list;
      (** wall-clock buckets ("<1ms", "1-10ms", ...) with non-zero counts *)
  stages : stage_report list;
      (** the codec's per-stage matrix, in pipeline order *)
}

type failure = {
  fail_digest : string;
  fail_repr : Artifact.repr;
  fail_kind : string;  (** {!Support.Decode_error.kind_name} *)
  fail_msg : string;   (** {!Support.Decode_error.to_string} *)
}
(** One quarantined artifact in the recent-failures log. *)

type report = {
  requests : int;
  publishes : int;
  cache : Cache.stats;
  cache_hit_rate : float;
  by_repr : repr_report list;
  total_bytes_served : int;  (** full-image responses + session traffic *)
  sessions_opened : int;
  chunks_served : int;
  retransmits : int;
  session_bytes : int;       (** handshakes + chunks, including retransmits *)
  session_wire_equiv : int;
      (** what the same programs would have cost as monolithic wire images *)
  decode_failures : int;     (** artifacts that failed verification *)
  failures_by_kind : (string * int) list;
  degraded_fetches : int;    (** fetches served by a fallback representation *)
  policy_hits : int;         (** fetches answered by the tuned policy table *)
  quarantine_heals : int;    (** quarantined artifacts rebuilt fresh *)
  recent_failures : failure list;  (** newest first, bounded *)
}

val report : t -> cache:Cache.stats -> report
(** Locked snapshot; [cache] is the (possibly shard-merged) cache
    counters sampled by the store. Safe to call while other domains are
    recording. *)

val diff : before:report -> report -> report
(** Counter-wise [after - before]: what a workload phase did on its own.
    Reprs and stages are matched by name; derived rates are recomputed
    from the differenced counters; [recent_failures] (a bounded window,
    not a counter) is taken from the [after] snapshot. *)

val print : report -> unit
