(* Content-addressed artifact store.

   A program is published once, keyed by a digest of its IR text; the
   store keeps only small per-digest metadata (the IR itself, the size
   card for the delivery model, measured run cycles) permanently.
   Compressed artifact bytes live in the byte-budgeted LRU cache: a hot
   program is compressed once and served many times, a cold one that
   gets evicted is recompressed on its next request — exactly the
   trade-off the stats layer measures against the always-recompress
   baseline. *)

type meta = {
  ir : Ir.Tree.program;
  sizes : Scenario.Delivery.sizes;
  chunked_bytes : int;      (* the function-at-a-time image is bigger *)
  run_cycles : int;         (* measured (or estimated) native cycles *)
  fn_names : string list;
}

type t = {
  cache : Cache.t;
  stats : Stats.t;
  metas : (string, meta) Hashtbl.t;
  mutable order : string list;  (* publish order, reversed *)
}

let create ~budget_bytes ~stats =
  {
    cache = Cache.create ~budget_bytes;
    stats;
    metas = Hashtbl.create 16;
    order = [];
  }

let digest_of_program (p : Ir.Tree.program) =
  Digest.to_hex (Digest.string (Ir.Printer.program_to_string p))

let cache t = t.cache
let find_meta t digest = Hashtbl.find_opt t.metas digest

let meta t digest =
  match find_meta t digest with
  | Some m -> m
  | None -> raise Not_found

let digests t = List.rev t.order

(* ---- artifact production ---- *)

let cache_key digest repr = digest ^ ":" ^ Artifact.tag repr

let compile_vm (m : meta) = Vm.Codegen.gen_program m.ir

let rec produce t digest (m : meta) = function
  | Artifact.Native ->
    Native.Mach.encode_program (Native.Compile.compile_program (compile_vm m))
  | Artifact.Gzip_native ->
    (* derived from the native image, itself fetched through the cache *)
    let native, _ = materialize t digest Artifact.Native in
    Zip.Deflate.compress native
  | Artifact.Wire -> Wire.compress m.ir
  | Artifact.Chunked_wire -> Wire.Chunked.to_bytes (Wire.Chunked.compress m.ir)
  | Artifact.Brisc -> Brisc.to_bytes (Brisc.compress (compile_vm m))

and materialize t digest repr =
  let m = meta t digest in
  let key = cache_key digest repr in
  match Cache.find t.cache key with
  | Some bytes -> (bytes, true)
  | None ->
    let t0 = Unix.gettimeofday () in
    let bytes = produce t digest m repr in
    Stats.record_compress t.stats repr (Unix.gettimeofday () -. t0);
    Cache.add t.cache key bytes;
    (bytes, false)

(* ---- publish ---- *)

(* When the publisher gives neither measured cycles nor an input to
   simulate with, charge a nominal 30 cycles per native code byte — the
   order of one trip through the program. *)
let estimated_cycles_per_byte = 30

let publish t ?run_cycles ?(input = "") (p : Ir.Tree.program) =
  let digest = digest_of_program p in
  if Hashtbl.mem t.metas digest then digest
  else begin
    let vp = Vm.Codegen.gen_program p in
    let np = Native.Compile.compile_program vp in
    let native_img = Native.Mach.encode_program np in
    let run_cycles =
      match run_cycles with
      | Some c -> c
      | None -> (
        try (Native.Sim.run ~input np).Native.Sim.cycles
        with _ -> String.length native_img * estimated_cycles_per_byte)
    in
    (* compress every representation once, timed, to fill the size card
       the adaptive selector needs; the bytes warm the cache *)
    let timed repr f =
      let t0 = Unix.gettimeofday () in
      let bytes = f () in
      Stats.record_compress t.stats repr (Unix.gettimeofday () -. t0);
      Cache.add t.cache (cache_key digest repr) bytes;
      String.length bytes
    in
    let native_bytes = timed Artifact.Native (fun () -> native_img) in
    let gzip_bytes =
      timed Artifact.Gzip_native (fun () -> Zip.Deflate.compress native_img)
    in
    let wire_bytes = timed Artifact.Wire (fun () -> Wire.compress p) in
    let chunked_bytes =
      timed Artifact.Chunked_wire (fun () ->
          Wire.Chunked.to_bytes (Wire.Chunked.compress p))
    in
    let brisc_bytes =
      timed Artifact.Brisc (fun () -> Brisc.to_bytes (Brisc.compress vp))
    in
    let m =
      {
        ir = p;
        sizes =
          { Scenario.Delivery.native_bytes; gzip_bytes; wire_bytes;
            brisc_bytes };
        chunked_bytes;
        run_cycles;
        fn_names = List.map (fun f -> f.Ir.Tree.fname) p.Ir.Tree.funcs;
      }
    in
    Hashtbl.add t.metas digest m;
    t.order <- digest :: t.order;
    Stats.record_publish t.stats;
    digest
  end
