(* Content-addressed artifact store.

   A program is published once, keyed by a digest of its IR text; the
   store keeps only small per-digest metadata (the IR itself, the size
   card for the delivery model, measured run cycles) permanently.
   Compressed artifact bytes live in the byte-budgeted LRU cache: a hot
   program is compressed once and served many times, a cold one that
   gets evicted is recompressed on its next request — exactly the
   trade-off the stats layer measures against the always-recompress
   baseline.

   The artifact menu is the codec registry: publish and the first-miss
   prefetch iterate [Artifact.all ()], so a newly registered codec is
   stored, sized, timed (with its per-stage trace) and served with no
   store changes.

   With a parallel domain pool the expensive paths fan out: publish
   compresses the whole representation menu concurrently, and the first
   cache miss for a digest prefetches whatever part of the menu is
   missing. Compression thunks are pure — all Stats/Cache mutation
   happens sequentially afterwards in fixed registry order, so counters
   and cache contents are deterministic at any pool size.

   Shared-state concurrency (the network daemon's workers hit one store
   from several domains at once):

   - the cache is lock-striped into [shards] independent LRU shards
     (key-hash -> shard, each with its own mutex and budget slice), so
     hits on different artifacts never contend on one lock. The default
     is a single shard, which is byte- and counter-identical to the
     historical serial store;
   - metadata and publish order sit behind one small mutex (lookups are
     a hashtable probe);
   - materialization is single-flight: a thundering herd of cold
     requests for the same (digest, repr) elects one builder — everyone
     else blocks on the flight's condition variable and shares the one
     compression. Publish is single-flight per digest the same way. *)

type meta = {
  ir : Ir.Tree.program;
  sizes : Scenario.Delivery.sizes;
  sizes_by : (string * int) list;  (* artifact name -> stored bytes *)
  run_cycles : int;         (* measured (or estimated) native cycles *)
  fn_names : string list;
}

type shard = { smu : Mutex.t; cache : Cache.t }

(* One in-flight build (a materialization or a publish). The winner
   computes, then parks the result here and broadcasts; late arrivals
   found the flight in the table and wait on [fc] instead of repeating
   the work. *)
type flight = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable outcome : (string, exn) result option;
}

type t = {
  shards : shard array;
  stats : Stats.t;
  pool : Support.Pool.t option;
  meta_mu : Mutex.t;   (* guards metas, prefetched, quarantined, order *)
  metas : (string, meta) Hashtbl.t;
  prefetched : (string, unit) Hashtbl.t;
      (* digests whose menu a miss already prefetched once; bounds the
         recompression blow-up when the budget can't hold a menu *)
  quarantined : (string, unit) Hashtbl.t;
      (* cache keys dropped by [quarantine] and not yet rebuilt; a
         fresh build of a marked key counts as a heal in the stats *)
  flights_mu : Mutex.t;
  flights : (string, flight) Hashtbl.t;
  mutable order : string list;  (* publish order, reversed *)
}

let create ?pool ?(shards = 1) ~budget_bytes ~stats () =
  let shards = max 1 shards in
  let slice = budget_bytes / shards in
  {
    shards =
      Array.init shards (fun i ->
          (* shard 0 absorbs the division remainder so the summed
             budget is exactly the requested one *)
          let budget_bytes =
            if i = 0 then budget_bytes - (slice * (shards - 1)) else slice
          in
          { smu = Mutex.create (); cache = Cache.create ~budget_bytes });
    stats;
    pool;
    meta_mu = Mutex.create ();
    metas = Hashtbl.create 16;
    prefetched = Hashtbl.create 16;
    quarantined = Hashtbl.create 8;
    flights_mu = Mutex.create ();
    flights = Hashtbl.create 8;
    order = [];
  }

let parallel_pool t =
  match t.pool with
  | Some p when Support.Pool.size p > 1 -> Some p
  | _ -> None

let digest_of_program (p : Ir.Tree.program) =
  Digest.to_hex (Digest.string (Ir.Printer.program_to_string p))

(* ---- locked cache access (striped) ---- *)

let shard_of t key = t.shards.(Hashtbl.hash key mod Array.length t.shards)

let with_shard t key f =
  let s = shard_of t key in
  Mutex.lock s.smu;
  match f s.cache with
  | v ->
    Mutex.unlock s.smu;
    v
  | exception e ->
    Mutex.unlock s.smu;
    raise e

let cache_find t key = with_shard t key (fun c -> Cache.find c key)
let cache_peek t key = with_shard t key (fun c -> Cache.peek c key)
let cache_add t key v = with_shard t key (fun c -> Cache.add c key v)
let cache_remove t key = with_shard t key (fun c -> Cache.remove c key)

let cache_stats t =
  Array.fold_left
    (fun (acc : Cache.stats) s ->
      Mutex.lock s.smu;
      let cs = Cache.stats s.cache in
      Mutex.unlock s.smu;
      {
        Cache.hits = acc.Cache.hits + cs.Cache.hits;
        misses = acc.Cache.misses + cs.Cache.misses;
        evictions = acc.Cache.evictions + cs.Cache.evictions;
        resident_bytes = acc.Cache.resident_bytes + cs.Cache.resident_bytes;
        resident_count = acc.Cache.resident_count + cs.Cache.resident_count;
        budget_bytes = acc.Cache.budget_bytes + cs.Cache.budget_bytes;
      })
    {
      Cache.hits = 0; misses = 0; evictions = 0; resident_bytes = 0;
      resident_count = 0; budget_bytes = 0;
    }
    t.shards

let shard_count t = Array.length t.shards

(* ---- locked metadata access ---- *)

let with_meta_mu t f =
  Mutex.lock t.meta_mu;
  let v = f () in
  Mutex.unlock t.meta_mu;
  v

let find_meta t digest =
  with_meta_mu t (fun () -> Hashtbl.find_opt t.metas digest)

let meta t digest =
  match find_meta t digest with
  | Some m -> m
  | None -> raise Not_found

let size_of (m : meta) repr =
  match List.assoc_opt (Artifact.name repr) m.sizes_by with
  | Some n -> n
  | None -> 0

let chunked_bytes m = size_of m Artifact.chunked_wire

let digests t = with_meta_mu t (fun () -> List.rev t.order)

(* first caller wins the right (and the duty) to prefetch the menu *)
let claim_prefetch t digest =
  with_meta_mu t (fun () ->
      if Hashtbl.mem t.prefetched digest then false
      else begin
        Hashtbl.add t.prefetched digest ();
        true
      end)

(* ---- single flight ---- *)

let single_flight t key (build : unit -> string) =
  Mutex.lock t.flights_mu;
  match Hashtbl.find_opt t.flights key with
  | Some fl ->
    (* join the herd: someone is already building this key *)
    Mutex.unlock t.flights_mu;
    Mutex.lock fl.fm;
    while fl.outcome = None do
      Condition.wait fl.fc fl.fm
    done;
    let r = fl.outcome in
    Mutex.unlock fl.fm;
    (match r with
    | Some (Ok v) -> v
    | Some (Error e) -> raise e
    | None -> assert false)
  | None ->
    let fl = { fm = Mutex.create (); fc = Condition.create (); outcome = None } in
    Hashtbl.add t.flights key fl;
    Mutex.unlock t.flights_mu;
    let finish r =
      (* unpublish first: anyone arriving after this point re-checks the
         cache (the build filled it) instead of joining a dead flight *)
      Mutex.lock t.flights_mu;
      Hashtbl.remove t.flights key;
      Mutex.unlock t.flights_mu;
      Mutex.lock fl.fm;
      fl.outcome <- Some r;
      Condition.broadcast fl.fc;
      Mutex.unlock fl.fm
    in
    (match build () with
    | v ->
      finish (Ok v);
      v
    | exception e ->
      finish (Error e);
      raise e)

(* ---- artifact production ---- *)

(* Contexted artifacts are cached per (digest, repr, context): the
   same program served against two different held bases (or dictionary
   generations) is two distinct cache entries, each quarantinable and
   healable on its own. *)
let cache_key ?ctx digest repr =
  let k = digest ^ ":" ^ Artifact.tag repr in
  match ctx with
  | None -> k
  | Some c -> k ^ "@" ^ Codec.Context.digest c

(* a fresh build of a key that [quarantine] condemned is a heal: the
   poisoned bytes are gone and servable bytes exist again *)
let note_rebuilt t key =
  let healed =
    with_meta_mu t (fun () ->
        if Hashtbl.mem t.quarantined key then begin
          Hashtbl.remove t.quarantined key;
          true
        end
        else false)
  in
  if healed then Stats.record_quarantine_heal t.stats

let timed f =
  let t0 = Unix.gettimeofday () in
  let bytes = f () in
  (bytes, Unix.gettimeofday () -. t0)

(* run the (repr, thunk) batch — concurrently when a parallel pool is
   available — then record timings/traces and fill the cache
   sequentially in list order. Thunks return (bytes, trace). *)
let run_batch t digest tasks =
  let results =
    let thunks = List.map (fun (_, f) () -> timed f) tasks in
    match parallel_pool t with
    | Some p -> Support.Pool.run_list p thunks
    | None -> List.map (fun f -> f ()) thunks
  in
  List.map2
    (fun (repr, _) ((bytes, trace), dt) ->
      Stats.record_compress t.stats repr ~trace dt;
      cache_add t (cache_key digest repr) bytes;
      note_rebuilt t (cache_key digest repr);
      (repr, bytes))
    tasks results

(* Flight keys live in two namespaces: "mat:" for materialize's
   whole-miss-path flights and "img:" for the native image builder —
   materialize(native)'s menu prefetch forces the native view from
   inside its own flight, so the two must never share a key. *)

let native_image t digest (m : meta) =
  match cache_find t (cache_key digest Artifact.native) with
  | Some bytes -> bytes
  | None ->
    single_flight t ("img:" ^ cache_key digest Artifact.native) @@ fun () ->
    (* the build re-checks residency without touching hit/miss
       counters: a flight that lost the cache race just returns the
       winner's bytes *)
    (match cache_peek t (cache_key digest Artifact.native) with
    | Some bytes -> bytes
    | None ->
      let (bytes, trace), dt =
        timed (fun () ->
            Codec.encode (Artifact.codec Artifact.native)
              (Codec.Source.of_ir m.ir))
      in
      Stats.record_compress t.stats Artifact.native ~trace dt;
      cache_add t (cache_key digest Artifact.native) bytes;
      note_rebuilt t (cache_key digest Artifact.native);
      bytes)

(* the shared lazy source sibling codecs encode from; the native view
   goes through the cache so the machine image is built at most once,
   and only when a codec actually needs it *)
let source_for t digest (m : meta) =
  Codec.Source.of_ir_lazy ?pool:t.pool
    ~native:(lazy (native_image t digest m))
    m.ir

(* Build (or reuse) a contexted artifact. Peek-based residency checks,
   so the engine can size candidates without perturbing hit/miss
   accounting; [materialize ~ctx] layers the counters on top. No menu
   prefetch — a contexted representation exists only for the client
   that advertised the context. *)
let build_ctx t digest repr ~ctx =
  let m = meta t digest in
  let key = cache_key ~ctx digest repr in
  match cache_peek t key with
  | Some bytes -> bytes
  | None ->
    single_flight t ("mat:" ^ key) @@ fun () ->
    (match cache_peek t key with
    | Some bytes -> bytes
    | None ->
      let src = source_for t digest m in
      let (bytes, trace), dt =
        timed (fun () -> Codec.encode ~ctx (Artifact.codec repr) src)
      in
      Stats.record_compress t.stats repr ~trace dt;
      cache_add t key bytes;
      note_rebuilt t key;
      bytes)

let contexted_size t digest repr ~ctx =
  String.length (build_ctx t digest repr ~ctx)

let materialize ?ctx t digest repr =
  match ctx with
  | Some ctx -> (
    let key = cache_key ~ctx digest repr in
    match cache_find t key with
    | Some bytes -> (bytes, true)
    | None -> (build_ctx t digest repr ~ctx, false))
  | None ->
  let m = meta t digest in
  let key = cache_key digest repr in
  match cache_find t key with
  | Some bytes -> (bytes, true)
  | None ->
    let bytes =
      single_flight t ("mat:" ^ key) @@ fun () ->
      (if claim_prefetch t digest then begin
         (* first miss on this digest: rebuild the whole missing menu —
            concurrently when a pool is available, serially otherwise,
            with identical cache contents and counters either way, so a
            replay's stats are invariant under the pool size. A parallel
            batch pays roughly the slowest single compression instead of
            a serial sum, and sibling representations are warm for the
            next request. *)
         let src = source_for t digest m in
         (* force the shared native view before fanning out, so parallel
            thunks stay pure (no cache/stats mutation from pool lanes) *)
         ignore (Codec.Source.native src);
         let missing =
           List.filter
             (fun r ->
               r <> Artifact.native
               && cache_find t (cache_key digest r) = None)
             (Artifact.all ())
         in
         ignore
           (run_batch t digest
              (List.map
                 (fun r ->
                   (r, fun () -> Codec.encode (Artifact.codec r) src))
                 missing))
       end);
      match cache_find t key with
      | Some bytes -> bytes   (* compressed by the prefetch (or a racer) *)
      | None ->
        if repr = Artifact.native then native_image t digest m
        else begin
          let src = source_for t digest m in
          let (bytes, trace), dt =
            timed (fun () -> Codec.encode (Artifact.codec repr) src)
          in
          Stats.record_compress t.stats repr ~trace dt;
          cache_add t key bytes;
          note_rebuilt t key;
          bytes
        end
    in
    (bytes, false)

(* ---- fault handling ---- *)

(* Quarantine = drop the poisoned bytes. The store keeps no other copy:
   the next materialize for this (digest, repr) rebuilds from the
   metadata's IR, so a corrupted cache entry self-heals while the bad
   bytes can never be served twice. The key is marked so the eventual
   rebuild is counted as a heal. *)
let quarantine ?ctx t digest repr =
  let key = cache_key ?ctx digest repr in
  with_meta_mu t (fun () -> Hashtbl.replace t.quarantined key ());
  cache_remove t key

(* Fault-injection hook for tests and the driver's --faults mode:
   mutate the cached artifact in place (false when it isn't resident).
   Uses peek/add so the injection itself is invisible to hit/miss
   accounting. *)
let corrupt_cached ?ctx t digest repr ~f =
  let key = cache_key ?ctx digest repr in
  match cache_peek t key with
  | None -> false
  | Some bytes ->
    cache_add t key (f bytes);
    true

(* ---- publish ---- *)

(* When the publisher gives neither measured cycles nor an input to
   simulate with, charge a nominal 30 cycles per native code byte — the
   order of one trip through the program. *)
let estimated_cycles_per_byte = 30

let publish t ?run_cycles ?(input = "") (p : Ir.Tree.program) =
  let digest = digest_of_program p in
  if find_meta t digest <> None then digest
  else
    (* concurrent publishes of the same program compress the menu once;
       the "publish:" prefix keeps the key clear of the cache_key
       namespace (digest ^ ":" ^ one-char tag) *)
    single_flight t ("publish:" ^ digest) @@ fun () ->
    if find_meta t digest <> None then digest
    else begin
      let vp = Vm.Codegen.gen_program p in
      let np = Native.Compile.compile_program vp in
      let native_img = Native.Mach.encode_program np in
      let run_cycles =
        match run_cycles with
        | Some c -> c
        | None -> (
          try (Native.Sim.run ~input np).Native.Sim.cycles
          with _ -> String.length native_img * estimated_cycles_per_byte)
      in
      (* compress the whole registry menu once, timed, to fill the size
         card the adaptive selector needs; the bytes warm the cache. All
         source views are prefilled values, so the parallel batch shares
         them race-free. *)
      let m0 =
        {
          ir = p;
          sizes =
            { Scenario.Delivery.native_bytes = 0; gzip_bytes = 0;
              wire_bytes = 0; brisc_bytes = 0 };
          sizes_by = [];
          run_cycles;
          fn_names = List.map (fun f -> f.Ir.Tree.fname) p.Ir.Tree.funcs;
        }
      in
      let src = Codec.Source.of_ir ?pool:t.pool ~vm:vp ~native:native_img p in
      let produced =
        run_batch t digest
          (List.map
             (fun r -> (r, fun () -> Codec.encode (Artifact.codec r) src))
             (Artifact.all ()))
      in
      let sizes_by =
        List.map (fun (r, bytes) -> (Artifact.name r, String.length bytes))
          produced
      in
      let size r = String.length (List.assoc r produced) in
      let m =
        {
          m0 with
          sizes =
            {
              Scenario.Delivery.native_bytes = size Artifact.native;
              gzip_bytes = size Artifact.gzip_native;
              wire_bytes = size Artifact.wire;
              brisc_bytes = size Artifact.brisc;
            };
          sizes_by;
        }
      in
      with_meta_mu t (fun () ->
          Hashtbl.add t.metas digest m;
          t.order <- digest :: t.order);
      Stats.record_publish t.stats;
      digest
    end
