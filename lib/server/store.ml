(* Content-addressed artifact store.

   A program is published once, keyed by a digest of its IR text; the
   store keeps only small per-digest metadata (the IR itself, the size
   card for the delivery model, measured run cycles) permanently.
   Compressed artifact bytes live in the byte-budgeted LRU cache: a hot
   program is compressed once and served many times, a cold one that
   gets evicted is recompressed on its next request — exactly the
   trade-off the stats layer measures against the always-recompress
   baseline.

   The artifact menu is the codec registry: publish and the first-miss
   prefetch iterate [Artifact.all ()], so a newly registered codec is
   stored, sized, timed (with its per-stage trace) and served with no
   store changes.

   With a parallel domain pool the expensive paths fan out: publish
   compresses the whole representation menu concurrently, and the first
   cache miss for a digest prefetches whatever part of the menu is
   missing. Compression thunks are pure — all Stats/Cache mutation
   happens sequentially afterwards in fixed registry order, so counters
   and cache contents are deterministic at any pool size. *)

type meta = {
  ir : Ir.Tree.program;
  sizes : Scenario.Delivery.sizes;
  sizes_by : (string * int) list;  (* artifact name -> stored bytes *)
  run_cycles : int;         (* measured (or estimated) native cycles *)
  fn_names : string list;
}

type t = {
  cache : Cache.t;
  stats : Stats.t;
  pool : Support.Pool.t option;
  metas : (string, meta) Hashtbl.t;
  prefetched : (string, unit) Hashtbl.t;
      (* digests whose menu a miss already prefetched once; bounds the
         recompression blow-up when the budget can't hold a menu *)
  mutable order : string list;  (* publish order, reversed *)
}

let create ?pool ~budget_bytes ~stats () =
  {
    cache = Cache.create ~budget_bytes;
    stats;
    pool;
    metas = Hashtbl.create 16;
    prefetched = Hashtbl.create 16;
    order = [];
  }

let parallel_pool t =
  match t.pool with
  | Some p when Support.Pool.size p > 1 -> Some p
  | _ -> None

let digest_of_program (p : Ir.Tree.program) =
  Digest.to_hex (Digest.string (Ir.Printer.program_to_string p))

let cache t = t.cache
let find_meta t digest = Hashtbl.find_opt t.metas digest

let meta t digest =
  match find_meta t digest with
  | Some m -> m
  | None -> raise Not_found

let size_of (m : meta) repr =
  match List.assoc_opt (Artifact.name repr) m.sizes_by with
  | Some n -> n
  | None -> 0

let chunked_bytes m = size_of m Artifact.chunked_wire

let digests t = List.rev t.order

(* ---- artifact production ---- *)

let cache_key digest repr = digest ^ ":" ^ Artifact.tag repr

let timed f =
  let t0 = Unix.gettimeofday () in
  let bytes = f () in
  (bytes, Unix.gettimeofday () -. t0)

(* run the (repr, thunk) batch — concurrently when a parallel pool is
   available — then record timings/traces and fill the cache
   sequentially in list order. Thunks return (bytes, trace). *)
let run_batch t digest tasks =
  let results =
    let thunks = List.map (fun (_, f) () -> timed f) tasks in
    match parallel_pool t with
    | Some p -> Support.Pool.run_list p thunks
    | None -> List.map (fun f -> f ()) thunks
  in
  List.map2
    (fun (repr, _) ((bytes, trace), dt) ->
      Stats.record_compress t.stats repr ~trace dt;
      Cache.add t.cache (cache_key digest repr) bytes;
      (repr, bytes))
    tasks results

let native_image t digest (m : meta) =
  match Cache.find t.cache (cache_key digest Artifact.native) with
  | Some bytes -> bytes
  | None ->
    let (bytes, trace), dt =
      timed (fun () ->
          Codec.encode (Artifact.codec Artifact.native)
            (Codec.Source.of_ir m.ir))
    in
    Stats.record_compress t.stats Artifact.native ~trace dt;
    Cache.add t.cache (cache_key digest Artifact.native) bytes;
    bytes

(* the shared lazy source sibling codecs encode from; the native view
   goes through the cache so the machine image is built at most once,
   and only when a codec actually needs it *)
let source_for t digest (m : meta) =
  Codec.Source.of_ir_lazy ?pool:t.pool
    ~native:(lazy (native_image t digest m))
    m.ir

let materialize t digest repr =
  let m = meta t digest in
  let key = cache_key digest repr in
  match Cache.find t.cache key with
  | Some bytes -> (bytes, true)
  | None ->
    (match parallel_pool t with
    | Some _ when not (Hashtbl.mem t.prefetched digest) ->
      (* first miss on this digest: rebuild the whole missing menu
         concurrently — the request pays roughly the slowest single
         compression instead of a serial sum, and sibling
         representations are warm for the next request *)
      Hashtbl.add t.prefetched digest ();
      let src = source_for t digest m in
      (* force the shared native view before fanning out, so parallel
         thunks stay pure (no cache/stats mutation from pool lanes) *)
      ignore (Codec.Source.native src);
      let missing =
        List.filter
          (fun r ->
            r <> Artifact.native
            && Cache.find t.cache (cache_key digest r) = None)
          (Artifact.all ())
      in
      ignore
        (run_batch t digest
           (List.map
              (fun r ->
                (r, fun () -> Codec.encode (Artifact.codec r) src))
              missing))
    | _ -> ());
    (match Cache.find t.cache key with
    | Some bytes -> (bytes, false)   (* compressed by the prefetch *)
    | None ->
      if repr = Artifact.native then (native_image t digest m, false)
      else begin
        let src = source_for t digest m in
        let (bytes, trace), dt =
          timed (fun () -> Codec.encode (Artifact.codec repr) src)
        in
        Stats.record_compress t.stats repr ~trace dt;
        Cache.add t.cache key bytes;
        (bytes, false)
      end)

(* ---- fault handling ---- *)

(* Quarantine = drop the poisoned bytes. The store keeps no other copy:
   the next materialize for this (digest, repr) rebuilds from the
   metadata's IR, so a corrupted cache entry self-heals while the bad
   bytes can never be served twice. *)
let quarantine t digest repr = Cache.remove t.cache (cache_key digest repr)

(* Fault-injection hook for tests and the driver's --faults mode:
   mutate the cached artifact in place (false when it isn't resident).
   Uses peek/add so the injection itself is invisible to hit/miss
   accounting. *)
let corrupt_cached t digest repr ~f =
  let key = cache_key digest repr in
  match Cache.peek t.cache key with
  | None -> false
  | Some bytes ->
    Cache.add t.cache key (f bytes);
    true

(* ---- publish ---- *)

(* When the publisher gives neither measured cycles nor an input to
   simulate with, charge a nominal 30 cycles per native code byte — the
   order of one trip through the program. *)
let estimated_cycles_per_byte = 30

let publish t ?run_cycles ?(input = "") (p : Ir.Tree.program) =
  let digest = digest_of_program p in
  if Hashtbl.mem t.metas digest then digest
  else begin
    let vp = Vm.Codegen.gen_program p in
    let np = Native.Compile.compile_program vp in
    let native_img = Native.Mach.encode_program np in
    let run_cycles =
      match run_cycles with
      | Some c -> c
      | None -> (
        try (Native.Sim.run ~input np).Native.Sim.cycles
        with _ -> String.length native_img * estimated_cycles_per_byte)
    in
    (* compress the whole registry menu once, timed, to fill the size
       card the adaptive selector needs; the bytes warm the cache. All
       source views are prefilled values, so the parallel batch shares
       them race-free. *)
    let m0 =
      {
        ir = p;
        sizes =
          { Scenario.Delivery.native_bytes = 0; gzip_bytes = 0; wire_bytes = 0;
            brisc_bytes = 0 };
        sizes_by = [];
        run_cycles;
        fn_names = List.map (fun f -> f.Ir.Tree.fname) p.Ir.Tree.funcs;
      }
    in
    let src = Codec.Source.of_ir ?pool:t.pool ~vm:vp ~native:native_img p in
    let produced =
      run_batch t digest
        (List.map
           (fun r -> (r, fun () -> Codec.encode (Artifact.codec r) src))
           (Artifact.all ()))
    in
    let sizes_by =
      List.map (fun (r, bytes) -> (Artifact.name r, String.length bytes))
        produced
    in
    let size r = String.length (List.assoc r produced) in
    let m =
      {
        m0 with
        sizes =
          {
            Scenario.Delivery.native_bytes = size Artifact.native;
            gzip_bytes = size Artifact.gzip_native;
            wire_bytes = size Artifact.wire;
            brisc_bytes = size Artifact.brisc;
          };
        sizes_by;
      }
    in
    Hashtbl.add t.metas digest m;
    t.order <- digest :: t.order;
    Stats.record_publish t.stats;
    digest
  end
