(* Content-addressed artifact store.

   A program is published once, keyed by a digest of its IR text; the
   store keeps only small per-digest metadata (the IR itself, the size
   card for the delivery model, measured run cycles) permanently.
   Compressed artifact bytes live in the byte-budgeted LRU cache: a hot
   program is compressed once and served many times, a cold one that
   gets evicted is recompressed on its next request — exactly the
   trade-off the stats layer measures against the always-recompress
   baseline.

   With a parallel domain pool the expensive paths fan out: publish
   compresses the whole representation menu concurrently, and the first
   cache miss for a digest prefetches whatever part of the menu is
   missing. Compression thunks are pure — all Stats/Cache mutation
   happens sequentially afterwards in fixed representation order, so
   counters and cache contents are deterministic at any pool size. *)

type meta = {
  ir : Ir.Tree.program;
  sizes : Scenario.Delivery.sizes;
  chunked_bytes : int;      (* the function-at-a-time image is bigger *)
  run_cycles : int;         (* measured (or estimated) native cycles *)
  fn_names : string list;
}

type t = {
  cache : Cache.t;
  stats : Stats.t;
  pool : Support.Pool.t option;
  metas : (string, meta) Hashtbl.t;
  prefetched : (string, unit) Hashtbl.t;
      (* digests whose menu a miss already prefetched once; bounds the
         recompression blow-up when the budget can't hold a menu *)
  mutable order : string list;  (* publish order, reversed *)
}

let create ?pool ~budget_bytes ~stats () =
  {
    cache = Cache.create ~budget_bytes;
    stats;
    pool;
    metas = Hashtbl.create 16;
    prefetched = Hashtbl.create 16;
    order = [];
  }

let parallel_pool t =
  match t.pool with
  | Some p when Support.Pool.size p > 1 -> Some p
  | _ -> None

let digest_of_program (p : Ir.Tree.program) =
  Digest.to_hex (Digest.string (Ir.Printer.program_to_string p))

let cache t = t.cache
let find_meta t digest = Hashtbl.find_opt t.metas digest

let meta t digest =
  match find_meta t digest with
  | Some m -> m
  | None -> raise Not_found

let digests t = List.rev t.order

(* ---- artifact production ---- *)

let cache_key digest repr = digest ^ ":" ^ Artifact.tag repr

let compile_vm (m : meta) = Vm.Codegen.gen_program m.ir

(* pure compression of one representation, given the native image (the
   only cross-representation dependency) *)
let compress_repr t (m : meta) ~native = function
  | Artifact.Native -> native
  | Artifact.Gzip_native -> Zip.Deflate.compress native
  | Artifact.Wire -> Wire.compress m.ir
  | Artifact.Chunked_wire -> Wire.Chunked.to_bytes (Wire.Chunked.compress m.ir)
  | Artifact.Brisc ->
    Brisc.to_bytes (Brisc.compress ?pool:t.pool (compile_vm m))

let timed f =
  let t0 = Unix.gettimeofday () in
  let bytes = f () in
  (bytes, Unix.gettimeofday () -. t0)

(* run the (repr, thunk) batch — concurrently when a parallel pool is
   available — then record timings and fill the cache sequentially in
   list order *)
let run_batch t digest tasks =
  let results =
    let thunks = List.map (fun (_, f) () -> timed f) tasks in
    match parallel_pool t with
    | Some p -> Support.Pool.run_list p thunks
    | None -> List.map (fun f -> f ()) thunks
  in
  List.map2
    (fun (repr, _) (bytes, dt) ->
      Stats.record_compress t.stats repr dt;
      Cache.add t.cache (cache_key digest repr) bytes;
      (repr, bytes))
    tasks results

let native_image t digest (m : meta) =
  match Cache.find t.cache (cache_key digest Artifact.Native) with
  | Some bytes -> bytes
  | None ->
    let bytes, dt =
      timed (fun () ->
          Native.Mach.encode_program
            (Native.Compile.compile_program (compile_vm m)))
    in
    Stats.record_compress t.stats Artifact.Native dt;
    Cache.add t.cache (cache_key digest Artifact.Native) bytes;
    bytes

let materialize t digest repr =
  let m = meta t digest in
  let key = cache_key digest repr in
  match Cache.find t.cache key with
  | Some bytes -> (bytes, true)
  | None ->
    (match parallel_pool t with
    | Some _ when not (Hashtbl.mem t.prefetched digest) ->
      (* first miss on this digest: rebuild the whole missing menu
         concurrently — the request pays roughly the slowest single
         compression instead of a serial sum, and sibling
         representations are warm for the next request *)
      Hashtbl.add t.prefetched digest ();
      let native = native_image t digest m in
      let missing =
        List.filter
          (fun r ->
            r <> Artifact.Native
            && Cache.find t.cache (cache_key digest r) = None)
          Artifact.all
      in
      ignore
        (run_batch t digest
           (List.map (fun r -> (r, fun () -> compress_repr t m ~native r)) missing))
    | _ -> ());
    (match Cache.find t.cache key with
    | Some bytes -> (bytes, false)   (* compressed by the prefetch *)
    | None -> (
      match repr with
      | Artifact.Native -> (native_image t digest m, false)
      | repr ->
        let native =
          match repr with
          | Artifact.Gzip_native -> native_image t digest m
          | _ -> ""
        in
        let bytes, dt = timed (fun () -> compress_repr t m ~native repr) in
        Stats.record_compress t.stats repr dt;
        Cache.add t.cache key bytes;
        (bytes, false)))

(* ---- fault handling ---- *)

(* Quarantine = drop the poisoned bytes. The store keeps no other copy:
   the next materialize for this (digest, repr) rebuilds from the
   metadata's IR, so a corrupted cache entry self-heals while the bad
   bytes can never be served twice. *)
let quarantine t digest repr = Cache.remove t.cache (cache_key digest repr)

(* Fault-injection hook for tests and the driver's --faults mode:
   mutate the cached artifact in place (false when it isn't resident).
   Uses peek/add so the injection itself is invisible to hit/miss
   accounting. *)
let corrupt_cached t digest repr ~f =
  let key = cache_key digest repr in
  match Cache.peek t.cache key with
  | None -> false
  | Some bytes ->
    Cache.add t.cache key (f bytes);
    true

(* ---- publish ---- *)

(* When the publisher gives neither measured cycles nor an input to
   simulate with, charge a nominal 30 cycles per native code byte — the
   order of one trip through the program. *)
let estimated_cycles_per_byte = 30

let publish t ?run_cycles ?(input = "") (p : Ir.Tree.program) =
  let digest = digest_of_program p in
  if Hashtbl.mem t.metas digest then digest
  else begin
    let vp = Vm.Codegen.gen_program p in
    let np = Native.Compile.compile_program vp in
    let native_img = Native.Mach.encode_program np in
    let run_cycles =
      match run_cycles with
      | Some c -> c
      | None -> (
        try (Native.Sim.run ~input np).Native.Sim.cycles
        with _ -> String.length native_img * estimated_cycles_per_byte)
    in
    (* compress every representation once, timed, to fill the size card
       the adaptive selector needs; the bytes warm the cache. The dummy
       meta lets the shared compress_repr path run before registration *)
    let m0 =
      {
        ir = p;
        sizes =
          { Scenario.Delivery.native_bytes = 0; gzip_bytes = 0; wire_bytes = 0;
            brisc_bytes = 0 };
        chunked_bytes = 0;
        run_cycles;
        fn_names = List.map (fun f -> f.Ir.Tree.fname) p.Ir.Tree.funcs;
      }
    in
    let produced =
      run_batch t digest
        [
          (Artifact.Native, fun () -> native_img);
          (Artifact.Gzip_native, fun () -> Zip.Deflate.compress native_img);
          (Artifact.Wire, fun () -> Wire.compress p);
          ( Artifact.Chunked_wire,
            fun () -> Wire.Chunked.to_bytes (Wire.Chunked.compress p) );
          ( Artifact.Brisc,
            fun () -> Brisc.to_bytes (Brisc.compress ?pool:t.pool vp) );
        ]
    in
    let size r = String.length (List.assoc r produced) in
    let m =
      {
        m0 with
        sizes =
          {
            Scenario.Delivery.native_bytes = size Artifact.Native;
            gzip_bytes = size Artifact.Gzip_native;
            wire_bytes = size Artifact.Wire;
            brisc_bytes = size Artifact.Brisc;
          };
        chunked_bytes = size Artifact.Chunked_wire;
      }
    in
    Hashtbl.add t.metas digest m;
    t.order <- digest :: t.order;
    Stats.record_publish t.stats;
    digest
  end
