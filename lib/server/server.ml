(* Facade: the code-delivery server.

   [Server] itself is the engine (create / publish / fetch /
   open_session / report); the submodules expose the parts — the
   artifact vocabulary, the LRU cache, client profiles, streaming
   sessions, the stats layer, and the synthetic workload driver. *)

module Artifact = Artifact
module Cache = Cache
module Stats = Stats
module Profile = Profile
module Store = Store
module Session = Session
module Workload = Workload
include Engine
