(** Content-addressed artifact store.

    Programs are published once, keyed by a digest of their IR;
    compressed artifacts are built on demand and live in a
    byte-budgeted {!Cache}, so hot programs are compressed once and
    served many times while cold ones pay recompression after
    eviction. *)

type meta = {
  ir : Ir.Tree.program;
  sizes : Scenario.Delivery.sizes;  (** legacy size card for the selector *)
  sizes_by : (string * int) list;
      (** stored bytes per registered artifact, by codec name — the
          registry-driven engine's per-candidate transfer sizes *)
  run_cycles : int;                 (** measured or estimated native cycles *)
  fn_names : string list;
}

val size_of : meta -> Artifact.repr -> int
(** Stored bytes of one artifact (0 when unknown). *)

val chunked_bytes : meta -> int
(** Stored bytes of the function-at-a-time image. *)

type t

val create :
  ?pool:Support.Pool.t -> ?shards:int -> budget_bytes:int -> stats:Stats.t ->
  unit -> t
(** [pool] (when its size exceeds 1) parallelizes the expensive paths:
    {!publish} compresses the representation menu concurrently, the
    first cache miss on a digest prefetches the missing menu entries
    concurrently, and BRISC dictionary construction fans its candidate
    scan across the pool. The menu prefetch itself runs at any pool
    size (serially without one); compression thunks are pure and all
    stats/cache mutation is sequential in fixed representation order,
    so counters, cache contents, and artifact bytes are identical at
    any pool size — the replay determinism contract depends on this.

    [shards] (default 1) lock-stripes the artifact cache into that many
    independent LRU shards (key-hash routed, budget split evenly), so
    the network daemon's domains rarely contend on a cache lock. Every
    store operation is domain-safe at any shard count; materialization
    and publish are additionally {e single-flight} — concurrent cold
    requests for the same (digest, repr) elect one builder and share
    its result, so a thundering herd compresses once. With the default
    single shard and no concurrency, behavior (bytes, hit/miss
    counters, eviction order) is identical to the historical serial
    store. *)

val digest_of_program : Ir.Tree.program -> string
(** Hex digest of the printed IR — the content address. *)

val publish : t -> ?run_cycles:int -> ?input:string -> Ir.Tree.program -> string
(** Register a program and return its digest. Idempotent: republishing
    the same program is a no-op returning the same digest. Compresses
    every representation once (timed into the stats layer) to build the
    size card and warm the cache. [run_cycles] overrides the execution
    cost; otherwise the program is run once on the native simulator
    with [input] (default empty) to measure it. *)

val find_meta : t -> string -> meta option
val meta : t -> string -> meta
(** @raise Not_found for unknown digests. *)

val digests : t -> string list
(** All published digests, in publish order. *)

val materialize :
  ?ctx:Codec.Context.t -> t -> string -> Artifact.repr -> string * bool
(** Artifact bytes for a digest, plus whether the cache already held
    them. On a miss the artifact is (re)compressed, timed, and cached.
    With [ctx] the artifact is built and cached per (digest, repr,
    context digest) — the key for shared-dictionary and delta
    representations — and the first-miss menu prefetch is skipped (a
    contexted representation exists only for the client that advertised
    the context).
    @raise Not_found for unknown digests. *)

val contexted_size : t -> string -> Artifact.repr -> ctx:Codec.Context.t -> int
(** Stored bytes of a contexted artifact, building (and caching) it on
    first use. Residency checks are peek-based, so candidate sizing
    never perturbs hit/miss accounting. *)

val cache_stats : t -> Cache.stats
(** Cache counters summed across the shards (equals the single cache's
    stats when [shards = 1]). *)

val shard_count : t -> int

val quarantine : ?ctx:Codec.Context.t -> t -> string -> Artifact.repr -> unit
(** Drop the cached bytes of one artifact (no-op when absent). Called
    when served bytes fail verification: the poisoned entry can never
    be served again, and the next {!materialize} rebuilds it fresh from
    the published IR — quarantine is also self-healing. [ctx] condemns
    the per-context entry of a contexted artifact. *)

val corrupt_cached :
  ?ctx:Codec.Context.t -> t -> string -> Artifact.repr -> f:(string -> string) -> bool
(** Fault-injection hook: rewrite the cached bytes of one artifact with
    [f]. Returns [false] when the artifact is not resident. The
    injection bypasses hit/miss accounting so cache statistics stay
    comparable with and without faults. *)
