(** Streaming chunked-delivery session: one {!Wire.Chunked} function
    chunk per request behind an index handshake, resumable after
    dropped responses, so a paging client materializes only the
    functions it calls. *)

type t

val open_ : Store.t -> Stats.t -> string -> t
(** Open a session on a published digest. Materializes the chunked
    artifact (through the cache), verifies it decodes, and records the
    handshake. A corrupt cached artifact is quarantined, recorded in
    the stats layer, and rebuilt fresh from the published IR before the
    session starts.
    @raise Not_found for unknown digests.
    @raise Support.Decode_error.Fail when even a fresh rebuild fails. *)

val open_artifact : Store.t -> Stats.t -> string -> Artifact.repr -> t
(** As {!open_}, but streaming a caller-chosen registered artifact.
    The artifact must be registered [streamable]; {!open_} is
    [open_artifact ... Artifact.chunked_wire].
    @raise Invalid_argument when the codec is not streamable — callers
    on the serve path convert this to the typed [Not_streamable] wire
    error rather than letting a non-chunked codec corrupt a session. *)

val digest : t -> string

val index : t -> (string * int) list
(** The handshake: every function name with its compressed chunk size. *)

val request : t -> seq:int -> string -> (string, string) result
(** [request t ~seq name] returns the function's chunk — a complete
    single-function wire image, expandable with {!Wire.decompress}.
    [seq] must be the session's next sequence number, or any previously
    answered sequence number paired with the same function name (the
    response was dropped in flight — possibly several requests ago),
    which retransmits the saved payload byte-for-byte without moving
    the session offset. Anything else, or an unknown function name, is
    an [Error]. *)

val next_seq : t -> int
(** The sequence number the server expects next. *)

val delivered : t -> int
(** Distinct functions served so far. *)
