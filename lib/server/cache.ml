(* Byte-budgeted LRU cache for compressed artifacts.

   Entries form an intrusive doubly-linked recency list threaded through
   a hashtable, so lookup, insert and evict are all O(1): the server
   must stay cheap per request even with a large catalog resident. *)

type entry = {
  key : string;
  value : string;
  mutable prev : entry option;  (* towards most-recently-used *)
  mutable next : entry option;  (* towards least-recently-used *)
}

type t = {
  budget_bytes : int;
  tbl : (string, entry) Hashtbl.t;
  mutable mru : entry option;
  mutable lru : entry option;
  mutable resident_bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  resident_bytes : int;
  resident_count : int;
  budget_bytes : int;
}

let create ~budget_bytes =
  if budget_bytes < 0 then invalid_arg "Cache.create: negative budget";
  {
    budget_bytes;
    tbl = Hashtbl.create 64;
    mru = None;
    lru = None;
    resident_bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let unlink (t : t) e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.mru <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.lru <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front (t : t) e =
  e.next <- t.mru;
  e.prev <- None;
  (match t.mru with Some m -> m.prev <- Some e | None -> t.lru <- Some e);
  t.mru <- Some e

let find (t : t) key =
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
    t.hits <- t.hits + 1;
    unlink t e;
    push_front t e;
    Some e.value
  | None ->
    t.misses <- t.misses + 1;
    None

let remove_entry (t : t) e =
  unlink t e;
  Hashtbl.remove t.tbl e.key;
  t.resident_bytes <- t.resident_bytes - String.length e.value

let evict_to_budget (t : t) =
  while t.resident_bytes > t.budget_bytes && t.lru <> None do
    match t.lru with
    | None -> ()
    | Some victim ->
      remove_entry t victim;
      t.evictions <- t.evictions + 1
  done

let add (t : t) key value =
  (match Hashtbl.find_opt t.tbl key with
  | Some old -> remove_entry t old
  | None -> ());
  (* an artifact bigger than the whole budget passes through uncached
     rather than flushing everything else *)
  if String.length value <= t.budget_bytes then begin
    let e = { key; value; prev = None; next = None } in
    Hashtbl.add t.tbl key e;
    push_front t e;
    t.resident_bytes <- t.resident_bytes + String.length value;
    evict_to_budget t
  end

let mem (t : t) key = Hashtbl.mem t.tbl key

(* quarantine path: dropping a poisoned artifact is not an eviction —
   evictions measure budget pressure, not hostile input *)
let remove (t : t) key =
  match Hashtbl.find_opt t.tbl key with
  | Some e -> remove_entry t e
  | None -> ()

let peek (t : t) key =
  match Hashtbl.find_opt t.tbl key with
  | Some e -> Some e.value
  | None -> None

let stats (t : t) =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    resident_bytes = t.resident_bytes;
    resident_count = Hashtbl.length t.tbl;
    budget_bytes = t.budget_bytes;
  }

let hit_rate (s : stats) =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total
