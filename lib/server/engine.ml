(* The code-delivery engine: content-addressed store + cache behind an
   adaptive, per-request representation selector.

   [fetch] is the whole-image path: select the total-time-minimizing
   representation the client can use, materialize it (compressing on a
   cache miss), and account for it. [open_session] is the streaming
   path for paging clients. *)

type t = {
  store : Store.t;
  stats : Stats.t;
  rates : Scenario.Delivery.rates;
  min_session_cycles : int;
}

(* Corpus drivers finish in milliseconds, but a delivered program runs
   for a real session; like the bench's Table 2, model at least one
   nominal CPU-second at the paper's 120 MHz so preparation cost
   amortizes believably. *)
let default_min_session_cycles = 120_000_000

let default_budget_bytes = 256 * 1024

let create ?pool ?(budget_bytes = default_budget_bytes)
    ?(rates = Scenario.Delivery.default_rates)
    ?(min_session_cycles = default_min_session_cycles) () =
  let stats = Stats.create () in
  let pool = match pool with Some p -> p | None -> Support.Pool.shared () in
  { store = Store.create ~pool ~budget_bytes ~stats (); stats; rates;
    min_session_cycles }

let publish t ?run_cycles ?input p = Store.publish t.store ?run_cycles ?input p
let digests t = Store.digests t.store
let store t = t.store
let sizes_of t digest = (Store.meta t.store digest).Store.sizes

type response = {
  digest : string;
  chosen : Scenario.Delivery.representation;
  artifact : Artifact.repr;
  bytes : string;
  size : int;
  cache_hit : bool;
  outcome : Scenario.Delivery.outcome;
}

let session_cycles t (m : Store.meta) =
  max m.Store.run_cycles t.min_session_cycles

let select t digest (profile : Profile.t) =
  let m = Store.meta t.store digest in
  Profile.select ~rates:t.rates profile m.Store.sizes
    ~run_cycles:(session_cycles t m)

let outcome_for t digest (profile : Profile.t) repr =
  let m = Store.meta t.store digest in
  Scenario.Delivery.total_time ~rates:t.rates m.Store.sizes
    ~run_cycles:(session_cycles t m) ~link_bps:profile.Profile.link_bps repr

let fetch t digest (profile : Profile.t) =
  Stats.record_request t.stats;
  let chosen, outcome = select t digest profile in
  let artifact = Artifact.of_delivery chosen in
  let bytes, cache_hit = Store.materialize t.store digest artifact in
  let size = String.length bytes in
  Stats.record_served t.stats artifact size;
  { digest; chosen; artifact; bytes; size; cache_hit; outcome }

let open_session t digest =
  Stats.record_request t.stats;
  Session.open_ t.store t.stats digest

let session_request t sess ~seq name =
  Stats.record_request t.stats;
  Session.request sess ~seq name

let report t = Stats.report t.stats ~cache:(Store.cache t.store)
