(* The code-delivery engine: content-addressed store + cache behind an
   adaptive, per-request representation selector.

   [fetch] is the whole-image path: select the total-time-minimizing
   representation the client can use, materialize it (compressing on a
   cache miss), and account for it. [open_session] is the streaming
   path for paging clients. *)

type t = {
  store : Store.t;
  stats : Stats.t;
  rates : Scenario.Delivery.rates;
  min_session_cycles : int;
}

(* Corpus drivers finish in milliseconds, but a delivered program runs
   for a real session; like the bench's Table 2, model at least one
   nominal CPU-second at the paper's 120 MHz so preparation cost
   amortizes believably. *)
let default_min_session_cycles = 120_000_000

let default_budget_bytes = 256 * 1024

let create ?pool ?(budget_bytes = default_budget_bytes)
    ?(rates = Scenario.Delivery.default_rates)
    ?(min_session_cycles = default_min_session_cycles) () =
  let stats = Stats.create () in
  let pool = match pool with Some p -> p | None -> Support.Pool.shared () in
  { store = Store.create ~pool ~budget_bytes ~stats (); stats; rates;
    min_session_cycles }

let publish t ?run_cycles ?input p = Store.publish t.store ?run_cycles ?input p
let digests t = Store.digests t.store
let store t = t.store
let sizes_of t digest = (Store.meta t.store digest).Store.sizes

type response = {
  digest : string;
  chosen : Scenario.Delivery.representation;
  artifact : Artifact.repr;
  bytes : string;
  size : int;
  cache_hit : bool;
  outcome : Scenario.Delivery.outcome;
  degraded_from : Scenario.Delivery.representation option;
}

let session_cycles t (m : Store.meta) =
  max m.Store.run_cycles t.min_session_cycles

let select t digest (profile : Profile.t) =
  let m = Store.meta t.store digest in
  Profile.select ~rates:t.rates profile m.Store.sizes
    ~run_cycles:(session_cycles t m)

let outcome_for t digest (profile : Profile.t) repr =
  let m = Store.meta t.store digest in
  Scenario.Delivery.total_time ~rates:t.rates m.Store.sizes
    ~run_cycles:(session_cycles t m) ~link_bps:profile.Profile.link_bps repr

(* Verify-on-serve: every artifact with a decoder is run through its
   total decoder before its bytes leave the server, so a corrupted
   cache entry becomes a typed failure instead of a client crash. Raw
   native images have no framing to check. *)
let verify_artifact repr bytes =
  match repr with
  | Artifact.Native -> Ok ()
  | Artifact.Gzip_native -> Result.map ignore (Zip.Deflate.decompress bytes)
  | Artifact.Wire -> Result.map ignore (Wire.decompress bytes)
  | Artifact.Chunked_wire -> Result.map ignore (Wire.Chunked.of_bytes bytes)
  | Artifact.Brisc -> Result.map ignore (Brisc.of_bytes bytes)

let fetch t digest (profile : Profile.t) =
  Stats.record_request t.stats;
  let m = Store.meta t.store digest in
  let sizes = m.Store.sizes in
  let run_cycles = session_cycles t m in
  (* Degradation loop: when the chosen artifact fails verification,
     quarantine it (the store rebuilds it fresh on the next request)
     and re-select over the remaining representations — the session
     degrades to the next-best choice instead of dropping. *)
  let rec attempt failed first_choice =
    let cands =
      List.filter
        (fun r -> not (List.mem (Artifact.of_delivery r) failed))
        (Profile.feasible profile sizes)
    in
    if cands = [] then
      failwith
        (Printf.sprintf "Engine.fetch: no servable representation for %s"
           digest);
    let chosen, outcome =
      Scenario.Delivery.best_of ~rates:t.rates cands sizes ~run_cycles
        ~link_bps:profile.Profile.link_bps
    in
    let artifact = Artifact.of_delivery chosen in
    let bytes, cache_hit = Store.materialize t.store digest artifact in
    match verify_artifact artifact bytes with
    | Ok () ->
      let size = String.length bytes in
      Stats.record_served t.stats artifact size;
      let degraded_from =
        match first_choice with
        | Some c when c <> chosen -> Some c
        | _ -> None
      in
      if degraded_from <> None then Stats.record_degraded t.stats;
      { digest; chosen; artifact; bytes; size; cache_hit; outcome;
        degraded_from }
    | Error e ->
      Stats.record_decode_failure t.stats ~digest artifact e;
      Store.quarantine t.store digest artifact;
      attempt (artifact :: failed)
        (match first_choice with None -> Some chosen | s -> s)
  in
  attempt [] None

let open_session t digest =
  Stats.record_request t.stats;
  Session.open_ t.store t.stats digest

let session_request t sess ~seq name =
  Stats.record_request t.stats;
  Session.request sess ~seq name

let report t = Stats.report t.stats ~cache:(Store.cache t.store)
