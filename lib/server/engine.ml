(* The code-delivery engine: content-addressed store + cache behind an
   adaptive, per-request representation selector.

   [fetch] is the whole-image path: enumerate every (artifact, mode)
   candidate the codec registry offers, keep those the client profile
   can use, pick the one minimizing modelled total time (transfer of
   the artifact's actual stored bytes + preparation + run), materialize
   it (compressing on a cache miss), verify it decodes, and account for
   it. [open_session] is the streaming path for paging clients.

   The candidate menu is registry-derived: a newly registered codec
   with delivery modes enters selection, degradation, and stats with no
   engine changes. *)

type t = {
  store : Store.t;
  stats : Stats.t;
  rates : Scenario.Delivery.rates;
  min_session_cycles : int;
  policy : Tune.Policy.t option;
      (* tuned serving table, consulted before live scoring *)
}

(* Corpus drivers finish in milliseconds, but a delivered program runs
   for a real session; like the bench's Table 2, model at least one
   nominal CPU-second at the paper's 120 MHz so preparation cost
   amortizes believably. *)
let default_min_session_cycles = 120_000_000

let default_budget_bytes = 256 * 1024

let create ?pool ?shards ?(budget_bytes = default_budget_bytes)
    ?(rates = Scenario.Delivery.default_rates)
    ?(min_session_cycles = default_min_session_cycles) ?policy () =
  let stats = Stats.create () in
  let pool = match pool with Some p -> p | None -> Support.Pool.shared () in
  { store = Store.create ~pool ?shards ~budget_bytes ~stats (); stats; rates;
    min_session_cycles; policy }

let publish t ?run_cycles ?input p = Store.publish t.store ?run_cycles ?input p
let digests t = Store.digests t.store
let store t = t.store
let sizes_of t digest = (Store.meta t.store digest).Store.sizes

(* How a response describes itself: the artifact's registry name plus
   the delivery mode's preparation verb. *)
let label_of artifact (mode : Scenario.Delivery.representation) =
  match mode with
  | Scenario.Delivery.Raw_native | Scenario.Delivery.Gzipped_native ->
    Artifact.name artifact
  | Scenario.Delivery.Wire_format | Scenario.Delivery.Brisc_jit ->
    Artifact.name artifact ^ "+JIT"
  | Scenario.Delivery.Brisc_interp -> Artifact.name artifact ^ " interp"

type response = {
  digest : string;
  chosen : Scenario.Delivery.representation;
  artifact : Artifact.repr;
  label : string;
  bytes : string;
  size : int;
  cache_hit : bool;
  outcome : Scenario.Delivery.outcome;
  degraded_from : string option;
  context : string option;
      (* digest of the held context the serve was encoded against
         (shared dictionary or delta base); None for context-free *)
}

let session_cycles t (m : Store.meta) =
  max m.Store.run_cycles t.min_session_cycles

let select t digest (profile : Profile.t) =
  let m = Store.meta t.store digest in
  Profile.select ~rates:t.rates profile m.Store.sizes
    ~run_cycles:(session_cycles t m)

let outcome_for t digest (profile : Profile.t) repr =
  let m = Store.meta t.store digest in
  Scenario.Delivery.total_time ~rates:t.rates m.Store.sizes
    ~run_cycles:(session_cycles t m) ~link_bps:profile.Profile.link_bps repr

(* Every (artifact, mode) pair the registry offers this client, minus
   artifacts that already failed verification this fetch. Feasibility is
   per concrete artifact: the mode's resident-memory rule applied to the
   artifact's actual stored size.

   Context-requiring representations join the menu only for what the
   client advertises as held (by digest): shared-dictionary codecs when
   the held set names the dictionary, and the delta update channel when
   it names a previously published program — then the patch against
   that base competes on its actual bytes like any other candidate. *)
let candidates t (m : Store.meta) (profile : Profile.t) ~held ~failed digest =
  let native_bytes = m.Store.sizes.Scenario.Delivery.native_bytes in
  let feasible r mode artifact_bytes ctx =
    if Profile.mode_feasible profile ~mode ~artifact_bytes ~native_bytes then
      Some (r, mode, artifact_bytes, ctx)
    else None
  in
  let context_free =
    List.concat_map
      (fun r ->
        if List.mem (Artifact.name r) failed then []
        else
          let artifact_bytes = Store.size_of m r in
          List.filter_map
            (fun mode -> feasible r mode artifact_bytes None)
            (Artifact.modes r))
      (Artifact.all ())
  in
  let contexted =
    if held = [] then []
    else
      List.concat_map
        (fun (r, needs) ->
          if List.mem (Artifact.name r) failed then []
          else
            match needs with
            | `Shared_dict d when List.mem d held ->
              let ctx = Codec.Context.builtin () in
              let artifact_bytes =
                Store.contexted_size t.store digest r ~ctx
              in
              List.filter_map
                (fun mode -> feasible r mode artifact_bytes (Some ctx))
                (Artifact.modes r)
            | `Base _ ->
              (* the update channel: one candidate per held base the
                 store still knows (skipping the degenerate self-patch) *)
              List.concat_map
                (fun h ->
                  if h = digest then []
                  else
                    match Store.find_meta t.store h with
                    | None -> []
                    | Some bm ->
                      let ctx =
                        Codec.Context.base
                          ~ir_text:
                            (Ir.Printer.program_to_string bm.Store.ir)
                      in
                      let artifact_bytes =
                        Store.contexted_size t.store digest r ~ctx
                      in
                      List.filter_map
                        (fun mode ->
                          feasible r mode artifact_bytes (Some ctx))
                        (Artifact.modes r))
                held
            | _ -> [])
        (Artifact.contexted ())
  in
  context_free @ contexted

(* In-place interpretation is the mode of last resort: when nothing fits
   the client's constraints, serve any live artifact that can be
   interpreted, memory rule waived (as the legacy selector did). *)
let last_resort (m : Store.meta) ~failed =
  List.filter_map
    (fun r ->
      if
        (not (List.mem (Artifact.name r) failed))
        && List.mem Scenario.Delivery.Brisc_interp (Artifact.modes r)
      then Some (r, Scenario.Delivery.Brisc_interp, Store.size_of m r, None)
      else None)
    (Artifact.all ())

let fetch ?(held = []) t digest (profile : Profile.t) =
  Stats.record_request t.stats;
  let m = Store.meta t.store digest in
  let native_bytes = m.Store.sizes.Scenario.Delivery.native_bytes in
  let run_cycles = session_cycles t m in
  (* Degradation loop: when the chosen artifact fails verification,
     quarantine it (the store rebuilds it fresh on the next request)
     and re-select over the remaining candidates — the session degrades
     to the next-best choice instead of dropping. *)
  let rec attempt failed first_choice =
    let cands =
      match candidates t m profile ~held ~failed digest with
      | [] -> last_resort m ~failed
      | cs -> cs
    in
    if cands = [] then
      failwith
        (Printf.sprintf "Engine.fetch: no servable representation for %s"
           digest);
    let score (r, mode, artifact_bytes, ctx) =
      ( (r, mode, ctx),
        Scenario.Delivery.total_time_for ~rates:t.rates ~mode ~artifact_bytes
          ~native_bytes ~run_cycles ~link_bps:profile.Profile.link_bps () )
    in
    let scored = List.map score cands in
    (* Tuned policy first: if the table names a codec that is still a
       feasible, non-quarantined candidate for this (profile, digest),
       serve it without re-deriving the argmin. A stale or infeasible
       pick — and any candidate knocked out by the degradation loop —
       falls through to live scoring. *)
    let tuned =
      match t.policy with
      | None -> None
      | Some pol -> (
        match
          Tune.Policy.lookup pol ~profile:profile.Profile.name ~digest
        with
        | None -> None
        | Some pick ->
          List.find_opt
            (fun ((r, _, _), _) -> Artifact.name r = pick.Tune.Policy.codec)
            scored)
    in
    let (artifact, chosen, ctx), outcome =
      match tuned with
      | Some c -> c
      | None ->
        (* strict-min fold: ties keep the earlier (registry-order) entry *)
        List.fold_left
          (fun (bc, bo) (c, o) ->
            if o.Scenario.Delivery.total_s < bo.Scenario.Delivery.total_s then
              (c, o)
            else (bc, bo))
          (List.hd scored) (List.tl scored)
    in
    let label = label_of artifact chosen in
    let bytes, cache_hit = Store.materialize ?ctx t.store digest artifact in
    (* verify with the context the client will decode under — a
       contexted serve that does not decode against its own context is
       exactly as poisoned as a corrupt context-free one *)
    match Codec.decode ?ctx (Artifact.codec artifact) bytes with
    | Ok _ ->
      (* a policy hit only counts once the pick actually serves: a
         tuned pick that fails verification degrades like any other
         candidate and must not inflate the table's success rate *)
      if tuned <> None then Stats.record_policy_hit t.stats;
      let size = String.length bytes in
      Stats.record_served t.stats artifact size;
      let degraded_from =
        match first_choice with
        | Some l when l <> label -> Some l
        | _ -> None
      in
      if degraded_from <> None then Stats.record_degraded t.stats;
      { digest; chosen; artifact; label; bytes; size; cache_hit; outcome;
        degraded_from; context = Option.map Codec.Context.digest ctx }
    | Error e ->
      Stats.record_decode_failure t.stats ~digest artifact e;
      Store.quarantine ?ctx t.store digest artifact;
      attempt
        (Artifact.name artifact :: failed)
        (match first_choice with None -> Some label | s -> s)
  in
  attempt [] None

let open_session t digest =
  Stats.record_request t.stats;
  Session.open_ t.store t.stats digest

(* The serve path's registry-hygiene gate: a chunked session may only
   stream a codec the registry marked streamable; everything else is a
   typed refusal, not an attempt. *)
let open_session_for t ~codec digest =
  Stats.record_request t.stats;
  match Codec.find codec with
  | None -> Error (`Unknown_codec codec)
  | Some e when not e.Codec.streamable -> Error (`Not_streamable codec)
  | Some _ ->
    Ok (Session.open_artifact t.store t.stats digest (Artifact.by_name codec))

let session_request t sess ~seq name =
  Stats.record_request t.stats;
  Session.request sess ~seq name

let report t = Stats.report t.stats ~cache:(Store.cache_stats t.store)
