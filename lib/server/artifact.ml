(* The representations the delivery server stores and serves — a thin
   veneer over the [Codec] registry. A repr is just a registered
   codec's (name, tag), so it compares structurally (safe as a Hashtbl
   key), and the full menu is derived from the registry: adding a
   representation to the server is one [Codec.register] call. *)

type repr = { name : string; tag : string }

let of_entry (e : Codec.entry) =
  { name = Codec.name e.Codec.codec; tag = Codec.tag e.Codec.codec }

(* every context-free artifact the server materializes unprompted, in
   registry (= serving tie-break) order. Context-requiring entries are
   deliberately NOT here: publish, the first-miss menu prefetch, the
   fault injector and the stats report all iterate this list, and a
   contexted representation only exists for clients that advertise the
   matching held digest (see [contexted] and the engine's held-aware
   candidate enumeration). *)
let all () =
  List.filter_map
    (fun (e : Codec.entry) ->
      match e.Codec.needs with `None -> Some (of_entry e) | _ -> None)
    (Codec.artifacts ())

(* the servable context-requiring entries (shared-dictionary codecs and
   the per-request delta channel), with what each one needs. Drawn from
   the full registry, not [Codec.artifacts]: `Base entries are not
   storable artifacts, but they are servable representations. *)
let contexted () =
  List.filter_map
    (fun (e : Codec.entry) ->
      match e.Codec.needs with
      | `None -> None
      | needs when e.Codec.modes <> [] || e.Codec.streamable ->
        Some (of_entry e, needs)
      | _ -> None)
    (Codec.all ())

let name r = r.name
let tag r = r.tag

let entry r = Codec.find_exn r.name
let codec r = (entry r).Codec.codec
let modes r = (entry r).Codec.modes
let streamable r = (entry r).Codec.streamable
let needs r = (entry r).Codec.needs

let by_name n =
  match Codec.find n with
  | Some e -> of_entry e
  | None -> invalid_arg ("Artifact.by_name: unknown codec " ^ n)

(* The built-ins, by name; [by_name] validates against the registry at
   module init. *)
let native = by_name "native"
let gzip_native = by_name "gzip+native"
let wire = by_name "wire"
let wire_range = by_name "wire+range"
let wire_range_opt = by_name "wire+range-opt"
let deflate_opt = by_name "deflate-opt"
let chunked_wire = by_name "chunked-wire"
let brisc = by_name "brisc"

(* the contexted representations (served only against held digests) *)
let wire_shared = by_name "wire+shared"
let brisc_shared = by_name "brisc+shared"
let delta = by_name "delta"

(* Legacy size-card mapping: which canonical artifact a delivery-model
   representation ships. The registry-driven engine picks per-codec
   candidates instead; this backs the sizes-record paths. *)
let of_delivery = function
  | Scenario.Delivery.Raw_native -> native
  | Scenario.Delivery.Gzipped_native -> gzip_native
  | Scenario.Delivery.Wire_format -> wire
  | Scenario.Delivery.Brisc_jit | Scenario.Delivery.Brisc_interp -> brisc

let to_delivery r =
  match modes r with
  | m :: _ -> m
  | [] -> Scenario.Delivery.Wire_format (* streaming-only: wire-equivalent *)
