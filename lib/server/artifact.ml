(* The representations the delivery server stores and serves. A BRISC
   image is one artifact whether the client will JIT it or interpret it
   in place, so the serving-side repr is coarser than
   [Scenario.Delivery.representation]; [of_delivery]/[to_delivery]
   translate between the two views. *)

type repr =
  | Native        (* raw x86-like image *)
  | Gzip_native   (* deflated native image *)
  | Wire          (* monolithic §3 wire format *)
  | Chunked_wire  (* function-at-a-time wire format *)
  | Brisc         (* §4 byte-coded compressed executable *)

let all = [ Native; Gzip_native; Wire; Chunked_wire; Brisc ]

let name = function
  | Native -> "native"
  | Gzip_native -> "gzip+native"
  | Wire -> "wire"
  | Chunked_wire -> "chunked-wire"
  | Brisc -> "brisc"

let tag = function
  | Native -> "n"
  | Gzip_native -> "g"
  | Wire -> "w"
  | Chunked_wire -> "c"
  | Brisc -> "b"

let of_delivery = function
  | Scenario.Delivery.Raw_native -> Native
  | Scenario.Delivery.Gzipped_native -> Gzip_native
  | Scenario.Delivery.Wire_format -> Wire
  | Scenario.Delivery.Brisc_jit | Scenario.Delivery.Brisc_interp -> Brisc

let to_delivery = function
  | Native -> Scenario.Delivery.Raw_native
  | Gzip_native -> Scenario.Delivery.Gzipped_native
  | Wire | Chunked_wire -> Scenario.Delivery.Wire_format
  | Brisc -> Scenario.Delivery.Brisc_interp
