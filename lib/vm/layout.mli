(** Memory layout shared by the VM interpreter, the BRISC interpreter and
    the native simulator, so function pointers and global addresses agree
    across all three execution engines. *)

val data_base : int
(** First data address; globals are laid out upward from here,
    4-byte aligned. *)

val func_address : int -> int
(** Synthetic code address of the [i]-th function (multiples of 8
    starting at 8, disjoint from data addresses). *)

val func_index_of_address : int -> int option
(** Inverse of {!func_address}; [None] for non-function addresses. *)

val globals_table : Isa.vprogram -> (string, int) Hashtbl.t * int
(** Address of every global, and the end of the data segment. *)

(** {2 Profile-guided reordering}

    Compression-aware layout: function order decides which functions
    share a demand-paged page (Scenario.Paged packs consecutive
    chunks) and feeds the wire compressor's MTF locality; block order
    co-locates hot paths inside a function for the modelled icache and
    the BRISC Markov contexts. All transforms are name-preserving
    permutations — every engine resolves symbols against its own
    input's name table and branches against labels — so reordered
    programs are semantically equivalent to source order (pinned by
    the differential suite). Equally-hot items keep source order, so
    the transforms are deterministic and idempotent. *)

val order_by_heat : hot:(string -> int) -> string list -> string list
(** Stable descending sort by [hot]; ties keep input order. *)

val affinity_heat : trace:string list -> string -> int
(** Call-affinity heat (Pettis–Hansen flavoured) from a dynamic call
    trace ({!Profile.call_trace}): functions that appear consecutively
    in the trace are spliced into chains heaviest-pair-first, chains
    lay out in first-touch order, and the returned heat reproduces
    that order under {!order_by_heat}. Co-locating a caller with its
    callee removes that dynamic edge's page crossings, which is what
    an LRU pager charges for; functions absent from the trace get
    [min_int] and sink to the cold tail. *)

val reorder_functions : hot:(string -> int) -> Isa.vprogram -> Isa.vprogram
(** Hottest functions first (entry counts from {!Profile}). *)

val reorder_ir :
  hot:(string -> int) -> Ir.Tree.program -> Ir.Tree.program
(** The same permutation at the IR level — this is what the
    chunked-wire pager pages, so it is where function order cuts
    faults. *)

val reorder_blocks :
  bhot:(string -> string -> int) -> Isa.vprogram -> Isa.vprogram
(** Within each function: entry block stays first, labeled blocks chain
    hottest-first. Fallthrough edges broken by the permutation get an
    explicit [Jmp]; a trailing [Jmp] into what is now the next block is
    dropped. Functions whose last block lacks a terminator are left
    untouched (their off-the-end trap must keep firing). *)

val hot_layout :
  hot:(string -> int) ->
  bhot:(string -> string -> int) ->
  Isa.vprogram ->
  Isa.vprogram
(** [reorder_functions] then [reorder_blocks]. *)
