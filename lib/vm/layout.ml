let data_base = 0x1000

let func_address idx = 8 * (idx + 1)

let func_index_of_address a =
  if a >= 8 && a < data_base && a mod 8 = 0 then Some ((a / 8) - 1) else None

let globals_table (p : Isa.vprogram) =
  let tbl = Hashtbl.create 64 in
  let next = ref data_base in
  List.iter
    (fun (name, size, _) ->
      let aligned = (!next + 3) / 4 * 4 in
      Hashtbl.add tbl name aligned;
      next := aligned + max 1 size)
    p.Isa.globals;
  (tbl, !next)

(* ---- profile-guided reordering ----

   Function order decides which functions share a demand-paged page
   (Scenario.Paged packs consecutive chunks), and block order decides
   dispatch-locality inside a function (better icache behavior and
   better MTF/Markov context reuse in the compressors). Both transforms
   are name-preserving permutations: every engine resolves symbols
   against its own input's name table and branches against labels, so
   semantics are unchanged — the differential suite pins this. *)

(* stable descending sort by heat: equally-hot items (in particular the
   never-executed cold tail) keep source order, so the transform is
   deterministic and idempotent *)
let order_by_heat ~hot names =
  let keyed = Array.of_list (List.mapi (fun i n -> (i, hot n, n)) names) in
  Array.sort
    (fun (i1, h1, _) (i2, h2, _) ->
      if h1 <> h2 then compare h2 h1 else compare i1 i2)
    keyed;
  Array.to_list (Array.map (fun (_, _, n) -> n) keyed)

(* ---- call-affinity ordering (Pettis–Hansen flavoured) ----

   Under an LRU pager the faults that matter are dynamic control
   transfers crossing a page boundary; a caller and its callee on the
   same page never fault on that edge. So the ordering objective is
   pairwise: weight each unordered pair of functions by how often they
   appear consecutively in the dynamic call trace, then greedily splice
   chains together heaviest-edge-first (a merge is allowed only when
   both functions sit at an end of their current chain, so already
   committed adjacencies are never broken). Chains are laid out in
   first-touch order and functions absent from the trace sink to the
   cold tail — the packer then puts each chain's neighbours on the same
   page. *)
let affinity_heat ~trace =
  (* intern trace names in first-touch order *)
  let id = Hashtbl.create 64 in
  let rev_names = ref [] in
  let nn = ref 0 in
  List.iter
    (fun s ->
      if not (Hashtbl.mem id s) then begin
        Hashtbl.add id s !nn;
        rev_names := s :: !rev_names;
        incr nn
      end)
    trace;
  let names = Array.of_list (List.rev !rev_names) in
  let nn = !nn in
  (* consecutive-pair weights, unordered *)
  let w = Hashtbl.create 256 in
  let rec pairs = function
    | a :: (b :: _ as rest) ->
      let ia = Hashtbl.find id a and ib = Hashtbl.find id b in
      if ia <> ib then begin
        let k = if ia < ib then (ia, ib) else (ib, ia) in
        Hashtbl.replace w k
          (1 + match Hashtbl.find_opt w k with Some x -> x | None -> 0)
      end;
      pairs rest
    | _ -> ()
  in
  pairs trace;
  let edges =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) w []
    |> List.sort (fun ((k1 : int * int), (v1 : int)) (k2, v2) ->
           if v1 <> v2 then compare v2 v1 else compare k1 k2)
  in
  (* chains as ordered member lists; merge by splicing at the ends *)
  let chain_of = Array.init nn (fun i -> i) in
  let members = Array.init nn (fun i -> [ i ]) in
  let is_end l x =
    match l with
    | [] -> false
    | h :: _ -> h = x || List.nth l (List.length l - 1) = x
  in
  List.iter
    (fun ((a, b), _) ->
      let ca = chain_of.(a) and cb = chain_of.(b) in
      if ca <> cb && is_end members.(ca) a && is_end members.(cb) b then begin
        (* orient so [a] ends the first list and [b] starts the second *)
        let la =
          if List.nth members.(ca) (List.length members.(ca) - 1) = a then
            members.(ca)
          else List.rev members.(ca)
        in
        let lb =
          match members.(cb) with
          | h :: _ when h = b -> members.(cb)
          | _ -> List.rev members.(cb)
        in
        let merged = la @ lb in
        members.(ca) <- merged;
        members.(cb) <- [];
        List.iter (fun x -> chain_of.(x) <- ca) lb
      end)
    edges;
  (* lay chains out by the first touch of their earliest member, keeping
     the trace's macro order; position decides heat *)
  let chains =
    Array.to_list members
    |> List.filter (fun l -> l <> [])
    |> List.sort (fun l1 l2 ->
           compare (List.fold_left min max_int l1) (List.fold_left min max_int l2))
  in
  let pos = Hashtbl.create (2 * nn) in
  List.iteri (fun p i -> Hashtbl.add pos names.(i) p) (List.concat chains);
  fun name ->
    match Hashtbl.find_opt pos name with
    | Some p -> nn - p  (* earlier in the chain layout = hotter *)
    | None -> min_int

let reorder_functions ~hot (p : Isa.vprogram) =
  let by_name =
    List.map (fun (f : Isa.vfunc) -> (f.Isa.name, f)) p.Isa.funcs
  in
  let order = order_by_heat ~hot (List.map fst by_name) in
  { p with Isa.funcs = List.map (fun n -> List.assoc n by_name) order }

let reorder_ir ~hot (p : Ir.Tree.program) =
  let by_name =
    List.map (fun (f : Ir.Tree.func) -> (f.Ir.Tree.fname, f)) p.Ir.Tree.funcs
  in
  let order = order_by_heat ~hot (List.map fst by_name) in
  { p with Ir.Tree.funcs = List.map (fun n -> List.assoc n by_name) order }

(* ---- basic-block reordering ----

   A block is a leader label and the instructions up to the next label;
   the entry block (before any label) stays first. Blocks are chained
   hottest-first; fallthrough edges broken by the permutation get an
   explicit [Jmp] appended, and a trailing [Jmp] into what is now the
   next block is dropped. A function whose last block can fall off the
   end (no terminator) is left untouched: its off-the-end trap must
   keep firing at the same point. *)

let block_terminated = function
  | Isa.Jmp _ | Isa.Rjr -> true
  | _ -> false

let split_blocks code =
  let rec go acc cur cur_label = function
    | [] -> List.rev ((cur_label, List.rev cur) :: acc)
    | Isa.Label l :: rest ->
      go ((cur_label, List.rev cur) :: acc) [] (Some l) rest
    | ins :: rest -> go acc (ins :: cur) cur_label rest
  in
  go [] [] None code

let reorder_blocks_func ~bhot (f : Isa.vfunc) =
  match split_blocks f.Isa.code with
  | [] | [ _ ] -> f
  | (None, entry) :: rest
    when List.for_all (fun (l, _) -> l <> None) rest ->
    let labeled =
      List.map
        (fun (l, body) -> (Option.get l, body))
        rest
    in
    (* the last block must not fall through off the end *)
    let _, last_body = List.nth labeled (List.length labeled - 1) in
    let ends_terminated body =
      match List.rev body with t :: _ -> block_terminated t | [] -> false
    in
    if not (ends_terminated last_body) && last_body <> [] then f
    else if last_body = [] then f
    else begin
      (* fallthrough successor of each block in source order *)
      let names = List.map fst labeled in
      let succ_of =
        let tbl = Hashtbl.create 16 in
        let rec fill = function
          | (l1, _) :: ((l2, _) :: _ as rest) ->
            Hashtbl.replace tbl l1 l2;
            fill rest
          | _ -> ()
        in
        fill labeled;
        fun l -> Hashtbl.find_opt tbl l
      in
      let entry_succ = match names with n :: _ -> Some n | [] -> None in
      let order = order_by_heat ~hot:(bhot f.Isa.name) names in
      let body_of l = List.assoc l labeled in
      (* stitch: append Jmp where fallthrough broke, drop a Jmp into
         the new next block *)
      let stitch body ~succ ~next =
        let rev = List.rev body in
        match rev with
        | Isa.Jmp t :: tail when Some t = next -> List.rev tail
        | t :: _ when block_terminated t -> body
        | _ -> (
          match succ with
          | Some s when Some s = next -> body
          | Some s -> body @ [ Isa.Jmp s ]
          | None -> body)
      in
      let rec emit = function
        | [] -> []
        | l :: rest ->
          let next = match rest with n :: _ -> Some n | [] -> None in
          (Isa.Label l :: stitch (body_of l) ~succ:(succ_of l) ~next)
          @ emit rest
      in
      let entry_next = match order with n :: _ -> Some n | [] -> None in
      let code =
        stitch entry ~succ:entry_succ ~next:entry_next @ emit order
      in
      (* size guard: chaining hottest-first drops jumps into hot
         successors but pays a stitch [Jmp] per broken fallthrough;
         where the stitches outnumber the drops the reorder would grow
         the compressed image, so keep source order there. This is what
         makes the layout pass ratio-safe by construction. *)
      if List.length code > List.length f.Isa.code then f
      else { f with Isa.code }
    end
  | _ -> f

let reorder_blocks ~bhot (p : Isa.vprogram) =
  { p with Isa.funcs = List.map (reorder_blocks_func ~bhot) p.Isa.funcs }

let hot_layout ~hot ~bhot (p : Isa.vprogram) =
  reorder_blocks ~bhot (reorder_functions ~hot p)
