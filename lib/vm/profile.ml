(* Execution profiles for the hot-layout pass: function entry counts
   from the interpreter's on_call hook and block execution counts from
   its on_label hook. Counts key on names (function name, label), not
   indices, so a profile collected on the source-order program applies
   unchanged to any reordering of it. *)

type t = {
  fcounts : (string, int) Hashtbl.t;
  bcounts : (string * string, int) Hashtbl.t;
  forder : (string, int) Hashtbl.t;  (* function -> first-call rank *)
  mutable nseen : int;
  mutable trace_rev : string list;  (* call sequence, newest first *)
  mutable trace_len : int;
}

(* keeps profile memory bounded on huge runs; consecutive-pair affinity
   saturates long before this on the corpus programs *)
let trace_cap = 1 lsl 16

let empty () =
  {
    fcounts = Hashtbl.create 32;
    bcounts = Hashtbl.create 64;
    forder = Hashtbl.create 32;
    nseen = 0;
    trace_rev = [];
    trace_len = 0;
  }

let bump tbl k =
  Hashtbl.replace tbl k
    (1 + match Hashtbl.find_opt tbl k with Some n -> n | None -> 0)

let record_call t name =
  bump t.fcounts name;
  if not (Hashtbl.mem t.forder name) then begin
    Hashtbl.add t.forder name t.nseen;
    t.nseen <- t.nseen + 1
  end;
  if t.trace_len < trace_cap then begin
    t.trace_rev <- name :: t.trace_rev;
    t.trace_len <- t.trace_len + 1
  end
let record_block t name label = bump t.bcounts (name, label)

let collect ?input ?fuel ?entry (p : Isa.vprogram) =
  let names =
    Array.of_list (List.map (fun (f : Isa.vfunc) -> f.Isa.name) p.Isa.funcs)
  in
  let t = empty () in
  let _ =
    Interp.run ?input ?fuel ?entry
      ~on_call:(fun i -> record_call t names.(i))
      ~on_label:(fun i l -> record_block t names.(i) l)
      p
  in
  t

let func_count t name =
  match Hashtbl.find_opt t.fcounts name with Some n -> n | None -> 0

let block_count t name label =
  match Hashtbl.find_opt t.bcounts (name, label) with Some n -> n | None -> 0

let func_hot t = func_count t
let block_hot t name label = block_count t name label

(* Temporal-locality heat: a function's placement priority is how early
   it is first called, not how often. Under an LRU pager, functions
   referenced close together in time want to share pages — first-call
   rank is a faithful proxy for the (largely cyclic) reference order,
   where raw call counts scatter temporal neighbours across the image.
   Earlier first touch maps to a larger heat value so this plugs
   straight into {!Layout.reorder_functions}; never-called functions
   get [min_int] and sink to the cold tail in source order. *)
let func_locality t name =
  match Hashtbl.find_opt t.forder name with
  | Some rank -> -rank
  | None -> min_int

let call_trace t = List.rev t.trace_rev
