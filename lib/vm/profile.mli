(** Execution profiles feeding the hot-layout pass ({!Layout}).

    A profile is two count tables — function entries (from
    {!Interp.run}'s [on_call]) and block executions (from [on_label]) —
    keyed by names rather than indices, so a profile collected on the
    source-order program applies unchanged to any reordering. *)

type t

val empty : unit -> t

val collect :
  ?input:string -> ?fuel:int -> ?entry:string -> Isa.vprogram -> t
(** Run the program under {!Interp.run} and record its profile.
    @raise Interp.Runtime_error as {!Interp.run} does. *)

val record_call : t -> string -> unit
val record_block : t -> string -> string -> unit
(** Manual accumulation (e.g. merging several training inputs into one
    profile). *)

val func_count : t -> string -> int
val block_count : t -> string -> string -> int

val func_hot : t -> string -> int
(** [func_count] as the [hot] callback {!Layout.reorder_functions}
    takes. *)

val block_hot : t -> string -> string -> int
(** [block_count] as the [bhot] callback {!Layout.reorder_blocks}
    takes. *)

val func_locality : t -> string -> int
(** Temporal-locality heat for {!Layout.reorder_functions}: earlier
    first call maps to larger heat, so the layout follows the
    program's reference order — what an LRU pager rewards — rather
    than raw call counts, which scatter temporal neighbours.
    Never-called functions get [min_int] (the cold tail). *)

val call_trace : t -> string list
(** The recorded dynamic call sequence, oldest first (capped at 64 K
    entries). Feed to {!Layout.affinity_heat} for the page-layout
    ordering. *)
