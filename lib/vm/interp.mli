(** Reference interpreter for OmniVM code.

    Executes a {!Isa.vprogram} over a flat byte memory: globals are laid
    out from {!data_base} upwards, the stack occupies the top of memory
    and grows down, and every function gets a synthetic code address so
    function pointers stored in memory work. All arithmetic is 32-bit
    two's-complement (values are kept sign-extended in 63-bit OCaml
    ints). Division by zero and memory accesses outside the image raise
    {!Runtime_error}.

    The interpreter doubles as the semantic oracle for the BRISC
    interpreter and the native-code simulator: all three must produce the
    same outputs and exit codes on the corpus (tested in
    [test/test_exec.ml]). *)

exception Runtime_error of string

type result = {
  exit_code : int;        (** return value of [main] *)
  output : string;        (** bytes written via [putchar]/[print_int] *)
  steps : int;            (** instructions executed *)
}

val data_base : int
val default_mem_size : int

val run :
  ?mem_size:int ->
  ?input:string ->
  ?fuel:int ->
  ?entry:string ->
  ?on_call:(int -> unit) ->
  ?on_label:(int -> string -> unit) ->
  Isa.vprogram ->
  result
(** Run starting at [entry] (default ["main"], called with no
    arguments). [input] feeds [getchar] (EOF = -1 afterwards). [fuel]
    bounds executed instructions (default 200 million). [on_call] fires
    with the callee's function index at the entry call and at every
    direct or indirect call (the paging scenario's reference trace);
    [on_label] fires with (function index, label) each time a [Label]
    executes — together they are the block-level profile the
    hot-layout pass consumes (see {!Profile} and {!Layout}).
    @raise Runtime_error on traps, unknown entry, or fuel exhaustion. *)

(** {2 Demand-paged execution}

    The dispatch loop reaches code only through a fetch callback,
    invoked at entry and at each control transfer into a function —
    never per instruction — so a {!Pager}-backed fetch gives
    fault-on-first-touch execution of compressed images: the scenario
    layer binds chunked-wire chunks to frames this way
    (Scenario.Paged). The executing frame is held by the loop between
    transfers, so the pager may evict the current function; the next
    transfer back into it faults it in again. *)

type frame
(** One function's code, flattened and label-indexed for dispatch. *)

val prepare_func : Isa.vfunc -> frame

type paged_code = {
  names : string array;  (** function name of each index, defines the
                             symbol table (calls resolve against it) *)
  globals : (string * int * int list option) list;
  fetch : int -> frame;
      (** called at entry and per control transfer; may decompress, and
          may raise (e.g. [Support.Decode_error.Fail] from a corrupt
          chunk) — the raise surfaces to {!run_code}'s caller *)
}

val run_code :
  ?mem_size:int ->
  ?input:string ->
  ?fuel:int ->
  ?entry:string ->
  ?on_call:(int -> unit) ->
  ?on_label:(int -> string -> unit) ->
  paged_code ->
  result
(** As {!run}, over fetched code. [run p] is [run_code] with an eager
    array fetch. *)

val global_address : Isa.vprogram -> string -> int
(** Address a global would get under this interpreter's layout (exposed
    so tests can poke memory). *)
