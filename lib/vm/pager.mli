(** Demand pager for compressed code.

    Items — one per function, or one per packed page of functions — are
    materialized by a caller-supplied [load] on first touch, held under
    a hard working-set byte budget, and evicted least-recently-used.
    Every fault is charged a modelled decompression stall (cycles), so
    execution engines running against a pager report fault counts,
    stall cycles and resident-set high-water marks deterministically:
    the accounting involves no wall clocks and is byte-identical across
    runs, which is what lets [perf_gate --paging] hold ceilings on it
    in CI without a noise opt-out.

    The eviction order is strict LRU with a unique logical clock per
    touch, so the victim sequence is a pure function of the touch
    sequence (property-tested against a naive oracle in
    [test/test_pager.ml]). An item larger than the entire budget still
    has to run: it is pinned while faulting in, everything else is
    evicted, and the high-water mark records the overshoot. *)

type stats = {
  mutable faults : int;         (** loads, incl. re-loads after eviction *)
  mutable hits : int;           (** touches that found the item resident *)
  mutable evictions : int;
  mutable stall_cycles : int;   (** modelled decompression stall, total *)
  mutable loaded_bytes : int;   (** resident-cost bytes ever materialized *)
  mutable resident_bytes : int; (** current working set *)
  mutable resident_hwm : int;   (** high-water mark, post-eviction *)
}

type 'a t

type 'a load = {
  item : 'a;
  cost_bytes : int;    (** resident working-set cost (e.g. decompressed
                           frame bytes) *)
  stall_cycles : int;  (** modelled fault stall (e.g. proportional to
                           the compressed bytes expanded) *)
}

val create : budget_bytes:int -> items:int -> (int -> 'a load) -> 'a t
(** [create ~budget_bytes ~items load] pages over item indices
    [0 .. items-1]. [load i] materializes item [i]; it runs once per
    fault (not per touch) and may raise — the pager stays consistent,
    the item simply is not admitted. *)

val get : 'a t -> int -> 'a
(** Touch item [i]: a hit returns the resident value; a miss runs
    [load], charges the stall, admits the item and evicts LRU victims
    until the budget holds again. *)

val resident : 'a t -> int -> bool
val resident_indices : 'a t -> int list
(** Currently resident items, ascending. *)

val stats : 'a t -> stats
(** Live counters (not a snapshot). *)
