(* Demand pager for compressed code: items (functions or packed pages)
   are materialized on first touch, charged a modelled decompression
   stall, and evicted least-recently-used once the resident set exceeds
   a hard byte budget. The pager is generic in what it holds — the VM
   interpreter pages prepared frames, the BRISC interpreter pages raw
   compressed bodies — and its accounting is deterministic: no wall
   clocks, only modelled cycles, so gates built on it are noise-free. *)

type stats = {
  mutable faults : int;         (* loads, incl. re-loads after eviction *)
  mutable hits : int;           (* touches that found the item resident *)
  mutable evictions : int;
  mutable stall_cycles : int;   (* modelled decompression stall, total *)
  mutable loaded_bytes : int;   (* resident-cost bytes ever materialized *)
  mutable resident_bytes : int; (* current working set *)
  mutable resident_hwm : int;   (* high-water mark of resident_bytes *)
}

let fresh_stats () =
  {
    faults = 0;
    hits = 0;
    evictions = 0;
    stall_cycles = 0;
    loaded_bytes = 0;
    resident_bytes = 0;
    resident_hwm = 0;
  }

type 'a load = { item : 'a; cost_bytes : int; stall_cycles : int }

type 'a t = {
  budget : int;
  load : int -> 'a load;
  slots : 'a option array;
  costs : int array;
  last_use : int array;
  mutable clock : int;
  stats : stats;
}

let create ~budget_bytes ~items load =
  {
    budget = max 0 budget_bytes;
    load;
    slots = Array.make (max 1 items) None;
    costs = Array.make (max 1 items) 0;
    last_use = Array.make (max 1 items) 0;
    clock = 0;
    stats = fresh_stats ();
  }

let stats t = t.stats
let resident t i = t.slots.(i) <> None

let resident_indices t =
  let acc = ref [] in
  for i = Array.length t.slots - 1 downto 0 do
    if t.slots.(i) <> None then acc := i :: !acc
  done;
  !acc

let touch t i =
  t.clock <- t.clock + 1;
  t.last_use.(i) <- t.clock

(* Evict strictly least-recently-used items (the clock is unique per
   touch, so the victim is deterministic) until the resident set fits
   the budget again. [keep] pins the item being faulted in: a single
   item larger than the whole budget still has to run, so the resident
   set may transiently exceed the budget by that one item — the
   high-water mark records it. *)
let shrink t ~keep =
  while
    t.stats.resident_bytes > t.budget
    && (let victim = ref (-1) and best = ref max_int in
        Array.iteri
          (fun j slot ->
            if j <> keep && slot <> None && t.last_use.(j) < !best then begin
              victim := j;
              best := t.last_use.(j)
            end)
          t.slots;
        if !victim < 0 then false
        else begin
          t.slots.(!victim) <- None;
          t.stats.resident_bytes <- t.stats.resident_bytes - t.costs.(!victim);
          t.costs.(!victim) <- 0;
          t.stats.evictions <- t.stats.evictions + 1;
          true
        end)
  do
    ()
  done

let get t i =
  match t.slots.(i) with
  | Some v ->
    t.stats.hits <- t.stats.hits + 1;
    touch t i;
    v
  | None ->
    let { item = v; cost_bytes = cost; stall_cycles } = t.load i in
    t.stats.faults <- t.stats.faults + 1;
    t.stats.stall_cycles <- t.stats.stall_cycles + stall_cycles;
    t.stats.loaded_bytes <- t.stats.loaded_bytes + cost;
    t.slots.(i) <- Some v;
    t.costs.(i) <- cost;
    t.stats.resident_bytes <- t.stats.resident_bytes + cost;
    touch t i;
    shrink t ~keep:i;
    (* the post-eviction set is what a real pager would hold: victims
       leave before the faulting item is mapped, so the mark never
       counts a page on its way out *)
    if t.stats.resident_bytes > t.stats.resident_hwm then
      t.stats.resident_hwm <- t.stats.resident_bytes;
    v
