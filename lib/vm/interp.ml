exception Runtime_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt

type result = { exit_code : int; output : string; steps : int }

let data_base = Layout.data_base
let default_mem_size = 1 lsl 22 (* 4 MB *)

(* 32-bit two's-complement normalization *)
let norm v =
  let v = v land 0xFFFFFFFF in
  if v land 0x80000000 <> 0 then v - 0x100000000 else v

let layout_globals = Layout.globals_table

let global_address p name =
  let tbl, _ = layout_globals p in
  match Hashtbl.find_opt tbl name with
  | Some a -> a
  | None -> fail "unknown global %s" name

let func_address = Layout.func_address

type frame = { flat : Isa.instr array; label_of : (string, int) Hashtbl.t }

let prepare_func (f : Isa.vfunc) =
  let flat = Array.of_list f.Isa.code in
  let label_of = Hashtbl.create 8 in
  Array.iteri
    (fun i ins -> match ins with Isa.Label l -> Hashtbl.replace label_of l i | _ -> ())
    flat;
  { flat; label_of }

(* Code reaches the dispatch loop through [fetch], called once at entry
   and once per control transfer into a function (call, indirect call,
   return) — never per instruction. A fully-resident run's fetch is an
   array read; a demand-paged run's fetch goes through a Pager and may
   decompress. The executing frame is held locally between transfers,
   so a pager evicting the current function is safe: the next transfer
   back into it simply faults it in again. *)
type paged_code = {
  names : string array;
  globals : (string * int * int list option) list;
  fetch : int -> frame;
}

let run_code ?(mem_size = default_mem_size) ?(input = "")
    ?(fuel = 200_000_000) ?(entry = "main") ?(on_call = fun (_ : int) -> ())
    ?(on_label = fun (_ : int) (_ : string) -> ()) (code : paged_code) : result
    =
  let mem = Bytes.make mem_size '\000' in
  let globals, _data_end =
    layout_globals { Isa.globals = code.globals; funcs = [] }
  in
  (* initialize globals *)
  List.iter
    (fun (name, _, init) ->
      match init with
      | None -> ()
      | Some bytes ->
        let base = Hashtbl.find globals name in
        (* hostile images can declare globals past the end of memory;
           trap rather than let Bytes.set throw out of the engine *)
        if base < 0 || base + List.length bytes > mem_size then
          fail "global initializer for %s overflows memory" name;
        List.iteri
          (fun i b -> Bytes.set mem (base + i) (Char.chr (b land 0xff)))
          bytes)
    code.globals;
  let nfuncs = Array.length code.names in
  let fidx_of_name = Hashtbl.create 32 in
  Array.iteri (fun i n -> Hashtbl.add fidx_of_name n i) code.names;
  let addr_of_sym name =
    match Hashtbl.find_opt fidx_of_name name with
    | Some i -> func_address i
    | None -> (
      match Hashtbl.find_opt globals name with
      | Some a -> a
      | None -> fail "unresolved symbol %s" name)
  in
  let fidx_of_addr a =
    if a mod 8 = 0 && a >= 8 && a / 8 - 1 < nfuncs then a / 8 - 1
    else fail "indirect call to non-function address %d" a
  in
  (* machine state *)
  let regs = Array.make Isa.num_regs 0 in
  regs.(Isa.sp) <- mem_size - 16;
  let halt_ra = -1 in
  regs.(Isa.ra) <- halt_ra;
  let output = Buffer.create 256 in
  let in_pos = ref 0 in
  let steps = ref 0 in
  (* memory access *)
  let check_addr a n =
    if a < 0 || a + n > mem_size then fail "memory access out of range: %d" a
  in
  let load w a =
    match w with
    | Isa.B ->
      check_addr a 1;
      let v = Char.code (Bytes.get mem a) in
      if v land 0x80 <> 0 then v - 0x100 else v
    | Isa.H ->
      check_addr a 2;
      let v = Char.code (Bytes.get mem a) lor (Char.code (Bytes.get mem (a + 1)) lsl 8) in
      if v land 0x8000 <> 0 then v - 0x10000 else v
    | Isa.W ->
      check_addr a 4;
      let v =
        Char.code (Bytes.get mem a)
        lor (Char.code (Bytes.get mem (a + 1)) lsl 8)
        lor (Char.code (Bytes.get mem (a + 2)) lsl 16)
        lor (Char.code (Bytes.get mem (a + 3)) lsl 24)
      in
      norm v
  in
  let store w a v =
    match w with
    | Isa.B ->
      check_addr a 1;
      Bytes.set mem a (Char.chr (v land 0xff))
    | Isa.H ->
      check_addr a 2;
      Bytes.set mem a (Char.chr (v land 0xff));
      Bytes.set mem (a + 1) (Char.chr ((v asr 8) land 0xff))
    | Isa.W ->
      check_addr a 4;
      Bytes.set mem a (Char.chr (v land 0xff));
      Bytes.set mem (a + 1) (Char.chr ((v asr 8) land 0xff));
      Bytes.set mem (a + 2) (Char.chr ((v asr 16) land 0xff));
      Bytes.set mem (a + 3) (Char.chr ((v asr 24) land 0xff))
  in
  let alu op a b =
    match op with
    | Isa.Add -> norm (a + b)
    | Isa.Sub -> norm (a - b)
    | Isa.Mul -> norm (a * b)
    | Isa.Div -> if b = 0 then fail "division by zero" else norm (a / b)
    | Isa.Mod -> if b = 0 then fail "modulo by zero" else norm (a mod b)
    | Isa.And -> norm (a land b)
    | Isa.Or -> norm (a lor b)
    | Isa.Xor -> norm (a lxor b)
    | Isa.Shl -> norm (a lsl (b land 31))
    | Isa.Shr -> norm (a asr (b land 31))
  in
  let builtin name =
    match name with
    | "putchar" ->
      Buffer.add_char output (Char.chr (regs.(0) land 0xff));
      regs.(0) <- regs.(0) land 0xff
    | "getchar" ->
      if !in_pos < String.length input then begin
        regs.(0) <- Char.code input.[!in_pos];
        incr in_pos
      end
      else regs.(0) <- -1
    | "print_int" ->
      Buffer.add_string output (string_of_int regs.(0));
      ()
    | "abort" -> fail "abort called"
    | _ -> fail "unknown builtin %s" name
  in
  (* call stack of (function idx, return instr idx) encoded in ra as
     fidx * 2^24 + iidx + 2^30 to distinguish from halt *)
  let encode_ra fidx iidx = (1 lsl 30) lor (fidx lsl 20) lor iidx in
  let decode_ra v =
    if v < 0 || v land (1 lsl 30) = 0 then None
    else Some ((v lsr 20) land 0x3FF, v land 0xFFFFF)
  in
  let entry_idx =
    match Hashtbl.find_opt fidx_of_name entry with
    | Some i -> i
    | None -> fail "entry function %s not found" entry
  in
  let fidx = ref entry_idx in
  let pc = ref 0 in
  on_call entry_idx;
  let cur = ref (code.fetch entry_idx) in
  let running = ref true in
  let do_call target_name =
    if List.mem target_name Isa.builtins && not (Hashtbl.mem fidx_of_name target_name)
    then builtin target_name
    else begin
      match Hashtbl.find_opt fidx_of_name target_name with
      | Some ti ->
        regs.(Isa.ra) <- encode_ra !fidx !pc;
        fidx := ti;
        pc := 0;
        on_call ti;
        cur := code.fetch ti
      | None -> fail "call to unknown function %s" target_name
    end
  in
  let do_call_idx ti =
    regs.(Isa.ra) <- encode_ra !fidx !pc;
    fidx := ti;
    pc := 0;
    on_call ti;
    cur := code.fetch ti
  in
  while !running do
    if !steps >= fuel then fail "fuel exhausted after %d steps" !steps;
    let frame = !cur in
    if !pc >= Array.length frame.flat then
      fail "%s: fell off the end of the function" code.names.(!fidx);
    let ins = frame.flat.(!pc) in
    incr steps;
    incr pc;
    let branch l =
      match Hashtbl.find_opt frame.label_of l with
      | Some i -> pc := i
      | None -> fail "undefined label %s" l
    in
    match ins with
    | Isa.Label l -> on_label !fidx l
    | Isa.Ld (w, rd, imm, rs) -> regs.(rd) <- load w (regs.(rs) + imm)
    | Isa.St (w, rs2, imm, rs1) -> store w (regs.(rs1) + imm) regs.(rs2)
    | Isa.Ldx (w, rd, rs) -> regs.(rd) <- load w regs.(rs)
    | Isa.Stx (w, rs2, rs1) -> store w regs.(rs1) regs.(rs2)
    | Isa.Li (rd, v) -> regs.(rd) <- norm v
    | Isa.La (rd, s) -> regs.(rd) <- addr_of_sym s
    | Isa.Mov (rd, rs) -> regs.(rd) <- regs.(rs)
    | Isa.Alu (op, rd, a, b) -> regs.(rd) <- alu op regs.(a) regs.(b)
    | Isa.Alui (op, rd, a, v) -> regs.(rd) <- alu op regs.(a) v
    | Isa.Neg (rd, rs) -> regs.(rd) <- norm (-regs.(rs))
    | Isa.Not (rd, rs) -> regs.(rd) <- norm (lnot regs.(rs))
    | Isa.Sext (Isa.B, rd, rs) ->
      let v = regs.(rs) land 0xff in
      regs.(rd) <- (if v land 0x80 <> 0 then v - 0x100 else v)
    | Isa.Sext (Isa.H, rd, rs) ->
      let v = regs.(rs) land 0xffff in
      regs.(rd) <- (if v land 0x8000 <> 0 then v - 0x10000 else v)
    | Isa.Sext (Isa.W, rd, rs) -> regs.(rd) <- regs.(rs)
    | Isa.Br (rel, a, b, l) -> if Isa.eval_rel rel regs.(a) regs.(b) then branch l
    | Isa.Bri (rel, a, v, l) -> if Isa.eval_rel rel regs.(a) v then branch l
    | Isa.Jmp l -> branch l
    | Isa.Call s -> do_call s
    | Isa.Callr r -> do_call_idx (fidx_of_addr regs.(r))
    | Isa.Rjr -> (
      match decode_ra regs.(Isa.ra) with
      | Some (rf, ri) ->
        if rf >= nfuncs then fail "return to non-function index %d" rf;
        fidx := rf;
        pc := ri;
        cur := code.fetch rf
      | None -> running := false)
    | Isa.Enter k -> regs.(Isa.sp) <- regs.(Isa.sp) - k
    | Isa.Exit k -> regs.(Isa.sp) <- regs.(Isa.sp) + k
    | Isa.Spill (r, off) -> store Isa.W (regs.(Isa.sp) + off) regs.(r)
    | Isa.Reload (r, off) -> regs.(r) <- load Isa.W (regs.(Isa.sp) + off)
  done;
  { exit_code = regs.(0); output = Buffer.contents output; steps = !steps }

let run ?mem_size ?input ?fuel ?entry ?on_call ?on_label (p : Isa.vprogram) :
    result =
  let funcs = Array.of_list p.Isa.funcs in
  let frames = Array.map prepare_func funcs in
  run_code ?mem_size ?input ?fuel ?entry ?on_call ?on_label
    {
      names = Array.map (fun (f : Isa.vfunc) -> f.Isa.name) funcs;
      globals = p.Isa.globals;
      fetch = (fun i -> frames.(i));
    }
