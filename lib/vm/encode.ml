type field = Freg of Isa.reg | Fimm of int | Flab of string | Fsym of string

let fields (i : Isa.instr) =
  match i with
  | Isa.Ld (_, rd, imm, rs) -> [ Freg rd; Fimm imm; Freg rs ]
  | Isa.St (_, rs2, imm, rs1) -> [ Freg rs2; Fimm imm; Freg rs1 ]
  | Isa.Ldx (_, rd, rs) -> [ Freg rd; Freg rs ]
  | Isa.Stx (_, rs2, rs1) -> [ Freg rs2; Freg rs1 ]
  | Isa.Li (rd, imm) -> [ Freg rd; Fimm imm ]
  | Isa.La (rd, s) -> [ Freg rd; Fsym s ]
  | Isa.Mov (rd, rs) -> [ Freg rd; Freg rs ]
  | Isa.Alu (_, rd, rs1, rs2) -> [ Freg rd; Freg rs1; Freg rs2 ]
  | Isa.Alui (_, rd, rs1, imm) -> [ Freg rd; Freg rs1; Fimm imm ]
  | Isa.Neg (rd, rs) | Isa.Not (rd, rs) | Isa.Sext (_, rd, rs) ->
    [ Freg rd; Freg rs ]
  | Isa.Br (_, rs1, rs2, lbl) -> [ Freg rs1; Freg rs2; Flab lbl ]
  | Isa.Bri (_, rs1, imm, lbl) -> [ Freg rs1; Fimm imm; Flab lbl ]
  | Isa.Jmp lbl -> [ Flab lbl ]
  | Isa.Call s -> [ Fsym s ]
  | Isa.Callr r -> [ Freg r ]
  | Isa.Rjr -> []
  | Isa.Enter k -> [ Freg Isa.sp; Freg Isa.sp; Fimm k ]
  | Isa.Exit k -> [ Freg Isa.sp; Freg Isa.sp; Fimm k ]
  | Isa.Spill (r, off) -> [ Freg r; Fimm off; Freg Isa.sp ]
  | Isa.Reload (r, off) -> [ Freg r; Fimm off; Freg Isa.sp ]
  | Isa.Label _ -> []

let arity_error () = invalid_arg "Encode.rebuild: field list mismatch"

let reg = function Freg r -> r | _ -> arity_error ()
let imm = function Fimm v -> v | _ -> arity_error ()
let lab = function Flab l -> l | _ -> arity_error ()
let sym = function Fsym s -> s | _ -> arity_error ()

let rebuild (i : Isa.instr) fs : Isa.instr =
  match (i, fs) with
  | Isa.Ld (w, _, _, _), [ a; b; c ] -> Isa.Ld (w, reg a, imm b, reg c)
  | Isa.St (w, _, _, _), [ a; b; c ] -> Isa.St (w, reg a, imm b, reg c)
  | Isa.Ldx (w, _, _), [ a; b ] -> Isa.Ldx (w, reg a, reg b)
  | Isa.Stx (w, _, _), [ a; b ] -> Isa.Stx (w, reg a, reg b)
  | Isa.Li (_, _), [ a; b ] -> Isa.Li (reg a, imm b)
  | Isa.La (_, _), [ a; b ] -> Isa.La (reg a, sym b)
  | Isa.Mov (_, _), [ a; b ] -> Isa.Mov (reg a, reg b)
  | Isa.Alu (op, _, _, _), [ a; b; c ] -> Isa.Alu (op, reg a, reg b, reg c)
  | Isa.Alui (op, _, _, _), [ a; b; c ] -> Isa.Alui (op, reg a, reg b, imm c)
  | Isa.Neg (_, _), [ a; b ] -> Isa.Neg (reg a, reg b)
  | Isa.Not (_, _), [ a; b ] -> Isa.Not (reg a, reg b)
  | Isa.Sext (w, _, _), [ a; b ] -> Isa.Sext (w, reg a, reg b)
  | Isa.Br (rel, _, _, _), [ a; b; c ] -> Isa.Br (rel, reg a, reg b, lab c)
  | Isa.Bri (rel, _, _, _), [ a; b; c ] -> Isa.Bri (rel, reg a, imm b, lab c)
  | Isa.Jmp _, [ a ] -> Isa.Jmp (lab a)
  | Isa.Call _, [ a ] -> Isa.Call (sym a)
  | Isa.Callr _, [ a ] -> Isa.Callr (reg a)
  | Isa.Rjr, [] -> Isa.Rjr
  | Isa.Enter _, [ _; _; c ] -> Isa.Enter (imm c)
  | Isa.Exit _, [ _; _; c ] -> Isa.Exit (imm c)
  | Isa.Spill (_, _), [ a; b; _ ] -> Isa.Spill (reg a, imm b)
  | Isa.Reload (_, _), [ a; b; _ ] -> Isa.Reload (reg a, imm b)
  | Isa.Label l, [] -> Isa.Label l
  | _ -> arity_error ()

let base_key (i : Isa.instr) =
  match i with
  | Isa.Ld (w, _, _, _) -> "ld.i" ^ Isa.width_name w
  | Isa.St (w, _, _, _) -> "st.i" ^ Isa.width_name w
  | Isa.Ldx (w, _, _) -> "ldx.i" ^ Isa.width_name w
  | Isa.Stx (w, _, _) -> "stx.i" ^ Isa.width_name w
  | Isa.Li _ -> "li"
  | Isa.La _ -> "la"
  | Isa.Mov _ -> "mov.i"
  | Isa.Alu (op, _, _, _) -> Isa.aluop_name op ^ ".i"
  | Isa.Alui (op, _, _, _) -> Isa.aluop_name op ^ ".i/imm"
  | Isa.Neg _ -> "neg.i"
  | Isa.Not _ -> "not.i"
  | Isa.Sext (w, _, _) -> "sext." ^ Isa.width_name w
  | Isa.Br (rel, _, _, _) -> Isa.relop_name rel ^ ".i"
  | Isa.Bri (rel, _, _, _) -> Isa.relop_name rel ^ ".i/imm"
  | Isa.Jmp _ -> "jmp"
  | Isa.Call _ -> "call"
  | Isa.Callr _ -> "callr"
  | Isa.Rjr -> "rjr"
  | Isa.Enter _ -> "enter"
  | Isa.Exit _ -> "exit"
  | Isa.Spill _ -> "spill.i"
  | Isa.Reload _ -> "reload.i"
  | Isa.Label _ -> "label"

let imm_bytes v = if v >= -128 && v <= 127 then 1 else if v >= -32768 && v <= 32767 then 2 else 4

let field_bits = function
  | Freg _ -> 4
  | Fimm v -> 8 * imm_bytes v
  | Flab _ | Fsym _ -> 8

let encoded_size i =
  match i with
  | Isa.Label _ -> 0
  | _ ->
    let fs = fields i in
    let reg_nibbles =
      List.length (List.filter (fun f -> match f with Freg _ -> true | _ -> false) fs)
    in
    let other_bytes =
      List.fold_left
        (fun acc f ->
          match f with
          | Freg _ -> acc
          | Fimm v -> acc + imm_bytes v
          | Flab _ | Fsym _ -> acc + 1)
        0 fs
    in
    1 + ((reg_nibbles + 1) / 2) + other_bytes

let func_size f = List.fold_left (fun acc i -> acc + encoded_size i) 0 f.Isa.code

let program_size p = List.fold_left (fun acc f -> acc + func_size f) 0 p.Isa.funcs

(* ---- full binary image ----

   The binary image assigns numeric opcodes dynamically is not an option:
   the decoder must agree. We give every instruction shape a fixed opcode
   byte here. Opcodes also select immediate widths: for each Fimm field,
   two tag bits (1/2/4 bytes) are packed into a per-instruction "width
   byte" emitted after the opcode only when the shape has immediates. *)

let shape_code (i : Isa.instr) =
  match i with
  | Isa.Ld (Isa.B, _, _, _) -> 0
  | Isa.Ld (Isa.H, _, _, _) -> 1
  | Isa.Ld (Isa.W, _, _, _) -> 2
  | Isa.St (Isa.B, _, _, _) -> 3
  | Isa.St (Isa.H, _, _, _) -> 4
  | Isa.St (Isa.W, _, _, _) -> 5
  | Isa.Ldx (Isa.B, _, _) -> 6
  | Isa.Ldx (Isa.H, _, _) -> 7
  | Isa.Ldx (Isa.W, _, _) -> 8
  | Isa.Stx (Isa.B, _, _) -> 9
  | Isa.Stx (Isa.H, _, _) -> 10
  | Isa.Stx (Isa.W, _, _) -> 11
  | Isa.Li _ -> 12
  | Isa.Mov _ -> 13
  | Isa.Alu (op, _, _, _) -> (
    14
    + match op with
      | Isa.Add -> 0 | Isa.Sub -> 1 | Isa.Mul -> 2 | Isa.Div -> 3
      | Isa.Mod -> 4 | Isa.And -> 5 | Isa.Or -> 6 | Isa.Xor -> 7
      | Isa.Shl -> 8 | Isa.Shr -> 9)
  | Isa.Alui (op, _, _, _) -> (
    24
    + match op with
      | Isa.Add -> 0 | Isa.Sub -> 1 | Isa.Mul -> 2 | Isa.Div -> 3
      | Isa.Mod -> 4 | Isa.And -> 5 | Isa.Or -> 6 | Isa.Xor -> 7
      | Isa.Shl -> 8 | Isa.Shr -> 9)
  | Isa.Neg _ -> 34
  | Isa.Not _ -> 35
  | Isa.Sext (Isa.B, _, _) -> 36
  | Isa.Sext (Isa.H, _, _) -> 37
  | Isa.Sext (Isa.W, _, _) -> 38
  | Isa.Br (rel, _, _, _) -> (
    39
    + match rel with
      | Isa.Eq -> 0 | Isa.Ne -> 1 | Isa.Lt -> 2 | Isa.Le -> 3
      | Isa.Gt -> 4 | Isa.Ge -> 5)
  | Isa.Bri (rel, _, _, _) -> (
    45
    + match rel with
      | Isa.Eq -> 0 | Isa.Ne -> 1 | Isa.Lt -> 2 | Isa.Le -> 3
      | Isa.Gt -> 4 | Isa.Ge -> 5)
  | Isa.Jmp _ -> 51
  | Isa.Call _ -> 52
  | Isa.Callr _ -> 53
  | Isa.Rjr -> 54
  | Isa.Enter _ -> 55
  | Isa.Exit _ -> 56
  | Isa.Spill _ -> 57
  | Isa.Reload _ -> 58
  | Isa.La _ -> 60
  | Isa.Label _ -> 59

let template_of_code code : Isa.instr =
  let alu n = [| Isa.Add; Isa.Sub; Isa.Mul; Isa.Div; Isa.Mod; Isa.And; Isa.Or; Isa.Xor; Isa.Shl; Isa.Shr |].(n) in
  let rel n = [| Isa.Eq; Isa.Ne; Isa.Lt; Isa.Le; Isa.Gt; Isa.Ge |].(n) in
  if code <= 2 then Isa.Ld ([| Isa.B; Isa.H; Isa.W |].(code), 0, 0, 0)
  else if code <= 5 then Isa.St ([| Isa.B; Isa.H; Isa.W |].(code - 3), 0, 0, 0)
  else if code <= 8 then Isa.Ldx ([| Isa.B; Isa.H; Isa.W |].(code - 6), 0, 0)
  else if code <= 11 then Isa.Stx ([| Isa.B; Isa.H; Isa.W |].(code - 9), 0, 0)
  else if code = 12 then Isa.Li (0, 0)
  else if code = 13 then Isa.Mov (0, 0)
  else if code <= 23 then Isa.Alu (alu (code - 14), 0, 0, 0)
  else if code <= 33 then Isa.Alui (alu (code - 24), 0, 0, 0)
  else if code = 34 then Isa.Neg (0, 0)
  else if code = 35 then Isa.Not (0, 0)
  else if code <= 38 then Isa.Sext ([| Isa.B; Isa.H; Isa.W |].(code - 36), 0, 0)
  else if code <= 44 then Isa.Br (rel (code - 39), 0, 0, "")
  else if code <= 50 then Isa.Bri (rel (code - 45), 0, 0, "")
  else if code = 51 then Isa.Jmp ""
  else if code = 52 then Isa.Call ""
  else if code = 53 then Isa.Callr 0
  else if code = 54 then Isa.Rjr
  else if code = 55 then Isa.Enter 0
  else if code = 56 then Isa.Exit 0
  else if code = 57 then Isa.Spill (0, 0)
  else if code = 58 then Isa.Reload (0, 0)
  else if code = 59 then Isa.Label ""
  else if code = 60 then Isa.La (0, "")
  else
    Support.Decode_error.fail ~decoder:"vm-encode"
      ~kind:Support.Decode_error.Bad_value
      (Printf.sprintf "bad opcode %d" code)

let encode_program (p : Isa.vprogram) =
  let buf = Buffer.create 4096 in
  let u v = Support.Util.uleb128 buf v in
  let s_ v = Support.Util.sleb_of_int buf v in
  let str s =
    u (String.length s);
    Buffer.add_string buf s
  in
  (* symbol table: all global and function names + builtins referenced *)
  let syms = Hashtbl.create 64 in
  let sym_list = ref [] in
  let intern name =
    match Hashtbl.find_opt syms name with
    | Some i -> i
    | None ->
      let i = Hashtbl.length syms in
      Hashtbl.add syms name i;
      sym_list := name :: !sym_list;
      i
  in
  List.iter (fun (n, _, _) -> ignore (intern n)) p.globals;
  List.iter (fun f -> ignore (intern f.Isa.name)) p.funcs;
  List.iter
    (fun f ->
      List.iter
        (fun i ->
          List.iter
            (fun fld ->
              match fld with Fsym s -> ignore (intern s) | _ -> ())
            (fields i))
        f.Isa.code)
    p.funcs;
  let symbols = List.rev !sym_list in
  u (List.length symbols);
  List.iter str symbols;
  (* globals *)
  u (List.length p.globals);
  List.iter
    (fun (n, sz, init) ->
      u (Hashtbl.find syms n);
      u sz;
      match init with
      | None -> u 0
      | Some bytes ->
        u (List.length bytes + 1);
        List.iter (fun b -> Buffer.add_char buf (Char.chr (b land 0xff))) bytes)
    p.globals;
  (* functions *)
  u (List.length p.funcs);
  List.iter
    (fun f ->
      u (Hashtbl.find syms f.Isa.name);
      let labels = Isa.defined_labels f in
      let lbl_idx = Hashtbl.create 8 in
      List.iteri (fun i l -> Hashtbl.add lbl_idx l i) labels;
      u (List.length labels);
      List.iter str labels;
      u (List.length f.Isa.code);
      List.iter
        (fun i ->
          Buffer.add_char buf (Char.chr (shape_code i));
          (match i with
          | Isa.Label l -> u (Hashtbl.find lbl_idx l)
          | _ -> ());
          let fs = fields i in
          (* registers as one byte each in the image (simple, decodable);
             the *size accounting* uses nibbles via encoded_size *)
          List.iter
            (fun fld ->
              match fld with
              | Freg r -> Buffer.add_char buf (Char.chr r)
              | Fimm v -> s_ v
              | Flab l -> u (Hashtbl.find lbl_idx l)
              | Fsym s -> u (Hashtbl.find syms s))
            fs)
        f.Isa.code)
    p.funcs;
  Buffer.contents buf

let decode_program_exn img =
  let pos = ref 0 in
  let fail kind msg =
    Support.Decode_error.fail ~decoder:"vm-encode" ~kind ~pos:!pos msg
  in
  (* every counted element costs at least one input byte; validate before
     any proportional allocation *)
  let check_count n what =
    if n < 0 || n > String.length img - !pos then
      fail Support.Decode_error.Limit
        (Printf.sprintf "%s count %d exceeds remaining %d bytes" what n
           (String.length img - !pos))
  in
  let u () = Support.Util.read_uleb128 img pos in
  let s_ () = Support.Util.read_sleb img pos in
  let str () =
    let n = u () in
    if n < 0 || !pos + n > String.length img then
      fail Support.Decode_error.Truncated "truncated string";
    let s = String.sub img !pos n in
    pos := !pos + n;
    s
  in
  let byte () =
    if !pos >= String.length img then
      fail Support.Decode_error.Truncated "truncated input";
    let b = Char.code img.[!pos] in
    incr pos;
    b
  in
  let index (table : string array) what =
    let i = u () in
    if i < 0 || i >= Array.length table then
      fail Support.Decode_error.Bad_value
        (Printf.sprintf "%s index %d outside table of %d" what i
           (Array.length table));
    table.(i)
  in
  let nsym = u () in
  check_count nsym "symbol";
  let symbols = Array.init nsym (fun _ -> str ()) in
  let nglob = u () in
  check_count nglob "global";
  let globals =
    List.init nglob (fun _ ->
        let n = index symbols "symbol" in
        let sz = u () in
        let initlen = u () in
        if initlen > 0 then check_count (initlen - 1) "global initializer";
        let init =
          if initlen = 0 then None
          else Some (List.init (initlen - 1) (fun _ -> byte ()))
        in
        (n, sz, init))
  in
  let nfun = u () in
  check_count nfun "function";
  let funcs =
    List.init nfun (fun _ ->
        let name = index symbols "symbol" in
        let nlbl = u () in
        check_count nlbl "label";
        let labels = Array.init nlbl (fun _ -> str ()) in
        let ninstr = u () in
        check_count ninstr "instruction";
        let code =
          List.init ninstr (fun _ ->
              let sc = byte () in
              let template = template_of_code sc in
              match template with
              | Isa.Label _ -> Isa.Label (index labels "label")
              | _ ->
                let fs =
                  List.map
                    (fun fld ->
                      match fld with
                      | Freg _ -> Freg (byte ())
                      | Fimm _ -> Fimm (s_ ())
                      | Flab _ -> Flab (index labels "label")
                      | Fsym _ -> Fsym (index symbols "symbol"))
                    (fields template)
                in
                rebuild template fs)
        in
        (* referential integrity: every branch/label field must name a
           label actually defined by a [Label] pseudo-instruction in this
           function; a dangling reference would be unencodable (and
           unrunnable), so the decoder rejects it *)
        let defined = Hashtbl.create 8 in
        List.iter
          (fun i ->
            match i with
            | Isa.Label l -> Hashtbl.replace defined l ()
            | _ -> ())
          code;
        List.iter
          (fun i ->
            match i with
            | Isa.Label _ -> ()
            | _ ->
              List.iter
                (fun fld ->
                  match fld with
                  | Flab l when not (Hashtbl.mem defined l) ->
                    fail Support.Decode_error.Inconsistent
                      (Printf.sprintf "branch to undefined label %S in %s" l
                         name)
                  | _ -> ())
                (fields i))
          code;
        { Isa.name; code })
  in
  if !pos <> String.length img then
    fail Support.Decode_error.Inconsistent "trailing bytes after program";
  { Isa.globals; funcs }

let decode_program img =
  Support.Decode_error.guard ~decoder:"vm-encode" (fun () ->
      decode_program_exn img)
