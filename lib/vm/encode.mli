(** Binary encoding of OmniVM code, and the field-level view of
    instructions that the BRISC compressor specializes over.

    Encoding layout per instruction: one opcode byte (the opcode selects
    the instruction shape {e and} the byte width of each immediate field),
    then register fields packed two-per-byte as nibbles, then immediate
    fields in their selected widths (1/2/4 bytes, little-endian), then
    label/symbol fields as ULEB128 indices into per-function label /
    program symbol tables. This reproduces the paper's size accounting:
    [ld.iw n0,4(sp)] is 3 bytes, [mov.i n2,n0] is 2, [enter sp,sp,24]
    is 3 (the two [sp] fields are explicit — redundancy the compressor
    exploits by burning them in). *)

type field =
  | Freg of Isa.reg
  | Fimm of int
  | Flab of string
  | Fsym of string

val fields : Isa.instr -> field list
(** The instruction's operand fields in left-to-right order. [Label]
    pseudo-instructions have no fields. *)

val rebuild : Isa.instr -> field list -> Isa.instr
(** Replace the fields of an instruction (shape unchanged).
    @raise Invalid_argument on arity or kind mismatch. *)

val base_key : Isa.instr -> string
(** Shape identifier with all fields abstracted, e.g. ["ld.iw"],
    ["add.i"], ["ble.i/imm"]. Two instructions with equal [base_key]
    accept each other's field lists. *)

val field_bits : field -> int
(** Size in bits used by this field in the base encoding: 4 for
    registers, 8/16/32 for immediates by value, 8 for labels/symbols. *)

val encoded_size : Isa.instr -> int
(** Bytes this instruction occupies in the base binary encoding
    (0 for [Label]). *)

val func_size : Isa.vfunc -> int
val program_size : Isa.vprogram -> int
(** Code bytes only (what the paper's "original input" counts). *)

val encode_program : Isa.vprogram -> string
(** Full self-describing binary image: symbol table, globals, and each
    function's label table and code. *)

val decode_program : string -> (Isa.vprogram, Support.Decode_error.t) result
(** Total inverse of {!encode_program}: counts and table indices are
    validated before allocation; corrupt input yields a typed [Error]. *)

val decode_program_exn : string -> Isa.vprogram
(** As {!decode_program} but raises {!Support.Decode_error.Fail}; for
    trusted inputs. *)

val shape_code : Isa.instr -> int
(** Stable numeric id of the instruction shape (exposed for the BRISC
    container, which serializes dictionary parts by shape). *)

val template_of_code : int -> Isa.instr
(** Inverse of {!shape_code}: a template instruction with zeroed fields.
    @raise Support.Decode_error.Fail on an unknown code. *)
