(* Fixed domain pool.

   One shared FIFO of closures guarded by a mutex/condition; workers
   block on it, and a caller inside [run_list] helps drain it while its
   own batch is outstanding. The help loop is what makes nested
   [run_list] on the same pool safe: a worker blocked on an inner batch
   keeps executing queued tasks (its own inner ones included) instead of
   sleeping, so there is always a lane making progress. *)

type t = {
  domains : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable workers : unit Domain.t list;
  mutable stopped : bool;
}

let size t = t.domains

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.stopped do
    Condition.wait t.nonempty t.mutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mutex (* stopped *)
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    task ();
    worker_loop t
  end

let create ~domains =
  let domains = max 1 domains in
  let t =
    {
      domains;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      workers = [];
      stopped = false;
    }
  in
  if domains > 1 then begin
    (* minor collections are stop-the-world barriers across every domain;
       at the 256k-word default an allocation-heavy scan spends more time
       synchronizing than working. Raise the minor heap (inherited by the
       domains spawned below) so barriers amortize; never shrink it. *)
    let gc = Gc.get () in
    let want = 4 * 1024 * 1024 in
    if gc.Gc.minor_heap_size < want then
      Gc.set { gc with Gc.minor_heap_size = want };
    t.workers <-
      List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t))
  end;
  t

(* Teardown drains before it joins: a worker that sees [stopped] keeps
   popping until the queue is empty (see [worker_loop]), so every task
   queued before the shutdown call still runs. The mutex-guarded swap of
   the worker list makes the call idempotent and safe to race from
   several domains — exactly one caller joins each worker, later calls
   see an empty list and return immediately. *)
let shutdown t =
  let workers =
    Mutex.lock t.mutex;
    let ws = t.workers in
    t.workers <- [];
    t.stopped <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    ws
  in
  List.iter Domain.join workers

let is_stopped t =
  Mutex.lock t.mutex;
  let s = t.stopped in
  Mutex.unlock t.mutex;
  s

let try_pop t =
  Mutex.lock t.mutex;
  let task = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
  Mutex.unlock t.mutex;
  task

let run_list t thunks =
  let thunks = Array.of_list thunks in
  let n = Array.length thunks in
  if n = 0 then []
  else if t.domains <= 1 || t.stopped || n = 1 then
    Array.to_list (Array.map (fun f -> f ()) thunks)
  else begin
    let results = Array.make n None in
    (* each batch has its own completion latch; the pool mutex only
       guards the queue *)
    let done_mutex = Mutex.create () in
    let done_cond = Condition.create () in
    let remaining = ref n in
    let wrap i () =
      let r = try Ok (thunks.(i) ()) with e -> Error e in
      Mutex.lock done_mutex;
      results.(i) <- Some r;
      decr remaining;
      if !remaining = 0 then Condition.broadcast done_cond;
      Mutex.unlock done_mutex
    in
    Mutex.lock t.mutex;
    for i = 1 to n - 1 do
      Queue.push (wrap i) t.queue
    done;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    wrap 0 ();
    (* help: drain whatever is queued (this batch's tasks or a nested
       batch's) rather than blocking while work is available *)
    let rec help () =
      match try_pop t with
      | Some task ->
        task ();
        help ()
      | None -> ()
    in
    help ();
    Mutex.lock done_mutex;
    while !remaining > 0 do
      Condition.wait done_cond done_mutex
    done;
    Mutex.unlock done_mutex;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false)
         results)
  end

let map t f xs = run_list t (List.map (fun x () -> f x) xs)

(* ---- shared process-wide pool ---- *)

let shared_pool : t option ref = ref None
let shared_override : int option ref = ref None
let exit_hooked = ref false

let default_shared_domains () =
  match !shared_override with
  | Some n -> max 1 n
  | None -> min 8 (Domain.recommended_domain_count ())

let shared () =
  match !shared_pool with
  | Some p -> p
  | None ->
    let p = create ~domains:(default_shared_domains ()) in
    shared_pool := Some p;
    if not !exit_hooked then begin
      exit_hooked := true;
      at_exit (fun () ->
          match !shared_pool with
          | Some p ->
            shared_pool := None;
            shutdown p
          | None -> ())
    end;
    p

let set_shared_domains n =
  shared_override := Some n;
  match !shared_pool with
  | Some p ->
    shared_pool := None;
    shutdown p
  | None -> ()
