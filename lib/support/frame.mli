(** Shared container framing for the byte formats in the tree (wire
    bundles, chunked images, the BRISC container): magic tags,
    big-endian CRC-32 integrity seals, and a bounds-checked
    uvarint/length-prefixed reader. All failures are typed
    {!Decode_error} raises, converted to [Error] by
    {!Decode_error.guard} at decoder boundaries. *)

(** {2 Writer side} *)

val put_str : Buffer.t -> string -> unit
(** Length-prefixed (ULEB128) string. *)

val put_bytes : Buffer.t -> Bytes.t -> unit

val crc_be : string -> string
(** 4-byte big-endian CRC-32 of the argument. *)

val seal : ?magic:string -> string -> string
(** [seal body] is [crc32(body) ^ body]; with [~magic] the magic is
    prepended before the CRC. Inverse of {!verify}. *)

val verify : decoder:string -> ?magic:string -> string -> int
(** Check the magic (when given) and the CRC seal of an image; returns
    the byte offset of the body. Raises [Bad_magic] on a wrong or
    missing magic, [Truncated]/[Checksum] otherwise. *)

(** {2 Reader side} *)

type reader
(** A cursor over untrusted bytes; every accessor below raises a typed
    {!Decode_error.Fail} attributed to the reader's decoder name
    rather than reading out of bounds. *)

val reader : decoder:string -> ?pos:int -> string -> reader
val position : reader -> int
val remaining : reader -> int
val fail : reader -> Decode_error.kind -> string -> 'a

val src : reader -> string
(** The underlying input. *)

val cursor : reader -> int ref
(** The live position ref — an escape hatch for sub-parsers written
    against [(string, int ref)] cursors; their advances are seen by the
    reader. *)

val u : reader -> int
(** ULEB128 varint. *)

val sleb : reader -> int
(** Zigzag-signed ULEB128 varint. *)

val check_count : reader -> int -> string -> unit
(** Reject a count field larger than the remaining input before any
    proportional allocation (every element costs at least one byte). *)

val raw : reader -> ?what:string -> int -> string
(** [n] raw bytes; [what] names the structure in the error message. *)

val str : ?what:string -> reader -> string
(** Length-prefixed (ULEB128) string. *)

val byte : reader -> ?what:string -> unit -> char
val expect_magic : reader -> string -> unit
val expect_end : reader -> string -> unit
