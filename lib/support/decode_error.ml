(* The typed failure vocabulary shared by every untrusted-input decoder.

   A decoder is *total*: it returns [Ok v] or [Error t], never raises to
   its caller and never allocates proportionally to a corrupt length
   field. Explicit [fail] sites give precise positions; [guard] is the
   outer net that converts any stray exception (index out of bounds,
   [Failure] from a helper, ...) into a typed [Unexpected] error, so
   totality does not depend on having anticipated every corruption. *)

type kind =
  | Truncated      (* input ends before the structure does *)
  | Bad_magic      (* wrong container signature *)
  | Checksum       (* CRC frame does not match the payload *)
  | Bad_value      (* a field holds a value outside its domain *)
  | Overflow       (* a varint or count does not fit the machine *)
  | Limit          (* a declared size exceeds the decoder's allocation cap *)
  | Inconsistent   (* fields are individually valid but contradict each other *)
  | Unexpected     (* an unclassified defect caught by the guard *)

type t = { decoder : string; kind : kind; pos : int; msg : string }

exception Fail of t

let kind_name = function
  | Truncated -> "truncated"
  | Bad_magic -> "bad-magic"
  | Checksum -> "checksum"
  | Bad_value -> "bad-value"
  | Overflow -> "overflow"
  | Limit -> "limit"
  | Inconsistent -> "inconsistent"
  | Unexpected -> "unexpected"

let to_string e =
  Printf.sprintf "%s: %s at byte %d: %s" e.decoder (kind_name e.kind) e.pos
    e.msg

let fail ~decoder ~kind ?(pos = 0) msg =
  raise (Fail { decoder; kind; pos; msg })

let guard ~decoder f =
  try Ok (f ()) with
  | Fail e -> Error e
  | Stack_overflow ->
    Error { decoder; kind = Limit; pos = 0; msg = "stack overflow" }
  | exn ->
    Error { decoder; kind = Unexpected; pos = 0; msg = Printexc.to_string exn }
