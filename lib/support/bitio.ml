module Writer = struct
  type t = {
    mutable buf : Bytes.t;
    mutable len : int;          (* complete bytes *)
    mutable acc : int;          (* pending bits, LSB-first *)
    mutable nacc : int;         (* number of pending bits, < 8 *)
  }

  let create ?(capacity = 256) () =
    { buf = Bytes.create (max 16 capacity); len = 0; acc = 0; nacc = 0 }

  let ensure w extra =
    let need = w.len + extra in
    if need > Bytes.length w.buf then begin
      let cap = ref (Bytes.length w.buf * 2) in
      while !cap < need do cap := !cap * 2 done;
      let nb = Bytes.create !cap in
      Bytes.blit w.buf 0 nb 0 w.len;
      w.buf <- nb
    end

  let flush_acc w =
    while w.nacc >= 8 do
      ensure w 1;
      Bytes.unsafe_set w.buf w.len (Char.unsafe_chr (w.acc land 0xff));
      w.len <- w.len + 1;
      w.acc <- w.acc lsr 8;
      w.nacc <- w.nacc - 8
    done

  let put_bit w b =
    w.acc <- w.acc lor ((b land 1) lsl w.nacc);
    w.nacc <- w.nacc + 1;
    if w.nacc = 8 then flush_acc w

  (* The accumulator is a native int, so with up to 7 pending bits a
     full 56-bit field shifted by [nacc] needs 63 bits — the exact edge
     of the representation. Rather than ride that edge (and silently
     drop high bits if the window ever widens), split the field so the
     shifted chunk always stays within 56 bits: emit what fits, flush
     the now-byte-aligned accumulator, then emit the remainder. The
     emitted bit sequence is unchanged, so output stays byte-identical. *)
  let rec put_bits w v n =
    if n < 0 || n > 56 then invalid_arg "Bitio.Writer.put_bits";
    let v = v land ((1 lsl n) - 1) in
    if w.nacc + n > 56 then begin
      let k = 56 - w.nacc in
      w.acc <- w.acc lor ((v land ((1 lsl k) - 1)) lsl w.nacc);
      w.nacc <- 56;
      flush_acc w;
      (* nacc is now 0, so the recursion terminates immediately *)
      put_bits w (v lsr k) (n - k)
    end
    else begin
      w.acc <- w.acc lor (v lsl w.nacc);
      w.nacc <- w.nacc + n;
      flush_acc w
    end

  let put_bits_msb w v n =
    if n < 0 || n > 56 then invalid_arg "Bitio.Writer.put_bits_msb";
    for i = n - 1 downto 0 do put_bit w ((v lsr i) land 1) done

  let align_byte w = if w.nacc > 0 then put_bits w 0 (8 - w.nacc)

  let put_byte w b = put_bits w (b land 0xff) 8

  let put_bytes w b =
    if w.nacc = 0 then begin
      let n = Bytes.length b in
      ensure w n;
      Bytes.blit b 0 w.buf w.len n;
      w.len <- w.len + n
    end
    else Bytes.iter (fun c -> put_byte w (Char.code c)) b

  let put_string w s = put_bytes w (Bytes.unsafe_of_string s)

  let bit_length w = (w.len * 8) + w.nacc

  let contents w =
    let extra = if w.nacc > 0 then 1 else 0 in
    let out = Bytes.create (w.len + extra) in
    Bytes.blit w.buf 0 out 0 w.len;
    if extra = 1 then Bytes.set out w.len (Char.chr (w.acc land 0xff));
    out
end

module Reader = struct
  type t = { data : Bytes.t; mutable pos : int (* bit position *) }

  let of_bytes b = { data = b; pos = 0 }
  let of_string s = of_bytes (Bytes.unsafe_of_string s)

  let total_bits r = Bytes.length r.data * 8
  let bits_remaining r = total_bits r - r.pos
  let bit_position r = r.pos

  let get_bit r =
    if r.pos >= total_bits r then failwith "Bitio.Reader: out of bits";
    let byte = Char.code (Bytes.unsafe_get r.data (r.pos lsr 3)) in
    let bit = (byte lsr (r.pos land 7)) land 1 in
    r.pos <- r.pos + 1;
    bit

  (* Word-at-a-time refill: gather the next [n] bits (LSB-first) without
     consuming them. Bits past the end of the data read as zero, which
     lets a table-driven Huffman decoder probe a full root-table index
     near the end of the stream and reject truncation only when the
     decoded codeword actually overruns. At most 5 bytes are touched
     (7 offset bits + 32 field bits = 39 bits), well inside a native
     int. *)
  let peek_bits r n =
    if n < 0 || n > 32 then invalid_arg "Bitio.Reader.peek_bits";
    let len = Bytes.length r.data in
    let base = r.pos lsr 3 in
    let off = r.pos land 7 in
    let last = min (base + ((off + n + 7) lsr 3)) len - 1 in
    let acc = ref 0 in
    for i = last downto base do
      acc := (!acc lsl 8) lor Char.code (Bytes.unsafe_get r.data i)
    done;
    (!acc lsr off) land ((1 lsl n) - 1)

  let advance_bits r n =
    if n < 0 || r.pos + n > total_bits r then
      failwith "Bitio.Reader: out of bits";
    r.pos <- r.pos + n

  let get_bits r n =
    if n < 0 || n > 56 then invalid_arg "Bitio.Reader.get_bits";
    if n <= 32 && r.pos + n <= total_bits r then begin
      let v = peek_bits r n in
      r.pos <- r.pos + n;
      v
    end
    else begin
      let v = ref 0 in
      for i = 0 to n - 1 do
        v := !v lor (get_bit r lsl i)
      done;
      !v
    end

  let get_bits_msb r n =
    if n < 0 || n > 56 then invalid_arg "Bitio.Reader.get_bits_msb";
    let v = ref 0 in
    for _ = 1 to n do
      v := (!v lsl 1) lor get_bit r
    done;
    !v

  let align_byte r =
    let rem = r.pos land 7 in
    if rem > 0 then r.pos <- r.pos + (8 - rem)

  let get_byte r = get_bits r 8

  (* Byte-aligned bulk read: one blit instead of 8n bit extractions.
     Only valid on a byte boundary (stored deflate blocks align first). *)
  let get_string r n =
    if n < 0 then invalid_arg "Bitio.Reader.get_string";
    if r.pos land 7 <> 0 then
      invalid_arg "Bitio.Reader.get_string: reader not byte-aligned";
    let base = r.pos lsr 3 in
    if base + n > Bytes.length r.data then
      failwith "Bitio.Reader: out of bits";
    let s = Bytes.sub_string r.data base n in
    r.pos <- r.pos + (n * 8);
    s

  let seek_bit r p =
    if p < 0 || p > total_bits r then invalid_arg "Bitio.Reader.seek_bit";
    r.pos <- p
end
