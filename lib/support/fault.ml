(* Deterministic fault injection for decoder robustness testing.

   All mutations are driven by a caller-supplied Prng, so a failing fuzz
   case reproduces from its seed alone. Mutations are total: any input
   (including empty) yields some output without raising. *)

type kind =
  | Bit_flip        (* flip 1..8 random bits *)
  | Truncate        (* cut the tail at a random point *)
  | Splice          (* overwrite a span with random bytes *)
  | Inflate_length  (* plant an enormous varint/length field *)
  | Duplicate       (* re-insert a copy of a random slice *)
  | Reorder         (* swap two non-overlapping slices *)

let kinds = [| Bit_flip; Truncate; Splice; Inflate_length; Duplicate; Reorder |]

let kind_name = function
  | Bit_flip -> "bit-flip"
  | Truncate -> "truncate"
  | Splice -> "splice"
  | Inflate_length -> "inflate-length"
  | Duplicate -> "duplicate"
  | Reorder -> "reorder"

(* A random slice [pos, pos+len) of a non-empty string; len >= 1. *)
let slice rng s =
  let n = String.length s in
  let pos = Prng.int rng n in
  let len = 1 + Prng.int rng (min 16 (n - pos)) in
  (pos, len)

let apply rng kind s =
  let n = String.length s in
  if n = 0 then s
  else
    match kind with
    | Bit_flip ->
      let b = Bytes.of_string s in
      let flips = 1 + Prng.int rng 8 in
      for _ = 1 to flips do
        let i = Prng.int rng n in
        let bit = Prng.int rng 8 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)))
      done;
      Bytes.to_string b
    | Truncate -> String.sub s 0 (Prng.int rng n)
    | Splice ->
      let pos, len = slice rng s in
      let b = Bytes.of_string s in
      for i = pos to pos + len - 1 do
        Bytes.set b i (Char.chr (Prng.int rng 256))
      done;
      Bytes.to_string b
    | Inflate_length ->
      (* 0xff 0xff 0xff 0xff 0x7f decodes as a ~34-bit ULEB128 value;
         wherever it lands, any length field it hits becomes huge. *)
      let huge = "\xff\xff\xff\xff\x7f" in
      let pos = Prng.int rng n in
      let k = min (String.length huge) (n - pos) in
      String.sub s 0 pos ^ String.sub huge 0 k ^ String.sub s (pos + k) (n - pos - k)
    | Duplicate ->
      let pos, len = slice rng s in
      let at = Prng.int rng (n + 1) in
      String.sub s 0 at ^ String.sub s pos len ^ String.sub s at (n - at)
    | Reorder ->
      if n < 2 then s
      else begin
        let a, alen = slice rng s in
        let b, blen = slice rng s in
        (* order and trim the two slices so they cannot overlap *)
        let (a, alen), (b, blen) =
          if a <= b then ((a, alen), (b, blen)) else ((b, blen), (a, alen))
        in
        let alen = min alen (b - a) in
        if alen = 0 then s
        else
          String.sub s 0 a ^ String.sub s b blen
          ^ String.sub s (a + alen) (b - a - alen)
          ^ String.sub s a alen
          ^ String.sub s (b + blen) (n - b - blen)
      end

let mutate rng s =
  let m = apply rng (Prng.pick rng kinds) s in
  (* occasionally stack a second fault to reach deeper parser states *)
  if Prng.int rng 4 = 0 then apply rng (Prng.pick rng kinds) m else m
