let bytes_of_int_list xs =
  let b = Bytes.create (List.length xs) in
  List.iteri (fun i x -> Bytes.set b i (Char.chr (x land 0xff))) xs;
  b

let int_list_of_bytes b =
  List.init (Bytes.length b) (fun i -> Char.code (Bytes.get b i))

let chunks n xs =
  if n <= 0 then invalid_arg "Util.chunks";
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if k = n then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 xs

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let rec drop n = function
  | [] -> []
  | _ :: rest as l -> if n <= 0 then l else drop (n - 1) rest

let zigzag n = if n >= 0 then 2 * n else (-2 * n) - 1
let unzigzag u = if u land 1 = 0 then u / 2 else -((u + 1) / 2)

let uleb128 buf v =
  if v < 0 then invalid_arg "Util.uleb128: negative";
  let rec go v =
    if v < 0x80 then Buffer.add_char buf (Char.chr v)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7f)));
      go (v lsr 7)
    end
  in
  go v

let sleb_of_int buf v = uleb128 buf (zigzag v)

let read_uleb128 s pos =
  let v = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if !pos >= String.length s then
      Decode_error.fail ~decoder:"uleb128" ~kind:Truncated ~pos:!pos
        "varint runs past end of input";
    (* 9 groups of 7 bits fill a 63-bit OCaml int; a 10th byte can only
       come from corruption and would shift into the sign bit. *)
    if !shift >= 63 then
      Decode_error.fail ~decoder:"uleb128" ~kind:Overflow ~pos:!pos
        "varint wider than 63 bits";
    let b = Char.code s.[!pos] in
    incr pos;
    v := !v lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then continue := false
  done;
  !v

let read_sleb s pos = unzigzag (read_uleb128 s pos)

let human_bytes n =
  let f = float_of_int n in
  if n < 1024 then Printf.sprintf "%d B" n
  else if n < 1024 * 1024 then Printf.sprintf "%.1f KB" (f /. 1024.0)
  else Printf.sprintf "%.2f MB" (f /. (1024.0 *. 1024.0))

let ratio a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var =
      List.fold_left (fun a x -> a +. ((x -. m) ** 2.0)) 0.0 xs
      /. float_of_int (List.length xs - 1)
    in
    sqrt var

(* CRC-32 (IEEE 802.3 polynomial, reflected). Detects every single-byte
   corruption of a framed payload, which the wire decoders rely on to
   reject damaged images deterministically. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Util.crc32";
  let table = Lazy.force crc_table in
  let c = ref 0xffffffff in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff
