(** Small shared helpers. *)

val bytes_of_int_list : int list -> Bytes.t
(** Each int is truncated to one byte. *)

val int_list_of_bytes : Bytes.t -> int list

val chunks : int -> 'a list -> 'a list list
(** Split into runs of at most [n]; [n] must be positive. *)

val take : int -> 'a list -> 'a list
val drop : int -> 'a list -> 'a list

val zigzag : int -> int
(** Map signed to unsigned: 0,-1,1,-2,2... -> 0,1,2,3,4... *)

val unzigzag : int -> int

val uleb128 : Buffer.t -> int -> unit
(** Append an unsigned LEB128 varint; the value must be non-negative. *)

val sleb_of_int : Buffer.t -> int -> unit
(** Signed value via zigzag + ULEB128. *)

val read_uleb128 : string -> int ref -> int
(** Read a ULEB128 varint at [!pos], advancing [pos].
    @raise Decode_error.Fail on truncation or a varint wider than 63
    bits — callers inside decoders run under {!Decode_error.guard}. *)

val read_sleb : string -> int ref -> int

val human_bytes : int -> string
(** "12.3 KB"-style rendering for reports. *)

val ratio : int -> int -> float
(** [ratio a b] is a/b as float; 0.0 when [b] is zero. *)

val mean : float list -> float
val stddev : float list -> float

val crc32 : ?pos:int -> ?len:int -> string -> int
(** CRC-32 (IEEE, as in gzip/zlib) of a substring, defaulting to the
    whole string. Detects any single-byte corruption, which the wire
    decoders use to reject damaged images. *)
