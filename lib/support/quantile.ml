(* Latency-quantile math shared by the load generator, the trace
   simulator, and the benches. Lived in Net.Load originally; hoisted
   here so the simulator's modelled latency buckets and the bench
   reports stop depending on the TCP layer for arithmetic. *)

type bucket = {
  count : int;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

let empty_bucket =
  { count = 0; mean_ms = 0.; p50_ms = 0.; p95_ms = 0.; p99_ms = 0.;
    max_ms = 0. }

(* Floor-index quantile over a sorted sample: index floor(p * (n-1)),
   clamped. The same estimator the load report has always used, exposed
   so every latency bucket and the property tests share it. *)
let percentile arr p =
  let n = Array.length arr in
  if n = 0 then 0.
  else arr.(min (n - 1) (int_of_float (p *. float_of_int (n - 1))))

let bucket_of_ms ms =
  match ms with
  | [] -> empty_bucket
  | _ ->
    let arr = Array.of_list ms in
    Array.sort compare arr;
    let n = Array.length arr in
    {
      count = n;
      mean_ms = Array.fold_left ( +. ) 0. arr /. float_of_int n;
      p50_ms = percentile arr 0.50;
      p95_ms = percentile arr 0.95;
      p99_ms = percentile arr 0.99;
      max_ms = arr.(n - 1);
    }
