(** Deterministic fault injection for decoder robustness testing.

    Mutations are seeded through {!Prng}, so any failing fuzz case is
    reproducible from its seed. The same harness corrupts cached server
    artifacts to exercise the quarantine / degradation path. *)

type kind =
  | Bit_flip        (** flip 1..8 random bits *)
  | Truncate        (** cut the tail at a random point *)
  | Splice          (** overwrite a span with random bytes *)
  | Inflate_length  (** plant an enormous varint/length field *)
  | Duplicate       (** re-insert a copy of a random slice *)
  | Reorder         (** swap two non-overlapping slices *)

val kinds : kind array
val kind_name : kind -> string

val apply : Prng.t -> kind -> string -> string
(** Apply one fault of the given kind. Total: never raises, and the
    empty string maps to itself. *)

val mutate : Prng.t -> string -> string
(** Apply a random fault (sometimes two, to reach deeper parser
    states). *)
