(** Latency-quantile math shared by the load generator, the trace
    simulator, and the benches. *)

type bucket = {
  count : int;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

val empty_bucket : bucket

val percentile : float array -> float -> float
(** Floor-index quantile over a {e sorted} sample: index
    [floor (p * (n-1))], clamped to the array; [0.] on an empty array.
    The estimator every latency bucket uses. *)

val bucket_of_ms : float list -> bucket
(** Summarize a latency sample (ms) into a bucket: count, mean,
    p50/p95/p99 via {!percentile}, max. The empty list yields
    {!empty_bucket}. *)
