(** Typed decode failures for untrusted-input decoders.

    Every decoder that accepts bytes off the wire returns
    [(value, t) result]. The [kind] taxonomy is shared across the zip
    stack, the wire formats, the BRISC container and the VM image
    reader, so the server's stats layer can aggregate failures without
    knowing which decoder produced them. *)

type kind =
  | Truncated      (** input ends before the structure does *)
  | Bad_magic      (** wrong container signature *)
  | Checksum       (** CRC frame does not match the payload *)
  | Bad_value      (** a field holds a value outside its domain *)
  | Overflow       (** a varint or count does not fit the machine *)
  | Limit          (** a declared size exceeds the decoder's allocation cap *)
  | Inconsistent   (** fields are individually valid but contradict each other *)
  | Unexpected     (** an unclassified defect caught by {!guard} *)

type t = {
  decoder : string;  (** which decoder failed, e.g. ["wire"], ["deflate"] *)
  kind : kind;
  pos : int;         (** byte (or element) position of the defect *)
  msg : string;
}

exception Fail of t
(** Raised at explicit failure sites inside decoders; converted to
    [Error] by {!guard} at the decoder boundary. The [_exn] decoder
    variants let it escape. *)

val kind_name : kind -> string
val to_string : t -> string

val fail : decoder:string -> kind:kind -> ?pos:int -> string -> 'a
(** Raise {!Fail} with a precise position (defaults to 0). *)

val guard : decoder:string -> (unit -> 'a) -> ('a, t) result
(** Run a decoder body totally: [Fail] surfaces as its own typed error;
    any other exception (including [Stack_overflow]) becomes an
    [Unexpected]/[Limit] error attributed to [decoder]. *)
