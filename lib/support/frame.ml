(* Shared container framing: magic tags, big-endian CRC-32 integrity
   seals, and the uvarint/length-prefixed reader every byte container
   in the tree uses (wire bundles, chunked images, the BRISC
   container). Factoring it here keeps the three formats byte-identical
   while removing three hand-rolled copies of the same code. *)

(* ---- writer side ---- *)

let put_str buf s =
  Util.uleb128 buf (String.length s);
  Buffer.add_string buf s

let put_bytes buf (b : Bytes.t) =
  Util.uleb128 buf (Bytes.length b);
  Buffer.add_bytes buf b

let crc_be body =
  let crc = Util.crc32 body in
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 (Char.chr ((crc lsr 24) land 0xff));
  Bytes.set hdr 1 (Char.chr ((crc lsr 16) land 0xff));
  Bytes.set hdr 2 (Char.chr ((crc lsr 8) land 0xff));
  Bytes.set hdr 3 (Char.chr (crc land 0xff));
  Bytes.to_string hdr

(* [seal body] = crc32(body) ^ body (the wire layout);
   [seal ~magic body] = magic ^ crc32(body) ^ body (the chunked layout) *)
let seal ?(magic = "") body = magic ^ crc_be body ^ body

(* Validate a sealed image and return the offset of the body. The
   magic (when given) is checked before the CRC so a wrong-container
   error reads as [Bad_magic], not [Checksum]. *)
let verify ~decoder ?(magic = "") s =
  let fail kind msg = Decode_error.fail ~decoder ~kind ~pos:0 msg in
  let mlen = String.length magic in
  if mlen > 0 then begin
    if String.length s < mlen + 4 || String.sub s 0 mlen <> magic then
      fail Decode_error.Bad_magic "bad magic"
  end
  else if String.length s < 5 then
    fail Decode_error.Truncated "truncated input";
  let stored =
    (Char.code s.[mlen] lsl 24)
    lor (Char.code s.[mlen + 1] lsl 16)
    lor (Char.code s.[mlen + 2] lsl 8)
    lor Char.code s.[mlen + 3]
  in
  if Util.crc32 ~pos:(mlen + 4) s <> stored then
    fail Decode_error.Checksum "checksum mismatch (corrupt image)";
  mlen + 4

(* ---- reader side ---- *)

type reader = { src : string; pos : int ref; decoder : string }

let reader ~decoder ?(pos = 0) src = { src; pos = ref pos; decoder }
let position r = !(r.pos)
let src r = r.src

(* Escape hatch for legacy sub-parsers written against (string, int ref)
   cursors; mutations through the ref are seen by the reader. *)
let cursor r = r.pos
let remaining r = String.length r.src - !(r.pos)

let fail r kind msg =
  Decode_error.fail ~decoder:r.decoder ~kind ~pos:!(r.pos) msg

let u r = Util.read_uleb128 r.src r.pos
let sleb r = Util.read_sleb r.src r.pos

(* Validate a count field before allocating anything proportional to
   it: every element of these formats costs at least one input byte. *)
let check_count r n what =
  if n < 0 || n > remaining r then
    fail r Decode_error.Limit
      (Printf.sprintf "%s count %d exceeds remaining %d bytes" what n
         (remaining r))

let raw r ?(what = "input") n =
  if n < 0 || !(r.pos) + n > String.length r.src then
    fail r Decode_error.Truncated ("truncated " ^ what);
  let s = String.sub r.src !(r.pos) n in
  r.pos := !(r.pos) + n;
  s

let str ?what r =
  let n = u r in
  raw r ?what n

let byte r ?(what = "input") () =
  if !(r.pos) >= String.length r.src then
    fail r Decode_error.Truncated ("truncated " ^ what);
  let c = r.src.[!(r.pos)] in
  incr r.pos;
  c

let expect_magic r magic =
  let n = String.length magic in
  if remaining r < n || String.sub r.src !(r.pos) n <> magic then
    fail r Decode_error.Bad_magic "bad magic";
  r.pos := !(r.pos) + n

let expect_end r what =
  if remaining r <> 0 then
    fail r Decode_error.Inconsistent ("trailing bytes after " ^ what)
