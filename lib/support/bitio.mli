(** Bit-level readers and writers over growable byte buffers.

    Bits are packed LSB-first within each byte (the DEFLATE convention):
    the first bit written becomes bit 0 of byte 0. *)

module Writer : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** Fresh writer. [capacity] is an initial byte-buffer size hint. *)

  val put_bit : t -> int -> unit
  (** [put_bit w b] appends the low bit of [b]. *)

  val put_bits : t -> int -> int -> unit
  (** [put_bits w v n] appends the [n] low bits of [v], LSB first.
      [n] must be within [0, 56]. Safe at the full window even with
      pending bits: wide fields are split internally so no high bit is
      ever shifted out of the native-int accumulator. *)

  val put_bits_msb : t -> int -> int -> unit
  (** [put_bits_msb w v n] appends the [n] low bits of [v], MSB first —
      the natural order for canonical Huffman codes. *)

  val align_byte : t -> unit
  (** Pad with zero bits to the next byte boundary. *)

  val put_byte : t -> int -> unit
  (** Append a whole byte; the writer need not be byte-aligned. *)

  val put_bytes : t -> Bytes.t -> unit
  (** Append all bytes of the argument. *)

  val put_string : t -> string -> unit

  val bit_length : t -> int
  (** Number of bits written so far. *)

  val contents : t -> Bytes.t
  (** Flush (zero-padding the final partial byte) and return a copy of the
      written bytes. The writer remains usable. *)
end

module Reader : sig
  type t

  val of_bytes : Bytes.t -> t
  val of_string : string -> t

  val get_bit : t -> int
  (** Next bit, LSB-first within bytes. @raise Failure on exhaustion. *)

  val get_bits : t -> int -> int
  (** [get_bits r n] reads [n] bits LSB-first, [n] within [0, 56]. *)

  val get_bits_msb : t -> int -> int
  (** [get_bits_msb r n] reads [n] bits MSB-first (Huffman order). *)

  val align_byte : t -> unit
  (** Skip to the next byte boundary. *)

  val get_byte : t -> int

  val get_string : t -> int -> string
  (** [get_string r n] reads [n] whole bytes with a single blit. The
      reader must be byte-aligned ([Invalid_argument] otherwise);
      @raise Failure on exhaustion. *)

  val peek_bits : t -> int -> int
  (** [peek_bits r n] returns the next [n] bits (LSB-first, [n] within
      [0, 32]) without consuming them, reading whole words rather than
      single bits. Bits past the end of the input read as zero — the
      word-at-a-time refill path for table-driven decoders, which must
      be able to probe a full table index near the end of the stream. *)

  val advance_bits : t -> int -> unit
  (** Consume [n] bits previously examined with {!peek_bits}.
      @raise Failure if fewer than [n] bits remain. *)

  val bits_remaining : t -> int
  val bit_position : t -> int

  val seek_bit : t -> int -> unit
  (** Absolute bit seek; used for random access into block-addressed
      streams. @raise Invalid_argument when out of range. *)
end
