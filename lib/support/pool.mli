(** Fixed pool of OCaml 5 domains for fork/join fan-out.

    A pool owns [size - 1] worker domains blocked on a shared task
    queue; the caller of {!run_list} participates as the remaining
    lane, so a pool of size [n] runs at most [n] tasks concurrently.
    Waiting callers help drain the queue, which makes nested
    {!run_list} calls on the same pool (e.g. the server's menu fan-out
    spawning a parallel dictionary build) deadlock-free.

    Pools only schedule; determinism is the submitter's job. All users
    in this repo fan out pure computations and merge results in task
    order, so parallel and sequential runs are byte-identical. *)

type t

val create : domains:int -> t
(** A pool running up to [domains] tasks concurrently ([domains - 1]
    spawned workers plus the calling domain). [domains <= 1] creates a
    pool that runs everything sequentially in the caller. *)

val size : t -> int
(** The concurrency bound the pool was created with (>= 1). *)

val run_list : t -> (unit -> 'a) list -> 'a list
(** Run the thunks to completion, possibly concurrently, and return
    their results in input order. The first exception (in task order)
    is re-raised after all tasks settle. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] is [run_list t (List.map (fun x () -> f x) xs)]. *)

val shutdown : t -> unit
(** Drain and join the worker domains: every task already queued still
    runs before the workers exit. Idempotent (a second call — even a
    concurrent one from another domain — is a no-op), and the pool
    degrades to sequential execution afterwards, so late {!run_list}
    callers still make progress. The daemon's SIGINT/SIGTERM path
    relies on both properties. *)

val is_stopped : t -> bool
(** Whether {!shutdown} has been called. *)

val shared : unit -> t
(** A process-wide pool, created on first use with
    [min 8 (Domain.recommended_domain_count ())] lanes (overridable by
    {!set_shared_domains}) and joined automatically at exit. *)

val set_shared_domains : int -> unit
(** Resize the shared pool (shuts the old one down; the next {!shared}
    call creates the replacement). The knob behind [--domains]. *)
