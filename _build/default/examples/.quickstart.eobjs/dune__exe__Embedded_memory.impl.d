examples/embedded_memory.ml: Array Brisc Cc Corpus List Printf Scenario String Support Vm
