examples/quickstart.ml: Brisc Cc Ir Native Printf String Vm Wire
