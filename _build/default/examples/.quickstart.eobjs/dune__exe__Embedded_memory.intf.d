examples/embedded_memory.mli:
