examples/quickstart.mli:
