examples/mobile_code.ml: Brisc Cc Corpus List Native Printf Scenario String Support Vm Wire Zip
