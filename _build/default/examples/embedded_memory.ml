(* Embedded / memory-constrained execution: the paper's other headline
   scenario ("compress programs to fit within the memory requirements of
   embedded systems"; interpretation "cuts working set size by over
   40%").

   The example compresses an application to BRISC, compares the paged
   code footprint of native and BRISC images under an LRU page cache,
   and then actually runs the compressed code in place — no
   decompression buffer, no generated native code — demonstrating that
   the interpreter needs only the container plus data memory.

     dune exec examples/embedded_memory.exe
*)

let () =
  let entry =
    Corpus.Gen.generate { Corpus.Gen.functions = 150; seed = 91L; bias16 = false }
  in
  let ir = Cc.Lower.compile entry.Corpus.Programs.source in
  let vp = Vm.Codegen.gen_program ir in
  print_endline "compressing to BRISC...";
  let img = Brisc.compress vp in

  (* --- footprint --- *)
  let native_sizes = Scenario.Paging.func_sizes_native vp in
  let brisc_sizes = Scenario.Paging.func_sizes_brisc img in
  let total a = Array.fold_left ( + ) 0 a in
  Printf.printf "code footprint: native %s, BRISC code %s (%.0f%% smaller)\n"
    (Support.Util.human_bytes (total native_sizes))
    (Support.Util.human_bytes (total brisc_sizes))
    (100.0 *. (1.0 -. Support.Util.ratio (total brisc_sizes) (total native_sizes)));

  (* --- paging under memory pressure --- *)
  let page_bytes = 1024 in
  let nl = Scenario.Paging.layout_of_sizes ~page_bytes native_sizes in
  let bl = Scenario.Paging.layout_of_sizes ~page_bytes brisc_sizes in
  let once = Scenario.Paging.trace_of_program vp in
  let trace = List.concat (List.init 25 (fun _ -> once)) in
  Printf.printf "\npaging simulation (1 KB pages, LRU, repeated call trace):\n";
  Printf.printf "  %-8s %16s %16s\n" "budget" "native faults" "BRISC faults";
  List.iter
    (fun budget ->
      let cfg = Scenario.Paging.default_config ~resident_pages:budget in
      (* paged-in BRISC needs no expansion: it is interpreted in place *)
      let rn = Scenario.Paging.simulate cfg nl trace in
      let rb = Scenario.Paging.simulate cfg bl trace in
      Printf.printf "  %-8d %16d %16d\n" budget rn.Scenario.Paging.faults
        rb.Scenario.Paging.faults)
    [ 4; 8; 16; 32 ];
  let cfg = Scenario.Paging.default_config ~resident_pages:max_int in
  let wn = (Scenario.Paging.simulate cfg nl trace).Scenario.Paging.working_set_pages in
  let wb = (Scenario.Paging.simulate cfg bl trace).Scenario.Paging.working_set_pages in
  Printf.printf "\nworking set: native %d pages, BRISC %d pages (%.0f%% cut; paper: >40%%)\n"
    wn wb (100.0 *. (1.0 -. Support.Util.ratio wb wn));

  (* --- run the compressed code in place --- *)
  print_endline "\ninterpreting the compressed code directly (no decompression):";
  let r = Brisc.Interp.run img in
  Printf.printf "  output %S, exit %d\n" (String.trim r.Brisc.Interp.output)
    r.Brisc.Interp.exit_code;
  Printf.printf "  %d compressed dispatches expanded to %d VM instructions\n"
    r.Brisc.Interp.dispatches r.Brisc.Interp.vm_steps;
  let reference = Vm.Interp.run vp in
  Printf.printf "  matches the uncompressed program: %b\n"
    (reference.Vm.Interp.output = r.Brisc.Interp.output
    && reference.Vm.Interp.exit_code = r.Brisc.Interp.exit_code)
